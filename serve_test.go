package hive

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

// servingWarehouse builds a two-table warehouse with enough rows that
// parallel plans genuinely fan out.
func servingWarehouse(t testing.TB) (*Warehouse, *Session) {
	t.Helper()
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	s := wh.Session()
	s.MustExec(`CREATE TABLE facts (k BIGINT, grp BIGINT, v BIGINT)`)
	s.MustExec(`CREATE TABLE dims (grp BIGINT, name STRING)`)
	var rows string
	for i := 0; i < 600; i++ {
		if i > 0 {
			rows += ", "
		}
		rows += fmt.Sprintf("(%d, %d, %d)", i, i%7, i*3%101)
	}
	s.MustExec(`INSERT INTO facts VALUES ` + rows)
	s.MustExec(`INSERT INTO dims VALUES (0,'a'),(1,'b'),(2,'c'),(3,'d'),(4,'e'),(5,'f'),(6,'g')`)
	return wh, s
}

const servingQuery = `SELECT d.name, count(*), sum(f.v) FROM facts f JOIN dims d ON f.grp = d.grp WHERE f.v > %d GROUP BY d.name ORDER BY d.name`

// TestPreparedByteIdenticalToAdhoc: at DOP 1, 2 and 4, EXECUTE of a
// prepared statement and transparent plan-cache repeats return output
// byte-identical to the cold per-query pipeline.
func TestPreparedByteIdenticalToAdhoc(t *testing.T) {
	wh, _ := servingWarehouse(t)
	for _, dop := range []int{1, 2, 4} {
		for _, arg := range []int{5, 50} {
			q := fmt.Sprintf(servingQuery, arg)

			// Cold pipeline: plan cache and result cache off.
			adhoc := wh.Session()
			adhoc.SetConf("hive.parallelism", strconv.Itoa(dop))
			adhoc.SetConf("hive.query.plan.cache.enabled", "false")
			adhoc.SetConf("hive.query.results.cache.enabled", "false")
			want := adhoc.MustExec(q).String()

			// Prepared path.
			prep := wh.Session()
			prep.SetConf("hive.parallelism", strconv.Itoa(dop))
			prep.MustExec(fmt.Sprintf(`PREPARE q AS `+servingQuery, 0))
			got := prep.MustExec(fmt.Sprintf(`EXECUTE q (%d)`, arg)).String()
			if got != want {
				t.Fatalf("dop=%d arg=%d: EXECUTE differs from ad-hoc\nwant: %s\ngot:  %s", dop, arg, want, got)
			}

			// Transparent plan-cache repeat (cache warmed by the EXECUTE).
			warm := wh.Session()
			warm.SetConf("hive.parallelism", strconv.Itoa(dop))
			got = warm.MustExec(q).String()
			if !warm.Internal().LastPlanCacheHit {
				t.Fatalf("dop=%d arg=%d: ad-hoc repeat did not reuse the template", dop, arg)
			}
			if got != want {
				t.Fatalf("dop=%d arg=%d: cached plan differs from ad-hoc\nwant: %s\ngot:  %s", dop, arg, want, got)
			}
		}
	}
}

// TestHotPathSkipsCompile: a repeat of a query shape with fresh literals
// reuses the compiled template, and EXECUTE performs no compilation at all.
func TestHotPathSkipsCompile(t *testing.T) {
	_, s := servingWarehouse(t)
	s.MustExec(fmt.Sprintf(servingQuery, 3))
	cold := s.Internal().LastCompileNanos
	if s.Internal().LastPlanCacheHit {
		t.Fatal("first compile cannot hit")
	}
	s.MustExec(fmt.Sprintf(servingQuery, 4))
	if !s.Internal().LastPlanCacheHit {
		t.Fatal("literal variant should reuse the template")
	}
	warm := s.Internal().LastCompileNanos
	if warm >= cold {
		t.Fatalf("hot-path compile (%dns) not cheaper than cold (%dns)", warm, cold)
	}
	s.MustExec(`PREPARE q AS ` + fmt.Sprintf(servingQuery, 0))
	s.MustExec(`EXECUTE q (5)`)
	if n := s.Internal().LastCompileNanos; n != 0 {
		t.Fatalf("EXECUTE compiled something: %dns", n)
	}
}

// TestExecuteInsertHammer races EXECUTE and ad-hoc readers at DOP 1/2/4
// against a single committing writer. Invariant: each insert appends
// exactly one row (i, i), so count(*) == max(v) at every snapshot — a
// violation means a reader mixed rows from two snapshots or the cache
// served rows newer than the reader's snapshot. Run with -race.
func TestExecuteInsertHammer(t *testing.T) {
	wh, s := servingWarehouse(t)
	s.MustExec(`CREATE TABLE kv (i BIGINT, v BIGINT)`)
	s.MustExec(`INSERT INTO kv VALUES (1, 1)`)

	const writes = 60
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		w := wh.Session()
		for i := int64(2); i <= writes; i++ {
			if _, err := w.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, %d)`, i, i)); err != nil {
				errs <- err
				return
			}
		}
	}()

	check := func(who string, count, max int64) error {
		if count != max {
			return fmt.Errorf("%s: count=%d max=%d — rows from mixed snapshots", who, count, max)
		}
		return nil
	}
	for _, dop := range []int{1, 2, 4} {
		// Prepared reader.
		wg.Add(1)
		go func(dop int) {
			defer wg.Done()
			r := wh.Session()
			r.SetConf("hive.parallelism", strconv.Itoa(dop))
			r.MustExec(`PREPARE watch AS SELECT count(*), max(v) FROM kv WHERE v >= 1`)
			for !stop.Load() {
				res, err := r.Exec(`EXECUTE watch (1)`)
				if err != nil {
					errs <- err
					return
				}
				if err := check(fmt.Sprintf("prepared dop=%d", dop), res.Rows[0][0].I, res.Rows[0][1].I); err != nil {
					errs <- err
					return
				}
			}
		}(dop)
		// Ad-hoc reader (transparent caching path).
		wg.Add(1)
		go func(dop int) {
			defer wg.Done()
			r := wh.Session()
			r.SetConf("hive.parallelism", strconv.Itoa(dop))
			for !stop.Load() {
				res, err := r.Exec(`SELECT count(*), max(v) FROM kv WHERE v >= 1`)
				if err != nil {
					errs <- err
					return
				}
				if err := check(fmt.Sprintf("adhoc dop=%d", dop), res.Rows[0][0].I, res.Rows[0][1].I); err != nil {
					errs <- err
					return
				}
			}
		}(dop)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := s.MustExec(`SELECT count(*), max(v) FROM kv`)
	if res.Rows[0][0].I != writes || res.Rows[0][1].I != writes {
		t.Fatalf("final state: %v, want count=max=%d", res.Rows, writes)
	}
}

// TestThunderingHerdAfterInvalidatingWrite: after a write invalidates the
// cached result, a burst of identical queries produces exactly one fill —
// the rest hit or wait on the pending entry.
func TestThunderingHerdAfterInvalidatingWrite(t *testing.T) {
	wh, s := servingWarehouse(t)
	q := fmt.Sprintf(servingQuery, 7)
	s.MustExec(q) // warm plan + result cache
	s.MustExec(`INSERT INTO facts VALUES (1000, 1, 50)`)

	_, missesBefore, _ := wh.Server().Results.Stats()
	want := s.MustExec(q).String() // one fill at the new snapshot
	_, missesAfterFill, _ := wh.Server().Results.Stats()
	if missesAfterFill != missesBefore+1 {
		t.Fatalf("fill after write: misses %d -> %d, want +1", missesBefore, missesAfterFill)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := wh.Session()
			if got := r.MustExec(q).String(); got != want {
				t.Errorf("herd reader diverged:\nwant: %s\ngot:  %s", want, got)
			}
		}()
	}
	wg.Wait()
	_, missesEnd, _ := wh.Server().Results.Stats()
	if missesEnd != missesAfterFill {
		t.Fatalf("herd refilled %d times; cached result should have served all readers", missesEnd-missesAfterFill)
	}
}

// TestWMHistorySharedAcrossLiterals: with a resource plan active, literal
// variants of one query shape are admitted under one digest and share the
// workload manager's peak-memory history.
func TestWMHistorySharedAcrossLiterals(t *testing.T) {
	wh, err := Open(Config{MemoryBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	s.MustExec(`CREATE TABLE t (v BIGINT)`)
	s.MustExec(`INSERT INTO t VALUES (1), (2), (3), (4), (5)`)
	s.MustExec(`CREATE RESOURCE PLAN serve`)
	s.MustExec(`CREATE POOL serve.hot WITH alloc_fraction=1.0, query_parallelism=4, memory_fraction=1.0`)
	s.MustExec(`ALTER PLAN serve SET DEFAULT POOL = hot`)
	s.MustExec(`ALTER RESOURCE PLAN serve ENABLE ACTIVATE`)

	s.MustExec(`SELECT sum(v) FROM t WHERE v > 1 ORDER BY 1`)
	d1 := s.Internal().LastQueryDigest
	est1 := s.Internal().EstimateForDigest("hot", d1)
	s.MustExec(`SELECT sum(v) FROM t WHERE v > 4 ORDER BY 1`)
	d2 := s.Internal().LastQueryDigest
	if d1 != d2 {
		t.Fatalf("admission digests fragment across literals:\n%s\n%s", d1, d2)
	}
	est2 := s.Internal().EstimateForDigest("hot", d2)
	if est1 != est2 {
		t.Fatalf("estimates diverged for one shape: %d vs %d", est1, est2)
	}
}
