package hive

import (
	"fmt"
	"sync"
	"testing"
)

// setupElevatorTable builds an ACID table with multi-stripe files (via
// doubling INSERT ... SELECT, so single insert transactions exceed the
// 8192-row stripe size), live delete deltas, and data sorted enough that
// range predicates prune stripes by min/max statistics.
func setupElevatorTable(t testing.TB, s *Session) {
	t.Helper()
	s.MustExec(`CREATE TABLE ev (k BIGINT, v DOUBLE, tag STRING)`)
	ins := "INSERT INTO ev VALUES "
	for i := 0; i < 512; i++ {
		if i > 0 {
			ins += ", "
		}
		ins += fmt.Sprintf("(%d, %d.5, 'tag%d')", i, i, i%7)
	}
	s.MustExec(ins)
	// 512 -> 32768 rows; the last doublings write >8192-row delta files,
	// i.e. genuinely multi-stripe single files.
	total := 512
	for total < 32768 {
		s.MustExec(fmt.Sprintf(
			`INSERT INTO ev SELECT k + %d, v + %d.0, tag FROM ev`, total, total))
		total *= 2
	}
	// Delete deltas over committed data, including a sarg-prunable range.
	s.MustExec(`DELETE FROM ev WHERE k >= 1000 AND k < 1100`)
	s.MustExec(`DELETE FROM ev WHERE tag = 'tag3' AND k < 600`)
	s.SetConf("hive.query.results.cache.enabled", "false")
}

// TestElevatorByteIdentity: with the I/O elevator on, results must be
// byte-identical to the synchronous path (hive.llap.elevator=false) at DOP
// 1, 2 and 4 — over an ACID table with delete deltas and sarg-skipped
// stripes, for ordered and unordered queries alike.
func TestElevatorByteIdentity(t *testing.T) {
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	setupElevatorTable(t, s)

	queries := []struct {
		sql     string
		ordered bool
	}{
		{`SELECT COUNT(*), SUM(v), MIN(k), MAX(k) FROM ev`, true},
		{`SELECT k, v FROM ev WHERE k >= 20000 AND k < 21000 ORDER BY k`, true},
		{`SELECT tag, COUNT(*), SUM(v) FROM ev WHERE k >= 8000 GROUP BY tag ORDER BY tag`, true},
		{`SELECT k, tag FROM ev WHERE k >= 900 AND k < 1200`, false},
	}
	for _, q := range queries {
		s.SetConf("hive.llap.elevator", "false")
		s.SetConf("hive.parallelism", "1")
		base, err := s.Exec(q.sql)
		if err != nil {
			t.Fatalf("sync %s: %v", q.sql, err)
		}
		wantExact, wantSet := base.String(), sortedLines(base)
		for _, elev := range []string{"false", "true"} {
			s.SetConf("hive.llap.elevator", elev)
			for _, dop := range []string{"1", "2", "4"} {
				s.SetConf("hive.parallelism", dop)
				res, err := s.Exec(q.sql)
				if err != nil {
					t.Fatalf("elevator=%s dop=%s %s: %v", elev, dop, q.sql, err)
				}
				if q.ordered {
					if res.String() != wantExact {
						t.Errorf("elevator=%s dop=%s %s: output not byte-identical", elev, dop, q.sql)
					}
				} else if sortedLines(res) != wantSet {
					t.Errorf("elevator=%s dop=%s %s: result multiset diverges", elev, dop, q.sql)
				}
			}
		}
	}
}

// TestElevatorObservability asserts the session counters: sarg-skipped
// stripes on selective scans, decoded-cache hits on repeat scans, and
// accepted prefetches, all zero when the elevator is off.
func TestElevatorObservability(t *testing.T) {
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	setupElevatorTable(t, s)
	in := s.Internal()

	sel := `SELECT SUM(v) FROM ev WHERE k >= 30000`
	s.SetConf("hive.parallelism", "2")
	s.MustExec(sel)
	if in.LastStripesSkipped == 0 {
		t.Errorf("selective scan skipped %d stripes, want > 0", in.LastStripesSkipped)
	}
	first := *in
	s.MustExec(sel)
	if in.LastDecodedCacheHits == 0 {
		t.Errorf("repeat scan decoded-cache hits = %d, want > 0 (first run: hits=%d misses=%d prefetched=%d)",
			in.LastDecodedCacheHits, first.LastDecodedCacheHits, first.LastDecodedCacheMisses, first.LastPrefetchedStripes)
	}
	// A full scan prefetches: multi-stripe files with no sarg to prune.
	s.MustExec(`SELECT COUNT(*) FROM ev WHERE tag <> 'nope'`)
	if in.LastPrefetchedStripes == 0 {
		t.Errorf("full scan prefetched %d stripes, want > 0", in.LastPrefetchedStripes)
	}
	// Elevator off: the decoded cache and prefetcher are not consulted.
	s.SetConf("hive.llap.elevator", "false")
	s.MustExec(sel)
	if in.LastDecodedCacheHits != 0 || in.LastDecodedCacheMisses != 0 || in.LastPrefetchedStripes != 0 {
		t.Errorf("elevator off but decoded hits/misses/prefetched = %d/%d/%d",
			in.LastDecodedCacheHits, in.LastDecodedCacheMisses, in.LastPrefetchedStripes)
	}
	if in.LastStripesSkipped == 0 {
		t.Error("sarg skipping must work without the elevator")
	}
}

// TestElevatorConcurrentTinyCache is the race hammer: concurrent sessions
// scan the same table through a decoded cache far too small for the
// working set, so fills, hits and evictions interleave under -race while
// elevator workers decode in the background. Every query must still return
// the correct aggregate.
func TestElevatorConcurrentTinyCache(t *testing.T) {
	wh, err := Open(Config{DecodedCacheBytes: 64 << 10, IOThreads: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	setup := wh.Session()
	setupElevatorTable(t, setup)

	base := setup.MustExec(`SELECT COUNT(*), SUM(v) FROM ev`).String()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := wh.Session()
			defer s.Close()
			s.SetConf("hive.query.results.cache.enabled", "false")
			s.SetConf("hive.parallelism", fmt.Sprint(1+g%4))
			for i := 0; i < 4; i++ {
				res, err := s.Query(`SELECT COUNT(*), SUM(v) FROM ev`)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", g, err)
					return
				}
				if res.String() != base {
					errs <- fmt.Errorf("worker %d: got %q want %q", g, res.String(), base)
					return
				}
				lo := (g*4 + i) * 500 % 30000
				if _, err := s.Query(fmt.Sprintf(
					`SELECT SUM(v) FROM ev WHERE k >= %d AND k < %d`, lo, lo+2000)); err != nil {
					errs <- fmt.Errorf("worker %d selective: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := wh.Server().Decoded.Stats()
	if st.Evictions == 0 {
		t.Errorf("tiny decoded cache saw no evictions (used=%d entries=%d)", st.UsedBytes, st.Entries)
	}
	if st.UsedBytes > 64<<10 {
		t.Errorf("decoded cache used %d bytes over its 64KiB capacity", st.UsedBytes)
	}
	// Single-flight accounting: after Close drains the pool, every accepted
	// request was decoded or abandoned — coalesced joins ride an accepted
	// flight, they never add work — and the in-flight estimate fully
	// unwinds. (wh.Close re-closing the elevator is an idempotent no-op.)
	wh.Server().Elevator.Close()
	est := wh.Server().Elevator.Stats()
	if est.Enqueued != est.Decoded+est.Abandoned {
		t.Errorf("elevator accounting: enqueued %d != decoded %d + abandoned %d",
			est.Enqueued, est.Decoded, est.Abandoned)
	}
	if est.InflightBytes != 0 {
		t.Errorf("elevator in-flight bytes = %d after Close, want 0", est.InflightBytes)
	}
}
