package hive

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// windowWarehouse builds a fact table with heavy order-key ties, NULLs and
// enough partitions to exercise every window path: peer-group frames,
// multi-function specs, spilling under tiny budgets.
func windowWarehouse(t *testing.T, rows int) (*Warehouse, *Session) {
	t.Helper()
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	s := wh.Session()
	s.MustExec(`CREATE TABLE w (g INT, k INT, v BIGINT, s STRING)`)
	for batch := 0; batch < (rows+99)/100; batch++ {
		var b strings.Builder
		b.WriteString("INSERT INTO w VALUES ")
		n := 100
		if rest := rows - batch*100; rest < n {
			n = rest
		}
		for i := 0; i < n; i++ {
			r := batch*100 + i
			if i > 0 {
				b.WriteString(", ")
			}
			// k repeats heavily within each partition (peer groups), and
			// every 11th k is NULL.
			if r%11 == 3 {
				fmt.Fprintf(&b, "(%d, NULL, %d, 'x%d')", r%7, (r*31)%83, r%19)
			} else {
				fmt.Fprintf(&b, "(%d, %d, %d, 'x%d')", r%7, r%5, (r*31)%83, r%19)
			}
		}
		s.MustExec(b.String())
	}
	s.SetConf("hive.query.results.cache.enabled", "false")
	return wh, s
}

// TestWindowPeerRowsSharedFrame is the RANGE-frame regression: with the
// default frame, rows tied on the ORDER BY key are peers and share one
// running-aggregate result (the old per-row running value returned partial
// sums on ties).
func TestWindowPeerRowsSharedFrame(t *testing.T) {
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	s.MustExec(`CREATE TABLE p (g INT, k INT, v BIGINT)`)
	s.MustExec(`INSERT INTO p VALUES (1, 1, 10), (1, 1, 20), (1, 2, 5), (1, 2, 7), (1, 3, 1), (2, 1, 100)`)

	got := s.MustExec(`SELECT g, k, v, SUM(v) OVER (PARTITION BY g ORDER BY k) AS rs
		FROM p ORDER BY g, k, v`).String()
	want := strings.Join([]string{
		"1|1|10|30", // peers k=1 share the full 10+20
		"1|1|20|30",
		"1|2|5|42", // 30 + 5 + 7
		"1|2|7|42",
		"1|3|1|43",
		"2|1|100|100",
	}, "\n")
	if got != want {
		t.Errorf("running sum over peers:\ngot\n%s\nwant\n%s", got, want)
	}

	// COUNT shares frames the same way.
	got = s.MustExec(`SELECT k, COUNT(*) OVER (PARTITION BY g ORDER BY k) AS rc
		FROM p WHERE g = 1 ORDER BY k, v`).String()
	want = strings.Join([]string{"1|2", "1|2", "2|4", "2|4", "3|5"}, "\n")
	if got != want {
		t.Errorf("running count over peers:\ngot\n%s\nwant\n%s", got, want)
	}
}

// TestWindowRegressionSerialVsParallel runs the window suite — ties, NULL
// order keys, DESC, several functions over one partition spec, rank vs
// dense_rank, empty input — at DOP 1/2/4 and checks parallel output equals
// serial byte for byte (the outer ORDER BY pins a total order).
func TestWindowRegressionSerialVsParallel(t *testing.T) {
	_, s := windowWarehouse(t, 400)
	queries := []string{
		// Multiple functions over one partition spec: a single shared pass.
		`SELECT g, k, v, SUM(v) OVER (PARTITION BY g ORDER BY k), COUNT(*) OVER (PARTITION BY g ORDER BY k),
		        MIN(v) OVER (PARTITION BY g ORDER BY k), row_number() OVER (PARTITION BY g ORDER BY k)
		   FROM w ORDER BY g, k, v, s`,
		// rank vs dense_rank on a tie-heavy DESC key.
		`SELECT g, k, rank() OVER (PARTITION BY g ORDER BY k DESC), dense_rank() OVER (PARTITION BY g ORDER BY k DESC)
		   FROM w ORDER BY g, k, v, s`,
		// Mixed specs in one SELECT: two groups, one pass each.
		`SELECT g, k, SUM(v) OVER (PARTITION BY g ORDER BY k), AVG(v) OVER (PARTITION BY k ORDER BY g),
		        MAX(v) OVER (PARTITION BY g)
		   FROM w ORDER BY g, k, v, s`,
		// Whole-partition aggregate (no ORDER BY) plus NULLs in the key.
		`SELECT g, k, COUNT(k) OVER (PARTITION BY g), SUM(v) OVER (ORDER BY k)
		   FROM w ORDER BY g, k, v, s`,
		// Empty input.
		`SELECT g, SUM(v) OVER (PARTITION BY g ORDER BY k) FROM w WHERE g > 99 ORDER BY g`,
	}
	for _, q := range queries {
		s.SetConf("hive.parallelism", "1")
		base, err := s.Exec(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		for _, dop := range []string{"2", "4"} {
			s.SetConf("hive.parallelism", dop)
			res, err := s.Exec(q)
			if err != nil {
				t.Fatalf("dop=%s %s: %v", dop, q, err)
			}
			if res.String() != base.String() {
				t.Errorf("dop=%s %s: parallel output diverges from serial", dop, q)
			}
		}
	}
}

// TestBeyondMemoryWindow is the acceptance check: a window query whose
// input far exceeds a 256KiB budget completes with output byte-identical
// to the unlimited-budget run, actually spills (observable in the session
// accounting that feeds wm.QueryMetrics.SpilledBytes), and sweeps its
// scratch files.
func TestBeyondMemoryWindow(t *testing.T) {
	wh, s := windowWarehouse(t, 2000)
	queries := []string{
		`SELECT g, k, v, s, SUM(v) OVER (PARTITION BY g ORDER BY k), rank() OVER (PARTITION BY g ORDER BY k) FROM w`,
		`SELECT g, k, SUM(v) OVER (PARTITION BY g ORDER BY k), MIN(v) OVER (PARTITION BY k ORDER BY g DESC) FROM w`,
	}
	for _, q := range queries {
		s.SetConf("hive.parallelism", "1")
		s.SetConf("hive.query.max.memory", "0")
		base, err := s.Exec(q)
		if err != nil {
			t.Fatalf("unbudgeted %s: %v", q, err)
		}
		if got := s.inner.LastSpilledBytes; got != 0 {
			t.Fatalf("unbudgeted run spilled %d bytes", got)
		}
		s.SetConf("hive.query.max.memory", "262144")
		res, err := s.Exec(q)
		if err != nil {
			t.Fatalf("budget=256K %s: %v", q, err)
		}
		// Arrival-order emission must survive the external pass exactly:
		// no outer ORDER BY, the window operator's own order is compared.
		if res.String() != base.String() {
			t.Errorf("%s: budgeted window output diverges byte-wise", q)
		}
		if s.inner.LastSpilledBytes == 0 {
			t.Errorf("%s: 256K budget over 2000 rows did not spill", q)
		}
		if s.inner.LastPeakMemoryBytes == 0 {
			t.Errorf("%s: no peak memory accounted", q)
		}
		if leaks := scratchLeaks(t, wh); len(leaks) != 0 {
			t.Fatalf("%s: leaked scratch files: %v", q, leaks)
		}
		// Parallel input to the window must agree on the multiset.
		s.SetConf("hive.parallelism", "4")
		pres, err := s.Exec(q)
		if err != nil {
			t.Fatalf("dop=4 budget=256K %s: %v", q, err)
		}
		if sortedLines(pres) != sortedLines(base) {
			t.Errorf("%s: dop=4 budgeted results diverge", q)
		}
	}
}

// TestWindowSpillFeedsTriggers checks the governor loop end to end for
// windows: spilled bytes from the external window pass must reach the
// workload manager's spilled_bytes trigger.
func TestWindowSpillFeedsTriggers(t *testing.T) {
	_, s := windowWarehouse(t, 1000)
	s.MustExec(`CREATE RESOURCE PLAN wguard`)
	s.MustExec(`CREATE POOL wguard.work WITH alloc_fraction=1.0, query_parallelism=4`)
	s.MustExec(`CREATE RULE wchoke IN wguard WHEN spilled_bytes > 1 THEN KILL`)
	s.MustExec(`ADD RULE wchoke TO work`)
	s.MustExec(`ALTER PLAN wguard SET DEFAULT POOL = work`)
	s.MustExec(`ALTER RESOURCE PLAN wguard ENABLE ACTIVATE`)
	s.SetConf("hive.query.max.memory", "16384")
	s.SetConf("hive.parallelism", "1")
	_, err := s.Exec(`SELECT g, k, SUM(v) OVER (PARTITION BY g ORDER BY k) FROM w`)
	if err == nil || !strings.Contains(err.Error(), "killed by workload manager") {
		t.Fatalf("expected spilled_bytes KILL trigger on window spill, got %v", err)
	}
	if s.inner.LastSpilledBytes == 0 {
		t.Fatal("trigger fired without spilled bytes")
	}
}

// runWindowSpillTrial builds a random table and compares budgeted against
// unbudgeted window output byte for byte — the property the external pass
// guarantees (arrival order, peer frames, tie-breaks all preserved).
func runWindowSpillTrial(t *testing.T, rng *rand.Rand) {
	t.Helper()
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer wh.Close()
	s := wh.Session()
	s.MustExec(`CREATE TABLE r (g INT, k INT, v BIGINT)`)
	rows := 200 + rng.Intn(400)
	var b strings.Builder
	b.WriteString("INSERT INTO r VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		if rng.Intn(13) == 0 {
			fmt.Fprintf(&b, "(%d, NULL, %d)", rng.Intn(5), rng.Intn(1000))
		} else {
			fmt.Fprintf(&b, "(%d, %d, %d)", rng.Intn(5), rng.Intn(7), rng.Intn(1000))
		}
	}
	s.MustExec(b.String())
	s.SetConf("hive.query.results.cache.enabled", "false")
	s.SetConf("hive.parallelism", "1")
	q := `SELECT g, k, v, SUM(v) OVER (PARTITION BY g ORDER BY k), COUNT(*) OVER (PARTITION BY g ORDER BY k),
	             rank() OVER (PARTITION BY g ORDER BY k DESC), row_number() OVER (ORDER BY k)
	        FROM r`
	s.SetConf("hive.query.max.memory", "0")
	base, err := s.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	budget := 4096 + rng.Intn(32768)
	s.SetConf("hive.query.max.memory", fmt.Sprint(budget))
	res, err := s.Exec(q)
	if err != nil {
		t.Fatalf("budget=%d: %v", budget, err)
	}
	if res.String() != base.String() {
		t.Fatalf("budget=%d rows=%d: budgeted window output diverges", budget, rows)
	}
}

// TestWindowSpillProperty is the fixed-seed budgeted-vs-unbudgeted
// equivalence property; `go test -tags stress` runs the seed-randomized
// twin.
func TestWindowSpillProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		runWindowSpillTrial(t, rng)
	}
}
