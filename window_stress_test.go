//go:build stress

package hive

import (
	"math/rand"
	"testing"
	"time"
)

// TestWindowSpillPropertyRandomSeed is the seed-randomized twin of
// TestWindowSpillProperty: each `go test -tags stress` run exercises fresh
// row counts, tie shapes and budgets (the hll pattern).
func TestWindowSpillPropertyRandomSeed(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("seed %d", seed)
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 20; trial++ {
		runWindowSpillTrial(t, rng)
	}
}
