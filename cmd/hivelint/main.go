// hivelint runs the repo's invariant analyzers (reservation-balance,
// snapshot-pinning, no-alias-escape, close-and-cancel, conf-knob-registry)
// over the whole module and exits non-zero on any finding. Wired into
// `make lint` / `make check`.
//
// Usage: hivelint [-list] [module-root]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	w, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hivelint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(w, lint.Analyzers())
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hivelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
