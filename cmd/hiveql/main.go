// Command hiveql is a Beeline-style shell for the embedded warehouse:
// statements from stdin (or -e) run against a fresh in-memory deployment.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	hive "repro"
)

func main() {
	execFlag := flag.String("e", "", "semicolon-separated statements to run and exit")
	flag.Parse()

	wh, err := hive.Open(hive.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer wh.Close()
	s := wh.Session()

	run := func(stmt string) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			return
		}
		res, err := s.Exec(stmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		if out := res.String(); out != "" {
			fmt.Println(out)
		}
		fmt.Printf("-- %d row(s)\n", len(res.Rows))
	}

	if *execFlag != "" {
		for _, stmt := range strings.Split(*execFlag, ";") {
			run(stmt)
		}
		return
	}
	fmt.Println("embedded hive; end statements with ';' (ctrl-D to exit)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	for {
		if buf.Len() == 0 {
			fmt.Print("hive> ")
		} else {
			fmt.Print("    > ")
		}
		if !scanner.Scan() {
			break
		}
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			run(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
			buf.Reset()
		}
	}
}
