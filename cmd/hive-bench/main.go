// Command hive-bench regenerates the paper's evaluation tables and
// figures (§7) and prints the same rows/series the paper reports.
//
//	hive-bench -exp figure7   # Hive 1.2 vs 3.1 per-query response times
//	hive-bench -exp table1    # aggregate time, container vs LLAP
//	hive-bench -exp figure8   # SSB materialized view: native vs Druid
//	hive-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	hive "repro"
	"repro/internal/bench"
)

type runner struct{ s *hive.Session }

func (r runner) Exec(q string) error { _, err := r.s.Exec(q); return err }
func (r runner) SetConf(k, v string) { r.s.SetConf(k, v) }

func main() {
	exp := flag.String("exp", "all", "experiment: figure7 | table1 | figure8 | all")
	iters := flag.Int("iters", 1, "timed iterations per query (after one warm run)")
	flag.Parse()

	if *exp == "figure7" || *exp == "table1" || *exp == "all" {
		wh, err := hive.Open(hive.Config{DiskLatency: true})
		fail(err)
		s := wh.Session()
		fmt.Fprintln(os.Stderr, "loading TPC-DS-derived data ...")
		fail(bench.SetupTPCDS(func(q string) error { _, err := s.Exec(q); return err }, bench.SmallTPCDS()))
		if *exp == "figure7" || *exp == "all" {
			fmt.Println("=== Figure 7: Hive v1.2 vs v3.1, per-query response time ===")
			timings, err := bench.Figure7(runner{s}, bench.TPCDSQueries(), *iters)
			fail(err)
			bench.PrintFigure7(os.Stdout, timings)
			fmt.Println()
		}
		if *exp == "table1" || *exp == "all" {
			fmt.Println("=== Table 1: response time improvement using LLAP ===")
			res, err := bench.Table1(runner{s}, bench.TPCDSQueries(), *iters)
			fail(err)
			bench.PrintTable1(os.Stdout, res)
			fmt.Println()
		}
		wh.Close()
	}
	if *exp == "figure8" || *exp == "all" {
		wh, err := hive.Open(hive.Config{DiskLatency: true})
		fail(err)
		s := wh.Session()
		fmt.Fprintln(os.Stderr, "loading SSB data ...")
		fail(bench.SetupSSB(func(q string) error { _, err := s.Exec(q); return err }, bench.SmallSSB()))
		fmt.Println("=== Figure 8: SSB queries, MV in Hive vs MV in Druid ===")
		timings, err := bench.RunFigure8(runner{s}, *iters)
		fail(err)
		bench.PrintFigure8(os.Stdout, timings)
		wh.Close()
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hive-bench:", err)
		os.Exit(1)
	}
}
