// Package hive is an embedded, pure-Go reproduction of Apache Hive as
// described in "Apache Hive: From MapReduce to Enterprise-grade Big Data
// Warehousing" (SIGMOD 2019): an ACID SQL warehouse with a cost-based
// optimizer, materialized views with automatic rewriting, a query results
// cache, LLAP-style cached execution, workload management, and federation
// to an embedded Druid over its JSON/HTTP API.
//
// Quick start:
//
//	wh, _ := hive.Open(hive.Config{})
//	defer wh.Close()
//	s := wh.Session()
//	s.MustExec(`CREATE TABLE t (a INT, b STRING)`)
//	s.MustExec(`INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
//	res, _ := s.Query(`SELECT b FROM t WHERE a = 2`)
//	fmt.Println(res)
package hive

import (
	"fmt"

	"repro/internal/dfs"
	"repro/internal/druid"
	"repro/internal/federation"
	"repro/internal/hs2"
	"repro/internal/types"
)

// Config sizes the embedded warehouse.
type Config struct {
	// Executors is the LLAP executor pool size (default 8).
	Executors int
	// CacheBytes is the LLAP data cache capacity (default 64 MiB).
	CacheBytes int64
	// MemoryBytes is the aggregate memory budget workload-management
	// pools admit queries against (0 = memory admission off).
	MemoryBytes int64
	// IOThreads sizes the LLAP I/O elevator's async decode pool
	// (default 4).
	IOThreads int
	// DecodedCacheBytes caps the elevator's decoded-vector cache
	// (default CacheBytes/2).
	DecodedCacheBytes int64
	// DiskLatency enables the simulated storage latency model, making
	// I/O savings (caching, pushdown) visible in wall-clock time.
	DiskLatency bool
}

// Warehouse is an embedded Hive deployment: HiveServer2, Metastore, an
// in-memory distributed file system, LLAP, and an embedded Druid cluster
// reachable over HTTP.
type Warehouse struct {
	srv      *hs2.Server
	druid    *druid.Store
	druidSrv *druid.Server
}

// Open boots a warehouse.
func Open(cfg Config) (*Warehouse, error) {
	fs := dfs.New()
	if cfg.DiskLatency {
		fs.SetLatency(DefaultLatency())
	}
	srv := hs2.NewServer(hs2.Config{
		FS:                fs,
		Executors:         cfg.Executors,
		CacheBytes:        cfg.CacheBytes,
		MemoryBytes:       cfg.MemoryBytes,
		IOThreads:         cfg.IOThreads,
		DecodedCacheBytes: cfg.DecodedCacheBytes,
	})
	store := druid.NewStore()
	dsrv, err := druid.NewServer(store)
	if err != nil {
		return nil, fmt.Errorf("hive: start embedded druid: %v", err)
	}
	srv.Registry.Register(srv.MS, federation.NewDruidHandler(store, dsrv.URL()))
	return &Warehouse{srv: srv, druid: store, druidSrv: dsrv}, nil
}

// DefaultLatency returns the simulated storage cost model used when
// Config.DiskLatency is set: a seek cost per read plus per-byte throughput
// cost, standing in for the paper's cluster disks.
func DefaultLatency() dfs.Latency {
	return dfs.Latency{SeekCost: 30000, PerByteCost: 2} // 30µs + 2ns/B
}

// Close shuts down background services: the I/O elevator's decode pool
// and the embedded Druid server.
func (w *Warehouse) Close() error {
	w.srv.Close()
	if w.druidSrv != nil {
		return w.druidSrv.Close()
	}
	return nil
}

// Server exposes the underlying HiveServer2 for advanced integration
// (benchmarks, cache statistics).
func (w *Warehouse) Server() *hs2.Server { return w.srv }

// DruidURL returns the embedded Druid cluster's HTTP endpoint.
func (w *Warehouse) DruidURL() string { return w.druidSrv.URL() }

// Session is one client connection.
type Session struct {
	inner *hs2.Session
}

// Session opens a new session.
func (w *Warehouse) Session() *Session {
	return &Session{inner: w.srv.NewSession()}
}

// Result is a query result.
type Result = hs2.Result

// Row is one result row.
type Row = []types.Datum

// Exec runs any SQL statement.
func (s *Session) Exec(sql string) (*Result, error) { return s.inner.Execute(sql) }

// Query runs a statement and returns its result (alias of Exec, reads
// better for SELECTs).
func (s *Session) Query(sql string) (*Result, error) { return s.inner.Execute(sql) }

// MustExec runs a statement and panics on error (setup scripts, examples).
func (s *Session) MustExec(sql string) *Result {
	r, err := s.inner.Execute(sql)
	if err != nil {
		panic(fmt.Sprintf("hive: %s: %v", sql, err))
	}
	return r
}

// SetConf sets a session configuration key, e.g. hive.profile=1.2.
func (s *Session) SetConf(key, value string) { s.inner.SetConf(key, value) }

// Close ends the session, canceling any query it has queued or running
// (the workload manager releases its admission and queue position).
func (s *Session) Close() { s.inner.Close() }

// SetUser identifies the session for workload management mappings.
func (s *Session) SetUser(user, application string) {
	s.inner.User, s.inner.Application = user, application
}

// Internal returns the underlying HS2 session (observability hooks like
// LastCacheHit, LastRewriteUsedMV, LastPlan).
func (s *Session) Internal() *hs2.Session { return s.inner }
