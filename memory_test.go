package hive

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// spillWarehouse builds a small unpartitioned fact table whose working set
// dwarfs the tiny budgets the tests set — fast enough for -short and
// -race, big enough that sorts, aggregations and join builds all overflow.
func spillWarehouse(t *testing.T, rows int) (*Warehouse, *Session) {
	t.Helper()
	wh, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wh.Close() })
	s := wh.Session()
	s.MustExec(`CREATE TABLE facts (k BIGINT, grp INT, v STRING, price DECIMAL(7,2))`)
	s.MustExec(`CREATE TABLE dims (grp INT, name STRING)`)
	for batch := 0; batch < rows/100; batch++ {
		var b strings.Builder
		b.WriteString("INSERT INTO facts VALUES ")
		for i := 0; i < 100; i++ {
			k := batch*100 + i
			if i > 0 {
				b.WriteString(", ")
			}
			// Non-monotonic keys with heavy ties exercise sort stability.
			fmt.Fprintf(&b, "(%d, %d, 'val%d', %d.%02d)", (k*7919)%rows, k%13, k%37, k%90, k%100)
		}
		s.MustExec(b.String())
	}
	ins := "INSERT INTO dims VALUES "
	for g := 0; g < 13; g++ {
		if g > 0 {
			ins += ", "
		}
		ins += fmt.Sprintf("(%d, 'group-%d')", g, g)
	}
	s.MustExec(ins)
	s.SetConf("hive.query.results.cache.enabled", "false")
	return wh, s
}

// scratchLeaks lists files left under the warehouse scratch root.
func scratchLeaks(t *testing.T, wh *Warehouse) []string {
	t.Helper()
	fs := wh.Server().FS
	if !fs.Exists("/warehouse/_scratch") {
		return nil
	}
	infos, err := fs.ListRecursive("/warehouse/_scratch")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, fi := range infos {
		out = append(out, fi.Path)
	}
	return out
}

// TestBeyondMemoryEndToEnd is the PR 4 acceptance regression: with
// hive.query.max.memory set far below the working set, ORDER BY, GROUP BY
// and hash-join queries must complete with results identical to the
// unbudgeted run — byte-identical output order for ORDER BY — at DOP 1 and
// DOP 4, must actually spill (nonzero Session spilled-bytes accounting),
// and must leave no scratch files behind.
func TestBeyondMemoryEndToEnd(t *testing.T) {
	wh, s := spillWarehouse(t, 800)
	queries := []struct {
		sql       string
		ordered   bool // output order must match, not just the multiset
		mustSpill bool // working set provably exceeds the 16K budget
	}{
		{`SELECT k, v, price FROM facts ORDER BY k, v, price`, true, true},
		// High-cardinality grouping (one group per key) overflows the
		// budget; the 13-group variant further down must not.
		{`SELECT k, COUNT(*), SUM(price), AVG(grp) FROM facts GROUP BY k ORDER BY k`, true, true},
		{`SELECT grp, COUNT(*), SUM(price), AVG(k) FROM facts GROUP BY grp ORDER BY grp`, true, false},
		{`SELECT COUNT(DISTINCT k), COUNT(DISTINCT grp) FROM facts`, true, true},
		// Self equi-join: both sides are the fact table, so the hash build
		// cannot fit the budget and must Grace-partition.
		{`SELECT a.k, b.grp, b.v FROM facts a, facts b WHERE a.k = b.k`, false, true},
		// Small build side (13 dims rows): fits the budget by design — the
		// governor must NOT force a spill that isn't needed.
		{`SELECT name, COUNT(*), SUM(price) FROM facts, dims WHERE facts.grp = dims.grp
		    GROUP BY name ORDER BY name`, true, false},
		{`SELECT k, name FROM facts LEFT JOIN dims ON facts.grp = dims.grp AND dims.grp < 5`, false, false},
	}
	for _, q := range queries {
		s.SetConf("hive.query.max.memory", "0")
		s.SetConf("hive.parallelism", "1")
		base, err := s.Exec(q.sql)
		if err != nil {
			t.Fatalf("unbudgeted %s: %v", q.sql, err)
		}
		if got := s.inner.LastSpilledBytes; got != 0 {
			t.Fatalf("unbudgeted run spilled %d bytes: %s", got, q.sql)
		}
		for _, dop := range []string{"1", "4"} {
			s.SetConf("hive.parallelism", dop)
			s.SetConf("hive.query.max.memory", "16384")
			res, err := s.Exec(q.sql)
			if err != nil {
				t.Fatalf("dop=%s budget=16K %s: %v", dop, q.sql, err)
			}
			if q.mustSpill && s.inner.LastSpilledBytes == 0 {
				t.Errorf("dop=%s %s: 16K budget over ~800 rows did not spill", dop, q.sql)
			}
			if s.inner.LastPeakMemoryBytes == 0 {
				t.Errorf("dop=%s %s: no peak memory accounted", dop, q.sql)
			}
			if q.ordered && dop == "1" {
				// Serial budgeted output must be byte-identical, ties
				// included (stable external sort).
				if res.String() != base.String() {
					t.Errorf("dop=1 %s: budgeted output diverges byte-wise", q.sql)
				}
			}
			if got, want := sortedLines(res), sortedLines(base); got != want {
				t.Errorf("dop=%s %s: budgeted results diverge\n got %.200q\nwant %.200q", dop, q.sql, got, want)
			}
			if q.ordered {
				// Key order must hold even when tie order across runs may
				// not (parallel run assignment is dynamic).
				if len(res.Rows) != len(base.Rows) {
					t.Errorf("dop=%s %s: row count %d vs %d", dop, q.sql, len(res.Rows), len(base.Rows))
				}
			}
			if leaks := scratchLeaks(t, wh); len(leaks) != 0 {
				t.Fatalf("dop=%s %s: leaked scratch files: %v", dop, q.sql, leaks)
			}
		}
	}
}

// TestSpillParallelRace forces spilling at a tiny budget in the middle of
// parallel queries — worker clones growing, denying and spilling against
// one shared governor — and runs two sessions concurrently so scratch
// paths and executor slots interleave. The assertions are in the -race
// detector and the result comparison.
func TestSpillParallelRace(t *testing.T) {
	wh, s := spillWarehouse(t, 500)
	s.SetConf("hive.parallelism", "1")
	q := `SELECT k, grp, v FROM facts ORDER BY k, grp, v`
	agg := `SELECT grp, COUNT(*), SUM(price) FROM facts GROUP BY grp ORDER BY grp`
	base, err := s.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	aggBase, err := s.Exec(agg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ses := wh.Session()
			ses.SetConf("hive.query.results.cache.enabled", "false")
			ses.SetConf("hive.parallelism", "8")
			ses.SetConf("hive.query.max.memory", "8192")
			for i := 0; i < 3; i++ {
				res, err := ses.Exec(q)
				if err != nil {
					t.Errorf("parallel budgeted sort: %v", err)
					return
				}
				if sortedLines(res) != sortedLines(base) {
					t.Error("parallel budgeted sort diverged")
					return
				}
				// The whole-table sort cannot fit 8K; the 13-group agg
				// that follows legitimately can and is only here to keep
				// spilling and non-spilling queries interleaving.
				if ses.inner.LastSpilledBytes == 0 {
					t.Error("budgeted parallel sort did not spill")
					return
				}
				ares, err := ses.Exec(agg)
				if err != nil {
					t.Errorf("parallel budgeted agg: %v", err)
					return
				}
				if ares.String() != aggBase.String() {
					t.Error("parallel budgeted agg diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	if leaks := scratchLeaks(t, wh); len(leaks) != 0 {
		t.Fatalf("leaked scratch files: %v", leaks)
	}
}

// TestScratchCleanupOnQueryError kills a query mid-flight via a workload
// trigger after it has spilled and checks the scratch directory is swept.
func TestScratchCleanupOnQueryError(t *testing.T) {
	wh, s := spillWarehouse(t, 500)
	s.MustExec(`CREATE RESOURCE PLAN guard`)
	s.MustExec(`CREATE POOL guard.work WITH alloc_fraction=1.0, query_parallelism=4`)
	s.MustExec(`CREATE RULE choke IN guard WHEN spilled_bytes > 1 THEN KILL`)
	s.MustExec(`ADD RULE choke TO work`)
	s.MustExec(`ALTER PLAN guard SET DEFAULT POOL = work`)
	s.MustExec(`ALTER RESOURCE PLAN guard ENABLE ACTIVATE`)
	s.SetConf("hive.query.max.memory", "8192")
	s.SetConf("hive.parallelism", "4")
	_, err := s.Exec(`SELECT k, v FROM facts ORDER BY k, v`)
	if err == nil || !strings.Contains(err.Error(), "killed by workload manager") {
		t.Fatalf("expected spilled_bytes KILL trigger, got %v", err)
	}
	if s.inner.LastSpilledBytes == 0 {
		t.Fatal("trigger fired without spilled bytes")
	}
	if leaks := scratchLeaks(t, wh); len(leaks) != 0 {
		t.Fatalf("leaked scratch files after killed query: %v", leaks)
	}
}

// TestLimitOffsetEndToEnd covers the OFFSET pushdown at several DOPs: the
// (offset+limit) heap runs per worker and the coordinator skips the offset
// exactly once. Results must equal the serial full-sort prefix, including
// OFFSET past end of result.
func TestLimitOffsetEndToEnd(t *testing.T) {
	_, s := spillWarehouse(t, 500)
	s.SetConf("hive.parallelism", "1")
	full, err := s.Exec(`SELECT k, grp FROM facts ORDER BY k, grp, v`)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(full.String(), "\n")
	slice := func(off, n int) string {
		if off >= len(lines) {
			return ""
		}
		end := off + n
		if end > len(lines) {
			end = len(lines)
		}
		return strings.Join(lines[off:end], "\n")
	}
	cases := []struct{ limit, offset int }{
		{10, 0}, {10, 5}, {7, 493}, {10, 496}, {10, 500}, {10, 1000}, {0, 3},
	}
	for _, dop := range []string{"1", "2", "4"} {
		s.SetConf("hive.parallelism", dop)
		for _, c := range cases {
			q := fmt.Sprintf(`SELECT k, grp FROM facts ORDER BY k, grp, v LIMIT %d OFFSET %d`, c.limit, c.offset)
			res, err := s.Exec(q)
			if err != nil {
				t.Fatalf("dop=%s %s: %v", dop, q, err)
			}
			want := slice(c.offset, c.limit)
			if c.limit == 0 {
				want = ""
			}
			if res.String() != want {
				t.Errorf("dop=%s %s:\n got %q\nwant %q", dop, q, res.String(), want)
			}
		}
	}
}
