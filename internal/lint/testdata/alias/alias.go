// Fixture for the no-alias-escape analyzer: a miniature shared cache in a
// package named like the real ones (the analyzer keys on package name).
package resultcache

type Cache struct {
	rows [][]string
	cols []string
	idx  map[string]int
}

// Rows leaks the interior slice: callers can mutate cached rows.
func (c *Cache) Rows() [][]string {
	return c.rows // want "interior slice of cached state"
}

// Index leaks the interior map.
func (c *Cache) Index() map[string]int {
	return c.idx // want "interior map of cached state"
}

// Columns returns a fresh copy: allowed.
func (c *Cache) Columns() []string {
	return append([]string(nil), c.cols...)
}

// Header leaks through a local alias; taint follows the assignment.
func (c *Cache) Header() []string {
	h := c.cols
	return h // want "interior slice of cached state"
}

// Raw is a deliberate, annotated exception: the suppression absorbs the
// diagnostic (an unmatched want here would fail the harness).
func (c *Cache) Raw() []string {
	//lint:ignore no-alias-escape fixture demonstrates an annotated exception
	return c.cols
}

// internal methods are exempt: unexported callers are part of the cache.
func (c *Cache) header() []string {
	return c.cols
}
