// Fixture for the close-and-cancel analyzer: a miniature Operator
// interface, a Close that skips an input, and drain loops with and
// without cancellation checkpoints.
package closecancel

type Batch struct{ N int }

type Operator interface {
	Open() error
	Next() (*Batch, error)
	Close() error
}

type Context struct{ canceled bool }

func (c *Context) CheckCanceled() error { return nil }

// LeakyOp never closes its input: the subtree leaks.
type LeakyOp struct{ Input Operator }

func (o *LeakyOp) Open() error          { return o.Input.Open() }
func (o *LeakyOp) Next() (*Batch, error) { return o.Input.Next() }
func (o *LeakyOp) Close() error { // want "never closes input field"
	return nil
}

// SinkOp closes its input, but one of its drain loops forgets the
// cancellation checkpoint.
type SinkOp struct {
	Input Operator
	ctx   *Context
	rows  []*Batch
}

func (o *SinkOp) Open() error { return o.Input.Open() }

func (o *SinkOp) consume() error {
	for { // want "without a CheckCanceled checkpoint"
		b, err := o.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		o.rows = append(o.rows, b)
	}
}

func (o *SinkOp) consumeChecked() error {
	for {
		if err := o.ctx.CheckCanceled(); err != nil {
			return err
		}
		b, err := o.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		o.rows = append(o.rows, b)
	}
}

// Next hands each batch straight back: bounded per call, no checkpoint
// needed.
func (o *SinkOp) Next() (*Batch, error) {
	for {
		b, err := o.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		return b, nil
	}
}

func (o *SinkOp) Close() error { return o.Input.Close() }

// FanInOp closes a worker slice through a range loop: allowed.
type FanInOp struct{ Workers []Operator }

func (o *FanInOp) Open() error          { return nil }
func (o *FanInOp) Next() (*Batch, error) { return nil, nil }
func (o *FanInOp) Close() error {
	for _, w := range o.Workers {
		w.Close()
	}
	return nil
}

// DelegateOp hands its workers to a helper that closes them: allowed.
type DelegateOp struct{ Workers []Operator }

func (o *DelegateOp) Open() error          { return nil }
func (o *DelegateOp) Next() (*Batch, error) { return nil, nil }
func (o *DelegateOp) Close() error          { return closeAll(o.Workers) }

func closeAll(ops []Operator) error {
	var first error
	for _, op := range ops {
		if err := op.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
