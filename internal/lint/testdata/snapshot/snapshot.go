// Fixture for the snapshot-pinning analyzer: a miniature transaction
// manager with the GetSnapshot/GetValidWriteIds surface, and a runOnce
// zone root.
package snapshot

type Snapshot struct{ id int64 }

type Txns struct{ next int64 }

func (t *Txns) GetSnapshot() *Snapshot { t.next++; return &Snapshot{id: t.next} }

func (t *Txns) GetValidWriteIds(name string, s *Snapshot) []int64 { return nil }

// runOnce is a zone root by name: everything it reaches runs below the
// pinning frontier.
func runOnce(t *Txns) {
	fresh := t.GetSnapshot() // want "opens a fresh snapshot"
	scanAll(t)
	scanPinned(t, fresh)
}

// scanAll re-derives visibility with no pinned snapshot in scope.
func scanAll(t *Txns) {
	_ = t.GetValidWriteIds("t", nil) // want "without a pinned Snapshot parameter"
}

// scanPinned threads the pinned snapshot: allowed.
func scanPinned(t *Txns, snap *Snapshot) {
	_ = t.GetValidWriteIds("t", snap)
}

// outsideZone is unreachable from any zone root; a fresh snapshot here is
// the pinning frontier itself.
func outsideZone(t *Txns) *Snapshot {
	return t.GetSnapshot()
}
