// Fixture for the conf-knob-registry analyzer: a marked registry with a
// live knob, a dead knob, a startup-exempt knob, and an undeclared literal
// at a use site.
package knobs

type Knob struct {
	Default string
	Startup bool
}

// The single conf table for this fixture package.
//
// lint:knob-registry
var registry = map[string]Knob{
	"hive.fixture.enabled": {Default: "true"},
	"hive.fixture.dead":    {Default: "0"}, // want "dead knob"
	"hive.fixture.boot":    {Default: "4", Startup: true},
}

func read(conf map[string]string) string {
	if v := conf["hive.fixture.enabled"]; v != "" {
		return v
	}
	return conf["hive.fixture.typo"] // want "not declared in the knob registry"
}
