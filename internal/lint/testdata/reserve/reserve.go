// Fixture for the reservation-balance analyzer: miniature Governor and
// Reservation types with the same method surface as internal/exec.
package reserve

type Governor struct{ used int64 }

func (g *Governor) Reserve() *Reservation { return &Reservation{g: g} }

type Reservation struct {
	g    *Governor
	held int64
}

func (r *Reservation) Grow(n int64) bool { r.held += n; return true }
func (r *Reservation) ForceGrow(n int64) { r.held += n }
func (r *Reservation) Shrink(n int64)    { r.held -= n }
func (r *Reservation) Release()          { r.held = 0 }

// leakLocal grows a locally created reservation and never returns it.
func leakLocal(g *Governor) {
	res := g.Reserve()
	res.ForceGrow(64) // want "grown but never released"
}

// balanced releases on the way out.
func balanced(g *Governor) {
	res := g.Reserve()
	res.ForceGrow(64)
	defer res.Release()
}

// borrowed grows a caller-owned reservation: the caller balances it.
func borrowed(res *Reservation) {
	res.ForceGrow(32)
}

// sink holds its reservation in a field but no method ever releases.
type sink struct{ res *Reservation }

func (s *sink) fill() {
	s.res.ForceGrow(128) // want "no method of sink ever calls Shrink/Release"
}

// store has the close-path release the contract wants.
type store struct{ res *Reservation }

func (s *store) fill()  { s.res.ForceGrow(128) }
func (s *store) close() { s.res.Release() }

// helperBalanced releases through a transitively-releasing helper.
func helperBalanced(g *Governor) {
	res := g.Reserve()
	res.ForceGrow(16)
	giveBack(res)
}

func giveBack(res *Reservation) { res.Release() }
