// snapshot-pinning: the one-snapshot-per-query contract (PR 8's TOCTOU
// class). execCompiled/runPlanAt pin a single transaction snapshot that
// must thread through the whole run — the result-cache lookup, every scan,
// and the revalidated Fill. Below the pinning frontier (runOnce, the scan
// factory and everything the physical operators reach) nothing may take a
// fresh snapshot: a GetSnapshot call down there reads state a concurrent
// writer may already have moved past the watermarks the query was keyed
// on. Validity derivation (GetValidWriteIds) is allowed only in functions
// that demonstrably thread a pinned txn.Snapshot (it appears among their
// parameters or receiver).
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SnapshotPinning is the pinned-snapshot analyzer.
const snapshotPinningName = "snapshot-pinning"

var SnapshotPinning = &Analyzer{
	Name: snapshotPinningName,
	Doc:  "no fresh snapshots below the run/scan pinning frontier (runOnce, scan factories, exec operators)",
	Run:  runSnapshotPinning,
}

// zone roots by function name; the exec and dag packages are roots in
// their entirety (every operator method runs below the frontier).
var snapshotZoneFuncs = map[string]bool{
	"runOnce":         true,
	"makeScanFactory": true,
	"splitsFor":       true,
}

var snapshotZonePkgs = map[string]bool{"exec": true, "dag": true}

func runSnapshotPinning(w *Workspace) []Diagnostic {
	var roots []*types.Func
	for _, fn := range w.Functions() {
		if snapshotZoneFuncs[fn.Obj.Name()] || snapshotZonePkgs[fn.Pkg.Types.Name()] {
			roots = append(roots, fn.Obj)
		}
	}
	zone := w.reachable(roots)

	var diags []Diagnostic
	for _, fn := range w.Functions() {
		if !zone[fn.Obj] {
			continue
		}
		hasSnapParam := false
		for _, o := range funcParamsAndReceiver(fn.Pkg, fn.Decl) {
			if typeNamed(o.Type(), "Snapshot") {
				hasSnapParam = true
			}
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "GetSnapshot":
				diags = append(diags, Diagnostic{
					Pos:      w.Position(call.Pos()),
					Analyzer: snapshotPinningName,
					Message: fmt.Sprintf("%s opens a fresh snapshot inside the run/scan zone; thread the query's pinned snapshot instead (TOCTOU: lookup and scan would see different write sets)",
						fn.Obj.Name()),
				})
			case "GetValidWriteIds":
				if !hasSnapParam {
					diags = append(diags, Diagnostic{
						Pos:      w.Position(call.Pos()),
						Analyzer: snapshotPinningName,
						Message: fmt.Sprintf("%s derives write-id validity without a pinned Snapshot parameter in scope; pass the query's snapshot down instead of re-deriving visibility",
							fn.Obj.Name()),
					})
				}
			}
			return true
		})
	}
	return diags
}
