// Function indexing and the static call graph shared by the analyzers.
// Interface-dispatched calls resolve to the interface method object and
// simply dangle (no decl edge) — the analyzers that need cross-dispatch
// coverage seed their zones with the implementations instead.
package lint

import (
	"go/ast"
	"go/types"
)

// FuncInfo pairs a function declaration with its package and type object.
// Function literals are attributed to their enclosing declaration: a
// closure's body is analyzed as part of the function that created it.
type FuncInfo struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// Functions returns every function declaration in the workspace, cached.
func (w *Workspace) Functions() []*FuncInfo {
	if w.funcs != nil {
		return w.funcs
	}
	for _, pkg := range w.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				w.funcs = append(w.funcs, &FuncInfo{Pkg: pkg, Decl: fd, Obj: obj})
			}
		}
	}
	return w.funcs
}

// Callee resolves a call expression to its static callee, nil for dynamic
// calls (function values, interface methods resolve to the interface's
// method object, which never matches a declaration).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// CallEdges returns the static call graph: caller object -> callee objects,
// cached. Only calls that resolve to a *types.Func appear; edges may point
// at functions declared outside the module (those simply have no FuncInfo).
func (w *Workspace) CallEdges() map[*types.Func][]*types.Func {
	if w.edges != nil {
		return w.edges
	}
	w.edges = map[*types.Func][]*types.Func{}
	for _, fn := range w.Functions() {
		info := fn.Pkg.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := Callee(info, call); callee != nil {
				w.edges[fn.Obj] = append(w.edges[fn.Obj], callee)
			}
			return true
		})
	}
	return w.edges
}

// reachable computes the transitive closure of the call graph from the
// given roots.
func (w *Workspace) reachable(roots []*types.Func) map[*types.Func]bool {
	edges := w.CallEdges()
	seen := map[*types.Func]bool{}
	stack := append([]*types.Func(nil), roots...)
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[f] {
			continue
		}
		seen[f] = true
		stack = append(stack, edges[f]...)
	}
	return seen
}

// callersOf inverts the call graph once for fixpoint propagation.
func (w *Workspace) callersOf() map[*types.Func][]*types.Func {
	inv := map[*types.Func][]*types.Func{}
	for caller, callees := range w.CallEdges() {
		for _, c := range callees {
			inv[c] = append(inv[c], caller)
		}
	}
	return inv
}

// propagateUp marks every function that (transitively) calls a seed
// function: the "calls something that releases/closes" fixpoint.
func (w *Workspace) propagateUp(seeds map[*types.Func]bool) map[*types.Func]bool {
	inv := w.callersOf()
	out := map[*types.Func]bool{}
	var stack []*types.Func
	for f := range seeds {
		out[f] = true
		stack = append(stack, f)
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, caller := range inv[f] {
			if !out[caller] {
				out[caller] = true
				stack = append(stack, caller)
			}
		}
	}
	return out
}

// namedOf peels pointers and returns the named type underneath, nil when
// the type is not (a pointer to) a named type.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// typeNamed reports whether t is (a pointer to) a named type with the
// given name, package-agnostically — fixtures declare their own miniature
// Reservation/Snapshot/Batch types and must match the same contracts.
func typeNamed(t types.Type, name string) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == name
}

// recvBase walks a selector chain (s.res, st.ctx.res, parts[i].res) down
// to its base identifier, returning the ident and the number of selections
// peeled.
func recvBase(e ast.Expr) (*ast.Ident, int) {
	depth := 0
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
			depth++
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x, depth
		default:
			return nil, depth
		}
	}
}

// funcParamsAndReceiver returns the object for each parameter and the
// receiver of a declaration.
func funcParamsAndReceiver(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return out
}
