// reservation-balance: the governor contract (paper §4.4). Memory taken
// with Reservation.Grow/ForceGrow must be returned — by the growing
// function itself (Shrink/Release, possibly deferred or via a helper that
// releases), or by the owning type's close path when the reservation lives
// in a struct field. PR 6 fixed exactly this shape: lending slots borrowed
// and never repaid. The analyzer flags
//
//   - a reservation created locally, grown, and neither released nor
//     escaped (stored, passed or returned), and
//   - a field-held reservation grown by methods of a type none of whose
//     methods ever release it.
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

var growMethods = map[string]bool{"Grow": true, "ForceGrow": true}
var releaseMethods = map[string]bool{"Shrink": true, "Release": true}

// ReservationBalance is the governor-contract analyzer.
const reservationBalanceName = "reservation-balance"

var ReservationBalance = &Analyzer{
	Name: reservationBalanceName,
	Doc:  "Reservation.Grow/ForceGrow must be balanced by Shrink/Release on every ownership path",
	Run:  runReservationBalance,
}

// reservationCall matches a method call on (a pointer to) a type named
// Reservation and returns the receiver expression.
func reservationCall(info *types.Info, call *ast.CallExpr, names map[string]bool) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !names[sel.Sel.Name] {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !typeNamed(tv.Type, "Reservation") {
		return nil, false
	}
	return sel.X, true
}

func runReservationBalance(w *Workspace) []Diagnostic {
	// Seed: functions that directly release a reservation. Fixpoint: any
	// caller of a releasing function releases too (sort's spillRun, the
	// row store's close, aggspill's releaseResident all count).
	releasers := map[*types.Func]bool{}
	for _, fn := range w.Functions() {
		if isReservationMethod(fn) {
			continue
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := reservationCall(fn.Pkg.Info, call, releaseMethods); ok {
				releasers[fn.Obj] = true
			}
			return true
		})
	}
	releasing := w.propagateUp(releasers)

	var diags []Diagnostic
	for _, fn := range w.Functions() {
		if isReservationMethod(fn) {
			continue
		}
		info := fn.Pkg.Info
		type growSite struct {
			call *ast.CallExpr
			recv ast.Expr
		}
		var grows []growSite
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, ok := reservationCall(info, call, growMethods); ok {
				grows = append(grows, growSite{call, recv})
			}
			return true
		})
		if len(grows) == 0 {
			continue
		}
		// The function balances its own grows: a direct Shrink/Release, a
		// deferred one, or a call into any transitively-releasing helper.
		if releasing[fn.Obj] {
			continue
		}
		paramObjs := map[types.Object]bool{}
		for _, o := range funcParamsAndReceiver(fn.Pkg, fn.Decl) {
			paramObjs[o] = true
		}
		for _, g := range grows {
			base, depth := recvBase(g.recv)
			if base == nil {
				continue
			}
			obj := info.Uses[base]
			if obj == nil {
				obj = info.Defs[base]
			}
			if obj == nil {
				continue
			}
			pos := w.Position(g.call.Pos())
			switch {
			case depth == 0 && paramObjs[obj]:
				// A reservation passed in: the caller owns its balance.
			case depth == 0 && nodeContains(fn.Decl.Body, obj.Pos()):
				// Locally created reservation: it must escape or this
				// function leaks it.
				if !escapes(info, fn.Decl.Body, obj) {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: reservationBalanceName,
						Message: fmt.Sprintf("local reservation %q is grown but never released (no Shrink/Release on any path, and it does not escape)",
							base.Name),
					})
				}
			case depth > 0:
				// Field-held reservation: some method of the owning type
				// must release it (the Close/close discipline).
				owner := ownerNamedType(info, g.recv)
				if owner == nil {
					continue
				}
				if !typeReleases(w, owner, releasing) {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: reservationBalanceName,
						Message: fmt.Sprintf("%s grows a field reservation but no method of %s ever calls Shrink/Release (missing close-path release)",
							fn.Obj.Name(), owner.Obj().Name()),
					})
				}
			}
		}
	}
	return diags
}

// isReservationMethod reports whether fn is a method of the Reservation
// type itself (the accounting implementation, not a user).
func isReservationMethod(fn *FuncInfo) bool {
	if fn.Decl.Recv == nil || len(fn.Decl.Recv.List) == 0 {
		return false
	}
	if tv, ok := fn.Pkg.Info.Types[fn.Decl.Recv.List[0].Type]; ok {
		return typeNamed(tv.Type, "Reservation") || typeNamed(tv.Type, "Governor")
	}
	return false
}

// ownerNamedType finds the named type owning a field-selector receiver:
// for s.res or st.ctx.res it is the named type of the outermost selector's
// operand that is (a pointer to) a named struct.
func ownerNamedType(info *types.Info, recv ast.Expr) *types.Named {
	sel, ok := ast.Unparen(recv).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if tv, ok := info.Types[sel.X]; ok {
		return namedOf(tv.Type)
	}
	return nil
}

// typeReleases reports whether any method of the named type is in the
// releasing set.
func typeReleases(w *Workspace, n *types.Named, releasing map[*types.Func]bool) bool {
	for i := 0; i < n.NumMethods(); i++ {
		if releasing[n.Method(i)] {
			return true
		}
	}
	return false
}

// escapes reports whether the object's value leaves the function: stored
// into a field or composite literal, passed as a call argument, or
// returned. A reservation that escapes has an owner elsewhere.
func escapes(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	usesObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
				found = true
			}
			return !found
		})
		return found
	}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				// A store through a selector or index escapes; so does
				// re-binding another variable to the reservation.
				if i < len(x.Rhs) && usesObj(x.Rhs[i]) {
					if _, isIdent := ast.Unparen(lhs).(*ast.Ident); !isIdent || x.Tok.String() == "=" {
						escaped = true
					}
				}
			}
		case *ast.CallExpr:
			// Passing the reservation to any call (other than its own
			// methods) hands ownership away.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && usesObj(sel.X) {
				return true
			}
			for _, arg := range x.Args {
				if usesObj(arg) {
					escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if usesObj(r) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if usesObj(el) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}
