// close-and-cancel: the operator cleanup and cancellation contracts.
//
//   - Close discipline: an Operator implementation owning Operator-typed
//     inputs (fields of the interface type, or slices of it) must close
//     each of them in its Close method — directly, through a range loop,
//     or by delegating to another method of the same type. A skipped
//     input leaks governor reservations and spill files for the whole
//     subtree under it.
//   - Cancellation checkpoints: a batch-pull loop (a for statement calling
//     .Next() on something) that can keep iterating without returning a
//     batch to its caller — the drain shape every blocking operator uses
//     to materialize its input — must poll CheckCanceled (or run under
//     DrainContext) each iteration, or a canceled query keeps
//     materializing until EOF.
//
// Both rules apply to packages that declare an Operator interface (the
// exec package; fixtures declare their own).
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CloseAndCancel is the cleanup/cancellation analyzer.
const closeAndCancelName = "close-and-cancel"

var CloseAndCancel = &Analyzer{
	Name: closeAndCancelName,
	Doc:  "Operator.Close must close inputs; unbounded batch loops must poll cancellation",
	Run:  runCloseAndCancel,
}

func runCloseAndCancel(w *Workspace) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range w.Pkgs {
		iface := operatorInterface(pkg)
		if iface == nil {
			continue
		}
		diags = append(diags, checkCloseDiscipline(w, pkg, iface)...)
		diags = append(diags, checkCancelCheckpoints(w, pkg)...)
	}
	return diags
}

// operatorInterface finds a package-level interface named Operator.
func operatorInterface(pkg *Package) *types.Interface {
	obj := pkg.Types.Scope().Lookup("Operator")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// checkCloseDiscipline verifies every Operator implementation closes its
// Operator-typed fields in Close.
func checkCloseDiscipline(w *Workspace, pkg *Package, iface *types.Interface) []Diagnostic {
	// Index methods by (named type, name) and precompute, per method, the
	// set of input-field names it closes.
	methods := map[*types.Named]map[string]*FuncInfo{}
	for _, fn := range w.Functions() {
		if fn.Pkg != pkg || fn.Decl.Recv == nil || len(fn.Decl.Recv.List) == 0 {
			continue
		}
		tv, ok := pkg.Info.Types[fn.Decl.Recv.List[0].Type]
		if !ok {
			continue
		}
		named := namedOf(tv.Type)
		if named == nil {
			continue
		}
		if methods[named] == nil {
			methods[named] = map[string]*FuncInfo{}
		}
		methods[named][fn.Obj.Name()] = fn
	}

	closers := closerParamIndexes(w)

	var diags []Diagnostic
	for named, ms := range methods {
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if !types.Implements(types.NewPointer(named), iface) && !types.Implements(named, iface) {
			continue
		}
		var inputFields []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			ft := f.Type()
			if sl, isSlice := ft.Underlying().(*types.Slice); isSlice {
				ft = sl.Elem()
			}
			if types.Identical(ft, iface.Underlying()) || isNamedOperator(ft, iface) {
				inputFields = append(inputFields, f.Name())
			}
		}
		if len(inputFields) == 0 {
			continue
		}
		closeFn := ms["Close"]
		if closeFn == nil {
			continue // interface satisfied via embedding; the embedded type is checked itself
		}
		closed := map[string]bool{}
		collectClosedFields(pkg, closeFn.Decl.Body, closed)
		// Delegation: Close may call a method of the same type that does
		// the closing, or hand a field to a helper whose parameter it
		// closes (closeWorkers(m.Workers, ...)).
		ast.Inspect(closeFn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := Callee(pkg.Info, call)
			if callee == nil {
				return true
			}
			for name, m := range ms {
				if m.Obj == callee && name != "Close" {
					collectClosedFields(pkg, m.Decl.Body, closed)
				}
			}
			if idxs := closers[callee]; idxs != nil {
				for i, arg := range call.Args {
					if !idxs[i] {
						continue
					}
					if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
						closed[sel.Sel.Name] = true
					}
				}
			}
			return true
		})
		for _, f := range inputFields {
			if !closed[f] {
				diags = append(diags, Diagnostic{
					Pos:      w.Position(closeFn.Decl.Pos()),
					Analyzer: closeAndCancelName,
					Message: fmt.Sprintf("%s.Close never closes input field %q; the subtree under it leaks reservations and spill files",
						named.Obj().Name(), f),
				})
			}
		}
	}
	return diags
}

// closerParamIndexes finds functions that close one of their parameters —
// directly (p.Close()) or by ranging over a parameter slice and closing
// each element (closeWorkers). Passing a field to such a helper satisfies
// the close discipline for that field.
func closerParamIndexes(w *Workspace) map[*types.Func]map[int]bool {
	out := map[*types.Func]map[int]bool{}
	for _, fn := range w.Functions() {
		info := fn.Pkg.Info
		paramIdx := map[types.Object]int{}
		if fn.Decl.Type.Params != nil {
			i := 0
			for _, field := range fn.Decl.Type.Params.List {
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						paramIdx[obj] = i
					}
					i++
				}
			}
		}
		if len(paramIdx) == 0 {
			continue
		}
		// Range variables over a parameter slice stand in for it.
		elemOf := map[types.Object]types.Object{}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			r, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			x, ok := ast.Unparen(r.X).(*ast.Ident)
			if !ok {
				return true
			}
			src := info.Uses[x]
			if src == nil {
				return true
			}
			if _, isParam := paramIdx[src]; !isParam {
				return true
			}
			if id, ok := r.Value.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					elemOf[obj] = src
				}
			}
			return true
		})
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" {
				return true
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			if src, ok := elemOf[obj]; ok {
				obj = src
			}
			if i, ok := paramIdx[obj]; ok {
				if out[fn.Obj] == nil {
					out[fn.Obj] = map[int]bool{}
				}
				out[fn.Obj][i] = true
			}
			return true
		})
	}
	return out
}

// isNamedOperator matches a named interface type whose name is Operator
// (the field may use a package-qualified alias of the same interface).
func isNamedOperator(t types.Type, iface *types.Interface) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Name() != "Operator" {
		return false
	}
	u, ok := n.Underlying().(*types.Interface)
	return ok && types.Identical(u, iface.Underlying())
}

// collectClosedFields records receiver fields that have .Close() called on
// them in body — directly (x.Field.Close()) or through a range variable
// (for _, in := range x.Fields { in.Close() }).
func collectClosedFields(pkg *Package, body *ast.BlockStmt, closed map[string]bool) {
	// Range variables standing for elements of a field slice.
	rangeVars := map[types.Object]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			if sel, ok := ast.Unparen(r.X).(*ast.SelectorExpr); ok {
				if id, ok := r.Value.(*ast.Ident); ok {
					if obj := pkg.Info.Defs[id]; obj != nil {
						rangeVars[obj] = sel.Sel.Name
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		switch recv := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			closed[recv.Sel.Name] = true
		case *ast.Ident:
			if obj := pkg.Info.Uses[recv]; obj != nil {
				if field, ok := rangeVars[obj]; ok {
					closed[field] = true
				}
			}
		}
		return true
	})
}

// checkCancelCheckpoints flags drain-shaped batch loops without a
// cancellation poll.
func checkCancelCheckpoints(w *Workspace, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, fn := range w.Functions() {
		if fn.Pkg != pkg {
			continue
		}
		info := pkg.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			pullsBatches := false
			hasCheckpoint := false
			returnsBatch := false
			ast.Inspect(loop.Body, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.CallExpr:
					if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
						switch sel.Sel.Name {
						case "Next":
							pullsBatches = true
						case "CheckCanceled", "DrainContext":
							hasCheckpoint = true
						}
					}
					if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
						if id.Name == "CheckCanceled" || id.Name == "DrainContext" {
							hasCheckpoint = true
						}
					}
				case *ast.ReturnStmt:
					// A loop that hands each produced batch back to its
					// caller is bounded per call; only loops that can spin
					// to EOF without yielding need their own checkpoint.
					if len(x.Results) > 0 {
						if t := info.Types[x.Results[0]].Type; t != nil && isBatchPtr(t) {
							if id, ok := ast.Unparen(x.Results[0]).(*ast.Ident); !ok || id.Name != "nil" {
								returnsBatch = true
							}
						}
					}
				}
				return true
			})
			if pullsBatches && !hasCheckpoint && !returnsBatch {
				diags = append(diags, Diagnostic{
					Pos:      w.Position(loop.Pos()),
					Analyzer: closeAndCancelName,
					Message: fmt.Sprintf("drain loop in %s pulls batches without a CheckCanceled checkpoint; a canceled query keeps materializing to EOF",
						fn.Obj.Name()),
				})
			}
			return true
		})
	}
	return diags
}

// isBatchPtr matches *vector.Batch (any package's Batch, for fixtures).
func isBatchPtr(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	return typeNamed(p.Elem(), "Batch")
}
