// no-alias-escape: the copy-on-hit contract (PR 8's aliasing class).
// Exported methods on the shared cache packages (resultcache, plancache,
// llap) must not return interior slices or maps of cached state: a caller
// appending to or mutating such a value poisons rows served to every other
// session. Returning a fresh header (append([]T(nil), x...)) or any other
// call result is fine; pointer shares (decoded vectors, cached readers)
// are governed by the immutable-by-contract rule and the -tags stress
// deep-freeze instead, so only slice- and map-typed returns are flagged.
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NoAliasEscape is the cache-aliasing analyzer.
const noAliasEscapeName = "no-alias-escape"

var NoAliasEscape = &Analyzer{
	Name: noAliasEscapeName,
	Doc:  "cache methods must not return interior slices/maps of cached state without copying",
	Run:  runNoAliasEscape,
}

// aliasPkgs are the shared-cache packages under the contract, by package
// name (fixtures declare miniature packages with the same names).
var aliasPkgs = map[string]bool{"resultcache": true, "plancache": true, "llap": true}

func runNoAliasEscape(w *Workspace) []Diagnostic {
	var diags []Diagnostic
	for _, fn := range w.Functions() {
		if !aliasPkgs[fn.Pkg.Types.Name()] {
			continue
		}
		if fn.Decl.Recv == nil || !fn.Obj.Exported() {
			continue
		}
		info := fn.Pkg.Info
		recvObjs := map[types.Object]bool{}
		for _, o := range funcParamsAndReceiver(fn.Pkg, fn.Decl) {
			// Only the receiver taints; parameters are caller-owned.
			recvObjs[o] = false
		}
		if len(fn.Decl.Recv.List) == 1 && len(fn.Decl.Recv.List[0].Names) == 1 {
			if o := info.Defs[fn.Decl.Recv.List[0].Names[0]]; o != nil {
				recvObjs[o] = true
			}
		}

		tainted := map[types.Object]bool{}
		for o, isRecv := range recvObjs {
			if isRecv {
				tainted[o] = true
			}
		}

		// taintedExpr: the expression reads cached state through the
		// receiver without an intervening copy. Calls launder (append,
		// constructors); composite literals and unary/binary ops produce
		// fresh values.
		var taintedExpr func(e ast.Expr) bool
		taintedExpr = func(e ast.Expr) bool {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj := info.Uses[x]
				if obj == nil {
					obj = info.Defs[x]
				}
				return obj != nil && tainted[obj]
			case *ast.SelectorExpr:
				return taintedExpr(x.X)
			case *ast.IndexExpr:
				return taintedExpr(x.X)
			case *ast.SliceExpr:
				return taintedExpr(x.X)
			case *ast.StarExpr:
				return taintedExpr(x.X)
			case *ast.TypeAssertExpr:
				return taintedExpr(x.X)
			}
			return false
		}

		// Forward pass in source order: propagate taint through simple
		// assignments and range statements, flag tainted slice/map returns.
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					if i >= len(x.Rhs) {
						break
					}
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[id]
					if obj == nil {
						obj = info.Uses[id]
					}
					if obj == nil {
						continue
					}
					if taintedExpr(x.Rhs[i]) {
						tainted[obj] = true
					}
				}
			case *ast.RangeStmt:
				if x.X != nil && taintedExpr(x.X) {
					for _, v := range []ast.Expr{x.Key, x.Value} {
						if id, ok := v.(*ast.Ident); ok && id != nil {
							if obj := info.Defs[id]; obj != nil {
								tainted[obj] = true
							}
						}
					}
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if !taintedExpr(r) {
						continue
					}
					t := info.Types[r].Type
					if t == nil {
						continue
					}
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map:
						diags = append(diags, Diagnostic{
							Pos:      w.Position(r.Pos()),
							Analyzer: noAliasEscapeName,
							Message: fmt.Sprintf("%s returns an interior %s of cached state without copying; callers can mutate shared cache content",
								fn.Obj.Name(), kindWord(t)),
						})
					}
				}
			}
			return true
		})
	}
	return diags
}

func kindWord(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}
