// conf-knob-registry: every "hive.*" configuration string in the tree
// must be declared in the single knob table (the package-level var whose
// doc comment carries a lint:knob-registry marker), and every declared
// knob must actually be read or written somewhere outside the table.
// This catches both misspellings — a confBool("hive.query.result.cache")
// typo silently reads an empty default — and dead knobs that outlived the
// code they configured. Knobs marked Startup: true are consumed at server
// boot rather than per-session and are exempt from the dead-knob check.
// Test files count as usages (many knobs are exercised only by the e2e
// suites' SetConf calls).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// ConfKnobRegistry is the knob-table analyzer.
const confKnobRegistryName = "conf-knob-registry"

var ConfKnobRegistry = &Analyzer{
	Name: confKnobRegistryName,
	Doc:  "every hive.* literal must be declared in the lint:knob-registry table; declared knobs must be used",
	Run:  runConfKnobRegistry,
}

var knobRe = regexp.MustCompile(`^hive\.[a-z][a-z0-9._]*$`)

const registryMarker = "lint:knob-registry"

type knobDecl struct {
	pos     token.Pos
	startup bool
}

func runConfKnobRegistry(w *Workspace) []Diagnostic {
	declared := map[string]*knobDecl{}
	var registryRanges []ast.Node

	// Pass 1: find marked registry declarations and collect their keys.
	for _, pkg := range w.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				if gd.Doc == nil || !strings.Contains(gd.Doc.Text(), registryMarker) {
					continue
				}
				registryRanges = append(registryRanges, gd)
				collectRegistryKeys(gd, declared)
			}
		}
	}

	var diags []Diagnostic
	if len(registryRanges) == 0 {
		// No registry declared anywhere: every knob literal is undeclared.
		// Report once at each use rather than failing silently.
		for _, pkg := range w.Pkgs {
			for _, f := range pkg.Files {
				forEachKnobLiteral(f, func(lit *ast.BasicLit, knob string) {
					diags = append(diags, Diagnostic{
						Pos:      w.Position(lit.Pos()),
						Analyzer: confKnobRegistryName,
						Message:  fmt.Sprintf("conf knob %q used but no lint:knob-registry table is declared", knob),
					})
				})
			}
		}
		return diags
	}

	inRegistry := func(pos token.Pos) bool {
		for _, r := range registryRanges {
			if nodeContains(r, pos) {
				return true
			}
		}
		return false
	}

	// Pass 2: every knob literal outside the registry must be declared;
	// count usages (test files included, syntax-only).
	used := map[string]bool{}
	for _, pkg := range w.Pkgs {
		for _, f := range pkg.Files {
			forEachKnobLiteral(f, func(lit *ast.BasicLit, knob string) {
				if inRegistry(lit.Pos()) {
					return
				}
				used[knob] = true
				if _, ok := declared[knob]; !ok {
					diags = append(diags, Diagnostic{
						Pos:      w.Position(lit.Pos()),
						Analyzer: confKnobRegistryName,
						Message:  fmt.Sprintf("conf knob %q is not declared in the knob registry (misspelled or undeclared)", knob),
					})
				}
			})
		}
		for _, f := range pkg.TestFiles {
			forEachKnobLiteral(f, func(lit *ast.BasicLit, knob string) {
				used[knob] = true
			})
		}
	}

	// Pass 3: dead knobs — declared, not startup-scoped, never used.
	for knob, d := range declared {
		if !d.startup && !used[knob] {
			diags = append(diags, Diagnostic{
				Pos:      w.Position(d.pos),
				Analyzer: confKnobRegistryName,
				Message:  fmt.Sprintf("conf knob %q is declared but never read or written outside the registry (dead knob)", knob),
			})
		}
	}
	return diags
}

// collectRegistryKeys walks a registry var declaration: map keys (or Name
// fields in a slice-of-struct table) that look like knobs become declared
// entries; a Startup: true field in the entry's value marks it
// boot-time-only.
func collectRegistryKeys(gd *ast.GenDecl, declared map[string]*knobDecl) {
	ast.Inspect(gd, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(kv.Key).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		knob := strings.Trim(lit.Value, `"`)
		if !knobRe.MatchString(knob) {
			return true
		}
		d := &knobDecl{pos: lit.Pos()}
		ast.Inspect(kv.Value, func(m ast.Node) bool {
			if fv, ok := m.(*ast.KeyValueExpr); ok {
				if id, ok := fv.Key.(*ast.Ident); ok && id.Name == "Startup" {
					if b, ok := fv.Value.(*ast.Ident); ok && b.Name == "true" {
						d.startup = true
					}
				}
			}
			return true
		})
		declared[knob] = d
		return true
	})
}

// forEachKnobLiteral invokes fn for every knob-shaped string literal in a
// file.
func forEachKnobLiteral(f *ast.File, fn func(lit *ast.BasicLit, knob string)) {
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		knob := strings.Trim(lit.Value, `"`)
		if knobRe.MatchString(knob) {
			fn(lit, knob)
		}
		return true
	})
}
