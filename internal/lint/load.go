// Module loading for hivelint: a stdlib-only package loader (go/parser +
// go/types) that walks the module, parses every non-test file honoring
// //go:build constraints, and type-checks packages in dependency order.
// Test files are parsed syntax-only so purely lexical analyzers (the conf
// knob registry) can count usages in tests without type-checking them.
package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File // non-test files, type-checked
	// TestFiles are the package's _test.go files, parsed but NOT
	// type-checked; only lexical analyzers may consult them.
	TestFiles []*ast.File
	Types     *types.Package
	Info      *types.Info
}

// Workspace is the full module view analyzers run over.
type Workspace struct {
	Fset *token.FileSet
	Pkgs []*Package

	funcs []*FuncInfo
	edges map[*types.Func][]*types.Func
}

// Position resolves a token.Pos against the workspace's file set.
func (w *Workspace) Position(pos token.Pos) token.Position { return w.Fset.Position(pos) }

// buildTagSatisfied evaluates a //go:build expression with the default tag
// set (no custom tags: -tags stress twins and friends are excluded, exactly
// like a plain `go build`).
func buildTagSatisfied(expr constraint.Expr) bool {
	return expr.Eval(func(tag string) bool {
		switch {
		case tag == "linux" || tag == "amd64" || tag == "unix" || tag == "gc":
			return true
		case strings.HasPrefix(tag, "go1."):
			return true
		}
		return false
	})
}

// fileIncluded reports whether a parsed file participates in a default
// build (no -tags), by evaluating its //go:build / legacy +build lines.
func fileIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				expr, err := constraint.Parse(c.Text)
				if err != nil {
					return false
				}
				if !buildTagSatisfied(expr) {
					return false
				}
			}
		}
	}
	return true
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

type rawPkg struct {
	pkgPath string
	dir     string
	files   []*ast.File
	tests   []*ast.File
	imports []string // module-internal imports only
}

// LoadModule parses and type-checks every package under root (the module
// root). Directories named testdata, vendor and hidden directories are
// skipped, matching the go tool's convention.
func LoadModule(root string) (*Workspace, error) {
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// Collect candidate package directories.
	var dirs []string
	seen := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if !seen[dir] {
				seen[dir] = true
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	raws := map[string]*rawPkg{}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := mod
		if rel != "." {
			pkgPath = mod + "/" + filepath.ToSlash(rel)
		}
		rp, err := parseDir(fset, dir, pkgPath, mod)
		if err != nil {
			return nil, err
		}
		if rp != nil {
			raws[pkgPath] = rp
		}
	}

	order, err := topoSort(raws)
	if err != nil {
		return nil, err
	}

	w := &Workspace{Fset: fset}
	checked := map[string]*types.Package{}
	imp := &moduleImporter{checked: checked, fallback: importer.ForCompiler(fset, "source", nil)}
	for _, pkgPath := range order {
		rp := raws[pkgPath]
		info := &types.Info{
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Types:      map[ast.Expr]types.TypeAndValue{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkgPath, fset, rp.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
		}
		checked[pkgPath] = tpkg
		w.Pkgs = append(w.Pkgs, &Package{
			PkgPath:   pkgPath,
			Dir:       rp.dir,
			Files:     rp.files,
			TestFiles: rp.tests,
			Types:     tpkg,
			Info:      info,
		})
	}
	return w, nil
}

// LoadDir loads a single self-contained package directory (the fixture
// harness): no module resolution, stdlib imports only.
func LoadDir(dir string) (*Workspace, error) {
	fset := token.NewFileSet()
	rp, err := parseDir(fset, dir, filepath.Base(dir), "")
	if err != nil {
		return nil, err
	}
	if rp == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(rp.pkgPath, fset, rp.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %v", dir, err)
	}
	w := &Workspace{Fset: fset}
	w.Pkgs = append(w.Pkgs, &Package{
		PkgPath: rp.pkgPath, Dir: rp.dir, Files: rp.files, TestFiles: rp.tests,
		Types: tpkg, Info: info,
	})
	return w, nil
}

// parseDir parses one directory's files; returns nil when the directory
// holds no buildable non-test Go files.
func parseDir(fset *token.FileSet, dir, pkgPath, mod string) (*rawPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rp := &rawPkg{pkgPath: pkgPath, dir: dir}
	impSet := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			rp.tests = append(rp.tests, f)
			continue
		}
		if !fileIncluded(f) {
			continue
		}
		rp.files = append(rp.files, f)
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if mod != "" && (p == mod || strings.HasPrefix(p, mod+"/")) {
				impSet[p] = true
			}
		}
	}
	if len(rp.files) == 0 {
		return nil, nil
	}
	for p := range impSet {
		rp.imports = append(rp.imports, p)
	}
	sort.Strings(rp.imports)
	return rp, nil
}

// topoSort orders packages so every module-internal import precedes its
// importer.
func topoSort(raws map[string]*rawPkg) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		rp := raws[p]
		if rp != nil {
			for _, dep := range rp.imports {
				if _, ok := raws[dep]; ok {
					if err := visit(dep); err != nil {
						return err
					}
				}
			}
		}
		state[p] = 2
		if rp != nil {
			order = append(order, p)
		}
		return nil
	}
	var keys []string
	for k := range raws {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := visit(k); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter serves module-internal packages from the checked set and
// everything else (the stdlib) from the source importer.
type moduleImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}
