package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Each fixture package under testdata exercises one analyzer. Expected
// diagnostics are `// want "substring"` comments on the flagged line —
// every want must match a diagnostic and every diagnostic must match a
// want, so both false negatives and false positives fail the harness.
var fixtureAnalyzers = map[string]*Analyzer{
	"reserve":     ReservationBalance,
	"snapshot":    SnapshotPinning,
	"alias":       NoAliasEscape,
	"closecancel": CloseAndCancel,
	"knobs":       ConfKnobRegistry,
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type want struct {
	file string
	line int
	sub  string
	hit  bool
}

func collectWants(w *Workspace) []*want {
	var out []*want
	for _, pkg := range w.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := w.Position(c.Pos())
					out = append(out, &want{file: pos.Filename, line: pos.Line, sub: m[1]})
				}
			}
		}
	}
	return out
}

func TestFixtures(t *testing.T) {
	for name, an := range fixtureAnalyzers {
		t.Run(name, func(t *testing.T) {
			w, err := LoadDir(filepath.Join("testdata", name))
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			got := Run(w, []*Analyzer{an})
			wants := collectWants(w)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want expectations", name)
			}
			var unexpected []string
			for _, d := range got {
				matched := false
				for _, want := range wants {
					if !want.hit && want.file == d.Pos.Filename && want.line == d.Pos.Line &&
						strings.Contains(d.Message, want.sub) {
						want.hit = true
						matched = true
						break
					}
				}
				if !matched {
					unexpected = append(unexpected, d.String())
				}
			}
			for _, want := range wants {
				if !want.hit {
					unexpected = append(unexpected,
						fmt.Sprintf("%s:%d: missing diagnostic containing %q", want.file, want.line, want.sub))
				}
			}
			for _, u := range unexpected {
				t.Error(u)
			}
		})
	}
}

// TestSuppressionHygiene checks the framework's own diagnostics: a stale
// //lint:ignore (nothing to suppress) and a reason-less one are findings.
func TestSuppressionHygiene(t *testing.T) {
	w, err := LoadDir(filepath.Join("testdata", "alias"))
	if err != nil {
		t.Fatal(err)
	}
	// Run with no analyzers: every suppression in the fixture is unused.
	diags := Run(w, nil)
	found := false
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "unused suppression") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an unused-suppression diagnostic, got %v", diags)
	}
}

// TestModuleClean pins the tentpole property: the repo's own tree has zero
// findings (every true positive fixed, every deliberate exception
// annotated).
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	w, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range Run(w, Analyzers()) {
		t.Errorf("unexpected finding: %s", d)
	}
}
