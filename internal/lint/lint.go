// Package lint is hivelint's analyzer framework: repo-specific invariants
// — the governor/snapshot/aliasing/cleanup contracts the paper's LLAP and
// workload-management design depends on — each enforced mechanically as a
// named analyzer over the type-checked module. The driver (cmd/hivelint)
// loads every package, runs the analyzers, applies //lint:ignore
// suppressions and exits non-zero on findings, so `make check` fails when
// a PR reintroduces a bug class an earlier PR fixed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant checked over the whole workspace.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(w *Workspace) []Diagnostic
}

// Analyzers returns the full hivelint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ReservationBalance,
		SnapshotPinning,
		NoAliasEscape,
		CloseAndCancel,
		ConfKnobRegistry,
	}
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzer string
	reason   string
	line     int
	used     bool
	pos      token.Position
}

var suppressRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// collectSuppressions parses //lint:ignore <analyzer> <reason> directives
// from every file. A directive suppresses matching diagnostics on its own
// line and on the line directly below it (the conventional "comment above
// the flagged statement" placement). Malformed directives — no analyzer
// name or an empty reason — are themselves diagnostics: a suppression with
// no recorded rationale is how contracts rot silently.
func collectSuppressions(w *Workspace) (map[string][]*suppression, []Diagnostic) {
	byFile := map[string][]*suppression{}
	var bad []Diagnostic
	for _, pkg := range w.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//lint:ignore") {
						continue
					}
					pos := w.Position(c.Pos())
					m := suppressRe.FindStringSubmatch(c.Text)
					if m == nil || strings.TrimSpace(m[2]) == "" {
						bad = append(bad, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
						})
						continue
					}
					byFile[pos.Filename] = append(byFile[pos.Filename], &suppression{
						analyzer: m[1], reason: strings.TrimSpace(m[2]), line: pos.Line, pos: pos,
					})
				}
			}
		}
	}
	return byFile, bad
}

// Run executes the analyzers over the workspace, applies suppressions, and
// returns surviving diagnostics sorted by position. Unused suppressions
// are reported so stale ignores cannot linger after the code they excused
// is gone.
func Run(w *Workspace, analyzers []*Analyzer) []Diagnostic {
	supp, diags := collectSuppressions(w)
	for _, a := range analyzers {
		for _, d := range a.Run(w) {
			if s := matchSuppression(supp[d.Pos.Filename], a.Name, d.Pos.Line); s != nil {
				s.used = true
				continue
			}
			diags = append(diags, d)
		}
	}
	for _, ss := range supp {
		for _, s := range ss {
			if !s.used {
				diags = append(diags, Diagnostic{
					Pos:      s.pos,
					Analyzer: "lint",
					Message:  fmt.Sprintf("unused suppression for %q: no diagnostic here", s.analyzer),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

func matchSuppression(ss []*suppression, analyzer string, line int) *suppression {
	for _, s := range ss {
		if s.analyzer == analyzer && (s.line == line || s.line == line-1) {
			return s
		}
	}
	return nil
}

// nodeContains reports whether the node's source range covers pos.
func nodeContains(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos <= n.End()
}
