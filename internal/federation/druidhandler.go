package federation

import (
	"encoding/json"
	"fmt"

	"repro/internal/druid"
	"repro/internal/exec"
	"repro/internal/metastore"
	"repro/internal/plan"
	"repro/internal/types"
)

// DruidHandlerName is the STORED BY class for Druid tables, matching the
// paper's examples.
const DruidHandlerName = "org.apache.hadoop.hive.druid.DruidStorageHandler"

// DruidHandler federates to a Druid cluster over its HTTP JSON API.
type DruidHandler struct {
	Store  *druid.Store  // used by the hook to create datasources
	Client *druid.Client // HTTP access for query execution
}

// NewDruidHandler wires a handler to a Druid store and server URL.
func NewDruidHandler(store *druid.Store, baseURL string) *DruidHandler {
	return &DruidHandler{Store: store, Client: &druid.Client{BaseURL: baseURL}}
}

// Name implements StorageHandler.
func (h *DruidHandler) Name() string { return DruidHandlerName }

// Hook implements StorageHandler.
func (h *DruidHandler) Hook() metastore.Hook { return &druidHook{h: h} }

type druidHook struct{ h *DruidHandler }

// OnCreateTable maps or creates the Druid datasource. When the table names
// an existing datasource through the druid.datasource property, columns
// are inferred from Druid metadata (paper §6.1); otherwise a datasource is
// created from the declared columns: __time TIMESTAMP, STRING columns as
// dimensions, numeric columns as metrics.
func (hk *druidHook) OnCreateTable(t *metastore.Table) error {
	name := t.Props["druid.datasource"]
	if name == "" {
		name = t.FullName()
		t.Props["druid.datasource"] = name
	}
	if ds, ok := hk.h.Store.Get(name); ok {
		if len(t.Cols) == 0 {
			// Infer schema from Druid metadata.
			sch := ds.Schema()
			t.Cols = append(t.Cols, metastore.Column{Name: druid.TimeColumn, Type: types.TTimestamp})
			for _, d := range sch.Dimensions {
				t.Cols = append(t.Cols, metastore.Column{Name: d, Type: types.TString})
			}
			for _, m := range sch.Metrics {
				t.Cols = append(t.Cols, metastore.Column{Name: m, Type: types.TDouble})
			}
		}
		return nil
	}
	if len(t.Cols) == 0 {
		return fmt.Errorf("federation: druid datasource %s does not exist and no columns declared", name)
	}
	sch := druid.Schema{}
	for _, c := range t.Cols {
		switch {
		case c.Name == druid.TimeColumn:
		case c.Type.Kind == types.String:
			sch.Dimensions = append(sch.Dimensions, c.Name)
		default:
			sch.Metrics = append(sch.Metrics, c.Name)
		}
	}
	_, err := hk.h.Store.CreateDataSource(name, sch)
	return err
}

// OnDropTable drops the datasource for managed Druid tables.
func (hk *druidHook) OnDropTable(t *metastore.Table) error {
	if !t.External {
		hk.h.Store.Drop(t.Props["druid.datasource"])
	}
	return nil
}

// CreateReader implements StorageHandler: it sends the pushed JSON query
// (or a full scan) over HTTP and decodes the rows.
func (h *DruidHandler) CreateReader(t *metastore.Table, fields []plan.Field, pushedQuery string) (exec.Operator, error) {
	query := pushedQuery
	if query == "" {
		q := druid.Query{QueryType: "scan", DataSource: t.Props["druid.datasource"]}
		for _, f := range fields {
			q.Columns = append(q.Columns, f.Name)
		}
		b, err := json.Marshal(q)
		if err != nil {
			return nil, err
		}
		query = string(b)
	}
	rows, err := h.Client.QueryJSON(query)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = f.Name
	}
	decoded, err := decodeResultRows(rows, fields, names)
	if err != nil {
		return nil, err
	}
	ts := make([]types.T, len(fields))
	for i, f := range fields {
		ts[i] = f.T
	}
	return &rowsOp{rows: decoded, ts: ts}, nil
}

// druidWriter ingests rows into the datasource.
type druidWriter struct {
	ds   *druid.DataSource
	cols []metastore.Column
	buf  []druid.Event
}

// Writer implements StorageHandler.
func (h *DruidHandler) Writer(t *metastore.Table) (RowWriter, error) {
	ds, ok := h.Store.Get(t.Props["druid.datasource"])
	if !ok {
		return nil, fmt.Errorf("federation: no datasource for %s", t.FullName())
	}
	return &druidWriter{ds: ds, cols: t.Cols}, nil
}

func (w *druidWriter) WriteRow(row []types.Datum) error {
	e := druid.Event{Dims: map[string]string{}, Metrics: map[string]float64{}}
	for i, c := range w.cols {
		if i >= len(row) {
			break
		}
		d := row[i]
		switch {
		case c.Name == druid.TimeColumn:
			if !d.Null {
				e.Time = d.I
			}
		case c.Type.Kind == types.String:
			e.Dims[c.Name] = formatDatum(d)
		default:
			if !d.Null {
				e.Metrics[c.Name] = d.Float()
			}
		}
	}
	w.buf = append(w.buf, e)
	if len(w.buf) >= 4096 {
		w.ds.Insert(w.buf)
		w.buf = w.buf[:0]
	}
	return nil
}

func (w *druidWriter) Close() error {
	if len(w.buf) > 0 {
		w.ds.Insert(w.buf)
		w.buf = nil
	}
	return nil
}

// Pushdown folds Filter/Aggregate/Sort/Limit subtrees over a Druid scan
// into one JSON query (paper Figure 6). Supported shapes, innermost first:
//
//	Scan [+filters]                          -> scan query
//	Aggregate(Scan [+filters])               -> groupBy
//	Limit(Sort(Aggregate(Scan [+filters])))  -> groupBy with limitSpec
func (h *DruidHandler) Pushdown(rel plan.Rel) *plan.ForeignScan {
	var limit *plan.Limit
	var sortNode *plan.Sort
	cur := rel
	if l, ok := cur.(*plan.Limit); ok {
		if s, ok := l.Input.(*plan.Sort); ok {
			limit, sortNode = l, s
			cur = s.Input
		}
	}
	switch node := cur.(type) {
	case *plan.Aggregate:
		return h.pushAggregate(node, sortNode, limit)
	case *plan.Scan:
		if limit != nil {
			return nil
		}
		return h.pushScan(node)
	}
	return nil
}

func (h *DruidHandler) pushScan(s *plan.Scan) *plan.ForeignScan {
	if s.Table.StorageHandler != DruidHandlerName || s.Meta {
		return nil
	}
	filter, ok := h.filterOf(s)
	if !ok {
		return nil
	}
	q := druid.Query{QueryType: "scan", DataSource: s.Table.Props["druid.datasource"], Filter: filter}
	fields := s.Schema()
	for _, f := range fields {
		q.Columns = append(q.Columns, f.Name)
	}
	body, err := json.Marshal(q)
	if err != nil {
		return nil
	}
	// Druid returns rows keyed by column name; keep names as fields.
	return &plan.ForeignScan{
		Handler: DruidHandlerName,
		Table:   s.Table,
		Query:   string(body),
		Pushed:  "scan+filter",
		Fields:  fields,
	}
}

// filterOf converts the scan's pushed predicates into a Druid filter.
func (h *DruidHandler) filterOf(s *plan.Scan) (*druid.Filter, bool) {
	if len(s.Filter) == 0 {
		return nil, true
	}
	var fields []*druid.Filter
	schema := s.Schema()
	for _, pred := range s.Filter {
		f, ok := rexToDruidFilter(pred, schema)
		if !ok {
			return nil, false
		}
		fields = append(fields, f)
	}
	if len(fields) == 1 {
		return fields[0], true
	}
	return &druid.Filter{Type: "and", Fields: fields}, true
}

// rexToDruidFilter translates a predicate into Druid's filter JSON.
func rexToDruidFilter(r plan.Rex, schema []plan.Field) (*druid.Filter, bool) {
	fn, ok := r.(*plan.Func)
	if !ok {
		return nil, false
	}
	dimOf := func(e plan.Rex) (string, bool, bool) { // name, isNumeric, ok
		c, ok := e.(*plan.ColRef)
		if !ok || c.Idx >= len(schema) {
			return "", false, false
		}
		return schema[c.Idx].Name, c.T.Numeric() || c.T.Kind == types.Timestamp, true
	}
	litOf := func(e plan.Rex) (string, bool) {
		l, ok := e.(*plan.Literal)
		if !ok || l.Val.Null {
			return "", false
		}
		return l.Val.String(), true
	}
	switch fn.Op {
	case "=", "<", "<=", ">", ">=":
		if len(fn.Args) != 2 {
			return nil, false
		}
		dim, numeric, ok := dimOf(fn.Args[0])
		val, ok2 := litOf(fn.Args[1])
		op := fn.Op
		if !ok || !ok2 {
			// try reversed operand order
			dim, numeric, ok = dimOf(fn.Args[1])
			val, ok2 = litOf(fn.Args[0])
			if !ok || !ok2 {
				return nil, false
			}
			op = flip(op)
		}
		ordering := ""
		if numeric {
			ordering = "numeric"
		}
		switch op {
		case "=":
			if numeric {
				return &druid.Filter{Type: "bound", Dimension: dim, Lower: val, Upper: val, Ordering: ordering}, true
			}
			return &druid.Filter{Type: "selector", Dimension: dim, Value: val}, true
		case "<":
			return &druid.Filter{Type: "bound", Dimension: dim, Upper: val, UpperStrict: true, Ordering: ordering}, true
		case "<=":
			return &druid.Filter{Type: "bound", Dimension: dim, Upper: val, Ordering: ordering}, true
		case ">":
			return &druid.Filter{Type: "bound", Dimension: dim, Lower: val, LowerStrict: true, Ordering: ordering}, true
		case ">=":
			return &druid.Filter{Type: "bound", Dimension: dim, Lower: val, Ordering: ordering}, true
		}
	case "and", "or":
		var subs []*druid.Filter
		for _, a := range fn.Args {
			f, ok := rexToDruidFilter(a, schema)
			if !ok {
				return nil, false
			}
			subs = append(subs, f)
		}
		return &druid.Filter{Type: fn.Op, Fields: subs}, true
	case "in":
		dim, _, ok := dimOf(fn.Args[0])
		if !ok {
			return nil, false
		}
		var subs []*druid.Filter
		for _, a := range fn.Args[1:] {
			val, ok := litOf(a)
			if !ok {
				return nil, false
			}
			subs = append(subs, &druid.Filter{Type: "selector", Dimension: dim, Value: val})
		}
		return &druid.Filter{Type: "or", Fields: subs}, true
	}
	return nil, false
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// pushAggregate folds Aggregate(Scan) into a groupBy query, with an
// optional Sort+Limit as limitSpec (the Figure 6 pattern).
func (h *DruidHandler) pushAggregate(agg *plan.Aggregate, sortNode *plan.Sort, limit *plan.Limit) *plan.ForeignScan {
	scan, ok := agg.Input.(*plan.Scan)
	if !ok || scan.Table.StorageHandler != DruidHandlerName || scan.Meta {
		return nil
	}
	if agg.GroupingSets != nil {
		return nil
	}
	filter, ok := h.filterOf(scan)
	if !ok {
		return nil
	}
	schema := scan.Schema()
	q := druid.Query{
		QueryType:   "groupBy",
		DataSource:  scan.Table.Props["druid.datasource"],
		Granularity: "all",
		Filter:      filter,
	}
	outFields := agg.Schema()
	var outNames []string
	for _, g := range agg.GroupBy {
		c, ok := g.(*plan.ColRef)
		if !ok || c.T.Kind != types.String {
			return nil // only plain string dimensions push down
		}
		q.Dimensions = append(q.Dimensions, schema[c.Idx].Name)
		outNames = append(outNames, schema[c.Idx].Name)
	}
	for i, a := range agg.Aggs {
		name := fmt.Sprintf("a%d", i)
		spec := druid.Aggregation{Name: name}
		switch a.Fn {
		case "count":
			if a.Distinct {
				return nil
			}
			spec.Type = "count"
		case "sum":
			c, ok := a.Arg.(*plan.ColRef)
			if !ok {
				return nil
			}
			spec.Type = "doubleSum"
			if a.T.Kind == types.Int64 {
				spec.Type = "longSum"
			}
			spec.FieldName = schema[c.Idx].Name
		case "min", "max":
			c, ok := a.Arg.(*plan.ColRef)
			if !ok {
				return nil
			}
			spec.Type = "doubleMin"
			if a.Fn == "max" {
				spec.Type = "doubleMax"
			}
			spec.FieldName = schema[c.Idx].Name
		default:
			return nil
		}
		q.Aggregations = append(q.Aggregations, spec)
		outNames = append(outNames, name)
	}
	pushed := "groupBy"
	if sortNode != nil && limit != nil {
		ls := &druid.LimitSpec{Limit: int(limit.N)}
		for _, k := range sortNode.Keys {
			if k.Col >= len(outNames) {
				return nil
			}
			dir := "ascending"
			if k.Desc {
				dir = "descending"
			}
			ls.Columns = append(ls.Columns, druid.OrderByColumn{Dimension: outNames[k.Col], Direction: dir})
		}
		q.LimitSpec = ls
		pushed = "groupBy+sort+limit"
	}
	body, err := json.Marshal(q)
	if err != nil {
		return nil
	}
	// Output fields carry the Druid result keys as names.
	fields := make([]plan.Field, len(outFields))
	for i := range outFields {
		fields[i] = plan.Field{Name: outNames[i], T: outFields[i].T}
	}
	return &plan.ForeignScan{
		Handler: DruidHandlerName,
		Table:   scan.Table,
		Query:   string(body),
		Pushed:  pushed,
		Fields:  fields,
	}
}
