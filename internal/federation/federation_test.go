package federation

import (
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/druid"
	"repro/internal/exec"
	"repro/internal/metastore"
	"repro/internal/plan"
	"repro/internal/types"
)

func druidFixture(t *testing.T) (*metastore.Metastore, *Registry, *metastore.Table) {
	t.Helper()
	ms := metastore.New(dfs.New(), "/wh")
	store := druid.NewStore()
	srv, err := druid.NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	reg := NewRegistry()
	reg.Register(ms, NewDruidHandler(store, srv.URL()))
	tbl := &metastore.Table{
		DB: "default", Name: "events", External: false,
		StorageHandler: DruidHandlerName,
		Props:          map[string]string{"druid.datasource": "events"},
		Cols: []metastore.Column{
			{Name: druid.TimeColumn, Type: types.TTimestamp},
			{Name: "d1", Type: types.TString},
			{Name: "m1", Type: types.TDouble},
		},
	}
	if err := ms.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	return ms, reg, tbl
}

func TestHookCreatesDatasourceAndWriterIngests(t *testing.T) {
	_, reg, tbl := druidFixture(t)
	h, _ := reg.Handler(DruidHandlerName)
	w, err := h.Writer(tbl)
	if err != nil {
		t.Fatal(err)
	}
	w.WriteRow([]types.Datum{types.NewTimestamp(1), types.NewString("a"), types.NewDouble(2)})
	w.WriteRow([]types.Datum{types.NewTimestamp(2), types.NewString("b"), types.NewDouble(3)})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Read back through the input format (full scan over HTTP).
	op, err := h.CreateReader(tbl, plan.NewScan(tbl, "events").Schema(), "")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
}

func TestPushdownGroupBySortLimit(t *testing.T) {
	_, reg, tbl := druidFixture(t)
	scan := plan.NewScan(tbl, "events")
	scan.Filter = []plan.Rex{plan.NewFunc("=", types.TBool,
		&plan.ColRef{Idx: 1, T: types.TString}, plan.NewLiteral(types.NewString("a")))}
	agg := &plan.Aggregate{
		Input:   scan,
		GroupBy: []plan.Rex{&plan.ColRef{Idx: 1, T: types.TString}},
		Aggs:    []plan.AggCall{{Fn: "sum", Arg: &plan.ColRef{Idx: 2, T: types.TDouble}, T: types.TDouble}},
	}
	top := &plan.Limit{Input: &plan.Sort{Input: agg, Keys: []plan.SortKey{{Col: 1, Desc: true}}}, N: 5}
	out := reg.PushComputation(top)
	fs, ok := out.(*plan.ForeignScan)
	if !ok {
		t.Fatalf("not folded: %T\n%s", out, plan.Explain(out))
	}
	for _, want := range []string{`"queryType":"groupBy"`, `"limit":5`, `"selector"`, `"descending"`} {
		if !strings.Contains(fs.Query, want) {
			t.Errorf("generated JSON missing %s:\n%s", want, fs.Query)
		}
	}
	if fs.Pushed != "groupBy+sort+limit" {
		t.Errorf("pushed marker: %s", fs.Pushed)
	}
}

func TestPushdownRefusesUnsupportedShapes(t *testing.T) {
	_, reg, tbl := druidFixture(t)
	scan := plan.NewScan(tbl, "events")
	// COUNT(DISTINCT) cannot push.
	agg := &plan.Aggregate{
		Input:   scan,
		GroupBy: []plan.Rex{&plan.ColRef{Idx: 1, T: types.TString}},
		Aggs:    []plan.AggCall{{Fn: "count", Distinct: true, Arg: &plan.ColRef{Idx: 2, T: types.TDouble}, T: types.TBigint}},
	}
	out := reg.PushComputation(agg)
	if _, folded := out.(*plan.ForeignScan); folded {
		t.Error("count distinct must not push to Druid")
	}
	// The scan below may still fold; the aggregate must remain local.
	if _, isAgg := out.(*plan.Aggregate); !isAgg {
		t.Errorf("aggregate should stay local: %T", out)
	}
}
