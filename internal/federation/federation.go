// Package federation implements Hive's storage handler architecture (paper
// §6.1): an input format that reads an external system (optionally
// executing a pushed-down query), an output format that writes to it, a
// SerDe converting between Hive's representation and the external one, and
// a Metastore hook for DDL notifications. The Druid handler is the
// flagship implementation; the pushdown rule generates Druid JSON from the
// relational plan (paper §6.2, Figure 6).
package federation

import (
	"encoding/json"
	"fmt"

	"repro/internal/druid"
	"repro/internal/exec"
	"repro/internal/metastore"
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// StorageHandler federates one external system.
type StorageHandler interface {
	// Name is the handler class name used in STORED BY.
	Name() string
	// Hook returns the metastore notification hook.
	Hook() metastore.Hook
	// CreateReader builds an operator that reads the external table,
	// executing the pushed query when non-empty.
	CreateReader(t *metastore.Table, fields []plan.Field, pushedQuery string) (exec.Operator, error)
	// Writer returns a row sink for INSERT into the external table.
	Writer(t *metastore.Table) (RowWriter, error)
	// Pushdown attempts to fold a plan subtree over a scan of this
	// handler's table into a single external query, returning a
	// ForeignScan replacement (nil when not applicable).
	Pushdown(rel plan.Rel) *plan.ForeignScan
}

// RowWriter receives rows for external inserts.
type RowWriter interface {
	WriteRow(row []types.Datum) error
	Close() error
}

// Registry maps handler names to implementations.
type Registry struct {
	handlers map[string]StorageHandler
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{handlers: map[string]StorageHandler{}}
}

// Register installs a handler and its metastore hook.
func (r *Registry) Register(ms *metastore.Metastore, h StorageHandler) {
	r.handlers[h.Name()] = h
	ms.RegisterHook(h.Name(), h.Hook())
}

// Handler resolves a handler by name.
func (r *Registry) Handler(name string) (StorageHandler, bool) {
	h, ok := r.handlers[name]
	return h, ok
}

// PushComputation rewrites the plan, folding maximal subtrees over external
// tables into ForeignScans with generated queries — Hive's Calcite adapter
// role (paper §6.2).
func (r *Registry) PushComputation(rel plan.Rel) plan.Rel {
	// Try the largest subtree first; recurse into children on failure.
	if fs := r.tryPush(rel); fs != nil {
		return fs
	}
	switch x := rel.(type) {
	case *plan.Filter:
		return &plan.Filter{Input: r.PushComputation(x.Input), Cond: x.Cond}
	case *plan.Project:
		return &plan.Project{Input: r.PushComputation(x.Input), Exprs: x.Exprs, Names: x.Names}
	case *plan.Join:
		return &plan.Join{Kind: x.Kind, Left: r.PushComputation(x.Left), Right: r.PushComputation(x.Right), Cond: x.Cond, ReducerID: x.ReducerID}
	case *plan.Aggregate:
		return &plan.Aggregate{Input: r.PushComputation(x.Input), GroupBy: x.GroupBy, Aggs: x.Aggs, GroupingSets: x.GroupingSets, Names: x.Names}
	case *plan.Window:
		return &plan.Window{Input: r.PushComputation(x.Input), Fns: x.Fns, Names: x.Names}
	case *plan.Sort:
		return &plan.Sort{Input: r.PushComputation(x.Input), Keys: x.Keys}
	case *plan.Limit:
		return &plan.Limit{Input: r.PushComputation(x.Input), N: x.N, Offset: x.Offset}
	case *plan.SetOp:
		return &plan.SetOp{Kind: x.Kind, All: x.All, Left: r.PushComputation(x.Left), Right: r.PushComputation(x.Right)}
	case *plan.Spool:
		return &plan.Spool{ID: x.ID, Input: r.PushComputation(x.Input)}
	default:
		return rel
	}
}

func (r *Registry) tryPush(rel plan.Rel) *plan.ForeignScan {
	scan := findHandlerScan(rel)
	if scan == nil {
		return nil
	}
	h, ok := r.handlers[scan.Table.StorageHandler]
	if !ok {
		return nil
	}
	return h.Pushdown(rel)
}

// findHandlerScan returns the single handler-backed scan under rel through
// pushable nodes, or nil.
func findHandlerScan(rel plan.Rel) *plan.Scan {
	switch x := rel.(type) {
	case *plan.Scan:
		if x.Table.StorageHandler != "" {
			return x
		}
		return nil
	case *plan.Filter:
		return findHandlerScan(x.Input)
	case *plan.Project:
		return findHandlerScan(x.Input)
	case *plan.Aggregate:
		return findHandlerScan(x.Input)
	case *plan.Sort:
		return findHandlerScan(x.Input)
	case *plan.Limit:
		return findHandlerScan(x.Input)
	}
	return nil
}

// ForeignScanOp executes a pushed query through a handler.
type ForeignScanOp struct {
	Handler StorageHandler
	Table   *metastore.Table
	Fields  []plan.Field
	Query   string

	inner exec.Operator
}

// Types implements exec.Operator.
func (f *ForeignScanOp) Types() []types.T {
	ts := make([]types.T, len(f.Fields))
	for i, fd := range f.Fields {
		ts[i] = fd.T
	}
	return ts
}

// Open implements exec.Operator.
func (f *ForeignScanOp) Open() error {
	op, err := f.Handler.CreateReader(f.Table, f.Fields, f.Query)
	if err != nil {
		return err
	}
	f.inner = op
	return f.inner.Open()
}

// Next implements exec.Operator.
func (f *ForeignScanOp) Next() (*vector.Batch, error) { return f.inner.Next() }

// Close implements exec.Operator.
func (f *ForeignScanOp) Close() error {
	if f.inner == nil {
		return nil
	}
	return f.inner.Close()
}

// rowsToOperator adapts materialized datum rows into an operator.
type rowsOp struct {
	rows    [][]types.Datum
	ts      []types.T
	emitted int
}

func (r *rowsOp) Types() []types.T { return r.ts }
func (r *rowsOp) Open() error      { r.emitted = 0; return nil }
func (r *rowsOp) Close() error     { return nil }

func (r *rowsOp) Next() (*vector.Batch, error) {
	if r.emitted >= len(r.rows) {
		return nil, nil
	}
	n := len(r.rows) - r.emitted
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	b := vector.NewBatch(r.ts, n)
	for i := 0; i < n; i++ {
		for c, d := range r.rows[r.emitted+i] {
			b.Cols[c].Set(i, d)
		}
	}
	b.N = n
	r.emitted += n
	return b, nil
}

// decodeResultRows converts Druid JSON rows into typed datum rows in field
// order — the deserializer half of the SerDe (paper §6.1).
func decodeResultRows(rows []druid.ResultRow, fields []plan.Field, names []string) ([][]types.Datum, error) {
	out := make([][]types.Datum, len(rows))
	for i, rr := range rows {
		row := make([]types.Datum, len(fields))
		for c, f := range fields {
			v, ok := rr[names[c]]
			if !ok || v == nil {
				row[c] = types.NullOf(f.T.Kind)
				continue
			}
			d, err := anyToDatum(v, f.T)
			if err != nil {
				return nil, fmt.Errorf("federation: column %s: %v", names[c], err)
			}
			row[c] = d
		}
		out[i] = row
	}
	return out, nil
}

func anyToDatum(v any, t types.T) (types.Datum, error) {
	switch x := v.(type) {
	case string:
		return types.Cast(types.NewString(x), t)
	case float64:
		return types.Cast(types.NewDouble(x), t)
	case int64:
		return types.Cast(types.NewBigint(x), t)
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return types.Cast(types.NewBigint(i), t)
		}
		f, err := x.Float64()
		if err != nil {
			return types.Datum{}, err
		}
		return types.Cast(types.NewDouble(f), t)
	case bool:
		return types.Cast(types.NewBool(x), t)
	}
	return types.Datum{}, fmt.Errorf("unsupported JSON value %T", v)
}

func formatDatum(d types.Datum) string {
	if d.Null {
		return ""
	}
	return d.String()
}
