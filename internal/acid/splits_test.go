package acid

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/orc"
	"repro/internal/types"
	"repro/internal/vector"
)

// TestDropCoveredDoesNotCorruptInput is the regression test for the
// in-place filter bug: the old implementation built its result in
// `dirs[:0]`, overwriting entries of the input while the inner coverage
// loop still read them. With an interleaved covered/uncovered ordering the
// write frontier shifts below the read positions, so surviving entries get
// clobbered with duplicates of earlier keepers — corrupting the caller's
// slice (OpenSnapshot's candidate list, which stripe-granular split
// enumeration now walks again after the call).
func TestDropCoveredDoesNotCorruptInput(t *testing.T) {
	mk := func(lo, hi int64) storeDir {
		return storeDir{kind: kindDelta, min: lo, max: hi, path: fmt.Sprintf("/wh/t/delta_%07d_%07d", lo, hi)}
	}
	// Interleaved: covered, keeper, covered, wide keeper, covered, keeper.
	in := []storeDir{
		mk(2, 3),   // covered by 1..6
		mk(8, 8),   // keeper
		mk(4, 5),   // covered by 1..6
		mk(1, 6),   // wide keeper (the compacted replacement)
		mk(5, 6),   // covered by 1..6
		mk(10, 10), // keeper
	}
	orig := make([]storeDir, len(in))
	copy(orig, in)

	got := dropCovered(in)

	want := []storeDir{mk(8, 8), mk(1, 6), mk(10, 10)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dropCovered result:\n got  %v\nwant %v", got, want)
	}
	// The input must come back untouched: the old code left in =
	// [8_8, 1_6, 10_10, 1_6, 5_6, 10_10] — live dirs compared against
	// clobbered duplicates, and a caller re-reading its slice would
	// double-count compacted rows.
	if !reflect.DeepEqual(in, orig) {
		t.Errorf("dropCovered corrupted its input:\n got  %v\nwant %v", in, orig)
	}
}

// multiWriteDeleteDelta writes a compacted-form (multi-write) delete delta
// covering writes [lo, hi], with one delete record per entry: victim key
// plus the deleting write id.
func multiWriteDeleteDelta(t *testing.T, e *env, lo, hi int64, dels []struct {
	victim  RowKey
	deleter int64
}) {
	t.Helper()
	path := fmt.Sprintf("%s/%s/file_00000", e.loc, deleteDirName(lo, hi))
	w := orc.NewWriter(e.fs, path, DeleteSchema(), orc.WriterOptions{})
	for _, d := range dels {
		if err := w.WriteRow([]types.Datum{
			types.NewBigint(d.victim.WriteID),
			types.NewBigint(d.victim.FileID),
			types.NewBigint(d.victim.RowID),
			types.NewBigint(d.deleter),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactedDeleteDeltaRespectsSnapshot: a compacted (multi-write)
// delete delta folds deletes from several writes. An older snapshot whose
// high watermark sits inside that range must apply only the deletes its
// snapshot can see — the old code added every row of a multi-write dir to
// the delete set unconditionally, so deletes performed by invisible writes
// leaked into old snapshots.
func TestCompactedDeleteDeltaRespectsSnapshot(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 6) // write 1
	keys := e.scanKeys(t)
	// Snapshot before any deletes.
	oldSnap := e.tm.GetSnapshot()
	// Two deleting transactions (writes 2 and 3), then a snapshot between
	// them would be write-2-visible only; emulate the compactor's output: a
	// single delete_delta_2_3 folding both, with per-row deleter stamps.
	midSnap := oldSnap
	{
		id := e.tm.Begin()
		w, _ := e.tm.AllocateWriteId(id, "t")
		if w != 2 {
			t.Fatalf("expected write id 2, got %d", w)
		}
		dw := NewDeleteWriter(e.fs, e.loc, w, 0)
		if err := dw.Delete(keys[0]); err != nil {
			t.Fatal(err)
		}
		if err := dw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := e.tm.Commit(id); err != nil {
			t.Fatal(err)
		}
		midSnap = e.tm.GetSnapshot()
		id = e.tm.Begin()
		w, _ = e.tm.AllocateWriteId(id, "t")
		dw = NewDeleteWriter(e.fs, e.loc, w, 0)
		if err := dw.Delete(keys[1]); err != nil {
			t.Fatal(err)
		}
		if err := dw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := e.tm.Commit(id); err != nil {
			t.Fatal(err)
		}
	}
	// The compacted replacement (minor compaction of the two delete dirs).
	multiWriteDeleteDelta(t, e, 2, 3, []struct {
		victim  RowKey
		deleter int64
	}{
		{victim: keys[0], deleter: 2},
		{victim: keys[1], deleter: 3},
	})
	// Drop the original single-write dirs, as the cleaner would: the
	// compacted dir is now the only source of deletes.
	for _, w := range []int64{2, 3} {
		if err := e.fs.Remove(e.loc+"/"+deleteDirName(w, w), true); err != nil {
			t.Fatal(err)
		}
	}

	// Current snapshot: both deletes visible.
	if got := e.readIDs(t); !equalIDs(got, wantIDs(0, 6, 0, 1)) {
		t.Errorf("current snapshot: %v", got)
	}
	// Mid snapshot (only write 2 visible): only the first delete applies.
	if got := e.readIDsAt(t, midSnap); !equalIDs(got, wantIDs(0, 6, 0)) {
		t.Errorf("mid snapshot leaked an invisible delete: %v", got)
	}
	// Old snapshot (no deletes visible): all rows survive.
	if got := e.readIDsAt(t, oldSnap); !equalIDs(got, wantIDs(0, 6)) {
		t.Errorf("old snapshot leaked deletes: %v", got)
	}
}

// TestAbortedDeleteDeltaSkipsIO: the dir-level validity check must run
// before any file of an invalid single-write delete delta is listed or
// read. The old code paid a footer open plus a stripe read per file before
// discarding the directory.
func TestAbortedDeleteDeltaSkipsIO(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 4)
	keys := e.scanKeys(t)
	id := e.tm.Begin()
	w, _ := e.tm.AllocateWriteId(id, "t")
	dw := NewDeleteWriter(e.fs, e.loc, w, 0)
	if err := dw.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	e.tm.Abort(id)

	valid := e.tm.GetValidWriteIds("t", e.tm.GetSnapshot())
	e.fs.ResetStats()
	s, err := OpenSnapshot(e.fs, e.loc, testCols, valid)
	if err != nil {
		t.Fatal(err)
	}
	if s.DeleteCount() != 0 {
		t.Fatalf("aborted delete applied: %d deletes", s.DeleteCount())
	}
	// OpenSnapshot's only file reads are delete-delta loads; the aborted
	// dir is the sole delete delta, so no read ops may be charged.
	if st := e.fs.IOStats(); st.ReadOps != 0 {
		t.Errorf("aborted delete delta cost %d read ops, want 0", st.ReadOps)
	}
}

// splitsEnv builds a snapshot over inserts with configurable stripe sizes.
func splitsEnv(t *testing.T, stripeRows int, batches []int) (*env, *Snapshot) {
	t.Helper()
	e := newEnv()
	next := int64(0)
	for _, n := range batches {
		id := e.tm.Begin()
		w, err := e.tm.AllocateWriteId(id, "t")
		if err != nil {
			t.Fatal(err)
		}
		iw := NewInsertWriter(e.fs, e.loc, w, 0, testCols, orc.WriterOptions{StripeRows: stripeRows})
		for i := 0; i < n; i++ {
			if err := iw.WriteRow([]types.Datum{types.NewBigint(next), types.NewString("v")}); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if err := iw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := e.tm.Commit(id); err != nil {
			t.Fatal(err)
		}
	}
	valid := e.tm.GetValidWriteIds("t", e.tm.GetSnapshot())
	s, err := OpenSnapshot(e.fs, e.loc, testCols, valid)
	if err != nil {
		t.Fatal(err)
	}
	return e, s
}

// TestSplitsRangeBalancing drives Snapshot.Splits over skewed stripe
// sizes, single-stripe files and empty deltas, checking coverage and
// balance invariants.
func TestSplitsRangeBalancing(t *testing.T) {
	cases := []struct {
		name          string
		stripeRows    int
		batches       []int // rows per insert transaction (= per file)
		targetStripes int
		wantRanges    int
	}{
		// 16 uniform stripes of 4 rows in one file, 4 stripes per morsel.
		{name: "uniform", stripeRows: 4, batches: []int{64}, targetStripes: 4, wantRanges: 4},
		// Skew: 3 full stripes and a 1-row runt; two ranges must split the
		// rows 8/5, not 12/1.
		{name: "skewed_tail", stripeRows: 4, batches: []int{13}, targetStripes: 2, wantRanges: 2},
		// Single-stripe files each become exactly one range.
		{name: "single_stripe_files", stripeRows: 8, batches: []int{3, 5, 2}, targetStripes: 4, wantRanges: 3},
		// Empty delta directories (a committed insert of zero rows)
		// contribute no ranges: 2 stripes + 0 + 1 stripe at target 2.
		{name: "empty_delta", stripeRows: 4, batches: []int{8, 0, 4}, targetStripes: 2, wantRanges: 2},
		// target <= 0 defaults to one stripe per morsel.
		{name: "default_target", stripeRows: 4, batches: []int{16}, targetStripes: 0, wantRanges: 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, s := splitsEnv(t, tc.stripeRows, tc.batches)
			ranges, err := s.Splits(tc.targetStripes)
			if err != nil {
				t.Fatal(err)
			}
			if len(ranges) != tc.wantRanges {
				t.Fatalf("got %d ranges %v, want %d", len(ranges), ranges, tc.wantRanges)
			}
			// Invariants: ranges are non-empty, never span files, cover
			// each file's stripes exactly once, in order.
			perFile := map[string]int{}
			var totalRows int64
			for _, r := range ranges {
				if r.StripeHi <= r.StripeLo {
					t.Errorf("empty range %+v", r)
				}
				if r.StripeLo != perFile[r.File] {
					t.Errorf("gap or overlap at %+v (next stripe for %s is %d)", r, r.File, perFile[r.File])
				}
				perFile[r.File] = r.StripeHi
				if tc.targetStripes > 0 && r.StripeHi-r.StripeLo > tc.targetStripes {
					t.Errorf("range %+v exceeds target %d stripes", r, tc.targetStripes)
				}
				totalRows += r.Rows
			}
			var want int64
			for _, n := range tc.batches {
				want += int64(n)
			}
			if totalRows != want {
				t.Errorf("ranges account for %d rows, want %d", totalRows, want)
			}
			if tc.name == "skewed_tail" {
				if ranges[0].Rows != 8 || ranges[1].Rows != 5 {
					t.Errorf("skewed split rows = %d/%d, want 8/5", ranges[0].Rows, ranges[1].Rows)
				}
			}
		})
	}
}

// TestScanRangeMatchesScan verifies that the union of ScanRange calls over
// Splits returns exactly the rows of a whole-snapshot Scan, under live
// delete deltas, for every target granularity.
func TestScanRangeMatchesScan(t *testing.T) {
	e, _ := splitsEnv(t, 4, []int{30, 10, 25})
	keys := e.scanKeys(t)
	e.deleteKeys(t, []RowKey{keys[3], keys[17], keys[40], keys[62]})
	valid := e.tm.GetValidWriteIds("t", e.tm.GetSnapshot())
	s, err := OpenSnapshot(e.fs, e.loc, testCols, valid)
	if err != nil {
		t.Fatal(err)
	}
	collect := func(scan func(fn func(*vector.Batch) error) error) []int64 {
		var out []int64
		if err := scan(func(b *vector.Batch) error {
			for i := 0; i < b.N; i++ {
				out = append(out, b.Cols[0].I64[b.RowIdx(i)])
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	proj := []int{NumMetaCols + 0}
	want := collect(func(fn func(*vector.Batch) error) error {
		return s.Scan(proj, nil, fn)
	})
	for _, target := range []int{1, 2, 3, 100} {
		ranges, err := s.Splits(target)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(func(fn func(*vector.Batch) error) error {
			for _, r := range ranges {
				if err := s.ScanRange(r, proj, nil, fn); err != nil {
					return err
				}
			}
			return nil
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("target=%d: ScanRange union %v != Scan %v", target, got, want)
		}
	}
	// A file outside any store directory is rejected.
	if err := s.ScanRange(ScanRange{File: "/wh/t/stray_file"}, proj, nil, func(*vector.Batch) error { return nil }); err == nil {
		t.Error("ScanRange accepted a file outside base/delta directories")
	}
}

// TestSplitsShareDeleteSet confirms delete deltas are loaded once per
// snapshot, not re-read per stripe range: scanning every range performs no
// further reads of the delete delta files.
func TestSplitsShareDeleteSet(t *testing.T) {
	e, _ := splitsEnv(t, 4, []int{40})
	keys := e.scanKeys(t)
	e.deleteKeys(t, []RowKey{keys[5], keys[25]})
	valid := e.tm.GetValidWriteIds("t", e.tm.GetSnapshot())
	s, err := OpenSnapshot(e.fs, e.loc, testCols, valid)
	if err != nil {
		t.Fatal(err)
	}
	if s.DeleteCount() != 2 {
		t.Fatalf("delete set = %d, want 2", s.DeleteCount())
	}
	ranges, err := s.Splits(1)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the delete delta from disk: the snapshot's delete set was
	// published at OpenSnapshot, so range scans must still apply both
	// deletes without ever touching the directory again.
	_, _, delDirs, err := ListStores(e.fs, e.loc)
	if err != nil {
		t.Fatal(err)
	}
	if len(delDirs) != 1 {
		t.Fatalf("expected 1 delete delta, got %v", delDirs)
	}
	if err := e.fs.Remove(delDirs[0], true); err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, r := range ranges {
		if err := s.ScanRange(r, []int{NumMetaCols}, nil, func(b *vector.Batch) error {
			rows += b.N
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if rows != 38 {
		t.Errorf("scanned %d rows, want 38", rows)
	}
}
