package acid

import (
	"sort"
	"testing"

	"repro/internal/dfs"
	"repro/internal/orc"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

var testCols = []orc.Column{
	{Name: "id", Type: types.TBigint},
	{Name: "val", Type: types.TString},
}

// env bundles a filesystem, a txn manager and a table location.
type env struct {
	fs  *dfs.FS
	tm  *txn.Manager
	loc string
}

func newEnv() *env {
	return &env{fs: dfs.New(), tm: txn.NewManager(), loc: "/wh/t"}
}

// insert writes rows [lo,hi) in one committed transaction, returns writeID.
func (e *env) insert(t *testing.T, lo, hi int64) int64 {
	t.Helper()
	id := e.tm.Begin()
	w, err := e.tm.AllocateWriteId(id, "t")
	if err != nil {
		t.Fatal(err)
	}
	iw := NewInsertWriter(e.fs, e.loc, w, 0, testCols, orc.WriterOptions{StripeRows: 4})
	for i := lo; i < hi; i++ {
		if err := iw.WriteRow([]types.Datum{types.NewBigint(i), types.NewString("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := iw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.tm.Commit(id); err != nil {
		t.Fatal(err)
	}
	return w
}

// deleteKeys deletes the given row keys in one committed transaction.
func (e *env) deleteKeys(t *testing.T, keys []RowKey) {
	t.Helper()
	id := e.tm.Begin()
	w, _ := e.tm.AllocateWriteId(id, "t")
	dw := NewDeleteWriter(e.fs, e.loc, w, 0)
	for _, k := range keys {
		if err := dw.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.tm.Commit(id); err != nil {
		t.Fatal(err)
	}
}

// readIDs scans visible "id" values under a fresh snapshot, sorted.
func (e *env) readIDs(t *testing.T) []int64 {
	t.Helper()
	return e.readIDsAt(t, e.tm.GetSnapshot())
}

func (e *env) readIDsAt(t *testing.T, snap txn.Snapshot) []int64 {
	t.Helper()
	valid := e.tm.GetValidWriteIds("t", snap)
	s, err := OpenSnapshot(e.fs, e.loc, testCols, valid)
	if err != nil {
		t.Fatal(err)
	}
	var out []int64
	err = s.Scan([]int{NumMetaCols + 0}, nil, func(b *vector.Batch) error {
		for i := 0; i < b.N; i++ {
			out = append(out, b.Cols[0].I64[b.RowIdx(i)])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// scanKeys returns all visible row keys with their ids.
func (e *env) scanKeys(t *testing.T) map[int64]RowKey {
	t.Helper()
	valid := e.tm.GetValidWriteIds("t", e.tm.GetSnapshot())
	s, err := OpenSnapshot(e.fs, e.loc, testCols, valid)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int64]RowKey{}
	err = s.Scan([]int{MetaWriteID, MetaFileID, MetaRowID, NumMetaCols}, nil, func(b *vector.Batch) error {
		for i := 0; i < b.N; i++ {
			r := b.RowIdx(i)
			out[b.Cols[3].I64[r]] = RowKey{
				WriteID: b.Cols[0].I64[r],
				FileID:  b.Cols[1].I64[r],
				RowID:   b.Cols[2].I64[r],
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func wantIDs(lo, hi int64, except ...int64) []int64 {
	skip := map[int64]bool{}
	for _, e := range except {
		skip[e] = true
	}
	var out []int64
	for i := lo; i < hi; i++ {
		if !skip[i] {
			out = append(out, i)
		}
	}
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertAndRead(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 10)
	e.insert(t, 10, 20)
	got := e.readIDs(t)
	if !equalIDs(got, wantIDs(0, 20)) {
		t.Errorf("read %v", got)
	}
}

func TestSnapshotDoesNotSeeOpenTxn(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 5)
	// Open a writer but do not commit.
	id := e.tm.Begin()
	w, _ := e.tm.AllocateWriteId(id, "t")
	iw := NewInsertWriter(e.fs, e.loc, w, 0, testCols, orc.WriterOptions{})
	iw.WriteRow([]types.Datum{types.NewBigint(100), types.NewString("x")})
	iw.Close()

	got := e.readIDs(t)
	if !equalIDs(got, wantIDs(0, 5)) {
		t.Errorf("open txn data leaked: %v", got)
	}
	e.tm.Commit(id)
	got = e.readIDs(t)
	if !equalIDs(got, append(wantIDs(0, 5), 100)) {
		t.Errorf("committed data missing: %v", got)
	}
}

func TestAbortedWritesInvisible(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 5)
	id := e.tm.Begin()
	w, _ := e.tm.AllocateWriteId(id, "t")
	iw := NewInsertWriter(e.fs, e.loc, w, 0, testCols, orc.WriterOptions{})
	iw.WriteRow([]types.Datum{types.NewBigint(999), types.NewString("x")})
	iw.Close()
	e.tm.Abort(id)
	got := e.readIDs(t)
	if !equalIDs(got, wantIDs(0, 5)) {
		t.Errorf("aborted data leaked: %v", got)
	}
}

func TestDeleteHidesRows(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 10)
	keys := e.scanKeys(t)
	e.deleteKeys(t, []RowKey{keys[3], keys[7]})
	got := e.readIDs(t)
	if !equalIDs(got, wantIDs(0, 10, 3, 7)) {
		t.Errorf("after delete: %v", got)
	}
}

func TestUpdateAsDeletePlusInsert(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 5)
	keys := e.scanKeys(t)
	// Update row 2 -> 42: one transaction writes a delete and an insert.
	id := e.tm.Begin()
	w, _ := e.tm.AllocateWriteId(id, "t")
	dw := NewDeleteWriter(e.fs, e.loc, w, 0)
	dw.Delete(keys[2])
	dw.Close()
	iw := NewInsertWriter(e.fs, e.loc, w, 0, testCols, orc.WriterOptions{})
	iw.WriteRow([]types.Datum{types.NewBigint(42), types.NewString("updated")})
	iw.Close()
	e.tm.AddWriteSet(id, "t", "", txn.OpUpdate)
	if err := e.tm.Commit(id); err != nil {
		t.Fatal(err)
	}
	got := e.readIDs(t)
	if !equalIDs(got, []int64{0, 1, 3, 4, 42}) {
		t.Errorf("after update: %v", got)
	}
}

func TestOldSnapshotStillSeesDeletedRows(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 5)
	before := e.tm.GetSnapshot()
	keys := e.scanKeys(t)
	e.deleteKeys(t, []RowKey{keys[0]})
	// Old snapshot: delete invisible.
	got := e.readIDsAt(t, before)
	if !equalIDs(got, wantIDs(0, 5)) {
		t.Errorf("old snapshot: %v", got)
	}
	// New snapshot: delete applied.
	got = e.readIDs(t)
	if !equalIDs(got, wantIDs(0, 5, 0)) {
		t.Errorf("new snapshot: %v", got)
	}
}

func TestMinorCompactionPreservesResults(t *testing.T) {
	e := newEnv()
	for i := int64(0); i < 6; i++ {
		e.insert(t, i*10, i*10+10)
	}
	keys := e.scanKeys(t)
	e.deleteKeys(t, []RowKey{keys[5], keys[25]})
	before := e.readIDs(t)

	c := NewCompactor(e.fs, e.loc, testCols, orc.WriterOptions{})
	if err := c.Minor(e.tm.CompactorValidWriteIds("t")); err != nil {
		t.Fatal(err)
	}
	after := e.readIDs(t)
	if !equalIDs(before, after) {
		t.Errorf("minor compaction changed results:\nbefore %v\nafter  %v", before, after)
	}
	// After cleaning, the small deltas are gone but results still hold.
	if err := Clean(e.fs, e.loc); err != nil {
		t.Fatal(err)
	}
	_, deltas, _, _ := ListStores(e.fs, e.loc)
	if len(deltas) != 1 {
		t.Errorf("expected 1 merged delta after clean, got %v", deltas)
	}
	after = e.readIDs(t)
	if !equalIDs(before, after) {
		t.Errorf("clean changed results: %v", after)
	}
}

func TestMajorCompactionAppliesDeletesAndDropsHistory(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 20)
	keys := e.scanKeys(t)
	e.deleteKeys(t, []RowKey{keys[1], keys[2]})
	before := e.readIDs(t)

	c := NewCompactor(e.fs, e.loc, testCols, orc.WriterOptions{})
	if err := c.Major(e.tm.CompactorValidWriteIds("t")); err != nil {
		t.Fatal(err)
	}
	if err := Clean(e.fs, e.loc); err != nil {
		t.Fatal(err)
	}
	bases, deltas, dels, _ := ListStores(e.fs, e.loc)
	if len(bases) != 1 || len(deltas) != 0 || len(dels) != 0 {
		t.Errorf("after major+clean: bases=%v deltas=%v dels=%v", bases, deltas, dels)
	}
	after := e.readIDs(t)
	if !equalIDs(before, after) {
		t.Errorf("major compaction changed results:\nbefore %v\nafter  %v", before, after)
	}
	// Row identity survives major compaction: delete another row by its key.
	keys = e.scanKeys(t)
	e.deleteKeys(t, []RowKey{keys[10]})
	got := e.readIDs(t)
	if !equalIDs(got, wantIDs(0, 20, 1, 2, 10)) {
		t.Errorf("delete after compaction: %v", got)
	}
}

func TestCompactionExcludesOpenTransactions(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 5)
	// Open, uncommitted insert.
	id := e.tm.Begin()
	w, _ := e.tm.AllocateWriteId(id, "t")
	iw := NewInsertWriter(e.fs, e.loc, w, 0, testCols, orc.WriterOptions{})
	iw.WriteRow([]types.Datum{types.NewBigint(777), types.NewString("open")})
	iw.Close()
	// Another committed insert above the open one.
	e.insert(t, 5, 10)

	c := NewCompactor(e.fs, e.loc, testCols, orc.WriterOptions{})
	if err := c.Major(e.tm.CompactorValidWriteIds("t")); err != nil {
		t.Fatal(err)
	}
	// The open txn's data must still be invisible, and must not have been
	// folded into the base.
	got := e.readIDs(t)
	if !equalIDs(got, wantIDs(0, 5)) && !equalIDs(got, wantIDs(0, 10)) {
		t.Errorf("unexpected ids: %v", got)
	}
	for _, v := range got {
		if v == 777 {
			t.Fatal("open transaction data leaked through compaction")
		}
	}
	// Commit later: data becomes visible even after compaction ran.
	e.tm.Commit(id)
	got = e.readIDs(t)
	found := false
	for _, v := range got {
		if v == 777 {
			found = true
		}
	}
	if !found {
		t.Error("late-committed data lost by compaction")
	}
}

func TestCompactionPolicy(t *testing.T) {
	p := DefaultPolicy()
	if got := p.Decide(3, 10, 1000); got != CompactNone {
		t.Errorf("few deltas low ratio: %v", got)
	}
	if got := p.Decide(15, 10, 1000); got != CompactMinor {
		t.Errorf("many deltas: %v", got)
	}
	if got := p.Decide(2, 500, 1000); got != CompactMajor {
		t.Errorf("high ratio: %v", got)
	}
	if got := p.Decide(12, 500, 0); got != CompactMajor {
		t.Errorf("no base, many deltas: %v", got)
	}
}

func TestScanWithSargSkipsStripes(t *testing.T) {
	e := newEnv()
	// One insert with many stripes (StripeRows=4).
	e.insert(t, 0, 64)
	valid := e.tm.GetValidWriteIds("t", e.tm.GetSnapshot())
	s, err := OpenSnapshot(e.fs, e.loc, testCols, valid)
	if err != nil {
		t.Fatal(err)
	}
	// id == 17 lives in exactly one stripe; sarg on full-schema ordinal 3.
	sarg := &orc.SearchArgument{Preds: []orc.Predicate{{
		Col: NumMetaCols, Op: orc.PredEQ, Values: []types.Datum{types.NewBigint(17)},
	}}}
	rows := 0
	s.Scan([]int{NumMetaCols}, sarg, func(b *vector.Batch) error {
		rows += b.N
		return nil
	})
	if rows != 4 { // one stripe of 4 rows survives skipping
		t.Errorf("scanned %d rows, want 4 (one stripe)", rows)
	}
}

func TestEmptyTableScan(t *testing.T) {
	e := newEnv()
	got := e.readIDs(t)
	if len(got) != 0 {
		t.Errorf("empty table returned %v", got)
	}
}

func TestParseStoreDir(t *testing.T) {
	cases := map[string]bool{
		"base_0000005":                 true,
		"delta_0000001_0000001":        true,
		"delete_delta_0000002_0000004": true,
		"random_dir":                   false,
		"file_00000":                   false,
	}
	for name, ok := range cases {
		_, got := parseStoreDir("/wh/t/" + name)
		if got != ok {
			t.Errorf("parseStoreDir(%s) = %v, want %v", name, got, ok)
		}
	}
	d, _ := parseStoreDir("/wh/t/delete_delta_0000002_0000004")
	if d.kind != kindDeleteDelta || d.min != 2 || d.max != 4 {
		t.Errorf("parsed %+v", d)
	}
}
