package acid

import (
	"fmt"

	"repro/internal/dfs"
	"repro/internal/orc"
	"repro/internal/txn"
	"repro/internal/vector"
)

// CompactionKind selects minor or major compaction (paper §3.2).
type CompactionKind uint8

// Compaction kinds.
const (
	CompactNone CompactionKind = iota
	CompactMinor
	CompactMajor
)

// CompactionPolicy holds the thresholds HS2 uses to trigger compaction
// automatically (paper §3.2: number of delta files, ratio of delta records
// to base records).
type CompactionPolicy struct {
	MinDeltasForMinor  int     // minor when at least this many delta dirs exist
	DeltaRatioForMajor float64 // major when deltaRows/baseRows exceeds this
}

// DefaultPolicy mirrors Hive's defaults in spirit.
func DefaultPolicy() CompactionPolicy {
	return CompactionPolicy{MinDeltasForMinor: 10, DeltaRatioForMajor: 0.1}
}

// Decide picks a compaction kind from the current store shape.
func (p CompactionPolicy) Decide(numDeltas int, deltaRows, baseRows int64) CompactionKind {
	if baseRows > 0 && float64(deltaRows)/float64(baseRows) > p.DeltaRatioForMajor {
		return CompactMajor
	}
	if baseRows == 0 && numDeltas >= p.MinDeltasForMinor {
		return CompactMajor
	}
	if numDeltas >= p.MinDeltasForMinor {
		return CompactMinor
	}
	return CompactNone
}

// Compactor merges delta stores. The merging phase writes new directories;
// the cleaning phase (Clean) is separate so ongoing queries can finish
// reading the old directories before files are deleted (paper §3.2 —
// compaction takes no locks).
type Compactor struct {
	fs       *dfs.FS
	loc      string
	dataCols []orc.Column
	opts     orc.WriterOptions
}

// NewCompactor returns a compactor for one table/partition directory.
func NewCompactor(fs *dfs.FS, loc string, dataCols []orc.Column, opts orc.WriterOptions) *Compactor {
	return &Compactor{fs: fs, loc: loc, dataCols: dataCols, opts: opts}
}

// Minor merges all visible insert deltas into a single delta directory and
// all delete deltas into a single delete_delta directory, without touching
// the base. Per-row WriteIds are preserved so older snapshots remain
// readable.
func (c *Compactor) Minor(valid txn.ValidWriteIds) error {
	snap, err := OpenSnapshot(c.fs, c.loc, c.dataCols, valid)
	if err != nil {
		return err
	}
	var lo, hi int64
	var deltaDirs []storeDir
	for _, d := range snap.dataDirs {
		if d.kind != kindDelta {
			continue
		}
		deltaDirs = append(deltaDirs, d)
		if lo == 0 || d.min < lo {
			lo = d.min
		}
		if d.max > hi {
			hi = d.max
		}
	}
	if len(deltaDirs) < 2 {
		return nil
	}
	// Merge insert deltas, keeping system columns (and any deleted rows:
	// minor compaction does not apply deletes).
	tmp := c.loc + "/.tmp_minor_delta"
	if c.fs.Exists(tmp) {
		c.fs.Remove(tmp, true)
	}
	w := orc.NewWriter(c.fs, tmp+"/file_00000", FullSchema(c.dataCols), c.opts)
	wroteRows := false
	for _, d := range deltaDirs {
		if err := c.copyDir(d, w, NumMetaCols+len(c.dataCols), valid, &wroteRows); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := c.fs.Rename(tmp, c.loc+"/"+deltaDirName(lo, hi)); err != nil {
		return err
	}
	// Merge delete deltas over the same range.
	_, _, delDirs, err := ListStores(c.fs, c.loc)
	if err != nil {
		return err
	}
	var toMerge []storeDir
	dlo, dhi := int64(0), int64(0)
	for _, p := range delDirs {
		d, _ := parseStoreDir(p)
		if d.min == d.max && !valid.Valid(d.min) {
			continue
		}
		if d.max <= valid.HighWater {
			toMerge = append(toMerge, d)
			if dlo == 0 || d.min < dlo {
				dlo = d.min
			}
			if d.max > dhi {
				dhi = d.max
			}
		}
	}
	if len(toMerge) >= 2 {
		tmp := c.loc + "/.tmp_minor_delete"
		if c.fs.Exists(tmp) {
			c.fs.Remove(tmp, true)
		}
		dw := orc.NewWriter(c.fs, tmp+"/file_00000", DeleteSchema(), orc.WriterOptions{})
		wrote := false
		for _, d := range toMerge {
			if err := c.copyDir(d, dw, len(DeleteSchema()), valid, &wrote); err != nil {
				return err
			}
		}
		if err := dw.Close(); err != nil {
			return err
		}
		if err := c.fs.Rename(tmp, c.loc+"/"+deleteDirName(dlo, dhi)); err != nil {
			return err
		}
	}
	return nil
}

// copyDir streams every valid row of a store directory into w, reading
// only the wantCols leading columns the writer's schema holds (clamped to
// the file width) instead of decoding every column of the file.
func (c *Compactor) copyDir(d storeDir, w *orc.Writer, wantCols int, valid txn.ValidWriteIds, wrote *bool) error {
	files, err := c.fs.ListRecursive(d.path)
	if err != nil {
		return err
	}
	for _, fi := range files {
		r, err := orc.NewReader(c.fs, fi.Path)
		if err != nil {
			return err
		}
		n := wantCols
		if fw := len(r.Schema()); fw < n {
			n = fw
		}
		proj := make([]int, n)
		for i := range proj {
			proj[i] = i
		}
		for st := 0; st < r.NumStripes(); st++ {
			b, err := r.ReadStripe(st, proj)
			if err != nil {
				return err
			}
			// Insert rows are stamped by their writing transaction in
			// MetaWriteID; delete records carry the deleting write in the
			// trailing deleter column, which is the one that decides
			// whether the delete itself is committed.
			validCol := MetaWriteID
			if d.kind == kindDeleteDelta && len(b.Cols) > DeleteMetaDeleter {
				validCol = DeleteMetaDeleter
			}
			sel := make([]int, 0, b.N)
			for i := 0; i < b.N; i++ {
				if valid.Valid(b.Cols[validCol].I64[i]) {
					sel = append(sel, i)
				}
			}
			filtered := &vector.Batch{Cols: b.Cols, Sel: sel, N: len(sel)}
			if err := w.WriteBatch(filtered); err != nil {
				return err
			}
			if len(sel) > 0 {
				*wrote = true
			}
		}
	}
	return nil
}

// Major rewrites base plus deltas minus deletes into a new base directory
// covering everything committed up to the compactor's high watermark.
// Surviving rows keep their original (WriteId, FileId, RowId) identity so
// later delete deltas still address them; major compaction deletes history
// (paper §3.2).
func (c *Compactor) Major(valid txn.ValidWriteIds) error {
	if valid.HighWater == 0 {
		return nil
	}
	snap, err := OpenSnapshot(c.fs, c.loc, c.dataCols, valid)
	if err != nil {
		return err
	}
	tmp := c.loc + "/.tmp_major"
	if c.fs.Exists(tmp) {
		c.fs.Remove(tmp, true)
	}
	w := orc.NewWriter(c.fs, tmp+"/file_00000", FullSchema(c.dataCols), c.opts)
	// Scan with full projection including system columns.
	full := make([]int, NumMetaCols+len(c.dataCols))
	for i := range full {
		full[i] = i
	}
	if err := snap.Scan(full, nil, w.WriteBatch); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	target := c.loc + "/" + baseDirName(valid.HighWater)
	if c.fs.Exists(target) {
		c.fs.Remove(tmp, true)
		return fmt.Errorf("acid: base %s already exists", target)
	}
	return c.fs.Rename(tmp, target)
}

// Clean removes store directories that are fully superseded: any base older
// than the newest base, any delta/delete_delta entirely at or below the
// newest base's watermark, and any delta covered by a wider compacted delta.
// Run after compaction once in-flight readers have drained.
func Clean(fs *dfs.FS, loc string) error {
	infos, err := fs.List(loc)
	if err != nil {
		return err
	}
	var dirs []storeDir
	for _, fi := range infos {
		if !fi.IsDir {
			continue
		}
		if d, ok := parseStoreDir(fi.Path); ok {
			dirs = append(dirs, d)
		}
	}
	var bestBase int64
	for _, d := range dirs {
		if d.kind == kindBase && d.max > bestBase {
			bestBase = d.max
		}
	}
	for _, d := range dirs {
		obsolete := false
		switch d.kind {
		case kindBase:
			obsolete = d.max < bestBase
		case kindDelta, kindDeleteDelta:
			if d.max <= bestBase {
				obsolete = true
				break
			}
			// Covered by a wider directory of the same kind?
			for _, o := range dirs {
				if o.kind == d.kind && o.path != d.path &&
					o.min <= d.min && o.max >= d.max && (o.max-o.min) > (d.max-d.min) {
					obsolete = true
					break
				}
			}
		}
		if obsolete {
			if err := fs.Remove(d.path, true); err != nil {
				return err
			}
		}
	}
	return nil
}
