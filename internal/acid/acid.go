// Package acid implements Hive's transactional table layout (paper §3.2):
// each table or partition directory holds base and delta stores. Inserts
// create delta_W_W directories, deletes create delete_delta_W_W directories
// (an update is a delete plus an insert), and compaction merges them.
//
// Every record carries three system columns — WriteId, FileId, RowId —
// whose combination uniquely identifies it. A delete is an insert of a
// labeled record pointing at the unique identifier of the deleted record;
// readers anti-join base and insert deltas against the delete deltas that
// apply to their WriteId range.
package acid

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dfs"
	"repro/internal/orc"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// Positions of the ACID system columns in every stored file.
const (
	MetaWriteID = 0
	MetaFileID  = 1
	MetaRowID   = 2
	NumMetaCols = 3
)

// MetaColumns returns the schema of the three system columns.
func MetaColumns() []orc.Column {
	return []orc.Column{
		{Name: "__writeid", Type: types.TBigint},
		{Name: "__fileid", Type: types.TBigint},
		{Name: "__rowid", Type: types.TBigint},
	}
}

// FullSchema prepends the system columns to a table's data columns.
func FullSchema(dataCols []orc.Column) []orc.Column {
	return append(MetaColumns(), dataCols...)
}

// RowKey uniquely identifies a record in a table (paper §3.2).
type RowKey struct {
	WriteID int64
	FileID  int64
	RowID   int64
}

type dirKind uint8

const (
	kindBase dirKind = iota
	kindDelta
	kindDeleteDelta
)

type storeDir struct {
	kind     dirKind
	min, max int64
	path     string
}

func baseDirName(w int64) string        { return fmt.Sprintf("base_%07d", w) }
func deltaDirName(lo, hi int64) string  { return fmt.Sprintf("delta_%07d_%07d", lo, hi) }
func deleteDirName(lo, hi int64) string { return fmt.Sprintf("delete_delta_%07d_%07d", lo, hi) }

func parseStoreDir(path string) (storeDir, bool) {
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	var lo, hi int64
	switch {
	case strings.HasPrefix(name, "base_"):
		if _, err := fmt.Sscanf(name, "base_%d", &lo); err != nil {
			return storeDir{}, false
		}
		return storeDir{kind: kindBase, min: 0, max: lo, path: path}, true
	case strings.HasPrefix(name, "delete_delta_"):
		if _, err := fmt.Sscanf(name, "delete_delta_%d_%d", &lo, &hi); err != nil {
			return storeDir{}, false
		}
		return storeDir{kind: kindDeleteDelta, min: lo, max: hi, path: path}, true
	case strings.HasPrefix(name, "delta_"):
		if _, err := fmt.Sscanf(name, "delta_%d_%d", &lo, &hi); err != nil {
			return storeDir{}, false
		}
		return storeDir{kind: kindDelta, min: lo, max: hi, path: path}, true
	}
	return storeDir{}, false
}

// InsertWriter writes inserted rows for one (writeID, fileID) into a
// delta_W_W directory, assigning RowIds sequentially.
type InsertWriter struct {
	w       *orc.Writer
	writeID int64
	fileID  int64
	nextRow int64
}

// NewInsertWriter opens a writer under loc for the given transaction write.
// fileID distinguishes parallel writers of the same transaction.
func NewInsertWriter(fs *dfs.FS, loc string, writeID int64, fileID int64, dataCols []orc.Column, opts orc.WriterOptions) *InsertWriter {
	path := fmt.Sprintf("%s/%s/file_%05d", loc, deltaDirName(writeID, writeID), fileID)
	return &InsertWriter{
		w:       orc.NewWriter(fs, path, FullSchema(dataCols), opts),
		writeID: writeID,
		fileID:  fileID,
	}
}

// WriteRow appends one data row (without system columns).
func (iw *InsertWriter) WriteRow(row []types.Datum) error {
	full := make([]types.Datum, 0, NumMetaCols+len(row))
	full = append(full,
		types.NewBigint(iw.writeID),
		types.NewBigint(iw.fileID),
		types.NewBigint(iw.nextRow),
	)
	full = append(full, row...)
	iw.nextRow++
	return iw.w.WriteRow(full)
}

// Rows returns the number of rows written so far.
func (iw *InsertWriter) Rows() int64 { return iw.nextRow }

// Close finalizes the delta file.
func (iw *InsertWriter) Close() error { return iw.w.Close() }

// DeleteMetaDeleter is the position of the deleting write's id in delete
// delta files. The first three columns identify the record being deleted
// (paper §3.2); the fourth stamps the write that performed the delete, so
// compacted (multi-write) delete deltas stay filterable per row against a
// snapshot even after the original single-write directories are cleaned.
const DeleteMetaDeleter = 3

// DeleteSchema returns the schema of delete delta files: the deleted
// record's identifier plus the deleting write id.
func DeleteSchema() []orc.Column {
	return append(MetaColumns(), orc.Column{Name: "__deleter", Type: types.TBigint})
}

// DeleteWriter records deleted row identifiers in a delete_delta_W_W
// directory. Deleted records store the identifier of the record being
// deleted (paper §3.2) plus the deleting write id.
type DeleteWriter struct {
	w       *orc.Writer
	writeID int64
}

// NewDeleteWriter opens a delete-delta writer for the given write.
func NewDeleteWriter(fs *dfs.FS, loc string, writeID int64, fileID int64) *DeleteWriter {
	path := fmt.Sprintf("%s/%s/file_%05d", loc, deleteDirName(writeID, writeID), fileID)
	return &DeleteWriter{w: orc.NewWriter(fs, path, DeleteSchema(), orc.WriterOptions{}), writeID: writeID}
}

// Delete records one row key as deleted.
func (dw *DeleteWriter) Delete(k RowKey) error {
	return dw.w.WriteRow([]types.Datum{
		types.NewBigint(k.WriteID),
		types.NewBigint(k.FileID),
		types.NewBigint(k.RowID),
		types.NewBigint(dw.writeID),
	})
}

// Close finalizes the delete delta file.
func (dw *DeleteWriter) Close() error { return dw.w.Close() }

// ReaderCache provides shared parsed ORC footers across snapshots; it is
// implemented by llap.MetadataCache. Returned readers are shared, so the
// snapshot rebinds them to its own cache wiring with WithSources instead
// of mutating them.
type ReaderCache interface {
	Reader(fs *dfs.FS, path string) (*orc.Reader, error)
}

// ScanCounters aggregates scan-efficiency counters across all workers of a
// query. All fields are atomics; a single ScanCounters is shared by every
// snapshot and scan worker of one query.
type ScanCounters struct {
	StripesSkipped       atomic.Int64 // data stripes pruned by search arguments
	DeleteStripesSkipped atomic.Int64 // delete-delta stripes pruned by deleter-id sarg
	Prefetched           atomic.Int64 // stripes accepted by the I/O elevator
}

// SnapshotOpts wires a snapshot into the LLAP caching and elevator stack.
// The zero value gives plain uncached filesystem reads.
type SnapshotOpts struct {
	Chunks   orc.ChunkReader // raw-byte cache (LLAP data cache)
	Vectors  orc.VectorCache // decoded-vector cache (elevator tier)
	Readers  ReaderCache     // shared parsed-footer cache
	Prefetch orc.Prefetcher  // async decode pool; nil scans synchronously
	Counters *ScanCounters   // optional per-query counters
}

// Snapshot is a consistent merge-on-read view of one table/partition
// directory under a ValidWriteIds list.
type Snapshot struct {
	fs       *dfs.FS
	loc      string
	dataCols []orc.Column
	valid    txn.ValidWriteIds
	baseMax  int64 // write id covered by the chosen base (0 = none)
	dataDirs []storeDir
	deletes  map[RowKey]struct{}
	opts     SnapshotOpts

	// deleteSkips counts delete-delta stripes pruned by the deleter-id
	// search argument while loading the delete set (single-threaded, in
	// OpenSnapshot).
	deleteSkips int64

	// readers caches opened file readers (footers) keyed by path, so the
	// stripe enumeration of Splits and the per-range scans of many workers
	// pay the footer read once per file. Guarded by mu; orc.Reader itself
	// is safe for concurrent stripe reads.
	mu      sync.Mutex
	readers map[string]*orc.Reader
}

// OpenSnapshot lists the directory, selects the newest usable base,
// determines the applicable deltas, and loads the valid delete set into
// memory (delete deltas are usually small and kept in memory, paper §3.2).
func OpenSnapshot(fs *dfs.FS, loc string, dataCols []orc.Column, valid txn.ValidWriteIds) (*Snapshot, error) {
	return OpenSnapshotWith(fs, loc, dataCols, valid, SnapshotOpts{})
}

// OpenSnapshotWith is OpenSnapshot with LLAP cache/elevator wiring present
// from construction, so even the delete-set load benefits from (and is
// counted against) the caches.
func OpenSnapshotWith(fs *dfs.FS, loc string, dataCols []orc.Column, valid txn.ValidWriteIds, opts SnapshotOpts) (*Snapshot, error) {
	s := &Snapshot{fs: fs, loc: loc, dataCols: dataCols, valid: valid, deletes: map[RowKey]struct{}{}, opts: opts}
	if !fs.Exists(loc) {
		return s, nil // empty table
	}
	infos, err := fs.List(loc)
	if err != nil {
		return nil, err
	}
	var dirs []storeDir
	for _, fi := range infos {
		if !fi.IsDir {
			continue
		}
		if d, ok := parseStoreDir(fi.Path); ok {
			dirs = append(dirs, d)
		}
	}
	// Choose the newest base whose coverage is fully visible: every write
	// id <= base max must be valid (compaction only folds committed data,
	// but an older snapshot must not use a newer base).
	for _, d := range dirs {
		if d.kind != kindBase {
			continue
		}
		if d.max <= valid.HighWater && d.max > s.baseMax && !anyInvalidUpTo(valid, d.max) {
			s.baseMax = d.max
		}
	}
	// Data dirs: the chosen base plus deltas that may contain rows above
	// it. A delta covered by a wider (compacted) delta is dropped so rows
	// are never read twice while the cleaner has not yet run.
	var candidates []storeDir
	for _, d := range dirs {
		switch d.kind {
		case kindBase:
			if d.max == s.baseMax {
				s.dataDirs = append(s.dataDirs, d)
			}
		case kindDelta:
			if d.max > s.baseMax && d.min <= valid.HighWater {
				candidates = append(candidates, d)
			}
		}
	}
	s.dataDirs = append(s.dataDirs, dropCovered(candidates)...)
	sort.Slice(s.dataDirs, func(i, j int) bool {
		if s.dataDirs[i].min != s.dataDirs[j].min {
			return s.dataDirs[i].min < s.dataDirs[j].min
		}
		return s.dataDirs[i].path < s.dataDirs[j].path
	})
	// Load the delete set from applicable delete deltas (dropping ones
	// covered by a wider compacted delete delta).
	var delCandidates []storeDir
	for _, d := range dirs {
		if d.kind != kindDeleteDelta || d.max <= s.baseMax || d.min > valid.HighWater {
			continue
		}
		// A single-write delete delta from an aborted transaction is dead
		// forever: its deletes were never committed and compaction drops
		// them. Pruning it here (not just at load time) also keeps it from
		// participating in coverage decisions.
		if d.min == d.max && valid.AbortedWrite(d.min) {
			continue
		}
		delCandidates = append(delCandidates, d)
	}
	for _, d := range dropCovered(delCandidates) {
		if err := s.loadDeletes(d); err != nil {
			return nil, err
		}
	}
	if opts.Counters != nil && s.deleteSkips > 0 {
		opts.Counters.DeleteStripesSkipped.Add(s.deleteSkips)
	}
	return s, nil
}

// DeleteStripesSkipped reports how many delete-delta stripes the deleter-id
// search argument pruned while loading this snapshot's delete set.
func (s *Snapshot) DeleteStripesSkipped() int64 { return s.deleteSkips }

// dropCovered removes directories whose WriteId range is strictly contained
// in a wider directory of the same kind (the wider one is the compacted
// replacement). The result is a fresh slice: filtering in place (dirs[:0])
// would overwrite entries of dirs while the inner coverage loop still reads
// them, corrupting the caller's slice.
func dropCovered(dirs []storeDir) []storeDir {
	out := make([]storeDir, 0, len(dirs))
	for _, d := range dirs {
		covered := false
		for _, o := range dirs {
			if o.path == d.path {
				continue
			}
			if o.min <= d.min && o.max >= d.max && (o.max-o.min) > (d.max-d.min) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, d)
		}
	}
	return out
}

// anyInvalidUpTo reports whether a still-relevant invalid write sits at or
// below hi — the test deciding if a compacted base covering writes up to hi
// may be read. Aborted writes do not count: compaction only folds committed
// data, so an aborted id below the base watermark is a permanent gap the
// base correctly excludes, and rejecting the base for it would pin every
// snapshot to the pre-compaction stores forever. Still-open writes (and
// writes committed after this snapshot) do count: a base built once they
// commit would contain rows this snapshot must not see.
func anyInvalidUpTo(valid txn.ValidWriteIds, hi int64) bool {
	for w := range valid.Invalid {
		if w <= hi && !valid.AbortedWrite(w) {
			return true
		}
	}
	return false
}

// SetChunkReader routes data reads through a caching chunk source (LLAP).
// Readers already opened keep their previous source; prefer passing the
// full wiring to OpenSnapshotWith.
func (s *Snapshot) SetChunkReader(cr orc.ChunkReader) { s.opts.Chunks = cr }

func (s *Snapshot) loadDeletes(d storeDir) error {
	// Dir-level validity first, before any file listing or stripe I/O: a
	// single-write delete delta from an open or aborted transaction
	// contributes nothing, so reading its stripes is wasted work.
	if d.min == d.max && !s.valid.Valid(d.min) {
		return nil
	}
	files, err := s.fs.ListRecursive(d.path)
	if err != nil {
		return err
	}
	for _, fi := range files {
		r, err := s.openReader(fi.Path)
		if err != nil {
			return err
		}
		// A delete record stores the identifier of the record being
		// deleted plus the write that deleted it. Single-write dirs are
		// validated above as a whole. Multi-write dirs are compacted
		// delete deltas that may fold writes this snapshot cannot see (an
		// older snapshot reading a newer compacted delta), so each row's
		// deleter WriteID must be valid here — deletes performed by
		// aborted or otherwise invisible writes must not be applied.
		hasDeleter := len(r.Schema()) > DeleteMetaDeleter
		multi := d.min != d.max && hasDeleter
		// Project only what the merge needs: the victim identifier, plus
		// the deleter id when it participates in per-row validity.
		proj := []int{MetaWriteID, MetaFileID, MetaRowID}
		if multi {
			proj = append(proj, DeleteMetaDeleter)
		}
		// Sarg the deleter write-id stripe statistics against the
		// snapshot: a stripe whose minimum deleter id is above the high
		// watermark holds only deletes from writes this snapshot cannot
		// see, so it is skipped without any data I/O. Deleters at or
		// below the high watermark may still be individually invalid
		// (open/aborted), which the per-row check below handles.
		var delSarg *orc.SearchArgument
		if hasDeleter {
			delSarg = &orc.SearchArgument{Preds: []orc.Predicate{{
				Col:    DeleteMetaDeleter,
				Op:     orc.PredLE,
				Values: []types.Datum{types.NewBigint(s.valid.HighWater)},
			}}}
		}
		for st := 0; st < r.NumStripes(); st++ {
			if delSarg != nil && !r.StripeCanMatch(st, delSarg) {
				s.deleteSkips++
				continue
			}
			b, err := r.ReadStripe(st, proj)
			if err != nil {
				return err
			}
			for i := 0; i < b.N; i++ {
				// Valid covers aborted deleters too: Aborted is a subset
				// of Invalid by construction.
				if multi && !s.valid.Valid(b.Cols[3].I64[i]) {
					continue
				}
				// A delete aimed at an aborted write's row is dead weight:
				// the victim is permanently invisible, so the entry would
				// never match in the scan's anti-join.
				w := b.Cols[0].I64[i]
				if s.valid.AbortedWrite(w) {
					continue
				}
				s.deletes[RowKey{
					WriteID: w,
					FileID:  b.Cols[1].I64[i],
					RowID:   b.Cols[2].I64[i],
				}] = struct{}{}
			}
		}
	}
	return nil
}

// openReader returns a (possibly cached) reader for one data file, bound
// to the snapshot's cache wiring. With a shared ReaderCache the footer is
// parsed once per daemon; the shared reader is never mutated — the
// snapshot keeps its own WithSources copy.
func (s *Snapshot) openReader(path string) (*orc.Reader, error) {
	s.mu.Lock()
	r, ok := s.readers[path]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	var err error
	if s.opts.Readers != nil {
		r, err = s.opts.Readers.Reader(s.fs, path)
	} else {
		r, err = orc.NewReader(s.fs, path)
	}
	if err != nil {
		return nil, err
	}
	if s.opts.Readers != nil || s.opts.Chunks != nil || s.opts.Vectors != nil {
		r = r.WithSources(s.opts.Chunks, s.opts.Vectors)
	}
	s.mu.Lock()
	if s.readers == nil {
		s.readers = make(map[string]*orc.Reader)
	}
	if prev, ok := s.readers[path]; ok {
		r = prev // another worker won the race; share its reader
	} else {
		s.readers[path] = r
	}
	s.mu.Unlock()
	return r, nil
}

// DeleteCount returns the number of visible deleted row keys.
func (s *Snapshot) DeleteCount() int { return len(s.deletes) }

// Scan streams the visible rows as batches. projection selects columns of
// the full schema (system columns at ordinals 0..2, data columns after);
// nil selects everything. The search argument, if any, is expressed against
// full-schema ordinals and used both for stripe skipping and, for PredBloom
// reducers, row filtering is left to the caller.
func (s *Snapshot) Scan(projection []int, sarg *orc.SearchArgument, fn func(*vector.Batch) error) error {
	projection, readCols := s.readColsFor(projection)
	for _, d := range s.dataDirs {
		files, err := s.fs.ListRecursive(d.path)
		if err != nil {
			return err
		}
		for _, fi := range files {
			if err := s.scanFile(fi.Path, d, 0, -1, readCols, sarg, len(projection), fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// readColsFor normalizes a projection over the full ACID schema (nil =
// everything) and prepends the system columns, which are always read for
// validity and delete anti-join checks.
func (s *Snapshot) readColsFor(projection []int) (proj, readCols []int) {
	if projection == nil {
		projection = make([]int, NumMetaCols+len(s.dataCols))
		for i := range projection {
			projection[i] = i
		}
	}
	readCols = make([]int, 0, NumMetaCols+len(projection))
	readCols = append(readCols, MetaWriteID, MetaFileID, MetaRowID)
	readCols = append(readCols, projection...)
	return projection, readCols
}

// prefetchAhead is how many sarg-surviving stripes a scan worker keeps
// queued on the I/O elevator ahead of the one it is consuming.
const prefetchAhead = 2

// scanFile streams the visible rows of stripes [lo, hi) of one data file
// (hi < 0 means every stripe), applying search-argument stripe skipping and
// snapshot filtering. Safe for concurrent use by parallel scan workers: it
// only reads immutable snapshot state.
//
// When the snapshot has a Prefetcher, the worker hints its remaining
// sarg-surviving stripes to the elevator a window ahead of consumption.
// Skipping happens before enqueue, so skipped stripes cost zero I/O.
func (s *Snapshot) scanFile(path string, d storeDir, lo, hi int, readCols []int, sarg *orc.SearchArgument, projN int, fn func(*vector.Batch) error) error {
	r, err := s.openReader(path)
	if err != nil {
		return err
	}
	if hi < 0 || hi > r.NumStripes() {
		hi = r.NumStripes()
	}
	// Sarg pruning first: the survivors drive both the synchronous read
	// loop and the prefetch window.
	surv := make([]int, 0, hi-lo)
	for st := lo; st < hi; st++ {
		if sarg != nil && !r.StripeCanMatch(st, sarg) {
			if s.opts.Counters != nil {
				s.opts.Counters.StripesSkipped.Add(1)
			}
			continue
		}
		surv = append(surv, st)
	}
	nextPf := 0 // next survivor index to offer to the elevator
	for i, st := range surv {
		if s.opts.Prefetch != nil {
			for nextPf <= i+prefetchAhead && nextPf < len(surv) {
				if nextPf > i && s.opts.Prefetch.Prefetch(r, surv[nextPf], readCols, nil) {
					if s.opts.Counters != nil {
						s.opts.Counters.Prefetched.Add(1)
					}
				}
				nextPf++
			}
		}
		b, err := r.ReadStripe(st, readCols)
		if err != nil {
			return err
		}
		out := s.filterBatch(b, d, projN)
		if out.N == 0 {
			continue
		}
		if err := fn(out); err != nil {
			return err
		}
	}
	return nil
}

// filterBatch applies snapshot validity and the delete anti-join, returning
// a batch with only the caller's projected columns.
func (s *Snapshot) filterBatch(b *vector.Batch, d storeDir, projN int) *vector.Batch {
	wids := b.Cols[0].I64
	fids := b.Cols[1].I64
	rids := b.Cols[2].I64
	sel := make([]int, 0, b.N)
	for i := 0; i < b.N; i++ {
		w := wids[i]
		// Rows at or below the base high watermark inside deltas were
		// superseded by the base selection; in the base itself w <= baseMax
		// by construction. Validity: skip rows above the snapshot high
		// watermark or belonging to open/aborted transactions.
		if d.kind != kindBase && w <= s.baseMax {
			continue
		}
		if !s.valid.Valid(w) {
			continue
		}
		if len(s.deletes) > 0 {
			if _, dead := s.deletes[RowKey{WriteID: w, FileID: fids[i], RowID: rids[i]}]; dead {
				continue
			}
		}
		sel = append(sel, i)
	}
	return &vector.Batch{Cols: b.Cols[NumMetaCols : NumMetaCols+projN], Sel: sel, N: len(sel)}
}

// ListStores summarizes the store directories currently present (for
// compaction decisions and tests).
func ListStores(fs *dfs.FS, loc string) (bases, deltas, deleteDeltas []string, err error) {
	if !fs.Exists(loc) {
		return nil, nil, nil, nil
	}
	infos, err := fs.List(loc)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, fi := range infos {
		if !fi.IsDir {
			continue
		}
		d, ok := parseStoreDir(fi.Path)
		if !ok {
			continue
		}
		switch d.kind {
		case kindBase:
			bases = append(bases, fi.Path)
		case kindDelta:
			deltas = append(deltas, fi.Path)
		case kindDeleteDelta:
			deleteDeltas = append(deleteDeltas, fi.Path)
		}
	}
	return bases, deltas, deleteDeltas, nil
}
