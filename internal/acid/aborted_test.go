package acid

import (
	"testing"

	"repro/internal/orc"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// insertAborted writes rows in a transaction that then aborts, returning
// the (permanently dead) writeID.
func (e *env) insertAborted(t *testing.T, vals ...int64) int64 {
	t.Helper()
	id := e.tm.Begin()
	w, err := e.tm.AllocateWriteId(id, "t")
	if err != nil {
		t.Fatal(err)
	}
	iw := NewInsertWriter(e.fs, e.loc, w, 0, testCols, orc.WriterOptions{})
	for _, v := range vals {
		if err := iw.WriteRow([]types.Datum{types.NewBigint(v), types.NewString("dead")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := iw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.tm.Abort(id); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestBaseSelectionOverAbortedGap is the regression for the permanent
// base rejection: a compacted base whose watermark skips over an aborted
// write only must be accepted (compaction excludes aborted data), while a
// base over a still-open write must not be.
func TestBaseSelectionOverAbortedGap(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 5)       // w1, committed
	e.insertAborted(t, 777) // w2, aborted: a gap below every later base
	e.insert(t, 5, 10)      // w3, committed

	c := NewCompactor(e.fs, e.loc, testCols, orc.WriterOptions{})
	if err := c.Major(e.tm.CompactorValidWriteIds("t")); err != nil {
		t.Fatal(err)
	}
	if err := Clean(e.fs, e.loc); err != nil {
		t.Fatal(err)
	}
	bases, deltas, _, _ := ListStores(e.fs, e.loc)
	if len(bases) != 1 || len(deltas) != 0 {
		t.Fatalf("compaction+clean left bases=%v deltas=%v", bases, deltas)
	}
	// The deltas are gone, so reading anything at all requires accepting
	// the base across the aborted gap at w2.
	got := e.readIDs(t)
	if !equalIDs(got, wantIDs(0, 10)) {
		t.Fatalf("base over aborted gap not used: got %v, want 0..9", got)
	}
	for _, v := range got {
		if v == 777 {
			t.Fatal("aborted data leaked through the compacted base")
		}
	}

	// A still-open (or not-yet-visible committed) write below the base
	// watermark must keep rejecting the base: such a base could contain
	// rows this snapshot must not see.
	openValid := txn.ValidWriteIds{Table: "t", HighWater: 3, Invalid: map[int64]bool{2: true}}
	s, err := OpenSnapshot(e.fs, e.loc, testCols, openValid)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = s.Scan(nil, nil, func(b *vector.Batch) error { n += b.N; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("base over a still-open gap was read: %d rows visible", n)
	}
}

// TestDeleteLoadingPrunesAborted checks both sides of the delete-delta
// pruning: delete records written by aborted transactions never apply, and
// delete records aimed at aborted rows are dropped from the in-memory
// delete set (the victim is permanently invisible, so the entry could
// never match).
func TestDeleteLoadingPrunesAborted(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 10) // w1
	keys := e.scanKeys(t)

	// w2: delete of a live row, aborted — must not hide anything.
	id := e.tm.Begin()
	w2, _ := e.tm.AllocateWriteId(id, "t")
	dw := NewDeleteWriter(e.fs, e.loc, w2, 0)
	if err := dw.Delete(keys[1]); err != nil {
		t.Fatal(err)
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.tm.Abort(id); err != nil {
		t.Fatal(err)
	}

	// w3: aborted insert; w4: committed delete aimed at the aborted row.
	w3 := e.insertAborted(t, 888)
	e.deleteKeys(t, []RowKey{{WriteID: w3, FileID: 0, RowID: 0}})

	valid := e.tm.GetValidWriteIds("t", e.tm.GetSnapshot())
	s, err := OpenSnapshot(e.fs, e.loc, testCols, valid)
	if err != nil {
		t.Fatal(err)
	}
	// Neither delete survives loading: w2's whole directory is an aborted
	// write's, and w4's only record targets a permanently dead row.
	if n := s.DeleteCount(); n != 0 {
		t.Errorf("delete set holds %d entries, want 0 (aborted deleter + aborted victim)", n)
	}
	got := e.readIDs(t)
	if !equalIDs(got, wantIDs(0, 10)) {
		t.Errorf("visible ids: %v, want 0..9", got)
	}
}

// TestCompactedDeleteDeltaAbortedDeleterRows covers the per-row deleter
// check on a multi-write (compacted-shape) delete delta that folds an
// aborted write's records next to a committed write's: only the committed
// deleter's record may apply.
func TestCompactedDeleteDeltaAbortedDeleterRows(t *testing.T) {
	e := newEnv()
	e.insert(t, 0, 10) // w1
	keys := e.scanKeys(t)

	// w2 aborts without writing anything; w3 commits a delete of key 3 so
	// the txn manager knows both ids.
	id := e.tm.Begin()
	w2, _ := e.tm.AllocateWriteId(id, "t")
	if err := e.tm.Abort(id); err != nil {
		t.Fatal(err)
	}
	e.deleteKeys(t, []RowKey{keys[3]}) // w3

	// Hand-build a compacted delete delta spanning w2..w3. It covers (and
	// thereby drops) w3's single-write directory, so it must carry w3's
	// key-3 record itself — exactly what a real minor compaction would
	// write — plus the aborted w2's record aimed at key 5 and a second w3
	// record aimed at key 7.
	w3 := w2 + 1
	path := e.loc + "/" + deleteDirName(w2, w3) + "/file_00000"
	dw := orc.NewWriter(e.fs, path, DeleteSchema(), orc.WriterOptions{})
	for _, rec := range []struct {
		k   RowKey
		del int64
	}{
		{keys[3], w3},
		{keys[5], w2},
		{keys[7], w3},
	} {
		err := dw.WriteRow([]types.Datum{
			types.NewBigint(rec.k.WriteID),
			types.NewBigint(rec.k.FileID),
			types.NewBigint(rec.k.RowID),
			types.NewBigint(rec.del),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := dw.Close(); err != nil {
		t.Fatal(err)
	}

	got := e.readIDs(t)
	if !equalIDs(got, wantIDs(0, 10, 3, 7)) {
		t.Errorf("visible ids: %v, want 0..9 minus {3,7} (aborted deleter's record must not hide 5)", got)
	}
}
