package acid

// This file implements stripe-granular split enumeration (paper §5.1):
// LLAP splits scan work at the ORC stripe level so the I/O elevator and
// executors pipeline independently, and so morsel-driven scheduling (Leis
// et al.) hands out fine-grained, roughly uniform units that work-stealing
// can balance. A Snapshot enumerates the stripes of every data file it
// covers once, on the coordinator; workers then scan disjoint stripe
// ranges through the same snapshot, sharing its immutably-published delete
// set instead of re-reading delete deltas per split.

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/orc"
	"repro/internal/vector"
)

// ScanRange is one stripe-granular unit of scan work: the contiguous
// stripes [StripeLo, StripeHi) of a single data file visible in the
// snapshot.
type ScanRange struct {
	File     string
	StripeLo int
	StripeHi int
	// Rows is the stored row count of the range (before snapshot and
	// delete filtering), used to balance ranges across workers.
	Rows int64
}

// Splits enumerates stripe ranges over every data file the snapshot
// covers. targetStripes bounds the stripes per range (<= 0 means one);
// within a file, ranges are cut so their stored row counts come out as
// even as stripe boundaries allow, which keeps morsels uniform when stripe
// sizes are skewed (small final stripes, mixed writer configurations).
// Ranges never span files.
//
// Enumeration reads only footers, and reads them concurrently — the
// paper's LLAP I/O elevator decouples I/O from execution the same way —
// because split listing runs serially on the coordinator before any
// worker starts. The opened readers stay cached on the snapshot, so the
// workers' range scans never re-read a footer.
func (s *Snapshot) Splits(targetStripes int) ([]ScanRange, error) {
	if targetStripes <= 0 {
		targetStripes = 1
	}
	var paths []string
	for _, d := range s.dataDirs {
		files, err := s.fs.ListRecursive(d.path)
		if err != nil {
			return nil, err
		}
		for _, fi := range files {
			paths = append(paths, fi.Path)
		}
	}
	readers := make([]*orc.Reader, len(paths))
	errs := make([]error, len(paths))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 16)
	for i, p := range paths {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			readers[i], errs[i] = s.openReader(p)
		}(i, p)
	}
	wg.Wait()
	var out []ScanRange
	for i, r := range readers {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, fileRanges(r, paths[i], targetStripes)...)
	}
	return out, nil
}

// fileRanges cuts one file's stripes into at most ceil(n/targetStripes)
// ranges with balanced stored row counts. Empty files (zero stripes)
// produce no ranges.
func fileRanges(r *orc.Reader, path string, targetStripes int) []ScanRange {
	n := r.NumStripes()
	if n == 0 {
		return nil
	}
	nRanges := (n + targetStripes - 1) / targetStripes
	var total int64
	for i := 0; i < n; i++ {
		total += int64(r.StripeRows(i))
	}
	share := total / int64(nRanges)
	out := make([]ScanRange, 0, nRanges)
	lo, acc := 0, int64(0)
	for i := 0; i < n; i++ {
		acc += int64(r.StripeRows(i))
		rangesLeft := nRanges - len(out) - 1
		stripesLeft := n - i - 1
		// Cut at the row share, or when the remaining stripes are exactly
		// enough to keep every remaining range non-empty.
		if rangesLeft > 0 && (acc >= share || stripesLeft == rangesLeft) {
			out = append(out, ScanRange{File: path, StripeLo: lo, StripeHi: i + 1, Rows: acc})
			lo, acc = i+1, 0
		}
	}
	return append(out, ScanRange{File: path, StripeLo: lo, StripeHi: n, Rows: acc})
}

// PrefetchRange hints the sarg-surviving stripes of one upcoming scan
// range to the I/O elevator, before any worker claims the range. It is
// purely advisory: a hinted stripe may be decoded twice (the claiming
// worker races the elevator) or never consumed (the range's sarg skips it
// again) without affecting results. Skipped stripes are not counted here —
// the worker that eventually claims the range recounts them — but accepted
// prefetches are, since the claiming worker cannot observe them.
// maxStripes bounds the hint so a deep queue does not flood the elevator.
func (s *Snapshot) PrefetchRange(rg ScanRange, projection []int, sarg *orc.SearchArgument, maxStripes int) {
	if s.opts.Prefetch == nil || maxStripes <= 0 {
		return
	}
	_, readCols := s.readColsFor(projection)
	r, err := s.openReader(rg.File)
	if err != nil {
		return
	}
	hi := rg.StripeHi
	if hi <= 0 || hi > r.NumStripes() {
		hi = r.NumStripes()
	}
	n := 0
	for st := rg.StripeLo; st < hi && n < maxStripes; st++ {
		// Skip BEFORE enqueue: stripes the sarg prunes never reach the
		// elevator, so prefetch depth is spent on stripes the scan will
		// actually read.
		if sarg != nil && !r.StripeCanMatch(st, sarg) {
			continue
		}
		if s.opts.Prefetch.Prefetch(r, st, readCols, nil) {
			if s.opts.Counters != nil {
				s.opts.Counters.Prefetched.Add(1)
			}
		}
		n++
	}
}

// ScanRange streams the visible rows of one stripe range, exactly as Scan
// would for those stripes: the same projection semantics, search-argument
// stripe skipping, snapshot validity filtering and delete anti-join against
// the snapshot's shared delete set. Safe to call from multiple goroutines
// on one Snapshot — the delete set is loaded once at OpenSnapshot and only
// read here.
func (s *Snapshot) ScanRange(r ScanRange, projection []int, sarg *orc.SearchArgument, fn func(*vector.Batch) error) error {
	dir := r.File
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i]
	}
	d, ok := parseStoreDir(dir)
	if !ok {
		return fmt.Errorf("acid: %s is not inside a base or delta directory", r.File)
	}
	projection, readCols := s.readColsFor(projection)
	return s.scanFile(r.File, d, r.StripeLo, r.StripeHi, readCols, sarg, len(projection), fn)
}
