package acid

import (
	"fmt"
	"testing"

	"repro/internal/dfs"
	"repro/internal/llap"
	"repro/internal/orc"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// writeCompactedDeletes writes a multi-write (compacted) delete delta whose
// rows are ordered by deleter write id, as Compactor.Minor produces.
func writeCompactedDeletes(t *testing.T, fs *dfs.FS, loc string, lo, hi int64, stripeRows int, rows [][2]int64) {
	t.Helper()
	path := fmt.Sprintf("%s/%s/file_00000", loc, deleteDirName(lo, hi))
	w := orc.NewWriter(fs, path, DeleteSchema(), orc.WriterOptions{StripeRows: stripeRows})
	for _, r := range rows {
		// r[0] = victim RowID of write 1 file 0, r[1] = deleter write id.
		if err := w.WriteRow([]types.Datum{
			types.NewBigint(1), types.NewBigint(0), types.NewBigint(r[0]), types.NewBigint(r[1]),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteDeltaSargSkipsStripes: loading the delete set of a compacted
// delete delta sargs the deleter write-id stripe statistics against the
// snapshot high watermark, skipping stripes that hold only deletes this
// snapshot cannot see — without changing the visible row set.
func TestDeleteDeltaSargSkipsStripes(t *testing.T) {
	fs := dfs.New()
	loc := "/wh/t"
	// Insert delta: write 1, rows 0..31, stripe = 4 rows.
	iw := NewInsertWriter(fs, loc, 1, 0, testCols, orc.WriterOptions{StripeRows: 4})
	for i := int64(0); i < 32; i++ {
		if err := iw.WriteRow([]types.Datum{types.NewBigint(i), types.NewString("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := iw.Close(); err != nil {
		t.Fatal(err)
	}
	// Compacted delete delta covering writes 2..10, 4 stripes of 4 rows,
	// ordered by deleter: [0..3]@2, [4..7]@6, [8..11]@9, [12..15]@10.
	var delRows [][2]int64
	for i := int64(0); i < 16; i++ {
		deleter := []int64{2, 6, 9, 10}[i/4]
		delRows = append(delRows, [2]int64{i, deleter})
	}
	writeCompactedDeletes(t, fs, loc, 2, 10, 4, delRows)

	visible := func(s *Snapshot) []int64 {
		var ids []int64
		err := s.Scan([]int{NumMetaCols}, nil, func(b *vector.Batch) error {
			for i := 0; i < b.N; i++ {
				ids = append(ids, b.Cols[0].I64[b.RowIdx(i)])
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return ids
	}

	// Snapshot at HW=5: only deleter 2 is visible; the three stripes whose
	// minimum deleter exceeds 5 must be pruned by stats alone.
	var ctr ScanCounters
	s5, err := OpenSnapshotWith(fs, loc, testCols, txn.ValidWriteIds{Table: "t", HighWater: 5}, SnapshotOpts{Counters: &ctr})
	if err != nil {
		t.Fatal(err)
	}
	if got := s5.DeleteStripesSkipped(); got != 3 {
		t.Errorf("HW=5 delete stripes skipped = %d, want 3", got)
	}
	if got := ctr.DeleteStripesSkipped.Load(); got != 3 {
		t.Errorf("counter delete stripes skipped = %d, want 3", got)
	}
	if got := len(visible(s5)); got != 28 {
		t.Errorf("HW=5 visible rows = %d, want 28 (only deleter-2 stripe applies)", got)
	}

	// Snapshot at HW=10: every deleter visible, nothing skippable.
	s10, err := OpenSnapshot(fs, loc, testCols, txn.ValidWriteIds{Table: "t", HighWater: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := s10.DeleteStripesSkipped(); got != 0 {
		t.Errorf("HW=10 delete stripes skipped = %d, want 0", got)
	}
	if got := len(visible(s10)); got != 16 {
		t.Errorf("HW=10 visible rows = %d, want 16", got)
	}
}

// TestScanWithElevatorMatchesSynchronous wires a snapshot through the full
// LLAP stack — chunk cache, decoded-vector cache, metadata cache, elevator
// prefetch — and checks the scan is row-identical to the plain synchronous
// path, that sarg skipping happens before prefetch enqueue, and that
// repeat scans are served from the decoded cache.
func TestScanWithElevatorMatchesSynchronous(t *testing.T) {
	e := newEnv()
	w1 := e.insert(t, 0, 40)
	e.insert(t, 40, 80)
	e.deleteKeys(t, []RowKey{{WriteID: w1, FileID: 0, RowID: 3}, {WriteID: w1, FileID: 0, RowID: 17}})
	valid := e.tm.GetValidWriteIds("t", e.tm.GetSnapshot())

	collect := func(s *Snapshot, sarg *orc.SearchArgument) []string {
		var rows []string
		err := s.Scan(nil, sarg, func(b *vector.Batch) error {
			for i := 0; i < b.N; i++ {
				r := b.RowIdx(i)
				rows = append(rows, fmt.Sprintf("%d|%d|%d|%d",
					b.Cols[0].I64[r], b.Cols[1].I64[r], b.Cols[2].I64[r], b.Cols[3].I64[r]))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}

	// id >= 20 over full-schema ordinal 3 (first data column).
	sarg := &orc.SearchArgument{Preds: []orc.Predicate{{
		Col: NumMetaCols, Op: orc.PredGE, Values: []types.Datum{types.NewBigint(20)},
	}}}

	plain, err := OpenSnapshot(e.fs, e.loc, testCols, valid)
	if err != nil {
		t.Fatal(err)
	}
	want := collect(plain, sarg)

	cache := llap.NewCache(e.fs, 1<<20)
	decoded := llap.NewDecodedCache(1 << 20)
	meta := llap.NewMetadataCache()
	elev := llap.NewElevator(2, 1<<20)
	defer elev.Close()
	var ctr ScanCounters
	opts := SnapshotOpts{Chunks: cache, Vectors: decoded, Readers: meta, Prefetch: elev, Counters: &ctr}
	for pass := 0; pass < 2; pass++ {
		s, err := OpenSnapshotWith(e.fs, e.loc, testCols, valid, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(s, sarg)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("pass %d: elevator scan diverges\n got %v\nwant %v", pass, got, want)
		}
	}
	if ctr.StripesSkipped.Load() == 0 {
		t.Error("expected sarg to skip stripes (id < 20)")
	}
	if decoded.Stats().Hits == 0 {
		t.Error("expected repeat scan to hit the decoded-vector cache")
	}
	if meta.Hits() == 0 {
		t.Error("expected repeat snapshot to hit the metadata cache")
	}
}
