package hs2

// A Knob describes one hive.* configuration key: its session default and
// whether the value is consumed at server construction rather than read
// per query.
type Knob struct {
	Default string
	Doc     string
	// Startup marks keys that mirror Config fields fixed at server start
	// (pool sizes, cache capacities). They appear in the conf map for
	// visibility, but setting them per-session has no effect.
	Startup bool
}

// knobRegistry is the single source of truth for the server's hive.*
// configuration surface. hivelint's conf-knob-registry analyzer enforces
// that every hive.* string literal in the tree appears here — a misspelled
// key in a confBool call would otherwise silently read an empty default —
// and that every declared key is actually read somewhere (dead knobs are
// findings; Startup keys are exempt).
//
// lint:knob-registry
var knobRegistry = map[string]Knob{
	"hive.profile": {
		Default: "3.1",
		Doc:     "emulated Hive version: 3.1 (LLAP, CBO, caches) or 1.2 (container mode, optimizations off)",
	},
	"hive.execution.mode": {
		Default: "llap",
		Doc:     "llap runs scans through the daemon cache/elevator path; container pays per-query launch cost",
	},
	"hive.llap.enabled": {
		Default: "true",
		Doc:     "gates the LLAP daemon read path (chunk cache, metadata cache, decoded-vector cache)",
	},
	"hive.optimize.join.reorder": {
		Default: "true",
		Doc:     "cost-based join reordering over the per-column NDV statistics",
	},
	"hive.optimize.semijoin": {
		Default: "true",
		Doc:     "semijoin reduction: broadcast build-side key filters into probe-side scans",
	},
	"hive.optimize.sharedwork": {
		Default: "true",
		Doc:     "shared-work optimizer: identical subtrees collapse into one spooled computation",
	},
	"hive.optimize.prunecols": {
		Default: "true",
		Doc:     "column pruning: scans read only the columns the plan above consumes",
	},
	"hive.materializedview.rewriting": {
		Default: "true",
		Doc:     "algebraic rewriting of queries onto fresh materialized views",
	},
	"hive.query.results.cache.enabled": {
		Default: "true",
		Doc:     "result cache keyed by plan digest and snapshot watermarks, invalidated by table writes",
	},
	"hive.query.plan.cache.enabled": {
		Default: "true",
		Doc: "compiled-plan reuse (paper §4.3 serving): literals hoist into parameters and the " +
			"optimized plan is cached per normalized digest, so repeats of a query shape — " +
			"ad-hoc or via PREPARE/EXECUTE — skip analysis and optimization entirely",
	},
	"hive.container.launch.ms": {
		Default: "3",
		Doc:     "simulated per-query container launch latency in container execution mode",
	},
	"hive.exec.memory.limit.rows": {
		Default: "0",
		Doc:     "kill queries whose operators materialize more than this many rows; 0 disables",
	},
	"hive.query.reexecution.enabled": {
		Default: "true",
		Doc:     "re-run a memory-killed query once with a degraded (spilling) configuration",
	},
	"hive.query.reexecution.strategy": {
		Default: "overlay",
		Doc:     "how re-execution degrades the retry: overlay swaps conf overrides before the second run",
	},
	"hive.parallelism": {
		Default: "1", // NewServer raises this to runtime.NumCPU()
		Doc: "intra-query DOP: LLAP fragments fan out over this many executor slots " +
			"(morsel-driven scans, two-phase aggregation, partitioned join builds)",
	},
	"hive.split.target.stripes": {
		Default: "1",
		Doc: "stripes per morsel when parallel plans split scans at ORC stripe granularity " +
			"(paper §5.1); 1 maximizes work-stealing balance, larger amortizes per-morsel overhead",
	},
	"hive.llap.elevator": {
		Default: "true",
		Doc: "LLAP I/O elevator (paper §5.1): scans publish upcoming sarg-surviving stripes to an " +
			"async decode pool that reads ahead of the consumer and caches decoded vectors; " +
			"false restores the fully synchronous read path, byte-identically",
	},
	"hive.llap.io.threads": {
		Default: "4",
		Doc:     "decode-pool width; fixed at server start (Config.IOThreads)",
		Startup: true,
	},
	"hive.llap.decoded.cache.bytes": {
		Default: "0",
		Doc:     "decoded-vector cache capacity, charged by decoded size; fixed at server start (Config.DecodedCacheBytes)",
		Startup: true,
	},
	"hive.sort.parallel": {
		Default: "true",
		Doc: "parallel ORDER BY / TopN: workers produce locally sorted runs (LIMIT pushed into each) " +
			"merged through an order-preserving loser-tree exchange; false keeps the sort on the coordinator",
	},
	"hive.spool.parallel": {
		Default: "true",
		Doc: "shared-work spools feed parallel regions: worker clones split the published spool " +
			"content through a shared cursor; false keeps spooled subtrees on serial pipelines",
	},
	"hive.planner.properties": {
		Default: "true",
		Doc: "property-driven physical planning (paper §4.1–4.2): carry delivered sort order and " +
			"partitioning, elide satisfied enforcers, place partition-wise aggs/joins on " +
			"co-partitioned scans; output is byte-identical either way",
	},
	"hive.query.max.memory": {
		Default: "0",
		Doc: "per-query byte budget for the blocking operators (sort, hash agg, join build, window, " +
			"spool); 0 is unlimited, a positive budget makes them spill against the governor",
	},
	"hive.query.timeout": {
		Default: "0",
		Doc: "per-query wall-clock deadline in milliseconds covering admission queueing and execution; " +
			"0 means none; a timed-out query releases its admission, reservations and scratch directory",
	},
	"hive.wm.queue.timeout.ms": {
		Default: "30000",
		Doc: "how long a query waits in a pool's admission queue before degrading (reduced DOP and " +
			"budget under memory pressure) or failing (concurrency cap exhausted)",
	},
}

// defaultConf materializes the registry defaults into a fresh conf map.
func defaultConf() map[string]string {
	m := make(map[string]string, len(knobRegistry))
	for k, kn := range knobRegistry {
		m[k] = kn.Default
	}
	return m
}
