package hs2

import (
	"fmt"
	"time"

	"repro/internal/hll"
	"repro/internal/metastore"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/wm"
)

// Lock shorthand for DDL paths.
type txnLockRequest = txn.LockRequest

const txnLockExclusive = txn.LockExclusive

const lockTimeout = 5 * time.Second

func (s *Session) executeCreateTable(x *sql.CreateTableStmt) (*Result, error) {
	db := x.Table.DB
	if db == "" {
		db = s.db
	}
	if x.IfNotExists {
		if _, err := s.srv.MS.GetTable(db, x.Table.Name); err == nil {
			return &Result{}, nil
		}
	}
	t := &metastore.Table{
		DB:             db,
		Name:           x.Table.Name,
		External:       x.External,
		StorageHandler: x.StoredBy,
		Props:          x.TblProps,
	}
	for _, c := range x.Cols {
		t.Cols = append(t.Cols, metastore.Column{Name: c.Name, Type: c.Type})
		if c.NotNull {
			t.Constraints.NotNull = append(t.Constraints.NotNull, c.Name)
		}
	}
	for _, c := range x.PartKeys {
		t.PartKeys = append(t.PartKeys, metastore.Column{Name: c.Name, Type: c.Type})
	}
	t.Constraints.PrimaryKey = x.PrimaryKey
	for _, fk := range x.ForeignKeys {
		ref := fk.RefTable.Qualified()
		if fk.RefTable.DB == "" {
			ref = db + "." + fk.RefTable.Name
		}
		t.Constraints.ForeignKeys = append(t.Constraints.ForeignKeys, metastore.ForeignKey{
			Cols: fk.Cols, RefTable: ref, RefCols: fk.RefCols,
		})
	}
	t.Constraints.UniqueKeys = x.UniqueKeys

	// CTAS: derive schema from the query.
	var ctasRows [][]types.Datum
	if x.AsSelect != nil {
		rel, err := s.compileSelect(x.AsSelect)
		if err != nil {
			return nil, err
		}
		for _, f := range rel.Schema() {
			t.Cols = append(t.Cols, metastore.Column{Name: f.Name, Type: f.T})
		}
		rows, err := s.runPlan(rel)
		if err != nil {
			return nil, err
		}
		ctasRows = rows
	}
	if err := s.srv.MS.CreateTable(t); err != nil {
		return nil, err
	}
	if ctasRows != nil {
		if err := s.insertRows(t, ctasRows, false); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

func (s *Session) executeCreateMV(x *sql.CreateMaterializedViewStmt) (*Result, error) {
	db := x.Name.DB
	if db == "" {
		db = s.db
	}
	rel, err := s.analyzeSQL(x.QueryText, s.db)
	if err != nil {
		return nil, fmt.Errorf("hs2: materialized view query: %v", err)
	}
	t := &metastore.Table{
		DB:                 db,
		Name:               x.Name.Name,
		StorageHandler:     x.StoredBy,
		Props:              x.TblProps,
		IsMaterializedView: true,
		ViewSQL:            x.QueryText,
		RewriteEnabled:     !x.DisableRewrite,
		SnapshotWriteIds:   map[string]int64{},
	}
	for _, f := range rel.Schema() {
		t.Cols = append(t.Cols, metastore.Column{Name: f.Name, Type: f.T})
	}
	if err := s.srv.MS.CreateTable(t); err != nil {
		return nil, err
	}
	if err := s.fillMV(t, rel); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// fillMV recomputes the view contents and records the snapshot the
// materialization reflects.
func (s *Session) fillMV(t *metastore.Table, rel plan.Rel) error {
	// Capture source snapshot before reading so a concurrent write makes
	// the view stale rather than silently half-included.
	tm := s.srv.MS.Txns()
	snap := tm.GetSnapshot()
	sources := map[string]int64{}
	var walk func(r plan.Rel)
	walk = func(r plan.Rel) {
		if sc, ok := r.(*plan.Scan); ok {
			full := sc.Table.FullName()
			sources[full] = tm.GetValidWriteIds(full, snap).HighWater
		}
		for _, c := range r.Children() {
			walk(c)
		}
	}
	walk(rel)
	// Full optimization (without MV rewriting, which could self-reference)
	// followed by federation pushdown.
	optimized := opt.New(s.srv.MS, s.optimizerOptions()).Optimize(rel)
	optimized = s.srv.Registry.PushComputation(optimized)
	rows, err := s.runPlan(optimized)
	if err != nil {
		return err
	}
	if err := s.overwriteTable(t, rows); err != nil {
		return err
	}
	t.SnapshotWriteIds = sources
	return nil
}

func (s *Session) executeRebuildMV(x *sql.AlterMVRebuildStmt) (*Result, error) {
	db := x.Name.DB
	if db == "" {
		db = s.db
	}
	t, err := s.srv.MS.GetTable(db, x.Name.Name)
	if err != nil {
		return nil, err
	}
	if !t.IsMaterializedView {
		return nil, fmt.Errorf("hs2: %s is not a materialized view", t.FullName())
	}
	rel, err := s.analyzeSQL(t.ViewSQL, s.db)
	if err != nil {
		return nil, err
	}
	// Fresh view: rebuild is a no-op.
	rw := s.mvRewriter()
	if rw.Fresh(t) && t.Props["materialized.view.allow.stale"] != "true" {
		return &Result{}, nil
	}
	if err := s.fillMV(t, rel); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (s *Session) executeDrop(x *sql.DropStmt) (*Result, error) {
	db := x.Name.DB
	if db == "" {
		db = s.db
	}
	if x.Kind == "database" {
		return nil, fmt.Errorf("hs2: DROP DATABASE is not supported")
	}
	t, err := s.srv.MS.GetTable(db, x.Name.Name)
	if err != nil {
		if x.IfExists {
			return &Result{}, nil
		}
		return nil, err
	}
	// DROP takes a table-level exclusive lock (paper §3.2).
	tm := s.srv.MS.Txns()
	id := tm.Begin()
	full := db + "." + x.Name.Name
	if err := tm.Locks().Acquire(id, []txnLockRequest{{Table: full, Mode: txnLockExclusive}}, lockTimeout); err != nil {
		tm.Abort(id)
		return nil, err
	}
	err = s.srv.MS.DropTable(db, x.Name.Name)
	tm.Commit(id)
	if err != nil {
		return nil, err
	}
	// A dropped managed table's files are gone; a path recreated under the
	// same name would otherwise race the FileID check on every footer hit.
	s.srv.MetaCache.InvalidatePrefix(t.Location)
	return &Result{}, nil
}

func (s *Session) executeDropPartition(x *sql.AlterTableDropPartitionStmt) (*Result, error) {
	db := x.Table.DB
	if db == "" {
		db = s.db
	}
	t, err := s.srv.MS.GetTable(db, x.Table.Name)
	if err != nil {
		return nil, err
	}
	values := make([]string, len(t.PartKeys))
	for i, k := range t.PartKeys {
		e, ok := x.Spec[k.Name]
		if !ok {
			return nil, fmt.Errorf("hs2: partition spec missing key %s", k.Name)
		}
		lit, ok := e.(*sql.Lit)
		if !ok {
			return nil, fmt.Errorf("hs2: partition value for %s must be a literal", k.Name)
		}
		values[i] = lit.Val.String()
	}
	spec := metastore.PartitionSpec(t.PartKeys, values)
	tm := s.srv.MS.Txns()
	id := tm.Begin()
	if err := tm.Locks().Acquire(id, []txnLockRequest{{Table: t.FullName(), Partition: spec, Mode: txnLockExclusive}}, lockTimeout); err != nil {
		tm.Abort(id)
		return nil, err
	}
	err = s.srv.MS.DropPartition(db, x.Table.Name, values)
	tm.Commit(id)
	if err == nil {
		s.srv.MetaCache.InvalidatePrefix(t.Location + "/" + spec)
	}
	return &Result{}, err
}

// executeAnalyze recomputes full table statistics (cardinality, min/max,
// NDV sketches) and stores them in HMS (paper §4.1).
func (s *Session) executeAnalyze(x *sql.AnalyzeStmt) (*Result, error) {
	db := x.Table.DB
	if db == "" {
		db = s.db
	}
	t, err := s.srv.MS.GetTable(db, x.Table.Name)
	if err != nil {
		return nil, err
	}
	rel := plan.NewScan(t, t.Name)
	rows, err := s.runPlan(rel)
	if err != nil {
		return nil, err
	}
	all := plan.TableCols(t)
	stats := computeStats(rows, all)
	s.srv.MS.SetStats(t.FullName(), stats)
	return &Result{}, nil
}

// computeStats derives additive table statistics from rows.
func computeStats(rows [][]types.Datum, cols []metastore.Column) *metastore.TableStats {
	stats := &metastore.TableStats{RowCount: int64(len(rows)), Cols: map[string]*metastore.ColStats{}}
	for i, c := range cols {
		cs := &metastore.ColStats{NDV: hll.New()}
		for _, row := range rows {
			if i >= len(row) {
				continue
			}
			d := row[i]
			if d.Null {
				cs.NullCount++
				continue
			}
			cs.NDV.Add(d.Hash())
			if cs.Min == nil || d.Compare(*cs.Min) < 0 {
				dc := d
				cs.Min = &dc
			}
			if cs.Max == nil || d.Compare(*cs.Max) > 0 {
				dc := d
				cs.Max = &dc
			}
		}
		stats.Cols[c.Name] = cs
	}
	return stats
}

// executeWM handles workload-management DDL (paper §5.2).
func (s *Session) executeWM(st sql.Statement) (*Result, error) {
	ms := s.srv.MS
	switch x := st.(type) {
	case *sql.CreateResourcePlanStmt:
		_, err := ms.CreateResourcePlan(x.Name)
		return &Result{}, err
	case *sql.CreatePoolStmt:
		return &Result{}, ms.AddPool(x.Plan, metastore.Pool{
			Name: x.Pool, AllocFraction: x.AllocFraction, QueryParallelism: x.QueryParallelism,
			MemFraction: x.MemFraction,
		})
	case *sql.CreateRuleStmt:
		action := metastore.ActionMoveToPool
		if x.Kill {
			action = metastore.ActionKill
		}
		return &Result{}, ms.AddTrigger(x.Plan, metastore.Trigger{
			Name: x.Name, Metric: x.Metric, Threshold: x.Threshold,
			Action: action, TargetPool: x.MovePool,
		})
	case *sql.AddRuleStmt:
		return &Result{}, ms.AttachRuleToPool(x.Rule, x.Pool)
	case *sql.CreateMappingStmt:
		return &Result{}, ms.AddMapping(x.Plan, metastore.Mapping{Kind: x.Kind, Name: x.Name, Pool: x.Pool})
	case *sql.AlterPlanStmt:
		if x.DefaultPool != "" {
			return &Result{}, ms.SetDefaultPool(x.Plan, x.DefaultPool)
		}
		if x.EnableActivate {
			p, err := ms.ActivateResourcePlan(x.Plan)
			if err != nil {
				return nil, err
			}
			mgr, err := wm.NewManagerWithMemory(p, s.srv.Daemons.Executors(), s.srv.memoryBytes)
			if err != nil {
				return nil, err
			}
			s.srv.mu.Lock()
			s.srv.wmgr = mgr
			s.srv.mu.Unlock()
			return &Result{}, nil
		}
	}
	return nil, fmt.Errorf("hs2: unsupported workload management statement %T", st)
}
