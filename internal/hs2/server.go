// Package hs2 implements HiveServer2: sessions, the driver pipeline of
// paper Figure 2 (parse → logical plan → optimize → physical plan → task
// DAG → runtime), DML/DDL execution over the ACID layer, query
// reoptimization (§4.2), the query results cache (§4.3), materialized view
// maintenance (§4.4), workload management (§5.2) and federation (§6).
//
// Configuration profiles reproduce the paper's version comparison: profile
// "1.2" disables the optimizations Hive 1.2 lacked and rejects the SQL
// constructs it did not support; profile "3.1" enables everything.
package hs2

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dfs"
	"repro/internal/federation"
	"repro/internal/llap"
	"repro/internal/metastore"
	"repro/internal/mv"
	"repro/internal/plancache"
	"repro/internal/resultcache"
	"repro/internal/types"
	"repro/internal/wm"
)

// Config sizes an embedded warehouse.
type Config struct {
	FS            *dfs.FS // nil = fresh in-memory DFS
	WarehouseRoot string  // default /warehouse
	Executors     int     // LLAP executor pool size; default 8
	CacheBytes    int64   // LLAP cache capacity; default 64 MiB
	// MemoryBytes is the aggregate memory budget workload-management
	// pools admit queries against (paper §4.4). 0 disables memory
	// admission: resource plans gate on executor slots only, as before.
	MemoryBytes int64
	// IOThreads sizes the LLAP I/O elevator's async decode pool
	// (hive.llap.io.threads); default 4.
	IOThreads int
	// DecodedCacheBytes caps the elevator's decoded-vector cache
	// (hive.llap.decoded.cache.bytes); default CacheBytes/2.
	DecodedCacheBytes int64
}

// Server is the embedded HiveServer2 plus its LLAP deployment.
type Server struct {
	MS        *metastore.Metastore
	FS        *dfs.FS
	Registry  *federation.Registry
	Cache     *llap.Cache
	MetaCache *llap.MetadataCache
	Decoded   *llap.DecodedCache
	Elevator  *llap.Elevator
	Daemons   *llap.Daemons
	Results   *resultcache.Cache
	Plans     *plancache.Cache

	mu          sync.Mutex
	wmgr        *wm.Manager
	memoryBytes int64
	ioThreads   int
	defaults    map[string]string
	// querySeq disambiguates per-query scratch directories across
	// concurrent sessions (a wall-clock tick alone can collide).
	querySeq atomic.Int64
}

// NewServer boots a warehouse.
func NewServer(cfg Config) *Server {
	if cfg.FS == nil {
		cfg.FS = dfs.New()
	}
	if cfg.WarehouseRoot == "" {
		cfg.WarehouseRoot = "/warehouse"
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 8
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.IOThreads <= 0 {
		cfg.IOThreads = 4
	}
	if cfg.DecodedCacheBytes <= 0 {
		cfg.DecodedCacheBytes = cfg.CacheBytes / 2
	}
	// Session defaults come from the knob registry (knobs.go); the three
	// machine-dependent ones are resolved from the effective Config here.
	defaults := defaultConf()
	defaults["hive.parallelism"] = strconv.Itoa(runtime.NumCPU())
	defaults["hive.llap.io.threads"] = strconv.Itoa(cfg.IOThreads)
	defaults["hive.llap.decoded.cache.bytes"] = strconv.FormatInt(cfg.DecodedCacheBytes, 10)
	s := &Server{
		MS:        metastore.New(cfg.FS, cfg.WarehouseRoot),
		FS:        cfg.FS,
		Registry:  federation.NewRegistry(),
		Cache:     llap.NewCache(cfg.FS, cfg.CacheBytes),
		MetaCache: llap.NewMetadataCache(),
		Decoded:   llap.NewDecodedCache(cfg.DecodedCacheBytes),
		Elevator:  llap.NewElevator(cfg.IOThreads, cfg.DecodedCacheBytes),
		ioThreads: cfg.IOThreads,
		Daemons:   llap.NewDaemons(cfg.Executors),
		Results:   resultcache.New(256),
		Plans:     plancache.New(128),
		defaults: defaults,
	}
	s.memoryBytes = cfg.MemoryBytes
	return s
}

// Close stops the server's background machinery (the I/O elevator's
// decode goroutines). Queries must have drained first.
func (s *Server) Close() {
	if s.Elevator != nil {
		s.Elevator.Close()
	}
}

// IOThreads reports the size of the I/O elevator's decode pool.
func (s *Server) IOThreads() int { return s.ioThreads }

// WorkloadManager returns the active workload manager, if a resource plan
// has been activated.
func (s *Server) WorkloadManager() *wm.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wmgr
}

// Session is one client connection with its own configuration overlay.
type Session struct {
	srv         *Server
	db          string
	conf        map[string]string
	ctx         context.Context
	cancel      context.CancelFunc
	User        string
	Application string
	// LastRewriteUsedMV reports whether the previous query was answered
	// from a materialized view (observability for tests and examples).
	LastRewriteUsedMV bool
	// LastCacheHit reports whether the previous query came from the
	// results cache.
	LastCacheHit bool
	// LastPlanCacheHit reports whether the previous query reused a cached
	// compiled plan (skipping analysis and optimization).
	LastPlanCacheHit bool
	// LastQueryDigest is the digest the previous query was admitted and
	// observed under in workload management. On the parameterized path it
	// is the normalized digest, shared by all literal variants of a shape.
	LastQueryDigest string
	// LastCompileNanos measures the previous query's compile phase:
	// parameterization plus plan-cache lookup, plus analysis/optimization
	// only on a plan-cache miss.
	LastCompileNanos int64
	// prepared holds this session's PREPARE'd statements by name.
	prepared map[string]*preparedStmt
	// testHookAfterLookup, when set, runs between the result-cache lookup
	// and plan execution — test instrumentation for snapshot races.
	testHookAfterLookup func()
	// LastPlan is the EXPLAIN rendering of the previous query's plan.
	LastPlan string
	// LastPhysicalPlan is the prepared physical operator tree of the
	// previous executed query (exec.ExplainPhysical): what actually ran,
	// after property-driven elision and parallel placement. Golden-explain
	// tests assert which enforcers survived.
	LastPhysicalPlan string
	// Reexecutions counts reoptimization retries in this session.
	Reexecutions int
	// LastPeakMemoryBytes and LastSpilledBytes report the previous query's
	// memory governor accounting (observability for tests, monitoring and
	// workload-management triggers).
	LastPeakMemoryBytes int64
	LastSpilledBytes    int64
	// LastDecodedCacheHits/Misses report the previous query's decoded-
	// vector cache effectiveness (I/O elevator, paper §5.1); zero/zero when
	// the elevator is off or the scan never consulted the cache.
	LastDecodedCacheHits   int64
	LastDecodedCacheMisses int64
	// LastStripesSkipped counts data stripes the previous query's search
	// arguments pruned; LastDeleteStripesSkipped counts delete-delta
	// stripes pruned by the deleter write-id sarg while loading snapshots.
	LastStripesSkipped       int64
	LastDeleteStripesSkipped int64
	// LastPrefetchedStripes counts stripes the previous query handed to
	// the I/O elevator (accepted prefetches, i.e. prefetch-ahead depth
	// summed over the scan).
	LastPrefetchedStripes int64
}

// NewSession opens a session in the default database.
func (s *Server) NewSession() *Session {
	ctx, cancel := context.WithCancel(context.Background())
	return &Session{srv: s, db: "default", conf: map[string]string{}, ctx: ctx, cancel: cancel}
}

// Close ends the session: a query queued for admission or executing on
// this session's behalf is canceled and releases its resources (client
// disconnects must not wedge a pool's admission queue).
func (s *Session) Close() {
	if s.cancel != nil {
		s.cancel()
	}
}

// Conf reads a configuration key (session overlay over server defaults).
func (s *Session) Conf(key string) string {
	if v, ok := s.conf[key]; ok {
		return v
	}
	s.srv.mu.Lock()
	defer s.srv.mu.Unlock()
	return s.srv.defaults[key]
}

func (s *Session) confBool(key string) bool {
	v := strings.ToLower(s.Conf(key))
	return v == "true" || v == "1"
}

func (s *Session) confInt(key string) int64 {
	n, _ := strconv.ParseInt(s.Conf(key), 10, 64)
	return n
}

// v12 reports whether the session emulates Hive 1.2 (paper §7.1 baseline).
func (s *Session) v12() bool { return s.Conf("hive.profile") == "1.2" }

// SetConf sets a session configuration key.
func (s *Session) SetConf(key, value string) {
	key = strings.ToLower(key)
	s.conf[key] = value
	if key == "hive.profile" && value == "1.2" {
		// Hive 1.2: Tez containers without LLAP, no CBO join reordering,
		// no shared work, no semijoin reduction, no result cache, no MVs.
		for k, v := range map[string]string{
			"hive.execution.mode":              "container",
			"hive.llap.enabled":                "false",
			"hive.optimize.join.reorder":       "false",
			"hive.optimize.semijoin":           "false",
			"hive.optimize.sharedwork":         "false",
			"hive.materializedview.rewriting":  "false",
			"hive.query.results.cache.enabled": "false",
			"hive.query.plan.cache.enabled":    "false",
		} {
			s.conf[k] = v
		}
	}
	if key == "hive.profile" && value == "3.1" {
		for _, k := range []string{
			"hive.execution.mode", "hive.llap.enabled",
			"hive.optimize.join.reorder", "hive.optimize.semijoin",
			"hive.optimize.sharedwork", "hive.materializedview.rewriting",
			"hive.query.results.cache.enabled", "hive.query.plan.cache.enabled",
		} {
			delete(s.conf, k)
		}
	}
}

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    [][]types.Datum
}

// String renders the result as pipe-separated lines.
func (r *Result) String() string {
	var b strings.Builder
	for i, row := range r.Rows {
		if i > 0 {
			b.WriteByte('\n')
		}
		for j, d := range row {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(d.String())
		}
	}
	return b.String()
}

// mvRewriter builds the rewriter bound to this session's analyzer.
func (s *Session) mvRewriter() *mv.Rewriter {
	return &mv.Rewriter{
		MS: s.srv.MS,
		AnalyzeView: func(viewSQL, db string) (p planRel, err error) {
			return s.analyzeSQL(viewSQL, db)
		},
	}
}

// admission acquires workload-manager resources when a plan is active:
// the query's plan digest keys the peak-memory estimate history, and the
// context covers queue waits (client disconnect or deadline removes the
// waiter). A nil admission with no error means no plan gates this query.
func (s *Session) admission(ctx context.Context, digest string) (adm *wm.Admission, pool string, err error) {
	mgr := s.srv.WorkloadManager()
	if mgr == nil {
		return nil, "", nil
	}
	pool = mgr.PoolFor(s.User, s.Application)
	if pool == "" {
		return nil, "", nil
	}
	adm, err = mgr.Admit(ctx, pool, wm.AdmitRequest{
		Digest:       digest,
		QueueTimeout: time.Duration(s.confInt("hive.wm.queue.timeout.ms")) * time.Millisecond,
	})
	if err != nil {
		return nil, "", err
	}
	return adm, pool, nil
}

// checkTriggers evaluates workload triggers after execution; a KILL
// trigger turns into an error, reproducing §5.2 semantics. Memory metrics
// come from the last run's governor, closing the loop between operator
// memory accounting and resource-plan guardrails (paper §4.4).
func (s *Session) checkTriggers(pool string, elapsed time.Duration) error {
	mgr := s.srv.WorkloadManager()
	if mgr == nil || pool == "" {
		return nil
	}
	action, _ := mgr.Evaluate(pool, wm.QueryMetrics{
		TotalRuntimeMS:   elapsed.Milliseconds(),
		PeakMemoryBytes:  s.LastPeakMemoryBytes,
		SpilledBytes:     s.LastSpilledBytes,
		StripesSkipped:   s.LastStripesSkipped + s.LastDeleteStripesSkipped,
		DecodedCacheHits: s.LastDecodedCacheHits,
	})
	if action == wm.ActionKill {
		return fmt.Errorf("hs2: query killed by workload manager trigger in pool %s", pool)
	}
	return nil
}
