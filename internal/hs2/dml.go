package hs2

import (
	"fmt"

	"repro/internal/acid"
	"repro/internal/analyze"
	"repro/internal/exec"
	"repro/internal/metastore"
	"repro/internal/orc"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// executeInsert implements INSERT INTO/OVERWRITE with VALUES or SELECT,
// static partition specs, dynamic partitioning (trailing columns), and
// external storage handler targets.
func (s *Session) executeInsert(x *sql.InsertStmt) (*Result, error) {
	db := x.Table.DB
	if db == "" {
		db = s.db
	}
	t, err := s.srv.MS.GetTable(db, x.Table.Name)
	if err != nil {
		return nil, err
	}

	// Static partition values.
	static := map[string]types.Datum{}
	for k, e := range x.Partition {
		if e == nil {
			continue // dynamic partition key
		}
		lit, ok := e.(*sql.Lit)
		if !ok {
			return nil, fmt.Errorf("hs2: partition value for %s must be a literal", k)
		}
		pk := -1
		for i, c := range t.PartKeys {
			if c.Name == k {
				pk = i
			}
		}
		if pk < 0 {
			return nil, fmt.Errorf("hs2: %s is not a partition column of %s", k, t.FullName())
		}
		d, err := types.Cast(lit.Val, t.PartKeys[pk].Type)
		if err != nil {
			return nil, err
		}
		static[k] = d
	}

	rows, err := s.sourceRows(x, t, static)
	if err != nil {
		return nil, err
	}
	if x.Overwrite {
		if err := s.truncateTable(t); err != nil {
			return nil, err
		}
	}
	if t.StorageHandler != "" {
		return &Result{}, s.insertExternal(t, rows)
	}
	return &Result{}, s.insertRows(t, rows, false)
}

// sourceRows evaluates the insert source into full-width rows (data
// columns then partition key values).
func (s *Session) sourceRows(x *sql.InsertStmt, t *metastore.Table, static map[string]types.Datum) ([][]types.Datum, error) {
	all := plan.TableCols(t)
	// Target column list: explicit, else all data cols (+ dynamic parts).
	targets := x.Columns
	if targets == nil {
		for _, c := range t.Cols {
			targets = append(targets, c.Name)
		}
		for _, c := range t.PartKeys {
			if _, ok := static[c.Name]; !ok {
				targets = append(targets, c.Name)
			}
		}
	}
	var src [][]types.Datum
	switch {
	case x.Values != nil:
		b, err := evalValueRows(x.Values)
		if err != nil {
			return nil, err
		}
		src = b
	case x.Select != nil:
		rel, err := s.compileSelect(x.Select)
		if err != nil {
			return nil, err
		}
		rows, err := s.runPlan(rel)
		if err != nil {
			return nil, err
		}
		src = rows
	default:
		return nil, fmt.Errorf("hs2: INSERT requires VALUES or SELECT")
	}
	// Map source rows onto the table's full schema.
	out := make([][]types.Datum, len(src))
	for ri, row := range src {
		if len(row) != len(targets) {
			return nil, fmt.Errorf("hs2: INSERT has %d columns but %d values", len(targets), len(row))
		}
		full := make([]types.Datum, len(all))
		for i := range full {
			full[i] = types.NullOf(all[i].Type.Kind)
		}
		for ci, name := range targets {
			pos := -1
			for i, c := range all {
				if c.Name == name {
					pos = i
				}
			}
			if pos < 0 {
				return nil, fmt.Errorf("hs2: unknown column %s in INSERT", name)
			}
			d, err := types.Cast(row[ci], all[pos].Type)
			if err != nil {
				return nil, fmt.Errorf("hs2: column %s: %v", name, err)
			}
			full[pos] = d
		}
		for k, v := range static {
			for i, c := range all {
				if c.Name == k {
					full[i] = v
				}
			}
		}
		out[ri] = full
	}
	return out, nil
}

// evalValueRows evaluates INSERT VALUES entries, which may be any constant
// expression (literals, CASTs, arithmetic).
func evalValueRows(values [][]sql.Expr) ([][]types.Datum, error) {
	out := make([][]types.Datum, len(values))
	for i, row := range values {
		r := make([]types.Datum, len(row))
		for j, e := range row {
			if lit, ok := e.(*sql.Lit); ok {
				r[j] = lit.Val
				continue
			}
			rex, err := analyze.ResolveConstExpr(e)
			if err != nil {
				return nil, fmt.Errorf("hs2: INSERT VALUES entry %d: %v", j+1, err)
			}
			d, ok := exec.EvalConst(rex)
			if !ok {
				return nil, fmt.Errorf("hs2: INSERT VALUES entry %d is not constant", j+1)
			}
			r[j] = d
		}
		out[i] = r
	}
	return out, nil
}

// insertRows writes full-width rows into a native ACID table within one
// transaction, routing rows to partitions and updating statistics
// additively (paper §4.1).
func (s *Session) insertRows(t *metastore.Table, rows [][]types.Datum, overwrite bool) error {
	tm := s.srv.MS.Txns()
	id := tm.Begin()
	wid, err := tm.AllocateWriteId(id, t.FullName())
	if err != nil {
		tm.Abort(id)
		return err
	}
	if err := s.writeRowsAs(t, rows, wid); err != nil {
		tm.Abort(id)
		return err
	}
	tm.AddWriteSet(id, t.FullName(), "", txnOpInsert)
	if err := tm.Commit(id); err != nil {
		return err
	}
	all := plan.TableCols(t)
	s.srv.MS.MergeStats(t.FullName(), computeStats(rows, all))
	return nil
}

// writeRowsAs groups rows by partition and writes one insert delta per
// partition under the given WriteId.
func (s *Session) writeRowsAs(t *metastore.Table, rows [][]types.Datum, wid int64) error {
	dataCols := make([]orc.Column, len(t.Cols))
	for i, c := range t.Cols {
		dataCols[i] = orc.Column{Name: c.Name, Type: c.Type}
	}
	if len(t.PartKeys) == 0 {
		iw := acid.NewInsertWriter(s.srv.FS, t.Location, wid, 0, dataCols, orc.WriterOptions{})
		for _, row := range rows {
			if err := iw.WriteRow(row[:len(t.Cols)]); err != nil {
				return err
			}
		}
		return iw.Close()
	}
	writers := map[string]*acid.InsertWriter{}
	for _, row := range rows {
		values := make([]string, len(t.PartKeys))
		for i := range t.PartKeys {
			d := row[len(t.Cols)+i]
			if d.Null {
				return fmt.Errorf("hs2: NULL partition key for %s", t.PartKeys[i].Name)
			}
			values[i] = d.String()
		}
		spec := metastore.PartitionSpec(t.PartKeys, values)
		w, ok := writers[spec]
		if !ok {
			p, err := s.srv.MS.AddPartition(t.DB, t.Name, values)
			if err != nil {
				return err
			}
			w = acid.NewInsertWriter(s.srv.FS, p.Location, wid, 0, dataCols, orc.WriterOptions{})
			writers[spec] = w
		}
		if err := w.WriteRow(row[:len(t.Cols)]); err != nil {
			return err
		}
	}
	for _, w := range writers {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

// truncateTable removes all stores (INSERT OVERWRITE / MV refill).
func (s *Session) truncateTable(t *metastore.Table) error {
	if t.StorageHandler != "" {
		return nil // external systems overwrite via their own semantics
	}
	locs := []string{t.Location}
	if len(t.PartKeys) > 0 {
		locs = nil
		for _, p := range s.srv.MS.PartitionsOf(t) {
			locs = append(locs, p.Location)
		}
	}
	for _, loc := range locs {
		bases, deltas, dels, err := acid.ListStores(s.srv.FS, loc)
		if err != nil {
			return err
		}
		for _, d := range append(append(bases, deltas...), dels...) {
			if err := s.srv.FS.Remove(d, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// overwriteTable replaces a table's contents (used by MV maintenance).
func (s *Session) overwriteTable(t *metastore.Table, rows [][]types.Datum) error {
	if t.StorageHandler != "" {
		return s.insertExternal(t, rows)
	}
	if err := s.truncateTable(t); err != nil {
		return err
	}
	return s.insertRows(t, rows, true)
}

// insertExternal routes rows through the table's storage handler.
func (s *Session) insertExternal(t *metastore.Table, rows [][]types.Datum) error {
	h, ok := s.srv.Registry.Handler(t.StorageHandler)
	if !ok {
		return fmt.Errorf("hs2: no storage handler %q registered", t.StorageHandler)
	}
	w, err := h.Writer(t)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if err := w.WriteRow(row); err != nil {
			return err
		}
	}
	return w.Close()
}

// executeMultiInsert runs Hive's multi-insert: all inserts share the FROM
// source and execute within a single transaction (paper §3.2).
func (s *Session) executeMultiInsert(x *sql.MultiInsertStmt) (*Result, error) {
	tm := s.srv.MS.Txns()
	id := tm.Begin()
	type pending struct {
		t    *metastore.Table
		rows [][]types.Datum
		wid  int64
	}
	var writes []pending
	for _, ins := range x.Inserts {
		// Inject the shared FROM into the insert's select body.
		core, ok := ins.Select.Body.(*sql.SelectCore)
		if !ok {
			tm.Abort(id)
			return nil, fmt.Errorf("hs2: multi-insert branch must be a simple SELECT")
		}
		core.From = x.From
		db := ins.Table.DB
		if db == "" {
			db = s.db
		}
		t, err := s.srv.MS.GetTable(db, ins.Table.Name)
		if err != nil {
			tm.Abort(id)
			return nil, err
		}
		rows, err := s.sourceRows(ins, t, map[string]types.Datum{})
		if err != nil {
			tm.Abort(id)
			return nil, err
		}
		wid, err := tm.AllocateWriteId(id, t.FullName())
		if err != nil {
			tm.Abort(id)
			return nil, err
		}
		writes = append(writes, pending{t: t, rows: rows, wid: wid})
	}
	for _, w := range writes {
		if err := s.writeRowsAs(w.t, w.rows, w.wid); err != nil {
			tm.Abort(id)
			return nil, err
		}
		tm.AddWriteSet(id, w.t.FullName(), "", txnOpInsert)
	}
	if err := tm.Commit(id); err != nil {
		return nil, err
	}
	for _, w := range writes {
		s.srv.MS.MergeStats(w.t.FullName(), computeStats(w.rows, plan.TableCols(w.t)))
	}
	return &Result{}, nil
}

// rowTargets scans the target table with system columns for UPDATE/DELETE:
// returns matching rows as (partition values, row key, full data row).
type rowTarget struct {
	partValues []string
	key        acid.RowKey
	data       []types.Datum
}

func (s *Session) collectTargets(t *metastore.Table, where sql.Expr) ([]rowTarget, error) {
	// Build SELECT __writeid,__fileid,__rowid, <all cols> FROM t WHERE ...
	scan := plan.NewScan(t, t.Name)
	scan.Meta = true
	var rel plan.Rel = scan
	if where != nil {
		// Resolve the predicate against the scan schema via the analyzer.
		sel := &sql.SelectStmt{
			Body: &sql.SelectCore{
				Items: []sql.SelectItem{{Star: true}},
				From:  &sql.TableName{DB: t.DB, Name: t.Name},
				Where: where,
			},
			Limit: -1,
		}
		_ = sel
		cond, err := s.resolveOverScan(scan, where)
		if err != nil {
			return nil, err
		}
		rel = &plan.Filter{Input: scan, Cond: cond}
	}
	rows, err := s.runPlan(rel)
	if err != nil {
		return nil, err
	}
	nData := len(t.Cols)
	var out []rowTarget
	for _, row := range rows {
		rt := rowTarget{
			key: acid.RowKey{
				WriteID: row[0].I, FileID: row[1].I, RowID: row[2].I,
			},
			data: row[3 : 3+nData],
		}
		for i := range t.PartKeys {
			rt.partValues = append(rt.partValues, row[3+nData+i].String())
		}
		out = append(out, rt)
	}
	return out, nil
}

// resolveOverScan resolves an AST predicate against a scan's schema.
func (s *Session) resolveOverScan(scan *plan.Scan, e sql.Expr) (plan.Rex, error) {
	return analyze.ResolveExpr(s.srv.MS, s.db, scan, e)
}

func (s *Session) executeDelete(x *sql.DeleteStmt) (*Result, error) {
	db := x.Table.DB
	if db == "" {
		db = s.db
	}
	t, err := s.srv.MS.GetTable(db, x.Table.Name)
	if err != nil {
		return nil, err
	}
	targets, err := s.collectTargets(t, x.Where)
	if err != nil {
		return nil, err
	}
	return &Result{}, s.applyRowChanges(t, targets, nil, txnOpDelete)
}

func (s *Session) executeUpdate(x *sql.UpdateStmt) (*Result, error) {
	db := x.Table.DB
	if db == "" {
		db = s.db
	}
	t, err := s.srv.MS.GetTable(db, x.Table.Name)
	if err != nil {
		return nil, err
	}
	targets, err := s.collectTargets(t, x.Where)
	if err != nil {
		return nil, err
	}
	// Compute replacement rows: start from current values, apply SET.
	scan := plan.NewScan(t, t.Name)
	setIdx := make([]int, len(x.Set))
	setRex := make([]plan.Rex, len(x.Set))
	for i, asg := range x.Set {
		pos := t.Col(asg.Column)
		if pos < 0 {
			return nil, fmt.Errorf("hs2: unknown column %s in UPDATE", asg.Column)
		}
		if t.IsPartKey(asg.Column) {
			return nil, fmt.Errorf("hs2: cannot update partition column %s", asg.Column)
		}
		r, err := analyze.ResolveExpr(s.srv.MS, s.db, scan, asg.Value)
		if err != nil {
			return nil, err
		}
		setIdx[i] = pos
		setRex[i] = r
	}
	newRows := make([][]types.Datum, len(targets))
	for ri, tg := range targets {
		row := append([]types.Datum{}, tg.data...)
		for i := range t.PartKeys {
			pv, err := types.Cast(types.NewString(tg.partValues[i]), t.PartKeys[i].Type)
			if err != nil {
				return nil, err
			}
			row = append(row, pv)
		}
		for i, r := range setRex {
			v, err := evalRexOnRow(r, row)
			if err != nil {
				return nil, err
			}
			cast, err := types.Cast(v, t.Cols[setIdx[i]].Type)
			if err != nil {
				return nil, err
			}
			row[setIdx[i]] = cast
		}
		newRows[ri] = row
	}
	return &Result{}, s.applyRowChanges(t, targets, newRows, txnOpUpdate)
}

// applyRowChanges writes delete deltas for the targets (and insert deltas
// for replacements) in one transaction with first-commit-wins conflict
// tracking (paper §3.2).
func (s *Session) applyRowChanges(t *metastore.Table, targets []rowTarget, newRows [][]types.Datum, op txnOpKind) error {
	if len(targets) == 0 {
		return nil
	}
	tm := s.srv.MS.Txns()
	id := tm.Begin()
	wid, err := tm.AllocateWriteId(id, t.FullName())
	if err != nil {
		tm.Abort(id)
		return err
	}
	// Group deletes by partition.
	byPart := map[string][]acid.RowKey{}
	partVals := map[string][]string{}
	for _, tg := range targets {
		spec := metastore.PartitionSpec(t.PartKeys, tg.partValues)
		byPart[spec] = append(byPart[spec], tg.key)
		partVals[spec] = tg.partValues
	}
	for spec, keys := range byPart {
		loc := t.Location
		if len(t.PartKeys) > 0 {
			p, err := s.srv.MS.AddPartition(t.DB, t.Name, partVals[spec])
			if err != nil {
				tm.Abort(id)
				return err
			}
			loc = p.Location
		}
		dw := acid.NewDeleteWriter(s.srv.FS, loc, wid, 0)
		for _, k := range keys {
			if err := dw.Delete(k); err != nil {
				tm.Abort(id)
				return err
			}
		}
		if err := dw.Close(); err != nil {
			tm.Abort(id)
			return err
		}
		tm.AddWriteSet(id, t.FullName(), spec, op)
	}
	if newRows != nil {
		if err := s.writeRowsAs(t, newRows, wid); err != nil {
			tm.Abort(id)
			return err
		}
	}
	return tm.Commit(id)
}

func (s *Session) executeMerge(x *sql.MergeStmt) (*Result, error) {
	db := x.Target.DB
	if db == "" {
		db = s.db
	}
	t, err := s.srv.MS.GetTable(db, x.Target.Name)
	if err != nil {
		return nil, err
	}
	// Plan: source LEFT JOIN target (with system columns) ON cond.
	// Build through the analyzer for full name resolution.
	sel := &sql.SelectStmt{
		Body: &sql.SelectCore{
			Items: []sql.SelectItem{{Star: true}},
			From: &sql.Join{
				Kind:  sql.JoinLeft,
				Left:  x.Source,
				Right: &sql.TableName{DB: t.DB, Name: t.Name, Alias: x.Target.Alias},
				On:    x.On,
			},
		},
		Limit: -1,
	}
	rel, err := analyze.New(s.srv.MS, s.db).AnalyzeSelectWithMeta(sel, t.FullName())
	if err != nil {
		return nil, err
	}
	rows, err := s.runPlan(rel)
	if err != nil {
		return nil, err
	}
	// Layout: source cols ++ [__writeid,__fileid,__rowid] ++ target data
	// cols ++ target part keys.
	fields := rel.Schema()
	metaStart := -1
	for i, f := range fields {
		if f.Name == "__writeid" {
			metaStart = i
			break
		}
	}
	if metaStart < 0 {
		return nil, fmt.Errorf("hs2: MERGE could not locate target row identifiers")
	}
	srcW := metaStart
	nData := len(t.Cols)

	var deletes []rowTarget
	var inserts [][]types.Datum
	var updates []rowTarget
	var updateRows [][]types.Datum
	for _, row := range rows {
		matched := !row[metaStart].Null
		handled := false
		for _, cl := range x.When {
			if handled || cl.Matched != matched {
				continue
			}
			// Evaluate optional AND condition over the joined row.
			if cl.And != nil {
				ok, err := s.evalMergeCond(cl.And, x, t, row, srcW)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			handled = true
			switch {
			case cl.Delete:
				deletes = append(deletes, s.mergeTarget(t, row, metaStart, nData))
			case cl.Matched:
				tgt := s.mergeTarget(t, row, metaStart, nData)
				newRow := append([]types.Datum{}, tgt.data...)
				for i := range t.PartKeys {
					pv, _ := types.Cast(types.NewString(tgt.partValues[i]), t.PartKeys[i].Type)
					newRow = append(newRow, pv)
				}
				for _, asg := range cl.Set {
					pos := t.Col(asg.Column)
					if pos < 0 {
						return nil, fmt.Errorf("hs2: unknown column %s in MERGE UPDATE", asg.Column)
					}
					v, err := s.evalMergeExpr(asg.Value, x, t, row, srcW)
					if err != nil {
						return nil, err
					}
					cast, err := types.Cast(v, t.Cols[pos].Type)
					if err != nil {
						return nil, err
					}
					newRow[pos] = cast
				}
				updates = append(updates, tgt)
				updateRows = append(updateRows, newRow)
			default:
				full := make([]types.Datum, len(plan.TableCols(t)))
				if len(cl.Values) != len(full) {
					return nil, fmt.Errorf("hs2: MERGE INSERT expects %d values", len(full))
				}
				for i, e := range cl.Values {
					v, err := s.evalMergeExpr(e, x, t, row, srcW)
					if err != nil {
						return nil, err
					}
					cast, err := types.Cast(v, plan.TableCols(t)[i].Type)
					if err != nil {
						return nil, err
					}
					full[i] = cast
				}
				inserts = append(inserts, full)
			}
		}
	}
	if len(deletes) > 0 || len(updates) > 0 {
		all := append(append([]rowTarget{}, deletes...), updates...)
		if err := s.applyRowChanges(t, all, updateRows, txnOpUpdate); err != nil {
			return nil, err
		}
	}
	if len(inserts) > 0 {
		if err := s.insertRows(t, inserts, false); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

func (s *Session) mergeTarget(t *metastore.Table, row []types.Datum, metaStart, nData int) rowTarget {
	tg := rowTarget{
		key: acid.RowKey{
			WriteID: row[metaStart].I,
			FileID:  row[metaStart+1].I,
			RowID:   row[metaStart+2].I,
		},
		data: row[metaStart+3 : metaStart+3+nData],
	}
	for i := range t.PartKeys {
		tg.partValues = append(tg.partValues, row[metaStart+3+nData+i].String())
	}
	return tg
}

// evalMergeExpr resolves a merge clause expression against the joined
// (source ++ target) row.
func (s *Session) evalMergeExpr(e sql.Expr, x *sql.MergeStmt, t *metastore.Table, row []types.Datum, srcW int) (types.Datum, error) {
	r, err := analyze.ResolveExprOverJoin(s.srv.MS, s.db, x.Source, t, x.Target.Alias, e)
	if err != nil {
		return types.Datum{}, err
	}
	return evalRexOnRow(r, row)
}

func (s *Session) evalMergeCond(e sql.Expr, x *sql.MergeStmt, t *metastore.Table, row []types.Datum, srcW int) (bool, error) {
	d, err := s.evalMergeExpr(e, x, t, row, srcW)
	if err != nil {
		return false, err
	}
	return !d.Null && d.I != 0, nil
}

// txn op aliases.
type txnOpKind = txn.OpKind

const (
	txnOpInsert = txn.OpInsert
	txnOpUpdate = txn.OpUpdate
	txnOpDelete = txn.OpDelete
)

// evalRexOnRow evaluates a resolved expression against one materialized row.
func evalRexOnRow(r plan.Rex, row []types.Datum) (types.Datum, error) {
	ts := make([]types.T, len(row))
	for i, d := range row {
		ts[i] = types.T{Kind: d.K}
		if d.K == types.Decimal {
			ts[i] = types.TDecimal(18, d.DecimalScale())
		}
	}
	e, err := exec.Compile(r, ts)
	if err != nil {
		return types.Datum{}, err
	}
	b := vector.NewBatch(ts, 1)
	for c, d := range row {
		b.Cols[c].Set(0, d)
	}
	b.N = 1
	v, err := e.Eval(b)
	if err != nil {
		return types.Datum{}, err
	}
	return v.Get(0), nil
}
