package hs2

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/analyze"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/federation"
	"repro/internal/llap"
	"repro/internal/opt"
	"repro/internal/orc"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/resultcache"
	"repro/internal/sql"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/wm"
)

type planRel = plan.Rel

// Execute runs one SQL statement.
func (s *Session) Execute(text string) (*Result, error) {
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	return s.executeStmt(st, text)
}

func (s *Session) executeStmt(st sql.Statement, text string) (*Result, error) {
	if s.v12() {
		if err := checkV12Support(st); err != nil {
			return nil, err
		}
	}
	switch x := st.(type) {
	case *sql.SelectStmt:
		return s.executeQuery(x, text)
	case *sql.PrepareStmt:
		return s.executePrepare(x)
	case *sql.ExecuteStmt:
		return s.executeExecute(x)
	case *sql.DeallocateStmt:
		return s.executeDeallocate(x)
	case *sql.ExplainStmt:
		return s.explain(x.Inner)
	case *sql.SetStmt:
		s.SetConf(x.Key, x.Value)
		return &Result{}, nil
	case *sql.UseStmt:
		if _, err := s.srv.MS.Tables(x.DB); err != nil {
			return nil, err
		}
		s.db = x.DB
		return &Result{}, nil
	case *sql.ShowStmt:
		return s.executeShow(x)
	case *sql.CreateDatabaseStmt:
		err := s.srv.MS.CreateDatabase(x.Name)
		if err != nil && x.IfNotExists {
			err = nil
		}
		return &Result{}, err
	case *sql.CreateTableStmt:
		return s.executeCreateTable(x)
	case *sql.CreateMaterializedViewStmt:
		return s.executeCreateMV(x)
	case *sql.AlterMVRebuildStmt:
		return s.executeRebuildMV(x)
	case *sql.DropStmt:
		return s.executeDrop(x)
	case *sql.AlterTableDropPartitionStmt:
		return s.executeDropPartition(x)
	case *sql.AnalyzeStmt:
		return s.executeAnalyze(x)
	case *sql.InsertStmt:
		return s.executeInsert(x)
	case *sql.MultiInsertStmt:
		return s.executeMultiInsert(x)
	case *sql.UpdateStmt:
		return s.executeUpdate(x)
	case *sql.DeleteStmt:
		return s.executeDelete(x)
	case *sql.MergeStmt:
		return s.executeMerge(x)
	case *sql.CreateResourcePlanStmt, *sql.CreatePoolStmt, *sql.CreateRuleStmt,
		*sql.AddRuleStmt, *sql.CreateMappingStmt, *sql.AlterPlanStmt:
		return s.executeWM(st)
	}
	return nil, fmt.Errorf("hs2: unsupported statement %T", st)
}

// checkV12Support rejects SQL features Hive 1.2 lacked (paper §7.1: set
// operations, correlated scalar subqueries with non-equi conditions,
// INTERVAL notation, ORDER BY unselected columns, among others).
func checkV12Support(st sql.Statement) error {
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		if ex, isEx := st.(*sql.ExplainStmt); isEx {
			return checkV12Support(ex.Inner)
		}
		return nil
	}
	var err error
	var checkBody func(q sql.QueryExpr)
	var checkExpr func(e sql.Expr)
	var checkSelect func(ss *sql.SelectStmt)
	checkExpr = func(e sql.Expr) {
		if err != nil || e == nil {
			return
		}
		switch x := e.(type) {
		case *sql.IntervalExpr:
			err = fmt.Errorf("hs2: INTERVAL notation is not supported in Hive 1.2")
		case *sql.SubqueryExpr:
			// Correlated scalar subqueries with non-equi conditions.
			if hasNonEquiCorrelation(x.Sub) {
				err = fmt.Errorf("hs2: correlated scalar subquery with non-equi condition is not supported in Hive 1.2")
			}
			checkSelect(x.Sub)
		case *sql.BinExpr:
			checkExpr(x.L)
			checkExpr(x.R)
		case *sql.UnaryExpr:
			checkExpr(x.E)
		case *sql.Call:
			for _, a := range x.Args {
				checkExpr(a)
			}
		case *sql.CaseExpr:
			checkExpr(x.Operand)
			for _, w := range x.Whens {
				checkExpr(w.Cond)
				checkExpr(w.Then)
			}
			checkExpr(x.Else)
		case *sql.CastExpr:
			checkExpr(x.E)
		case *sql.BetweenExpr:
			checkExpr(x.E)
			checkExpr(x.Lo)
			checkExpr(x.Hi)
		case *sql.InExpr:
			checkExpr(x.E)
			if x.Sub != nil {
				checkSelect(x.Sub)
			}
		case *sql.ExistsExpr:
			checkSelect(x.Sub)
		case *sql.IsNullExpr:
			checkExpr(x.E)
		case *sql.LikeExpr:
			checkExpr(x.E)
		}
	}
	checkBody = func(q sql.QueryExpr) {
		if err != nil {
			return
		}
		switch b := q.(type) {
		case *sql.SetOp:
			if b.Kind == sql.SetIntersect || b.Kind == sql.SetExcept {
				err = fmt.Errorf("hs2: %s is not supported in Hive 1.2", b.Kind)
				return
			}
			checkBody(b.Left)
			checkBody(b.Right)
		case *sql.SelectCore:
			for _, it := range b.Items {
				checkExpr(it.Expr)
			}
			checkExpr(b.Where)
			checkExpr(b.Having)
		}
	}
	checkSelect = func(ss *sql.SelectStmt) {
		if err != nil {
			return
		}
		checkBody(ss.Body)
		// ORDER BY on unselected columns: detectable for simple cores.
		if core, ok := ss.Body.(*sql.SelectCore); ok {
			for _, o := range ss.OrderBy {
				id, isIdent := o.Expr.(*sql.Ident)
				if !isIdent {
					continue
				}
				found := false
				for _, it := range core.Items {
					if it.Star || it.TableStar != "" {
						found = true
						break
					}
					if it.Alias == id.Name {
						found = true
						break
					}
					if sel, ok := it.Expr.(*sql.Ident); ok && sel.Name == id.Name {
						found = true
						break
					}
				}
				if !found {
					err = fmt.Errorf("hs2: ORDER BY on unselected column %q is not supported in Hive 1.2", id.Name)
					return
				}
			}
		}
		for _, cte := range ss.With {
			checkSelect(cte.Select)
		}
	}
	checkSelect(sel)
	return err
}

func hasNonEquiCorrelation(ss *sql.SelectStmt) bool {
	core, ok := ss.Body.(*sql.SelectCore)
	if !ok || core.Where == nil {
		return false
	}
	nonEqui := false
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		be, ok := e.(*sql.BinExpr)
		if !ok {
			return
		}
		switch be.Op {
		case "AND":
			walk(be.L)
			walk(be.R)
		case "<", "<=", ">", ">=", "<>":
			nonEqui = true
		}
	}
	walk(core.Where)
	return nonEqui
}

// analyzeSQL parses and analyzes a SELECT (used for views).
func (s *Session) analyzeSQL(text, db string) (plan.Rel, error) {
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("hs2: expected SELECT, got %T", st)
	}
	return analyze.New(s.srv.MS, db).AnalyzeSelect(sel)
}

func (s *Session) optimizerOptions() opt.Options {
	return opt.Options{
		JoinReorder: s.confBool("hive.optimize.join.reorder"),
		Semijoin:    s.confBool("hive.optimize.semijoin"),
		SharedWork:  s.confBool("hive.optimize.sharedwork"),
		PruneCols:   s.confBool("hive.optimize.prunecols"),
	}
}

// compileSelect runs the full planning pipeline for a SELECT.
func (s *Session) compileSelect(sel *sql.SelectStmt) (plan.Rel, error) {
	rel, err := analyze.New(s.srv.MS, s.db).AnalyzeSelect(sel)
	if err != nil {
		return nil, err
	}
	s.LastRewriteUsedMV = false
	if s.confBool("hive.materializedview.rewriting") {
		rewritten, changed := s.mvRewriter().Rewrite(rel, s.db)
		if changed {
			rel = rewritten
			s.LastRewriteUsedMV = true
		}
	}
	rel = opt.New(s.srv.MS, s.optimizerOptions()).Optimize(rel)
	rel = s.srv.Registry.PushComputation(rel)
	return rel, nil
}

func (s *Session) explain(st sql.Statement) (*Result, error) {
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("hs2: EXPLAIN supports SELECT statements")
	}
	rel, err := s.compileSelect(sel)
	if err != nil {
		return nil, err
	}
	text := plan.Explain(rel)
	// Surface the I/O path the scan will take: with the elevator on, scans
	// are served from (and hint ahead into) the decoded-vector cache; the
	// runtime counters land in Session.Last{DecodedCacheHits,...} after
	// execution.
	if s.confBool("hive.llap.enabled") && s.confBool("hive.llap.elevator") && s.srv.Decoded != nil {
		text += fmt.Sprintf("io: llap elevator (threads=%d, decoded-cache=%d bytes)\n",
			s.srv.IOThreads(), s.srv.Decoded.Capacity())
	}
	s.LastPlan = text
	res := &Result{Columns: []string{"plan"}}
	res.Rows = append(res.Rows, []types.Datum{types.NewString(text)})
	return res, nil
}

// snapshotAt captures the per-table WriteId watermarks a plan reads, as
// seen from one pinned transaction snapshot. Watermarks and execution must
// derive from the same snapshot — the result cache keys validity on them.
func (s *Session) snapshotAt(rel plan.Rel, cur txn.Snapshot) resultcache.Snapshot {
	snap := resultcache.Snapshot{}
	tm := s.srv.MS.Txns()
	var walk func(r plan.Rel)
	seen := map[plan.Rel]bool{}
	walk = func(r plan.Rel) {
		if seen[r] {
			return
		}
		seen[r] = true
		if sc, ok := r.(*plan.Scan); ok {
			full := sc.Table.FullName()
			snap[full] = tm.GetValidWriteIds(full, cur).HighWater
		}
		if fs, ok := r.(*plan.ForeignScan); ok {
			// External tables have no transactional snapshot; a changing
			// generation marker would go here. Use -1 (never cacheable as
			// fresh across writes we cannot observe).
			snap[fs.Table.FullName()] = -1
		}
		for _, c := range r.Children() {
			walk(c)
		}
	}
	walk(rel)
	return snap
}

func watermarksEqual(a, b resultcache.Snapshot) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func (s *Session) executeQuery(sel *sql.SelectStmt, text string) (*Result, error) {
	if s.planCacheUsable() {
		if res, handled, err := s.executeParameterized(sel); handled {
			return res, err
		}
	}
	start := time.Now()
	rel, err := s.compileSelect(sel)
	if err != nil {
		return nil, err
	}
	s.LastPlanCacheHit = false
	s.LastCompileNanos = time.Since(start).Nanoseconds()
	s.LastPlan = plan.Explain(rel)
	cols := make([]string, len(rel.Schema()))
	for i, f := range rel.Schema() {
		cols[i] = f.Name
	}
	key := s.db + "|" + rel.Digest()
	return s.execCompiled(rel, cols, key, key, sql.IsDeterministic(sel))
}

// planCacheUsable gates the parameterized serving path. Materialized-view
// rewriting is literal- and freshness-sensitive: a rewritten plan is only
// valid for the literals and MV state it was rewritten under, so sessions
// where a rewrite is possible fall back to the full per-query pipeline.
func (s *Session) planCacheUsable() bool {
	if !s.confBool("hive.query.plan.cache.enabled") {
		return false
	}
	if s.confBool("hive.materializedview.rewriting") && len(s.srv.MS.MaterializedViews()) > 0 {
		return false
	}
	return true
}

// planConfFingerprint folds the configuration that shapes logical planning
// into the plan-cache key, so a SET that changes optimizer behavior gets a
// fresh compile instead of a stale template.
func (s *Session) planConfFingerprint() string {
	keys := []string{
		"hive.profile",
		"hive.optimize.join.reorder",
		"hive.optimize.semijoin",
		"hive.optimize.sharedwork",
		"hive.optimize.prunecols",
		"hive.materializedview.rewriting",
	}
	var b []byte
	for _, k := range keys {
		b = append(b, s.Conf(k)...)
		b = append(b, ';')
	}
	return string(b)
}

// executeParameterized is the hot serving path (paper §4.3): hoist
// literals, look up the optimized plan template by normalized digest, bind
// the hoisted values, and run. handled=false falls back to the per-query
// pipeline (e.g. the parameterized form fails to analyze).
func (s *Session) executeParameterized(sel *sql.SelectStmt) (res *Result, handled bool, err error) {
	start := time.Now()
	norm, args, digest := sql.Parameterize(sel)
	key := plancache.Key{
		DB:     s.db,
		Digest: digest,
		Schema: s.srv.MS.SchemaVersion(),
		Conf:   s.planConfFingerprint(),
	}
	entry := s.srv.Plans.Get(key)
	s.LastPlanCacheHit = entry != nil
	if entry == nil {
		rel, aerr := analyze.New(s.srv.MS, s.db).AnalyzeSelect(norm)
		if aerr != nil {
			// Some statements only analyze with concrete literals (e.g.
			// type-dependent coercions); let the literal pipeline decide.
			return nil, false, nil
		}
		rel = opt.New(s.srv.MS, s.optimizerOptions()).Optimize(rel)
		cols := make([]string, len(rel.Schema()))
		for i, f := range rel.Schema() {
			cols[i] = f.Name
		}
		paramTypes := make([]types.T, len(args))
		for i, a := range args {
			paramTypes[i] = sql.ParamType(a)
		}
		entry = &plancache.Entry{
			Rel:           rel,
			Columns:       cols,
			ParamTypes:    paramTypes,
			Deterministic: sql.IsDeterministic(sel),
		}
		s.srv.Plans.Put(key, entry)
	}
	s.LastRewriteUsedMV = false
	s.LastCompileNanos = time.Since(start).Nanoseconds()
	res, err = s.executeTemplate(s.db, digest, entry, args)
	return res, true, err
}

// executeTemplate binds args into a cached plan template and runs it. The
// result cache is keyed on the normalized digest plus the rendered
// arguments — literal variants share a template but not result rows.
func (s *Session) executeTemplate(db, digest string, entry *plancache.Entry, args []types.Datum) (*Result, error) {
	bound, err := plan.BindParams(entry.Rel, args)
	if err != nil {
		return nil, err
	}
	// Federation pushdown folds bound literals into foreign queries, so it
	// runs per execution, after binding.
	bound = s.srv.Registry.PushComputation(bound)
	s.LastPlan = plan.Explain(bound)
	admKey := db + "|" + digest
	resKey := admKey + "|args=" + renderArgs(args)
	return s.execCompiled(bound, entry.Columns, resKey, admKey, entry.Deterministic)
}

// renderArgs canonicalizes a bound argument vector for result-cache keys.
func renderArgs(args []types.Datum) string {
	var b []byte
	for _, a := range args {
		if a.K == types.String && !a.Null {
			b = append(b, '\'')
			b = append(b, a.S...)
			b = append(b, '\'')
		} else {
			b = append(b, a.String()...)
		}
		b = append(b, ',')
	}
	return string(b)
}

// execCompiled is the shared execution tail: one transaction snapshot,
// pinned before the result-cache lookup, drives the lookup watermarks,
// every table scan, and the Fill — a write landing between lookup and run
// can no longer publish too-new rows under stale watermarks.
func (s *Session) execCompiled(rel plan.Rel, cols []string, resKey, admKey string, deterministic bool) (*Result, error) {
	s.LastCacheHit = false
	pinned := s.srv.MS.Txns().GetSnapshot()
	useCache := s.confBool("hive.query.results.cache.enabled") && deterministic
	var snap resultcache.Snapshot
	if useCache {
		snap = s.snapshotAt(rel, pinned)
		for _, w := range snap {
			if w < 0 {
				useCache = false // external source: not cacheable
				break
			}
		}
	}
	if useCache {
		for {
			ccols, rows, outcome := s.srv.Results.Lookup(resKey, snap)
			if outcome == resultcache.Hit {
				s.LastCacheHit = true
				return &Result{Columns: ccols, Rows: rows}, nil
			}
			if outcome == resultcache.MissFill {
				break
			}
			// MissWaited: the filling query finished; retry lookup.
		}
		if s.testHookAfterLookup != nil {
			s.testHookAfterLookup()
		}
	}

	rows, err := s.runPlanAt(rel, admKey, &pinned)
	if err != nil {
		if useCache {
			s.srv.Results.Abandon(resKey, snap)
		}
		return nil, err
	}
	if useCache {
		// Re-validate before publishing: the rows were computed at the
		// pinned snapshot, so its watermarks must still be the ones the
		// lookup reserved. A mismatch would mean the watermark derivation
		// itself drifted — never publish under watermarks that don't
		// describe the rows.
		if watermarksEqual(s.snapshotAt(rel, pinned), snap) {
			s.srv.Results.Fill(resKey, cols, rows, snap)
		} else {
			s.srv.Results.Abandon(resKey, snap)
		}
	}
	return &Result{Columns: cols, Rows: rows}, nil
}

// runPlan executes a plan with a transaction snapshot pinned at entry,
// keyed for admission on the plan's literal-bearing digest. DML and DDL
// internals use it; the SELECT path goes through execCompiled/runPlanAt
// with the normalized digest.
func (s *Session) runPlan(rel plan.Rel) ([][]types.Datum, error) {
	return s.runPlanAt(rel, s.db+"|"+rel.Digest(), nil)
}

// runPlanAt compiles the physical plan, chooses a runtime mode, executes
// with workload-management admission, and reoptimizes on runtime errors.
// The whole run — including the admission queue wait — is bounded by the
// session's hive.query.timeout and canceled by Session.Close.
//
// Every table scan reads at snap; nil pins a fresh snapshot at entry.
// Pinning one snapshot for the whole query keeps multi-scan plans
// consistent when writes commit mid-run. admKey keys the workload
// manager's peak-memory history: repeats of a plan shape are admitted
// against their observed footprint, and on the parameterized path all
// literal variants of a shape share one history entry.
func (s *Session) runPlanAt(rel plan.Rel, admKey string, snap *txn.Snapshot) ([][]types.Datum, error) {
	qctx := s.ctx
	if qctx == nil {
		qctx = context.Background()
	}
	if ms := s.confInt("hive.query.timeout"); ms > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}
	if snap == nil {
		pinned := s.srv.MS.Txns().GetSnapshot()
		snap = &pinned
	}
	s.LastQueryDigest = admKey
	adm, pool, err := s.admission(qctx, admKey)
	if err != nil {
		return nil, err
	}
	if adm != nil {
		defer adm.Release()
	}
	start := time.Now()

	memLimit := s.confInt("hive.exec.memory.limit.rows")
	rows, err := s.runOnce(qctx, rel, memLimit, adm, *snap)
	if err != nil {
		if _, pressure := err.(exec.ErrMemoryPressure); pressure && s.confBool("hive.query.reexecution.enabled") {
			// Paper §4.2: reexecute with overlay configuration (more
			// robust settings) or after reoptimizing with runtime stats.
			s.Reexecutions++
			if s.Conf("hive.query.reexecution.strategy") == "reoptimize" {
				rel = opt.New(s.srv.MS, s.optimizerOptions()).Optimize(rel)
			}
			rows, err = s.runOnce(qctx, rel, 0, adm, *snap)
		}
	}
	// Feed the observed peak back into the admission estimate history —
	// the governor accounts peaks even for failed runs, and a killed
	// memory hog is exactly what the next admission should know about.
	if mgr := s.srv.WorkloadManager(); mgr != nil && pool != "" {
		mgr.Observe(admKey, s.LastPeakMemoryBytes)
	}
	if err != nil {
		return nil, err
	}
	if terr := s.checkTriggers(pool, time.Since(start)); terr != nil {
		return nil, terr
	}
	return rows, nil
}

func (s *Session) runOnce(qctx context.Context, rel plan.Rel, memLimit int64, adm *wm.Admission, snap txn.Snapshot) ([][]types.Datum, error) {
	ctx := exec.NewContext()
	ctx.MemoryLimitRows = memLimit
	mode := dag.ModeLLAP
	switch s.Conf("hive.execution.mode") {
	case "mr":
		mode = dag.ModeMR
	case "container":
		mode = dag.ModeContainer
	}
	var view *llap.QueryVectorView
	if mode == dag.ModeLLAP && s.confBool("hive.llap.enabled") {
		ctx.Chunks = s.srv.Cache
		ctx.Readers = s.srv.MetaCache
		// I/O elevator (paper §5.1): serve and publish decoded vectors and
		// let scans hint upcoming stripes to the async decode pool. Off, the
		// scan path is byte-identical to the synchronous one — the elevator
		// and its cache only change timing, never results.
		if s.confBool("hive.llap.elevator") && s.srv.Decoded != nil {
			view = &llap.QueryVectorView{Cache: s.srv.Decoded}
			ctx.Vectors = view
		}
	}
	// Intra-query parallelism rides on LLAP executor slots (paper §5.1);
	// MR and container modes stay serial like the paper's baselines.
	dop := 1
	if mode == dag.ModeLLAP {
		dop = int(s.confInt("hive.parallelism"))
		if dop <= 0 {
			dop = runtime.NumCPU()
		}
		// The admission's DOP is a cap, not a grant: a degraded admission
		// runs the query narrower so a saturated pool degrades instead of
		// oversubscribing executors.
		if adm != nil && adm.DOP > 0 && dop > adm.DOP {
			dop = adm.DOP
		}
		ctx.DOP = dop
		ctx.Slots = s.srv.Daemons
	}
	// Memory governance: the blocking operators account against the
	// session budget and spill to the query scratch directory when denied
	// (hive.query.max.memory; 0 keeps accounting for peak observability
	// without ever denying). The server-wide query sequence keeps
	// concurrent queries' scratch directories disjoint — a shared
	// directory would let the first finisher's sweep delete the other's
	// live spill files.
	scratch := fmt.Sprintf("%s/_scratch/q%d_%d", s.srv.MS.Root(), time.Now().UnixNano(), s.srv.querySeq.Add(1))
	// The admission's QueryBudget makes the reservation sound: the
	// governor denies growth past what the pool granted, so the query
	// spills instead of blowing the pool's aggregate budget. An explicit
	// smaller session budget still wins.
	budget := s.confInt("hive.query.max.memory")
	if adm != nil && adm.QueryBudget > 0 && (budget <= 0 || adm.QueryBudget < budget) {
		budget = adm.QueryBudget
	}
	ctx.GoCtx = qctx
	ctx.Mem = exec.NewGovernor(budget)
	ctx.FS = s.srv.FS
	ctx.ScratchDir = scratch
	// Prefetch decode memory is charged to this query's governor before a
	// stripe is handed to the elevator, so background decode stays inside
	// the admission's budget and is shed — not spilled for — under pressure.
	if view != nil && s.srv.Elevator != nil {
		ctx.Prefetch = exec.NewGovernedPrefetcher(s.srv.Elevator, ctx.Mem)
	}
	defer func() {
		// The scratch directory must not outlive the query, however it
		// ended: operators remove their spill files on Close, and this
		// sweep catches anything an abnormal unwind left behind.
		s.srv.FS.Remove(scratch, true)
		s.LastPeakMemoryBytes = ctx.Mem.PeakBytes()
		s.LastSpilledBytes = ctx.Mem.SpilledBytes()
		s.LastDecodedCacheHits, s.LastDecodedCacheMisses = 0, 0
		if view != nil {
			s.LastDecodedCacheHits = view.Hits.Load()
			s.LastDecodedCacheMisses = view.Misses.Load()
		}
		s.LastStripesSkipped = ctx.ScanStats.StripesSkipped.Load()
		s.LastDeleteStripesSkipped = ctx.ScanStats.DeleteStripesSkipped.Load()
		s.LastPrefetchedStripes = ctx.ScanStats.Prefetched.Load()
	}()
	comp := &exec.Compiler{
		Ctx:      ctx,
		MakeScan: s.makeScanFactory(ctx, snap),
		MakeForeign: func(f *plan.ForeignScan) (exec.Operator, error) {
			h, ok := s.srv.Registry.Handler(f.Handler)
			if !ok {
				return nil, fmt.Errorf("hs2: no storage handler %q", f.Handler)
			}
			return &federation.ForeignScanOp{Handler: h, Table: f.Table, Fields: f.Fields, Query: f.Query}, nil
		},
	}
	op, err := comp.Compile(rel)
	if err != nil {
		return nil, err
	}
	runner := &dag.Runner{
		Mode:            mode,
		ContainerLaunch: time.Duration(s.confInt("hive.container.launch.ms")) * time.Millisecond,
		FS:              s.srv.FS,
		ScratchDir:      scratch,
		Daemons:         s.srv.Daemons,
		DOP:             dop,
		Ctx:             ctx,
		TargetStripes:   int(s.confInt("hive.split.target.stripes")),
		SerialSort:      !s.confBool("hive.sort.parallel"),
		SerialSpool:     !s.confBool("hive.spool.parallel"),
		NoProps:         !s.confBool("hive.planner.properties"),
	}
	op, shape := runner.Prepare(op)
	s.LastPhysicalPlan = exec.ExplainPhysical(op)
	return runner.Run(op, shape)
}

// makeScanFactory builds ACID scan operators: splits per partition with
// static partition pruning from pushed predicates, sargs for stripe
// skipping, runtime semijoin reducer bindings, and a residual filter that
// guarantees exactness regardless of pushdown. All scans of the query read
// at the same pinned snapshot — the one the result cache keyed on.
func (s *Session) makeScanFactory(ctx *exec.Context, snap txn.Snapshot) func(sc *plan.Scan) (exec.Operator, error) {
	return func(sc *plan.Scan) (exec.Operator, error) {
		tm := s.srv.MS.Txns()
		valid := tm.GetValidWriteIds(sc.Table.FullName(), snap)
		splits, err := s.splitsFor(sc, valid)
		if err != nil {
			return nil, err
		}
		op := &exec.ScanOp{
			FS:     s.srv.FS,
			Table:  sc.Table,
			Cols:   sc.Cols,
			Meta:   sc.Meta,
			Splits: splits,
			Ctx:    ctx,
			Sarg:   s.sargFor(sc),
		}
		for _, rf := range sc.RF {
			if rf.PartKeyIdx >= 0 {
				op.Prune = append(op.Prune, exec.PartPruneBind{FilterID: rf.ID, PartKey: rf.PartKeyIdx})
			} else {
				op.RF = append(op.RF, exec.RuntimeFilterBind{FilterID: rf.ID, OutCol: rf.Col})
			}
		}
		// Residual filter for exactness.
		if len(sc.Filter) > 0 {
			pred, err := exec.Compile(plan.AndAll(sc.Filter), op.Types())
			if err != nil {
				return nil, err
			}
			return &exec.FilterOp{Input: op, Pred: pred}, nil
		}
		return op, nil
	}
}

// splitsFor lists the table's splits, statically pruning partitions whose
// key values violate pushed predicates (paper §3.1: Hive skips scanning
// full partitions for queries filtering on partition values).
func (s *Session) splitsFor(sc *plan.Scan, valid txn.ValidWriteIds) ([]exec.TableSplit, error) {
	t := sc.Table
	if len(t.PartKeys) == 0 {
		return []exec.TableSplit{{Loc: t.Location, Valid: valid}}, nil
	}
	metaOff := 0
	if sc.Meta {
		metaOff = 3
	}
	// Identify pushed predicates that reference only partition-key output
	// columns, and their output positions.
	partCols := map[int]int{} // scan output ordinal -> part key index
	for outIdx, tcol := range sc.Cols {
		if tcol >= len(t.Cols) {
			partCols[metaOff+outIdx] = tcol - len(t.Cols)
		}
	}
	var partPreds []plan.Rex
	for _, f := range sc.Filter {
		bits := map[int]bool{}
		plan.InputBits(f, bits)
		onlyPart := len(bits) > 0
		for b := range bits {
			if _, ok := partCols[b]; !ok {
				onlyPart = false
				break
			}
		}
		if onlyPart {
			partPreds = append(partPreds, f)
		}
	}
	var splits []exec.TableSplit
	for _, p := range s.srv.MS.PartitionsOf(t) {
		vals := make([]types.Datum, len(t.PartKeys))
		for i, v := range p.Values {
			d, err := types.Cast(types.NewString(v), t.PartKeys[i].Type)
			if err != nil {
				return nil, err
			}
			vals[i] = d
		}
		keep := true
		for _, f := range partPreds {
			ok, err := evalPartPred(f, partCols, vals)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			splits = append(splits, exec.TableSplit{Loc: p.Location, PartValues: vals, Valid: valid})
		}
	}
	return splits, nil
}

// evalPartPred evaluates a partition-only predicate against one partition's
// key values by substituting them as literals.
func evalPartPred(f plan.Rex, partCols map[int]int, vals []types.Datum) (bool, error) {
	subst := plan.RemapCols(f, func(i int) int { return i })
	subst = substituteLiterals(subst, partCols, vals)
	d, ok := exec.EvalConst(subst)
	if !ok {
		return true, nil // cannot decide statically: keep the partition
	}
	return !d.Null && d.I != 0, nil
}

func substituteLiterals(e plan.Rex, partCols map[int]int, vals []types.Datum) plan.Rex {
	switch x := e.(type) {
	case *plan.ColRef:
		if pi, ok := partCols[x.Idx]; ok && pi < len(vals) {
			return &plan.Literal{Val: vals[pi], T: x.T}
		}
		return x
	case *plan.Func:
		args := make([]plan.Rex, len(x.Args))
		for i, a := range x.Args {
			args[i] = substituteLiterals(a, partCols, vals)
		}
		return &plan.Func{Op: x.Op, Args: args, T: x.T}
	default:
		return e
	}
}

// sargFor converts pushed predicates into a search argument over the ACID
// file schema (3 system columns + data columns).
func (s *Session) sargFor(sc *plan.Scan) *orc.SearchArgument {
	metaOff := 0
	if sc.Meta {
		metaOff = 3
	}
	var preds []orc.Predicate
	for _, f := range sc.Filter {
		fn, ok := f.(*plan.Func)
		if !ok || len(fn.Args) != 2 {
			continue
		}
		cr, crOK := fn.Args[0].(*plan.ColRef)
		lit, litOK := fn.Args[1].(*plan.Literal)
		op := fn.Op
		if !crOK || !litOK {
			cr, crOK = fn.Args[1].(*plan.ColRef)
			lit, litOK = fn.Args[0].(*plan.Literal)
			if !crOK || !litOK {
				continue
			}
			op = flipCompare(op)
		}
		// Only data columns are stored in files.
		tcolPos := cr.Idx - metaOff
		if tcolPos < 0 || tcolPos >= len(sc.Cols) {
			continue
		}
		tcol := sc.Cols[tcolPos]
		if tcol >= len(sc.Table.Cols) {
			continue // partition key: handled by split pruning
		}
		fileCol := 3 + tcol // acid meta columns precede data in files
		var p orc.Predicate
		switch op {
		case "=":
			p = orc.Predicate{Col: fileCol, Op: orc.PredEQ, Values: []types.Datum{lit.Val}}
		case "<":
			p = orc.Predicate{Col: fileCol, Op: orc.PredLT, Values: []types.Datum{lit.Val}}
		case "<=":
			p = orc.Predicate{Col: fileCol, Op: orc.PredLE, Values: []types.Datum{lit.Val}}
		case ">":
			p = orc.Predicate{Col: fileCol, Op: orc.PredGT, Values: []types.Datum{lit.Val}}
		case ">=":
			p = orc.Predicate{Col: fileCol, Op: orc.PredGE, Values: []types.Datum{lit.Val}}
		default:
			continue
		}
		preds = append(preds, p)
	}
	if len(preds) == 0 {
		return nil
	}
	return &orc.SearchArgument{Preds: preds}
}

func flipCompare(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func (s *Session) executeShow(x *sql.ShowStmt) (*Result, error) {
	res := &Result{Columns: []string{x.What}}
	switch x.What {
	case "tables":
		names, err := s.srv.MS.Tables(s.db)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			res.Rows = append(res.Rows, []types.Datum{types.NewString(n)})
		}
	case "databases":
		for _, n := range s.srv.MS.Databases() {
			res.Rows = append(res.Rows, []types.Datum{types.NewString(n)})
		}
	default:
		return nil, fmt.Errorf("hs2: SHOW %s not supported", x.What)
	}
	return res, nil
}
