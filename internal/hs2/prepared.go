package hs2

import (
	"fmt"

	"repro/internal/analyze"
	"repro/internal/opt"
	"repro/internal/plancache"
	"repro/internal/sql"
	"repro/internal/types"
)

// preparedStmt is one PREPARE'd statement in a session: the parameterized
// AST, its normalized digest, and the declared parameter types. The
// compiled template itself lives in the server-wide plan cache so every
// session preparing the same shape shares one compilation; the session
// entry is just the handle EXECUTE resolves by name.
type preparedStmt struct {
	name       string
	db         string // database the statement was prepared against
	digest     string // normalized digest of the parameterized form
	norm       *sql.SelectStmt
	paramTypes []types.T
	det        bool
}

// executePrepare parses already happened; hoist literals, compile the
// template eagerly (so EXECUTE is pure bind-and-run), and register the
// name. Re-preparing an existing name replaces it.
func (s *Session) executePrepare(x *sql.PrepareStmt) (*Result, error) {
	if s.v12() {
		if err := checkV12Support(x.Select); err != nil {
			return nil, err
		}
	}
	norm, args, digest := sql.Parameterize(x.Select)
	paramTypes := make([]types.T, len(args))
	for i, a := range args {
		paramTypes[i] = sql.ParamType(a)
	}
	p := &preparedStmt{
		name:       x.Name,
		db:         s.db,
		digest:     digest,
		norm:       norm,
		paramTypes: paramTypes,
		det:        sql.IsDeterministic(x.Select),
	}
	// Compile now: a PREPARE that cannot plan should fail at PREPARE, and
	// the warm template makes the first EXECUTE as cheap as the rest.
	if _, err := s.templateFor(p); err != nil {
		return nil, err
	}
	if s.prepared == nil {
		s.prepared = map[string]*preparedStmt{}
	}
	s.prepared[x.Name] = p
	return &Result{}, nil
}

// templateFor returns the compiled plan template for a prepared statement,
// from the plan cache when possible, compiling (and caching) otherwise.
func (s *Session) templateFor(p *preparedStmt) (*plancache.Entry, error) {
	key := plancache.Key{
		DB:     p.db,
		Digest: p.digest,
		Schema: s.srv.MS.SchemaVersion(),
		Conf:   s.planConfFingerprint(),
	}
	cacheable := s.confBool("hive.query.plan.cache.enabled")
	if cacheable {
		if e := s.srv.Plans.Get(key); e != nil {
			s.LastPlanCacheHit = true
			return e, nil
		}
	}
	s.LastPlanCacheHit = false
	rel, err := analyze.New(s.srv.MS, p.db).AnalyzeSelect(p.norm)
	if err != nil {
		return nil, err
	}
	rel = opt.New(s.srv.MS, s.optimizerOptions()).Optimize(rel)
	cols := make([]string, len(rel.Schema()))
	for i, f := range rel.Schema() {
		cols[i] = f.Name
	}
	e := &plancache.Entry{Rel: rel, Columns: cols, ParamTypes: p.paramTypes, Deterministic: p.det}
	if cacheable {
		s.srv.Plans.Put(key, e)
	}
	return e, nil
}

// executeExecute binds EXECUTE arguments to a prepared statement and runs
// its cached template — no parsing or planning on this path.
func (s *Session) executeExecute(x *sql.ExecuteStmt) (*Result, error) {
	p, ok := s.prepared[x.Name]
	if !ok {
		return nil, fmt.Errorf("hs2: no prepared statement %q", x.Name)
	}
	if len(x.Args) != len(p.paramTypes) {
		return nil, fmt.Errorf("hs2: prepared statement %q wants %d parameters, got %d",
			x.Name, len(p.paramTypes), len(x.Args))
	}
	args := make([]types.Datum, len(x.Args))
	for i, a := range x.Args {
		d, err := executeArgValue(a)
		if err != nil {
			return nil, fmt.Errorf("hs2: EXECUTE %s argument %d: %w", x.Name, i+1, err)
		}
		args[i] = d
	}
	entry, err := s.templateFor(p)
	if err != nil {
		return nil, err
	}
	s.LastCompileNanos = 0 // bind-and-run: nothing compiled on this path
	return s.executeTemplate(p.db, p.digest, entry, args)
}

// executeArgValue evaluates an EXECUTE argument: a literal constant,
// optionally under unary minus. Anything needing a row context is not a
// constant and is rejected.
func executeArgValue(e sql.Expr) (types.Datum, error) {
	switch x := e.(type) {
	case *sql.Lit:
		return x.Val, nil
	case *sql.UnaryExpr:
		if x.Op == "-" {
			d, err := executeArgValue(x.E)
			if err != nil {
				return types.Datum{}, err
			}
			switch d.K {
			case types.Int64:
				d.I = -d.I
				return d, nil
			case types.Float64:
				d.F = -d.F
				return d, nil
			case types.Decimal:
				d.I = -d.I
				return d, nil
			}
		}
	}
	return types.Datum{}, fmt.Errorf("expected a literal constant, got %s", sql.FormatExpr(e))
}

func (s *Session) executeDeallocate(x *sql.DeallocateStmt) (*Result, error) {
	if _, ok := s.prepared[x.Name]; !ok {
		return nil, fmt.Errorf("hs2: no prepared statement %q", x.Name)
	}
	delete(s.prepared, x.Name)
	return &Result{}, nil
}

// EstimateForDigest exposes the workload manager's memory estimate for a
// digest (observability: tests assert literal variants share history).
func (s *Session) EstimateForDigest(pool, digest string) int64 {
	mgr := s.srv.WorkloadManager()
	if mgr == nil {
		return 0
	}
	return mgr.EstimateFor(pool, digest)
}
