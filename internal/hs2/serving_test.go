package hs2

import (
	"strings"
	"testing"
)

func servingWarehouse(t *testing.T) (*Server, *Session) {
	t.Helper()
	srv := NewServer(Config{})
	s := srv.NewSession()
	mustExec(t, s, `CREATE TABLE t (v BIGINT)`)
	mustExec(t, s, `INSERT INTO t VALUES (1), (2), (3)`)
	return srv, s
}

func mustExec(t *testing.T, s *Session, q string) *Result {
	t.Helper()
	r, err := s.Execute(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return r
}

// TestResultCacheSnapshotPinned is the regression test for the result-cache
// TOCTOU: the watermarks were captured before runPlan took its own (fresh,
// per-scan) snapshot, so a write committing in between made the query store
// too-new rows under stale watermarks — and return rows newer than the
// snapshot its own cache lookup was keyed on. Post-fix, one snapshot pinned
// before the lookup drives the watermarks, every scan, and the Fill.
func TestResultCacheSnapshotPinned(t *testing.T) {
	srv, s := servingWarehouse(t)
	writer := srv.NewSession()

	fired := false
	s.testHookAfterLookup = func() {
		if fired {
			return
		}
		fired = true
		mustExec(t, writer, `INSERT INTO t VALUES (100)`)
	}
	res := mustExec(t, s, `SELECT sum(v) FROM t`)
	if !fired {
		t.Fatal("hook did not run: query did not reach the miss-fill path")
	}
	if got := res.Rows[0][0].I; got != 6 {
		t.Fatalf("query leaked rows newer than its snapshot: sum = %d, want 6", got)
	}
	s.testHookAfterLookup = nil

	// A reader at the post-write snapshot must see the new row, not the
	// cached pre-write result.
	res = mustExec(t, srv.NewSession(), `SELECT sum(v) FROM t`)
	if got := res.Rows[0][0].I; got != 106 {
		t.Fatalf("post-write reader got stale rows: sum = %d, want 106", got)
	}
}

// TestNormalizedAdmissionDigest is the regression test for WM history
// fragmentation: admission used the literal-bearing plan digest, so every
// literal variant of a query shape re-learned its peak-memory history from
// scratch. The serving path keys admission on the normalized digest.
func TestNormalizedAdmissionDigest(t *testing.T) {
	_, s := servingWarehouse(t)
	mustExec(t, s, `SELECT count(*) FROM t WHERE v > 1`)
	d1 := s.LastQueryDigest
	mustExec(t, s, `SELECT count(*) FROM t WHERE v > 2`)
	d2 := s.LastQueryDigest
	if d1 != d2 {
		t.Fatalf("literal variants fragment admission history:\n%s\n%s", d1, d2)
	}
	if !strings.Contains(d1, "?0") {
		t.Fatalf("admission digest is not normalized: %s", d1)
	}
	// A different shape must not share history.
	mustExec(t, s, `SELECT count(*) FROM t WHERE v < 2`)
	if s.LastQueryDigest == d1 {
		t.Fatal("different shapes must have distinct digests")
	}
}

// TestPlanCacheSharedAcrossSessions: the template compiled by one session's
// ad-hoc query serves another session's PREPARE/EXECUTE of the same shape.
func TestPlanCacheSharedAcrossSessions(t *testing.T) {
	srv, s := servingWarehouse(t)
	mustExec(t, s, `SELECT v FROM t WHERE v = 2 ORDER BY v`)

	s2 := srv.NewSession()
	mustExec(t, s2, `PREPARE q AS SELECT v FROM t WHERE v = 1 ORDER BY v`)
	res := mustExec(t, s2, `EXECUTE q (3)`)
	if !s2.LastPlanCacheHit {
		t.Fatal("EXECUTE did not reuse the template compiled by the other session")
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("EXECUTE q (3) = %v, want one row [3]", res.Rows)
	}
}

// TestPlanCacheSchemaInvalidation: catalog changes flip the schema version
// component of the plan-cache key, forcing a recompile.
func TestPlanCacheSchemaInvalidation(t *testing.T) {
	_, s := servingWarehouse(t)
	mustExec(t, s, `SELECT count(*) FROM t`)
	mustExec(t, s, `SELECT count(*) FROM t`)
	if !s.LastPlanCacheHit {
		t.Fatal("repeat should hit the plan cache")
	}
	mustExec(t, s, `CREATE TABLE other (x BIGINT)`)
	mustExec(t, s, `SELECT count(*) FROM t`)
	if s.LastPlanCacheHit {
		t.Fatal("DDL must invalidate cached plans")
	}
	// Inserts (stats merges) must NOT invalidate: the hot path stays hot
	// under write traffic.
	mustExec(t, s, `SELECT count(*) FROM t`)
	if !s.LastPlanCacheHit {
		t.Fatal("setup: should hit again")
	}
	mustExec(t, s, `INSERT INTO t VALUES (4)`)
	res := mustExec(t, s, `SELECT count(*) FROM t`)
	if !s.LastPlanCacheHit {
		t.Fatal("insert must not invalidate cached plans")
	}
	if res.Rows[0][0].I != 4 {
		t.Fatalf("cached plan served stale data: %v", res.Rows)
	}
}

// TestPreparedStatementLifecycle covers EXECUTE argument validation and
// DEALLOCATE.
func TestPreparedStatementLifecycle(t *testing.T) {
	_, s := servingWarehouse(t)
	mustExec(t, s, `PREPARE q AS SELECT v FROM t WHERE v = 1`)
	if _, err := s.Execute(`EXECUTE q`); err == nil {
		t.Fatal("wrong arity should error")
	}
	if _, err := s.Execute(`EXECUTE q (v)`); err == nil {
		t.Fatal("non-literal argument should error")
	}
	res := mustExec(t, s, `EXECUTE q (-2 )`)
	if len(res.Rows) != 0 {
		t.Fatalf("EXECUTE q (-2) = %v, want empty", res.Rows)
	}
	mustExec(t, s, `DEALLOCATE PREPARE q`)
	if _, err := s.Execute(`EXECUTE q (1)`); err == nil {
		t.Fatal("EXECUTE after DEALLOCATE should error")
	}
	if _, err := s.Execute(`EXECUTE nosuch (1)`); err == nil {
		t.Fatal("EXECUTE of unknown name should error")
	}
}

// TestPlanCacheOffFallsBack: disabling the plan cache (or the 1.2 profile)
// uses the per-query pipeline and still answers correctly.
func TestPlanCacheOffFallsBack(t *testing.T) {
	_, s := servingWarehouse(t)
	s.SetConf("hive.query.plan.cache.enabled", "false")
	res := mustExec(t, s, `SELECT sum(v) FROM t`)
	if s.LastPlanCacheHit || res.Rows[0][0].I != 6 {
		t.Fatalf("plan-cache-off path: hit=%v rows=%v", s.LastPlanCacheHit, res.Rows)
	}
	// EXECUTE still works without the cache: the template compiles per run.
	mustExec(t, s, `PREPARE q AS SELECT sum(v) FROM t WHERE v < 10`)
	res = mustExec(t, s, `EXECUTE q (3)`)
	if res.Rows[0][0].I != 3 {
		t.Fatalf("EXECUTE with plan cache off = %v, want 3", res.Rows)
	}
}
