package dag

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/types"
)

// encodeRows serializes rows for a shuffle/spill file: per datum a kind
// byte (0xFF marks NULL), then a fixed or length-prefixed payload.
func encodeRows(rows [][]types.Datum) []byte {
	var out []byte
	var scratch [binary.MaxVarintLen64]byte
	putVar := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:n]...)
	}
	putVar(uint64(len(rows)))
	for _, row := range rows {
		putVar(uint64(len(row)))
		for _, d := range row {
			if d.Null {
				out = append(out, 0xFF, byte(d.K))
				continue
			}
			out = append(out, byte(d.K))
			switch d.K {
			case types.Float64:
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(d.F))
				out = append(out, buf[:]...)
			case types.String:
				putVar(uint64(len(d.S)))
				out = append(out, d.S...)
			case types.Decimal:
				putVar(uint64(zigzag(d.I)))
				putVar(uint64(d.DecimalScale()))
			default:
				putVar(zigzag(d.I))
			}
		}
	}
	return out
}

func decodeRows(data []byte, _ []types.T) ([][]types.Datum, error) {
	pos := 0
	getVar := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("dag: corrupt spill at %d", pos)
		}
		pos += n
		return v, nil
	}
	nRows, err := getVar()
	if err != nil {
		return nil, err
	}
	rows := make([][]types.Datum, 0, nRows)
	for r := uint64(0); r < nRows; r++ {
		nCols, err := getVar()
		if err != nil {
			return nil, err
		}
		row := make([]types.Datum, nCols)
		for c := range row {
			if pos >= len(data) {
				return nil, fmt.Errorf("dag: truncated spill")
			}
			k := data[pos]
			pos++
			if k == 0xFF {
				if pos >= len(data) {
					return nil, fmt.Errorf("dag: truncated spill")
				}
				row[c] = types.NullOf(types.Kind(data[pos]))
				pos++
				continue
			}
			kind := types.Kind(k)
			switch kind {
			case types.Float64:
				if pos+8 > len(data) {
					return nil, fmt.Errorf("dag: truncated double")
				}
				bits := binary.LittleEndian.Uint64(data[pos:])
				pos += 8
				row[c] = types.NewDouble(math.Float64frombits(bits))
			case types.String:
				l, err := getVar()
				if err != nil {
					return nil, err
				}
				if pos+int(l) > len(data) {
					return nil, fmt.Errorf("dag: truncated string")
				}
				row[c] = types.NewString(string(data[pos : pos+int(l)]))
				pos += int(l)
			case types.Decimal:
				u, err := getVar()
				if err != nil {
					return nil, err
				}
				sc, err := getVar()
				if err != nil {
					return nil, err
				}
				row[c] = types.NewDecimal(unzigzag(u), int(sc))
			default:
				u, err := getVar()
				if err != nil {
					return nil, err
				}
				row[c] = types.Datum{K: kind, I: unzigzag(u)}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
