// Package dag models the execution runtimes Hive has used (paper §2, §5):
//
//   - MR mode reproduces MapReduce's defining costs: every pipeline breaker
//     (shuffle boundary) materializes its input to the distributed file
//     system and reads it back, and every stage pays container start-up.
//     This is the "Hive v1.2 on MapReduce-shaped plans" baseline of §7.1.
//   - Container mode is Tez: stages pipeline in memory, but each vertex
//     still pays YARN container allocation at start-up.
//   - LLAP mode is Tez + LLAP: fragments borrow persistent executors (no
//     start-up cost) and scans read through the LLAP cache.
package dag

import (
	"fmt"
	"time"

	"repro/internal/dfs"
	"repro/internal/exec"
	"repro/internal/llap"
	"repro/internal/spill"
	"repro/internal/types"
	"repro/internal/vector"
)

// Mode selects the execution runtime.
type Mode int

// Runtime modes.
const (
	ModeMR Mode = iota
	ModeContainer
	ModeLLAP
)

func (m Mode) String() string {
	return [...]string{"mr", "container", "llap"}[m]
}

// DAG summarizes the task graph of a physical plan: one vertex per scan
// (map work) and one per pipeline breaker (reduce work), edges following
// data flow, mirroring Tez's vertex/edge model.
type DAG struct {
	Vertices int
	Breakers int // pipeline breakers = shuffle boundaries
}

// Analyze derives the DAG shape of an operator tree.
func Analyze(op exec.Operator) DAG {
	d := DAG{}
	var walk func(o exec.Operator)
	walk = func(o exec.Operator) {
		switch x := o.(type) {
		case *exec.ScanOp:
			d.Vertices++
		case *exec.HashJoinOp:
			d.Vertices++
			d.Breakers++
			walk(x.Left)
			walk(x.Right)
			return
		case *exec.HashAggOp:
			d.Vertices++
			d.Breakers++
			walk(x.Input)
			return
		case *exec.SortOp:
			d.Vertices++
			d.Breakers++
			walk(x.Input)
			return
		case *exec.TopNOp:
			d.Vertices++
			d.Breakers++
			walk(x.Input)
			return
		case *exec.WindowOp:
			d.Vertices++
			d.Breakers++
			walk(x.Input)
			return
		case *exec.SetOpOp:
			d.Breakers++
			walk(x.Left)
			walk(x.Right)
			return
		case *exec.FilterOp:
			walk(x.Input)
			return
		case *exec.ProjectOp:
			walk(x.Input)
			return
		case *exec.LimitOp:
			walk(x.Input)
			return
		case *exec.UnionAllOp:
			for _, in := range x.Inputs {
				walk(in)
			}
			return
		case *exec.SpoolOp:
			walk(x.Input)
			return
		}
	}
	walk(op)
	if d.Vertices == 0 {
		d.Vertices = 1
	}
	return d
}

// Runner executes an operator tree under a runtime mode, charging the
// mode's characteristic costs.
type Runner struct {
	Mode Mode
	// ContainerLaunch is the simulated YARN container allocation cost
	// charged per DAG vertex in MR and Container modes (paper §5: LLAP
	// "avoids YARN containers allocation overhead at start-up").
	ContainerLaunch time.Duration
	// FS receives MR-mode intermediate materializations.
	FS *dfs.FS
	// ScratchDir is the DFS directory for MR spills.
	ScratchDir string
	// Daemons, in LLAP mode, is the persistent executor pool.
	Daemons *llap.Daemons
	// DOP is the intra-query degree of parallelism (hive.parallelism).
	// In LLAP mode, fragments fan out across executor slots morsel-style;
	// MR and container modes stay serial, reproducing the paper's
	// single-threaded-per-task baselines.
	DOP int
	// Ctx is the execution context parallel operators borrow executor
	// slots through.
	Ctx *exec.Context
	// TargetStripes bounds the stripes per morsel when LLAP-mode plans
	// refine directory splits into stripe-granular scan ranges
	// (hive.split.target.stripes; paper §5.1). 0 means one stripe per
	// morsel.
	TargetStripes int
	// SerialSort keeps Sort/TopN on the coordinator even in LLAP-mode
	// parallel plans (hive.sort.parallel=false). The zero value leaves
	// the parallel placement on — per-worker sorted runs streamed through
	// an order-preserving loser-tree merge — matching exec.NewContext, so
	// callers that never heard of the knob get the default behavior.
	SerialSort bool
	// SerialSpool keeps spooled (shared-work) subtrees out of worker
	// pipelines (hive.spool.parallel=false). Zero value = spools may feed
	// parallel regions through a shared consumption cursor, matching
	// exec.NewContext.
	SerialSpool bool
	// NoProps disables property-driven planning
	// (hive.planner.properties=false): no enforcer elision, no
	// partition-wise placements — the enforcer-everywhere plans, kept for
	// byte-identity testing. Zero value = properties on, matching
	// exec.NewContext.
	NoProps bool

	spillSeq     int
	parallelized bool
}

// Prepare instruments the operator tree for the runner's mode and returns
// the tree to execute plus its DAG shape. The execution context inherits
// the runner's DFS and scratch directory when the caller has not set them,
// so memory-governed operator spills (exec mem.go) work in every mode —
// MR, container and LLAP plans all block on sorts, aggregates and join
// builds.
func (r *Runner) Prepare(op exec.Operator) (exec.Operator, DAG) {
	if r.Ctx != nil {
		if r.Ctx.FS == nil {
			r.Ctx.FS = r.FS
		}
		if r.Ctx.ScratchDir == "" {
			r.Ctx.ScratchDir = r.ScratchDir
		}
	}
	if r.Ctx != nil {
		r.Ctx.PropsPlanning = !r.NoProps
	}
	if !r.NoProps {
		// Property pass before anything mode-specific: elided enforcers
		// never reach the DAG shape, the spill instrumentation or the
		// parallel planner.
		op = exec.ApplyProperties(op)
	}
	d := Analyze(op)
	if r.Mode == ModeMR && r.FS != nil {
		op = r.insertSpills(op)
	}
	if r.Mode == ModeLLAP && r.DOP > 1 {
		// Stripe-granular split enumeration happens inside Parallelize,
		// once, on the coordinator: every worker then steals (file, stripe
		// range) morsels and reads them through the shared per-directory
		// snapshot handle carried in the splits.
		if r.Ctx != nil {
			r.Ctx.TargetStripes = r.TargetStripes
			r.Ctx.SortParallel = !r.SerialSort
			r.Ctx.SpoolParallel = !r.SerialSpool
		}
		op, r.parallelized = exec.Parallelize(op, r.Ctx, r.DOP)
	}
	return op, d
}

// Run executes the prepared operator tree, charging start-up costs, and
// returns all result rows.
func (r *Runner) Run(op exec.Operator, d DAG) ([][]types.Datum, error) {
	switch r.Mode {
	case ModeMR:
		// Each stage (vertex) pays container allocation, and stages of an
		// MR job run serially per wave.
		time.Sleep(time.Duration(d.Vertices) * r.ContainerLaunch)
	case ModeContainer:
		// Tez reuses a container per vertex but still allocates at start.
		time.Sleep(time.Duration(d.Vertices) * r.ContainerLaunch / 2)
	case ModeLLAP:
		if r.Daemons != nil {
			// When Prepare actually parallelized the plan, the fragments
			// run as one coordinated pipeline: admission takes a single
			// executor and the parallel operators borrow more as they run
			// (TryAcquire), so a wide DAG cannot starve its own workers.
			// Plans that stayed serial keep the one-executor-per-fragment
			// accounting.
			n := d.Vertices
			if r.parallelized {
				n = 1
			}
			release := r.Daemons.Acquire(n)
			defer release()
		}
	}
	// Drain with cancellation: the exec context's GoCtx (session close,
	// hive.query.timeout) stops the pipeline between batches.
	rows, err := exec.DrainContext(r.Ctx, op)
	if r.Ctx != nil {
		// Shared spools outlive any single consumer's Close (a join build
		// side closes before the probe replays); reclaim them now that the
		// whole tree has closed.
		r.Ctx.CloseSpools()
	}
	return rows, err
}

// insertSpills wraps every pipeline breaker's inputs with a DFS
// materialization, reproducing MapReduce's stage-by-stage execution.
func (r *Runner) insertSpills(op exec.Operator) exec.Operator {
	switch x := op.(type) {
	case *exec.HashJoinOp:
		x.Left = r.spill(r.insertSpills(x.Left))
		x.Right = r.spill(r.insertSpills(x.Right))
	case *exec.HashAggOp:
		x.Input = r.spill(r.insertSpills(x.Input))
	case *exec.SortOp:
		x.Input = r.spill(r.insertSpills(x.Input))
	case *exec.TopNOp:
		x.Input = r.spill(r.insertSpills(x.Input))
	case *exec.WindowOp:
		x.Input = r.spill(r.insertSpills(x.Input))
	case *exec.SetOpOp:
		x.Left = r.spill(r.insertSpills(x.Left))
		x.Right = r.spill(r.insertSpills(x.Right))
	case *exec.FilterOp:
		x.Input = r.insertSpills(x.Input)
	case *exec.ProjectOp:
		x.Input = r.insertSpills(x.Input)
	case *exec.LimitOp:
		x.Input = r.insertSpills(x.Input)
	case *exec.UnionAllOp:
		for i, in := range x.Inputs {
			x.Inputs[i] = r.insertSpills(in)
		}
	case *exec.SpoolOp:
		x.Input = r.insertSpills(x.Input)
	}
	return op
}

func (r *Runner) spill(in exec.Operator) exec.Operator {
	r.spillSeq++
	return &SpillExchangeOp{
		Input: in,
		FS:    r.FS,
		Path:  fmt.Sprintf("%s/spill_%05d", r.ScratchDir, r.spillSeq),
	}
}

// SpillExchangeOp materializes its input to the distributed file system and
// reads it back before emitting — the MapReduce inter-job handoff.
type SpillExchangeOp struct {
	Input exec.Operator
	FS    *dfs.FS
	Path  string

	rows    [][]types.Datum
	done    bool
	emitted int
	gen     int
}

// Types implements exec.Operator.
func (s *SpillExchangeOp) Types() []types.T { return s.Input.Types() }

// Open implements exec.Operator.
func (s *SpillExchangeOp) Open() error {
	s.rows, s.done, s.emitted = nil, false, 0
	return s.Input.Open()
}

func (s *SpillExchangeOp) materialize() error {
	var rows [][]types.Datum
	for {
		b, err := s.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			rows = append(rows, b.Row(i))
		}
	}
	// Serialize through the DFS: the write and read-back charge the
	// simulated storage costs that dominate MapReduce stage boundaries.
	data := spill.EncodeRows(rows)
	s.gen++
	path := fmt.Sprintf("%s_g%d", s.Path, s.gen)
	if err := s.FS.WriteFile(path, data); err != nil {
		return err
	}
	back, err := s.FS.ReadFile(path)
	if err != nil {
		return err
	}
	s.rows, err = spill.DecodeRows(back)
	if err != nil {
		return err
	}
	_ = rows
	return nil
}

// Next implements exec.Operator.
func (s *SpillExchangeOp) Next() (*vector.Batch, error) {
	if !s.done {
		if err := s.materialize(); err != nil {
			return nil, err
		}
		s.done = true
	}
	if s.emitted >= len(s.rows) {
		return nil, nil
	}
	n := len(s.rows) - s.emitted
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	b := vector.NewBatch(s.Types(), n)
	for i := 0; i < n; i++ {
		for c, d := range s.rows[s.emitted+i] {
			b.Cols[c].Set(i, d)
		}
	}
	b.N = n
	s.emitted += n
	return b, nil
}

// Close implements exec.Operator.
func (s *SpillExchangeOp) Close() error {
	s.rows = nil
	return s.Input.Close()
}
