package dag

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/spill"
	"repro/internal/types"
)

func TestCodecRoundTrip(t *testing.T) {
	rows := [][]types.Datum{
		{types.NewBigint(-7), types.NewString("hello"), types.NewDouble(2.5)},
		{types.NullOf(types.Int64), types.NewString(""), types.NewDecimal(-1234, 2)},
		{types.NewBool(true), types.NewDate(17000), types.NewTimestamp(1234567)},
	}
	data := spill.EncodeRows(rows)
	back, err := spill.DecodeRows(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("row count: %d", len(back))
	}
	for i := range rows {
		for j := range rows[i] {
			a, b := rows[i][j], back[i][j]
			if a.Null != b.Null || (!a.Null && a.Compare(b) != 0) {
				t.Errorf("row %d col %d: %v vs %v", i, j, a, b)
			}
		}
	}
	if _, err := spill.DecodeRows(data[:3]); err == nil {
		t.Error("truncated spill should fail")
	}
}

func valuesOp(n int) *exec.ValuesOp {
	rows := make([][]types.Datum, n)
	for i := range rows {
		rows[i] = []types.Datum{types.NewBigint(int64(i))}
	}
	return &exec.ValuesOp{Rows: rows, Ts: []types.T{types.TBigint}}
}

func TestAnalyzeCountsVerticesAndBreakers(t *testing.T) {
	agg := &exec.HashAggOp{
		Input:      valuesOp(10),
		GroupExprs: nil,
		Aggs:       []exec.CompiledAgg{{Fn: "count", T: types.TBigint}},
		Out:        []types.T{types.TBigint},
	}
	d := Analyze(agg)
	if d.Breakers != 1 {
		t.Errorf("breakers: %+v", d)
	}
}

func TestMRModeSpillsAndPreservesResults(t *testing.T) {
	fs := dfs.New()
	agg := &exec.HashAggOp{
		Input: valuesOp(100),
		Aggs:  []exec.CompiledAgg{{Fn: "count", T: types.TBigint}},
		Out:   []types.T{types.TBigint},
	}
	r := &Runner{Mode: ModeMR, FS: fs, ScratchDir: "/scratch", ContainerLaunch: time.Millisecond}
	op, shape := r.Prepare(agg)
	rows, err := r.Run(op, shape)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].I != 100 {
		t.Fatalf("result: %v", rows)
	}
	// The spill must have touched the DFS.
	if fs.IOStats().WriteOps == 0 {
		t.Error("MR mode did not materialize to the DFS")
	}
	spills, _ := fs.ListRecursive("/scratch")
	if len(spills) == 0 {
		t.Error("no spill files under the scratch dir")
	}
}

func TestContainerVsMRSpillCost(t *testing.T) {
	fs := dfs.New()
	mk := func() exec.Operator {
		return &exec.SortOp{
			Input: valuesOp(2000),
			Keys:  []plan.SortKey{{Col: 0, Desc: true}},
		}
	}
	mr := &Runner{Mode: ModeMR, FS: fs, ScratchDir: "/s1"}
	opMR, shapeMR := mr.Prepare(mk())
	rowsMR, err := mr.Run(opMR, shapeMR)
	if err != nil {
		t.Fatal(err)
	}
	tez := &Runner{Mode: ModeContainer, FS: fs, ScratchDir: "/s2"}
	opTez, shapeTez := tez.Prepare(mk())
	rowsTez, err := tez.Run(opTez, shapeTez)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowsMR[0], rowsTez[0]) || len(rowsMR) != len(rowsTez) {
		t.Error("modes disagree on results")
	}
	// Only MR materializes.
	if files, _ := fs.ListRecursive("/s2"); len(files) != 0 {
		t.Error("container mode should not spill")
	}
}
