package hll

import (
	"math"
	"testing"
)

// testHash is a fixed, process-independent 64-bit mixer (splitmix64).
// Production callers hash datums with types.Datum.Hash, whose maphash seed
// is randomized per process; using it here made estimate-accuracy
// assertions flake across runs (the sketch's error depends on the hash
// stream). The seed-randomized variant still runs under -tags stress.
func testHash(x int64) uint64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func estimateOf(n int, offset int64) int64 {
	s := New()
	for i := 0; i < n; i++ {
		s.Add(testHash(offset + int64(i)))
	}
	return s.Estimate()
}

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 10000, 200000} {
		got := estimateOf(n, 0)
		errFrac := math.Abs(float64(got)-float64(n)) / float64(n)
		if errFrac > 0.05 {
			t.Errorf("n=%d: estimate %d off by %.1f%%", n, got, errFrac*100)
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := New()
	for round := 0; round < 10; round++ {
		for i := 0; i < 500; i++ {
			s.Add(testHash(int64(i)))
		}
	}
	got := s.Estimate()
	if got < 450 || got > 550 {
		t.Errorf("500 distinct over 10 rounds: estimate %d", got)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, u := New(), New(), New()
	for i := 0; i < 3000; i++ {
		h := testHash(int64(i))
		a.Add(h)
		u.Add(h)
	}
	for i := 2000; i < 6000; i++ { // overlaps [2000,3000)
		h := testHash(int64(i))
		b.Add(h)
		u.Add(h)
	}
	a.Merge(b)
	if a.Estimate() != u.Estimate() {
		t.Errorf("merge %d != union %d (merge must be lossless)", a.Estimate(), u.Estimate())
	}
	n := a.Estimate()
	if n < 5600 || n > 6400 {
		t.Errorf("union of 6000 distinct: estimate %d", n)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 1234; i++ {
		s.Add(testHash(int64(i * 7)))
	}
	back, err := FromBytes(s.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != s.Estimate() {
		t.Errorf("round trip changed estimate: %d vs %d", back.Estimate(), s.Estimate())
	}
	if _, err := FromBytes([]byte{1, 2}); err == nil {
		t.Error("truncated sketch should fail")
	}
}

func TestEmptySketch(t *testing.T) {
	if got := New().Estimate(); got != 0 {
		t.Errorf("empty sketch estimate = %d", got)
	}
}
