package hll

import (
	"math"
	"testing"

	"repro/internal/types"
)

func estimateOf(n int, offset int64) int64 {
	s := New()
	for i := 0; i < n; i++ {
		s.Add(types.NewBigint(offset + int64(i)).Hash())
	}
	return s.Estimate()
}

func TestEstimateAccuracy(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 10000, 200000} {
		got := estimateOf(n, 0)
		errFrac := math.Abs(float64(got)-float64(n)) / float64(n)
		if errFrac > 0.05 {
			t.Errorf("n=%d: estimate %d off by %.1f%%", n, got, errFrac*100)
		}
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	s := New()
	for round := 0; round < 10; round++ {
		for i := 0; i < 500; i++ {
			s.Add(types.NewBigint(int64(i)).Hash())
		}
	}
	got := s.Estimate()
	if got < 450 || got > 550 {
		t.Errorf("500 distinct over 10 rounds: estimate %d", got)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b, u := New(), New(), New()
	for i := 0; i < 3000; i++ {
		h := types.NewBigint(int64(i)).Hash()
		a.Add(h)
		u.Add(h)
	}
	for i := 2000; i < 6000; i++ { // overlaps [2000,3000)
		h := types.NewBigint(int64(i)).Hash()
		b.Add(h)
		u.Add(h)
	}
	a.Merge(b)
	if a.Estimate() != u.Estimate() {
		t.Errorf("merge %d != union %d (merge must be lossless)", a.Estimate(), u.Estimate())
	}
	n := a.Estimate()
	if n < 5600 || n > 6400 {
		t.Errorf("union of 6000 distinct: estimate %d", n)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 1234; i++ {
		s.Add(types.NewBigint(int64(i * 7)).Hash())
	}
	back, err := FromBytes(s.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != s.Estimate() {
		t.Errorf("round trip changed estimate: %d vs %d", back.Estimate(), s.Estimate())
	}
	if _, err := FromBytes([]byte{1, 2}); err == nil {
		t.Error("truncated sketch should fail")
	}
}

func TestEmptySketch(t *testing.T) {
	if got := New().Estimate(); got != 0 {
		t.Errorf("empty sketch estimate = %d", got)
	}
}
