// Package hll implements the HyperLogLog++ cardinality sketch that the Hive
// Metastore uses for number-of-distinct-values column statistics (paper
// §4.1). Sketches merge without losing approximation accuracy, which is what
// makes HMS statistics additive across inserts and partitions.
package hll

import (
	"encoding/binary"
	"fmt"
	"math"
)

const (
	precision = 12 // 2^12 = 4096 registers, ~1.6% standard error
	m         = 1 << precision
)

// Sketch is a mergeable HyperLogLog++ cardinality estimator.
// The zero value is not usable; call New.
type Sketch struct {
	regs []uint8
}

// New returns an empty sketch.
func New() *Sketch { return &Sketch{regs: make([]uint8, m)} }

// Add records one hashed observation. Callers hash values themselves
// (types.Datum.Hash is a suitable source).
func (s *Sketch) Add(hash uint64) {
	idx := hash >> (64 - precision)
	rest := hash<<precision | 1<<(precision-1) // guarantee termination
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > s.regs[idx] {
		s.regs[idx] = rank
	}
}

// Merge folds other into s (register-wise max). Merging is lossless: the
// merged sketch equals the sketch of the union of the inputs.
func (s *Sketch) Merge(other *Sketch) {
	for i, r := range other.regs {
		if r > s.regs[i] {
			s.regs[i] = r
		}
	}
}

// Estimate returns the approximate number of distinct values added.
func (s *Sketch) Estimate() int64 {
	var sum float64
	zeros := 0
	for _, r := range s.regs {
		sum += 1.0 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/float64(m))
	raw := alpha * m * m / sum
	// Small-range correction: linear counting, the HLL++ low-cardinality path.
	if raw <= 2.5*m && zeros > 0 {
		return int64(float64(m) * math.Log(float64(m)/float64(zeros)))
	}
	return int64(raw)
}

// Bytes serializes the sketch for metastore persistence.
func (s *Sketch) Bytes() []byte {
	out := make([]byte, 4+m)
	binary.LittleEndian.PutUint32(out, precision)
	copy(out[4:], s.regs)
	return out
}

// FromBytes restores a sketch serialized with Bytes.
func FromBytes(b []byte) (*Sketch, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("hll: truncated sketch")
	}
	p := binary.LittleEndian.Uint32(b)
	if p != precision || len(b) != 4+m {
		return nil, fmt.Errorf("hll: incompatible sketch (p=%d len=%d)", p, len(b))
	}
	s := New()
	copy(s.regs, b[4:])
	return s, nil
}
