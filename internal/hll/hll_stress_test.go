//go:build stress

package hll

import (
	"math"
	"testing"

	"repro/internal/types"
)

// TestEstimateAccuracyRandomSeed is the seed-randomized twin of
// TestEstimateAccuracy: it hashes with types.Datum.Hash, whose maphash
// seed differs per process, so repeated `go test -tags stress -count N`
// runs exercise fresh hash streams. A slightly wider error budget absorbs
// unlucky seeds while still catching real estimator regressions.
func TestEstimateAccuracyRandomSeed(t *testing.T) {
	for _, n := range []int{1000, 10000, 200000} {
		s := New()
		for i := 0; i < n; i++ {
			s.Add(types.NewBigint(int64(i)).Hash())
		}
		got := s.Estimate()
		errFrac := math.Abs(float64(got)-float64(n)) / float64(n)
		if errFrac > 0.08 {
			t.Errorf("n=%d: estimate %d off by %.1f%%", n, got, errFrac*100)
		}
	}
}
