package orc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dfs"
	"repro/internal/types"
	"repro/internal/vector"
)

func TestRLERoundTrip(t *testing.T) {
	cases := [][]int64{
		{},
		{1},
		{5, 5, 5, 5, 5},
		{1, 2, 3, 4, 5, 6},
		{9, 7, 5, 3, 1},
		{1, 100, -3, 7, 7, 7, 7, 2, 1},
		{0, 0, 1, 0, 0, 0, 42},
	}
	for _, vals := range cases {
		enc := encodeRLE(vals)
		dec, err := decodeRLE(enc, len(vals))
		if err != nil {
			t.Fatalf("%v: %v", vals, err)
		}
		if len(vals) > 0 && !reflect.DeepEqual(dec, vals) {
			t.Errorf("RLE roundtrip %v -> %v", vals, dec)
		}
	}
}

func TestRLEQuick(t *testing.T) {
	f := func(vals []int64) bool {
		enc := encodeRLE(vals)
		dec, err := decodeRLE(enc, len(vals))
		if err != nil {
			return false
		}
		if len(vals) == 0 {
			return len(dec) == 0
		}
		return reflect.DeepEqual(dec, vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRLECompressesRuns(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i) // pure arithmetic sequence
	}
	enc := encodeRLE(vals)
	if len(enc) > 64 {
		t.Errorf("arithmetic run encoded to %d bytes, want tiny", len(enc))
	}
}

func TestStringDictSelection(t *testing.T) {
	lowCard := make([]string, 1000)
	for i := range lowCard {
		lowCard[i] = []string{"a", "b", "c"}[i%3]
	}
	if enc := encodeStringsDict(lowCard); enc == nil {
		t.Error("low-cardinality column should use dictionary")
	} else {
		dec, err := decodeStringsDict(enc, len(lowCard))
		if err != nil || !reflect.DeepEqual(dec, lowCard) {
			t.Errorf("dict roundtrip failed: %v", err)
		}
	}
	highCard := make([]string, 100)
	for i := range highCard {
		highCard[i] = string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i%26))
	}
	// Mostly unique: dictionary should refuse.
	uniq := map[string]bool{}
	for _, s := range highCard {
		uniq[s] = true
	}
	if len(uniq)*2 > len(highCard) {
		if enc := encodeStringsDict(highCard); enc != nil {
			t.Error("high-cardinality column should not use dictionary")
		}
	}
}

func writeTestFile(t *testing.T, fs *dfs.FS, path string, n int, opts WriterOptions) []Column {
	t.Helper()
	schema := []Column{
		{Name: "id", Type: types.TBigint},
		{Name: "price", Type: types.TDouble},
		{Name: "name", Type: types.TString},
		{Name: "qty", Type: types.TInt},
	}
	w := NewWriter(fs, path, schema, opts)
	for i := 0; i < n; i++ {
		row := []types.Datum{
			types.NewBigint(int64(i)),
			types.NewDouble(float64(i) * 1.5),
			types.NewString([]string{"alpha", "beta", "gamma"}[i%3]),
			types.NewInt(int32(i % 100)),
		}
		if i%7 == 0 {
			row[3] = types.NullOf(types.Int32)
		}
		if err := w.WriteRow(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return schema
}

func TestFileRoundTrip(t *testing.T) {
	fs := dfs.New()
	const n = 2500
	writeTestFile(t, fs, "/t/f0", n, WriterOptions{StripeRows: 1000})
	r, err := NewReader(fs, "/t/f0")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows() != n || r.NumStripes() != 3 {
		t.Fatalf("rows=%d stripes=%d", r.Rows(), r.NumStripes())
	}
	total := 0
	for s := 0; s < r.NumStripes(); s++ {
		b, err := r.ReadStripe(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			g := total + i
			if b.Cols[0].I64[i] != int64(g) {
				t.Fatalf("stripe %d row %d id=%d want %d", s, i, b.Cols[0].I64[i], g)
			}
			if b.Cols[1].F64[i] != float64(g)*1.5 {
				t.Fatalf("price mismatch at %d", g)
			}
			if b.Cols[2].Str[i] != []string{"alpha", "beta", "gamma"}[g%3] {
				t.Fatalf("name mismatch at %d", g)
			}
			if g%7 == 0 {
				if !b.Cols[3].IsNull(i) {
					t.Fatalf("row %d should be NULL", g)
				}
			} else if b.Cols[3].IsNull(i) || b.Cols[3].I64[i] != int64(g%100) {
				t.Fatalf("qty mismatch at %d", g)
			}
		}
		total += b.N
	}
	if total != n {
		t.Fatalf("read %d rows, want %d", total, n)
	}
}

func TestProjectionPushdownReadsLess(t *testing.T) {
	fs := dfs.New()
	writeTestFile(t, fs, "/t/f1", 5000, WriterOptions{StripeRows: 5000})
	r, err := NewReader(fs, "/t/f1")
	if err != nil {
		t.Fatal(err)
	}
	fs.ResetStats()
	if _, err := r.ReadStripe(0, nil); err != nil {
		t.Fatal(err)
	}
	allBytes := fs.IOStats().BytesRead
	fs.ResetStats()
	if _, err := r.ReadStripe(0, []int{0}); err != nil {
		t.Fatal(err)
	}
	oneBytes := fs.IOStats().BytesRead
	if oneBytes*2 >= allBytes {
		t.Errorf("projection did not reduce I/O: one=%d all=%d", oneBytes, allBytes)
	}
}

func TestStripeSkippingByMinMax(t *testing.T) {
	fs := dfs.New()
	writeTestFile(t, fs, "/t/f2", 3000, WriterOptions{StripeRows: 1000})
	r, err := NewReader(fs, "/t/f2")
	if err != nil {
		t.Fatal(err)
	}
	// id is 0..2999 in stripe-sized runs; id = 1500 only in stripe 1.
	sarg := &SearchArgument{Preds: []Predicate{{Col: 0, Op: PredEQ, Values: []types.Datum{types.NewBigint(1500)}}}}
	var matched []int
	for s := 0; s < r.NumStripes(); s++ {
		if r.StripeCanMatch(s, sarg) {
			matched = append(matched, s)
		}
	}
	if !reflect.DeepEqual(matched, []int{1}) {
		t.Errorf("matched stripes %v, want [1]", matched)
	}
	// Range predicate spanning stripes 1 and 2.
	sarg = &SearchArgument{Preds: []Predicate{{Col: 0, Op: PredGE, Values: []types.Datum{types.NewBigint(1999)}}}}
	matched = nil
	for s := 0; s < r.NumStripes(); s++ {
		if r.StripeCanMatch(s, sarg) {
			matched = append(matched, s)
		}
	}
	if !reflect.DeepEqual(matched, []int{1, 2}) {
		t.Errorf("GE matched %v, want [1 2]", matched)
	}
}

func TestBloomFilterSkipping(t *testing.T) {
	fs := dfs.New()
	schema := []Column{{Name: "k", Type: types.TBigint}}
	w := NewWriter(fs, "/t/bloom", schema, WriterOptions{
		StripeRows:   1000,
		BloomColumns: map[string]bool{"k": true},
	})
	// Only even keys present.
	for i := 0; i < 2000; i += 2 {
		w.WriteRow([]types.Datum{types.NewBigint(int64(i))})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(fs, "/t/bloom")
	if err != nil {
		t.Fatal(err)
	}
	// An odd key inside the min/max range: min/max cannot skip, bloom should.
	sarg := &SearchArgument{Preds: []Predicate{{Col: 0, Op: PredEQ, Values: []types.Datum{types.NewBigint(501)}}}}
	if r.StripeCanMatch(0, sarg) {
		t.Error("bloom filter failed to skip absent key (fp possible but unlikely)")
	}
	// A present key must never be skipped.
	sarg = &SearchArgument{Preds: []Predicate{{Col: 0, Op: PredEQ, Values: []types.Datum{types.NewBigint(500)}}}}
	if !r.StripeCanMatch(0, sarg) {
		t.Error("bloom filter wrongly skipped a present key")
	}
}

func TestAllNullColumn(t *testing.T) {
	fs := dfs.New()
	schema := []Column{{Name: "x", Type: types.TInt}}
	w := NewWriter(fs, "/t/nulls", schema, WriterOptions{})
	for i := 0; i < 10; i++ {
		w.WriteRow([]types.Datum{types.NullOf(types.Int32)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(fs, "/t/nulls")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.ReadStripe(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if !b.Cols[0].IsNull(i) {
			t.Fatal("expected all NULL")
		}
	}
	// Equality on an all-NULL stripe can always be skipped.
	sarg := &SearchArgument{Preds: []Predicate{{Col: 0, Op: PredEQ, Values: []types.Datum{types.NewInt(1)}}}}
	if r.StripeCanMatch(0, sarg) {
		t.Error("all-NULL stripe should be skippable for equality")
	}
	sarg = &SearchArgument{Preds: []Predicate{{Col: 0, Op: PredIsNull}}}
	if !r.StripeCanMatch(0, sarg) {
		t.Error("IS NULL must match all-NULL stripe")
	}
}

func TestBatchWrite(t *testing.T) {
	fs := dfs.New()
	b := vector.NewBatch([]types.T{types.TBigint, types.TString}, 100)
	for i := 0; i < 100; i++ {
		b.Cols[0].Set(i, types.NewBigint(int64(i)))
		b.Cols[1].Set(i, types.NewString("v"))
	}
	b.N = 100
	schema := []Column{{Name: "a", Type: types.TBigint}, {Name: "b", Type: types.TString}}
	w := NewWriter(fs, "/t/batch", schema, WriterOptions{StripeRows: 30})
	if err := w.WriteBatch(b); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(fs, "/t/batch")
	if r.Rows() != 100 || r.NumStripes() != 4 {
		t.Errorf("rows=%d stripes=%d, want 100/4", r.Rows(), r.NumStripes())
	}
}

func TestDecimalAndDateColumns(t *testing.T) {
	fs := dfs.New()
	schema := []Column{
		{Name: "amount", Type: types.TDecimal(7, 2)},
		{Name: "d", Type: types.TDate},
	}
	w := NewWriter(fs, "/t/dec", schema, WriterOptions{})
	w.WriteRow([]types.Datum{types.NewDecimal(1099, 2), types.NewDate(17000)})
	w.WriteRow([]types.Datum{types.NewDecimal(-50, 2), types.NewDate(17001)})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(fs, "/t/dec")
	b, err := r.ReadStripe(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Cols[0].Get(0).String(); got != "10.99" {
		t.Errorf("decimal readback = %s", got)
	}
	if got := b.Cols[1].Get(1).String(); got != "2016-07-19" {
		t.Errorf("date readback = %s", got)
	}
}

func TestCorruptFile(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("/junk", []byte("not an orc file at all"))
	if _, err := NewReader(fs, "/junk"); err == nil {
		t.Error("reading junk should fail")
	}
	if _, err := NewReader(fs, "/missing"); err == nil {
		t.Error("reading missing file should fail")
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	bf := newBloom(10000, 10)
	rng := rand.New(rand.NewSource(7))
	present := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		h := rng.Uint64()
		present[h] = true
		bf.add(h)
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		h := rng.Uint64()
		if present[h] {
			continue
		}
		if bf.mayContain(h) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Errorf("bloom fp rate %.3f too high", rate)
	}
	for h := range present {
		if !bf.mayContain(h) {
			t.Fatal("bloom must never have false negatives")
		}
	}
}
