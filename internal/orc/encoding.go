// Package orc implements the columnar file format used for warehouse
// storage, modeled on Apache ORC (paper §2, §5.1): data is written in
// stripes (row groups) of encoded column chunks with per-stripe min/max
// statistics and optional Bloom filters in the file footer, enabling
// projection pushdown and sargable-predicate stripe skipping.
//
// Layout:
//
//	[stripe 0][stripe 1]...[footer JSON][uint32 footer length]["GORC"]
//
// Column encodings: integers (and all I64-backed kinds) use run-length
// encoding with zig-zag varints; doubles are fixed-width little endian;
// strings use dictionary encoding when profitable, otherwise direct
// length-prefixed bytes. Each column chunk carries a presence bitmap when
// the column contains NULLs.
package orc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoding identifies how a column chunk's values are encoded.
type Encoding uint8

// Column chunk encodings.
const (
	EncodeRLE    Encoding = iota // zig-zag varint runs (integer kinds)
	EncodeDouble                 // fixed 8-byte little endian
	EncodeDirect                 // length-prefixed strings
	EncodeDict                   // dictionary + RLE indexes
)

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func putUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// encodeRLE encodes int64 values as a sequence of runs. Each run is either
// a repeat run (header = count<<1 | 1, then one zig-zag value and a zig-zag
// delta applied per repetition) or a literal run (header = count<<1, then
// count zig-zag values). Repeat runs capture both constant and arithmetic
// sequences, which covers RowIds, WriteIds and sorted keys well.
func encodeRLE(vals []int64) []byte {
	out := make([]byte, 0, len(vals))
	i := 0
	for i < len(vals) {
		// Find the longest arithmetic run starting at i.
		runLen := 1
		var delta int64
		if i+1 < len(vals) {
			delta = vals[i+1] - vals[i]
			runLen = 2
			for i+runLen < len(vals) && vals[i+runLen]-vals[i+runLen-1] == delta {
				runLen++
			}
		}
		if runLen >= 3 {
			out = putUvarint(out, uint64(runLen)<<1|1)
			out = putUvarint(out, zigzag(vals[i]))
			out = putUvarint(out, zigzag(delta))
			i += runLen
			continue
		}
		// Literal run: extend until the next arithmetic run of length >= 3.
		start := i
		i++
		for i < len(vals) {
			if i+2 < len(vals) && vals[i+1]-vals[i] == vals[i+2]-vals[i+1] {
				break
			}
			i++
		}
		n := i - start
		out = putUvarint(out, uint64(n)<<1)
		for j := start; j < start+n; j++ {
			out = putUvarint(out, zigzag(vals[j]))
		}
	}
	return out
}

// decodeRLE decodes n values encoded by encodeRLE.
func decodeRLE(data []byte, n int) ([]int64, error) {
	out := make([]int64, 0, n)
	pos := 0
	for len(out) < n {
		header, w := binary.Uvarint(data[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("orc: corrupt RLE header at %d", pos)
		}
		pos += w
		count := int(header >> 1)
		if header&1 == 1 {
			base, w := binary.Uvarint(data[pos:])
			if w <= 0 {
				return nil, fmt.Errorf("orc: corrupt RLE base at %d", pos)
			}
			pos += w
			deltaU, w := binary.Uvarint(data[pos:])
			if w <= 0 {
				return nil, fmt.Errorf("orc: corrupt RLE delta at %d", pos)
			}
			pos += w
			v := unzigzag(base)
			delta := unzigzag(deltaU)
			for j := 0; j < count; j++ {
				out = append(out, v)
				v += delta
			}
		} else {
			for j := 0; j < count; j++ {
				u, w := binary.Uvarint(data[pos:])
				if w <= 0 {
					return nil, fmt.Errorf("orc: corrupt RLE literal at %d", pos)
				}
				pos += w
				out = append(out, unzigzag(u))
			}
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("orc: RLE decoded %d values, want %d", len(out), n)
	}
	return out, nil
}

func encodeDoubles(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func decodeDoubles(data []byte, n int) ([]float64, error) {
	if len(data) < 8*n {
		return nil, fmt.Errorf("orc: double chunk too short: %d bytes for %d values", len(data), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

func encodeStringsDirect(vals []string) []byte {
	var out []byte
	for _, s := range vals {
		out = putUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return out
}

func decodeStringsDirect(data []byte, n int) ([]string, error) {
	out := make([]string, 0, n)
	pos := 0
	for len(out) < n {
		l, w := binary.Uvarint(data[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("orc: corrupt string length at %d", pos)
		}
		pos += w
		if pos+int(l) > len(data) {
			return nil, fmt.Errorf("orc: string overruns chunk at %d", pos)
		}
		out = append(out, string(data[pos:pos+int(l)]))
		pos += int(l)
	}
	return out, nil
}

// encodeStringsDict writes a dictionary (sorted unique values) followed by
// RLE-encoded indexes. Returns nil if a dictionary would not be profitable
// (more than half the values are distinct).
func encodeStringsDict(vals []string) []byte {
	uniq := make(map[string]int, len(vals)/4)
	order := []string{}
	for _, s := range vals {
		if _, ok := uniq[s]; !ok {
			uniq[s] = 0
			order = append(order, s)
			if len(order)*2 > len(vals) {
				return nil
			}
		}
	}
	// Assign ids in first-seen order (no sort needed for correctness).
	for i, s := range order {
		uniq[s] = i
	}
	var out []byte
	out = putUvarint(out, uint64(len(order)))
	for _, s := range order {
		out = putUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	idx := make([]int64, len(vals))
	for i, s := range vals {
		idx[i] = int64(uniq[s])
	}
	return append(out, encodeRLE(idx)...)
}

func decodeStringsDict(data []byte, n int) ([]string, error) {
	pos := 0
	dictN, w := binary.Uvarint(data[pos:])
	if w <= 0 {
		return nil, fmt.Errorf("orc: corrupt dictionary size")
	}
	pos += w
	dict := make([]string, dictN)
	for i := range dict {
		l, w := binary.Uvarint(data[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("orc: corrupt dictionary entry %d", i)
		}
		pos += w
		if pos+int(l) > len(data) {
			return nil, fmt.Errorf("orc: dictionary entry overruns chunk")
		}
		dict[i] = string(data[pos : pos+int(l)])
		pos += int(l)
	}
	idx, err := decodeRLE(data[pos:], n)
	if err != nil {
		return nil, err
	}
	out := make([]string, n)
	for i, id := range idx {
		if id < 0 || id >= int64(dictN) {
			return nil, fmt.Errorf("orc: dictionary index %d out of range", id)
		}
		out[i] = dict[id]
	}
	return out, nil
}

// encodePresence packs a non-null bitmap, one bit per row (1 = present).
func encodePresence(nulls []bool) []byte {
	out := make([]byte, (len(nulls)+7)/8)
	for i, isNull := range nulls {
		if !isNull {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

func decodePresence(data []byte, n int) ([]bool, error) {
	if len(data) < (n+7)/8 {
		return nil, fmt.Errorf("orc: presence bitmap too short")
	}
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		nulls[i] = data[i/8]&(1<<(i%8)) == 0
	}
	return nulls, nil
}
