package orc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/dfs"
	"repro/internal/types"
	"repro/internal/vector"
)

// ChunkReader fetches a byte range of a column chunk. The default
// implementation reads straight from the file system; the LLAP cache
// (paper §5.1) provides a caching implementation addressed by
// (fileID, stripe, column), which is exactly the row/column-group cache
// addressing of Figure 5.
type ChunkReader interface {
	ReadChunk(path string, fileID uint64, stripe, col int, off, length int64) ([]byte, error)
}

type fsChunkReader struct{ fs *dfs.FS }

func (r fsChunkReader) ReadChunk(path string, _ uint64, _, _ int, off, length int64) ([]byte, error) {
	return r.fs.ReadAt(path, off, length)
}

// VectorCache stores fully decoded column vectors keyed by
// (fileID, stripe, column). This is the second tier of the LLAP I/O
// elevator (paper §5.1): where the ChunkReader caches raw encoded bytes,
// the VectorCache caches the *decoded* representation, so a hit skips
// both the DFS read and the decode. Cached vectors are shared across
// concurrent queries and must never be mutated by consumers.
type VectorCache interface {
	GetVector(fileID uint64, stripe, col int) (*vector.Vector, bool)
	PutVector(fileID uint64, stripe, col int, v *vector.Vector)
}

// VectorPeeker is an optional VectorCache extension: Peek checks residency
// without counting a hit/miss, used by the prefetch path so elevator
// lookups do not pollute per-query cache statistics.
type VectorPeeker interface {
	PeekVector(fileID uint64, stripe, col int) bool
}

// Prefetcher queues asynchronous stripe decode work (the I/O elevator).
// An implementation returns true when the request was accepted; it must
// then invoke done (when non-nil) exactly once after the stripe has been
// decoded or abandoned. A false return means the caller should not expect
// any background work (and done is never called).
type Prefetcher interface {
	Prefetch(r *Reader, stripe int, cols []int, done func()) bool
}

// Reader reads an ORC-like file.
type Reader struct {
	fs      *dfs.FS
	path    string
	fileID  uint64
	schema  []Column
	ft      footer
	chunks  ChunkReader
	vectors VectorCache
}

// NewReader opens a file and parses its footer. The footer read is charged
// to the file system; metadata caching layers can avoid repeated opens.
func NewReader(fs *dfs.FS, path string) (*Reader, error) {
	st, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	tail, err := fs.ReadAt(path, max64(0, st.Size-8), 8)
	if err != nil {
		return nil, err
	}
	if len(tail) < 8 || string(tail[4:]) != magic {
		return nil, fmt.Errorf("orc: %s is not an ORC file", path)
	}
	ftLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	ftStart := st.Size - 8 - ftLen
	if ftStart < 0 {
		return nil, fmt.Errorf("orc: corrupt footer length in %s", path)
	}
	fb, err := fs.ReadAt(path, ftStart, ftLen)
	if err != nil {
		return nil, err
	}
	var ft footer
	if err := json.Unmarshal(fb, &ft); err != nil {
		return nil, fmt.Errorf("orc: decode footer of %s: %v", path, err)
	}
	schema := make([]Column, len(ft.Names))
	for i, name := range ft.Names {
		t, err := types.ParseType(ft.Types[i])
		if err != nil {
			return nil, fmt.Errorf("orc: bad type in footer of %s: %v", path, err)
		}
		schema[i] = Column{Name: name, Type: t}
	}
	return &Reader{
		fs:     fs,
		path:   path,
		fileID: st.FileID,
		schema: schema,
		ft:     ft,
		chunks: fsChunkReader{fs},
	}, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SetChunkReader substitutes the raw-chunk source, e.g. the LLAP data cache.
func (r *Reader) SetChunkReader(cr ChunkReader) { r.chunks = cr }

// SetVectorCache attaches a decoded-vector cache consulted by ReadStripe
// and populated by both ReadStripe and PrefetchStripe.
func (r *Reader) SetVectorCache(vc VectorCache) { r.vectors = vc }

// WithSources returns a shallow copy of the reader bound to the given
// chunk and vector sources, sharing the parsed footer. This lets a
// process-wide metadata cache hand out one parsed footer to many
// concurrent queries, each with its own cache wiring, without racing on
// the original reader. A nil ChunkReader keeps the current chunk source.
func (r *Reader) WithSources(cr ChunkReader, vc VectorCache) *Reader {
	nr := *r
	if cr != nil {
		nr.chunks = cr
	}
	nr.vectors = vc
	return &nr
}

// Schema returns the file's columns.
func (r *Reader) Schema() []Column { return r.schema }

// Rows returns the total row count.
func (r *Reader) Rows() int64 { return r.ft.Rows }

// NumStripes returns the stripe count.
func (r *Reader) NumStripes() int { return len(r.ft.Stripes) }

// Stripe returns metadata for stripe i.
func (r *Reader) Stripe(i int) StripeInfo { return r.ft.Stripes[i] }

// StripeRows returns the row count of stripe i, used to balance
// stripe-granular scan ranges across workers.
func (r *Reader) StripeRows(i int) int { return r.ft.Stripes[i].Rows }

// FileID returns the unique file generation id (cache key component).
func (r *Reader) FileID() uint64 { return r.fileID }

// Path returns the file path.
func (r *Reader) Path() string { return r.path }

// ColumnIndex returns the position of a named column, or -1.
func (r *Reader) ColumnIndex(name string) int {
	for i, c := range r.schema {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// StripeCanMatch evaluates a search argument against stripe statistics,
// returning false only when the stripe provably contains no matching rows.
// For equality predicates it also consults the column Bloom filter when one
// was written.
func (r *Reader) StripeCanMatch(stripe int, sarg *SearchArgument) bool {
	if sarg == nil {
		return true
	}
	info := r.ft.Stripes[stripe]
	for _, p := range sarg.Preds {
		if p.Col < 0 || p.Col >= len(info.Columns) {
			continue
		}
		cm := info.Columns[p.Col]
		if !predCanMatchStats(p, cm) {
			return false
		}
		if (p.Op == PredEQ || p.Op == PredIn) && cm.BloomLength > 0 {
			data, err := r.chunks.ReadChunk(r.path, r.fileID, stripe, p.Col,
				info.Offset+cm.BloomOffset, cm.BloomLength)
			if err != nil {
				continue // bloom unavailable: cannot skip
			}
			bf, err := bloomFromBytes(data)
			if err != nil {
				continue
			}
			any := false
			for _, v := range p.Values {
				if bf.mayContain(v.Hash()) {
					any = true
					break
				}
			}
			if !any {
				return false
			}
		}
		// PredBloom's runtime filter is applied row-wise during the scan;
		// only its min/max range participates in stripe skipping here.
	}
	return true
}

func predCanMatchStats(p Predicate, cm columnMeta) bool {
	if p.Op == PredIsNull {
		return cm.NullCount > 0
	}
	if cm.Min == nil || cm.Max == nil {
		// All values NULL: only IS NULL can match.
		return false
	}
	minD, maxD := *cm.Min, *cm.Max
	switch p.Op {
	case PredEQ:
		v := p.Values[0]
		return v.Compare(minD) >= 0 && v.Compare(maxD) <= 0
	case PredLT:
		return minD.Compare(p.Values[0]) < 0
	case PredLE:
		return minD.Compare(p.Values[0]) <= 0
	case PredGT:
		return maxD.Compare(p.Values[0]) > 0
	case PredGE:
		return maxD.Compare(p.Values[0]) >= 0
	case PredBetween:
		return maxD.Compare(p.Values[0]) >= 0 && minD.Compare(p.Values[1]) <= 0
	case PredIn:
		for _, v := range p.Values {
			if v.Compare(minD) >= 0 && v.Compare(maxD) <= 0 {
				return true
			}
		}
		return false
	case PredBloom:
		// Semijoin reducer: min/max range test on the build-side bounds.
		return maxD.Compare(p.Values[0]) >= 0 && minD.Compare(p.Values[1]) <= 0
	}
	return true
}

// ReadStripe decodes the projected columns of stripe i into a dense batch.
// projection lists column ordinals; a nil projection reads every column.
func (r *Reader) ReadStripe(i int, projection []int) (*vector.Batch, error) {
	info := r.ft.Stripes[i]
	if projection == nil {
		projection = make([]int, len(r.schema))
		for c := range projection {
			projection[c] = c
		}
	}
	cols := make([]*vector.Vector, len(projection))
	for oi, c := range projection {
		if c < 0 || c >= len(r.schema) {
			return nil, fmt.Errorf("orc: projection column %d out of range", c)
		}
		vec, err := r.readColumn(info, i, c)
		if err != nil {
			return nil, err
		}
		cols[oi] = vec
	}
	return &vector.Batch{Cols: cols, N: info.Rows}, nil
}

// readColumn produces the decoded vector for one column of one stripe:
// decoded-vector cache first, then chunk read (itself possibly served by
// the raw-byte cache) followed by decode, publishing the result back into
// the vector cache. The returned vector may be shared; callers must treat
// it as immutable.
func (r *Reader) readColumn(info StripeInfo, stripe, c int) (*vector.Vector, error) {
	if r.vectors != nil {
		if v, ok := r.vectors.GetVector(r.fileID, stripe, c); ok {
			return v, nil
		}
	}
	cm := info.Columns[c]
	data, err := r.chunks.ReadChunk(r.path, r.fileID, stripe, c, info.Offset+cm.Offset, cm.Length)
	if err != nil {
		return nil, err
	}
	vec, err := decodeColumn(r.schema[c].Type, cm, data, info.Rows)
	if err != nil {
		return nil, fmt.Errorf("orc: decode %s stripe %d: %v", r.schema[c].Name, stripe, err)
	}
	if r.vectors != nil {
		r.vectors.PutVector(r.fileID, stripe, c, vec)
	}
	return vec, nil
}

// PrefetchStripe warms the decoded-vector cache with the given columns of
// stripe i. It is the elevator worker's entry point: residency is probed
// with PeekVector (no hit/miss accounting) and already-resident columns
// are not re-decoded. A no-op when the reader has no vector cache.
func (r *Reader) PrefetchStripe(i int, cols []int) error {
	if r.vectors == nil || i < 0 || i >= len(r.ft.Stripes) {
		return nil
	}
	info := r.ft.Stripes[i]
	pk, canPeek := r.vectors.(VectorPeeker)
	if cols == nil {
		cols = make([]int, len(r.schema))
		for c := range cols {
			cols[c] = c
		}
	}
	for _, c := range cols {
		if c < 0 || c >= len(r.schema) {
			continue
		}
		if canPeek && pk.PeekVector(r.fileID, i, c) {
			continue
		}
		cm := info.Columns[c]
		data, err := r.chunks.ReadChunk(r.path, r.fileID, i, c, info.Offset+cm.Offset, cm.Length)
		if err != nil {
			return err
		}
		vec, err := decodeColumn(r.schema[c].Type, cm, data, info.Rows)
		if err != nil {
			return err
		}
		r.vectors.PutVector(r.fileID, i, c, vec)
	}
	return nil
}

// StripeEncodedBytes returns the encoded size of the given columns of
// stripe i (the whole stripe for nil cols), used to budget in-flight
// elevator work before any bytes are read.
func (r *Reader) StripeEncodedBytes(i int, cols []int) int64 {
	if i < 0 || i >= len(r.ft.Stripes) {
		return 0
	}
	info := r.ft.Stripes[i]
	if cols == nil {
		return info.Length
	}
	var n int64
	for _, c := range cols {
		if c >= 0 && c < len(info.Columns) {
			n += info.Columns[c].Length
		}
	}
	return n
}

func decodeColumn(t types.T, cm columnMeta, data []byte, rows int) (*vector.Vector, error) {
	vec := &vector.Vector{Type: t}
	pos := 0
	if cm.HasNulls {
		nulls, err := decodePresence(data, rows)
		if err != nil {
			return nil, err
		}
		vec.Nulls = nulls
		pos = (rows + 7) / 8
	}
	body := data[pos:]
	switch cm.Encoding {
	case EncodeDouble:
		vals, err := decodeDoubles(body, rows)
		if err != nil {
			return nil, err
		}
		vec.F64 = vals
	case EncodeDirect:
		vals, err := decodeStringsDirect(body, rows)
		if err != nil {
			return nil, err
		}
		vec.Str = vals
	case EncodeDict:
		vals, err := decodeStringsDict(body, rows)
		if err != nil {
			return nil, err
		}
		vec.Str = vals
	case EncodeRLE:
		vals, err := decodeRLE(body, rows)
		if err != nil {
			return nil, err
		}
		vec.I64 = vals
	default:
		return nil, fmt.Errorf("orc: unknown encoding %d", cm.Encoding)
	}
	return vec, nil
}

// PredOp is a search-argument comparison operator.
type PredOp uint8

// Search argument operators ("sargable predicates", paper §5.1).
const (
	PredEQ PredOp = iota
	PredLT
	PredLE
	PredGT
	PredGE
	PredBetween // Values[0] <= x <= Values[1]
	PredIn
	PredIsNull
	PredBloom // dynamic semijoin reducer: range in Values + Bloom membership
)

// BloomTester is the hook the dynamic semijoin reduction uses to push a
// runtime-built Bloom filter of join keys into the scan (paper §4.6).
type BloomTester interface {
	MayContain(hash uint64) bool
}

// Predicate constrains one column.
type Predicate struct {
	Col    int
	Op     PredOp
	Values []types.Datum
	Bloom  BloomTester // only for PredBloom
}

// SearchArgument is a conjunction of predicates used to skip stripes.
type SearchArgument struct {
	Preds []Predicate
}
