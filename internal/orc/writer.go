package orc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/internal/dfs"
	"repro/internal/types"
	"repro/internal/vector"
)

const magic = "GORC"

// Column describes one column of the file schema.
type Column struct {
	Name string
	Type types.T
}

// columnMeta is the footer's persisted form of a column chunk.
type columnMeta struct {
	Offset      int64 // relative to stripe start
	Length      int64
	Encoding    Encoding
	HasNulls    bool
	NullCount   int64
	Min         *types.Datum // nil when the chunk is all NULL
	Max         *types.Datum
	BloomOffset int64 // relative to stripe start; 0 length = no bloom
	BloomLength int64
}

// StripeInfo records where a stripe lives and its per-column statistics.
type StripeInfo struct {
	Offset  int64
	Length  int64
	Rows    int
	Columns []columnMeta
}

// footer is the JSON trailer of a file.
type footer struct {
	Names   []string
	Types   []string
	Rows    int64
	Stripes []StripeInfo
}

// WriterOptions configures file writing.
type WriterOptions struct {
	StripeRows   int             // rows per stripe; default 8192
	BloomColumns map[string]bool // column names to build Bloom filters for
	BloomBits    int             // bits per value; default 10
}

// Writer streams rows into an ORC-like file. Close finalizes the footer.
type Writer struct {
	fs      *dfs.FS
	path    string
	schema  []Column
	opts    WriterOptions
	buf     *vector.Batch
	bufN    int
	data    []byte
	stripes []StripeInfo
	rows    int64
	closed  bool
}

// NewWriter creates a writer for the given schema. The file is materialized
// in memory and committed to the file system atomically on Close, matching
// HDFS write-once semantics.
func NewWriter(fs *dfs.FS, path string, schema []Column, opts WriterOptions) *Writer {
	if opts.StripeRows <= 0 {
		opts.StripeRows = 8192
	}
	if opts.BloomBits <= 0 {
		opts.BloomBits = 10
	}
	ts := make([]types.T, len(schema))
	for i, c := range schema {
		ts[i] = c.Type
	}
	return &Writer{
		fs:     fs,
		path:   path,
		schema: schema,
		opts:   opts,
		buf:    vector.NewBatch(ts, opts.StripeRows),
	}
}

// WriteRow appends one row given as datums in schema order.
func (w *Writer) WriteRow(row []types.Datum) error {
	if len(row) != len(w.schema) {
		return fmt.Errorf("orc: row has %d columns, schema has %d", len(row), len(w.schema))
	}
	for c, d := range row {
		w.buf.Cols[c].Set(w.bufN, d)
	}
	w.bufN++
	w.rows++
	if w.bufN == w.opts.StripeRows {
		return w.flushStripe()
	}
	return nil
}

// WriteBatch appends all live rows of a batch (column types must match).
func (w *Writer) WriteBatch(b *vector.Batch) error {
	for i := 0; i < b.N; i++ {
		r := b.RowIdx(i)
		for c := range w.schema {
			w.buf.Cols[c].CopyRow(w.bufN, b.Cols[c], r)
		}
		w.bufN++
		w.rows++
		if w.bufN == w.opts.StripeRows {
			if err := w.flushStripe(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *Writer) flushStripe() error {
	if w.bufN == 0 {
		return nil
	}
	stripeStart := int64(len(w.data))
	info := StripeInfo{Offset: stripeStart, Rows: w.bufN}
	for c, col := range w.schema {
		vec := w.buf.Cols[c]
		meta, encoded, bloom := encodeColumn(vec, w.bufN, w.opts.BloomColumns[col.Name], w.opts.BloomBits)
		meta.Offset = int64(len(w.data)) - stripeStart
		meta.Length = int64(len(encoded))
		w.data = append(w.data, encoded...)
		if bloom != nil {
			meta.BloomOffset = int64(len(w.data)) - stripeStart
			meta.BloomLength = int64(len(bloom))
			w.data = append(w.data, bloom...)
		}
		info.Columns = append(info.Columns, meta)
	}
	info.Length = int64(len(w.data)) - stripeStart
	w.stripes = append(w.stripes, info)
	// Reset the buffer for the next stripe.
	w.bufN = 0
	for _, v := range w.buf.Cols {
		v.Nulls = nil
	}
	return nil
}

// encodeColumn encodes one column chunk: [presence?][values] plus optional
// bloom bytes, and computes min/max/null statistics.
func encodeColumn(vec *vector.Vector, n int, wantBloom bool, bloomBits int) (columnMeta, []byte, []byte) {
	var meta columnMeta
	var minD, maxD *types.Datum
	nonNull := 0
	for i := 0; i < n; i++ {
		if vec.IsNull(i) {
			meta.NullCount++
			continue
		}
		nonNull++
		d := vec.Get(i)
		if minD == nil {
			dc := d
			minD, maxD = &dc, &dc
			continue
		}
		if d.Compare(*minD) < 0 {
			dc := d
			minD = &dc
		}
		if d.Compare(*maxD) > 0 {
			dc := d
			maxD = &dc
		}
	}
	meta.Min, meta.Max = minD, maxD
	meta.HasNulls = meta.NullCount > 0

	var out []byte
	if meta.HasNulls {
		out = append(out, encodePresence(vec.Nulls[:n])...)
	}
	switch vec.Type.Kind {
	case types.Float64:
		meta.Encoding = EncodeDouble
		out = append(out, encodeDoubles(vec.F64[:n])...)
	case types.String:
		if dict := encodeStringsDict(vec.Str[:n]); dict != nil {
			meta.Encoding = EncodeDict
			out = append(out, dict...)
		} else {
			meta.Encoding = EncodeDirect
			out = append(out, encodeStringsDirect(vec.Str[:n])...)
		}
	default:
		meta.Encoding = EncodeRLE
		out = append(out, encodeRLE(vec.I64[:n])...)
	}

	var bloomBytes []byte
	if wantBloom && nonNull > 0 {
		bf := newBloom(nonNull, bloomBits)
		for i := 0; i < n; i++ {
			if !vec.IsNull(i) {
				bf.addDatum(vec.Get(i))
			}
		}
		bloomBytes = bf.bytes()
	}
	return meta, out, bloomBytes
}

// Close flushes the final stripe and commits the file.
func (w *Writer) Close() error {
	if w.closed {
		return fmt.Errorf("orc: writer already closed")
	}
	w.closed = true
	if err := w.flushStripe(); err != nil {
		return err
	}
	ft := footer{Rows: w.rows, Stripes: w.stripes}
	for _, c := range w.schema {
		ft.Names = append(ft.Names, c.Name)
		ft.Types = append(ft.Types, c.Type.String())
	}
	fb, err := json.Marshal(ft)
	if err != nil {
		return fmt.Errorf("orc: encode footer: %v", err)
	}
	w.data = append(w.data, fb...)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(fb)))
	w.data = append(w.data, lenBuf[:]...)
	w.data = append(w.data, magic...)
	return w.fs.WriteFile(w.path, w.data)
}
