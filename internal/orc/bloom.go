package orc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/types"
)

// bloomFilter is a split-block style Bloom filter over datum hashes, used by
// the index semijoin reduction (paper §4.6) and the I/O elevator's pushdown
// (paper §5.1) to skip stripes that provably do not contain a key.
type bloomFilter struct {
	bits []uint64
	k    int
}

// newBloom sizes a filter for n values at roughly bitsPerValue bits each.
func newBloom(n, bitsPerValue int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	nbits := n * bitsPerValue
	words := (nbits + 63) / 64
	if words < 1 {
		words = 1
	}
	k := int(float64(bitsPerValue) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &bloomFilter{bits: make([]uint64, words), k: k}
}

func (b *bloomFilter) add(h uint64) {
	h1, h2 := uint32(h), uint32(h>>32)
	n := uint32(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint32(i)*h2) % n
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

func (b *bloomFilter) mayContain(h uint64) bool {
	h1, h2 := uint32(h), uint32(h>>32)
	n := uint32(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint32(i)*h2) % n
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// AddDatum records a value in the filter.
func (b *bloomFilter) addDatum(d types.Datum) { b.add(d.Hash()) }

func (b *bloomFilter) bytes() []byte {
	out := make([]byte, 4+8*len(b.bits))
	binary.LittleEndian.PutUint32(out, uint32(b.k))
	for i, w := range b.bits {
		binary.LittleEndian.PutUint64(out[4+8*i:], w)
	}
	return out
}

func bloomFromBytes(data []byte) (*bloomFilter, error) {
	if len(data) < 12 || (len(data)-4)%8 != 0 {
		return nil, fmt.Errorf("orc: corrupt bloom filter (%d bytes)", len(data))
	}
	k := int(binary.LittleEndian.Uint32(data))
	words := (len(data) - 4) / 8
	b := &bloomFilter{bits: make([]uint64, words), k: k}
	for i := range b.bits {
		b.bits[i] = binary.LittleEndian.Uint64(data[4+8*i:])
	}
	return b, nil
}
