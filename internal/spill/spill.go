// Package spill is the shared run codec for operator state that overflows
// memory onto the distributed file system: the MR-mode shuffle
// materializations of package dag and the memory-governed spills of the
// blocking exec operators (external sort runs, Grace hash-join partitions,
// hash-aggregate partials) all serialize rows through it.
//
// A run file is a sequence of self-framed blocks, each a varint length
// prefix followed by an EncodeRows payload of a bounded number of rows.
// The DFS is write-once, so a Writer buffers its blocks and publishes the
// file atomically on Close; a Reader streams the file back one block at a
// time through ranged reads, which is what lets a k-way merge over many
// runs hold only one block per run in memory.
package spill

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dfs"
	"repro/internal/types"
)

// EncodeRows serializes rows for a shuffle/spill file: per datum a kind
// byte (0xFF marks NULL), then a fixed or length-prefixed payload.
func EncodeRows(rows [][]types.Datum) []byte {
	var out []byte
	var scratch [binary.MaxVarintLen64]byte
	putVar := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:n]...)
	}
	putVar(uint64(len(rows)))
	for _, row := range rows {
		putVar(uint64(len(row)))
		for _, d := range row {
			if d.Null {
				out = append(out, 0xFF, byte(d.K))
				continue
			}
			out = append(out, byte(d.K))
			switch d.K {
			case types.Float64:
				var buf [8]byte
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(d.F))
				out = append(out, buf[:]...)
			case types.String:
				putVar(uint64(len(d.S)))
				out = append(out, d.S...)
			case types.Decimal:
				putVar(uint64(zigzag(d.I)))
				putVar(uint64(d.DecimalScale()))
			default:
				putVar(zigzag(d.I))
			}
		}
	}
	return out
}

// DecodeRows is the inverse of EncodeRows.
func DecodeRows(data []byte) ([][]types.Datum, error) {
	pos := 0
	getVar := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("spill: corrupt run at %d", pos)
		}
		pos += n
		return v, nil
	}
	nRows, err := getVar()
	if err != nil {
		return nil, err
	}
	rows := make([][]types.Datum, 0, nRows)
	for r := uint64(0); r < nRows; r++ {
		nCols, err := getVar()
		if err != nil {
			return nil, err
		}
		row := make([]types.Datum, nCols)
		for c := range row {
			if pos >= len(data) {
				return nil, fmt.Errorf("spill: truncated run")
			}
			k := data[pos]
			pos++
			if k == 0xFF {
				if pos >= len(data) {
					return nil, fmt.Errorf("spill: truncated run")
				}
				row[c] = types.NullOf(types.Kind(data[pos]))
				pos++
				continue
			}
			kind := types.Kind(k)
			switch kind {
			case types.Float64:
				if pos+8 > len(data) {
					return nil, fmt.Errorf("spill: truncated double")
				}
				bits := binary.LittleEndian.Uint64(data[pos:])
				pos += 8
				row[c] = types.NewDouble(math.Float64frombits(bits))
			case types.String:
				l, err := getVar()
				if err != nil {
					return nil, err
				}
				if pos+int(l) > len(data) {
					return nil, fmt.Errorf("spill: truncated string")
				}
				row[c] = types.NewString(string(data[pos : pos+int(l)]))
				pos += int(l)
			case types.Decimal:
				u, err := getVar()
				if err != nil {
					return nil, err
				}
				sc, err := getVar()
				if err != nil {
					return nil, err
				}
				row[c] = types.NewDecimal(unzigzag(u), int(sc))
			default:
				u, err := getVar()
				if err != nil {
					return nil, err
				}
				row[c] = types.Datum{K: kind, I: unzigzag(u)}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer accumulates framed row blocks for one run file. The DFS is
// write-once, so blocks buffer in memory until Close publishes the file —
// a run is bounded by the spiller's memory budget, so the buffered
// encoding is at most one budget's worth of bytes.
type Writer struct {
	fs   *dfs.FS
	path string
	buf  []byte
	rows int
}

// NewWriter starts a run file at path.
func NewWriter(fs *dfs.FS, path string) *Writer {
	return &Writer{fs: fs, path: path}
}

// Append frames one block of rows.
func (w *Writer) Append(rows [][]types.Datum) {
	if len(rows) == 0 {
		return
	}
	payload := EncodeRows(rows)
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(payload)))
	w.buf = append(w.buf, scratch[:n]...)
	w.buf = append(w.buf, payload...)
	w.rows += len(rows)
}

// Rows returns the number of rows appended so far.
func (w *Writer) Rows() int { return w.rows }

// Path returns the run file's path.
func (w *Writer) Path() string { return w.path }

// Close publishes the run file and returns its size in bytes. A run with
// zero rows writes nothing and reports an empty file without touching the
// DFS.
func (w *Writer) Close() (int64, error) {
	if len(w.buf) == 0 {
		return 0, nil
	}
	if err := w.fs.WriteFile(w.path, w.buf); err != nil {
		return 0, err
	}
	n := int64(len(w.buf))
	w.buf = nil
	return n, nil
}

// ReadChunk is the granularity of the Reader's ranged reads: blocks are
// parsed out of chunk-sized buffers, so a small run file costs one read
// (seek) total and a large one costs one read per chunk — never one (or
// two) per block, which matters under a per-read seek cost model with many
// runs on disk.
const ReadChunk = 64 << 10

// Reader streams a run file back block by block through buffered ranged
// reads. It holds at most one chunk (plus one block straddling a chunk
// boundary) in memory.
type Reader struct {
	fs   *dfs.FS
	path string
	size int64
	buf  []byte
	off  int64 // file offset of buf[0]
	pos  int   // parse position within buf
}

// OpenReader opens a run file for streaming.
func OpenReader(fs *dfs.FS, path string) (*Reader, error) {
	info, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	return &Reader{fs: fs, path: path, size: info.Size}, nil
}

// ensure makes at least n parseable bytes available at pos, reading the
// next chunk(s) when the buffer runs short. It reports how many bytes are
// available (possibly fewer than n at end of file).
func (r *Reader) ensure(n int) (int, error) {
	for len(r.buf)-r.pos < n {
		nextOff := r.off + int64(len(r.buf))
		if nextOff >= r.size {
			break
		}
		want := int64(ReadChunk)
		if n > ReadChunk {
			want = int64(n)
		}
		chunk, err := r.fs.ReadAt(r.path, nextOff, want)
		if err != nil {
			return 0, err
		}
		// Drop the consumed prefix so memory stays one chunk-ish deep.
		r.buf = append(r.buf[r.pos:], chunk...)
		r.off = nextOff - int64(len(r.buf)-len(chunk))
		r.pos = 0
	}
	return len(r.buf) - r.pos, nil
}

// Next returns the next block of rows, or nil at end of run.
func (r *Reader) Next() ([][]types.Datum, error) {
	avail, err := r.ensure(binary.MaxVarintLen64)
	if err != nil {
		return nil, err
	}
	if avail == 0 {
		return nil, nil
	}
	payloadLen, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return nil, fmt.Errorf("spill: corrupt block frame at %d in %s", r.off+int64(r.pos), r.path)
	}
	r.pos += n
	if avail, err = r.ensure(int(payloadLen)); err != nil {
		return nil, err
	}
	if avail < int(payloadLen) {
		return nil, fmt.Errorf("spill: truncated block at %d in %s", r.off+int64(r.pos), r.path)
	}
	rows, err := DecodeRows(r.buf[r.pos : r.pos+int(payloadLen)])
	r.pos += int(payloadLen)
	return rows, err
}
