package spill

import (
	"testing"

	"repro/internal/dfs"
	"repro/internal/types"
)

func TestWriterReaderBlocks(t *testing.T) {
	fs := dfs.New()
	w := NewWriter(fs, "/scratch/run_0")
	var want [][]types.Datum
	for b := 0; b < 5; b++ {
		var block [][]types.Datum
		for i := 0; i < 100; i++ {
			row := []types.Datum{
				types.NewBigint(int64(b*100 + i)),
				types.NewString("v"),
				types.NewDouble(float64(i) / 3),
			}
			block = append(block, row)
			want = append(want, row)
		}
		w.Append(block)
	}
	if w.Rows() != 500 {
		t.Fatalf("writer rows = %d", w.Rows())
	}
	n, err := w.Close()
	if err != nil || n <= 0 {
		t.Fatalf("close: n=%d err=%v", n, err)
	}
	r, err := OpenReader(fs, "/scratch/run_0")
	if err != nil {
		t.Fatal(err)
	}
	var got [][]types.Datum
	blocks := 0
	for {
		rows, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rows == nil {
			break
		}
		blocks++
		got = append(got, rows...)
	}
	if blocks != 5 {
		t.Fatalf("blocks = %d, want 5 (streamed one Append per block)", blocks)
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if want[i][c].Compare(got[i][c]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, c, want[i][c], got[i][c])
			}
		}
	}
}

func TestEmptyWriterWritesNothing(t *testing.T) {
	fs := dfs.New()
	w := NewWriter(fs, "/scratch/run_empty")
	if n, err := w.Close(); err != nil || n != 0 {
		t.Fatalf("empty close: n=%d err=%v", n, err)
	}
	if fs.Exists("/scratch/run_empty") {
		t.Fatal("empty run should not create a file")
	}
}
