package opt

import (
	"repro/internal/plan"
)

// ---- Cost-based join reordering (paper §4.1) ----

// reorderJoins flattens maximal inner-join trees and rebuilds them greedily
// by estimated cardinality, attaching every join predicate at the earliest
// point both sides are available.
func (o *Optimizer) reorderJoins(rel plan.Rel) plan.Rel {
	rel = rewriteChildren(rel, o.reorderJoins)
	j, ok := rel.(*plan.Join)
	if !ok || (j.Kind != plan.Inner && j.Kind != plan.Cross) {
		return rel
	}
	inputs, offsets, conjs := flattenJoin(j)
	if len(inputs) < 3 {
		return rel
	}
	totalW := 0
	for _, in := range inputs {
		totalW += len(in.Schema())
	}

	type pred struct {
		rex  plan.Rex
		bits map[int]bool
		used bool
	}
	preds := make([]*pred, len(conjs))
	for i, c := range conjs {
		bits := map[int]bool{}
		plan.InputBits(c, bits)
		preds[i] = &pred{rex: c, bits: bits}
	}
	inputOf := func(globalCol int) int {
		for i := len(offsets) - 1; i >= 0; i-- {
			if globalCol >= offsets[i] {
				return i
			}
		}
		return 0
	}

	remaining := map[int]bool{}
	for i := range inputs {
		remaining[i] = true
	}
	// Start from the smallest input.
	start, best := -1, 0.0
	for i := range inputs {
		est := o.RowEstimate(inputs[i])
		if start < 0 || est < best {
			start, best = i, est
		}
	}
	current := inputs[start]
	delete(remaining, start)
	// mapping: global ordinal -> current plan ordinal (-1 if absent).
	mapping := make([]int, totalW)
	for i := range mapping {
		mapping[i] = -1
	}
	for i := 0; i < len(inputs[start].Schema()); i++ {
		mapping[offsets[start]+i] = i
	}

	attachPreds := func(cur plan.Rel) (plan.Rel, plan.Rex) {
		var conds []plan.Rex
		for _, p := range preds {
			if p.used {
				continue
			}
			ok := true
			for g := range p.bits {
				if mapping[g] < 0 {
					ok = false
					break
				}
			}
			if ok {
				p.used = true
				conds = append(conds, plan.RemapCols(p.rex, func(g int) int { return mapping[g] }))
			}
		}
		return cur, plan.AndAll(conds)
	}

	for len(remaining) > 0 {
		// Prefer a connected input minimizing estimated join output.
		next, nextCost := -1, 0.0
		connected := false
		for i := range remaining {
			conn := false
			for _, p := range preds {
				if p.used {
					continue
				}
				touchesNew, touchesCur := false, false
				for g := range p.bits {
					if inputOf(g) == i {
						touchesNew = true
					} else if mapping[g] >= 0 {
						touchesCur = true
					}
				}
				if touchesNew && touchesCur {
					conn = true
					break
				}
			}
			est := o.RowEstimate(inputs[i])
			if next < 0 || (conn && !connected) || (conn == connected && est < nextCost) {
				next, nextCost, connected = i, est, conn
			}
		}
		curW := len(current.Schema())
		for i := 0; i < len(inputs[next].Schema()); i++ {
			mapping[offsets[next]+i] = curW + i
		}
		joined := &plan.Join{Kind: plan.Inner, Left: current, Right: inputs[next]}
		delete(remaining, next)
		_, cond := attachPreds(joined)
		if cond == nil {
			joined.Kind = plan.Cross
		} else {
			joined.Cond = cond
		}
		current = joined
	}
	// Any predicates left (shouldn't happen) become a filter.
	var leftover []plan.Rex
	for _, p := range preds {
		if !p.used {
			leftover = append(leftover, plan.RemapCols(p.rex, func(g int) int { return mapping[g] }))
		}
	}
	if cond := plan.AndAll(leftover); cond != nil {
		current = &plan.Filter{Input: current, Cond: cond}
	}
	// Restore the original column order.
	exprs := make([]plan.Rex, totalW)
	names := make([]string, totalW)
	schema := current.Schema()
	for g := 0; g < totalW; g++ {
		exprs[g] = &plan.ColRef{Idx: mapping[g], T: schema[mapping[g]].T}
	}
	orig := j.Schema()
	for g := range names {
		names[g] = orig[g].Name
	}
	return &plan.Project{Input: current, Exprs: exprs, Names: names}
}

// flattenJoin collects the leaf inputs of a maximal inner/cross join tree,
// their global column offsets, and all join conjuncts over the global row.
// A join node's condition refers to its (left ++ right) concatenation,
// which occupies a contiguous global range starting at the node's base
// offset, so shifting by the base globalizes the ordinals.
func flattenJoin(j *plan.Join) (inputs []plan.Rel, offsets []int, conjs []plan.Rex) {
	var visit func(r plan.Rel, base int) int // returns width of r
	visit = func(r plan.Rel, base int) int {
		if jj, ok := r.(*plan.Join); ok && (jj.Kind == plan.Inner || jj.Kind == plan.Cross) && jj.ReducerID == 0 {
			lw := visit(jj.Left, base)
			rw := visit(jj.Right, base+lw)
			if jj.Cond != nil {
				for _, c := range plan.Conjuncts(jj.Cond) {
					conjs = append(conjs, plan.ShiftCols(c, base))
				}
			}
			return lw + rw
		}
		inputs = append(inputs, r)
		offsets = append(offsets, base)
		return len(r.Schema())
	}
	visit(j, 0)
	return inputs, offsets, conjs
}

// ---- Dynamic semijoin reduction (paper §4.6) ----

// addSemijoinReducers finds inner joins whose build side is much smaller
// than the probe side, and pushes a runtime filter of the build keys into
// the probe-side scan: partition-key probes get dynamic partition pruning,
// others get the min/max + Bloom index semijoin.
func (o *Optimizer) addSemijoinReducers(rel plan.Rel) plan.Rel {
	rel = rewriteChildren(rel, o.addSemijoinReducers)
	j, ok := rel.(*plan.Join)
	if !ok || (j.Kind != plan.Inner && j.Kind != plan.Semi) || j.ReducerID != 0 {
		return rel
	}
	buildRows := o.RowEstimate(j.Right)
	probeRows := o.RowEstimate(j.Left)
	if buildRows*4 >= probeRows || !hasFilter(j.Right) {
		return rel
	}
	leftW := len(j.Left.Schema())
	for _, c := range plan.Conjuncts(j.Cond) {
		fn, ok := c.(*plan.Func)
		if !ok || fn.Op != "=" || len(fn.Args) != 2 {
			continue
		}
		var probeCol *plan.ColRef
		for _, a := range fn.Args {
			if cr, ok := a.(*plan.ColRef); ok && cr.Idx < leftW {
				probeCol = cr
			}
		}
		if probeCol == nil {
			continue
		}
		id := o.allocReducer()
		newLeft, ok := bindReducer(j.Left, probeCol.Idx, id)
		if !ok {
			continue
		}
		return &plan.Join{Kind: j.Kind, Left: newLeft, Right: j.Right, Cond: j.Cond, ReducerID: id}
	}
	return rel
}

func (o *Optimizer) allocReducer() int {
	o.nextReducer++
	return o.nextReducer
}

func hasFilter(rel plan.Rel) bool {
	switch x := rel.(type) {
	case *plan.Filter:
		return true
	case *plan.Scan:
		return len(x.Filter) > 0
	}
	for _, c := range rel.Children() {
		if hasFilter(c) {
			return true
		}
	}
	return false
}

// traceToScan resolves an output ordinal of rel down to a scan column.
func traceToScan(rel plan.Rel, ord int) (*plan.Scan, string, int, bool) {
	switch x := rel.(type) {
	case *plan.Scan:
		metaOff := 0
		if x.Meta {
			metaOff = 3
		}
		if ord < metaOff {
			return nil, "", -1, false
		}
		tcol := x.Cols[ord-metaOff]
		all := plan.TableCols(x.Table)
		partIdx := -1
		if tcol >= len(x.Table.Cols) {
			partIdx = tcol - len(x.Table.Cols)
		}
		return x, all[tcol].Name, partIdx, true
	case *plan.Filter:
		return traceToScan(x.Input, ord)
	case *plan.Spool:
		return traceToScan(x.Input, ord)
	case *plan.Project:
		if cr, ok := x.Exprs[ord].(*plan.ColRef); ok {
			return traceToScan(x.Input, cr.Idx)
		}
	case *plan.Join:
		lw := len(x.Left.Schema())
		if ord < lw {
			return traceToScan(x.Left, ord)
		}
		if x.Kind != plan.Semi && x.Kind != plan.Anti {
			return traceToScan(x.Right, ord-lw)
		}
	}
	return nil, "", -1, false
}

// bindReducer rewrites the path from rel down to the scan providing output
// ordinal ord, attaching the runtime filter there.
func bindReducer(rel plan.Rel, ord int, id int) (plan.Rel, bool) {
	switch x := rel.(type) {
	case *plan.Scan:
		metaOff := 0
		if x.Meta {
			metaOff = 3
		}
		if ord < metaOff {
			return rel, false
		}
		tcol := x.Cols[ord-metaOff]
		partIdx := -1
		if tcol >= len(x.Table.Cols) {
			partIdx = tcol - len(x.Table.Cols)
		}
		ns := *x
		ns.RF = append(append([]plan.RuntimeBind{}, x.RF...), plan.RuntimeBind{ID: id, Col: ord, PartKeyIdx: partIdx})
		return &ns, true
	case *plan.Filter:
		in, ok := bindReducer(x.Input, ord, id)
		if !ok {
			return rel, false
		}
		return &plan.Filter{Input: in, Cond: x.Cond}, true
	case *plan.Project:
		cr, ok := x.Exprs[ord].(*plan.ColRef)
		if !ok {
			return rel, false
		}
		in, ok := bindReducer(x.Input, cr.Idx, id)
		if !ok {
			return rel, false
		}
		return &plan.Project{Input: in, Exprs: x.Exprs, Names: x.Names}, true
	case *plan.Join:
		lw := len(x.Left.Schema())
		if ord < lw {
			in, ok := bindReducer(x.Left, ord, id)
			if !ok {
				return rel, false
			}
			return &plan.Join{Kind: x.Kind, Left: in, Right: x.Right, Cond: x.Cond, ReducerID: x.ReducerID}, true
		}
		if x.Kind == plan.Semi || x.Kind == plan.Anti {
			return rel, false
		}
		in, ok := bindReducer(x.Right, ord-lw, id)
		if !ok {
			return rel, false
		}
		return &plan.Join{Kind: x.Kind, Left: x.Left, Right: in, Cond: x.Cond, ReducerID: x.ReducerID}, true
	}
	return rel, false
}

// ---- Shared work optimization (paper §4.5) ----

// sharedWork replaces repeated identical subtrees with Spool nodes sharing
// one materialization. It merges equal parts of the plan only (a
// reuse-based approach, not an exhaustive equivalence search).
func (o *Optimizer) sharedWork(rel plan.Rel) plan.Rel {
	counts := map[string]int{}
	var walk func(r plan.Rel)
	walk = func(r plan.Rel) {
		counts[r.Digest()]++
		for _, c := range r.Children() {
			walk(c)
		}
	}
	walk(rel)
	ids := map[string]int{}
	next := 1
	var rewrite func(r plan.Rel) plan.Rel
	rewrite = func(r plan.Rel) plan.Rel {
		if worthSharing(r) {
			d := r.Digest()
			if counts[d] >= 2 {
				id, ok := ids[d]
				if !ok {
					id = next
					next++
					ids[d] = id
				}
				return &plan.Spool{ID: id, Input: r}
			}
		}
		return rewriteChildren(r, rewrite)
	}
	return rewrite(rel)
}

func worthSharing(r plan.Rel) bool {
	switch r.(type) {
	case *plan.Scan, *plan.Join, *plan.Aggregate, *plan.Filter, *plan.Project:
		return true
	}
	return false
}

// ---- Column pruning ----

// pruneColumns narrows scans to the columns the plan actually uses.
func (o *Optimizer) pruneColumns(rel plan.Rel) plan.Rel {
	need := make([]bool, len(rel.Schema()))
	for i := range need {
		need[i] = true
	}
	out, _ := o.prune(rel, need)
	return out
}

// prune returns a plan emitting a superset of the needed columns plus the
// old-to-new ordinal mapping (-1 when dropped).
func (o *Optimizer) prune(rel plan.Rel, need []bool) (plan.Rel, []int) {
	identity := func(n int) []int {
		m := make([]int, n)
		for i := range m {
			m[i] = i
		}
		return m
	}
	switch x := rel.(type) {
	case *plan.Scan:
		metaOff := 0
		if x.Meta {
			metaOff = 3
		}
		// Scan filters and runtime binds pin their columns.
		for _, f := range x.Filter {
			bits := map[int]bool{}
			plan.InputBits(f, bits)
			for i := range bits {
				need[i] = true
			}
		}
		for _, rf := range x.RF {
			need[rf.Col] = true
		}
		all := true
		for _, n := range need {
			if !n {
				all = false
			}
		}
		if all {
			return rel, identity(len(need))
		}
		mapping := make([]int, len(need))
		ns := *x
		ns.Cols = nil
		nsFields := 0
		for i := 0; i < metaOff; i++ {
			mapping[i] = i
			nsFields++
		}
		for i := metaOff; i < len(need); i++ {
			if need[i] {
				mapping[i] = nsFields
				ns.Cols = append(ns.Cols, x.Cols[i-metaOff])
				nsFields++
			} else {
				mapping[i] = -1
			}
		}
		remap := func(i int) int { return mapping[i] }
		ns.Filter = nil
		for _, f := range x.Filter {
			ns.Filter = append(ns.Filter, plan.RemapCols(f, remap))
		}
		ns.RF = nil
		for _, rf := range x.RF {
			ns.RF = append(ns.RF, plan.RuntimeBind{ID: rf.ID, Col: mapping[rf.Col], PartKeyIdx: rf.PartKeyIdx})
		}
		fresh := &plan.Scan{Table: ns.Table, Alias: ns.Alias, Cols: ns.Cols, Filter: ns.Filter, Meta: ns.Meta, RF: ns.RF}
		return fresh, mapping

	case *plan.Filter:
		childNeed := append([]bool{}, need...)
		bits := map[int]bool{}
		plan.InputBits(x.Cond, bits)
		for i := range bits {
			childNeed[i] = true
		}
		in, m := o.prune(x.Input, childNeed)
		cond := plan.RemapCols(x.Cond, func(i int) int { return m[i] })
		return &plan.Filter{Input: in, Cond: cond}, m

	case *plan.Project:
		childNeed := make([]bool, len(x.Input.Schema()))
		var keptExprs []plan.Rex
		var keptNames []string
		mapping := make([]int, len(x.Exprs))
		for i, e := range x.Exprs {
			if !need[i] {
				mapping[i] = -1
				continue
			}
			mapping[i] = len(keptExprs)
			keptExprs = append(keptExprs, e)
			if i < len(x.Names) {
				keptNames = append(keptNames, x.Names[i])
			} else {
				keptNames = append(keptNames, "")
			}
			bits := map[int]bool{}
			plan.InputBits(e, bits)
			for b := range bits {
				childNeed[b] = true
			}
		}
		in, m := o.prune(x.Input, childNeed)
		for i, e := range keptExprs {
			keptExprs[i] = plan.RemapCols(e, func(c int) int { return m[c] })
		}
		return &plan.Project{Input: in, Exprs: keptExprs, Names: keptNames}, mapping

	case *plan.Join:
		lw := len(x.Left.Schema())
		rw := len(x.Right.Schema())
		leftNeed := make([]bool, lw)
		rightNeed := make([]bool, rw)
		semi := x.Kind == plan.Semi || x.Kind == plan.Anti
		for i, n := range need {
			if !n {
				continue
			}
			if i < lw {
				leftNeed[i] = true
			} else if !semi {
				rightNeed[i-lw] = true
			}
		}
		if x.Cond != nil {
			bits := map[int]bool{}
			plan.InputBits(x.Cond, bits)
			for i := range bits {
				if i < lw {
					leftNeed[i] = true
				} else {
					rightNeed[i-lw] = true
				}
			}
		}
		inL, mL := o.prune(x.Left, leftNeed)
		inR, mR := o.prune(x.Right, rightNeed)
		newLW := len(inL.Schema())
		remap := func(i int) int {
			if i < lw {
				return mL[i]
			}
			return newLW + mR[i-lw]
		}
		var cond plan.Rex
		if x.Cond != nil {
			cond = plan.RemapCols(x.Cond, remap)
		}
		mapping := make([]int, len(need))
		for i := range mapping {
			if i < lw {
				mapping[i] = mL[i]
			} else if semi {
				mapping[i] = -1
			} else {
				if mR[i-lw] < 0 {
					mapping[i] = -1
				} else {
					mapping[i] = newLW + mR[i-lw]
				}
			}
		}
		return &plan.Join{Kind: x.Kind, Left: inL, Right: inR, Cond: cond, ReducerID: x.ReducerID}, mapping

	case *plan.Aggregate:
		childNeed := make([]bool, len(x.Input.Schema()))
		addBits := func(e plan.Rex) {
			if e == nil {
				return
			}
			bits := map[int]bool{}
			plan.InputBits(e, bits)
			for b := range bits {
				childNeed[b] = true
			}
		}
		for _, g := range x.GroupBy {
			addBits(g)
		}
		for _, a := range x.Aggs {
			addBits(a.Arg)
		}
		in, m := o.prune(x.Input, childNeed)
		remap := func(i int) int { return m[i] }
		groups := make([]plan.Rex, len(x.GroupBy))
		for i, g := range x.GroupBy {
			groups[i] = plan.RemapCols(g, remap)
		}
		aggs := make([]plan.AggCall, len(x.Aggs))
		for i, a := range x.Aggs {
			na := a
			if a.Arg != nil {
				na.Arg = plan.RemapCols(a.Arg, remap)
			}
			aggs[i] = na
		}
		return &plan.Aggregate{Input: in, GroupBy: groups, Aggs: aggs, GroupingSets: x.GroupingSets, Names: x.Names}, identity(len(need))

	case *plan.Sort:
		childNeed := append([]bool{}, need...)
		for _, k := range x.Keys {
			childNeed[k.Col] = true
		}
		in, m := o.prune(x.Input, childNeed)
		keys := make([]plan.SortKey, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = plan.SortKey{Col: m[k.Col], Desc: k.Desc, NullsFirst: k.NullsFirst}
		}
		return &plan.Sort{Input: in, Keys: keys}, m

	case *plan.Limit:
		in, m := o.prune(x.Input, need)
		return &plan.Limit{Input: in, N: x.N, Offset: x.Offset}, m

	case *plan.Spool:
		allNeed := make([]bool, len(x.Input.Schema()))
		for i := range allNeed {
			allNeed[i] = true
		}
		in, _ := o.prune(x.Input, allNeed)
		return &plan.Spool{ID: x.ID, Input: in}, identity(len(need))

	default:
		// Opaque nodes (SetOp, Window, Values, ForeignScan): keep schema,
		// still prune inside.
		out := rewriteChildren(rel, func(c plan.Rel) plan.Rel {
			allNeed := make([]bool, len(c.Schema()))
			for i := range allNeed {
				allNeed[i] = true
			}
			p, _ := o.prune(c, allNeed)
			return p
		})
		return out, identity(len(need))
	}
}
