package opt

import (
	"repro/internal/metastore"
	"repro/internal/plan"
)

// RowEstimate predicts output cardinality from metastore statistics
// (table row counts, column NDV sketches and min/max; paper §4.1).
func (o *Optimizer) RowEstimate(rel plan.Rel) float64 {
	switch x := rel.(type) {
	case *plan.Scan:
		rows := o.tableRows(x.Table)
		sel := 1.0
		for _, f := range x.Filter {
			sel *= o.selectivity(x, f)
		}
		return rows * sel
	case *plan.ForeignScan:
		return 10000
	case *plan.Values:
		return float64(len(x.Rows))
	case *plan.Filter:
		return o.RowEstimate(x.Input) * 0.25
	case *plan.Project, *plan.Window:
		return o.RowEstimate(rel.Children()[0])
	case *plan.Spool:
		return o.RowEstimate(x.Input)
	case *plan.Sort:
		return o.RowEstimate(x.Input)
	case *plan.Limit:
		in := o.RowEstimate(x.Input)
		if float64(x.N) < in {
			return float64(x.N)
		}
		return in
	case *plan.Aggregate:
		in := o.RowEstimate(x.Input)
		groups := in / 4
		if ndv := o.groupNDV(x); ndv > 0 && ndv < groups {
			groups = ndv
		}
		if len(x.GroupBy) == 0 {
			return 1
		}
		if groups < 1 {
			groups = 1
		}
		return groups
	case *plan.Join:
		l, r := o.RowEstimate(x.Left), o.RowEstimate(x.Right)
		switch x.Kind {
		case plan.Cross:
			return l * r
		case plan.Semi:
			return l * 0.5
		case plan.Anti:
			return l * 0.5
		case plan.Single, plan.Left:
			return l
		default:
			ndv := o.joinKeyNDV(x)
			if ndv < 1 {
				ndv = maxf(l, r)
			}
			est := l * r / maxf(ndv, 1)
			if est < 1 {
				est = 1
			}
			return est
		}
	case *plan.SetOp:
		l, r := o.RowEstimate(x.Left), o.RowEstimate(x.Right)
		switch x.Kind {
		case plan.Union:
			return l + r
		case plan.Intersect:
			return minf(l, r) / 2
		default:
			return l / 2
		}
	}
	return 1000
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func (o *Optimizer) tableRows(t *metastore.Table) float64 {
	if st := o.MS.Stats(t.FullName()); st != nil && st.RowCount > 0 {
		return float64(st.RowCount)
	}
	return 10000
}

// selectivity estimates one pushed predicate on a scan.
func (o *Optimizer) selectivity(s *plan.Scan, f plan.Rex) float64 {
	fn, ok := f.(*plan.Func)
	if !ok {
		return 0.25
	}
	switch fn.Op {
	case "=":
		if col, okc := scanFilterColumn(s, fn); okc {
			if ndv := o.colNDV(s.Table, col); ndv > 0 {
				return 1 / float64(ndv)
			}
		}
		return 0.05
	case "<", "<=", ">", ">=":
		return 1.0 / 3
	case "in":
		return 0.1
	case "like":
		return 0.25
	case "and":
		sel := 1.0
		for _, a := range fn.Args {
			sel *= o.selectivity(s, a)
		}
		return sel
	case "or":
		sel := 0.0
		for _, a := range fn.Args {
			sel += o.selectivity(s, a)
		}
		return minf(sel, 1)
	}
	return 0.25
}

// scanFilterColumn extracts the scan column name compared in an
// equality/range predicate, if one side is a plain column.
func scanFilterColumn(s *plan.Scan, fn *plan.Func) (string, bool) {
	if len(fn.Args) != 2 {
		return "", false
	}
	for _, a := range fn.Args {
		if c, ok := a.(*plan.ColRef); ok {
			fields := s.Schema()
			if c.Idx < len(fields) {
				return fields[c.Idx].Name, true
			}
		}
	}
	return "", false
}

func (o *Optimizer) colNDV(t *metastore.Table, col string) int64 {
	st := o.MS.Stats(t.FullName())
	if st == nil {
		return 0
	}
	cs := st.Cols[col]
	if cs == nil {
		return 0
	}
	return cs.NDVEstimate()
}

// groupNDV multiplies the NDVs of group-by columns that are direct scan
// columns.
func (o *Optimizer) groupNDV(a *plan.Aggregate) float64 {
	scan := findOnlyScan(a.Input)
	if scan == nil {
		return 0
	}
	total := 1.0
	found := false
	for _, g := range a.GroupBy {
		c, ok := g.(*plan.ColRef)
		if !ok {
			continue
		}
		fields := a.Input.Schema()
		if c.Idx >= len(fields) {
			continue
		}
		if ndv := o.colNDV(scan.Table, fields[c.Idx].Name); ndv > 0 {
			total *= float64(ndv)
			found = true
		}
	}
	if !found {
		return 0
	}
	return total
}

// joinKeyNDV returns the max NDV across equi-key columns of the join.
func (o *Optimizer) joinKeyNDV(j *plan.Join) float64 {
	leftW := len(j.Left.Schema())
	best := 0.0
	for _, c := range plan.Conjuncts(j.Cond) {
		fn, ok := c.(*plan.Func)
		if !ok || fn.Op != "=" || len(fn.Args) != 2 {
			continue
		}
		for _, arg := range fn.Args {
			cr, ok := arg.(*plan.ColRef)
			if !ok {
				continue
			}
			var side plan.Rel
			idx := cr.Idx
			if idx < leftW {
				side = j.Left
			} else {
				side = j.Right
				idx -= leftW
			}
			if scan, col, _, ok := traceToScan(side, idx); ok {
				if ndv := o.colNDV(scan.Table, col); float64(ndv) > best {
					best = float64(ndv)
				}
			}
		}
	}
	return best
}

func findOnlyScan(rel plan.Rel) *plan.Scan {
	if s, ok := rel.(*plan.Scan); ok {
		return s
	}
	kids := rel.Children()
	if len(kids) == 1 {
		return findOnlyScan(kids[0])
	}
	return nil
}
