// Package opt implements the query optimizer (paper §4): a multi-stage
// rule pipeline in the style of Hive-on-Calcite. Stage one applies an
// exhaustive fixpoint of logical rewrites (constant folding, predicate
// simplification and pushdown); stage two is the cost-based planner
// (statistics-driven join reordering); stage three runs pre-execution
// physical rewrites (column pruning, dynamic semijoin reduction, shared
// work optimization).
package opt

import (
	"repro/internal/exec"
	"repro/internal/metastore"
	"repro/internal/plan"
	"repro/internal/types"
)

// Options toggles individual optimizations; the v1.2 profile in HS2
// disables the ones Hive 1.2 lacked (paper §7.1).
type Options struct {
	JoinReorder bool
	Semijoin    bool
	SharedWork  bool
	PruneCols   bool
}

// AllOn enables everything (the v3.1 profile).
func AllOn() Options {
	return Options{JoinReorder: true, Semijoin: true, SharedWork: true, PruneCols: true}
}

// Optimizer rewrites logical plans.
type Optimizer struct {
	MS   *metastore.Metastore
	Opts Options

	nextReducer int
}

// New creates an optimizer.
func New(ms *metastore.Metastore, opts Options) *Optimizer {
	return &Optimizer{MS: ms, Opts: opts}
}

// Optimize runs the full pipeline.
func (o *Optimizer) Optimize(rel plan.Rel) plan.Rel {
	// Stage 1: exhaustive logical rewrites to fixpoint.
	for i := 0; i < 10; i++ {
		before := rel.Digest()
		rel = o.foldConstants(rel)
		rel = o.pushFilters(rel)
		if rel.Digest() == before {
			break
		}
	}
	// Stage 2: cost-based join reordering.
	if o.Opts.JoinReorder {
		rel = o.reorderJoins(rel)
		rel = o.pushFilters(rel)
	}
	// Stage 3: physical rewrites. Shared work runs first: both column
	// pruning (branch-specific projections) and semijoin reducers (unique
	// ids) would make otherwise-identical subtrees digest differently and
	// defeat the merge. Pruning afterwards still narrows unshared scans;
	// spooled subtrees keep their full width, the same compromise Hive
	// makes when merging equal scans with different consumers.
	if o.Opts.SharedWork {
		rel = o.sharedWork(rel)
	}
	if o.Opts.PruneCols {
		rel = o.pruneColumns(rel)
	}
	if o.Opts.Semijoin {
		rel = o.addSemijoinReducers(rel)
	}
	return rel
}

// rewriteChildren rebuilds a node with transformed children.
func rewriteChildren(rel plan.Rel, f func(plan.Rel) plan.Rel) plan.Rel {
	switch x := rel.(type) {
	case *plan.Filter:
		return &plan.Filter{Input: f(x.Input), Cond: x.Cond}
	case *plan.Project:
		return &plan.Project{Input: f(x.Input), Exprs: x.Exprs, Names: x.Names}
	case *plan.Join:
		return &plan.Join{Kind: x.Kind, Left: f(x.Left), Right: f(x.Right), Cond: x.Cond, ReducerID: x.ReducerID}
	case *plan.Aggregate:
		return &plan.Aggregate{Input: f(x.Input), GroupBy: x.GroupBy, Aggs: x.Aggs, GroupingSets: x.GroupingSets, Names: x.Names}
	case *plan.Window:
		return &plan.Window{Input: f(x.Input), Fns: x.Fns, Names: x.Names}
	case *plan.Sort:
		return &plan.Sort{Input: f(x.Input), Keys: x.Keys}
	case *plan.Limit:
		return &plan.Limit{Input: f(x.Input), N: x.N, Offset: x.Offset}
	case *plan.SetOp:
		return &plan.SetOp{Kind: x.Kind, All: x.All, Left: f(x.Left), Right: f(x.Right)}
	case *plan.Spool:
		return &plan.Spool{ID: x.ID, Input: f(x.Input)}
	default:
		return rel
	}
}

// ---- Constant folding & simplification ----

func (o *Optimizer) foldConstants(rel plan.Rel) plan.Rel {
	rel = rewriteChildren(rel, o.foldConstants)
	switch x := rel.(type) {
	case *plan.Filter:
		cond := foldRex(x.Cond)
		if plan.IsLiteralTrue(cond) {
			return x.Input
		}
		return &plan.Filter{Input: x.Input, Cond: cond}
	case *plan.Project:
		exprs := make([]plan.Rex, len(x.Exprs))
		for i, e := range x.Exprs {
			exprs[i] = foldRex(e)
		}
		return &plan.Project{Input: x.Input, Exprs: exprs, Names: x.Names}
	case *plan.Join:
		if x.Cond == nil {
			return rel
		}
		return &plan.Join{Kind: x.Kind, Left: x.Left, Right: x.Right, Cond: foldRex(x.Cond), ReducerID: x.ReducerID}
	}
	return rel
}

// foldRex simplifies an expression tree: all-constant subtrees evaluate at
// plan time, boolean identities collapse.
func foldRex(e plan.Rex) plan.Rex {
	f, ok := e.(*plan.Func)
	if !ok {
		return e
	}
	args := make([]plan.Rex, len(f.Args))
	allConst := true
	for i, a := range f.Args {
		args[i] = foldRex(a)
		if _, isLit := args[i].(*plan.Literal); !isLit {
			allConst = false
		}
	}
	nf := &plan.Func{Op: f.Op, Args: args, T: f.T}
	if allConst {
		if d, ok := exec.EvalConst(nf); ok {
			return &plan.Literal{Val: d, T: f.T}
		}
	}
	switch f.Op {
	case "and":
		var keep []plan.Rex
		for _, a := range args {
			if plan.IsLiteralTrue(a) {
				continue
			}
			if lit, ok := a.(*plan.Literal); ok && !lit.Val.Null && lit.Val.I == 0 {
				return a // FALSE dominates
			}
			keep = append(keep, a)
		}
		if len(keep) == 0 {
			return plan.NewLiteral(types.NewBool(true))
		}
		return plan.AndAll(keep)
	case "or":
		for _, a := range args {
			if plan.IsLiteralTrue(a) {
				return a
			}
		}
	}
	return nf
}

// ---- Predicate pushdown ----

func (o *Optimizer) pushFilters(rel plan.Rel) plan.Rel {
	rel = rewriteChildren(rel, o.pushFilters)
	f, ok := rel.(*plan.Filter)
	if !ok {
		return rel
	}
	// Merge stacked filters first.
	if inner, ok := f.Input.(*plan.Filter); ok {
		return o.pushFilters(&plan.Filter{
			Input: inner.Input,
			Cond:  plan.AndAll([]plan.Rex{inner.Cond, f.Cond}),
		})
	}
	conjs := plan.Conjuncts(f.Cond)
	var kept []plan.Rex
	input := f.Input
	for _, c := range conjs {
		pushed, newInput := o.pushConjunct(c, input)
		if pushed {
			input = newInput
		} else {
			kept = append(kept, c)
		}
	}
	if cond := plan.AndAll(kept); cond != nil {
		return &plan.Filter{Input: input, Cond: cond}
	}
	return input
}

// pushConjunct attempts to push one predicate below the input node.
func (o *Optimizer) pushConjunct(c plan.Rex, input plan.Rel) (bool, plan.Rel) {
	switch x := input.(type) {
	case *plan.Scan:
		// Terminal: record on the scan (used for sargs, partition pruning
		// and stripe skipping); the residual filter still runs above, so
		// correctness never depends on the pushdown.
		ns := *x
		ns.Filter = append(append([]plan.Rex{}, x.Filter...), c)
		return true, &ns
	case *plan.Project:
		if windowUnsafe(c) {
			return false, input
		}
		subst, ok := substituteProject(c, x.Exprs)
		if !ok {
			return false, input
		}
		pushedDown, newChild := o.pushConjunct(subst, x.Input)
		if !pushedDown {
			newChild = &plan.Filter{Input: x.Input, Cond: subst}
		}
		return true, &plan.Project{Input: newChild, Exprs: x.Exprs, Names: x.Names}
	case *plan.Filter:
		pushed, newChild := o.pushConjunct(c, x.Input)
		if !pushed {
			return true, &plan.Filter{Input: x.Input, Cond: plan.AndAll([]plan.Rex{x.Cond, c})}
		}
		return true, &plan.Filter{Input: newChild, Cond: x.Cond}
	case *plan.Join:
		leftW := len(x.Left.Schema())
		bits := map[int]bool{}
		plan.InputBits(c, bits)
		allLeft, allRight := true, true
		for i := range bits {
			if i >= leftW {
				allLeft = false
			} else {
				allRight = false
			}
		}
		if allLeft && (x.Kind == plan.Inner || x.Kind == plan.Left || x.Kind == plan.Semi || x.Kind == plan.Anti || x.Kind == plan.Cross || x.Kind == plan.Single) {
			pushed, newLeft := o.pushConjunct(c, x.Left)
			if !pushed {
				newLeft = &plan.Filter{Input: x.Left, Cond: c}
			}
			return true, &plan.Join{Kind: x.Kind, Left: newLeft, Right: x.Right, Cond: x.Cond, ReducerID: x.ReducerID}
		}
		if allRight && (x.Kind == plan.Inner || x.Kind == plan.Right || x.Kind == plan.Cross) {
			shifted := plan.ShiftCols(c, -leftW)
			pushed, newRight := o.pushConjunct(shifted, x.Right)
			if !pushed {
				newRight = &plan.Filter{Input: x.Right, Cond: shifted}
			}
			return true, &plan.Join{Kind: x.Kind, Left: x.Left, Right: newRight, Cond: x.Cond, ReducerID: x.ReducerID}
		}
		// Predicates spanning both sides of an inner/cross join become
		// join conditions (turning comma-style cross joins into hash
		// joins) — the JoinConditionPush rule.
		if x.Kind == plan.Inner || x.Kind == plan.Cross {
			kind := plan.Inner
			return true, &plan.Join{
				Kind: kind, Left: x.Left, Right: x.Right,
				Cond: plan.AndAll([]plan.Rex{x.Cond, c}), ReducerID: x.ReducerID,
			}
		}
		return false, input
	case *plan.Aggregate:
		// Push only predicates over plain group-by columns.
		if x.GroupingSets != nil {
			return false, input
		}
		bits := map[int]bool{}
		plan.InputBits(c, bits)
		for i := range bits {
			if i >= len(x.GroupBy) {
				return false, input
			}
		}
		subst, ok := substituteProject(c, x.GroupBy)
		if !ok {
			return false, input
		}
		pushed, newChild := o.pushConjunct(subst, x.Input)
		if !pushed {
			newChild = &plan.Filter{Input: x.Input, Cond: subst}
		}
		return true, &plan.Aggregate{Input: newChild, GroupBy: x.GroupBy, Aggs: x.Aggs, GroupingSets: x.GroupingSets, Names: x.Names}
	case *plan.SetOp:
		pushedL, newL := o.pushConjunct(c, x.Left)
		if !pushedL {
			newL = &plan.Filter{Input: x.Left, Cond: c}
		}
		pushedR, newR := o.pushConjunct(c, x.Right)
		if !pushedR {
			newR = &plan.Filter{Input: x.Right, Cond: c}
		}
		return true, &plan.SetOp{Kind: x.Kind, All: x.All, Left: newL, Right: newR}
	}
	return false, input
}

// substituteProject rewrites a predicate over a Project's output into one
// over its input by inlining the projected expressions.
func substituteProject(c plan.Rex, exprs []plan.Rex) (plan.Rex, bool) {
	ok := true
	var sub func(e plan.Rex) plan.Rex
	sub = func(e plan.Rex) plan.Rex {
		switch x := e.(type) {
		case *plan.ColRef:
			if x.Idx >= len(exprs) {
				ok = false
				return e
			}
			return exprs[x.Idx]
		case *plan.Func:
			args := make([]plan.Rex, len(x.Args))
			for i, a := range x.Args {
				args[i] = sub(a)
			}
			return &plan.Func{Op: x.Op, Args: args, T: x.T}
		default:
			return e
		}
	}
	out := sub(c)
	return out, ok
}

// windowUnsafe reports whether a predicate must not move below the node it
// sits on (nondeterministic expressions).
func windowUnsafe(c plan.Rex) bool {
	f, ok := c.(*plan.Func)
	if !ok {
		return false
	}
	switch f.Op {
	case "rand":
		return true
	}
	for _, a := range f.Args {
		if windowUnsafe(a) {
			return true
		}
	}
	return false
}
