package opt

import (
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/hll"
	"repro/internal/metastore"
	"repro/internal/plan"
	"repro/internal/types"
)

func catalog(t *testing.T) *metastore.Metastore {
	t.Helper()
	ms := metastore.New(dfs.New(), "/wh")
	fact := &metastore.Table{
		DB: "default", Name: "fact",
		Cols: []metastore.Column{
			{Name: "f_key", Type: types.TBigint},
			{Name: "f_val", Type: types.TDouble},
		},
		PartKeys: []metastore.Column{{Name: "f_day", Type: types.TInt}},
	}
	dim := &metastore.Table{
		DB: "default", Name: "dim",
		Cols: []metastore.Column{
			{Name: "d_key", Type: types.TBigint},
			{Name: "d_cat", Type: types.TString},
		},
	}
	other := &metastore.Table{
		DB: "default", Name: "other",
		Cols: []metastore.Column{{Name: "o_key", Type: types.TBigint}},
	}
	for _, tbl := range []*metastore.Table{fact, dim, other} {
		if err := ms.CreateTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	setRows := func(name string, rows int64, col string, ndv int) {
		cs := &metastore.ColStats{NDV: hll.New()}
		for i := 0; i < ndv; i++ {
			cs.NDV.Add(types.NewBigint(int64(i)).Hash())
		}
		ms.SetStats("default."+name, &metastore.TableStats{
			RowCount: rows, Cols: map[string]*metastore.ColStats{col: cs},
		})
	}
	setRows("fact", 100000, "f_key", 1000)
	setRows("dim", 100, "d_key", 100)
	setRows("other", 50, "o_key", 50)
	return ms
}

func scanOf(ms *metastore.Metastore, t *testing.T, name string) *plan.Scan {
	tbl, err := ms.GetTable("default", name)
	if err != nil {
		t.Fatal(err)
	}
	return plan.NewScan(tbl, name)
}

func eq(l, r plan.Rex) plan.Rex { return plan.NewFunc("=", types.TBool, l, r) }
func col(i int, t types.T) *plan.ColRef {
	return &plan.ColRef{Idx: i, T: t}
}

func TestJoinConditionPushConvertsCrossToHashJoin(t *testing.T) {
	ms := catalog(t)
	o := New(ms, AllOn())
	// FROM fact, dim WHERE f_key = d_key AND d_cat = 'x'
	cross := &plan.Join{Kind: plan.Cross, Left: scanOf(ms, t, "fact"), Right: scanOf(ms, t, "dim")}
	cond := plan.AndAll([]plan.Rex{
		eq(col(0, types.TBigint), col(3, types.TBigint)),
		eq(col(4, types.TString), plan.NewLiteral(types.NewString("x"))),
	})
	rel := o.Optimize(&plan.Filter{Input: cross, Cond: cond})
	s := plan.Explain(rel)
	if !strings.Contains(s, "Join[inner]") {
		t.Errorf("cross join not converted:\n%s", s)
	}
	if !strings.Contains(s, "filter=[") {
		t.Errorf("dimension filter not pushed into scan:\n%s", s)
	}
}

func TestConstantFolding(t *testing.T) {
	ms := catalog(t)
	o := New(ms, AllOn())
	// WHERE 1 + 1 = 2 folds away entirely.
	cond := eq(
		plan.NewFunc("+", types.TBigint, plan.NewLiteral(types.NewBigint(1)), plan.NewLiteral(types.NewBigint(1))),
		plan.NewLiteral(types.NewBigint(2)),
	)
	rel := o.Optimize(&plan.Filter{Input: scanOf(ms, t, "dim"), Cond: cond})
	if _, ok := rel.(*plan.Scan); !ok {
		t.Errorf("tautological filter survived:\n%s", plan.Explain(rel))
	}
}

func TestColumnPruningNarrowsScan(t *testing.T) {
	ms := catalog(t)
	o := New(ms, AllOn())
	scan := scanOf(ms, t, "fact") // 3 columns
	proj := &plan.Project{
		Input: scan,
		Exprs: []plan.Rex{col(1, types.TDouble)},
		Names: []string{"v"},
	}
	rel := o.Optimize(proj)
	var pruned *plan.Scan
	var find func(r plan.Rel)
	find = func(r plan.Rel) {
		if s, ok := r.(*plan.Scan); ok {
			pruned = s
		}
		for _, c := range r.Children() {
			find(c)
		}
	}
	find(rel)
	if pruned == nil || len(pruned.Cols) != 1 {
		t.Errorf("scan not pruned: %+v\n%s", pruned, plan.Explain(rel))
	}
}

func TestSemijoinReducerAnnotation(t *testing.T) {
	ms := catalog(t)
	o := New(ms, AllOn())
	// fact JOIN (selective dim filter): the probe-side scan gets a reducer.
	dimScan := scanOf(ms, t, "dim")
	dimFiltered := &plan.Filter{
		Input: dimScan,
		Cond:  eq(col(1, types.TString), plan.NewLiteral(types.NewString("x"))),
	}
	join := &plan.Join{
		Kind: plan.Inner, Left: scanOf(ms, t, "fact"), Right: dimFiltered,
		Cond: eq(col(0, types.TBigint), col(3, types.TBigint)),
	}
	rel := o.Optimize(join)
	s := plan.Explain(rel)
	var annotated *plan.Join
	var find func(r plan.Rel)
	find = func(r plan.Rel) {
		if j, ok := r.(*plan.Join); ok && j.ReducerID != 0 {
			annotated = j
		}
		for _, c := range r.Children() {
			find(c)
		}
	}
	find(rel)
	if annotated == nil {
		t.Fatalf("no semijoin reducer assigned:\n%s", s)
	}
	if !strings.Contains(s, "rf") {
		t.Errorf("probe scan missing runtime filter bind:\n%s", s)
	}
}

func TestJoinReorderStartsFromSmallest(t *testing.T) {
	ms := catalog(t)
	o := New(ms, AllOn())
	// fact x dim x other with chained equi conditions, written fact-first.
	fact, dim, other := scanOf(ms, t, "fact"), scanOf(ms, t, "dim"), scanOf(ms, t, "other")
	j1 := &plan.Join{Kind: plan.Inner, Left: fact, Right: dim,
		Cond: eq(col(0, types.TBigint), col(3, types.TBigint))}
	j2 := &plan.Join{Kind: plan.Inner, Left: j1, Right: other,
		Cond: eq(col(3, types.TBigint), col(5, types.TBigint))}
	rel := o.Optimize(j2)
	// Result schema must be unchanged (restoration projection).
	if got, want := len(rel.Schema()), len(j2.Schema()); got != want {
		t.Fatalf("schema width changed: %d vs %d", got, want)
	}
	s := plan.Explain(rel)
	if !strings.Contains(s, "Join[inner]") {
		t.Errorf("reorder lost join conditions (cross join introduced):\n%s", s)
	}
}

func TestSharedWorkSpoolsRepeatedSubtrees(t *testing.T) {
	ms := catalog(t)
	o := New(ms, AllOn())
	scan := scanOf(ms, t, "dim")
	agg := func() plan.Rel {
		return &plan.Aggregate{
			Input:   scan,
			GroupBy: []plan.Rex{col(1, types.TString)},
			Aggs:    []plan.AggCall{{Fn: "count", T: types.TBigint}},
		}
	}
	join := &plan.Join{Kind: plan.Cross, Left: agg(), Right: agg()}
	rel := o.Optimize(join)
	s := plan.Explain(rel)
	if !strings.Contains(s, "Spool") {
		t.Errorf("repeated subtree not spooled:\n%s", s)
	}
}

func TestRowEstimateUsesStats(t *testing.T) {
	ms := catalog(t)
	o := New(ms, AllOn())
	fact := scanOf(ms, t, "fact")
	if est := o.RowEstimate(fact); est != 100000 {
		t.Errorf("fact estimate: %v", est)
	}
	filtered := *fact
	filtered.Filter = []plan.Rex{eq(col(0, types.TBigint), plan.NewLiteral(types.NewBigint(5)))}
	est := o.RowEstimate(&filtered)
	if est < 50 || est > 200 { // 100000 / ndv(1000) = 100
		t.Errorf("equality selectivity via NDV: %v", est)
	}
}
