package bench

import (
	"fmt"
	"math/rand"
)

// SSBScale sizes the Star-Schema Benchmark data (paper §7.3).
type SSBScale struct {
	LineorderRows int
	Customers     int
	Suppliers     int
	Parts         int
	DateDays      int
}

// SmallSSB is the default laptop scale.
func SmallSSB() SSBScale {
	return SSBScale{LineorderRows: 20000, Customers: 400, Suppliers: 100, Parts: 300, DateDays: 360}
}

// TinySSB keeps unit tests fast.
func TinySSB() SSBScale {
	return SSBScale{LineorderRows: 2000, Customers: 60, Suppliers: 20, Parts: 50, DateDays: 90}
}

// SetupSSB creates and populates the SSB star schema: one fact table
// (lineorder) and four dimensions.
func SetupSSB(exec func(string) error, sc SSBScale) error {
	ddl := []string{
		`CREATE TABLE ssb_date (
			d_datekey BIGINT, d_year INT, d_month INT, d_weeknum INT,
			PRIMARY KEY (d_datekey) DISABLE NOVALIDATE RELY)`,
		`CREATE TABLE ssb_customer (
			c_custkey BIGINT, c_name STRING, c_city STRING, c_nation STRING, c_region STRING,
			PRIMARY KEY (c_custkey) DISABLE NOVALIDATE RELY)`,
		`CREATE TABLE ssb_supplier (
			s_suppkey BIGINT, s_name STRING, s_city STRING, s_nation STRING, s_region STRING,
			PRIMARY KEY (s_suppkey) DISABLE NOVALIDATE RELY)`,
		`CREATE TABLE ssb_part (
			p_partkey BIGINT, p_name STRING, p_mfgr STRING, p_category STRING, p_brand STRING,
			PRIMARY KEY (p_partkey) DISABLE NOVALIDATE RELY)`,
		`CREATE TABLE lineorder (
			lo_orderkey BIGINT, lo_custkey BIGINT, lo_partkey BIGINT,
			lo_suppkey BIGINT, lo_orderdate BIGINT, lo_quantity INT,
			lo_extendedprice DOUBLE, lo_discount INT, lo_revenue DOUBLE)`,
	}
	for _, d := range ddl {
		if err := exec(d); err != nil {
			return err
		}
	}
	regions := []string{"AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDDLE EAST"}
	nations := []string{"UNITED STATES", "CHINA", "FRANCE", "EGYPT", "IRAN", "BRAZIL", "JAPAN", "GERMANY"}
	mfgrs := []string{"MFGR#1", "MFGR#2", "MFGR#3", "MFGR#4", "MFGR#5"}
	rng := rand.New(rand.NewSource(7))

	if err := insertBatches(exec, "ssb_date", sc.DateDays, 500, func(i int) string {
		year := 1992 + i/360
		month := (i/30)%12 + 1
		return fmt.Sprintf("(%d, %d, %d, %d)", 19920101+i, year, month, i/7)
	}); err != nil {
		return err
	}
	if err := insertBatches(exec, "ssb_customer", sc.Customers, 500, func(i int) string {
		return fmt.Sprintf("(%d, 'Customer%d', 'city%d', '%s', '%s')",
			i+1, i, i%20, nations[i%len(nations)], regions[i%len(regions)])
	}); err != nil {
		return err
	}
	if err := insertBatches(exec, "ssb_supplier", sc.Suppliers, 500, func(i int) string {
		return fmt.Sprintf("(%d, 'Supplier%d', 'city%d', '%s', '%s')",
			i+1, i, i%20, nations[i%len(nations)], regions[i%len(regions)])
	}); err != nil {
		return err
	}
	if err := insertBatches(exec, "ssb_part", sc.Parts, 500, func(i int) string {
		return fmt.Sprintf("(%d, 'Part%d', '%s', 'CAT%d', 'BRAND%d')",
			i+1, i, mfgrs[i%len(mfgrs)], i%25, i%40)
	}); err != nil {
		return err
	}
	if err := insertBatches(exec, "lineorder", sc.LineorderRows, 500, func(i int) string {
		price := 100 + rng.Float64()*10000
		disc := rng.Intn(11)
		return fmt.Sprintf("(%d, %d, %d, %d, %d, %d, %.2f, %d, %.2f)",
			i+1, 1+rng.Intn(sc.Customers), 1+rng.Intn(sc.Parts),
			1+rng.Intn(sc.Suppliers), 19920101+rng.Intn(sc.DateDays),
			1+rng.Intn(50), price, disc, price*(1-float64(disc)/100))
	}); err != nil {
		return err
	}
	for _, t := range []string{"ssb_date", "ssb_customer", "ssb_supplier", "ssb_part", "lineorder"} {
		if err := exec("ANALYZE TABLE " + t + " COMPUTE STATISTICS"); err != nil {
			return err
		}
	}
	return nil
}

// SSBDenormalizedMV is the materialized view the paper's §7.3 experiment
// builds: a denormalization of the star schema, stored either natively or
// in Druid. String dimensions plus numeric measures aggregate by the
// dimensional attributes the 13 queries filter and group on.
func SSBDenormalizedMV(storedByDruid bool) string {
	stored := ""
	if storedByDruid {
		stored = " STORED BY 'org.apache.hadoop.hive.druid.DruidStorageHandler'"
	}
	return `CREATE MATERIALIZED VIEW ssb_mv` + stored + ` AS
		SELECT c_city, c_nation, c_region, s_city, s_nation, s_region,
		       p_mfgr, p_category, p_brand, d_yearstr, d_monthstr,
		       SUM(lo_revenue) AS sum_revenue,
		       SUM(lo_extendedprice) AS sum_price,
		       COUNT(*) AS cnt
		FROM (SELECT lo_custkey, lo_partkey, lo_suppkey, lo_orderdate,
		             lo_revenue, lo_extendedprice,
		             CAST(d_year AS string) AS d_yearstr,
		             CAST(d_month AS string) AS d_monthstr,
		             c_city, c_nation, c_region, s_city, s_nation, s_region,
		             p_mfgr, p_category, p_brand
		      FROM lineorder, ssb_date, ssb_customer, ssb_supplier, ssb_part
		      WHERE lo_orderdate = d_datekey AND lo_custkey = c_custkey
		        AND lo_suppkey = s_suppkey AND lo_partkey = p_partkey) denorm
		GROUP BY c_city, c_nation, c_region, s_city, s_nation, s_region,
		         p_mfgr, p_category, p_brand, d_yearstr, d_monthstr`
}

// SSBQuery is one of the 13 SSB queries, expressed against the
// denormalized view (the §7.3 experiment answers all queries from the MV,
// natively or via Druid).
type SSBQuery struct {
	Name string
	SQL  string
}

// SSBQueries returns the 13-query flight against the denormalized MV.
func SSBQueries() []SSBQuery {
	qs := []struct{ name, sql string }{
		{"q1.1", `SELECT SUM(sum_revenue) FROM ssb_mv WHERE d_yearstr = '1993'`},
		{"q1.2", `SELECT SUM(sum_revenue) FROM ssb_mv WHERE d_yearstr = '1994' AND d_monthstr = '1'`},
		{"q1.3", `SELECT SUM(sum_revenue) FROM ssb_mv WHERE d_yearstr = '1992' AND d_monthstr = '6'`},
		{"q2.1", `SELECT d_yearstr, p_brand, SUM(sum_revenue) AS rev FROM ssb_mv
			WHERE p_category = 'CAT12' AND s_region = 'AMERICA'
			GROUP BY d_yearstr, p_brand ORDER BY rev DESC LIMIT 20`},
		{"q2.2", `SELECT d_yearstr, p_brand, SUM(sum_revenue) AS rev FROM ssb_mv
			WHERE p_brand = 'BRAND21' AND s_region = 'ASIA'
			GROUP BY d_yearstr, p_brand ORDER BY rev DESC LIMIT 20`},
		{"q2.3", `SELECT d_yearstr, p_brand, SUM(sum_revenue) AS rev FROM ssb_mv
			WHERE p_brand = 'BRAND14' AND s_region = 'EUROPE'
			GROUP BY d_yearstr, p_brand ORDER BY rev DESC LIMIT 20`},
		{"q3.1", `SELECT c_nation, s_nation, d_yearstr, SUM(sum_revenue) AS rev FROM ssb_mv
			WHERE c_region = 'ASIA' AND s_region = 'ASIA'
			GROUP BY c_nation, s_nation, d_yearstr ORDER BY rev DESC LIMIT 20`},
		{"q3.2", `SELECT c_city, s_city, d_yearstr, SUM(sum_revenue) AS rev FROM ssb_mv
			WHERE c_nation = 'UNITED STATES' AND s_nation = 'UNITED STATES'
			GROUP BY c_city, s_city, d_yearstr ORDER BY rev DESC LIMIT 20`},
		{"q3.3", `SELECT c_city, s_city, SUM(sum_revenue) AS rev FROM ssb_mv
			WHERE c_city = 'city1' AND s_city = 'city1'
			GROUP BY c_city, s_city ORDER BY rev DESC LIMIT 20`},
		{"q3.4", `SELECT c_city, s_city, SUM(sum_revenue) AS rev FROM ssb_mv
			WHERE c_city = 'city3' AND d_monthstr = '12'
			GROUP BY c_city, s_city ORDER BY rev DESC LIMIT 20`},
		{"q4.1", `SELECT d_yearstr, c_nation, SUM(sum_price) AS profit FROM ssb_mv
			WHERE c_region = 'AMERICA' AND s_region = 'AMERICA'
			GROUP BY d_yearstr, c_nation ORDER BY profit DESC LIMIT 20`},
		{"q4.2", `SELECT d_yearstr, s_nation, p_category, SUM(sum_price) AS profit FROM ssb_mv
			WHERE c_region = 'AMERICA' AND p_mfgr = 'MFGR#1'
			GROUP BY d_yearstr, s_nation, p_category ORDER BY profit DESC LIMIT 20`},
		{"q4.3", `SELECT d_yearstr, s_city, p_brand, SUM(sum_price) AS profit FROM ssb_mv
			WHERE s_nation = 'UNITED STATES' AND p_category = 'CAT3'
			GROUP BY d_yearstr, s_city, p_brand ORDER BY profit DESC LIMIT 20`},
	}
	out := make([]SSBQuery, len(qs))
	for i, q := range qs {
		out[i] = SSBQuery{Name: q.name, SQL: q.sql}
	}
	return out
}
