package bench

import (
	"fmt"
	"io"
	"time"
)

// Runner abstracts the session operations the harnesses need.
type Runner interface {
	Exec(sql string) error
	SetConf(key, value string)
}

// QueryTiming is one measured query.
type QueryTiming struct {
	Name      string
	V12       time.Duration // zero when unsupported
	V31       time.Duration
	Supported bool // supported by the v1.2 profile
	Err       error
}

// Figure7 reruns the paper's version comparison: every query under the
// Hive 1.2 profile (Tez containers, optimizations off, SQL gaps enforced)
// and under the 3.1 profile (LLAP + full optimizer). Returns per-query
// timings; unsupported-on-1.2 queries carry Supported=false, mirroring the
// 49 queries missing from the figure's v1.2 series.
func Figure7(s Runner, queries []TPCDSQuery, iterations int) ([]QueryTiming, error) {
	out := make([]QueryTiming, len(queries))
	for i, q := range queries {
		out[i] = QueryTiming{Name: q.Name, Supported: !q.V31Only}
		// v3.1 run.
		s.SetConf("hive.profile", "3.1")
		s.SetConf("hive.query.results.cache.enabled", "false") // measure execution
		d, err := timeQuery(s, q.SQL, iterations)
		if err != nil {
			out[i].Err = fmt.Errorf("%s (v3.1): %w", q.Name, err)
			return out, out[i].Err
		}
		out[i].V31 = d
		// v1.2 run (when supported).
		if q.V31Only {
			continue
		}
		s.SetConf("hive.profile", "1.2")
		d, err = timeQuery(s, q.SQL, iterations)
		s.SetConf("hive.profile", "3.1")
		if err != nil {
			out[i].Err = fmt.Errorf("%s (v1.2): %w", q.Name, err)
			return out, out[i].Err
		}
		out[i].V12 = d
	}
	return out, nil
}

func timeQuery(s Runner, sql string, iterations int) (time.Duration, error) {
	if iterations < 1 {
		iterations = 1
	}
	// Warm once (paper reports warm-cache numbers).
	if err := s.Exec(sql); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < iterations; i++ {
		if err := s.Exec(sql); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iterations), nil
}

// PrintFigure7 renders the per-query series like the paper's figure plus
// the headline aggregates (average speedup, max speedup, totals).
func PrintFigure7(w io.Writer, timings []QueryTiming) {
	fmt.Fprintf(w, "%-6s %12s %12s %9s\n", "query", "v1.2(ms)", "v3.1(ms)", "speedup")
	var sumSpeedup, maxSpeedup float64
	var nBoth int
	var totalV12, totalV31 time.Duration
	for _, t := range timings {
		totalV31 += t.V31
		if !t.Supported {
			fmt.Fprintf(w, "%-6s %12s %12.1f %9s\n", t.Name, "unsupported", ms(t.V31), "-")
			continue
		}
		totalV12 += t.V12
		sp := float64(t.V12) / float64(t.V31)
		sumSpeedup += sp
		if sp > maxSpeedup {
			maxSpeedup = sp
		}
		nBoth++
		fmt.Fprintf(w, "%-6s %12.1f %12.1f %8.1fx\n", t.Name, ms(t.V12), ms(t.V31), sp)
	}
	fmt.Fprintf(w, "\nqueries supported on v1.2: %d/%d\n", nBoth, len(timings))
	if nBoth > 0 {
		fmt.Fprintf(w, "average speedup (common queries): %.1fx, max: %.1fx\n",
			sumSpeedup/float64(nBoth), maxSpeedup)
		fmt.Fprintf(w, "total v1.2 (supported only): %.0fms; total v3.1 (ALL queries): %.0fms\n",
			ms(totalV12), ms(totalV31))
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Table1Result is the paper's Table 1: aggregate response time with and
// without LLAP.
type Table1Result struct {
	ContainerTotal time.Duration
	LLAPTotal      time.Duration
}

// Table1 runs every query in container mode (no LLAP: no persistent
// executors, no cache) and in LLAP mode, both under the full v3.1
// optimizer, and reports aggregate response times.
func Table1(s Runner, queries []TPCDSQuery, iterations int) (Table1Result, error) {
	var res Table1Result
	s.SetConf("hive.profile", "3.1")
	s.SetConf("hive.query.results.cache.enabled", "false")
	s.SetConf("hive.execution.mode", "container")
	s.SetConf("hive.llap.enabled", "false")
	for _, q := range queries {
		d, err := timeQuery(s, q.SQL, iterations)
		if err != nil {
			return res, fmt.Errorf("%s (container): %w", q.Name, err)
		}
		res.ContainerTotal += d
	}
	s.SetConf("hive.execution.mode", "llap")
	s.SetConf("hive.llap.enabled", "true")
	for _, q := range queries {
		d, err := timeQuery(s, q.SQL, iterations)
		if err != nil {
			return res, fmt.Errorf("%s (llap): %w", q.Name, err)
		}
		res.LLAPTotal += d
	}
	return res, nil
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, r Table1Result) {
	fmt.Fprintf(w, "%-28s %s\n", "Execution mode", "Total response time (ms)")
	fmt.Fprintf(w, "%-28s %.0f\n", "Container (without LLAP)", ms(r.ContainerTotal))
	fmt.Fprintf(w, "%-28s %.0f\n", "LLAP", ms(r.LLAPTotal))
	if r.LLAPTotal > 0 {
		fmt.Fprintf(w, "LLAP speedup: %.1fx\n", float64(r.ContainerTotal)/float64(r.LLAPTotal))
	}
}

// Figure8Timing is one SSB query in both backends.
type Figure8Timing struct {
	Name   string
	Native time.Duration
	Druid  time.Duration
}

// RunFigure8 executes the full §7.3 experiment: the 13 SSB queries against
// the denormalized materialization stored natively in Hive, then against
// the same materialization stored in Druid, with computation pushed over
// HTTP/JSON.
func RunFigure8(s Runner, iterations int) ([]Figure8Timing, error) {
	queries := SSBQueries()
	out := make([]Figure8Timing, len(queries))
	s.SetConf("hive.query.results.cache.enabled", "false")
	// Phase 1: native materialization.
	if err := s.Exec(SSBDenormalizedMV(false)); err != nil {
		return nil, fmt.Errorf("create native MV: %w", err)
	}
	for i, q := range queries {
		d, err := timeQuery(s, q.SQL, iterations)
		if err != nil {
			return nil, fmt.Errorf("%s (native): %w", q.Name, err)
		}
		out[i] = Figure8Timing{Name: q.Name, Native: d}
	}
	if err := s.Exec("DROP MATERIALIZED VIEW ssb_mv"); err != nil {
		return nil, err
	}
	// Phase 2: the same materialization stored in Druid.
	if err := s.Exec(SSBDenormalizedMV(true)); err != nil {
		return nil, fmt.Errorf("create druid MV: %w", err)
	}
	for i, q := range queries {
		d, err := timeQuery(s, q.SQL, iterations)
		if err != nil {
			return nil, fmt.Errorf("%s (druid): %w", q.Name, err)
		}
		out[i].Druid = d
	}
	if err := s.Exec("DROP MATERIALIZED VIEW ssb_mv"); err != nil {
		return nil, err
	}
	return out, nil
}

// PrintFigure8 renders the per-query comparison like the paper's figure.
func PrintFigure8(w io.Writer, timings []Figure8Timing) {
	fmt.Fprintf(w, "%-6s %12s %12s %9s\n", "query", "hive(ms)", "hive/druid", "speedup")
	var tn, td time.Duration
	for _, t := range timings {
		tn += t.Native
		td += t.Druid
		fmt.Fprintf(w, "%-6s %12.1f %12.1f %8.1fx\n", t.Name, ms(t.Native), ms(t.Druid),
			float64(t.Native)/float64(t.Druid))
	}
	if td > 0 {
		fmt.Fprintf(w, "\naggregate: native %.0fms, druid %.0fms (%.1fx)\n",
			ms(tn), ms(td), float64(tn)/float64(td))
	}
}
