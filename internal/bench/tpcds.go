// Package bench contains the workload generators and harnesses that
// regenerate every table and figure of the paper's evaluation (§7):
// a TPC-DS-derived workload for Figure 7 and Table 1, and the Star-Schema
// Benchmark for Figure 8. Scales are laptop-sized; EXPERIMENTS.md records
// how the measured shapes compare with the paper's cluster numbers.
package bench

import (
	"fmt"
	"math/rand"
)

// TPCDSQuery is one benchmark query with its paper-facing number.
type TPCDSQuery struct {
	Name string // e.g. "q3" — numbering follows TPC-DS themes
	SQL  string
	// V31Only marks queries using SQL that Hive 1.2 rejects (paper §7.1:
	// only 50 of 99 queries ran on v1.2).
	V31Only bool
}

// TPCDSScale controls generated data volume.
type TPCDSScale struct {
	SalesRows   int // store_sales fact rows
	ReturnsRows int
	Items       int
	Customers   int
	Stores      int
	DateDays    int // number of date partitions
}

// SmallTPCDS is the default laptop scale.
func SmallTPCDS() TPCDSScale {
	return TPCDSScale{SalesRows: 20000, ReturnsRows: 2000, Items: 400, Customers: 800, Stores: 8, DateDays: 24}
}

// TinyTPCDS keeps unit tests fast.
func TinyTPCDS() TPCDSScale {
	return TPCDSScale{SalesRows: 2000, ReturnsRows: 200, Items: 60, Customers: 100, Stores: 4, DateDays: 8}
}

// Executor abstracts a SQL session (satisfied by the public hive.Session).
type Executor interface {
	Exec(sql string) error
	MustExec(sql string)
}

// SetupTPCDS creates and populates the TPC-DS-derived schema. The fact
// table is partitioned by day, as in the paper's experiments.
func SetupTPCDS(exec func(string) error, sc TPCDSScale) error {
	ddl := []string{
		`CREATE TABLE date_dim (
			d_date_sk BIGINT, d_date DATE, d_year INT, d_moy INT, d_dom INT,
			PRIMARY KEY (d_date_sk) DISABLE NOVALIDATE RELY)`,
		`CREATE TABLE item (
			i_item_sk BIGINT, i_item_id STRING, i_category STRING, i_brand STRING,
			i_current_price DECIMAL(7,2),
			PRIMARY KEY (i_item_sk) DISABLE NOVALIDATE RELY)`,
		`CREATE TABLE customer (
			c_customer_sk BIGINT, c_customer_id STRING, c_first_name STRING,
			c_birth_year INT, c_preferred STRING)`,
		`CREATE TABLE store (
			s_store_sk BIGINT, s_store_name STRING, s_state STRING)`,
		`CREATE TABLE promotion (
			p_promo_sk BIGINT, p_channel_email STRING, p_channel_tv STRING)`,
		`CREATE TABLE store_sales (
			ss_item_sk BIGINT, ss_customer_sk BIGINT, ss_store_sk BIGINT,
			ss_promo_sk BIGINT, ss_ticket_number BIGINT, ss_quantity INT,
			ss_list_price DECIMAL(7,2), ss_sales_price DECIMAL(7,2)
		) PARTITIONED BY (ss_sold_date_sk INT)`,
		`CREATE TABLE store_returns (
			sr_item_sk BIGINT, sr_customer_sk BIGINT, sr_ticket_number BIGINT,
			sr_return_quantity INT, sr_return_amt DECIMAL(7,2)
		) PARTITIONED BY (sr_returned_date_sk INT)`,
	}
	for _, d := range ddl {
		if err := exec(d); err != nil {
			return err
		}
	}
	rng := rand.New(rand.NewSource(42))
	categories := []string{"Sports", "Books", "Home", "Electronics", "Music", "Shoes"}
	brands := []string{"brandA", "brandB", "brandC", "brandD"}
	states := []string{"CA", "NY", "TX", "WA"}

	// Dimensions.
	if err := insertBatches(exec, "date_dim", sc.DateDays, 500, func(i int) string {
		year := 2017 + i/12
		moy := i%12 + 1
		dom := i%28 + 1
		return fmt.Sprintf("(%d, CAST('%04d-%02d-%02d' AS date), %d, %d, %d)",
			i+1, year, moy, dom, year, moy, dom)
	}); err != nil {
		return err
	}
	if err := insertBatches(exec, "item", sc.Items, 500, func(i int) string {
		return fmt.Sprintf("(%d, 'ITEM%06d', '%s', '%s', %d.%02d)",
			i+1, i+1, categories[i%len(categories)], brands[i%len(brands)],
			1+rng.Intn(99), rng.Intn(100))
	}); err != nil {
		return err
	}
	if err := insertBatches(exec, "customer", sc.Customers, 500, func(i int) string {
		pref := "N"
		if i%3 == 0 {
			pref = "Y"
		}
		return fmt.Sprintf("(%d, 'CUST%06d', 'name%d', %d, '%s')",
			i+1, i+1, i, 1950+rng.Intn(55), pref)
	}); err != nil {
		return err
	}
	if err := insertBatches(exec, "store", sc.Stores, 500, func(i int) string {
		return fmt.Sprintf("(%d, 'store%d', '%s')", i+1, i, states[i%len(states)])
	}); err != nil {
		return err
	}
	if err := insertBatches(exec, "promotion", 20, 500, func(i int) string {
		e, t := "N", "N"
		if i%2 == 0 {
			e = "Y"
		}
		if i%3 == 0 {
			t = "Y"
		}
		return fmt.Sprintf("(%d, '%s', '%s')", i+1, e, t)
	}); err != nil {
		return err
	}

	// Fact tables, partitioned by day. Zipf-ish skew on items.
	perDay := sc.SalesRows / sc.DateDays
	ticket := 0
	for day := 1; day <= sc.DateDays; day++ {
		day := day
		if err := insertPartitionBatches(exec, "store_sales", "ss_sold_date_sk", day, perDay, 500, func(i int) string {
			ticket++
			item := 1 + skewed(rng, sc.Items)
			price := 1 + rng.Intn(9999)
			return fmt.Sprintf("(%d, %d, %d, %d, %d, %d, %d.%02d, %d.%02d)",
				item, 1+rng.Intn(sc.Customers), 1+rng.Intn(sc.Stores),
				1+rng.Intn(20), ticket, 1+rng.Intn(10),
				price/100+1, price%100, price/100, price%100)
		}); err != nil {
			return err
		}
	}
	perDayRet := sc.ReturnsRows / sc.DateDays
	if perDayRet < 1 {
		perDayRet = 1
	}
	for day := 1; day <= sc.DateDays; day++ {
		if err := insertPartitionBatches(exec, "store_returns", "sr_returned_date_sk", day, perDayRet, 500, func(i int) string {
			amt := rng.Intn(5000)
			return fmt.Sprintf("(%d, %d, %d, %d, %d.%02d)",
				1+skewed(rng, sc.Items), 1+rng.Intn(sc.Customers),
				1+rng.Intn(ticket), 1+rng.Intn(3), amt/100, amt%100)
		}); err != nil {
			return err
		}
	}
	// Statistics for the cost-based optimizer.
	for _, t := range []string{"date_dim", "item", "customer", "store", "promotion", "store_sales", "store_returns"} {
		if err := exec("ANALYZE TABLE " + t + " COMPUTE STATISTICS"); err != nil {
			return err
		}
	}
	return nil
}

// SetupUnpartitionedSales copies store_sales into store_sales_flat, an
// unpartitioned table with the date key as a plain column. One insert
// transaction per day keeps the directory shaped like a real ACID table
// (many delta files), which is exactly the case stripe-granular morsels
// parallelize: the table is a single directory split, so before PR 2 it
// scanned serially at any DOP. Requires SetupTPCDS to have run.
func SetupUnpartitionedSales(exec func(string) error, sc TPCDSScale) error {
	ddl := `CREATE TABLE store_sales_flat (
		ss_item_sk BIGINT, ss_customer_sk BIGINT, ss_store_sk BIGINT,
		ss_promo_sk BIGINT, ss_ticket_number BIGINT, ss_quantity INT,
		ss_list_price DECIMAL(7,2), ss_sales_price DECIMAL(7,2),
		ss_sold_date_sk INT)`
	if err := exec(ddl); err != nil {
		return err
	}
	for day := 1; day <= sc.DateDays; day++ {
		ins := fmt.Sprintf(`INSERT INTO store_sales_flat
			SELECT ss_item_sk, ss_customer_sk, ss_store_sk, ss_promo_sk,
			       ss_ticket_number, ss_quantity, ss_list_price, ss_sales_price,
			       ss_sold_date_sk
			FROM store_sales WHERE ss_sold_date_sk = %d`, day)
		if err := exec(ins); err != nil {
			return err
		}
	}
	return exec("ANALYZE TABLE store_sales_flat COMPUTE STATISTICS")
}

// OrderBySQL and SortTopNSQL are the ORDER BY-heavy cases of
// BenchmarkParallelSpeedup (PR 3). OrderBySQL produces one globally sorted
// stream over the whole fact table — per-worker sorted runs through the
// order-preserving merge exchange. SortTopNSQL is the ORDER BY + LIMIT
// shape that per-worker bounded heaps answer with at most workers×N rows
// ever reaching the coordinator. Both sort keys end with the unique ticket
// number, so parallel output is byte-identical to serial.
const (
	OrderBySQL = `SELECT ss_ticket_number, ss_item_sk, ss_customer_sk, ss_sales_price
		FROM store_sales ORDER BY ss_sales_price DESC, ss_ticket_number`
	SortTopNSQL = `SELECT ss_ticket_number, ss_item_sk, ss_customer_sk, ss_sales_price
		FROM store_sales ORDER BY ss_sales_price DESC, ss_ticket_number LIMIT 100`
)

func skewed(rng *rand.Rand, n int) int {
	// 60% of rows hit the first 20% of keys.
	if rng.Float64() < 0.6 {
		return rng.Intn(n/5 + 1)
	}
	return rng.Intn(n)
}

func insertBatches(exec func(string) error, table string, total, batch int, row func(i int) string) error {
	for start := 0; start < total; start += batch {
		end := start + batch
		if end > total {
			end = total
		}
		sql := "INSERT INTO " + table + " VALUES "
		for i := start; i < end; i++ {
			if i > start {
				sql += ", "
			}
			sql += row(i)
		}
		if err := exec(sql); err != nil {
			return err
		}
	}
	return nil
}

func insertPartitionBatches(exec func(string) error, table, partKey string, partVal, total, batch int, row func(i int) string) error {
	for start := 0; start < total; start += batch {
		end := start + batch
		if end > total {
			end = total
		}
		sql := fmt.Sprintf("INSERT INTO %s PARTITION (%s=%d) VALUES ", table, partKey, partVal)
		for i := start; i < end; i++ {
			if i > start {
				sql += ", "
			}
			sql += row(i)
		}
		if err := exec(sql); err != nil {
			return err
		}
	}
	return nil
}

// TPCDSQueries returns the representative query set. The numbering follows
// the TPC-DS themes each query models; roughly half use SQL that Hive 1.2
// rejected, mirroring the 50-of-99 split in paper Figure 7.
func TPCDSQueries() []TPCDSQuery {
	return []TPCDSQuery{
		{Name: "q3", SQL: `SELECT d_year, i_brand, SUM(ss_sales_price) AS sum_agg
			FROM store_sales, date_dim, item
			WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk AND i_category = 'Books'
			GROUP BY d_year, i_brand ORDER BY d_year, sum_agg DESC LIMIT 10`},
		{Name: "q7", SQL: `SELECT i_item_id, AVG(ss_quantity) AS agg1, AVG(ss_list_price) AS agg2
			FROM store_sales, item, promotion
			WHERE ss_item_sk = i_item_sk AND ss_promo_sk = p_promo_sk
			  AND (p_channel_email = 'N' OR p_channel_tv = 'N')
			GROUP BY i_item_id ORDER BY i_item_id LIMIT 20`},
		{Name: "q12", SQL: `SELECT i_category, SUM(ss_sales_price) AS itemrevenue
			FROM store_sales, item, date_dim
			WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND d_year = 2017
			GROUP BY i_category ORDER BY itemrevenue DESC`},
		{Name: "q15", SQL: `SELECT c_customer_id, SUM(ss_sales_price) AS total
			FROM store_sales, customer
			WHERE ss_customer_sk = c_customer_sk AND c_preferred = 'Y'
			GROUP BY c_customer_id HAVING SUM(ss_sales_price) > 50 ORDER BY total DESC LIMIT 25`},
		{Name: "q19", SQL: `SELECT i_brand, s_state, SUM(ss_sales_price) AS rev
			FROM store_sales, item, store
			WHERE ss_item_sk = i_item_sk AND ss_store_sk = s_store_sk AND i_category = 'Electronics'
			GROUP BY i_brand, s_state ORDER BY rev DESC LIMIT 10`},
		{Name: "q25", SQL: `SELECT i_item_id, SUM(sr_return_quantity) AS returns_
			FROM store_returns, item
			WHERE sr_item_sk = i_item_sk
			GROUP BY i_item_id ORDER BY returns_ DESC LIMIT 15`},
		{Name: "q26", SQL: `SELECT i_item_id, AVG(ss_quantity) AS agg1
			FROM store_sales, item, date_dim
			WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND d_moy = 1
			GROUP BY i_item_id ORDER BY i_item_id LIMIT 20`},
		{Name: "q28", SQL: `SELECT COUNT(DISTINCT ss_customer_sk) AS cnt, AVG(ss_list_price) AS avg_p
			FROM store_sales WHERE ss_quantity BETWEEN 1 AND 5`},
		{Name: "q42", SQL: `SELECT d_year, i_category, SUM(ss_sales_price) AS s
			FROM store_sales, date_dim, item
			WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk AND d_moy = 2
			GROUP BY d_year, i_category ORDER BY s DESC LIMIT 10`},
		{Name: "q43", SQL: `SELECT s_store_name, SUM(ss_sales_price) AS rev
			FROM store_sales, store
			WHERE ss_store_sk = s_store_sk
			GROUP BY s_store_name ORDER BY rev DESC`},
		{Name: "q52", SQL: `SELECT d_year, i_brand, SUM(ss_sales_price) AS ext_price
			FROM store_sales, date_dim, item
			WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk AND d_moy = 11
			GROUP BY d_year, i_brand ORDER BY d_year, ext_price DESC LIMIT 10`},
		{Name: "q55", SQL: `SELECT i_brand, SUM(ss_sales_price) AS ext_price
			FROM store_sales, item, date_dim
			WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND d_moy = 12
			GROUP BY i_brand ORDER BY ext_price DESC LIMIT 10`},
		{Name: "q61", SQL: `SELECT promotions.cnt, total.cnt
			FROM (SELECT COUNT(*) AS cnt FROM store_sales, promotion
			      WHERE ss_promo_sk = p_promo_sk AND p_channel_email = 'Y') promotions,
			     (SELECT COUNT(*) AS cnt FROM store_sales) total`},
		{Name: "q65", SQL: `SELECT s_store_name, i_item_id, sales.total
			FROM store, item,
			  (SELECT ss_store_sk AS sk, ss_item_sk AS ik, SUM(ss_sales_price) AS total
			   FROM store_sales GROUP BY ss_store_sk, ss_item_sk) sales
			WHERE s_store_sk = sales.sk AND i_item_sk = sales.ik
			ORDER BY total DESC LIMIT 10`},
		{Name: "q68", SQL: `SELECT c_customer_id, SUM(ss_sales_price) AS amt
			FROM store_sales, customer, date_dim
			WHERE ss_customer_sk = c_customer_sk AND ss_sold_date_sk = d_date_sk
			  AND d_dom BETWEEN 1 AND 3
			GROUP BY c_customer_id ORDER BY amt DESC LIMIT 20`},

		// The following use SQL surface Hive 1.2 lacked (paper §7.1).
		{Name: "q8", V31Only: true, SQL: `SELECT s_store_name, SUM(ss_sales_price) AS s
			FROM store_sales, store
			WHERE ss_store_sk = s_store_sk AND s_state IN ('CA','NY')
			GROUP BY s_store_name ORDER BY SUM(ss_quantity)`},
		{Name: "q10", V31Only: true, SQL: `SELECT c_customer_id FROM customer
			WHERE EXISTS (SELECT 1 FROM store_sales WHERE ss_customer_sk = c_customer_sk)
			  AND c_birth_year > 1980 ORDER BY c_customer_id LIMIT 20`},
		{Name: "q14", V31Only: true, SQL: `SELECT i_item_sk FROM store_sales JOIN item ON ss_item_sk = i_item_sk WHERE i_category = 'Music'
			INTERSECT
			SELECT i_item_sk FROM store_returns JOIN item ON sr_item_sk = i_item_sk`},
		{Name: "q16", V31Only: true, SQL: `SELECT COUNT(DISTINCT ss_ticket_number) AS cnt
			FROM store_sales
			WHERE ss_item_sk NOT IN (SELECT i_item_sk FROM item WHERE i_category = 'Shoes')`},
		{Name: "q23", V31Only: true, SQL: `SELECT i_item_sk FROM store_sales JOIN item ON ss_item_sk = i_item_sk
			EXCEPT
			SELECT sr_item_sk FROM store_returns`},
		{Name: "q32", V31Only: true, SQL: `SELECT AVG(ss_sales_price) FROM store_sales, item
			WHERE ss_item_sk = i_item_sk AND
			ss_sales_price > (SELECT AVG(i_current_price) FROM item)`},
		{Name: "q35", V31Only: true, SQL: `SELECT c_customer_id FROM customer
			WHERE c_customer_sk IN (SELECT ss_customer_sk FROM store_sales, date_dim
				WHERE ss_sold_date_sk = d_date_sk AND d_year = 2017)
			ORDER BY c_birth_year LIMIT 20`},
		{Name: "q36", V31Only: true, SQL: `SELECT i_category, i_brand, SUM(ss_sales_price) AS s,
			GROUPING(i_category) AS gc
			FROM store_sales, item WHERE ss_item_sk = i_item_sk
			GROUP BY ROLLUP(i_category, i_brand)
			ORDER BY gc, s DESC LIMIT 25`},
		{Name: "q44", V31Only: true, SQL: `SELECT i_brand, rk FROM (
			SELECT i_brand, rank() OVER (ORDER BY SUM(ss_sales_price) DESC) AS rk
			FROM store_sales, item WHERE ss_item_sk = i_item_sk GROUP BY i_brand) ranked
			WHERE rk <= 5 ORDER BY rk`},
		{Name: "q51", V31Only: true, SQL: `SELECT d_date, SUM(ss_sales_price) OVER (PARTITION BY d_moy ORDER BY d_dom) AS run
			FROM store_sales, date_dim
			WHERE ss_sold_date_sk = d_date_sk AND d_year = 2017
			ORDER BY d_date LIMIT 20`},
		{Name: "q54", V31Only: true, SQL: `SELECT COUNT(*) FROM store_sales, date_dim
			WHERE ss_sold_date_sk = d_date_sk
			  AND d_date BETWEEN CAST('2017-01-01' AS date) AND CAST('2017-01-01' AS date) + INTERVAL 60 DAYS`},
		{Name: "q58", V31Only: true, SQL: `SELECT i_item_id, SUM(ss_sales_price) AS total
			FROM store_sales, item, date_dim
			WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
			  AND d_date BETWEEN CAST('2017-02-01' AS date) AND CAST('2017-02-01' AS date) + INTERVAL 30 DAYS
			GROUP BY i_item_id ORDER BY total DESC LIMIT 15`},
		{Name: "q69", V31Only: true, SQL: `SELECT c_customer_id FROM customer
			WHERE NOT EXISTS (SELECT 1 FROM store_returns WHERE sr_customer_sk = c_customer_sk)
			  AND c_preferred = 'Y' ORDER BY c_customer_id LIMIT 20`},
		{Name: "q81", V31Only: true, SQL: `SELECT c_customer_id FROM customer, store_returns
			WHERE c_customer_sk = sr_customer_sk AND sr_return_amt >
			  (SELECT AVG(sr_return_amt) FROM store_returns)
			ORDER BY c_customer_id LIMIT 20`},
		{Name: "q88", V31Only: true, SQL: `SELECT a.cnt, b.cnt, c.cnt, d.cnt FROM
			(SELECT COUNT(*) AS cnt FROM store_sales, item WHERE ss_item_sk = i_item_sk AND ss_quantity BETWEEN 1 AND 3) a,
			(SELECT COUNT(*) AS cnt FROM store_sales, item WHERE ss_item_sk = i_item_sk AND ss_quantity BETWEEN 4 AND 6) b,
			(SELECT COUNT(*) AS cnt FROM store_sales, item WHERE ss_item_sk = i_item_sk AND ss_quantity BETWEEN 7 AND 8) c,
			(SELECT COUNT(*) AS cnt FROM store_sales, item WHERE ss_item_sk = i_item_sk AND ss_quantity BETWEEN 9 AND 10) d`},
		{Name: "q97", V31Only: true, SQL: `SELECT COUNT(*) FROM
			(SELECT ss_customer_sk AS sk FROM store_sales
			 INTERSECT SELECT sr_customer_sk AS sk FROM store_returns) both_channels`},
	}
}
