package analyze

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// applyWhere splits the WHERE clause into conjuncts: IN/EXISTS subquery
// predicates become semi or anti joins (decorrelated where needed), plain
// predicates become a Filter, and predicates that reference the parent
// query (inside a subquery) are set aside as correlation predicates.
func (b *builder) applyWhere(where sql.Expr) error {
	var plain []plan.Rex
	for _, conj := range splitAnd(where) {
		conj, not := stripNot(conj)
		switch x := conj.(type) {
		case *sql.InExpr:
			if x.Sub != nil {
				if err := b.applyQuantified(x.E, x.Sub, x.Not != not); err != nil {
					return err
				}
				continue
			}
		case *sql.ExistsExpr:
			if err := b.applyExists(x.Sub, x.Not != not); err != nil {
				return err
			}
			continue
		}
		if not {
			conj = &sql.UnaryExpr{Op: "NOT", E: conj}
		}
		r, err := b.resolveExpr(conj)
		if err != nil {
			return err
		}
		if hasOuterRef(r) {
			pred, err := classifyCorr(r)
			if err != nil {
				return err
			}
			b.corr = append(b.corr, pred)
			continue
		}
		plain = append(plain, r)
	}
	if cond := plan.AndAll(plain); cond != nil {
		b.rel = &plan.Filter{Input: b.rel, Cond: cond}
	}
	return nil
}

func splitAnd(e sql.Expr) []sql.Expr {
	if be, ok := e.(*sql.BinExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.L), splitAnd(be.R)...)
	}
	return []sql.Expr{e}
}

// stripNot unwraps a single leading NOT, reporting whether one was present.
func stripNot(e sql.Expr) (sql.Expr, bool) {
	if ue, ok := e.(*sql.UnaryExpr); ok && ue.Op == "NOT" {
		return ue.E, true
	}
	return e, false
}

// classifyCorr validates that a correlated predicate is a comparison with a
// pure-outer side and a pure-inner side.
func classifyCorr(r plan.Rex) (corrPred, error) {
	f, ok := r.(*plan.Func)
	if !ok || len(f.Args) != 2 {
		return corrPred{}, fmt.Errorf("analyze: unsupported correlated predicate %s", r.Digest())
	}
	switch f.Op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return corrPred{}, fmt.Errorf("analyze: unsupported correlated predicate operator %s", f.Op)
	}
	l, lOuter := f.Args[0], hasOuterRef(f.Args[0])
	rr, rOuter := f.Args[1], hasOuterRef(f.Args[1])
	if lOuter == rOuter {
		return corrPred{}, fmt.Errorf("analyze: correlated predicate must compare inner with outer columns")
	}
	op := f.Op
	inner, outer := l, rr
	if lOuter {
		inner, outer = rr, l
		op = flipOp(op)
	}
	if hasInnerRef(outer) {
		return corrPred{}, fmt.Errorf("analyze: mixed inner/outer side in correlated predicate")
	}
	return corrPred{op: op, inner: inner, outer: outer}, nil
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func hasInnerRef(e plan.Rex) bool {
	switch x := e.(type) {
	case *plan.ColRef:
		return true
	case *plan.Func:
		for _, a := range x.Args {
			if hasInnerRef(a) {
				return true
			}
		}
	}
	return false
}

// outerToCol converts outerRef leaves into ColRefs over the parent row.
func outerToCol(e plan.Rex) plan.Rex {
	switch x := e.(type) {
	case *outerRef:
		return &plan.ColRef{Idx: x.idx, T: x.t}
	case *plan.Func:
		args := make([]plan.Rex, len(x.Args))
		for i, a := range x.Args {
			args[i] = outerToCol(a)
		}
		return &plan.Func{Op: x.Op, Args: args, T: x.T}
	default:
		return e
	}
}

// buildSubquery analyzes a subquery with the current scope as its parent,
// returning its plan, output fields and decorrelated predicates.
func (b *builder) buildSubquery(sub *sql.SelectStmt) (plan.Rel, []plan.Field, []corrPred, error) {
	subScope := &scope{parent: b.sc, ctes: b.sc.ctes}
	var corr []corrPred
	rel, fields, err := b.a.buildSelect(sub, subScope, &corr)
	if err != nil {
		return nil, nil, nil, err
	}
	return rel, fields, corr, nil
}

// applyQuantified plans "probe [NOT] IN (subquery)" as a semi/anti join.
func (b *builder) applyQuantified(probe sql.Expr, sub *sql.SelectStmt, not bool) error {
	probeRex, err := b.resolveExpr(probe)
	if err != nil {
		return err
	}
	subRel, subFields, corr, err := b.buildSubquery(sub)
	if err != nil {
		return err
	}
	leftW := len(b.rel.Schema())
	conds := []plan.Rex{}
	eq, err := buildBinOp("=", probeRex, &plan.ColRef{Idx: leftW, T: subFields[0].T})
	if err != nil {
		return err
	}
	conds = append(conds, eq)
	for _, c := range corr {
		conds = append(conds, corrToJoinCond(c, leftW, subFields))
	}
	kind := plan.Semi
	if not {
		kind = plan.Anti
	}
	b.rel = &plan.Join{Kind: kind, Left: b.rel, Right: subRel, Cond: plan.AndAll(conds)}
	return nil
}

// applyExists plans [NOT] EXISTS (subquery) as a semi/anti join on the
// decorrelated predicates (an uncorrelated EXISTS joins on TRUE).
func (b *builder) applyExists(sub *sql.SelectStmt, not bool) error {
	subRel, subFields, corr, err := b.buildSubquery(sub)
	if err != nil {
		return err
	}
	leftW := len(b.rel.Schema())
	var conds []plan.Rex
	for _, c := range corr {
		conds = append(conds, corrToJoinCond(c, leftW, subFields))
	}
	cond := plan.AndAll(conds)
	if cond == nil {
		cond = plan.NewLiteral(types.NewBool(true))
	}
	kind := plan.Semi
	if not {
		kind = plan.Anti
	}
	b.rel = &plan.Join{Kind: kind, Left: b.rel, Right: subRel, Cond: cond}
	return nil
}

// resolveScalarSubquery plans a scalar subquery as a Single join (left
// outer with a runtime at-most-one-match guarantee) and returns the column
// reference to its value.
func (b *builder) resolveScalarSubquery(sub *sql.SelectStmt) (plan.Rex, error) {
	if b.aggScope != nil {
		return nil, fmt.Errorf("analyze: scalar subquery not supported in aggregated context")
	}
	subRel, subFields, corr, err := b.buildSubquery(sub)
	if err != nil {
		return nil, err
	}
	if len(subFields) == 0 {
		return nil, fmt.Errorf("analyze: scalar subquery has no columns")
	}
	leftW := len(b.rel.Schema())
	var conds []plan.Rex
	for _, c := range corr {
		conds = append(conds, corrToJoinCond(c, leftW, subFields))
	}
	cond := plan.AndAll(conds)
	if cond == nil {
		cond = plan.NewLiteral(types.NewBool(true))
	}
	b.rel = &plan.Join{Kind: plan.Single, Left: b.rel, Right: subRel, Cond: cond}
	return &plan.ColRef{Idx: leftW, T: subFields[0].T}, nil
}

// corrToJoinCond renders one decorrelated predicate as a join condition
// over the concatenated (parent ++ subquery) row.
func corrToJoinCond(c corrPred, leftW int, subFields []plan.Field) plan.Rex {
	innerRef := &plan.ColRef{Idx: leftW + c.innerOut, T: subFields[c.innerOut].T}
	return plan.NewFunc(c.op, types.TBool, innerRef, outerToCol(c.outer))
}
