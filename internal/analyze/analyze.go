// Package analyze performs semantic analysis: it turns a parsed SELECT into
// a logical plan (the stage labeled "Calcite logical plan" in paper Figure
// 2), resolving names against the Metastore, type-checking expressions,
// expanding stars, planning aggregation, grouping sets and window
// functions, and decorrelating subqueries into joins (§3.1's correlated
// subquery support).
package analyze

import (
	"fmt"
	"strings"

	"repro/internal/metastore"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// Analyzer converts ASTs into logical plans.
type Analyzer struct {
	ms *metastore.Metastore
	db string
	// metaTables marks tables whose scans must emit ACID system columns
	// (set by the MERGE planner).
	metaTables map[string]bool
}

// New creates an analyzer bound to a current database.
func New(ms *metastore.Metastore, currentDB string) *Analyzer {
	return &Analyzer{ms: ms, db: currentDB}
}

// ResolveTable finds the metastore table for a name, using the current
// database when unqualified.
func (a *Analyzer) ResolveTable(tn *sql.TableName) (*metastore.Table, error) {
	db := tn.DB
	if db == "" {
		db = a.db
	}
	return a.ms.GetTable(db, tn.Name)
}

// scope tracks the columns visible at one query level.
type scope struct {
	parent *scope
	fields []plan.Field
	ctes   map[string]*cteDef
}

type cteDef struct {
	rel    plan.Rel
	fields []plan.Field
}

func (s *scope) lookupCTE(name string) *cteDef {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.ctes != nil {
			if def, ok := sc.ctes[name]; ok {
				return def
			}
		}
	}
	return nil
}

// resolve finds an identifier in this scope. Returns (-1, false) when
// absent.
func (s *scope) resolve(qual, name string) (int, types.T, error) {
	found := -1
	var t types.T
	for i, f := range s.fields {
		if f.Name != name {
			continue
		}
		if qual != "" && f.Table != qual {
			continue
		}
		if found >= 0 {
			return -1, t, fmt.Errorf("analyze: ambiguous column %q", name)
		}
		found = i
		t = f.T
	}
	return found, t, nil
}

// outerRef marks a correlated reference to the parent query's row; the
// decorrelator replaces it with a join-side column.
type outerRef struct {
	idx int
	t   types.T
}

func (o *outerRef) Type() types.T  { return o.t }
func (o *outerRef) Digest() string { return fmt.Sprintf("outer($%d)", o.idx) }

func hasOuterRef(e plan.Rex) bool {
	switch x := e.(type) {
	case *outerRef:
		return true
	case *plan.Func:
		for _, a := range x.Args {
			if hasOuterRef(a) {
				return true
			}
		}
	}
	return false
}

// corrPred is one decorrelated predicate extracted from a subquery: a
// comparison between an expression over the subquery's own columns (inner)
// and an expression over the parent query's row (outer). The decorrelator
// hoists these into the join condition (paper §3.1 correlated subqueries).
type corrPred struct {
	op       string
	inner    plan.Rex // over the subquery FROM scope until remapped
	outer    plan.Rex // contains outerRefs into the parent scope
	innerOut int      // ordinal of the inner expr in the subquery output
}

// builder carries the state of one SELECT-core analysis.
type builder struct {
	a        *Analyzer
	sc       *scope   // current FROM scope
	rel      plan.Rel // current plan; scalar-subquery joins extend it
	corr     []corrPred
	aggScope *aggScope               // non-nil while resolving post-aggregation exprs
	winRefs  map[string]*plan.ColRef // window call key -> output column ref
}

// AnalyzeSelect converts a full SELECT statement into a logical plan.
func (a *Analyzer) AnalyzeSelect(sel *sql.SelectStmt) (plan.Rel, error) {
	rel, _, err := a.buildSelect(sel, &scope{}, nil)
	return rel, err
}

// buildSelect handles CTEs, the set-op body, ORDER BY and LIMIT. corrOut,
// when non-nil, receives decorrelated predicates for subquery callers.
func (a *Analyzer) buildSelect(sel *sql.SelectStmt, outer *scope, corrOut *[]corrPred) (plan.Rel, []plan.Field, error) {
	cur := outer
	if len(sel.With) > 0 {
		cteScope := &scope{parent: outer, ctes: map[string]*cteDef{}}
		for _, cte := range sel.With {
			rel, fields, err := a.buildSelect(cte.Select, cteScope, nil)
			if err != nil {
				return nil, nil, fmt.Errorf("analyze: in CTE %s: %v", cte.Name, err)
			}
			named := make([]plan.Field, len(fields))
			for i, f := range fields {
				named[i] = plan.Field{Table: cte.Name, Name: f.Name, T: f.T}
			}
			cteScope.ctes[cte.Name] = &cteDef{rel: rel, fields: named}
		}
		cur = cteScope
	}

	switch body := sel.Body.(type) {
	case *sql.SelectCore:
		return a.buildCore(body, cur, sel.OrderBy, sel.Limit, sel.Offset, corrOut)
	case *sql.SetOp:
		rel, fields, err := a.buildSetOp(body, cur)
		if err != nil {
			return nil, nil, err
		}
		// ORDER BY over a set-op result: aliases and positions only.
		if len(sel.OrderBy) > 0 {
			keys, err := setOpSortKeys(sel.OrderBy, fields)
			if err != nil {
				return nil, nil, err
			}
			rel = &plan.Sort{Input: rel, Keys: keys}
		}
		if sel.Limit >= 0 {
			rel = &plan.Limit{Input: rel, N: sel.Limit, Offset: sel.Offset}
		}
		return rel, fields, nil
	}
	return nil, nil, fmt.Errorf("analyze: empty query body")
}

func setOpSortKeys(items []sql.OrderItem, fields []plan.Field) ([]plan.SortKey, error) {
	var keys []plan.SortKey
	for _, it := range items {
		idx := -1
		switch e := it.Expr.(type) {
		case *sql.Lit:
			if e.Val.K == types.Int64 {
				idx = int(e.Val.I) - 1
			}
		case *sql.Ident:
			for i, f := range fields {
				if f.Name == e.Name {
					idx = i
					break
				}
			}
		}
		if idx < 0 || idx >= len(fields) {
			return nil, fmt.Errorf("analyze: ORDER BY over set operation must use output columns")
		}
		keys = append(keys, plan.SortKey{Col: idx, Desc: it.Desc, NullsFirst: nullsFirst(it)})
	}
	return keys, nil
}

func nullsFirst(it sql.OrderItem) bool {
	if it.NullsFirst != nil {
		return *it.NullsFirst
	}
	return !it.Desc // default: NULLS FIRST when ascending, LAST when descending
}

func (a *Analyzer) buildSetOp(op *sql.SetOp, outer *scope) (plan.Rel, []plan.Field, error) {
	build := func(q sql.QueryExpr) (plan.Rel, []plan.Field, error) {
		switch b := q.(type) {
		case *sql.SelectCore:
			return a.buildCore(b, outer, nil, -1, 0, nil)
		case *sql.SetOp:
			return a.buildSetOp(b, outer)
		}
		return nil, nil, fmt.Errorf("analyze: bad set-op operand")
	}
	lrel, lf, err := build(op.Left)
	if err != nil {
		return nil, nil, err
	}
	rrel, rf, err := build(op.Right)
	if err != nil {
		return nil, nil, err
	}
	if len(lf) != len(rf) {
		return nil, nil, fmt.Errorf("analyze: set operation arity mismatch: %d vs %d", len(lf), len(rf))
	}
	// Coerce both sides to common supertypes where kinds differ.
	outFields := make([]plan.Field, len(lf))
	var lexprs, rexprs []plan.Rex
	needL, needR := false, false
	for i := range lf {
		ct, ok := types.CommonSupertype(lf[i].T, rf[i].T)
		if !ok {
			return nil, nil, fmt.Errorf("analyze: set operation column %d type mismatch: %s vs %s", i+1, lf[i].T, rf[i].T)
		}
		outFields[i] = plan.Field{Name: lf[i].Name, T: ct}
		le := plan.Rex(&plan.ColRef{Idx: i, T: lf[i].T})
		re := plan.Rex(&plan.ColRef{Idx: i, T: rf[i].T})
		if !lf[i].T.Equal(ct) {
			le = plan.NewFunc("cast:"+ct.String(), ct, le)
			needL = true
		}
		if !rf[i].T.Equal(ct) {
			re = plan.NewFunc("cast:"+ct.String(), ct, re)
			needR = true
		}
		lexprs = append(lexprs, le)
		rexprs = append(rexprs, re)
	}
	if needL {
		lrel = &plan.Project{Input: lrel, Exprs: lexprs, Names: fieldNames(outFields)}
	}
	if needR {
		rrel = &plan.Project{Input: rrel, Exprs: rexprs, Names: fieldNames(outFields)}
	}
	var kind plan.SetOpKind
	switch op.Kind {
	case sql.SetUnion:
		kind = plan.Union
	case sql.SetIntersect:
		kind = plan.Intersect
	case sql.SetExcept:
		kind = plan.Except
	}
	return &plan.SetOp{Kind: kind, All: op.All, Left: lrel, Right: rrel}, outFields, nil
}

func fieldNames(fs []plan.Field) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

// buildFrom turns the FROM clause into a plan and a scope.
func (b *builder) buildFrom(tr sql.TableRef, outer *scope) (plan.Rel, []plan.Field, error) {
	switch t := tr.(type) {
	case nil:
		// SELECT without FROM: one empty row.
		return &plan.Values{Rows: [][]types.Datum{{}}}, nil, nil
	case *sql.TableName:
		if def := outer.lookupCTE(t.Name); def != nil && t.DB == "" {
			fields := def.fields
			if t.Alias != "" {
				renamed := make([]plan.Field, len(fields))
				for i, f := range fields {
					renamed[i] = plan.Field{Table: t.Alias, Name: f.Name, T: f.T}
				}
				fields = renamed
			}
			return def.rel, fields, nil
		}
		tbl, err := b.a.ResolveTable(t)
		if err != nil {
			return nil, nil, err
		}
		alias := t.Alias
		if alias == "" {
			alias = tbl.Name
		}
		sc := plan.NewScan(tbl, alias)
		if b.a.metaTables[tbl.FullName()] {
			sc.Meta = true
		}
		return sc, sc.Schema(), nil
	case *sql.SubqueryRef:
		rel, fields, err := b.a.buildSelect(t.Select, outer, nil)
		if err != nil {
			return nil, nil, err
		}
		named := make([]plan.Field, len(fields))
		for i, f := range fields {
			named[i] = plan.Field{Table: t.Alias, Name: f.Name, T: f.T}
		}
		return rel, named, nil
	case *sql.Join:
		lrel, lf, err := b.buildFrom(t.Left, outer)
		if err != nil {
			return nil, nil, err
		}
		rrel, rf, err := b.buildFrom(t.Right, outer)
		if err != nil {
			return nil, nil, err
		}
		combined := append(append([]plan.Field{}, lf...), rf...)
		var cond plan.Rex
		if t.On != nil {
			joinScope := &scope{parent: outer.parent, fields: combined, ctes: outer.ctes}
			jb := &builder{a: b.a, sc: joinScope}
			cond, err = jb.resolveExpr(t.On)
			if err != nil {
				return nil, nil, err
			}
			if hasOuterRef(cond) {
				return nil, nil, fmt.Errorf("analyze: correlated reference in JOIN ON is not supported")
			}
		}
		var kind plan.JoinKind
		switch t.Kind {
		case sql.JoinInner:
			kind = plan.Inner
		case sql.JoinLeft:
			kind = plan.Left
		case sql.JoinRight:
			kind = plan.Right
		case sql.JoinFull:
			kind = plan.Full
		case sql.JoinCross:
			kind = plan.Cross
		case sql.JoinSemi:
			kind = plan.Semi
		case sql.JoinAnti:
			kind = plan.Anti
		}
		j := &plan.Join{Kind: kind, Left: lrel, Right: rrel, Cond: cond}
		if kind == plan.Semi || kind == plan.Anti {
			return j, lf, nil
		}
		return j, combined, nil
	}
	return nil, nil, fmt.Errorf("analyze: unsupported table reference %T", tr)
}

// buildCore analyzes one SELECT core with optional outer ORDER BY/LIMIT.
// corrOut receives decorrelated predicates when this core is a subquery.
func (a *Analyzer) buildCore(core *sql.SelectCore, outer *scope, orderBy []sql.OrderItem, limit, offset int64, corrOut *[]corrPred) (plan.Rel, []plan.Field, error) {
	b := &builder{a: a}
	rel, fields, err := b.buildFrom(core.From, outer)
	if err != nil {
		return nil, nil, err
	}
	b.sc = &scope{parent: outer.parent, fields: fields, ctes: outer.ctes}
	if outer.ctes == nil {
		b.sc.parent = outer
	}
	b.rel = rel

	// WHERE: handle IN/EXISTS conjuncts as semi/anti joins, the rest as a
	// filter (scalar subqueries become Single joins while resolving).
	if core.Where != nil {
		if err := b.applyWhere(core.Where); err != nil {
			return nil, nil, err
		}
	}
	if len(b.corr) > 0 && corrOut == nil {
		return nil, nil, fmt.Errorf("analyze: correlated reference outside a subquery")
	}

	// Aggregation.
	aggCalls := collectAggCalls(core, orderBy)
	if len(core.GroupBy) > 0 || len(aggCalls) > 0 {
		if err := b.applyAggregate(core, aggCalls); err != nil {
			return nil, nil, err
		}
	}

	// Window functions.
	winCalls := collectWindowCalls(core, orderBy)
	if len(winCalls) > 0 {
		if err := b.applyWindow(winCalls); err != nil {
			return nil, nil, err
		}
	}

	// HAVING.
	if core.Having != nil {
		cond, err := b.resolveExpr(core.Having)
		if err != nil {
			return nil, nil, err
		}
		if !cond.Type().Equal(types.TBool) && cond.Type().Kind != types.Unknown {
			return nil, nil, fmt.Errorf("analyze: HAVING must be boolean")
		}
		b.rel = &plan.Filter{Input: b.rel, Cond: cond}
	}

	// Projection (star expansion).
	exprs, names, err := b.buildProjection(core)
	if err != nil {
		return nil, nil, err
	}
	visible := len(exprs)

	// Correlated predicates: expose the inner side as hidden output columns
	// so the parent can join on them.
	// (When aggregated, applyAggregate already rewrote each pred's inner
	// side as a reference to its hidden grouping column.)
	for i := range b.corr {
		inner := b.corr[i].inner
		idx := -1
		for j, pe := range exprs {
			if pe.Digest() == inner.Digest() {
				idx = j
				break
			}
		}
		if idx < 0 {
			idx = len(exprs)
			exprs = append(exprs, inner)
			names = append(names, fmt.Sprintf("__corr%d", i))
		}
		b.corr[i].innerOut = idx
	}

	// ORDER BY resolution: visible items by alias/position, otherwise any
	// expression over the pre-projection scope (Hive 3 supports ordering by
	// unselected columns); those become hidden projection columns.
	var keys []plan.SortKey
	if len(orderBy) > 0 {
		for _, it := range orderBy {
			idx := -1
			switch e := it.Expr.(type) {
			case *sql.Lit:
				if e.Val.K == types.Int64 {
					p := int(e.Val.I) - 1
					if p < 0 || p >= len(exprs) {
						return nil, nil, fmt.Errorf("analyze: ORDER BY position %d out of range", p+1)
					}
					idx = p
				}
			case *sql.Ident:
				if e.Qualifier == "" {
					for i, n := range names {
						if n == e.Name {
							idx = i
							break
						}
					}
				}
			}
			if idx < 0 {
				resolved, err := b.resolveExpr(it.Expr)
				if err != nil {
					return nil, nil, err
				}
				// Reuse an identical projection expression when present.
				for i, pe := range exprs {
					if pe.Digest() == resolved.Digest() {
						idx = i
						break
					}
				}
				if idx < 0 {
					idx = len(exprs)
					exprs = append(exprs, resolved)
					names = append(names, fmt.Sprintf("__sort%d", len(keys)))
				}
			}
			keys = append(keys, plan.SortKey{Col: idx, Desc: it.Desc, NullsFirst: nullsFirst(it)})
		}
	}

	if core.Distinct && len(b.corr) > 0 {
		return nil, nil, fmt.Errorf("analyze: DISTINCT in a correlated subquery is not supported")
	}

	b.rel = &plan.Project{Input: b.rel, Exprs: exprs, Names: names}
	outFields := b.rel.Schema()

	if core.Distinct {
		groups := make([]plan.Rex, visible)
		for i := 0; i < visible; i++ {
			groups[i] = &plan.ColRef{Idx: i, T: outFields[i].T}
		}
		b.rel = &plan.Aggregate{Input: b.rel, GroupBy: groups, Names: names[:visible]}
		// Sort keys beyond the visible columns are gone after DISTINCT.
		for _, k := range keys {
			if k.Col >= visible {
				return nil, nil, fmt.Errorf("analyze: ORDER BY column not in DISTINCT select list")
			}
		}
	}

	if len(keys) > 0 {
		b.rel = &plan.Sort{Input: b.rel, Keys: keys}
	}
	if limit >= 0 {
		b.rel = &plan.Limit{Input: b.rel, N: limit, Offset: offset}
	}
	// Trim hidden (sort-only and correlation) columns unless a subquery
	// caller needs the correlation columns in the output.
	keep := visible
	if len(b.corr) > 0 {
		for _, c := range b.corr {
			if c.innerOut >= keep {
				keep = c.innerOut + 1
			}
		}
	}
	if keep < len(exprs) && !core.Distinct {
		trim := make([]plan.Rex, keep)
		in := b.rel.Schema()
		for i := 0; i < keep; i++ {
			trim[i] = &plan.ColRef{Idx: i, T: in[i].T}
		}
		b.rel = &plan.Project{Input: b.rel, Exprs: trim, Names: names[:keep]}
	}
	if corrOut != nil {
		*corrOut = append(*corrOut, b.corr...)
	}
	return b.rel, b.rel.Schema(), nil
}

// starFields lists the scope fields star-expanded for a qualifier. System
// and hidden columns (double-underscore prefix) are excluded, except when
// the MERGE planner explicitly requested row identifiers.
func (b *builder) starFields(qual string) []int {
	var out []int
	for i, f := range b.sc.fields {
		if strings.HasPrefix(f.Name, "__") && b.a.metaTables == nil {
			continue
		}
		if qual == "" || f.Table == qual {
			out = append(out, i)
		}
	}
	return out
}

func (b *builder) buildProjection(core *sql.SelectCore) ([]plan.Rex, []string, error) {
	var exprs []plan.Rex
	var names []string
	for _, it := range core.Items {
		switch {
		case it.Star, it.TableStar != "":
			qual := it.TableStar
			cols := b.starFields(qual)
			if len(cols) == 0 {
				return nil, nil, fmt.Errorf("analyze: %s.* matches no columns", qual)
			}
			if b.aggScope != nil {
				return nil, nil, fmt.Errorf("analyze: * not allowed with GROUP BY")
			}
			for _, i := range cols {
				exprs = append(exprs, &plan.ColRef{Idx: i, T: b.sc.fields[i].T})
				names = append(names, b.sc.fields[i].Name)
			}
		default:
			e, err := b.resolveExpr(it.Expr)
			if err != nil {
				return nil, nil, err
			}
			exprs = append(exprs, e)
			names = append(names, itemName(it))
		}
	}
	return exprs, names, nil
}

func itemName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if id, ok := it.Expr.(*sql.Ident); ok {
		return id.Name
	}
	return ""
}
