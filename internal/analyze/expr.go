package analyze

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// aggScope is active while resolving expressions above an Aggregate: select
// items, HAVING and ORDER BY must be rewritten in terms of the aggregate's
// output columns.
type aggScope struct {
	groupDigests map[string]int // FormatExpr(group expr AST) -> output col
	aggDigests   map[string]int // FormatExpr(agg call AST) -> output col
	fields       []plan.Field
	groupingID   int // output ordinal of __grouping_id, -1 if none
	groupExprs   []sql.Expr
}

// resolveExpr converts an AST expression into a Rex over the current scope.
func (b *builder) resolveExpr(e sql.Expr) (plan.Rex, error) {
	switch x := e.(type) {
	case *sql.Lit:
		return plan.NewLiteral(x.Val), nil

	case *sql.Param:
		return &plan.Param{Ord: x.Ord, T: x.T}, nil

	case *sql.Ident:
		return b.resolveIdent(x)

	case *sql.BinExpr:
		if b.aggScope != nil {
			if r, ok := b.aggLookup(e); ok {
				return r, nil
			}
		}
		l, err := b.resolveExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := b.resolveExpr(x.R)
		if err != nil {
			return nil, err
		}
		return buildBinOp(x.Op, l, r)

	case *sql.UnaryExpr:
		inner, err := b.resolveExpr(x.E)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return plan.NewFunc("not", types.TBool, inner), nil
		}
		return plan.NewFunc("neg", inner.Type(), inner), nil

	case *sql.Call:
		return b.resolveCall(x)

	case *sql.CaseExpr:
		return b.resolveCase(x)

	case *sql.CastExpr:
		inner, err := b.resolveExpr(x.E)
		if err != nil {
			return nil, err
		}
		return plan.NewFunc("cast:"+x.Type.String(), x.Type, inner), nil

	case *sql.IsNullExpr:
		inner, err := b.resolveExpr(x.E)
		if err != nil {
			return nil, err
		}
		op := "isnull"
		if x.Not {
			op = "isnotnull"
		}
		return plan.NewFunc(op, types.TBool, inner), nil

	case *sql.BetweenExpr:
		v, err := b.resolveExpr(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := b.resolveExpr(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := b.resolveExpr(x.Hi)
		if err != nil {
			return nil, err
		}
		ge, err := buildBinOp(">=", v, lo)
		if err != nil {
			return nil, err
		}
		le, err := buildBinOp("<=", v, hi)
		if err != nil {
			return nil, err
		}
		out := plan.NewFunc("and", types.TBool, ge, le)
		if x.Not {
			return plan.NewFunc("not", types.TBool, out), nil
		}
		return out, nil

	case *sql.LikeExpr:
		v, err := b.resolveExpr(x.E)
		if err != nil {
			return nil, err
		}
		pat, err := b.resolveExpr(x.Pattern)
		if err != nil {
			return nil, err
		}
		out := plan.NewFunc("like", types.TBool, v, pat)
		if x.Not {
			return plan.NewFunc("not", types.TBool, out), nil
		}
		return out, nil

	case *sql.InExpr:
		if x.Sub != nil {
			return nil, fmt.Errorf("analyze: IN subquery only supported as a top-level WHERE conjunct")
		}
		v, err := b.resolveExpr(x.E)
		if err != nil {
			return nil, err
		}
		args := []plan.Rex{v}
		for _, item := range x.List {
			r, err := b.resolveExpr(item)
			if err != nil {
				return nil, err
			}
			args = append(args, r)
		}
		out := plan.NewFunc("in", types.TBool, args...)
		if x.Not {
			return plan.NewFunc("not", types.TBool, out), nil
		}
		return out, nil

	case *sql.ExistsExpr:
		return nil, fmt.Errorf("analyze: EXISTS only supported as a top-level WHERE conjunct")

	case *sql.SubqueryExpr:
		return b.resolveScalarSubquery(x.Sub)

	case *sql.IntervalExpr:
		val, err := b.resolveExpr(x.Value)
		if err != nil {
			return nil, err
		}
		lit, ok := val.(*plan.Literal)
		if !ok {
			return nil, fmt.Errorf("analyze: INTERVAL requires a literal")
		}
		n, err := types.Cast(lit.Val, types.TBigint)
		if err != nil {
			return nil, err
		}
		var us int64
		switch x.Unit {
		case "DAY":
			us = n.I * 86400 * 1e6
		case "HOUR":
			us = n.I * 3600 * 1e6
		case "MINUTE":
			us = n.I * 60 * 1e6
		case "SECOND":
			us = n.I * 1e6
		case "MONTH":
			us = n.I * 30 * 86400 * 1e6 // calendar-approximate
		case "YEAR":
			us = n.I * 365 * 86400 * 1e6
		default:
			return nil, fmt.Errorf("analyze: unsupported interval unit %s", x.Unit)
		}
		return plan.NewLiteral(types.NewInterval(us)), nil

	case *sql.ExtractExpr:
		from, err := b.resolveExpr(x.From)
		if err != nil {
			return nil, err
		}
		return plan.NewFunc("extract:"+strings.ToLower(x.Field), types.TBigint, from), nil
	}
	return nil, fmt.Errorf("analyze: unsupported expression %T", e)
}

func (b *builder) resolveIdent(id *sql.Ident) (plan.Rex, error) {
	if b.aggScope != nil {
		if r, ok := b.aggLookup(id); ok {
			return r, nil
		}
		return nil, fmt.Errorf("analyze: column %s is not in GROUP BY", id)
	}
	idx, t, err := b.sc.resolve(id.Qualifier, id.Name)
	if err != nil {
		return nil, err
	}
	if idx >= 0 {
		return &plan.ColRef{Idx: idx, T: t}, nil
	}
	// Try outer scopes: correlated reference.
	depth := 0
	for sc := b.sc.parent; sc != nil; sc = sc.parent {
		oidx, ot, err := sc.resolve(id.Qualifier, id.Name)
		if err != nil {
			return nil, err
		}
		if oidx >= 0 {
			if depth > 0 {
				return nil, fmt.Errorf("analyze: correlation deeper than one level for %s", id)
			}
			return &outerRef{idx: oidx, t: ot}, nil
		}
		if len(sc.fields) > 0 {
			depth++
		}
	}
	return nil, fmt.Errorf("analyze: unknown column %s", id)
}

// aggLookup matches an AST expression against the aggregate output.
func (b *builder) aggLookup(e sql.Expr) (plan.Rex, bool) {
	key := sql.FormatExpr(e)
	if i, ok := b.aggScope.groupDigests[key]; ok {
		return &plan.ColRef{Idx: i, T: b.aggScope.fields[i].T}, true
	}
	if i, ok := b.aggScope.aggDigests[key]; ok {
		return &plan.ColRef{Idx: i, T: b.aggScope.fields[i].T}, true
	}
	return nil, false
}

func buildBinOp(op string, l, r plan.Rex) (plan.Rex, error) {
	switch op {
	case "AND", "OR":
		return plan.NewFunc(strings.ToLower(op), types.TBool, l, r), nil
	case "=", "<>", "<", "<=", ">", ">=":
		if _, ok := types.CommonSupertype(l.Type(), r.Type()); !ok {
			return nil, fmt.Errorf("analyze: cannot compare %s with %s", l.Type(), r.Type())
		}
		return plan.NewFunc(op, types.TBool, l, r), nil
	case "||":
		return plan.NewFunc("concat", types.TString, l, r), nil
	case "+", "-", "*", "/", "%":
		lt, rt := l.Type(), r.Type()
		// Temporal arithmetic.
		if (lt.Kind == types.Date || lt.Kind == types.Timestamp) &&
			(rt.Kind == types.Interval || rt.Numeric()) {
			return plan.NewFunc(op, lt, l, r), nil
		}
		if lt.Kind == types.Interval && (rt.Kind == types.Date || rt.Kind == types.Timestamp) {
			return plan.NewFunc(op, rt, l, r), nil
		}
		ct, ok := types.CommonSupertype(lt, rt)
		if !ok {
			return nil, fmt.Errorf("analyze: bad operands for %s: %s, %s", op, lt, rt)
		}
		if op == "/" {
			ct = types.TDouble
		}
		if op == "*" && ct.Kind == types.Decimal {
			ct = types.TDecimal(ct.Precision, scaleOf(lt)+scaleOf(rt))
		}
		return plan.NewFunc(op, ct, l, r), nil
	}
	return nil, fmt.Errorf("analyze: unknown operator %q", op)
}

func scaleOf(t types.T) int {
	if t.Kind == types.Decimal {
		return t.Scale
	}
	return 0
}

func (b *builder) resolveCase(x *sql.CaseExpr) (plan.Rex, error) {
	// Normalize "CASE op WHEN v" into "CASE WHEN op = v".
	var args []plan.Rex
	var outT types.T
	first := true
	for _, w := range x.Whens {
		var cond plan.Rex
		var err error
		if x.Operand != nil {
			opnd, err := b.resolveExpr(x.Operand)
			if err != nil {
				return nil, err
			}
			v, err := b.resolveExpr(w.Cond)
			if err != nil {
				return nil, err
			}
			cond, err = buildBinOp("=", opnd, v)
			if err != nil {
				return nil, err
			}
		} else {
			cond, err = b.resolveExpr(w.Cond)
			if err != nil {
				return nil, err
			}
		}
		then, err := b.resolveExpr(w.Then)
		if err != nil {
			return nil, err
		}
		if first {
			outT = then.Type()
			first = false
		} else if ct, ok := types.CommonSupertype(outT, then.Type()); ok {
			outT = ct
		}
		args = append(args, cond, then)
	}
	if x.Else != nil {
		els, err := b.resolveExpr(x.Else)
		if err != nil {
			return nil, err
		}
		if ct, ok := types.CommonSupertype(outT, els.Type()); ok {
			outT = ct
		}
		args = append(args, els)
	}
	return plan.NewFunc("case", outT, args...), nil
}

// aggFuncs are the supported aggregate functions.
var aggFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// windowOnlyFuncs must carry an OVER clause.
var windowOnlyFuncs = map[string]bool{
	"row_number": true, "rank": true, "dense_rank": true,
}

func (b *builder) resolveCall(x *sql.Call) (plan.Rex, error) {
	name := strings.ToLower(x.Name)
	if x.Over != nil || windowOnlyFuncs[name] {
		// Window calls are planned by applyWindow before projection
		// resolution; a miss here means the call sits in an unsupported
		// position (e.g. WHERE).
		if r, ok := b.winLookup(x); ok {
			return r, nil
		}
		return nil, fmt.Errorf("analyze: window function %s used in unsupported position", name)
	}
	if aggFuncs[name] {
		if b.aggScope == nil {
			return nil, fmt.Errorf("analyze: aggregate %s outside GROUP BY context", name)
		}
		if r, ok := b.aggLookup(x); ok {
			return r, nil
		}
		return nil, fmt.Errorf("analyze: aggregate %s not collected", name)
	}
	if name == "grouping" {
		return b.resolveGrouping(x)
	}
	var args []plan.Rex
	for _, a := range x.Args {
		r, err := b.resolveExpr(a)
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	return buildScalarCall(name, args)
}

// buildScalarCall type-checks the built-in scalar functions.
func buildScalarCall(name string, args []plan.Rex) (plan.Rex, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("analyze: %s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "abs", "floor", "ceil", "ceiling":
		if err := arity(1); err != nil {
			return nil, err
		}
		t := args[0].Type()
		if name != "abs" {
			t = types.TBigint
		}
		return plan.NewFunc(name, t, args...), nil
	case "round":
		if len(args) != 1 && len(args) != 2 {
			return nil, fmt.Errorf("analyze: round expects 1 or 2 arguments")
		}
		return plan.NewFunc("round", args[0].Type(), args...), nil
	case "substr", "substring":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("analyze: substr expects 2 or 3 arguments")
		}
		return plan.NewFunc("substr", types.TString, args...), nil
	case "upper", "lower", "trim":
		if err := arity(1); err != nil {
			return nil, err
		}
		return plan.NewFunc(name, types.TString, args...), nil
	case "length":
		if err := arity(1); err != nil {
			return nil, err
		}
		return plan.NewFunc("length", types.TBigint, args...), nil
	case "concat":
		if len(args) < 1 {
			return nil, fmt.Errorf("analyze: concat needs arguments")
		}
		return plan.NewFunc("concat", types.TString, args...), nil
	case "coalesce":
		if len(args) < 1 {
			return nil, fmt.Errorf("analyze: coalesce needs arguments")
		}
		t := args[0].Type()
		for _, a := range args[1:] {
			if ct, ok := types.CommonSupertype(t, a.Type()); ok {
				t = ct
			}
		}
		return plan.NewFunc("coalesce", t, args...), nil
	case "nullif":
		if err := arity(2); err != nil {
			return nil, err
		}
		return plan.NewFunc("nullif", args[0].Type(), args...), nil
	case "if":
		if err := arity(3); err != nil {
			return nil, err
		}
		t, ok := types.CommonSupertype(args[1].Type(), args[2].Type())
		if !ok {
			t = args[1].Type()
		}
		return plan.NewFunc("if", t, args...), nil
	case "year", "month", "day", "quarter", "hour":
		if err := arity(1); err != nil {
			return nil, err
		}
		return plan.NewFunc("extract:"+name, types.TBigint, args...), nil
	case "rand":
		return plan.NewFunc("rand", types.TDouble, args...), nil
	case "current_date":
		return plan.NewFunc("current_date", types.TDate), nil
	case "current_timestamp":
		return plan.NewFunc("current_timestamp", types.TTimestamp), nil
	}
	return nil, fmt.Errorf("analyze: unknown function %s", name)
}

func (b *builder) resolveGrouping(x *sql.Call) (plan.Rex, error) {
	if b.aggScope == nil || b.aggScope.groupingID < 0 {
		return nil, fmt.Errorf("analyze: GROUPING() requires GROUPING SETS")
	}
	if len(x.Args) != 1 {
		return nil, fmt.Errorf("analyze: GROUPING expects one argument")
	}
	key := sql.FormatExpr(x.Args[0])
	pos := -1
	for i, g := range b.aggScope.groupExprs {
		if sql.FormatExpr(g) == key {
			pos = i
			break
		}
	}
	if pos < 0 {
		return nil, fmt.Errorf("analyze: GROUPING argument not a grouping column")
	}
	gid := &plan.ColRef{Idx: b.aggScope.groupingID, T: types.TBigint}
	return plan.NewFunc("grouping", types.TBigint, gid, plan.NewLiteral(types.NewBigint(int64(pos)))), nil
}
