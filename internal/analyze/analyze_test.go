package analyze

import (
	"strings"
	"testing"

	"repro/internal/dfs"
	"repro/internal/metastore"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

func testCatalog(t *testing.T) *metastore.Metastore {
	t.Helper()
	ms := metastore.New(dfs.New(), "/wh")
	tables := []*metastore.Table{
		{
			DB: "default", Name: "store_sales",
			Cols: []metastore.Column{
				{Name: "ss_item_sk", Type: types.TBigint},
				{Name: "ss_customer_sk", Type: types.TBigint},
				{Name: "ss_ticket_number", Type: types.TBigint},
				{Name: "ss_quantity", Type: types.TInt},
				{Name: "ss_sales_price", Type: types.TDecimal(7, 2)},
			},
			PartKeys: []metastore.Column{{Name: "ss_sold_date_sk", Type: types.TInt}},
		},
		{
			DB: "default", Name: "item",
			Cols: []metastore.Column{
				{Name: "i_item_sk", Type: types.TBigint},
				{Name: "i_category", Type: types.TString},
				{Name: "i_price", Type: types.TDecimal(7, 2)},
			},
			Constraints: metastore.Constraints{PrimaryKey: []string{"i_item_sk"}},
		},
		{
			DB: "default", Name: "date_dim",
			Cols: []metastore.Column{
				{Name: "d_date_sk", Type: types.TBigint},
				{Name: "d_year", Type: types.TInt},
				{Name: "d_moy", Type: types.TInt},
				{Name: "d_dom", Type: types.TInt},
			},
		},
	}
	for _, tbl := range tables {
		if err := ms.CreateTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return ms
}

func analyzeQ(t *testing.T, q string) plan.Rel {
	t.Helper()
	ms := testCatalog(t)
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rel, err := New(ms, "default").AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatalf("analyze %q: %v", q, err)
	}
	return rel
}

func analyzeErr(t *testing.T, q string) error {
	t.Helper()
	ms := testCatalog(t)
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = New(ms, "default").AnalyzeSelect(st.(*sql.SelectStmt))
	if err == nil {
		t.Fatalf("analyze %q: expected error", q)
	}
	return err
}

func TestSimpleProjection(t *testing.T) {
	rel := analyzeQ(t, "SELECT ss_item_sk, ss_sales_price * 2 AS doubled FROM store_sales")
	fields := rel.Schema()
	if len(fields) != 2 || fields[0].Name != "ss_item_sk" || fields[1].Name != "doubled" {
		t.Errorf("fields: %+v", fields)
	}
	if fields[1].T.Kind != types.Decimal {
		t.Errorf("doubled type: %s", fields[1].T)
	}
}

func TestStarExpansion(t *testing.T) {
	rel := analyzeQ(t, "SELECT * FROM item")
	if len(rel.Schema()) != 3 {
		t.Errorf("star fields: %+v", rel.Schema())
	}
	rel = analyzeQ(t, "SELECT ss.*, i_category FROM store_sales ss JOIN item ON ss_item_sk = i_item_sk")
	if len(rel.Schema()) != 7 { // 6 store_sales cols (incl part key) + category
		t.Errorf("qualified star fields: %d %+v", len(rel.Schema()), rel.Schema())
	}
}

func TestUnknownColumnAndAmbiguity(t *testing.T) {
	analyzeErr(t, "SELECT nonexistent FROM item")
	// Both tables could have matching names after self join.
	analyzeErr(t, "SELECT i_item_sk FROM item a JOIN item b ON a.i_item_sk = b.i_item_sk")
}

func TestAggregatePlanning(t *testing.T) {
	rel := analyzeQ(t, `SELECT d_year, SUM(ss_sales_price) AS sum_sales, COUNT(*) AS cnt
		FROM store_sales, date_dim
		WHERE ss_sold_date_sk = d_date_sk
		GROUP BY d_year
		HAVING SUM(ss_sales_price) > 100
		ORDER BY sum_sales DESC`)
	fields := rel.Schema()
	if len(fields) != 3 || fields[1].Name != "sum_sales" {
		t.Fatalf("fields: %+v", fields)
	}
	// Expect Sort above Filter above Aggregate somewhere in the tree.
	s := plan.Explain(rel)
	for _, want := range []string{"Sort", "Filter", "Aggregate", "Join"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan missing %s:\n%s", want, s)
		}
	}
}

func TestGroupByPositional(t *testing.T) {
	rel := analyzeQ(t, "SELECT d_year, COUNT(*) FROM date_dim GROUP BY 1")
	if rel.Schema()[0].Name != "d_year" {
		t.Errorf("positional group: %+v", rel.Schema())
	}
}

func TestNonGroupedColumnRejected(t *testing.T) {
	err := analyzeErr(t, "SELECT d_moy, COUNT(*) FROM date_dim GROUP BY d_year")
	if !strings.Contains(err.Error(), "GROUP BY") {
		t.Errorf("error: %v", err)
	}
}

func TestGroupingSets(t *testing.T) {
	rel := analyzeQ(t, `SELECT d_year, d_moy, SUM(d_dom) FROM date_dim
		GROUP BY GROUPING SETS ((d_year, d_moy), (d_year), ())`)
	var agg *plan.Aggregate
	var find func(r plan.Rel)
	find = func(r plan.Rel) {
		if a, ok := r.(*plan.Aggregate); ok {
			agg = a
		}
		for _, c := range r.Children() {
			find(c)
		}
	}
	find(rel)
	if agg == nil || len(agg.GroupingSets) != 3 {
		t.Fatalf("agg: %+v", agg)
	}
	// Schema of aggregate includes __grouping_id.
	last := agg.Schema()[len(agg.Schema())-1]
	if last.Name != "__grouping_id" {
		t.Errorf("grouping id col: %+v", last)
	}
}

func TestINSubqueryBecomesSemiJoin(t *testing.T) {
	rel := analyzeQ(t, `SELECT ss_item_sk FROM store_sales
		WHERE ss_item_sk IN (SELECT i_item_sk FROM item WHERE i_category = 'Sports')`)
	s := plan.Explain(rel)
	if !strings.Contains(s, "Join[semi]") {
		t.Errorf("expected semi join:\n%s", s)
	}
	rel = analyzeQ(t, `SELECT ss_item_sk FROM store_sales
		WHERE ss_item_sk NOT IN (SELECT i_item_sk FROM item)`)
	s = plan.Explain(rel)
	if !strings.Contains(s, "Join[anti]") {
		t.Errorf("expected anti join:\n%s", s)
	}
}

func TestCorrelatedExists(t *testing.T) {
	rel := analyzeQ(t, `SELECT i_category FROM item
		WHERE EXISTS (SELECT 1 FROM store_sales WHERE ss_item_sk = i_item_sk)`)
	s := plan.Explain(rel)
	if !strings.Contains(s, "Join[semi]") {
		t.Errorf("expected semi join:\n%s", s)
	}
}

func TestCorrelatedScalarSubqueryWithAggregate(t *testing.T) {
	rel := analyzeQ(t, `SELECT i_item_sk FROM item
		WHERE i_price > (SELECT AVG(ss_sales_price) FROM store_sales WHERE ss_item_sk = i_item_sk)`)
	s := plan.Explain(rel)
	if !strings.Contains(s, "Join[single]") || !strings.Contains(s, "Aggregate") {
		t.Errorf("expected single join over aggregate:\n%s", s)
	}
}

func TestUncorrelatedScalarSubquery(t *testing.T) {
	rel := analyzeQ(t, "SELECT i_item_sk FROM item WHERE i_price > (SELECT AVG(i_price) FROM item)")
	s := plan.Explain(rel)
	if !strings.Contains(s, "Join[single]") {
		t.Errorf("expected single join:\n%s", s)
	}
}

func TestSetOpTypeCoercion(t *testing.T) {
	rel := analyzeQ(t, "SELECT ss_quantity FROM store_sales UNION ALL SELECT ss_sales_price FROM store_sales")
	f := rel.Schema()
	if f[0].T.Kind != types.Decimal {
		t.Errorf("coerced type: %s", f[0].T)
	}
	analyzeErr(t, "SELECT ss_item_sk FROM store_sales UNION SELECT i_item_sk, i_category FROM item")
}

func TestWindowFunctions(t *testing.T) {
	rel := analyzeQ(t, `SELECT i_category,
		rank() OVER (PARTITION BY i_category ORDER BY i_price DESC) AS rnk
		FROM item`)
	s := plan.Explain(rel)
	if !strings.Contains(s, "Window") {
		t.Errorf("expected window node:\n%s", s)
	}
	if rel.Schema()[1].Name != "rnk" || rel.Schema()[1].T.Kind != types.Int64 {
		t.Errorf("window field: %+v", rel.Schema()[1])
	}
}

func TestWindowOverAggregate(t *testing.T) {
	rel := analyzeQ(t, `SELECT d_year, SUM(d_dom) AS s,
		rank() OVER (ORDER BY SUM(d_dom) DESC) AS rnk
		FROM date_dim GROUP BY d_year`)
	s := plan.Explain(rel)
	if !strings.Contains(s, "Window") || !strings.Contains(s, "Aggregate") {
		t.Errorf("plan:\n%s", s)
	}
}

func TestOrderByUnselectedColumn(t *testing.T) {
	// Hive 3 supports ORDER BY on columns missing from the projection.
	rel := analyzeQ(t, "SELECT i_category FROM item ORDER BY i_price")
	if len(rel.Schema()) != 1 {
		t.Errorf("hidden sort column leaked: %+v", rel.Schema())
	}
	s := plan.Explain(rel)
	if !strings.Contains(s, "Sort") {
		t.Errorf("expected sort:\n%s", s)
	}
}

func TestDistinct(t *testing.T) {
	rel := analyzeQ(t, "SELECT DISTINCT i_category FROM item")
	s := plan.Explain(rel)
	if !strings.Contains(s, "Aggregate") {
		t.Errorf("distinct should aggregate:\n%s", s)
	}
}

func TestCTEReuse(t *testing.T) {
	rel := analyzeQ(t, `WITH sales AS (SELECT ss_item_sk, ss_sales_price FROM store_sales)
		SELECT a.ss_item_sk FROM sales a JOIN sales b ON a.ss_item_sk = b.ss_item_sk`)
	if rel == nil {
		t.Fatal("nil plan")
	}
}

func TestCurrentDatabaseResolution(t *testing.T) {
	ms := testCatalog(t)
	ms.CreateDatabase("other")
	ms.CreateTable(&metastore.Table{DB: "other", Name: "t2", Cols: []metastore.Column{{Name: "x", Type: types.TInt}}})
	st, _ := sql.Parse("SELECT x FROM other.t2")
	if _, err := New(ms, "default").AnalyzeSelect(st.(*sql.SelectStmt)); err != nil {
		t.Errorf("qualified table: %v", err)
	}
	st, _ = sql.Parse("SELECT x FROM t2")
	if _, err := New(ms, "default").AnalyzeSelect(st.(*sql.SelectStmt)); err == nil {
		t.Error("unqualified t2 should not resolve from default")
	}
}

func TestIntervalArithmetic(t *testing.T) {
	rel := analyzeQ(t, "SELECT CAST('2018-01-01' AS date) + INTERVAL 30 DAYS FROM item")
	if rel.Schema()[0].T.Kind != types.Date {
		t.Errorf("date+interval type: %s", rel.Schema()[0].T)
	}
}

func TestExtractAndCase(t *testing.T) {
	rel := analyzeQ(t, `SELECT CASE WHEN d_year > 2000 THEN 'new' ELSE 'old' END,
		EXTRACT(year FROM CAST('2018-03-04' AS date)) FROM date_dim`)
	f := rel.Schema()
	if f[0].T.Kind != types.String || f[1].T.Kind != types.Int64 {
		t.Errorf("types: %+v", f)
	}
}

func TestTypeMismatchRejected(t *testing.T) {
	analyzeErr(t, "SELECT 1 FROM item WHERE i_category + 1 = TRUE")
}
