package analyze

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

// walkExprs visits every expression in a select core (and outer ORDER BY)
// that is evaluated at this query level — it does not descend into
// subqueries, whose aggregates belong to the subquery itself.
func walkExprs(core *sql.SelectCore, orderBy []sql.OrderItem, fn func(sql.Expr)) {
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		if e == nil {
			return
		}
		fn(e)
		switch x := e.(type) {
		case *sql.BinExpr:
			walk(x.L)
			walk(x.R)
		case *sql.UnaryExpr:
			walk(x.E)
		case *sql.Call:
			for _, a := range x.Args {
				walk(a)
			}
			if x.Over != nil {
				for _, p := range x.Over.PartitionBy {
					walk(p)
				}
				for _, o := range x.Over.OrderBy {
					walk(o.Expr)
				}
			}
		case *sql.CaseExpr:
			walk(x.Operand)
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(x.Else)
		case *sql.CastExpr:
			walk(x.E)
		case *sql.BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *sql.LikeExpr:
			walk(x.E)
			walk(x.Pattern)
		case *sql.IsNullExpr:
			walk(x.E)
		case *sql.InExpr:
			walk(x.E)
			for _, v := range x.List {
				walk(v)
			}
		case *sql.IntervalExpr:
			walk(x.Value)
		case *sql.ExtractExpr:
			walk(x.From)
		}
	}
	for _, it := range core.Items {
		walk(it.Expr)
	}
	walk(core.Having)
	for _, o := range orderBy {
		walk(o.Expr)
	}
}

// collectAggCalls finds the distinct aggregate calls evaluated at this
// level (excluding windowed ones).
func collectAggCalls(core *sql.SelectCore, orderBy []sql.OrderItem) []*sql.Call {
	seen := map[string]bool{}
	var out []*sql.Call
	walkExprs(core, orderBy, func(e sql.Expr) {
		c, ok := e.(*sql.Call)
		if !ok || c.Over != nil || !aggFuncs[strings.ToLower(c.Name)] {
			return
		}
		key := sql.FormatExpr(c)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	})
	return out
}

// collectWindowCalls finds the distinct window function calls.
func collectWindowCalls(core *sql.SelectCore, orderBy []sql.OrderItem) []*sql.Call {
	seen := map[string]bool{}
	var out []*sql.Call
	walkExprs(core, orderBy, func(e sql.Expr) {
		c, ok := e.(*sql.Call)
		if !ok || c.Over == nil {
			return
		}
		key := windowKey(c)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	})
	return out
}

// windowKey distinguishes calls by both function and window specification.
func windowKey(c *sql.Call) string {
	var b strings.Builder
	b.WriteString(sql.FormatExpr(c))
	b.WriteString("|p:")
	for _, p := range c.Over.PartitionBy {
		b.WriteString(sql.FormatExpr(p))
		b.WriteByte(',')
	}
	b.WriteString("|o:")
	for _, o := range c.Over.OrderBy {
		b.WriteString(sql.FormatExpr(o.Expr))
		if o.Desc {
			b.WriteString(" desc")
		}
		b.WriteByte(',')
	}
	return b.String()
}

func aggResultType(fn string, arg plan.Rex, distinct bool) (types.T, error) {
	switch fn {
	case "count":
		return types.TBigint, nil
	case "avg":
		return types.TDouble, nil
	case "sum":
		switch arg.Type().Kind {
		case types.Float64:
			return types.TDouble, nil
		case types.Decimal:
			return types.TDecimal(38, arg.Type().Scale), nil
		case types.Int32, types.Int64, types.Boolean:
			return types.TBigint, nil
		}
		return types.TUnknown, fmt.Errorf("analyze: sum over non-numeric %s", arg.Type())
	case "min", "max":
		return arg.Type(), nil
	}
	return types.TUnknown, fmt.Errorf("analyze: unknown aggregate %s", fn)
}

// applyAggregate plans GROUP BY / grouping sets / aggregate functions and
// switches the builder into the aggregated scope.
func (b *builder) applyAggregate(core *sql.SelectCore, calls []*sql.Call) error {
	// Positional GROUP BY entries refer to select items.
	var groupASTs []sql.Expr
	for _, g := range core.GroupBy {
		if lit, ok := g.(*sql.Lit); ok && lit.Val.K == types.Int64 {
			p := int(lit.Val.I) - 1
			if p < 0 || p >= len(core.Items) || core.Items[p].Star || core.Items[p].TableStar != "" {
				return fmt.Errorf("analyze: GROUP BY position %d out of range", p+1)
			}
			groupASTs = append(groupASTs, core.Items[p].Expr)
			continue
		}
		groupASTs = append(groupASTs, g)
	}

	var gRex []plan.Rex
	var gFields []plan.Field
	var names []string
	for _, ast := range groupASTs {
		r, err := b.resolveExpr(ast)
		if err != nil {
			return err
		}
		if hasOuterRef(r) {
			return fmt.Errorf("analyze: correlated GROUP BY expression is not supported")
		}
		f := plan.Field{T: r.Type()}
		if id, ok := ast.(*sql.Ident); ok {
			f.Name = id.Name
			if c, ok := r.(*plan.ColRef); ok {
				f.Table = b.sc.fields[c.Idx].Table
			}
		} else {
			f.Name = fmt.Sprintf("_g%d", len(gRex))
		}
		gRex = append(gRex, r)
		gFields = append(gFields, f)
		names = append(names, f.Name)
	}

	// Correlation keys become hidden grouping columns (classic
	// decorrelation of correlated aggregate subqueries).
	for i := range b.corr {
		inner := b.corr[i].inner
		pos := -1
		for j, g := range gRex {
			if g.Digest() == inner.Digest() {
				pos = j
				break
			}
		}
		if pos < 0 {
			pos = len(gRex)
			gRex = append(gRex, inner)
			f := plan.Field{Name: fmt.Sprintf("__ck%d", i), T: inner.Type()}
			gFields = append(gFields, f)
			names = append(names, f.Name)
		}
		b.corr[i].inner = &plan.ColRef{Idx: pos, T: gRex[pos].Type()}
	}

	// Aggregate calls.
	var aggs []plan.AggCall
	aggDigests := map[string]int{}
	for _, call := range calls {
		fn := strings.ToLower(call.Name)
		var arg plan.Rex
		if !call.Star {
			if len(call.Args) != 1 {
				return fmt.Errorf("analyze: %s expects one argument", fn)
			}
			r, err := b.resolveExpr(call.Args[0])
			if err != nil {
				return err
			}
			if hasOuterRef(r) {
				return fmt.Errorf("analyze: correlated aggregate argument is not supported")
			}
			arg = r
		} else if fn != "count" {
			return fmt.Errorf("analyze: %s(*) is not valid", fn)
		}
		t := types.TBigint
		if arg != nil {
			var err error
			t, err = aggResultType(fn, arg, call.Distinct)
			if err != nil {
				return err
			}
		}
		aggDigests[sql.FormatExpr(call)] = len(gRex) + len(aggs)
		aggs = append(aggs, plan.AggCall{Fn: fn, Arg: arg, Distinct: call.Distinct, T: t})
		gFields = append(gFields, plan.Field{Name: fmt.Sprintf("_a%d", len(aggs)-1), T: t})
		names = append(names, "")
	}

	// Grouping sets map onto grouping expression ordinals.
	var sets [][]int
	if core.GroupingSets != nil {
		for _, set := range core.GroupingSets {
			var idxs []int
			for _, e := range set {
				key := sql.FormatExpr(e)
				found := -1
				for j, ast := range groupASTs {
					if sql.FormatExpr(ast) == key {
						found = j
						break
					}
				}
				if found < 0 {
					return fmt.Errorf("analyze: grouping set expression %s not in GROUP BY", key)
				}
				idxs = append(idxs, found)
			}
			sets = append(sets, idxs)
		}
	}

	groupingID := -1
	if sets != nil {
		groupingID = len(gFields)
		gFields = append(gFields, plan.Field{Name: "__grouping_id", T: types.TBigint})
	}

	b.rel = &plan.Aggregate{Input: b.rel, GroupBy: gRex, Aggs: aggs, GroupingSets: sets, Names: names}
	groupDigests := map[string]int{}
	for i, ast := range groupASTs {
		groupDigests[sql.FormatExpr(ast)] = i
	}
	b.aggScope = &aggScope{
		groupDigests: groupDigests,
		aggDigests:   aggDigests,
		fields:       gFields,
		groupingID:   groupingID,
		groupExprs:   groupASTs,
	}
	b.sc = &scope{parent: b.sc.parent, fields: gFields, ctes: b.sc.ctes}
	return nil
}

// applyWindow plans the collected window function calls over the current
// relation, making their results addressable by windowKey.
func (b *builder) applyWindow(calls []*sql.Call) error {
	inFields := b.rel.Schema()
	inW := len(inFields)
	var extra []plan.Rex
	ensureCol := func(r plan.Rex) int {
		if c, ok := r.(*plan.ColRef); ok {
			return c.Idx
		}
		for j, e := range extra {
			if e.Digest() == r.Digest() {
				return inW + j
			}
		}
		extra = append(extra, r)
		return inW + len(extra) - 1
	}

	var fns []plan.WindowFn
	keys := make([]string, len(calls))
	for i, call := range calls {
		fn := strings.ToLower(call.Name)
		wf := plan.WindowFn{Fn: fn}
		switch fn {
		case "row_number", "rank", "dense_rank":
			wf.T = types.TBigint
		case "count":
			wf.T = types.TBigint
			if !call.Star && len(call.Args) == 1 {
				arg, err := b.resolveExpr(call.Args[0])
				if err != nil {
					return err
				}
				wf.Arg = arg
			}
		case "sum", "avg", "min", "max":
			if len(call.Args) != 1 {
				return fmt.Errorf("analyze: window %s expects one argument", fn)
			}
			arg, err := b.resolveExpr(call.Args[0])
			if err != nil {
				return err
			}
			wf.Arg = arg
			t, err := aggResultType(fn, arg, false)
			if err != nil {
				return err
			}
			wf.T = t
		default:
			return fmt.Errorf("analyze: unsupported window function %s", fn)
		}
		for _, p := range call.Over.PartitionBy {
			r, err := b.resolveExpr(p)
			if err != nil {
				return err
			}
			wf.PartitionBy = append(wf.PartitionBy, ensureCol(r))
		}
		for _, o := range call.Over.OrderBy {
			r, err := b.resolveExpr(o.Expr)
			if err != nil {
				return err
			}
			wf.OrderBy = append(wf.OrderBy, plan.SortKey{
				Col: ensureCol(r), Desc: o.Desc, NullsFirst: nullsFirst(o),
			})
		}
		fns = append(fns, wf)
		keys[i] = windowKey(call)
	}

	input := b.rel
	if len(extra) > 0 {
		exprs := make([]plan.Rex, 0, inW+len(extra))
		names := make([]string, 0, inW+len(extra))
		for i, f := range inFields {
			exprs = append(exprs, &plan.ColRef{Idx: i, T: f.T})
			names = append(names, f.Name)
		}
		for j, e := range extra {
			exprs = append(exprs, e)
			names = append(names, fmt.Sprintf("__wk%d", j))
		}
		input = &plan.Project{Input: input, Exprs: exprs, Names: names}
	}
	b.rel = &plan.Window{Input: input, Fns: fns}
	base := inW + len(extra)
	if b.winRefs == nil {
		b.winRefs = map[string]*plan.ColRef{}
	}
	for i, k := range keys {
		b.winRefs[k] = &plan.ColRef{Idx: base + i, T: fns[i].T}
	}
	return nil
}

// winLookup resolves a windowed call against the planned window columns.
func (b *builder) winLookup(x *sql.Call) (plan.Rex, bool) {
	if b.winRefs == nil || x.Over == nil {
		return nil, false
	}
	r, ok := b.winRefs[windowKey(x)]
	return r, ok
}
