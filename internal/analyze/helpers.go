package analyze

import (
	"fmt"

	"repro/internal/metastore"
	"repro/internal/plan"
	"repro/internal/sql"
)

// ResolveExpr resolves an AST expression against a scan's output schema;
// used by the DML planner for UPDATE/DELETE predicates and SET values.
func ResolveExpr(ms *metastore.Metastore, db string, scan *plan.Scan, e sql.Expr) (plan.Rex, error) {
	b := &builder{
		a:  New(ms, db),
		sc: &scope{fields: scan.Schema()},
	}
	r, err := b.resolveExpr(e)
	if err != nil {
		return nil, err
	}
	if hasOuterRef(r) {
		return nil, fmt.Errorf("analyze: unresolved column in DML expression")
	}
	return r, nil
}

// AnalyzeSelectWithMeta analyzes a SELECT with the named table's scan
// emitting the ACID system columns — the MERGE planner uses it to join the
// source against target row identifiers (paper §3.2).
func (a *Analyzer) AnalyzeSelectWithMeta(sel *sql.SelectStmt, metaTable string) (plan.Rel, error) {
	a.metaTables = map[string]bool{metaTable: true}
	defer func() { a.metaTables = nil }()
	return a.AnalyzeSelect(sel)
}

// ResolveExprOverJoin resolves an expression over the concatenated schema
// of (source ++ target-with-meta), matching the MERGE execution layout.
func ResolveExprOverJoin(ms *metastore.Metastore, db string, source sql.TableRef, target *metastore.Table, targetAlias string, e sql.Expr) (plan.Rex, error) {
	a := New(ms, db)
	b := &builder{a: a}
	_, srcFields, err := b.buildFrom(source, &scope{})
	if err != nil {
		return nil, err
	}
	alias := targetAlias
	if alias == "" {
		alias = target.Name
	}
	scan := plan.NewScan(target, alias)
	scan.Meta = true
	fields := append(append([]plan.Field{}, srcFields...), scan.Schema()...)
	rb := &builder{a: a, sc: &scope{fields: fields}}
	r, err := rb.resolveExpr(e)
	if err != nil {
		return nil, err
	}
	if hasOuterRef(r) {
		return nil, fmt.Errorf("analyze: unresolved column in MERGE expression")
	}
	return r, nil
}

// ResolveConstExpr resolves an expression with no table scope (INSERT
// VALUES entries: literals, casts, arithmetic over constants).
func ResolveConstExpr(e sql.Expr) (plan.Rex, error) {
	b := &builder{a: &Analyzer{}, sc: &scope{}}
	return b.resolveExpr(e)
}
