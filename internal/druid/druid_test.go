package druid

import (
	"testing"
)

func testSource(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	ds, err := s.CreateDataSource("events", Schema{
		Dimensions: []string{"d1", "city"},
		Metrics:    []string{"m1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds.Insert([]Event{
		{Time: 1, Dims: map[string]string{"d1": "a", "city": "sf"}, Metrics: map[string]float64{"m1": 1}},
		{Time: 2, Dims: map[string]string{"d1": "b", "city": "ny"}, Metrics: map[string]float64{"m1": 2}},
		{Time: 3, Dims: map[string]string{"d1": "a", "city": "sf"}, Metrics: map[string]float64{"m1": 3}},
		{Time: 4, Dims: map[string]string{"d1": "a", "city": "ny"}, Metrics: map[string]float64{"m1": 4}},
	})
	return s
}

func TestGroupByWithFilterAndLimit(t *testing.T) {
	s := testSource(t)
	rows, err := s.Execute(&Query{
		QueryType:  "groupBy",
		DataSource: "events",
		Dimensions: []string{"d1"},
		Aggregations: []Aggregation{
			{Type: "doubleSum", Name: "s", FieldName: "m1"},
			{Type: "count", Name: "c"},
		},
		LimitSpec: &LimitSpec{Limit: 10, Columns: []OrderByColumn{{Dimension: "s", Direction: "descending"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0]["d1"] != "a" || rows[0]["s"].(float64) != 8 || rows[0]["c"].(int64) != 3 {
		t.Errorf("groupBy rows: %+v", rows)
	}
}

func TestSelectorAndBoundFilters(t *testing.T) {
	s := testSource(t)
	rows, err := s.Execute(&Query{
		QueryType:  "scan",
		DataSource: "events",
		Filter: &Filter{Type: "and", Fields: []*Filter{
			{Type: "selector", Dimension: "d1", Value: "a"},
			{Type: "selector", Dimension: "city", Value: "sf"},
		}},
	})
	if err != nil || len(rows) != 2 {
		t.Fatalf("and filter: %v %v", rows, err)
	}
	rows, err = s.Execute(&Query{
		QueryType:    "groupBy",
		DataSource:   "events",
		Filter:       &Filter{Type: "not", Field: &Filter{Type: "selector", Dimension: "city", Value: "sf"}},
		Aggregations: []Aggregation{{Type: "count", Name: "c"}},
	})
	if err != nil || rows[0]["c"].(int64) != 2 {
		t.Fatalf("not filter: %v %v", rows, err)
	}
}

func TestTopN(t *testing.T) {
	s := testSource(t)
	rows, err := s.Execute(&Query{
		QueryType:    "topN",
		DataSource:   "events",
		Dimension:    "city",
		Metric:       "s",
		Threshold:    1,
		Aggregations: []Aggregation{{Type: "doubleSum", Name: "s", FieldName: "m1"}},
	})
	if err != nil || len(rows) != 1 || rows[0]["city"] != "ny" {
		t.Fatalf("topN: %v %v", rows, err)
	}
}

func TestHTTPServerRoundTrip(t *testing.T) {
	s := testSource(t)
	srv, err := NewServer(s)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{BaseURL: srv.URL()}
	rows, err := c.Query(&Query{
		QueryType:    "timeseries",
		DataSource:   "events",
		Aggregations: []Aggregation{{Type: "doubleSum", Name: "total", FieldName: "m1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("timeseries rows: %+v", rows)
	}
	if v, _ := rows[0]["total"].(interface{ Float64() (float64, error) }); v != nil {
		f, _ := v.Float64()
		if f != 10 {
			t.Errorf("total: %v", f)
		}
	}
	// Bad query over HTTP returns an error, not a hang.
	if _, err := c.Query(&Query{QueryType: "nope", DataSource: "events"}); err == nil {
		t.Error("unsupported query type should fail")
	}
	if _, err := c.QueryJSON(`{"queryType":"scan","dataSource":"missing"}`); err == nil {
		t.Error("missing datasource should fail")
	}
}
