// Package druid implements an embedded analogue of Apache Druid (paper §6):
// an OLAP store for event data with time-partitioned, dimension-indexed
// segments, queried through Druid's JSON query language over HTTP. Hive
// federates to it through a storage handler, pushing computation as JSON
// queries generated from the relational plan (paper Figure 6).
//
// Supported query types: scan, timeseries, groupBy and topN; filters:
// selector, bound, and, or, not; aggregations: count, longSum, doubleSum,
// doubleMin, doubleMax.
package druid

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Column roles in a datasource.
const (
	TimeColumn = "__time"
)

// Schema describes a datasource: string dimensions and numeric metrics.
type Schema struct {
	Dimensions []string
	Metrics    []string
}

// DataSource is a columnar, dimension-indexed event table.
type DataSource struct {
	mu      sync.RWMutex
	name    string
	schema  Schema
	times   []int64 // microseconds since epoch
	dims    map[string][]string
	metrics map[string][]float64
	// inverted index: dimension -> value -> sorted row ids
	index map[string]map[string][]int
}

// Store holds datasources.
type Store struct {
	mu      sync.RWMutex
	sources map[string]*DataSource
}

// NewStore creates an empty Druid store.
func NewStore() *Store {
	return &Store{sources: make(map[string]*DataSource)}
}

// CreateDataSource registers a datasource with the given schema.
func (s *Store) CreateDataSource(name string, schema Schema) (*DataSource, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sources[name]; ok {
		return nil, fmt.Errorf("druid: datasource %s exists", name)
	}
	ds := &DataSource{
		name:    name,
		schema:  schema,
		dims:    map[string][]string{},
		metrics: map[string][]float64{},
		index:   map[string]map[string][]int{},
	}
	for _, d := range schema.Dimensions {
		ds.dims[d] = nil
		ds.index[d] = map[string][]int{}
	}
	for _, m := range schema.Metrics {
		ds.metrics[m] = nil
	}
	s.sources[name] = ds
	return ds, nil
}

// Get fetches a datasource.
func (s *Store) Get(name string) (*DataSource, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.sources[name]
	return ds, ok
}

// Drop removes a datasource.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sources, name)
}

// Schema returns the datasource schema.
func (d *DataSource) Schema() Schema { return d.schema }

// Rows returns the event count.
func (d *DataSource) Rows() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.times)
}

// Event is one ingested row.
type Event struct {
	Time    int64
	Dims    map[string]string
	Metrics map[string]float64
}

// Insert ingests events, maintaining the inverted indexes.
func (d *DataSource) Insert(events []Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range events {
		row := len(d.times)
		d.times = append(d.times, e.Time)
		for _, dim := range d.schema.Dimensions {
			v := e.Dims[dim]
			d.dims[dim] = append(d.dims[dim], v)
			d.index[dim][v] = append(d.index[dim][v], row)
		}
		for _, m := range d.schema.Metrics {
			d.metrics[m] = append(d.metrics[m], e.Metrics[m])
		}
	}
}

// ---- JSON query model ----

// Filter is Druid's JSON filter tree.
type Filter struct {
	Type        string    `json:"type"`
	Dimension   string    `json:"dimension,omitempty"`
	Value       string    `json:"value,omitempty"`
	Lower       string    `json:"lower,omitempty"`
	Upper       string    `json:"upper,omitempty"`
	LowerStrict bool      `json:"lowerStrict,omitempty"`
	UpperStrict bool      `json:"upperStrict,omitempty"`
	Ordering    string    `json:"ordering,omitempty"` // "numeric" or lexicographic
	Fields      []*Filter `json:"fields,omitempty"`
	Field       *Filter   `json:"field,omitempty"`
}

// Aggregation is one aggregator spec.
type Aggregation struct {
	Type      string `json:"type"` // count, longSum, doubleSum, doubleMin, doubleMax
	Name      string `json:"name"`
	FieldName string `json:"fieldName,omitempty"`
}

// OrderByColumn orders groupBy output.
type OrderByColumn struct {
	Dimension string `json:"dimension"`
	Direction string `json:"direction"` // ascending | descending
}

// LimitSpec caps and orders groupBy output.
type LimitSpec struct {
	Limit   int             `json:"limit"`
	Columns []OrderByColumn `json:"columns"`
}

// Query is the JSON query envelope (paper Figure 6c).
type Query struct {
	QueryType    string        `json:"queryType"`
	DataSource   string        `json:"dataSource"`
	Granularity  string        `json:"granularity,omitempty"`
	Dimension    string        `json:"dimension,omitempty"`
	Dimensions   []string      `json:"dimensions,omitempty"`
	Aggregations []Aggregation `json:"aggregations,omitempty"`
	Filter       *Filter       `json:"filter,omitempty"`
	Intervals    []string      `json:"intervals,omitempty"`
	LimitSpec    *LimitSpec    `json:"limitSpec,omitempty"`
	Threshold    int           `json:"threshold,omitempty"`
	Metric       string        `json:"metric,omitempty"`
	Columns      []string      `json:"columns,omitempty"` // scan projection
}

// ResultRow is one output row: column name to value.
type ResultRow map[string]any

// Execute runs a JSON query against the store.
func (s *Store) Execute(q *Query) ([]ResultRow, error) {
	ds, ok := s.Get(q.DataSource)
	if !ok {
		return nil, fmt.Errorf("druid: no such datasource %s", q.DataSource)
	}
	switch q.QueryType {
	case "scan":
		return ds.scan(q)
	case "groupBy":
		return ds.groupBy(q)
	case "topN":
		qq := *q
		qq.Dimensions = []string{q.Dimension}
		qq.LimitSpec = &LimitSpec{Limit: q.Threshold, Columns: []OrderByColumn{{Dimension: q.Metric, Direction: "descending"}}}
		return ds.groupBy(&qq)
	case "timeseries":
		qq := *q
		qq.Dimensions = nil
		return ds.groupBy(&qq)
	}
	return nil, fmt.Errorf("druid: unsupported queryType %q", q.QueryType)
}

// matchRows returns the row ids selected by the filter, using the inverted
// index for selector filters.
func (d *DataSource) matchRows(f *Filter) ([]int, error) {
	n := len(d.times)
	if f == nil {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	switch f.Type {
	case "selector":
		idx, ok := d.index[f.Dimension]
		if !ok {
			return nil, fmt.Errorf("druid: unknown dimension %q", f.Dimension)
		}
		return idx[f.Value], nil
	case "bound":
		vals, ok := d.dims[f.Dimension]
		if !ok {
			return nil, fmt.Errorf("druid: unknown dimension %q", f.Dimension)
		}
		var out []int
		numeric := f.Ordering == "numeric"
		for i, v := range vals {
			if boundMatch(v, f, numeric) {
				out = append(out, i)
			}
		}
		return out, nil
	case "and":
		cur, err := d.matchRows(f.Fields[0])
		if err != nil {
			return nil, err
		}
		for _, sub := range f.Fields[1:] {
			next, err := d.matchRows(sub)
			if err != nil {
				return nil, err
			}
			cur = intersectSorted(cur, next)
		}
		return cur, nil
	case "or":
		seen := map[int]bool{}
		var out []int
		for _, sub := range f.Fields {
			rows, err := d.matchRows(sub)
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				if !seen[r] {
					seen[r] = true
					out = append(out, r)
				}
			}
		}
		sort.Ints(out)
		return out, nil
	case "not":
		inner, err := d.matchRows(f.Field)
		if err != nil {
			return nil, err
		}
		in := map[int]bool{}
		for _, r := range inner {
			in[r] = true
		}
		var out []int
		for i := 0; i < len(d.times); i++ {
			if !in[i] {
				out = append(out, i)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("druid: unsupported filter type %q", f.Type)
}

func boundMatch(v string, f *Filter, numeric bool) bool {
	cmp := func(a, b string) int {
		if numeric {
			af, _ := strconv.ParseFloat(a, 64)
			bf, _ := strconv.ParseFloat(b, 64)
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			return 0
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if f.Lower != "" {
		c := cmp(v, f.Lower)
		if c < 0 || (c == 0 && f.LowerStrict) {
			return false
		}
	}
	if f.Upper != "" {
		c := cmp(v, f.Upper)
		if c > 0 || (c == 0 && f.UpperStrict) {
			return false
		}
	}
	return true
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func (d *DataSource) scan(q *Query) ([]ResultRow, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rows, err := d.matchRows(q.Filter)
	if err != nil {
		return nil, err
	}
	cols := q.Columns
	if len(cols) == 0 {
		cols = append(append([]string{TimeColumn}, d.schema.Dimensions...), d.schema.Metrics...)
	}
	out := make([]ResultRow, 0, len(rows))
	for _, r := range rows {
		row := ResultRow{}
		for _, c := range cols {
			switch {
			case c == TimeColumn:
				row[c] = d.times[r]
			case d.dims[c] != nil:
				row[c] = d.dims[c][r]
			case d.metrics[c] != nil:
				row[c] = d.metrics[c][r]
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func (d *DataSource) groupBy(q *Query) ([]ResultRow, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	rows, err := d.matchRows(q.Filter)
	if err != nil {
		return nil, err
	}
	type groupAgg struct {
		key  []string
		sums []float64
		cnt  []int64
	}
	groups := map[string]*groupAgg{}
	var order []string
	for _, r := range rows {
		keyParts := make([]string, len(q.Dimensions))
		for i, dim := range q.Dimensions {
			vals, ok := d.dims[dim]
			if !ok {
				return nil, fmt.Errorf("druid: unknown dimension %q", dim)
			}
			keyParts[i] = vals[r]
		}
		key := fmt.Sprint(keyParts)
		g, ok := groups[key]
		if !ok {
			g = &groupAgg{key: keyParts, sums: make([]float64, len(q.Aggregations)), cnt: make([]int64, len(q.Aggregations))}
			for i, a := range q.Aggregations {
				if a.Type == "doubleMin" {
					g.sums[i] = 1e308
				}
				if a.Type == "doubleMax" {
					g.sums[i] = -1e308
				}
			}
			groups[key] = g
			order = append(order, key)
		}
		for i, a := range q.Aggregations {
			switch a.Type {
			case "count":
				g.cnt[i]++
			case "longSum", "doubleSum":
				g.sums[i] += d.metricValue(a.FieldName, r)
				g.cnt[i]++
			case "doubleMin":
				if v := d.metricValue(a.FieldName, r); v < g.sums[i] {
					g.sums[i] = v
				}
				g.cnt[i]++
			case "doubleMax":
				if v := d.metricValue(a.FieldName, r); v > g.sums[i] {
					g.sums[i] = v
				}
				g.cnt[i]++
			}
		}
	}
	out := make([]ResultRow, 0, len(groups))
	for _, key := range order {
		g := groups[key]
		row := ResultRow{}
		for i, dim := range q.Dimensions {
			row[dim] = g.key[i]
		}
		for i, a := range q.Aggregations {
			switch a.Type {
			case "count":
				row[a.Name] = g.cnt[i]
			case "longSum":
				row[a.Name] = int64(g.sums[i])
			default:
				row[a.Name] = g.sums[i]
			}
		}
		out = append(out, row)
	}
	if q.LimitSpec != nil {
		ls := q.LimitSpec
		sort.SliceStable(out, func(i, j int) bool {
			for _, c := range ls.Columns {
				ci := compareAny(out[i][c.Dimension], out[j][c.Dimension])
				if ci == 0 {
					continue
				}
				if c.Direction == "descending" {
					return ci > 0
				}
				return ci < 0
			}
			return false
		})
		if ls.Limit > 0 && len(out) > ls.Limit {
			out = out[:ls.Limit]
		}
	}
	return out, nil
}

func (d *DataSource) metricValue(field string, row int) float64 {
	if m, ok := d.metrics[field]; ok {
		return m[row]
	}
	if field == TimeColumn {
		return float64(d.times[row])
	}
	if vals, ok := d.dims[field]; ok {
		f, _ := strconv.ParseFloat(vals[row], 64)
		return f
	}
	return 0
}

func compareAny(a, b any) int {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	as, bs := fmt.Sprint(a), fmt.Sprint(b)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	}
	return 0
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	}
	return 0, false
}
