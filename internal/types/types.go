// Package types defines the SQL type system and scalar value representation
// shared by every layer of the warehouse: the metastore schema, the ORC file
// format, the vectorized runtime, and the optimizer's constant folding.
//
// Hive uses a nested data model (paper §3.1): all major atomic SQL types plus
// STRUCT, ARRAY and MAP. Atomic values are represented by Datum, a small
// struct that avoids interface boxing on hot paths.
package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the supported SQL type constructors.
type Kind uint8

// Atomic and nested type kinds.
const (
	Unknown Kind = iota
	Boolean
	Int32     // INT
	Int64     // BIGINT
	Float64   // DOUBLE
	Decimal   // DECIMAL(p,s), unscaled value in int64
	String    // STRING / VARCHAR / CHAR
	Date      // days since unix epoch
	Timestamp // microseconds since unix epoch
	Interval  // day-time interval, microseconds
	Struct
	Array
	Map
)

func (k Kind) String() string {
	switch k {
	case Boolean:
		return "BOOLEAN"
	case Int32:
		return "INT"
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case Decimal:
		return "DECIMAL"
	case String:
		return "STRING"
	case Date:
		return "DATE"
	case Timestamp:
		return "TIMESTAMP"
	case Interval:
		return "INTERVAL"
	case Struct:
		return "STRUCT"
	case Array:
		return "ARRAY"
	case Map:
		return "MAP"
	}
	return "UNKNOWN"
}

// Field is a named component of a STRUCT type.
type Field struct {
	Name string
	Type T
}

// T describes a SQL type. Atomic types are cheap values; nested types carry
// pointers to their component types. The zero value is the Unknown type.
type T struct {
	Kind      Kind
	Precision int // decimal precision, or varchar max length
	Scale     int // decimal scale
	Elem      *T  // array element, map value
	Key       *T  // map key
	Fields    []Field
}

// Convenience constructors for the common atomic types.
var (
	TBool      = T{Kind: Boolean}
	TInt       = T{Kind: Int32}
	TBigint    = T{Kind: Int64}
	TDouble    = T{Kind: Float64}
	TString    = T{Kind: String}
	TDate      = T{Kind: Date}
	TTimestamp = T{Kind: Timestamp}
	TInterval  = T{Kind: Interval}
	TUnknown   = T{Kind: Unknown}
)

// TDecimal returns a DECIMAL(p,s) type.
func TDecimal(p, s int) T { return T{Kind: Decimal, Precision: p, Scale: s} }

// TArray returns an ARRAY<elem> type.
func TArray(elem T) T { return T{Kind: Array, Elem: &elem} }

// TMap returns a MAP<key,val> type.
func TMap(key, val T) T { return T{Kind: Map, Key: &key, Elem: &val} }

// TStruct returns a STRUCT type with the given fields.
func TStruct(fields ...Field) T { return T{Kind: Struct, Fields: fields} }

// Numeric reports whether the type participates in arithmetic.
func (t T) Numeric() bool {
	switch t.Kind {
	case Int32, Int64, Float64, Decimal:
		return true
	}
	return false
}

// Orderable reports whether values of the type can be compared with < and >.
func (t T) Orderable() bool {
	switch t.Kind {
	case Boolean, Int32, Int64, Float64, Decimal, String, Date, Timestamp, Interval:
		return true
	}
	return false
}

// Equal reports structural type equality (ignoring varchar lengths).
func (t T) Equal(o T) bool {
	if t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case Decimal:
		return t.Scale == o.Scale
	case Array:
		return t.Elem.Equal(*o.Elem)
	case Map:
		return t.Key.Equal(*o.Key) && t.Elem.Equal(*o.Elem)
	case Struct:
		if len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if !t.Fields[i].Type.Equal(o.Fields[i].Type) {
				return false
			}
		}
	}
	return true
}

func (t T) String() string {
	switch t.Kind {
	case Decimal:
		return fmt.Sprintf("DECIMAL(%d,%d)", t.Precision, t.Scale)
	case Array:
		return "ARRAY<" + t.Elem.String() + ">"
	case Map:
		return "MAP<" + t.Key.String() + "," + t.Elem.String() + ">"
	case Struct:
		var b strings.Builder
		b.WriteString("STRUCT<")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.Name)
			b.WriteByte(':')
			b.WriteString(f.Type.String())
		}
		b.WriteString(">")
		return b.String()
	}
	return t.Kind.String()
}

// ParseType parses a type name as written in DDL, e.g. "decimal(7,2)",
// "array<int>", "varchar(20)". Unknown names yield an error.
func ParseType(s string) (T, error) {
	s = strings.TrimSpace(s)
	up := strings.ToUpper(s)
	switch {
	case up == "BOOLEAN" || up == "BOOL":
		return TBool, nil
	case up == "INT" || up == "INTEGER" || up == "SMALLINT" || up == "TINYINT":
		return TInt, nil
	case up == "BIGINT" || up == "LONG":
		return TBigint, nil
	case up == "DOUBLE" || up == "FLOAT" || up == "REAL":
		return TDouble, nil
	case up == "STRING" || up == "TEXT" || up == "BINARY":
		return TString, nil
	case up == "DATE":
		return TDate, nil
	case up == "TIMESTAMP":
		return TTimestamp, nil
	case strings.HasPrefix(up, "DECIMAL"):
		p, sc := 10, 0
		if i := strings.IndexByte(up, '('); i >= 0 {
			j := strings.IndexByte(up, ')')
			if j < i {
				return TUnknown, fmt.Errorf("types: malformed decimal %q", s)
			}
			parts := strings.Split(up[i+1:j], ",")
			var err error
			if p, err = strconv.Atoi(strings.TrimSpace(parts[0])); err != nil {
				return TUnknown, fmt.Errorf("types: malformed decimal %q", s)
			}
			if len(parts) > 1 {
				if sc, err = strconv.Atoi(strings.TrimSpace(parts[1])); err != nil {
					return TUnknown, fmt.Errorf("types: malformed decimal %q", s)
				}
			}
		}
		return TDecimal(p, sc), nil
	case strings.HasPrefix(up, "VARCHAR") || strings.HasPrefix(up, "CHAR"):
		n := 0
		if i := strings.IndexByte(up, '('); i >= 0 {
			j := strings.IndexByte(up, ')')
			if j > i {
				n, _ = strconv.Atoi(strings.TrimSpace(up[i+1 : j]))
			}
		}
		return T{Kind: String, Precision: n}, nil
	case strings.HasPrefix(up, "ARRAY<") && strings.HasSuffix(up, ">"):
		elem, err := ParseType(s[6 : len(s)-1])
		if err != nil {
			return TUnknown, err
		}
		return TArray(elem), nil
	case strings.HasPrefix(up, "MAP<") && strings.HasSuffix(up, ">"):
		inner := s[4 : len(s)-1]
		depth, comma := 0, -1
		for i, c := range inner {
			switch c {
			case '<':
				depth++
			case '>':
				depth--
			case ',':
				if depth == 0 && comma < 0 {
					comma = i
				}
			}
		}
		if comma < 0 {
			return TUnknown, fmt.Errorf("types: malformed map %q", s)
		}
		k, err := ParseType(inner[:comma])
		if err != nil {
			return TUnknown, err
		}
		v, err := ParseType(inner[comma+1:])
		if err != nil {
			return TUnknown, err
		}
		return TMap(k, v), nil
	}
	return TUnknown, fmt.Errorf("types: unknown type %q", s)
}

// CommonSupertype returns the type both operands should be coerced to for
// comparison or arithmetic, following Hive's numeric widening hierarchy
// INT → BIGINT → DECIMAL → DOUBLE, with STRING coercible to any numeric.
func CommonSupertype(a, b T) (T, bool) {
	if a.Kind == b.Kind {
		if a.Kind == Decimal {
			s := a.Scale
			if b.Scale > s {
				s = b.Scale
			}
			p := a.Precision
			if b.Precision > p {
				p = b.Precision
			}
			return TDecimal(p, s), true
		}
		return a, true
	}
	if a.Kind == Unknown {
		return b, true
	}
	if b.Kind == Unknown {
		return a, true
	}
	rank := func(k Kind) int {
		switch k {
		case Int32:
			return 1
		case Int64:
			return 2
		case Decimal:
			return 3
		case Float64:
			return 4
		}
		return 0
	}
	ra, rb := rank(a.Kind), rank(b.Kind)
	if ra > 0 && rb > 0 {
		if ra >= rb {
			return a, true
		}
		return b, true
	}
	// STRING compares with numerics and temporals as the non-string side.
	if a.Kind == String && (rank(b.Kind) > 0 || b.Kind == Date || b.Kind == Timestamp) {
		return b, true
	}
	if b.Kind == String && (rank(a.Kind) > 0 || a.Kind == Date || a.Kind == Timestamp) {
		return a, true
	}
	// DATE and TIMESTAMP compare as TIMESTAMP.
	if (a.Kind == Date && b.Kind == Timestamp) || (a.Kind == Timestamp && b.Kind == Date) {
		return TTimestamp, true
	}
	// DATE/TIMESTAMP +- INTERVAL keeps the temporal type.
	if a.Kind == Interval && (b.Kind == Date || b.Kind == Timestamp) {
		return b, true
	}
	if b.Kind == Interval && (a.Kind == Date || a.Kind == Timestamp) {
		return a, true
	}
	return TUnknown, false
}
