package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseType(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"int", "INT"},
		{"INTEGER", "INT"},
		{"bigint", "BIGINT"},
		{"double", "DOUBLE"},
		{"string", "STRING"},
		{"varchar(20)", "STRING"},
		{"decimal(7,2)", "DECIMAL(7,2)"},
		{"DECIMAL", "DECIMAL(10,0)"},
		{"date", "DATE"},
		{"timestamp", "TIMESTAMP"},
		{"array<int>", "ARRAY<INT>"},
		{"map<string,double>", "MAP<STRING,DOUBLE>"},
		{"array<map<string,int>>", "ARRAY<MAP<STRING,INT>>"},
	}
	for _, c := range cases {
		got, err := ParseType(c.in)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", c.in, err)
		}
		if got.String() != c.want {
			t.Errorf("ParseType(%q) = %s, want %s", c.in, got, c.want)
		}
	}
	if _, err := ParseType("frobnicator"); err == nil {
		t.Error("ParseType accepted unknown type")
	}
	if _, err := ParseType("map<string>"); err == nil {
		t.Error("ParseType accepted malformed map")
	}
}

func TestCommonSupertype(t *testing.T) {
	cases := []struct {
		a, b, want T
	}{
		{TInt, TBigint, TBigint},
		{TBigint, TDouble, TDouble},
		{TInt, TDecimal(7, 2), TDecimal(7, 2)},
		{TDecimal(7, 2), TDouble, TDouble},
		{TString, TInt, TInt},
		{TDate, TTimestamp, TTimestamp},
		{TDate, TInterval, TDate},
		{TString, TString, TString},
	}
	for _, c := range cases {
		got, ok := CommonSupertype(c.a, c.b)
		if !ok || got.Kind != c.want.Kind {
			t.Errorf("CommonSupertype(%s,%s) = %s,%v want %s", c.a, c.b, got, ok, c.want)
		}
	}
	if _, ok := CommonSupertype(TBool, TDate); ok {
		t.Error("CommonSupertype(BOOLEAN,DATE) should fail")
	}
}

func TestDatumCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewBigint(5), NewInt(5), 0},
		{NewDouble(1.5), NewInt(1), 1},
		{NewString("abc"), NewString("abd"), -1},
		{NewDecimal(150, 2), NewDecimal(150, 2), 0},  // 1.50 == 1.50
		{NewDecimal(150, 2), NewDecimal(15, 1), 0},   // 1.50 == 1.5
		{NewDecimal(151, 2), NewInt(1), 1},           // 1.51 > 1
		{NullOf(Int32), NewInt(0), -1},               // NULLS FIRST
		{NullOf(Int32), NullOf(String), 0},           // NULL == NULL for sorting
		{NewDate(10), NewTimestamp(10 * 86400e6), 0}, // same instant
		{NewString("12"), NewInt(13), -1},            // numeric coercion
		{NewBool(true), NewBool(false), 1},
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("case %d: %v.Compare(%v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("case %d: reverse compare = %d, want %d", i, got, -c.want)
		}
	}
}

func TestDatumHashEqualImpliesHashEqual(t *testing.T) {
	pairs := [][2]Datum{
		{NewInt(42), NewBigint(42)},
		{NewInt(3), NewDouble(3.0)},
		{NewDecimal(300, 2), NewInt(3)},
		{NewString("x"), NewString("x")},
	}
	for _, p := range pairs {
		if p[0].Compare(p[1]) != 0 {
			t.Fatalf("%v and %v should compare equal", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("equal datums %v, %v hash differently", p[0], p[1])
		}
	}
	if NewString("a").Hash() == NewString("b").Hash() {
		t.Error("suspicious: distinct strings hash equal")
	}
}

func TestDatumString(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{NewInt(7), "7"},
		{NewBool(true), "true"},
		{NewDecimal(-1234, 2), "-12.34"},
		{NewDecimal(5, 3), "0.005"},
		{NullOf(Int32), "NULL"},
		{NewDate(0), "1970-01-01"},
		{NewArray(NewInt(1), NewInt(2)), "[1,2]"},
		{NewStruct(NewInt(1), NewString("a")), "{1,a}"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestCast(t *testing.T) {
	d, err := Cast(NewString("12.75"), TDecimal(7, 2))
	if err != nil || d.String() != "12.75" {
		t.Errorf("cast string->decimal: %v %v", d, err)
	}
	d, err = Cast(NewDecimal(1275, 2), TBigint)
	if err != nil || d.I != 12 {
		t.Errorf("cast decimal->bigint: %v %v", d, err)
	}
	d, err = Cast(NewString("2018-03-04"), TDate)
	if err != nil || d.String() != "2018-03-04" {
		t.Errorf("cast string->date: %v %v", d, err)
	}
	d, err = Cast(NewDate(17964), TTimestamp)
	if err != nil || d.K != Timestamp {
		t.Errorf("cast date->timestamp: %v %v", d, err)
	}
	d, err = Cast(NullOf(String), TInt)
	if err != nil || !d.Null || d.K != Int32 {
		t.Errorf("cast NULL: %v %v", d, err)
	}
	if _, err = Cast(NewString("zebra"), TInt); err == nil {
		t.Error("cast 'zebra'->INT should fail")
	}
	d, err = Cast(NewDecimal(15, 1), TDecimal(10, 3)) // 1.5 -> 1.500
	if err != nil || d.I != 1500 || d.DecimalScale() != 3 {
		t.Errorf("decimal rescale: %v %v", d, err)
	}
}

func TestArith(t *testing.T) {
	mustI := func(d Datum, err error) int64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return d.I
	}
	if v := mustI(Arith('+', NewInt(2), NewInt(3))); v != 5 {
		t.Errorf("2+3 = %d", v)
	}
	if d, _ := Arith('/', NewInt(7), NewInt(2)); d.F != 3.5 {
		t.Errorf("7/2 = %v, want 3.5 (division widens to double)", d)
	}
	if d, _ := Arith('/', NewInt(7), NewInt(0)); !d.Null {
		t.Errorf("7/0 = %v, want NULL", d)
	}
	d, _ := Arith('+', NewDecimal(150, 2), NewDecimal(5, 1)) // 1.50 + 0.5 = 2.00
	if d.String() != "2.00" {
		t.Errorf("decimal add = %s", d)
	}
	d, _ = Arith('*', NewDecimal(25, 1), NewDecimal(25, 1)) // 2.5*2.5 = 6.25
	if d.String() != "6.25" {
		t.Errorf("decimal mul = %s", d)
	}
	d, _ = Arith('+', NewDate(10), NewInt(5))
	if d.K != Date || d.I != 15 {
		t.Errorf("date+int = %v", d)
	}
	d, _ = Arith('+', NewDate(0), NewInterval(86400*1e6*3))
	if d.K != Date || d.I != 3 {
		t.Errorf("date+interval = %v", d)
	}
	d, _ = Arith('+', NullOf(Int32), NewInt(1))
	if !d.Null {
		t.Errorf("NULL+1 = %v, want NULL", d)
	}
}

func TestDateField(t *testing.T) {
	days, err := ParseDate("2018-03-15")
	if err != nil {
		t.Fatal(err)
	}
	d := NewDate(days)
	for field, want := range map[string]int64{"year": 2018, "month": 3, "day": 15, "quarter": 1} {
		got, err := DateField(d, field)
		if err != nil || got != want {
			t.Errorf("DateField(%s) = %d,%v want %d", field, got, err, want)
		}
	}
	if _, err := DateField(NewInt(1), "year"); err == nil {
		t.Error("DateField on INT should fail")
	}
}

// Property: Compare is antisymmetric and Cast(x, T(x)) is identity for int64.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		da, db := NewBigint(a), NewBigint(b)
		return da.Compare(db) == -db.Compare(da)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decimal formatting round-trips through ParseDecimal.
func TestQuickDecimalRoundTrip(t *testing.T) {
	f := func(v int64, scaleRaw uint8) bool {
		scale := int(scaleRaw % 6)
		if v > math.MaxInt64/1000 || v < math.MinInt64/1000 {
			return true // avoid overflow in formatting paths
		}
		d := NewDecimal(v, scale)
		back, err := ParseDecimal(d.String(), scale)
		if err != nil {
			return false
		}
		return back.I == v && back.DecimalScale() == scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: date parse/format round-trips.
func TestQuickDateRoundTrip(t *testing.T) {
	f := func(raw int32) bool {
		days := int64(raw % 40000) // within sane year range
		if days < 0 {
			days = -days
		}
		s := NewDate(days).String()
		back, err := ParseDate(s)
		return err == nil && back == days
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
