package types

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"strings"
	"time"
)

// Datum is a single SQL scalar value. It is a compact tagged union: numeric
// kinds live in I or F, strings in S, nested values in List (structs and
// arrays) or List as alternating key/value pairs (maps). NULL is represented
// by Null==true with the Kind still carrying the static type.
type Datum struct {
	K    Kind
	Null bool
	I    int64 // Boolean(0/1), Int32, Int64, Decimal unscaled, Date days, Timestamp micros, Interval micros
	F    float64
	S    string
	List []Datum
}

// NullOf returns a NULL datum of the given kind.
func NullOf(k Kind) Datum { return Datum{K: k, Null: true} }

// NewBool returns a BOOLEAN datum.
func NewBool(b bool) Datum {
	var i int64
	if b {
		i = 1
	}
	return Datum{K: Boolean, I: i}
}

// NewInt returns an INT datum.
func NewInt(v int32) Datum { return Datum{K: Int32, I: int64(v)} }

// NewBigint returns a BIGINT datum.
func NewBigint(v int64) Datum { return Datum{K: Int64, I: v} }

// NewDouble returns a DOUBLE datum.
func NewDouble(v float64) Datum { return Datum{K: Float64, F: v} }

// NewString returns a STRING datum.
func NewString(s string) Datum { return Datum{K: String, S: s} }

// NewDecimal returns a DECIMAL datum with the given unscaled value and scale.
// The scale is carried in F's bits via the type system at plan time; the datum
// itself stores scale in the high bits of... no: datums carry scale in the
// companion type. For standalone use the scale is stored in the S field as a
// decimal string rendering when needed. Here we keep unscaled value + scale.
func NewDecimal(unscaled int64, scale int) Datum {
	return Datum{K: Decimal, I: unscaled, F: float64(scale)}
}

// DecimalScale returns the scale of a DECIMAL datum.
func (d Datum) DecimalScale() int { return int(d.F) }

// NewDate returns a DATE datum for the given days since the Unix epoch.
func NewDate(days int64) Datum { return Datum{K: Date, I: days} }

// NewTimestamp returns a TIMESTAMP datum for the given microseconds since
// the Unix epoch.
func NewTimestamp(micros int64) Datum { return Datum{K: Timestamp, I: micros} }

// NewInterval returns a day-time INTERVAL datum in microseconds.
func NewInterval(micros int64) Datum { return Datum{K: Interval, I: micros} }

// NewArray returns an ARRAY datum.
func NewArray(elems ...Datum) Datum { return Datum{K: Array, List: elems} }

// NewStruct returns a STRUCT datum.
func NewStruct(fields ...Datum) Datum { return Datum{K: Struct, List: fields} }

// Bool returns the boolean value; valid only for Boolean datums.
func (d Datum) Bool() bool { return d.I != 0 }

// Float returns the value as float64, widening integer kinds.
func (d Datum) Float() float64 {
	switch d.K {
	case Float64:
		return d.F
	case Decimal:
		return float64(d.I) / pow10f(d.DecimalScale())
	default:
		return float64(d.I)
	}
}

func pow10f(n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		p *= 10
	}
	return p
}

// Pow10 returns 10^n as int64 (n must be small and non-negative).
func Pow10(n int) int64 {
	p := int64(1)
	for i := 0; i < n; i++ {
		p *= 10
	}
	return p
}

// Compare orders two datums. NULL sorts first (NULLS FIRST semantics); the
// caller is responsible for SQL ternary logic when NULL must yield unknown.
// Mixed numeric kinds compare by value.
func (d Datum) Compare(o Datum) int {
	if d.Null || o.Null {
		switch {
		case d.Null && o.Null:
			return 0
		case d.Null:
			return -1
		default:
			return 1
		}
	}
	// Fast path: same kind.
	if d.K == o.K {
		switch d.K {
		case String:
			return strings.Compare(d.S, o.S)
		case Float64:
			return cmpFloat(d.F, o.F)
		case Decimal:
			if d.DecimalScale() == o.DecimalScale() {
				return cmpInt(d.I, o.I)
			}
			return cmpFloat(d.Float(), o.Float())
		case Array, Struct:
			for i := 0; i < len(d.List) && i < len(o.List); i++ {
				if c := d.List[i].Compare(o.List[i]); c != 0 {
					return c
				}
			}
			return cmpInt(int64(len(d.List)), int64(len(o.List)))
		default:
			return cmpInt(d.I, o.I)
		}
	}
	// Cross-kind numeric / temporal comparison by widened value.
	if isNumKind(d.K) && isNumKind(o.K) {
		if d.K != Float64 && o.K != Float64 && d.K != Decimal && o.K != Decimal {
			return cmpInt(d.I, o.I)
		}
		return cmpFloat(d.Float(), o.Float())
	}
	if (d.K == Date || d.K == Timestamp) && (o.K == Date || o.K == Timestamp) {
		return cmpInt(d.micros(), o.micros())
	}
	// String vs numeric: compare as the numeric side when parseable.
	if d.K == String && isNumKind(o.K) {
		if f, err := strconv.ParseFloat(d.S, 64); err == nil {
			return cmpFloat(f, o.Float())
		}
	}
	if o.K == String && isNumKind(d.K) {
		if f, err := strconv.ParseFloat(o.S, 64); err == nil {
			return cmpFloat(d.Float(), f)
		}
	}
	// Fall back to string rendering for stability.
	return strings.Compare(d.String(), o.String())
}

func (d Datum) micros() int64 {
	if d.K == Date {
		return d.I * 86400 * 1e6
	}
	return d.I
}

func isNumKind(k Kind) bool {
	return k == Int32 || k == Int64 || k == Float64 || k == Decimal || k == Boolean
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

var hashSeed = maphash.MakeSeed()

// Hash returns a stable hash for grouping and join keys. Numeric kinds that
// compare equal hash equal (integers are hashed by value).
func (d Datum) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	if d.Null {
		h.WriteByte(0)
		return h.Sum64()
	}
	switch d.K {
	case String:
		h.WriteByte(1)
		h.WriteString(d.S)
	case Float64:
		h.WriteByte(2)
		// Hash integral floats as their integer value so INT 3 == DOUBLE 3.0.
		if d.F == math.Trunc(d.F) && math.Abs(d.F) < 1e15 {
			writeUint64(&h, uint64(int64(d.F)))
		} else {
			writeUint64(&h, math.Float64bits(d.F))
		}
	case Decimal:
		f := d.Float()
		if f == math.Trunc(f) && math.Abs(f) < 1e15 {
			h.WriteByte(2)
			writeUint64(&h, uint64(int64(f)))
		} else {
			h.WriteByte(2)
			writeUint64(&h, math.Float64bits(f))
		}
	case Array, Struct, Map:
		h.WriteByte(3)
		for _, e := range d.List {
			writeUint64(&h, e.Hash())
		}
	default:
		h.WriteByte(2)
		writeUint64(&h, uint64(d.I))
	}
	return h.Sum64()
}

func writeUint64(h *maphash.Hash, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// String renders the datum the way query results print it.
func (d Datum) String() string {
	if d.Null {
		return "NULL"
	}
	switch d.K {
	case Boolean:
		if d.I != 0 {
			return "true"
		}
		return "false"
	case Float64:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case Decimal:
		return FormatDecimal(d.I, d.DecimalScale())
	case String:
		return d.S
	case Date:
		return time.Unix(d.I*86400, 0).UTC().Format("2006-01-02")
	case Timestamp:
		return time.UnixMicro(d.I).UTC().Format("2006-01-02 15:04:05.000000")
	case Interval:
		return fmt.Sprintf("INTERVAL %d us", d.I)
	case Array:
		parts := make([]string, len(d.List))
		for i, e := range d.List {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ",") + "]"
	case Struct:
		parts := make([]string, len(d.List))
		for i, e := range d.List {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	return strconv.FormatInt(d.I, 10)
}

// FormatDecimal renders an unscaled decimal value with the given scale.
func FormatDecimal(unscaled int64, scale int) string {
	if scale == 0 {
		return strconv.FormatInt(unscaled, 10)
	}
	neg := unscaled < 0
	if neg {
		unscaled = -unscaled
	}
	s := strconv.FormatInt(unscaled, 10)
	for len(s) <= scale {
		s = "0" + s
	}
	out := s[:len(s)-scale] + "." + s[len(s)-scale:]
	if neg {
		out = "-" + out
	}
	return out
}

// ParseDate parses "YYYY-MM-DD" into days since epoch.
func ParseDate(s string) (int64, error) {
	t, err := time.ParseInLocation("2006-01-02", s, time.UTC)
	if err != nil {
		return 0, fmt.Errorf("types: bad date %q: %v", s, err)
	}
	return t.Unix() / 86400, nil
}

// ParseTimestamp parses "YYYY-MM-DD[ HH:MM:SS[.ffffff]]" into micros.
func ParseTimestamp(s string) (int64, error) {
	for _, layout := range []string{"2006-01-02 15:04:05.999999", "2006-01-02 15:04:05", "2006-01-02"} {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return t.UnixMicro(), nil
		}
	}
	return 0, fmt.Errorf("types: bad timestamp %q", s)
}

// DateField extracts a component (year, month, day, quarter, dow) from a
// DATE or TIMESTAMP datum.
func DateField(d Datum, field string) (int64, error) {
	var t time.Time
	switch d.K {
	case Date:
		t = time.Unix(d.I*86400, 0).UTC()
	case Timestamp:
		t = time.UnixMicro(d.I).UTC()
	default:
		return 0, fmt.Errorf("types: EXTRACT from non-temporal %s", d.K)
	}
	switch strings.ToLower(field) {
	case "year":
		return int64(t.Year()), nil
	case "month", "moy":
		return int64(t.Month()), nil
	case "day", "dom":
		return int64(t.Day()), nil
	case "quarter":
		return int64((int(t.Month())-1)/3 + 1), nil
	case "dow":
		return int64(t.Weekday()), nil
	case "hour":
		return int64(t.Hour()), nil
	case "minute":
		return int64(t.Minute()), nil
	case "second":
		return int64(t.Second()), nil
	}
	return 0, fmt.Errorf("types: unknown EXTRACT field %q", field)
}

// Cast converts d to the target type, returning an error for impossible
// conversions. NULL casts to NULL of the target kind.
func Cast(d Datum, to T) (Datum, error) {
	if d.Null {
		return NullOf(to.Kind), nil
	}
	if d.K == to.Kind && to.Kind != Decimal {
		return d, nil
	}
	switch to.Kind {
	case Boolean:
		switch d.K {
		case Boolean:
			return d, nil
		case Int32, Int64:
			return NewBool(d.I != 0), nil
		case String:
			b, err := strconv.ParseBool(strings.ToLower(d.S))
			if err != nil {
				return Datum{}, fmt.Errorf("types: cannot cast %q to BOOLEAN", d.S)
			}
			return NewBool(b), nil
		}
	case Int32, Int64:
		var v int64
		switch d.K {
		case Boolean, Int32, Int64:
			v = d.I
		case Float64:
			v = int64(d.F)
		case Decimal:
			v = d.I / Pow10(d.DecimalScale())
		case Date, Timestamp:
			v = d.I
		case String:
			f, err := strconv.ParseFloat(strings.TrimSpace(d.S), 64)
			if err != nil {
				return Datum{}, fmt.Errorf("types: cannot cast %q to %s", d.S, to.Kind)
			}
			v = int64(f)
		default:
			return Datum{}, castErr(d, to)
		}
		if to.Kind == Int32 {
			return NewInt(int32(v)), nil
		}
		return NewBigint(v), nil
	case Float64:
		switch d.K {
		case Boolean, Int32, Int64:
			return NewDouble(float64(d.I)), nil
		case Float64:
			return d, nil
		case Decimal:
			return NewDouble(d.Float()), nil
		case String:
			f, err := strconv.ParseFloat(strings.TrimSpace(d.S), 64)
			if err != nil {
				return Datum{}, fmt.Errorf("types: cannot cast %q to DOUBLE", d.S)
			}
			return NewDouble(f), nil
		default:
			return Datum{}, castErr(d, to)
		}
	case Decimal:
		switch d.K {
		case Int32, Int64:
			return NewDecimal(d.I*Pow10(to.Scale), to.Scale), nil
		case Float64:
			return NewDecimal(int64(math.Round(d.F*pow10f(to.Scale))), to.Scale), nil
		case Decimal:
			from := d.DecimalScale()
			if from == to.Scale {
				return d, nil
			}
			if from < to.Scale {
				return NewDecimal(d.I*Pow10(to.Scale-from), to.Scale), nil
			}
			return NewDecimal(d.I/Pow10(from-to.Scale), to.Scale), nil
		case String:
			dec, err := ParseDecimal(strings.TrimSpace(d.S), to.Scale)
			if err != nil {
				return Datum{}, err
			}
			return dec, nil
		default:
			return Datum{}, castErr(d, to)
		}
	case String:
		return NewString(d.String()), nil
	case Date:
		switch d.K {
		case String:
			days, err := ParseDate(strings.TrimSpace(d.S))
			if err != nil {
				return Datum{}, err
			}
			return NewDate(days), nil
		case Timestamp:
			return NewDate(d.I / (86400 * 1e6)), nil
		case Int32, Int64:
			return NewDate(d.I), nil
		default:
			return Datum{}, castErr(d, to)
		}
	case Timestamp:
		switch d.K {
		case String:
			us, err := ParseTimestamp(strings.TrimSpace(d.S))
			if err != nil {
				return Datum{}, err
			}
			return NewTimestamp(us), nil
		case Date:
			return NewTimestamp(d.I * 86400 * 1e6), nil
		case Int32, Int64:
			return NewTimestamp(d.I), nil
		default:
			return Datum{}, castErr(d, to)
		}
	}
	return Datum{}, castErr(d, to)
}

func castErr(d Datum, to T) error {
	return fmt.Errorf("types: cannot cast %s to %s", d.K, to.Kind)
}

// ParseDecimal parses a decimal literal like "-12.345" to the given scale.
func ParseDecimal(s string, scale int) (Datum, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	if intPart == "" {
		intPart = "0"
	}
	// Truncate or zero-pad the fraction to the requested scale.
	if len(fracPart) > scale {
		fracPart = fracPart[:scale]
	}
	for len(fracPart) < scale {
		fracPart += "0"
	}
	v, err := strconv.ParseInt(intPart+fracPart, 10, 64)
	if err != nil {
		return Datum{}, fmt.Errorf("types: bad decimal %q", s)
	}
	if neg {
		v = -v
	}
	return NewDecimal(v, scale), nil
}

// Arith applies a binary arithmetic operator (+ - * / %) to two non-NULL
// datums, widening to their common supertype. Division always yields DOUBLE
// unless both sides are decimals of equal scale.
func Arith(op byte, a, b Datum) (Datum, error) {
	if a.Null || b.Null {
		return NullOf(resultKind(op, a, b)), nil
	}
	// Temporal +/- interval.
	if (a.K == Date || a.K == Timestamp) && b.K == Interval {
		us := a.micros()
		switch op {
		case '+':
			us += b.I
		case '-':
			us -= b.I
		default:
			return Datum{}, fmt.Errorf("types: bad temporal op %c", op)
		}
		if a.K == Date {
			return NewDate(us / (86400 * 1e6)), nil
		}
		return NewTimestamp(us), nil
	}
	if a.K == Interval && (b.K == Date || b.K == Timestamp) && op == '+' {
		return Arith('+', b, a)
	}
	// Date - int => date shifted by days (Hive date_sub semantics).
	if a.K == Date && (b.K == Int32 || b.K == Int64) {
		switch op {
		case '+':
			return NewDate(a.I + b.I), nil
		case '-':
			return NewDate(a.I - b.I), nil
		}
	}
	useFloat := a.K == Float64 || b.K == Float64 || op == '/'
	if a.K == Decimal || b.K == Decimal {
		if op != '/' && a.K != Float64 && b.K != Float64 {
			return decimalArith(op, a, b)
		}
		useFloat = true
	}
	if useFloat {
		x, y := a.Float(), b.Float()
		switch op {
		case '+':
			return NewDouble(x + y), nil
		case '-':
			return NewDouble(x - y), nil
		case '*':
			return NewDouble(x * y), nil
		case '/':
			if y == 0 {
				return NullOf(Float64), nil
			}
			return NewDouble(x / y), nil
		case '%':
			if y == 0 {
				return NullOf(Float64), nil
			}
			return NewDouble(math.Mod(x, y)), nil
		}
	}
	x, y := a.I, b.I
	outK := Int64
	if a.K == Int32 && b.K == Int32 {
		outK = Int32
	}
	var v int64
	switch op {
	case '+':
		v = x + y
	case '-':
		v = x - y
	case '*':
		v = x * y
	case '%':
		if y == 0 {
			return NullOf(outK), nil
		}
		v = x % y
	default:
		return Datum{}, fmt.Errorf("types: unknown operator %c", op)
	}
	return Datum{K: outK, I: v}, nil
}

func decimalArith(op byte, a, b Datum) (Datum, error) {
	sa, sb := 0, 0
	if a.K == Decimal {
		sa = a.DecimalScale()
	}
	if b.K == Decimal {
		sb = b.DecimalScale()
	}
	switch op {
	case '+', '-':
		s := sa
		if sb > s {
			s = sb
		}
		av := a.I * Pow10(s-sa)
		bv := b.I * Pow10(s-sb)
		if op == '+' {
			return NewDecimal(av+bv, s), nil
		}
		return NewDecimal(av-bv, s), nil
	case '*':
		return NewDecimal(a.I*b.I, sa+sb), nil
	}
	return Datum{}, fmt.Errorf("types: bad decimal op %c", op)
}

func resultKind(op byte, a, b Datum) Kind {
	if op == '/' || a.K == Float64 || b.K == Float64 {
		return Float64
	}
	if a.K == Decimal || b.K == Decimal {
		return Decimal
	}
	if a.K == Date || a.K == Timestamp {
		return a.K
	}
	return Int64
}
