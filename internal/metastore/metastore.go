// Package metastore implements the Hive Metastore (HMS): the catalog of
// every data source queryable by the warehouse (paper §2). It stores
// databases, tables, partitions, integrity constraints, additive column
// statistics (with HyperLogLog NDV sketches, §4.1), materialized view
// metadata (§4.4), workload-management resource plans (§5.2), and composes
// the transaction manager (§3.2).
//
// Hive persists HMS state in an RDBMS via DataNucleus; here state is
// persisted as JSON into the warehouse file system, which plays the same
// role (durable, external to query execution).
package metastore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dfs"
	"repro/internal/hll"
	"repro/internal/txn"
	"repro/internal/types"
)

// Column is a named, typed column.
type Column struct {
	Name string
	Type types.T
}

// ForeignKey declares a referential constraint used by the optimizer's
// constraint-based transformations (paper §4.1, §4.4).
type ForeignKey struct {
	Cols     []string
	RefTable string // "db.table"
	RefCols  []string
}

// Constraints carries the declared integrity constraints of a table.
// They are informational (not enforced on write), exactly as in Hive where
// the optimizer exploits RELY NOVALIDATE constraints.
type Constraints struct {
	PrimaryKey  []string
	ForeignKeys []ForeignKey
	UniqueKeys  [][]string
	NotNull     []string
}

// Table is the catalog entry for a table or materialized view.
type Table struct {
	DB       string
	Name     string
	Cols     []Column
	PartKeys []Column
	Location string
	// Props are TBLPROPERTIES key-value pairs; materialized views use
	// them e.g. for the allowed staleness window (paper §4.4).
	Props map[string]string
	// StorageHandler names the external system backing the table
	// (paper §6.1); empty means native ACID ORC storage.
	StorageHandler string
	External       bool
	Constraints    Constraints

	// Materialized view fields (paper §4.4).
	IsMaterializedView bool
	ViewSQL            string
	RewriteEnabled     bool
	// SnapshotWriteIds records, per source table, the WriteId high
	// watermark the view contents reflect; incremental rebuild and
	// staleness checks compare these against current table state.
	SnapshotWriteIds map[string]int64

	Partitions map[string]*Partition
}

// FullName returns "db.name".
func (t *Table) FullName() string { return t.DB + "." + t.Name }

// Col returns the position of a named column, or -1.
func (t *Table) Col(name string) int {
	for i, c := range t.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// IsPartKey reports whether name is a partition column.
func (t *Table) IsPartKey(name string) bool {
	for _, c := range t.PartKeys {
		if c.Name == name {
			return true
		}
	}
	return false
}

// Partition is one horizontal slice of a partitioned table, stored in its
// own directory (paper §3.1, Figure 3).
type Partition struct {
	Values   []string // one per partition key, rendered as strings
	Location string
}

// Spec renders the canonical partition spec, e.g. "sold_date_sk=5".
func PartitionSpec(keys []Column, values []string) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.Name + "=" + values[i]
	}
	return strings.Join(parts, "/")
}

// ColStats are per-column statistics. They are additive: merging the stats
// of two row sets yields the stats of their union (paper §4.1).
type ColStats struct {
	Min       *types.Datum
	Max       *types.Datum
	NullCount int64
	NDV       *hll.Sketch
}

// Merge folds other into s.
func (s *ColStats) Merge(other *ColStats) {
	if other == nil {
		return
	}
	if s.Min == nil || (other.Min != nil && other.Min.Compare(*s.Min) < 0) {
		s.Min = other.Min
	}
	if s.Max == nil || (other.Max != nil && other.Max.Compare(*s.Max) > 0) {
		s.Max = other.Max
	}
	s.NullCount += other.NullCount
	if other.NDV != nil {
		if s.NDV == nil {
			s.NDV = hll.New()
		}
		s.NDV.Merge(other.NDV)
	}
}

// NDVEstimate returns the estimated distinct count, 0 when unknown.
func (s *ColStats) NDVEstimate() int64 {
	if s == nil || s.NDV == nil {
		return 0
	}
	return s.NDV.Estimate()
}

// TableStats aggregates table cardinality and column statistics.
type TableStats struct {
	RowCount int64
	Cols     map[string]*ColStats
}

// Merge folds other into s additively.
func (s *TableStats) Merge(other *TableStats) {
	if other == nil {
		return
	}
	s.RowCount += other.RowCount
	if s.Cols == nil {
		s.Cols = make(map[string]*ColStats)
	}
	for name, cs := range other.Cols {
		if mine, ok := s.Cols[name]; ok {
			mine.Merge(cs)
		} else {
			cp := *cs
			s.Cols[name] = &cp
		}
	}
}

// Hook receives notifications for metastore events on tables backed by a
// given storage handler (paper §6.1's "Metastore hook").
type Hook interface {
	OnCreateTable(t *Table) error
	OnDropTable(t *Table) error
}

// Metastore is the in-process HMS.
type Metastore struct {
	mu    sync.RWMutex
	fs    *dfs.FS
	root  string
	dbs   map[string]map[string]*Table
	stats map[string]*TableStats
	hooks map[string]Hook
	plans map[string]*ResourcePlan
	txns  *txn.Manager
	// version counts schema-shaping catalog changes (create/drop table or
	// database, stats replacement). Cached query plans are keyed on it so
	// a DDL change invalidates them. Incremental stats merges from inserts
	// deliberately do NOT bump it — they'd invalidate hot plans on every
	// write without changing resolved schemas.
	version atomic.Int64
}

// SchemaVersion returns the current catalog version. It increases on any
// change that could alter how a statement resolves or plans (CREATE/DROP
// TABLE, CREATE DATABASE, ANALYZE-style stats replacement).
func (m *Metastore) SchemaVersion() int64 { return m.version.Load() }

// New creates a metastore over the given file system with the given
// warehouse root directory (e.g. "/warehouse").
func New(fs *dfs.FS, root string) *Metastore {
	fs.MkdirAll(root)
	m := &Metastore{
		fs:    fs,
		root:  root,
		dbs:   map[string]map[string]*Table{"default": {}},
		stats: make(map[string]*TableStats),
		hooks: make(map[string]Hook),
		plans: make(map[string]*ResourcePlan),
		txns:  txn.NewManager(),
	}
	return m
}

// Txns returns the transaction manager built on this metastore.
func (m *Metastore) Txns() *txn.Manager { return m.txns }

// FS returns the warehouse file system.
func (m *Metastore) FS() *dfs.FS { return m.fs }

// Root returns the warehouse root directory.
func (m *Metastore) Root() string { return m.root }

// RegisterHook installs a storage-handler hook under the handler name.
func (m *Metastore) RegisterHook(handler string, h Hook) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hooks[handler] = h
}

// CreateDatabase adds a database.
func (m *Metastore) CreateDatabase(name string) error {
	name = strings.ToLower(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.dbs[name]; ok {
		return fmt.Errorf("metastore: database %s already exists", name)
	}
	m.dbs[name] = map[string]*Table{}
	m.fs.MkdirAll(m.root + "/" + name + ".db")
	m.version.Add(1)
	return nil
}

// Databases lists database names.
func (m *Metastore) Databases() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.dbs))
	for name := range m.dbs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CreateTable registers a table. When Location is empty a canonical
// warehouse path is assigned. Fires the storage handler hook, if any.
func (m *Metastore) CreateTable(t *Table) error {
	t.DB = strings.ToLower(t.DB)
	t.Name = strings.ToLower(t.Name)
	m.mu.Lock()
	tables, ok := m.dbs[t.DB]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("metastore: no such database %s", t.DB)
	}
	if _, ok := tables[t.Name]; ok {
		m.mu.Unlock()
		return fmt.Errorf("metastore: table %s.%s already exists", t.DB, t.Name)
	}
	if t.Location == "" {
		t.Location = m.root + "/" + t.DB + ".db/" + t.Name
	}
	if t.Props == nil {
		t.Props = map[string]string{}
	}
	if t.Partitions == nil {
		t.Partitions = map[string]*Partition{}
	}
	seen := map[string]bool{}
	for _, c := range append(append([]Column{}, t.Cols...), t.PartKeys...) {
		if seen[c.Name] {
			m.mu.Unlock()
			return fmt.Errorf("metastore: duplicate column %s in %s", c.Name, t.Name)
		}
		seen[c.Name] = true
	}
	tables[t.Name] = t
	m.fs.MkdirAll(t.Location)
	m.version.Add(1)
	hook := m.hooks[t.StorageHandler]
	m.mu.Unlock()
	if hook != nil {
		if err := hook.OnCreateTable(t); err != nil {
			m.mu.Lock()
			delete(tables, t.Name)
			m.mu.Unlock()
			return fmt.Errorf("metastore: storage handler rejected create: %v", err)
		}
	}
	return nil
}

// GetTable fetches a table by database and name.
func (m *Metastore) GetTable(db, name string) (*Table, error) {
	db, name = strings.ToLower(db), strings.ToLower(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	tables, ok := m.dbs[db]
	if !ok {
		return nil, fmt.Errorf("metastore: no such database %s", db)
	}
	t, ok := tables[name]
	if !ok {
		return nil, fmt.Errorf("metastore: no such table %s.%s", db, name)
	}
	return t, nil
}

// Tables lists table names in a database.
func (m *Metastore) Tables(db string) ([]string, error) {
	db = strings.ToLower(db)
	m.mu.RLock()
	defer m.mu.RUnlock()
	tables, ok := m.dbs[db]
	if !ok {
		return nil, fmt.Errorf("metastore: no such database %s", db)
	}
	out := make([]string, 0, len(tables))
	for name := range tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// DropTable removes a table and (for managed tables) its data, firing the
// storage handler hook.
func (m *Metastore) DropTable(db, name string) error {
	db, name = strings.ToLower(db), strings.ToLower(name)
	m.mu.Lock()
	tables, ok := m.dbs[db]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("metastore: no such database %s", db)
	}
	t, ok := tables[name]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("metastore: no such table %s.%s", db, name)
	}
	delete(tables, name)
	delete(m.stats, t.FullName())
	m.version.Add(1)
	hook := m.hooks[t.StorageHandler]
	m.mu.Unlock()
	if !t.External && m.fs.Exists(t.Location) {
		if err := m.fs.Remove(t.Location, true); err != nil {
			return err
		}
	}
	if hook != nil {
		return hook.OnDropTable(t)
	}
	return nil
}

// AddPartition registers (idempotently) a partition with the given key
// values and creates its directory.
func (m *Metastore) AddPartition(db, name string, values []string) (*Partition, error) {
	t, err := m.GetTable(db, name)
	if err != nil {
		return nil, err
	}
	if len(values) != len(t.PartKeys) {
		return nil, fmt.Errorf("metastore: %s has %d partition keys, got %d values", t.FullName(), len(t.PartKeys), len(values))
	}
	spec := PartitionSpec(t.PartKeys, values)
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := t.Partitions[spec]; ok {
		return p, nil
	}
	p := &Partition{Values: values, Location: t.Location + "/" + spec}
	t.Partitions[spec] = p
	m.fs.MkdirAll(p.Location)
	return p, nil
}

// PartitionsOf returns all partitions sorted by spec.
func (m *Metastore) PartitionsOf(t *Table) []*Partition {
	m.mu.RLock()
	defer m.mu.RUnlock()
	specs := make([]string, 0, len(t.Partitions))
	for s := range t.Partitions {
		specs = append(specs, s)
	}
	sort.Strings(specs)
	out := make([]*Partition, len(specs))
	for i, s := range specs {
		out[i] = t.Partitions[s]
	}
	return out
}

// DropPartition removes one partition and its data.
func (m *Metastore) DropPartition(db, name string, values []string) error {
	t, err := m.GetTable(db, name)
	if err != nil {
		return err
	}
	spec := PartitionSpec(t.PartKeys, values)
	m.mu.Lock()
	p, ok := t.Partitions[spec]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("metastore: no such partition %s of %s", spec, t.FullName())
	}
	delete(t.Partitions, spec)
	m.mu.Unlock()
	if m.fs.Exists(p.Location) {
		return m.fs.Remove(p.Location, true)
	}
	return nil
}

// MergeStats folds delta statistics into the table's stats additively
// (paper §4.1: inserts and partitions add onto existing statistics).
func (m *Metastore) MergeStats(fullName string, delta *TableStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.stats[fullName]
	if !ok {
		cur = &TableStats{Cols: map[string]*ColStats{}}
		m.stats[fullName] = cur
	}
	cur.Merge(delta)
}

// SetStats replaces the table's statistics (used by ANALYZE-style full
// recomputation and by tests).
func (m *Metastore) SetStats(fullName string, s *TableStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats[fullName] = s
	m.version.Add(1)
}

// Stats returns the stats for a table, or nil when none are recorded.
func (m *Metastore) Stats(fullName string) *TableStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats[fullName]
}

// MaterializedViews returns every MV with rewriting enabled.
func (m *Metastore) MaterializedViews() []*Table {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []*Table
	for _, tables := range m.dbs {
		for _, t := range tables {
			if t.IsMaterializedView {
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}
