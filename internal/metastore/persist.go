package metastore

import (
	"encoding/json"
	"fmt"

	"repro/internal/hll"
	"repro/internal/types"
)

// Persistence: Hive's HMS stores its state in an RDBMS. Here the catalog is
// serialized as JSON into the warehouse file system at <root>/_hms/catalog,
// versioned by generation so the write-once file system can be used as the
// durable store.

type persistedColStats struct {
	Min, Max  *types.Datum
	NullCount int64
	NDV       []byte
}

type persistedTableStats struct {
	RowCount int64
	Cols     map[string]persistedColStats
}

type persistedCatalog struct {
	Generation int64
	DBs        map[string]map[string]*Table
	Stats      map[string]persistedTableStats
	Plans      map[string]*ResourcePlan
}

// Save persists the full catalog. Each save writes a new generation file;
// Load reads the highest generation.
func (m *Metastore) Save() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	pc := persistedCatalog{
		DBs:   m.dbs,
		Stats: map[string]persistedTableStats{},
		Plans: m.plans,
	}
	for name, ts := range m.stats {
		pts := persistedTableStats{RowCount: ts.RowCount, Cols: map[string]persistedColStats{}}
		for col, cs := range ts.Cols {
			p := persistedColStats{Min: cs.Min, Max: cs.Max, NullCount: cs.NullCount}
			if cs.NDV != nil {
				p.NDV = cs.NDV.Bytes()
			}
			pts.Cols[col] = p
		}
		pc.Stats[name] = pts
	}
	dir := m.root + "/_hms"
	m.fs.MkdirAll(dir)
	gen := int64(1)
	if infos, err := m.fs.List(dir); err == nil {
		gen = int64(len(infos)) + 1
	}
	pc.Generation = gen
	data, err := json.Marshal(pc)
	if err != nil {
		return fmt.Errorf("metastore: marshal catalog: %v", err)
	}
	return m.fs.WriteFile(fmt.Sprintf("%s/catalog_%08d.json", dir, gen), data)
}

// Load restores the newest persisted catalog generation, replacing
// in-memory state. Returns false when no catalog has been saved.
func (m *Metastore) Load() (bool, error) {
	dir := m.root + "/_hms"
	infos, err := m.fs.List(dir)
	if err != nil || len(infos) == 0 {
		return false, nil
	}
	latest := infos[len(infos)-1].Path
	data, err := m.fs.ReadFile(latest)
	if err != nil {
		return false, err
	}
	var pc persistedCatalog
	if err := json.Unmarshal(data, &pc); err != nil {
		return false, fmt.Errorf("metastore: corrupt catalog %s: %v", latest, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dbs = pc.DBs
	if m.dbs == nil {
		m.dbs = map[string]map[string]*Table{"default": {}}
	}
	m.plans = pc.Plans
	if m.plans == nil {
		m.plans = map[string]*ResourcePlan{}
	}
	m.stats = map[string]*TableStats{}
	for name, pts := range pc.Stats {
		ts := &TableStats{RowCount: pts.RowCount, Cols: map[string]*ColStats{}}
		for col, p := range pts.Cols {
			cs := &ColStats{Min: p.Min, Max: p.Max, NullCount: p.NullCount}
			if len(p.NDV) > 0 {
				sk, err := hll.FromBytes(p.NDV)
				if err != nil {
					return false, fmt.Errorf("metastore: corrupt NDV sketch for %s.%s: %v", name, col, err)
				}
				cs.NDV = sk
			}
			ts.Cols[col] = cs
		}
		m.stats[name] = ts
	}
	return true, nil
}
