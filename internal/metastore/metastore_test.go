package metastore

import (
	"fmt"
	"testing"

	"repro/internal/dfs"
	"repro/internal/hll"
	"repro/internal/types"
)

func newTestMS() *Metastore {
	return New(dfs.New(), "/warehouse")
}

func storeSales() *Table {
	return &Table{
		DB:   "default",
		Name: "store_sales",
		Cols: []Column{
			{Name: "item_sk", Type: types.TBigint},
			{Name: "customer_sk", Type: types.TBigint},
			{Name: "quantity", Type: types.TInt},
			{Name: "sales_price", Type: types.TDecimal(7, 2)},
		},
		PartKeys: []Column{{Name: "sold_date_sk", Type: types.TInt}},
	}
}

func TestCreateGetDropTable(t *testing.T) {
	ms := newTestMS()
	if err := ms.CreateTable(storeSales()); err != nil {
		t.Fatal(err)
	}
	got, err := ms.GetTable("DEFAULT", "STORE_SALES") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if got.Location != "/warehouse/default.db/store_sales" {
		t.Errorf("location = %s", got.Location)
	}
	if !ms.FS().Exists(got.Location) {
		t.Error("table directory not created")
	}
	if err := ms.CreateTable(storeSales()); err == nil {
		t.Error("duplicate create should fail")
	}
	if err := ms.DropTable("default", "store_sales"); err != nil {
		t.Fatal(err)
	}
	if ms.FS().Exists(got.Location) {
		t.Error("managed table data should be removed on drop")
	}
	if _, err := ms.GetTable("default", "store_sales"); err == nil {
		t.Error("dropped table still visible")
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	ms := newTestMS()
	bad := storeSales()
	bad.PartKeys = []Column{{Name: "item_sk", Type: types.TInt}}
	if err := ms.CreateTable(bad); err == nil {
		t.Error("partition key duplicating a column should be rejected")
	}
}

func TestDatabases(t *testing.T) {
	ms := newTestMS()
	if err := ms.CreateDatabase("tpcds"); err != nil {
		t.Fatal(err)
	}
	if err := ms.CreateDatabase("tpcds"); err == nil {
		t.Error("duplicate database should fail")
	}
	tbl := storeSales()
	tbl.DB = "tpcds"
	if err := ms.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	names, err := ms.Tables("tpcds")
	if err != nil || len(names) != 1 || names[0] != "store_sales" {
		t.Errorf("Tables = %v, %v", names, err)
	}
	if err := ms.CreateTable(&Table{DB: "nope", Name: "x"}); err == nil {
		t.Error("create in missing db should fail")
	}
}

func TestPartitions(t *testing.T) {
	ms := newTestMS()
	ms.CreateTable(storeSales())
	tbl, _ := ms.GetTable("default", "store_sales")
	p, err := ms.AddPartition("default", "store_sales", []string{"1"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Location != tbl.Location+"/sold_date_sk=1" {
		t.Errorf("partition location = %s", p.Location)
	}
	if !ms.FS().Exists(p.Location) {
		t.Error("partition dir missing")
	}
	// Idempotent.
	p2, _ := ms.AddPartition("default", "store_sales", []string{"1"})
	if p2 != p {
		t.Error("AddPartition should be idempotent")
	}
	ms.AddPartition("default", "store_sales", []string{"2"})
	parts := ms.PartitionsOf(tbl)
	if len(parts) != 2 {
		t.Fatalf("got %d partitions", len(parts))
	}
	if _, err := ms.AddPartition("default", "store_sales", []string{"1", "2"}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := ms.DropPartition("default", "store_sales", []string{"1"}); err != nil {
		t.Fatal(err)
	}
	if ms.FS().Exists(p.Location) {
		t.Error("dropped partition dir should be removed")
	}
}

func TestStatsAdditiveMerge(t *testing.T) {
	ms := newTestMS()
	mk := func(lo, hi int64, n int) *TableStats {
		cs := &ColStats{NDV: hll.New()}
		for i := lo; i <= hi; i++ {
			d := types.NewBigint(i)
			cs.NDV.Add(d.Hash())
		}
		lod, hid := types.NewBigint(lo), types.NewBigint(hi)
		cs.Min, cs.Max = &lod, &hid
		return &TableStats{RowCount: int64(n), Cols: map[string]*ColStats{"k": cs}}
	}
	ms.MergeStats("default.t", mk(0, 999, 1000))
	ms.MergeStats("default.t", mk(500, 1499, 1000))
	got := ms.Stats("default.t")
	if got.RowCount != 2000 {
		t.Errorf("rowcount = %d", got.RowCount)
	}
	cs := got.Cols["k"]
	if cs.Min.I != 0 || cs.Max.I != 1499 {
		t.Errorf("min/max = %v/%v", cs.Min, cs.Max)
	}
	ndv := cs.NDVEstimate()
	if ndv < 1400 || ndv > 1600 {
		t.Errorf("merged NDV = %d, want ~1500 (lossless merge)", ndv)
	}
}

type recordingHook struct{ created, dropped []string }

func (h *recordingHook) OnCreateTable(t *Table) error {
	h.created = append(h.created, t.FullName())
	return nil
}
func (h *recordingHook) OnDropTable(t *Table) error {
	h.dropped = append(h.dropped, t.FullName())
	return nil
}

func TestStorageHandlerHooks(t *testing.T) {
	ms := newTestMS()
	h := &recordingHook{}
	ms.RegisterHook("druid", h)
	tbl := &Table{DB: "default", Name: "d1", StorageHandler: "druid", External: true}
	if err := ms.CreateTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := ms.DropTable("default", "d1"); err != nil {
		t.Fatal(err)
	}
	if len(h.created) != 1 || len(h.dropped) != 1 {
		t.Errorf("hook calls: %v %v", h.created, h.dropped)
	}
}

type rejectingHook struct{}

func (rejectingHook) OnCreateTable(*Table) error { return fmt.Errorf("no") }
func (rejectingHook) OnDropTable(*Table) error   { return nil }

func TestHookRejectionRollsBack(t *testing.T) {
	ms := newTestMS()
	ms.RegisterHook("bad", rejectingHook{})
	err := ms.CreateTable(&Table{DB: "default", Name: "x", StorageHandler: "bad"})
	if err == nil {
		t.Fatal("create should fail when hook rejects")
	}
	if _, err := ms.GetTable("default", "x"); err == nil {
		t.Error("rejected table should not remain registered")
	}
}

func TestResourcePlans(t *testing.T) {
	ms := newTestMS()
	if _, err := ms.CreateResourcePlan("daytime"); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPool("daytime", Pool{Name: "bi", AllocFraction: 0.8, QueryParallelism: 5}); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPool("daytime", Pool{Name: "etl", AllocFraction: 0.2, QueryParallelism: 20}); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddPool("daytime", Pool{Name: "over", AllocFraction: 0.5, QueryParallelism: 1}); err == nil {
		t.Error("over-allocation should fail")
	}
	if err := ms.AddTrigger("daytime", Trigger{
		Name: "downgrade", Metric: "total_runtime", Threshold: 3000,
		Action: ActionMoveToPool, TargetPool: "etl", Pools: []string{"bi"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddMapping("daytime", Mapping{Kind: "application", Name: "visualization_app", Pool: "bi"}); err != nil {
		t.Fatal(err)
	}
	if err := ms.SetDefaultPool("daytime", "etl"); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.ActivateResourcePlan("daytime"); err != nil {
		t.Fatal(err)
	}
	if ms.ActiveResourcePlan().Name != "daytime" {
		t.Error("plan not active")
	}
	// Activating another plan deactivates the first.
	ms.CreateResourcePlan("nighttime")
	ms.AddPool("nighttime", Pool{Name: "all", AllocFraction: 1, QueryParallelism: 10})
	ms.ActivateResourcePlan("nighttime")
	if ms.ActiveResourcePlan().Name != "nighttime" {
		t.Error("second plan should now be active")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	fs := dfs.New()
	ms := New(fs, "/warehouse")
	ms.CreateDatabase("tpcds")
	tbl := storeSales()
	tbl.DB = "tpcds"
	tbl.Constraints.PrimaryKey = []string{"item_sk"}
	ms.CreateTable(tbl)
	ms.AddPartition("tpcds", "store_sales", []string{"7"})
	cs := &ColStats{NDV: hll.New()}
	for i := 0; i < 500; i++ {
		cs.NDV.Add(types.NewBigint(int64(i)).Hash())
	}
	ms.MergeStats("tpcds.store_sales", &TableStats{RowCount: 500, Cols: map[string]*ColStats{"item_sk": cs}})
	ms.CreateResourcePlan("p")
	ms.AddPool("p", Pool{Name: "q", AllocFraction: 1, QueryParallelism: 3})
	if err := ms.Save(); err != nil {
		t.Fatal(err)
	}

	ms2 := New(fs, "/warehouse")
	ok, err := ms2.Load()
	if !ok || err != nil {
		t.Fatalf("load: %v %v", ok, err)
	}
	got, err := ms2.GetTable("tpcds", "store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 4 || got.Cols[3].Type.String() != "DECIMAL(7,2)" {
		t.Errorf("schema lost: %+v", got.Cols)
	}
	if got.Constraints.PrimaryKey[0] != "item_sk" {
		t.Error("constraints lost")
	}
	if len(got.Partitions) != 1 {
		t.Error("partitions lost")
	}
	st := ms2.Stats("tpcds.store_sales")
	if st == nil || st.RowCount != 500 {
		t.Fatalf("stats lost: %+v", st)
	}
	ndv := st.Cols["item_sk"].NDVEstimate()
	if ndv < 450 || ndv > 550 {
		t.Errorf("NDV sketch lost precision: %d", ndv)
	}
	if _, err := ms2.GetResourcePlan("p"); err != nil {
		t.Error("resource plan lost")
	}

	// Fresh metastore on empty fs: Load reports not found.
	ms3 := New(dfs.New(), "/warehouse")
	if ok, _ := ms3.Load(); ok {
		t.Error("load on empty fs should report absence")
	}
}
