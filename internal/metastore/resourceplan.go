package metastore

import (
	"fmt"
	"strings"
)

// TriggerAction is what a workload-management trigger does when it fires.
type TriggerAction uint8

// Trigger actions (paper §5.2).
const (
	ActionMoveToPool TriggerAction = iota
	ActionKill
)

// Trigger initiates an action based on runtime query metrics, e.g.
// "WHEN total_runtime > 3000 THEN MOVE etl".
type Trigger struct {
	Name       string
	Metric     string // "total_runtime" (ms), "shuffle_bytes", "peak_memory", "spilled_bytes"
	Threshold  int64
	Action     TriggerAction
	TargetPool string // for ActionMoveToPool
	Pools      []string
}

// Pool is a share of cluster resources with a concurrency cap.
type Pool struct {
	Name             string
	AllocFraction    float64
	QueryParallelism int
	// MemFraction is the pool's share of the cluster memory budget for
	// admission control (paper §4.4). 0 inherits AllocFraction, so plans
	// written before memory-aware admission keep splitting memory the way
	// they split executors.
	MemFraction float64
}

// Mapping routes incoming queries to pools by user, group or application.
type Mapping struct {
	Kind string // "user", "group", "application"
	Name string
	Pool string
}

// ResourcePlan is a self-contained resource-sharing configuration
// (paper §5.2). HMS persists resource plans; only one is active at a time.
type ResourcePlan struct {
	Name        string
	Pools       map[string]*Pool
	Mappings    []Mapping
	Triggers    []Trigger
	DefaultPool string
	Enabled     bool
	Active      bool
}

// CreateResourcePlan registers a new, disabled resource plan.
func (m *Metastore) CreateResourcePlan(name string) (*ResourcePlan, error) {
	name = strings.ToLower(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.plans[name]; ok {
		return nil, fmt.Errorf("metastore: resource plan %s already exists", name)
	}
	p := &ResourcePlan{Name: name, Pools: map[string]*Pool{}}
	m.plans[name] = p
	return p, nil
}

// GetResourcePlan fetches a plan by name.
func (m *Metastore) GetResourcePlan(name string) (*ResourcePlan, error) {
	name = strings.ToLower(name)
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.plans[name]
	if !ok {
		return nil, fmt.Errorf("metastore: no such resource plan %s", name)
	}
	return p, nil
}

// AddPool adds a pool to a plan.
func (m *Metastore) AddPool(plan string, pool Pool) error {
	p, err := m.GetResourcePlan(plan)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if pool.QueryParallelism <= 0 {
		return fmt.Errorf("metastore: pool %s needs positive query_parallelism", pool.Name)
	}
	if pool.MemFraction < 0 || pool.MemFraction > 1 {
		return fmt.Errorf("metastore: pool %s memory_fraction outside [0,1]", pool.Name)
	}
	total := pool.AllocFraction
	memTotal := pool.MemFraction
	for _, existing := range p.Pools {
		total += existing.AllocFraction
		memTotal += existing.MemFraction
	}
	if total > 1.0+1e-9 {
		return fmt.Errorf("metastore: plan %s pools exceed 100%% allocation", plan)
	}
	if memTotal > 1.0+1e-9 {
		return fmt.Errorf("metastore: plan %s pools exceed 100%% memory allocation", plan)
	}
	p.Pools[pool.Name] = &pool
	return nil
}

// AddTrigger attaches a trigger to one or more pools of a plan.
func (m *Metastore) AddTrigger(plan string, tr Trigger) error {
	p, err := m.GetResourcePlan(plan)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, pool := range tr.Pools {
		if _, ok := p.Pools[pool]; !ok {
			return fmt.Errorf("metastore: plan %s has no pool %s", plan, pool)
		}
	}
	if tr.Action == ActionMoveToPool {
		if _, ok := p.Pools[tr.TargetPool]; !ok {
			return fmt.Errorf("metastore: plan %s has no target pool %s", plan, tr.TargetPool)
		}
	}
	p.Triggers = append(p.Triggers, tr)
	return nil
}

// AddMapping routes an application/user/group to a pool.
func (m *Metastore) AddMapping(plan string, mp Mapping) error {
	p, err := m.GetResourcePlan(plan)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := p.Pools[mp.Pool]; !ok {
		return fmt.Errorf("metastore: plan %s has no pool %s", plan, mp.Pool)
	}
	p.Mappings = append(p.Mappings, mp)
	return nil
}

// SetDefaultPool sets the pool used when no mapping matches.
func (m *Metastore) SetDefaultPool(plan, pool string) error {
	p, err := m.GetResourcePlan(plan)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := p.Pools[pool]; !ok {
		return fmt.Errorf("metastore: plan %s has no pool %s", plan, pool)
	}
	p.DefaultPool = pool
	return nil
}

// ActivateResourcePlan enables and activates a plan, deactivating any other
// active plan (only one plan is active per deployment, paper §5.2).
func (m *Metastore) ActivateResourcePlan(name string) (*ResourcePlan, error) {
	p, err := m.GetResourcePlan(name)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, other := range m.plans {
		other.Active = false
	}
	p.Enabled = true
	p.Active = true
	return p, nil
}

// ActiveResourcePlan returns the currently active plan, or nil.
func (m *Metastore) ActiveResourcePlan() *ResourcePlan {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, p := range m.plans {
		if p.Active {
			return p
		}
	}
	return nil
}

// AttachRuleToPool finds a trigger by name across all plans and adds the
// pool to its applicable set ("ADD RULE r TO pool", paper §5.2).
func (m *Metastore) AttachRuleToPool(rule, pool string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.plans {
		for i := range p.Triggers {
			if p.Triggers[i].Name != rule {
				continue
			}
			if _, ok := p.Pools[pool]; !ok {
				return fmt.Errorf("metastore: plan %s has no pool %s", p.Name, pool)
			}
			p.Triggers[i].Pools = append(p.Triggers[i].Pools, pool)
			return nil
		}
	}
	return fmt.Errorf("metastore: no rule named %s", rule)
}
