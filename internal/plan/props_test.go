package plan

import "testing"

func k(col int) SortKey            { return SortKey{Col: col} }
func kd(col int) SortKey           { return SortKey{Col: col, Desc: true} }
func knf(col int) SortKey          { return SortKey{Col: col, NullsFirst: true} }
func keys(ks ...SortKey) []SortKey { return ks }

func TestOrderingSatisfies(t *testing.T) {
	cases := []struct {
		name               string
		delivered, require []SortKey
		want               bool
	}{
		{"exact", keys(k(0), k(1)), keys(k(0), k(1)), true},
		{"prefix", keys(k(0), k(1), k(2)), keys(k(0)), true},
		{"empty required", keys(k(0)), nil, true},
		{"longer required", keys(k(0)), keys(k(0), k(1)), false},
		{"desc mismatch", keys(k(0)), keys(kd(0)), false},
		{"nulls mismatch", keys(k(0)), keys(knf(0)), false},
		{"wrong column", keys(k(1)), keys(k(0)), false},
		{"not a prefix", keys(k(1), k(0)), keys(k(0)), false},
		{"unordered delivered", nil, keys(k(0)), false},
	}
	for _, c := range cases {
		if got := OrderingSatisfies(c.delivered, c.require); got != c.want {
			t.Errorf("%s: OrderingSatisfies=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestPartitioningSatisfies(t *testing.T) {
	cases := []struct {
		name               string
		delivered, require []int
		want               bool
	}{
		{"subset", []int{0}, []int{0, 1}, true},
		{"equal", []int{0, 1}, []int{1, 0}, true},
		{"unknown delivered", nil, []int{0}, false},
		{"extra delivered col", []int{0, 2}, []int{0, 1}, false},
	}
	for _, c := range cases {
		if got := PartitioningSatisfies(c.delivered, c.require); got != c.want {
			t.Errorf("%s: PartitioningSatisfies=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestOrderingCoversSet(t *testing.T) {
	cases := []struct {
		name      string
		delivered []SortKey
		cols      []int
		want      int
	}{
		{"exact order", keys(k(0), k(1)), []int{0, 1}, 2},
		{"permuted", keys(k(1), k(0), k(2)), []int{0, 1}, 2},
		{"desc still covers", keys(kd(0)), []int{0}, 1},
		{"duplicate cols dedup", keys(k(0)), []int{0, 0}, 1},
		{"empty set", keys(k(0)), nil, 0},
		{"foreign leading key", keys(k(2), k(0)), []int{0, 1}, -1},
		{"too short", keys(k(0)), []int{0, 1}, -1},
		{"extra keys beyond set", keys(k(1), k(0)), []int{1}, 1},
	}
	for _, c := range cases {
		if got := OrderingCoversSet(c.delivered, c.cols); got != c.want {
			t.Errorf("%s: OrderingCoversSet=%d, want %d", c.name, got, c.want)
		}
	}
}
