package plan

import (
	"fmt"

	"repro/internal/types"
)

// Param is a placeholder for a value bound at execute time: position Ord in
// the statement's parameter vector. A plan containing Params is a template —
// the plan cache stores it once per normalized digest, and BindParams
// stamps out an executable copy per run. Params survive optimization
// untouched (the constant folder only folds Literals) and never reach the
// physical compiler.
type Param struct {
	Ord int
	T   types.T
}

// Type implements Rex.
func (p *Param) Type() types.T { return p.T }

// Digest implements Rex.
func (p *Param) Digest() string { return fmt.Sprintf("?%d:%s", p.Ord, p.T.String()) }

// BindParams returns a deep copy of the plan with every Param replaced by a
// Literal holding args[Ord] cast to the Param's type. The copy is complete —
// no Rel or Rex node is shared with the template — so concurrent executions
// of the same cached plan never race on per-node state (e.g. Scan's lazy
// schema cache). Spool nodes sharing an ID keep sharing a single copied
// node, preserving shared-work identity.
func BindParams(root Rel, args []types.Datum) (Rel, error) {
	b := &binder{args: args, seen: map[Rel]Rel{}}
	out, err := b.rel(root)
	if err != nil {
		return nil, err
	}
	return out, nil
}

type binder struct {
	args []types.Datum
	// seen memoizes by source pointer so DAG-shaped plans (Spool shared by
	// several parents) stay DAGs after copying.
	seen map[Rel]Rel
}

func (b *binder) rel(r Rel) (Rel, error) {
	if r == nil {
		return nil, nil
	}
	if cp, ok := b.seen[r]; ok {
		return cp, nil
	}
	var out Rel
	switch x := r.(type) {
	case *Scan:
		cp := *x
		cp.fields = nil // reset lazy schema cache: each copy owns its own
		cp.Cols = append([]int(nil), x.Cols...)
		cp.RF = append([]RuntimeBind(nil), x.RF...)
		cp.Filter = nil
		for _, f := range x.Filter {
			nf, err := b.rex(f)
			if err != nil {
				return nil, err
			}
			cp.Filter = append(cp.Filter, nf)
		}
		out = &cp
	case *Values:
		cp := *x
		out = &cp
	case *ForeignScan:
		cp := *x
		out = &cp
	case *Filter:
		in, err := b.rel(x.Input)
		if err != nil {
			return nil, err
		}
		cond, err := b.rex(x.Cond)
		if err != nil {
			return nil, err
		}
		out = &Filter{Input: in, Cond: cond}
	case *Project:
		in, err := b.rel(x.Input)
		if err != nil {
			return nil, err
		}
		exprs := make([]Rex, len(x.Exprs))
		for i, e := range x.Exprs {
			ne, err := b.rex(e)
			if err != nil {
				return nil, err
			}
			exprs[i] = ne
		}
		out = &Project{Input: in, Exprs: exprs, Names: x.Names}
	case *Join:
		l, err := b.rel(x.Left)
		if err != nil {
			return nil, err
		}
		rr, err := b.rel(x.Right)
		if err != nil {
			return nil, err
		}
		cond, err := b.rex(x.Cond)
		if err != nil {
			return nil, err
		}
		out = &Join{Kind: x.Kind, Left: l, Right: rr, Cond: cond, ReducerID: x.ReducerID}
	case *Aggregate:
		in, err := b.rel(x.Input)
		if err != nil {
			return nil, err
		}
		gb := make([]Rex, len(x.GroupBy))
		for i, g := range x.GroupBy {
			ng, err := b.rex(g)
			if err != nil {
				return nil, err
			}
			gb[i] = ng
		}
		aggs := make([]AggCall, len(x.Aggs))
		for i, a := range x.Aggs {
			na := a
			arg, err := b.rex(a.Arg)
			if err != nil {
				return nil, err
			}
			na.Arg = arg
			aggs[i] = na
		}
		out = &Aggregate{Input: in, GroupBy: gb, Aggs: aggs, GroupingSets: x.GroupingSets, Names: x.Names}
	case *Window:
		in, err := b.rel(x.Input)
		if err != nil {
			return nil, err
		}
		fns := make([]WindowFn, len(x.Fns))
		for i, fn := range x.Fns {
			nf := fn
			arg, err := b.rex(fn.Arg)
			if err != nil {
				return nil, err
			}
			nf.Arg = arg
			fns[i] = nf
		}
		out = &Window{Input: in, Fns: fns, Names: x.Names}
	case *Sort:
		in, err := b.rel(x.Input)
		if err != nil {
			return nil, err
		}
		out = &Sort{Input: in, Keys: append([]SortKey(nil), x.Keys...)}
	case *Limit:
		in, err := b.rel(x.Input)
		if err != nil {
			return nil, err
		}
		out = &Limit{Input: in, N: x.N, Offset: x.Offset}
	case *SetOp:
		l, err := b.rel(x.Left)
		if err != nil {
			return nil, err
		}
		rr, err := b.rel(x.Right)
		if err != nil {
			return nil, err
		}
		out = &SetOp{Kind: x.Kind, All: x.All, Left: l, Right: rr}
	case *Spool:
		in, err := b.rel(x.Input)
		if err != nil {
			return nil, err
		}
		out = &Spool{ID: x.ID, Input: in}
	default:
		return nil, fmt.Errorf("plan: BindParams: unsupported node %T", r)
	}
	b.seen[r] = out
	return out, nil
}

func (b *binder) rex(e Rex) (Rex, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *Param:
		if x.Ord < 0 || x.Ord >= len(b.args) {
			return nil, fmt.Errorf("plan: parameter ?%d out of range (have %d args)", x.Ord, len(b.args))
		}
		v, err := types.Cast(b.args[x.Ord], x.T)
		if err != nil {
			return nil, fmt.Errorf("plan: binding parameter ?%d: %w", x.Ord, err)
		}
		return &Literal{Val: v, T: x.T}, nil
	case *ColRef:
		cp := *x
		return &cp, nil
	case *Literal:
		cp := *x
		return &cp, nil
	case *Func:
		args := make([]Rex, len(x.Args))
		for i, a := range x.Args {
			na, err := b.rex(a)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &Func{Op: x.Op, Args: args, T: x.T}, nil
	default:
		return nil, fmt.Errorf("plan: BindParams: unsupported expression %T", e)
	}
}

// HasParams reports whether any Rex in the tree is a Param — true for plan
// templates, false for executable plans.
func HasParams(root Rel) bool {
	found := false
	var walkRex func(e Rex)
	walkRex = func(e Rex) {
		switch x := e.(type) {
		case *Param:
			found = true
		case *Func:
			for _, a := range x.Args {
				walkRex(a)
			}
		}
	}
	var walk func(r Rel)
	seen := map[Rel]bool{}
	walk = func(r Rel) {
		if r == nil || seen[r] || found {
			return
		}
		seen[r] = true
		switch x := r.(type) {
		case *Scan:
			for _, f := range x.Filter {
				walkRex(f)
			}
		case *Filter:
			walkRex(x.Cond)
		case *Project:
			for _, e := range x.Exprs {
				walkRex(e)
			}
		case *Join:
			walkRex(x.Cond)
		case *Aggregate:
			for _, g := range x.GroupBy {
				walkRex(g)
			}
			for _, a := range x.Aggs {
				walkRex(a.Arg)
			}
		case *Window:
			for _, fn := range x.Fns {
				walkRex(fn.Arg)
			}
		}
		for _, c := range r.Children() {
			walk(c)
		}
	}
	walk(root)
	return found
}
