package plan

import (
	"testing"

	"repro/internal/metastore"
	"repro/internal/types"
)

func paramScan() (*Scan, *Filter) {
	t := &metastore.Table{
		DB: "default", Name: "t",
		Cols: []metastore.Column{
			{Name: "a", Type: types.TBigint},
			{Name: "b", Type: types.TString},
		},
	}
	sc := NewScan(t, "")
	f := &Filter{
		Input: sc,
		Cond: NewFunc("=", types.TBool,
			&ColRef{Idx: 0, T: types.TBigint},
			&Param{Ord: 0, T: types.TBigint}),
	}
	return sc, f
}

func TestBindParamsReplacesParams(t *testing.T) {
	_, tmpl := paramScan()
	if !HasParams(tmpl) {
		t.Fatal("template should report params")
	}
	bound, err := BindParams(tmpl, []types.Datum{types.NewBigint(7)})
	if err != nil {
		t.Fatal(err)
	}
	if HasParams(bound) {
		t.Fatal("bound plan still has params")
	}
	lit := bound.(*Filter).Cond.(*Func).Args[1].(*Literal)
	if lit.Val.I != 7 {
		t.Fatalf("bound literal = %v, want 7", lit.Val)
	}
	// The template is untouched: bind again with a different value.
	bound2, err := BindParams(tmpl, []types.Datum{types.NewBigint(9)})
	if err != nil {
		t.Fatal(err)
	}
	if got := bound2.(*Filter).Cond.(*Func).Args[1].(*Literal).Val.I; got != 9 {
		t.Fatalf("second bind = %d, want 9", got)
	}
	if _, ok := tmpl.Cond.(*Func).Args[1].(*Param); !ok {
		t.Fatal("template mutated by binding")
	}
}

func TestBindParamsDeepCopiesNodes(t *testing.T) {
	sc, tmpl := paramScan()
	bound, err := BindParams(tmpl, []types.Datum{types.NewBigint(1)})
	if err != nil {
		t.Fatal(err)
	}
	bsc := bound.(*Filter).Input.(*Scan)
	if bsc == sc {
		t.Fatal("Scan node shared between template and bound plan")
	}
	// Lazy schema cache must be private to the copy (concurrent executions
	// of one cached template would otherwise race on it).
	_ = bsc.Schema()
	if sc.fields != nil {
		t.Fatal("template Scan schema cache populated via bound copy")
	}
}

func TestBindParamsCastsToParamType(t *testing.T) {
	_, tmpl := paramScan()
	bound, err := BindParams(tmpl, []types.Datum{types.NewDouble(7.0)})
	if err != nil {
		t.Fatal(err)
	}
	lit := bound.(*Filter).Cond.(*Func).Args[1].(*Literal)
	if lit.T.Kind != types.Int64 || lit.Val.I != 7 {
		t.Fatalf("arg not cast to param type: %+v", lit)
	}
}

func TestBindParamsErrors(t *testing.T) {
	_, tmpl := paramScan()
	if _, err := BindParams(tmpl, nil); err == nil {
		t.Fatal("missing arg should error")
	}
	if _, err := BindParams(tmpl, []types.Datum{types.NewString("not a number")}); err == nil {
		t.Fatal("uncastable arg should error")
	}
}

func TestBindParamsPreservesSpoolSharing(t *testing.T) {
	_, tmpl := paramScan()
	sp := &Spool{ID: 1, Input: tmpl}
	root := &SetOp{Kind: Union, All: true, Left: sp, Right: sp}
	bound, err := BindParams(root, []types.Datum{types.NewBigint(3)})
	if err != nil {
		t.Fatal(err)
	}
	so := bound.(*SetOp)
	if so.Left != so.Right {
		t.Fatal("shared Spool split into two copies")
	}
}
