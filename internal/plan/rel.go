package plan

import (
	"fmt"
	"strings"

	"repro/internal/metastore"
	"repro/internal/types"
)

// Field is one output column of a relational operator.
type Field struct {
	Table string // qualifier (table alias), may be empty
	Name  string
	T     types.T
}

// Rel is a logical relational operator.
type Rel interface {
	Children() []Rel
	Schema() []Field
	Digest() string
}

// JoinKind enumerates logical join types.
type JoinKind uint8

// Join kinds. Single is a scalar-subquery join: left outer on the condition
// with a runtime guarantee of at most one match per left row.
const (
	Inner JoinKind = iota
	Left
	Right
	Full
	Cross
	Semi
	Anti
	Single
)

func (k JoinKind) String() string {
	return [...]string{"inner", "left", "right", "full", "cross", "semi", "anti", "single"}[k]
}

// Scan reads a table (or materialized view). Cols lists the ordinals of the
// table's columns (data columns then partition keys) that the scan emits.
// Filter holds pushed-down predicates over the scan's output. PartFilter
// holds predicates that reference only partition keys (used for static and
// dynamic partition pruning, §4.6).
type Scan struct {
	Table  *metastore.Table
	Alias  string
	Cols   []int
	Filter []Rex
	// Meta requests the three ACID system columns (__writeid, __fileid,
	// __rowid) as the first outputs; UPDATE/DELETE/MERGE plans use them to
	// address the rows they modify (paper §3.2).
	Meta bool
	// RF attaches dynamic semijoin reducers (paper §4.6) produced by join
	// build sides to scan output columns.
	RF     []RuntimeBind
	fields []Field
}

// RuntimeBind links a runtime semijoin reducer to a scan column. When the
// column is a partition key, the reducer's value set prunes whole
// partitions (dynamic partition pruning); otherwise the min/max range and
// Bloom filter drop rows and stripes (index semijoin).
type RuntimeBind struct {
	ID         int
	Col        int // scan output ordinal
	PartKeyIdx int // >= 0 when the column is a partition key
}

// TableCols returns the logical column list of a table: data columns
// followed by partition key columns.
func TableCols(t *metastore.Table) []metastore.Column {
	out := append([]metastore.Column{}, t.Cols...)
	return append(out, t.PartKeys...)
}

// NewScan builds a scan of every column.
func NewScan(t *metastore.Table, alias string) *Scan {
	all := TableCols(t)
	cols := make([]int, len(all))
	for i := range cols {
		cols[i] = i
	}
	return &Scan{Table: t, Alias: alias, Cols: cols}
}

// Children implements Rel.
func (s *Scan) Children() []Rel { return nil }

// Schema implements Rel.
func (s *Scan) Schema() []Field {
	if s.fields == nil {
		all := TableCols(s.Table)
		alias := s.Alias
		if alias == "" {
			alias = s.Table.Name
		}
		if s.Meta {
			for _, m := range []string{"__writeid", "__fileid", "__rowid"} {
				s.fields = append(s.fields, Field{Table: alias, Name: m, T: types.TBigint})
			}
		}
		for _, c := range s.Cols {
			s.fields = append(s.fields, Field{Table: alias, Name: all[c].Name, T: all[c].Type})
		}
	}
	return s.fields
}

// Digest implements Rel.
func (s *Scan) Digest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan(%s cols=%v", s.Table.FullName(), s.Cols)
	if s.Meta {
		b.WriteString(" meta")
	}
	for _, rf := range s.RF {
		fmt.Fprintf(&b, " rf%d@%d", rf.ID, rf.Col)
	}
	for _, f := range s.Filter {
		b.WriteString(" f=")
		b.WriteString(f.Digest())
	}
	b.WriteString(")")
	return b.String()
}

// Values is an inline constant relation.
type Values struct {
	Rows  [][]types.Datum
	Types []types.T
	Names []string
}

// Children implements Rel.
func (v *Values) Children() []Rel { return nil }

// Schema implements Rel.
func (v *Values) Schema() []Field {
	out := make([]Field, len(v.Types))
	for i := range v.Types {
		name := fmt.Sprintf("col%d", i)
		if i < len(v.Names) && v.Names[i] != "" {
			name = v.Names[i]
		}
		out[i] = Field{Name: name, T: v.Types[i]}
	}
	return out
}

// Digest implements Rel.
func (v *Values) Digest() string {
	var b strings.Builder
	b.WriteString("values(")
	for i, r := range v.Rows {
		if i > 0 {
			b.WriteByte(';')
		}
		for j, d := range r {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(d.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Filter keeps rows satisfying Cond.
type Filter struct {
	Input Rel
	Cond  Rex
}

// Children implements Rel.
func (f *Filter) Children() []Rel { return []Rel{f.Input} }

// Schema implements Rel.
func (f *Filter) Schema() []Field { return f.Input.Schema() }

// Digest implements Rel.
func (f *Filter) Digest() string {
	return "filter(" + f.Cond.Digest() + "," + f.Input.Digest() + ")"
}

// Project computes expressions over the input.
type Project struct {
	Input Rel
	Exprs []Rex
	Names []string
}

// Children implements Rel.
func (p *Project) Children() []Rel { return []Rel{p.Input} }

// Schema implements Rel.
func (p *Project) Schema() []Field {
	out := make([]Field, len(p.Exprs))
	for i, e := range p.Exprs {
		name := ""
		if i < len(p.Names) {
			name = p.Names[i]
		}
		if name == "" {
			if c, ok := e.(*ColRef); ok {
				in := p.Input.Schema()
				if c.Idx < len(in) {
					name = in[c.Idx].Name
					out[i] = Field{Table: in[c.Idx].Table, Name: name, T: e.Type()}
					continue
				}
			}
			name = fmt.Sprintf("_c%d", i)
		}
		out[i] = Field{Name: name, T: e.Type()}
	}
	return out
}

// Digest implements Rel.
func (p *Project) Digest() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.Digest()
	}
	return "project(" + strings.Join(parts, ",") + "," + p.Input.Digest() + ")"
}

// Join combines two inputs. For Semi/Anti the output schema is the left
// input only; for Single it is left plus right.
type Join struct {
	Kind  JoinKind
	Left  Rel
	Right Rel
	Cond  Rex // over concatenated (left ++ right) schema
	// ReducerID, when non-zero, publishes the build (right) side's first
	// equi-key values as a runtime semijoin reducer under this id.
	ReducerID int
}

// Children implements Rel.
func (j *Join) Children() []Rel { return []Rel{j.Left, j.Right} }

// Schema implements Rel.
func (j *Join) Schema() []Field {
	l := j.Left.Schema()
	switch j.Kind {
	case Semi, Anti:
		return l
	}
	out := append([]Field{}, l...)
	for _, f := range j.Right.Schema() {
		g := f
		if j.Kind == Left || j.Kind == Full || j.Kind == Single {
			// outer side may produce NULLs; type unchanged
		}
		out = append(out, g)
	}
	return out
}

// Digest implements Rel.
func (j *Join) Digest() string {
	cond := "true"
	if j.Cond != nil {
		cond = j.Cond.Digest()
	}
	return fmt.Sprintf("join[%s](%s,%s,%s)", j.Kind, cond, j.Left.Digest(), j.Right.Digest())
}

// Aggregate groups by GroupBy expressions and computes Aggs. The output
// schema is the group columns followed by one column per aggregate, plus a
// trailing BIGINT __grouping_id column when GroupingSets is non-nil
// (paper §3.1 advanced OLAP).
type Aggregate struct {
	Input        Rel
	GroupBy      []Rex
	Aggs         []AggCall
	GroupingSets [][]int // indexes into GroupBy; nil for plain GROUP BY
	Names        []string
}

// Children implements Rel.
func (a *Aggregate) Children() []Rel { return []Rel{a.Input} }

// Schema implements Rel.
func (a *Aggregate) Schema() []Field {
	var out []Field
	for i, g := range a.GroupBy {
		name := fmt.Sprintf("_g%d", i)
		if i < len(a.Names) && a.Names[i] != "" {
			name = a.Names[i]
		}
		out = append(out, Field{Name: name, T: g.Type()})
	}
	for i, ag := range a.Aggs {
		name := fmt.Sprintf("_a%d", i)
		if k := len(a.GroupBy) + i; k < len(a.Names) && a.Names[k] != "" {
			name = a.Names[k]
		}
		out = append(out, Field{Name: name, T: ag.T})
	}
	if a.GroupingSets != nil {
		out = append(out, Field{Name: "__grouping_id", T: types.TBigint})
	}
	return out
}

// Digest implements Rel.
func (a *Aggregate) Digest() string {
	var b strings.Builder
	b.WriteString("agg(g=")
	for i, g := range a.GroupBy {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(g.Digest())
	}
	b.WriteString(" a=")
	for i, ag := range a.Aggs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(ag.Digest())
	}
	if a.GroupingSets != nil {
		fmt.Fprintf(&b, " sets=%v", a.GroupingSets)
	}
	b.WriteByte(',')
	b.WriteString(a.Input.Digest())
	b.WriteByte(')')
	return b.String()
}

// Window computes window functions; output = input columns ++ one column
// per function.
type Window struct {
	Input Rel
	Fns   []WindowFn
	Names []string
}

// Children implements Rel.
func (w *Window) Children() []Rel { return []Rel{w.Input} }

// Schema implements Rel.
func (w *Window) Schema() []Field {
	out := append([]Field{}, w.Input.Schema()...)
	for i, fn := range w.Fns {
		name := fmt.Sprintf("_w%d", i)
		if i < len(w.Names) && w.Names[i] != "" {
			name = w.Names[i]
		}
		out = append(out, Field{Name: name, T: fn.T})
	}
	return out
}

// Digest implements Rel.
func (w *Window) Digest() string {
	parts := make([]string, len(w.Fns))
	for i, fn := range w.Fns {
		parts[i] = fn.Digest()
	}
	return "window(" + strings.Join(parts, ";") + "," + w.Input.Digest() + ")"
}

// Sort orders rows by the given keys.
type Sort struct {
	Input Rel
	Keys  []SortKey
}

// Children implements Rel.
func (s *Sort) Children() []Rel { return []Rel{s.Input} }

// Schema implements Rel.
func (s *Sort) Schema() []Field { return s.Input.Schema() }

// Digest implements Rel.
func (s *Sort) Digest() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Digest()
	}
	return "sort(" + strings.Join(parts, ",") + "," + s.Input.Digest() + ")"
}

// Limit keeps N rows after skipping the first Offset.
type Limit struct {
	Input  Rel
	N      int64
	Offset int64
}

// Children implements Rel.
func (l *Limit) Children() []Rel { return []Rel{l.Input} }

// Schema implements Rel.
func (l *Limit) Schema() []Field { return l.Input.Schema() }

// Digest implements Rel.
func (l *Limit) Digest() string {
	return fmt.Sprintf("limit(%d,%d,%s)", l.N, l.Offset, l.Input.Digest())
}

// SetOpKind enumerates set operations.
type SetOpKind uint8

// Set operations.
const (
	Union SetOpKind = iota
	Intersect
	Except
)

func (k SetOpKind) String() string {
	return [...]string{"union", "intersect", "except"}[k]
}

// SetOp combines two inputs with identical arity.
type SetOp struct {
	Kind  SetOpKind
	All   bool
	Left  Rel
	Right Rel
}

// Children implements Rel.
func (s *SetOp) Children() []Rel { return []Rel{s.Left, s.Right} }

// Schema implements Rel.
func (s *SetOp) Schema() []Field { return s.Left.Schema() }

// Digest implements Rel.
func (s *SetOp) Digest() string {
	all := ""
	if s.All {
		all = " all"
	}
	return fmt.Sprintf("%s%s(%s,%s)", s.Kind, all, s.Left.Digest(), s.Right.Digest())
}

// ForeignScan reads from an external system through a storage handler
// (paper §6). Query carries the pushed-down query in the external system's
// language (e.g. Druid JSON, Figure 6); Pushed describes which operators
// were folded in, for EXPLAIN.
type ForeignScan struct {
	Handler string
	Table   *metastore.Table
	Query   string
	Pushed  string
	Fields  []Field
}

// Children implements Rel.
func (f *ForeignScan) Children() []Rel { return nil }

// Schema implements Rel.
func (f *ForeignScan) Schema() []Field { return f.Fields }

// Digest implements Rel.
func (f *ForeignScan) Digest() string {
	return fmt.Sprintf("foreign[%s](%s,%s)", f.Handler, f.Table.FullName(), f.Query)
}

// Explain renders a plan tree as an indented string.
func Explain(r Rel) string {
	var b strings.Builder
	explain(&b, r, 0)
	return b.String()
}

func explain(b *strings.Builder, r Rel, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	switch x := r.(type) {
	case *Scan:
		fmt.Fprintf(b, "TableScan %s", x.Table.FullName())
		if len(x.Filter) > 0 {
			parts := make([]string, len(x.Filter))
			for i, f := range x.Filter {
				parts[i] = f.Digest()
			}
			fmt.Fprintf(b, " filter=[%s]", strings.Join(parts, " AND "))
		}
		fmt.Fprintf(b, " cols=%v", x.Cols)
		for _, rf := range x.RF {
			if rf.PartKeyIdx >= 0 {
				fmt.Fprintf(b, " dynamic-partition-prune(rf%d)", rf.ID)
			} else {
				fmt.Fprintf(b, " semijoin-reducer(rf%d@$%d)", rf.ID, rf.Col)
			}
		}
	case *ForeignScan:
		fmt.Fprintf(b, "ForeignScan[%s] %s pushed=[%s]", x.Handler, x.Table.FullName(), x.Pushed)
	case *Values:
		fmt.Fprintf(b, "Values rows=%d", len(x.Rows))
	case *Filter:
		fmt.Fprintf(b, "Filter %s", x.Cond.Digest())
	case *Project:
		parts := make([]string, len(x.Exprs))
		for i, e := range x.Exprs {
			parts[i] = e.Digest()
		}
		fmt.Fprintf(b, "Project %s", strings.Join(parts, ", "))
	case *Join:
		cond := "true"
		if x.Cond != nil {
			cond = x.Cond.Digest()
		}
		fmt.Fprintf(b, "Join[%s] %s", x.Kind, cond)
		if x.ReducerID != 0 {
			fmt.Fprintf(b, " builds-reducer(rf%d)", x.ReducerID)
		}
	case *Aggregate:
		fmt.Fprintf(b, "Aggregate groups=%d aggs=%d", len(x.GroupBy), len(x.Aggs))
		if x.GroupingSets != nil {
			fmt.Fprintf(b, " sets=%d", len(x.GroupingSets))
		}
	case *Window:
		fmt.Fprintf(b, "Window fns=%d", len(x.Fns))
	case *Sort:
		fmt.Fprintf(b, "Sort keys=%d", len(x.Keys))
	case *Limit:
		fmt.Fprintf(b, "Limit %d", x.N)
		if x.Offset > 0 {
			fmt.Fprintf(b, " offset=%d", x.Offset)
		}
	case *SetOp:
		fmt.Fprintf(b, "SetOp[%s all=%v]", x.Kind, x.All)
	case *Spool:
		fmt.Fprintf(b, "Spool shared=%d", x.ID)
	default:
		fmt.Fprintf(b, "%T", r)
	}
	b.WriteByte('\n')
	for _, c := range r.Children() {
		explain(b, c, depth+1)
	}
}

// Spool marks a subtree whose result is computed once and shared by every
// consumer — the product of the shared work optimizer (paper §4.5). All
// Spool nodes with the same ID share one materialization.
type Spool struct {
	ID    int
	Input Rel
}

// Children implements Rel.
func (s *Spool) Children() []Rel { return []Rel{s.Input} }

// Schema implements Rel.
func (s *Spool) Schema() []Field { return s.Input.Schema() }

// Digest implements Rel.
func (s *Spool) Digest() string {
	return fmt.Sprintf("spool#%d(%s)", s.ID, s.Input.Digest())
}
