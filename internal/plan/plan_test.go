package plan

import (
	"strings"
	"testing"

	"repro/internal/metastore"
	"repro/internal/types"
)

func testTable() *metastore.Table {
	return &metastore.Table{
		DB: "d", Name: "t",
		Cols: []metastore.Column{
			{Name: "a", Type: types.TBigint},
			{Name: "b", Type: types.TString},
		},
		PartKeys: []metastore.Column{{Name: "p", Type: types.TInt}},
	}
}

func TestScanSchemaIncludesPartitionKeys(t *testing.T) {
	s := NewScan(testTable(), "x")
	fields := s.Schema()
	if len(fields) != 3 || fields[2].Name != "p" || fields[0].Table != "x" {
		t.Errorf("schema: %+v", fields)
	}
}

func TestScanMetaColumns(t *testing.T) {
	s := NewScan(testTable(), "")
	s.Meta = true
	fields := s.Schema()
	if len(fields) != 6 || fields[0].Name != "__writeid" {
		t.Errorf("meta schema: %+v", fields)
	}
}

func TestDigestsDistinguishPlans(t *testing.T) {
	s1 := NewScan(testTable(), "")
	s2 := NewScan(testTable(), "")
	if s1.Digest() != s2.Digest() {
		t.Error("identical scans must share a digest")
	}
	f := &Filter{Input: s1, Cond: NewFunc("=", types.TBool,
		&ColRef{Idx: 0, T: types.TBigint}, NewLiteral(types.NewBigint(1)))}
	if f.Digest() == s1.Digest() {
		t.Error("filter digest must differ from its input")
	}
}

func TestCommutativeDigestNormalization(t *testing.T) {
	a := &ColRef{Idx: 0, T: types.TBigint}
	b := &ColRef{Idx: 1, T: types.TBigint}
	d1 := NewFunc("=", types.TBool, a, b).Digest()
	d2 := NewFunc("=", types.TBool, b, a).Digest()
	if d1 != d2 {
		t.Errorf("a=b and b=a digests differ: %s vs %s", d1, d2)
	}
	d1 = NewFunc("<", types.TBool, a, b).Digest()
	d2 = NewFunc("<", types.TBool, b, a).Digest()
	if d1 == d2 {
		t.Error("a<b and b<a must differ")
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	a := NewLiteral(types.NewBool(true))
	b := NewFunc("=", types.TBool, &ColRef{Idx: 0, T: types.TBigint}, NewLiteral(types.NewBigint(1)))
	c := NewFunc("and", types.TBool, a, b)
	parts := Conjuncts(c)
	if len(parts) != 2 {
		t.Errorf("conjuncts: %d", len(parts))
	}
	back := AndAll(parts)
	if back == nil || len(Conjuncts(back)) != 2 {
		t.Error("AndAll lost conjuncts")
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
}

func TestShiftAndRemapCols(t *testing.T) {
	e := NewFunc("+", types.TBigint,
		&ColRef{Idx: 2, T: types.TBigint}, &ColRef{Idx: 5, T: types.TBigint})
	shifted := ShiftCols(e, -2)
	bits := map[int]bool{}
	InputBits(shifted, bits)
	if !bits[0] || !bits[3] || len(bits) != 2 {
		t.Errorf("shifted bits: %v", bits)
	}
	if MaxCol(shifted) != 3 {
		t.Errorf("max col: %d", MaxCol(shifted))
	}
}

func TestJoinSchemaSemantics(t *testing.T) {
	l := NewScan(testTable(), "l")
	r := NewScan(testTable(), "r")
	inner := &Join{Kind: Inner, Left: l, Right: r}
	if len(inner.Schema()) != 6 {
		t.Errorf("inner join width: %d", len(inner.Schema()))
	}
	semi := &Join{Kind: Semi, Left: l, Right: r}
	if len(semi.Schema()) != 3 {
		t.Errorf("semi join width: %d", len(semi.Schema()))
	}
}

func TestExplainRendersTree(t *testing.T) {
	s := NewScan(testTable(), "")
	agg := &Aggregate{
		Input:   s,
		GroupBy: []Rex{&ColRef{Idx: 1, T: types.TString}},
		Aggs:    []AggCall{{Fn: "count", T: types.TBigint}},
	}
	top := &Limit{Input: &Sort{Input: agg, Keys: []SortKey{{Col: 1, Desc: true}}}, N: 5}
	out := Explain(top)
	for _, want := range []string{"Limit 5", "Sort", "Aggregate", "TableScan d.t"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}
