// Package plan defines the logical relational algebra the analyzer produces
// and the optimizer transforms — the role Apache Calcite's RelNode/RexNode
// trees play in Hive (paper §2, §4.1). Nodes carry resolved column
// ordinals, types, and canonical digests used for plan matching by the
// materialized-view rewriter, the shared-work optimizer and the query
// result cache.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Rex is a scalar (row-level) expression over the input row of a Rel.
type Rex interface {
	Type() types.T
	Digest() string
}

// ColRef references column Idx of the operator's input row.
type ColRef struct {
	Idx int
	T   types.T
}

// Type implements Rex.
func (c *ColRef) Type() types.T { return c.T }

// Digest implements Rex.
func (c *ColRef) Digest() string { return fmt.Sprintf("$%d", c.Idx) }

// Literal is a constant.
type Literal struct {
	Val types.Datum
	T   types.T
}

// Type implements Rex.
func (l *Literal) Type() types.T { return l.T }

// Digest implements Rex.
func (l *Literal) Digest() string {
	if l.Val.Null {
		return "NULL:" + l.T.String()
	}
	if l.Val.K == types.String {
		return "'" + l.Val.S + "'"
	}
	return l.Val.String()
}

// NewLiteral builds a literal from a datum.
func NewLiteral(d types.Datum) *Literal {
	t := types.T{Kind: d.K}
	if d.K == types.Decimal {
		t = types.TDecimal(18, d.DecimalScale())
	}
	return &Literal{Val: d, T: t}
}

// Func is an n-ary operation. Op names are lower-case ("+", "=", "and",
// "or", "not", "like", "case", "cast", "extract:year", "coalesce", ...).
type Func struct {
	Op   string
	Args []Rex
	T    types.T
}

// Type implements Rex.
func (f *Func) Type() types.T { return f.T }

// Digest implements Rex.
func (f *Func) Digest() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.Digest()
	}
	// Commutative operators get order-normalized digests so a=b matches b=a.
	switch f.Op {
	case "+", "*", "=", "and", "or":
		if len(parts) == 2 && parts[0] > parts[1] {
			parts[0], parts[1] = parts[1], parts[0]
		}
	}
	return f.Op + "(" + strings.Join(parts, ",") + ")" + ":" + f.T.String()
}

// NewFunc constructs a Func with an explicit result type.
func NewFunc(op string, t types.T, args ...Rex) *Func {
	return &Func{Op: op, Args: args, T: t}
}

// Conjuncts splits a boolean expression on AND.
func Conjuncts(e Rex) []Rex {
	f, ok := e.(*Func)
	if ok && f.Op == "and" {
		var out []Rex
		for _, a := range f.Args {
			out = append(out, Conjuncts(a)...)
		}
		return out
	}
	if e == nil {
		return nil
	}
	return []Rex{e}
}

// AndAll combines conjuncts back into one expression (nil when empty).
func AndAll(conds []Rex) Rex {
	var out Rex
	for _, c := range conds {
		if c == nil {
			continue
		}
		if out == nil {
			out = c
		} else {
			out = NewFunc("and", types.TBool, out, c)
		}
	}
	return out
}

// InputBits reports which input columns an expression references.
func InputBits(e Rex, bits map[int]bool) {
	switch x := e.(type) {
	case *ColRef:
		bits[x.Idx] = true
	case *Func:
		for _, a := range x.Args {
			InputBits(a, bits)
		}
	}
}

// ShiftCols returns a copy of e with every ColRef index shifted by delta.
func ShiftCols(e Rex, delta int) Rex {
	return RemapCols(e, func(i int) int { return i + delta })
}

// RemapCols returns a copy of e with ColRef indexes remapped by f.
func RemapCols(e Rex, f func(int) int) Rex {
	switch x := e.(type) {
	case *ColRef:
		return &ColRef{Idx: f(x.Idx), T: x.T}
	case *Func:
		args := make([]Rex, len(x.Args))
		for i, a := range x.Args {
			args[i] = RemapCols(a, f)
		}
		return &Func{Op: x.Op, Args: args, T: x.T}
	default:
		return e
	}
}

// MaxCol returns the largest ColRef index in e, or -1.
func MaxCol(e Rex) int {
	max := -1
	bits := map[int]bool{}
	InputBits(e, bits)
	for i := range bits {
		if i > max {
			max = i
		}
	}
	return max
}

// IsLiteralTrue reports whether e is the constant TRUE.
func IsLiteralTrue(e Rex) bool {
	l, ok := e.(*Literal)
	return ok && !l.Val.Null && l.Val.K == types.Boolean && l.Val.I != 0
}

// AggCall is one aggregate function application.
type AggCall struct {
	Fn       string // count, sum, avg, min, max
	Arg      Rex    // nil for COUNT(*)
	Distinct bool
	T        types.T
}

// Digest returns the canonical form of the aggregate.
func (a AggCall) Digest() string {
	s := a.Fn + "("
	if a.Distinct {
		s += "distinct "
	}
	if a.Arg != nil {
		s += a.Arg.Digest()
	} else {
		s += "*"
	}
	return s + ")"
}

// SortKey orders by one output column of the input.
type SortKey struct {
	Col        int
	Desc       bool
	NullsFirst bool
}

// Digest renders a sort key.
func (k SortKey) Digest() string {
	d := fmt.Sprintf("$%d", k.Col)
	if k.Desc {
		d += " desc"
	}
	if k.NullsFirst {
		d += " nf"
	}
	return d
}

// WindowFn is one windowed function application (paper §3.1 OLAP support).
type WindowFn struct {
	Fn          string // row_number, rank, dense_rank, sum, avg, min, max, count
	Arg         Rex
	PartitionBy []int
	OrderBy     []SortKey
	T           types.T
}

// Digest renders a window function.
func (w WindowFn) Digest() string {
	var b strings.Builder
	b.WriteString(w.Fn)
	b.WriteByte('(')
	if w.Arg != nil {
		b.WriteString(w.Arg.Digest())
	}
	b.WriteString(") over(p=")
	for i, p := range w.PartitionBy {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "$%d", p)
	}
	b.WriteString(" o=")
	for i, k := range w.OrderBy {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k.Digest())
	}
	b.WriteByte(')')
	return b.String()
}
