// Physical properties (Calcite-style traits, paper §4.1–4.2): the planner
// carries what each operator's output already guarantees — sort order,
// hash/value partitioning, uniqueness — and inserts enforcers (Sort,
// exchange) only when a consumer's required property is not satisfied by
// what its input delivers. The types live in plan so both the optimizer
// and the physical layer speak the same vocabulary.
package plan

// Properties describes what an operator's output stream guarantees.
// The zero value promises nothing.
type Properties struct {
	// Ordering is the delivered sort order: rows are non-decreasing under
	// these keys, compared exactly as SortOp would (direction and NULL
	// placement per key). Empty means unordered.
	Ordering []SortKey
	// Partitioning lists output ordinals the stream is value-partitioned
	// on: rows that agree on these columns arrive from the same partition
	// unit (a Hive partition directory is one distinct value combination),
	// so any two rows with equal values on ALL of these columns share a
	// unit. Empty means unknown.
	Partitioning []int
	// Unique lists key sets (output ordinals) known to be duplicate-free,
	// e.g. the group-by columns of an aggregate. Empty means unknown.
	Unique [][]int
}

// OrderingSatisfies reports whether a stream ordered by delivered is also
// ordered by required: required must be a per-position prefix of delivered
// with exact key equality (column, direction, NULL placement). A longer
// delivered ordering only refines ties of the required prefix, which
// preserves the required order.
func OrderingSatisfies(delivered, required []SortKey) bool {
	if len(required) > len(delivered) {
		return false
	}
	for i, k := range required {
		if delivered[i] != k {
			return false
		}
	}
	return true
}

// PartitioningSatisfies reports whether value-partitioning on delivered
// columns implies co-location for rows that agree on the required columns:
// true iff every delivered column is among the required ones (set
// containment delivered ⊆ required). Rows equal on all required columns
// are then equal on all delivered columns, hence in the same unit.
func PartitioningSatisfies(delivered, required []int) bool {
	if len(delivered) == 0 {
		return false
	}
	for _, d := range delivered {
		found := false
		for _, r := range required {
			if d == r {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// OrderingCoversSet reports whether the first keys of delivered cover
// exactly the column set cols (any direction, any permutation), returning
// the number of leading keys consumed, or -1. Sorting by any permutation
// and direction of a column set still groups equal combinations
// contiguously, which is all a partition pass needs.
func OrderingCoversSet(delivered []SortKey, cols []int) int {
	want := make(map[int]bool, len(cols))
	for _, c := range cols {
		want[c] = true
	}
	n := len(want)
	if n > len(delivered) {
		return -1
	}
	seen := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		c := delivered[i].Col
		if !want[c] || seen[c] {
			return -1
		}
		seen[c] = true
	}
	return n
}
