// Package wm implements the LLAP workload manager (paper §5.2): resource
// plans with pools (a fraction of cluster executors, a fraction of cluster
// memory, and a query concurrency cap), mappings that route queries to
// pools, and triggers that move or kill queries based on runtime metrics.
//
// Admission is memory-aware (paper §4.4): every query reserves an estimate
// of its peak memory against its pool's aggregate budget before it runs.
// The first run of a plan digest reserves a conservative share; repeats
// reserve from a per-digest peak-memory history fed back by the executor's
// memory governor (Observe). A pool whose budget is exhausted degrades
// gracefully instead of rejecting: queries wait in a bounded, FIFO,
// context-aware queue, and when the queue deadline expires (or the queue
// overflows) they are admitted anyway at reduced DOP with a shrunken
// per-query budget — they spill instead of waiting. Idle pools lend unused
// headroom (executors and bytes) to busy ones; loans are tracked per
// admission and returned to the owning pool on release, and a pool with
// waiters never lends, which is what reclaims its headroom on demand.
package wm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metastore"
)

// Action is a trigger outcome.
type Action int

// Trigger outcomes.
const (
	ActionNone Action = iota
	ActionMove
	ActionKill
)

// Admission-queue failures. Both leave the pool's accounting untouched.
var (
	// ErrQueueFull is returned when a pool's bounded admission queue
	// overflows and no concurrency slot is free to degrade into.
	ErrQueueFull = errors.New("wm: admission queue full")
	// ErrQueueTimeout is returned when a queued query's deadline expires
	// while the pool's concurrency cap (a hard cap, unlike memory) is
	// still exhausted.
	ErrQueueTimeout = errors.New("wm: admission queue timeout")
)

// minReserve is the smallest memory reservation an admission carries: below
// this, estimate noise would admit unbounded concurrency.
const minReserve = 64 << 10

// QueryMetrics feeds trigger evaluation. PeakMemoryBytes and SpilledBytes
// come from the query's memory governor (paper §4.4: resource-plan
// guardrails act on runtime metrics), so plans can move or kill queries
// that blow past their memory share or thrash the scratch disk.
type QueryMetrics struct {
	TotalRuntimeMS  int64
	ShuffleBytes    int64
	PeakMemoryBytes int64
	SpilledBytes    int64
	// StripesSkipped (data + delete-delta stripes pruned by search
	// arguments) and DecodedCacheHits (I/O elevator decoded-vector cache)
	// expose scan efficiency to triggers, e.g. routing full-scan queries
	// that skip nothing into a constrained pool.
	StripesSkipped   int64
	DecodedCacheHits int64
}

// waiter is one queued admission request. ready is buffered so the pump
// can hand over an admission without blocking under the manager lock.
type waiter struct {
	digest string
	est    int64
	ready  chan *Admission
}

type poolState struct {
	pool      metastore.Pool
	executors int
	memBudget int64 // 0 = unlimited (no memory admission)
	running   int
	execInUse int   // own executors granted to admissions homed here
	execLent  int   // own executors lent to other pools' admissions
	memInUse  int64 // own bytes reserved by admissions homed here
	memLent   int64 // own bytes lent to other pools' admissions
	queue     []*waiter
}

func (ps *poolState) execAvail() int {
	n := ps.executors - ps.execInUse - ps.execLent
	if n < 0 {
		n = 0
	}
	return n
}

func (ps *poolState) memAvail() int64 {
	n := ps.memBudget - ps.memInUse - ps.memLent
	if n < 0 {
		n = 0
	}
	return n
}

// degradeFloor is the minimal budget a degraded admission runs with even
// when the pool is fully reserved; it bounds the pool's overdraft to one
// floor per degraded admission.
func (ps *poolState) degradeFloor() int64 {
	f := ps.memBudget / 8
	if f < minReserve {
		f = minReserve
	}
	return f
}

// digestStats is the observed peak-memory history of one plan digest.
type digestStats struct {
	peak int64
	runs int64
}

// Manager admits queries to pools and evaluates triggers.
type Manager struct {
	mu       sync.Mutex
	plan     *metastore.ResourcePlan
	total    int
	totalMem int64
	pools    map[string]*poolState
	history  map[string]*digestStats
	peakMem  int64 // high-water of globally reserved bytes (observability)

	// QueueLimit bounds each pool's admission queue (waiters beyond it
	// degrade or fail). 0 derives 4x the pool's query parallelism,
	// minimum 16. Set before concurrent use.
	QueueLimit int
}

// NewManager instantiates the active resource plan over a cluster with the
// given total executor count and no memory budget (memory admission off).
func NewManager(plan *metastore.ResourcePlan, totalExecutors int) (*Manager, error) {
	return NewManagerWithMemory(plan, totalExecutors, 0)
}

// NewManagerWithMemory instantiates the active resource plan over a cluster
// with the given executor count and an aggregate memory budget in bytes
// (<= 0 disables memory admission). Each pool's budget is its
// MemFraction's share; pools without a MemFraction inherit their
// AllocFraction, so plans written before memory admission split memory the
// way they split executors.
func NewManagerWithMemory(plan *metastore.ResourcePlan, totalExecutors int, memoryBytes int64) (*Manager, error) {
	if plan == nil {
		return nil, fmt.Errorf("wm: nil resource plan")
	}
	m := &Manager{
		plan:     plan,
		total:    totalExecutors,
		totalMem: memoryBytes,
		pools:    map[string]*poolState{},
		history:  map[string]*digestStats{},
	}
	for name, p := range plan.Pools {
		execs := int(p.AllocFraction * float64(totalExecutors))
		if execs < 1 {
			execs = 1
		}
		ps := &poolState{pool: *p, executors: execs}
		if memoryBytes > 0 {
			frac := p.MemFraction
			if frac <= 0 {
				frac = p.AllocFraction
			}
			ps.memBudget = int64(frac * float64(memoryBytes))
			if ps.memBudget < minReserve {
				ps.memBudget = minReserve
			}
		}
		m.pools[name] = ps
	}
	return m, nil
}

// PoolFor routes a query by application and user through the plan's
// mappings, falling back to the default pool.
func (m *Manager) PoolFor(user, application string) string {
	for _, mp := range m.plan.Mappings {
		switch mp.Kind {
		case "application":
			if mp.Name == application {
				return mp.Pool
			}
		case "user":
			if mp.Name == user {
				return mp.Pool
			}
		}
	}
	return m.plan.DefaultPool
}

// AdmitRequest describes the query asking for admission.
type AdmitRequest struct {
	// Digest identifies the plan shape for the peak-memory history; ""
	// always takes the conservative first-run estimate.
	Digest string
	// QueueTimeout bounds the time spent queued. After it, the query is
	// admitted degraded if a concurrency slot is free, or fails with
	// ErrQueueTimeout. 0 waits until admission or context cancellation.
	QueueTimeout time.Duration
}

// Admission is a granted admission; Release returns the resources —
// including anything borrowed from other pools — exactly once.
type Admission struct {
	m    *Manager
	Pool string
	// Executors is the granted executor share.
	Executors int
	// DOP caps the query's intra-operator parallelism (degraded
	// admissions run narrower).
	DOP int
	// MemoryBytes is the peak-memory reservation charged to the pool
	// (and its lenders) until Release.
	MemoryBytes int64
	// QueryBudget is the per-query memory budget the executor must
	// enforce (hive.query.max.memory override): the admission is only
	// sound if the query spills rather than growing past its
	// reservation. 0 = no memory admission.
	QueryBudget int64
	// Degraded reports a shrunken admission: the pool was saturated and
	// the query was admitted with reduced DOP and budget instead of
	// waiting longer or being rejected.
	Degraded bool

	digest     string
	ownExec    int
	ownMem     int64
	borrowExec map[string]int
	borrowMem  map[string]int64
	released   bool
}

// Admit blocks until the pool has a concurrency slot and enough budget for
// the query's estimated peak memory, then grants the admission. Waiting is
// FIFO per pool and context-aware: cancellation removes the waiter and the
// queue keeps moving. See AdmitRequest for the deadline and degradation
// semantics.
func (m *Manager) Admit(ctx context.Context, pool string, req AdmitRequest) (*Admission, error) {
	m.mu.Lock()
	ps, ok := m.pools[pool]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("wm: no such pool %q", pool)
	}
	est := m.estimateLocked(ps, req.Digest)
	// Fast path only when nobody is ahead: admissions are FIFO.
	if len(ps.queue) == 0 {
		if a := m.tryAdmitLocked(ps, pool, est, req.Digest); a != nil {
			m.mu.Unlock()
			return a, nil
		}
	}
	if len(ps.queue) >= m.queueLimitFor(ps) {
		// Bounded queue: under overload, degrade instead of growing the
		// queue — a shrunken-budget query spills and completes, a deeper
		// queue just defers the rejection.
		if ps.running < ps.pool.QueryParallelism {
			a := m.degradeAdmitLocked(ps, pool, est, req.Digest)
			m.mu.Unlock()
			return a, nil
		}
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	w := &waiter{digest: req.Digest, est: est, ready: make(chan *Admission, 1)}
	ps.queue = append(ps.queue, w)
	m.mu.Unlock()

	var deadline <-chan time.Time
	if req.QueueTimeout > 0 {
		t := time.NewTimer(req.QueueTimeout)
		defer t.Stop()
		deadline = t.C
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case a := <-w.ready:
		return a, nil
	case <-done:
		// Remove the waiter so the pool queue keeps moving; if the pump
		// delivered concurrently, hand the admission straight back.
		if a := m.cancelWait(ps, w); a != nil {
			a.Release()
		}
		return nil, ctx.Err()
	case <-deadline:
		if a := m.cancelWait(ps, w); a != nil {
			return a, nil
		}
		m.mu.Lock()
		if ps.running < ps.pool.QueryParallelism {
			// Memory was the blocker: stop waiting for the reservation
			// and run shrunken — the query spills instead of queueing.
			a := m.degradeAdmitLocked(ps, pool, est, req.Digest)
			m.mu.Unlock()
			return a, nil
		}
		m.mu.Unlock()
		return nil, ErrQueueTimeout
	}
}

// cancelWait removes w from the pool queue. If the pump already popped and
// served it, the granted admission is returned instead (never nil and
// removed at once).
func (m *Manager) cancelWait(ps *poolState, w *waiter) *Admission {
	m.mu.Lock()
	for i, q := range ps.queue {
		if q == w {
			ps.queue = append(ps.queue[:i], ps.queue[i+1:]...)
			// The head may have been the only blocker for the rest.
			m.pumpLocked()
			m.mu.Unlock()
			return nil
		}
	}
	m.mu.Unlock()
	select {
	case a := <-w.ready:
		return a
	default:
		return nil
	}
}

func (m *Manager) queueLimitFor(ps *poolState) int {
	if m.QueueLimit > 0 {
		return m.QueueLimit
	}
	n := 4 * ps.pool.QueryParallelism
	if n < 16 {
		n = 16
	}
	return n
}

// estimateLocked is the peak-memory reservation for one run of a digest:
// observed history with 25% headroom when the digest has run before, the
// pool's fair share (budget / parallelism) for a first run. Clamped to
// [minReserve, pool budget] — a repeat offender bigger than the pool
// reserves the whole pool and runs alone, spilling under its enforced
// budget.
func (m *Manager) estimateLocked(ps *poolState, digest string) int64 {
	if ps.memBudget <= 0 {
		return 0
	}
	var est int64
	if h := m.history[digest]; digest != "" && h != nil && h.runs > 0 {
		est = h.peak + h.peak/4
	} else {
		par := ps.pool.QueryParallelism
		if par < 1 {
			par = 1
		}
		est = ps.memBudget / int64(par)
	}
	if est < minReserve {
		est = minReserve
	}
	if est > ps.memBudget {
		est = ps.memBudget
	}
	return est
}

// Observe feeds one query's observed peak memory back into the digest
// history. Growth is adopted immediately (the next admission reserves
// more); shrinkage decays the stored peak gradually so one lucky run does
// not under-reserve a volatile plan.
func (m *Manager) Observe(digest string, peakBytes int64) {
	if digest == "" || peakBytes <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.history[digest]
	if h == nil {
		h = &digestStats{}
		m.history[digest] = h
	}
	h.runs++
	if peakBytes >= h.peak {
		h.peak = peakBytes
	} else {
		h.peak -= (h.peak - peakBytes) / 8
	}
}

// EstimateFor reports the reservation the next admission of digest into
// pool would carry (tests, monitoring).
func (m *Manager) EstimateFor(pool, digest string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.pools[pool]
	if !ok {
		return 0
	}
	return m.estimateLocked(ps, digest)
}

// tryAdmitLocked grants a full admission when the pool has a concurrency
// slot and the estimate fits into its (possibly borrowed) memory budget;
// nil means the caller must queue or degrade.
func (m *Manager) tryAdmitLocked(ps *poolState, pool string, est int64, digest string) *Admission {
	if ps.running >= ps.pool.QueryParallelism {
		return nil
	}
	a := &Admission{m: m, Pool: pool, digest: digest}
	if ps.memBudget > 0 {
		own := est
		if avail := ps.memAvail(); own > avail {
			own = avail
		}
		short := est - own
		var borrowed map[string]int64
		if short > 0 {
			// Borrow reclaimable headroom: only pools with no waiters
			// lend, so a pool under demand stops lending immediately and
			// gets its bytes back as borrowers release.
			for name, other := range m.pools {
				if other == ps || other.memBudget <= 0 || len(other.queue) > 0 {
					continue
				}
				idle := other.memAvail()
				if idle <= 0 {
					continue
				}
				take := short
				if take > idle {
					take = idle
				}
				if borrowed == nil {
					borrowed = map[string]int64{}
				}
				borrowed[name] += take
				other.memLent += take
				short -= take
				if short == 0 {
					break
				}
			}
		}
		if short > 0 {
			// Not coverable: undo the loans and report no admission.
			for name, n := range borrowed {
				m.pools[name].memLent -= n
			}
			return nil
		}
		ps.memInUse += own
		a.ownMem = own
		a.borrowMem = borrowed
		a.MemoryBytes = est
		a.QueryBudget = est
	}
	m.grantExecutorsLocked(ps, a, m.shareFor(ps), true)
	ps.running++
	a.DOP = a.Executors
	m.notePeakLocked()
	return a
}

// degradeAdmitLocked admits under saturation: half the executor share, no
// borrowing, and a per-query budget shrunk to whatever the pool still has
// (at least the degrade floor, which bounds the overdraft) so the query
// spills instead of waiting. The caller must hold the lock and have
// checked the concurrency cap.
func (m *Manager) degradeAdmitLocked(ps *poolState, pool string, est int64, digest string) *Admission {
	a := &Admission{m: m, Pool: pool, digest: digest, Degraded: true}
	if ps.memBudget > 0 {
		grant := ps.memAvail()
		if floor := ps.degradeFloor(); grant < floor {
			grant = floor
		}
		if grant > est {
			grant = est
		}
		ps.memInUse += grant
		a.ownMem = grant
		a.MemoryBytes = grant
		a.QueryBudget = grant
	}
	share := m.shareFor(ps) / 2
	if share < 1 {
		share = 1
	}
	m.grantExecutorsLocked(ps, a, share, false)
	ps.running++
	a.DOP = share
	m.notePeakLocked()
	return a
}

func (m *Manager) shareFor(ps *poolState) int {
	share := ps.executors / ps.pool.QueryParallelism
	if share < 1 {
		share = 1
	}
	return share
}

// grantExecutorsLocked hands the admission up to share executors from its
// own pool, topped up from idle pools when borrowing is allowed. The grant
// never blocks: the coordinator always owns one implicit slot, so an
// exhausted pool yields Executors=1 with nothing accounted.
func (m *Manager) grantExecutorsLocked(ps *poolState, a *Admission, share int, borrow bool) {
	own := share
	if avail := ps.execAvail(); own > avail {
		own = avail
	}
	granted := own
	if borrow && granted < share {
		for name, other := range m.pools {
			if other == ps || other.running > 0 || len(other.queue) > 0 {
				continue
			}
			idle := other.execAvail()
			if idle <= 0 {
				continue
			}
			take := share - granted
			if take > idle {
				take = idle
			}
			if a.borrowExec == nil {
				a.borrowExec = map[string]int{}
			}
			a.borrowExec[name] += take
			other.execLent += take
			granted += take
			if granted == share {
				break
			}
		}
	}
	ps.execInUse += own
	a.ownExec = own
	if granted < 1 {
		granted = 1
	}
	a.Executors = granted
}

func (m *Manager) notePeakLocked() {
	var used int64
	for _, ps := range m.pools {
		used += ps.memInUse + ps.memLent
	}
	if used > m.peakMem {
		m.peakMem = used
	}
}

// GlobalPeakBytes reports the high-water mark of globally reserved memory
// across all pools — the "no OOM" observable: it can exceed the configured
// total only by the bounded degraded-admission overdraft.
func (m *Manager) GlobalPeakBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peakMem
}

// pumpLocked serves queued waiters FIFO per pool, iterating to a fixpoint
// because one pool's release can unblock another pool's head through the
// lending pools.
func (m *Manager) pumpLocked() {
	for changed := true; changed; {
		changed = false
		for name, ps := range m.pools {
			for len(ps.queue) > 0 {
				head := ps.queue[0]
				a := m.tryAdmitLocked(ps, name, head.est, head.digest)
				if a == nil {
					break
				}
				ps.queue = ps.queue[1:]
				head.ready <- a
				changed = true
			}
		}
	}
}

// Release returns the admission's resources — own-pool executors and
// bytes, plus every loan back to its lender — and wakes queued waiters.
// Idempotent.
func (a *Admission) Release() {
	a.m.mu.Lock()
	defer a.m.mu.Unlock()
	if a.released {
		return
	}
	a.released = true
	ps := a.m.pools[a.Pool]
	ps.running--
	ps.execInUse -= a.ownExec
	ps.memInUse -= a.ownMem
	for name, n := range a.borrowExec {
		a.m.pools[name].execLent -= n
	}
	for name, n := range a.borrowMem {
		a.m.pools[name].memLent -= n
	}
	a.m.pumpLocked()
}

// Evaluate checks the plan's triggers for a query in the admission's pool
// and returns the fired action (the first matching trigger wins).
func (m *Manager) Evaluate(pool string, metrics QueryMetrics) (Action, string) {
	for _, tr := range m.plan.Triggers {
		applies := false
		for _, p := range tr.Pools {
			if p == pool {
				applies = true
				break
			}
		}
		if !applies {
			continue
		}
		var value int64
		switch tr.Metric {
		case "total_runtime":
			value = metrics.TotalRuntimeMS
		case "shuffle_bytes":
			value = metrics.ShuffleBytes
		case "peak_memory":
			value = metrics.PeakMemoryBytes
		case "spilled_bytes":
			value = metrics.SpilledBytes
		case "stripes_skipped":
			value = metrics.StripesSkipped
		case "decoded_cache_hits":
			value = metrics.DecodedCacheHits
		default:
			continue
		}
		if value > tr.Threshold {
			if tr.Action == metastore.ActionKill {
				return ActionKill, ""
			}
			return ActionMove, tr.TargetPool
		}
	}
	return ActionNone, ""
}

// Move re-homes a running query to another pool (e.g. a downgrade
// trigger): the old admission is fully released — concurrency slot, bytes
// and every cross-pool loan — before a new one is acquired in the target
// pool, so a KILL→MOVE loop can never shrink the source pool. Query
// fragments are easier to preempt than containers (paper §5.2), which is
// what makes this operation cheap in LLAP.
func (m *Manager) Move(ctx context.Context, a *Admission, target string) (*Admission, error) {
	m.mu.Lock()
	_, ok := m.pools[target]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("wm: no such pool %q", target)
	}
	a.Release()
	return m.Admit(ctx, target, AdmitRequest{Digest: a.digest})
}

// PoolStats is one pool's accounting for tests and monitoring.
type PoolStats struct {
	Running   int
	Queued    int
	Executors int
	ExecInUse int
	ExecLent  int
	MemBudget int64
	MemInUse  int64
	MemLent   int64
}

// Stats reports a pool's current accounting.
func (m *Manager) Stats(pool string) (PoolStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.pools[pool]
	if !ok {
		return PoolStats{}, fmt.Errorf("wm: no such pool %q", pool)
	}
	return PoolStats{
		Running:   ps.running,
		Queued:    len(ps.queue),
		Executors: ps.executors,
		ExecInUse: ps.execInUse,
		ExecLent:  ps.execLent,
		MemBudget: ps.memBudget,
		MemInUse:  ps.memInUse,
		MemLent:   ps.memLent,
	}, nil
}

// PoolSnapshot reports a pool's executor state (legacy shape; see Stats).
func (m *Manager) PoolSnapshot(pool string) (running, inUse, executors int, err error) {
	st, err := m.Stats(pool)
	if err != nil {
		return 0, 0, 0, err
	}
	return st.Running, st.ExecInUse, st.Executors, nil
}

// Reconcile verifies the accounting invariants across all pools: nothing
// negative, executors within each pool's allocation, concurrency within
// each pool's cap, and memory within budget plus the bounded
// degraded-admission overdraft. Tests call it while hammering.
func (m *Manager) Reconcile() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, ps := range m.pools {
		if ps.running < 0 || ps.execInUse < 0 || ps.execLent < 0 || ps.memInUse < 0 || ps.memLent < 0 {
			return fmt.Errorf("wm: pool %s accounting negative: %+v", name, *ps)
		}
		if ps.running > ps.pool.QueryParallelism {
			return fmt.Errorf("wm: pool %s over-admitted: %d running > parallelism %d", name, ps.running, ps.pool.QueryParallelism)
		}
		if ps.execInUse+ps.execLent > ps.executors {
			return fmt.Errorf("wm: pool %s over-granted executors: %d+%d > %d", name, ps.execInUse, ps.execLent, ps.executors)
		}
		if ps.memBudget > 0 {
			slack := ps.degradeFloor() * int64(ps.pool.QueryParallelism)
			if ps.memInUse+ps.memLent > ps.memBudget+slack {
				return fmt.Errorf("wm: pool %s over-reserved: %d+%d > budget %d (+slack %d)", name, ps.memInUse, ps.memLent, ps.memBudget, slack)
			}
		}
	}
	return nil
}
