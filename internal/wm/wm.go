// Package wm implements the LLAP workload manager (paper §5.2): resource
// plans with pools (a fraction of cluster executors plus a query
// concurrency cap), mappings that route queries to pools, and triggers that
// move or kill queries based on runtime metrics. Idle pool resources can be
// borrowed by queries from other pools until the owning pool claims them.
package wm

import (
	"fmt"
	"sync"

	"repro/internal/metastore"
)

// Action is a trigger outcome.
type Action int

// Trigger outcomes.
const (
	ActionNone Action = iota
	ActionMove
	ActionKill
)

// QueryMetrics feeds trigger evaluation. PeakMemoryBytes and SpilledBytes
// come from the query's memory governor (paper §4.4: resource-plan
// guardrails act on runtime metrics), so plans can move or kill queries
// that blow past their memory share or thrash the scratch disk.
type QueryMetrics struct {
	TotalRuntimeMS  int64
	ShuffleBytes    int64
	PeakMemoryBytes int64
	SpilledBytes    int64
}

type poolState struct {
	pool      metastore.Pool
	executors int
	inUse     int
	running   int
	waiters   int
}

// Manager admits queries to pools and evaluates triggers.
type Manager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	plan  *metastore.ResourcePlan
	total int
	pools map[string]*poolState
}

// NewManager instantiates the active resource plan over a cluster with the
// given total executor count.
func NewManager(plan *metastore.ResourcePlan, totalExecutors int) (*Manager, error) {
	if plan == nil {
		return nil, fmt.Errorf("wm: nil resource plan")
	}
	m := &Manager{plan: plan, total: totalExecutors, pools: map[string]*poolState{}}
	m.cond = sync.NewCond(&m.mu)
	for name, p := range plan.Pools {
		execs := int(p.AllocFraction * float64(totalExecutors))
		if execs < 1 {
			execs = 1
		}
		m.pools[name] = &poolState{pool: *p, executors: execs}
	}
	return m, nil
}

// PoolFor routes a query by application and user through the plan's
// mappings, falling back to the default pool.
func (m *Manager) PoolFor(user, application string) string {
	for _, mp := range m.plan.Mappings {
		switch mp.Kind {
		case "application":
			if mp.Name == application {
				return mp.Pool
			}
		case "user":
			if mp.Name == user {
				return mp.Pool
			}
		}
	}
	return m.plan.DefaultPool
}

// Admission is a granted admission; Release returns the resources.
type Admission struct {
	m         *Manager
	Pool      string
	Executors int
	released  bool
}

// Admit blocks until the pool has a concurrency slot, then grants the
// query its executor share. Idle executors from other pools are borrowed
// when the home pool is exhausted (paper §5.2).
func (m *Manager) Admit(pool string) (*Admission, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.pools[pool]
	if !ok {
		return nil, fmt.Errorf("wm: no such pool %q", pool)
	}
	ps.waiters++
	for ps.running >= ps.pool.QueryParallelism {
		m.cond.Wait()
	}
	ps.waiters--
	ps.running++
	// Executor share: the pool's executors divided by its parallelism,
	// topped up from idle pools when available.
	share := ps.executors / ps.pool.QueryParallelism
	if share < 1 {
		share = 1
	}
	granted := share
	if avail := ps.executors - ps.inUse; granted > avail {
		granted = avail
	}
	// Borrow idle capacity from other pools (reclaimed when they admit).
	if granted < share {
		for _, other := range m.pools {
			if other == ps {
				continue
			}
			if other.waiters == 0 && other.running == 0 {
				idle := other.executors - other.inUse
				if idle > 0 {
					take := share - granted
					if take > idle {
						take = idle
					}
					other.inUse += take
					granted += take
					if granted == share {
						break
					}
				}
			}
		}
	}
	if granted < 1 {
		granted = 1
	}
	ps.inUse += minInt(granted, ps.executors-ps.inUse)
	return &Admission{m: m, Pool: pool, Executors: granted}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Release returns the admission's resources.
func (a *Admission) Release() {
	a.m.mu.Lock()
	defer a.m.mu.Unlock()
	if a.released {
		return
	}
	a.released = true
	ps := a.m.pools[a.Pool]
	ps.running--
	ps.inUse -= minInt(a.Executors, ps.inUse)
	// Over-borrowed executors drain from other pools opportunistically: we
	// simply clamp them to zero lower bound during future admissions.
	for _, other := range a.m.pools {
		if other.inUse < 0 {
			other.inUse = 0
		}
	}
	a.m.cond.Broadcast()
}

// Evaluate checks the plan's triggers for a query in the admission's pool
// and returns the fired action (the first matching trigger wins).
func (m *Manager) Evaluate(pool string, metrics QueryMetrics) (Action, string) {
	for _, tr := range m.plan.Triggers {
		applies := false
		for _, p := range tr.Pools {
			if p == pool {
				applies = true
				break
			}
		}
		if !applies {
			continue
		}
		var value int64
		switch tr.Metric {
		case "total_runtime":
			value = metrics.TotalRuntimeMS
		case "shuffle_bytes":
			value = metrics.ShuffleBytes
		case "peak_memory":
			value = metrics.PeakMemoryBytes
		case "spilled_bytes":
			value = metrics.SpilledBytes
		default:
			continue
		}
		if value > tr.Threshold {
			if tr.Action == metastore.ActionKill {
				return ActionKill, ""
			}
			return ActionMove, tr.TargetPool
		}
	}
	return ActionNone, ""
}

// Move re-homes a running query to another pool (e.g. a downgrade trigger):
// the old admission is released and a new one acquired in the target pool.
// Query fragments are easier to preempt than containers (paper §5.2), which
// is what makes this operation cheap in LLAP.
func (m *Manager) Move(a *Admission, target string) (*Admission, error) {
	a.Release()
	return m.Admit(target)
}

// PoolSnapshot reports a pool's state for tests and monitoring.
func (m *Manager) PoolSnapshot(pool string) (running, inUse, executors int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps, ok := m.pools[pool]
	if !ok {
		return 0, 0, 0, fmt.Errorf("wm: no such pool %q", pool)
	}
	return ps.running, ps.inUse, ps.executors, nil
}
