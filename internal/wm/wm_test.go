package wm

import (
	"testing"
	"time"

	"repro/internal/metastore"
)

func paperPlan(t *testing.T) *metastore.ResourcePlan {
	t.Helper()
	p := &metastore.ResourcePlan{
		Name: "daytime",
		Pools: map[string]*metastore.Pool{
			"bi":  {Name: "bi", AllocFraction: 0.8, QueryParallelism: 2},
			"etl": {Name: "etl", AllocFraction: 0.2, QueryParallelism: 4},
		},
		Mappings: []metastore.Mapping{
			{Kind: "application", Name: "visualization_app", Pool: "bi"},
		},
		Triggers: []metastore.Trigger{{
			Name: "downgrade", Metric: "total_runtime", Threshold: 3000,
			Action: metastore.ActionMoveToPool, TargetPool: "etl", Pools: []string{"bi"},
		}},
		DefaultPool: "etl",
	}
	return p
}

func TestMappingRoutesQueries(t *testing.T) {
	m, err := NewManager(paperPlan(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PoolFor("x", "visualization_app"); got != "bi" {
		t.Errorf("application mapping: %s", got)
	}
	if got := m.PoolFor("x", "other_app"); got != "etl" {
		t.Errorf("default pool: %s", got)
	}
}

func TestAdmissionConcurrencyCap(t *testing.T) {
	m, _ := NewManager(paperPlan(t), 10)
	a1, err := m.Admit("bi")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Admit("bi")
	if err != nil {
		t.Fatal(err)
	}
	// Third admission must block until a release (parallelism=2).
	done := make(chan *Admission, 1)
	go func() {
		a3, _ := m.Admit("bi")
		done <- a3
	}()
	select {
	case <-done:
		t.Fatal("third admission should have blocked")
	case <-time.After(30 * time.Millisecond):
	}
	a1.Release()
	select {
	case a3 := <-done:
		a3.Release()
	case <-time.After(time.Second):
		t.Fatal("admission did not wake after release")
	}
	a2.Release()
}

func TestExecutorSharesAndBorrowing(t *testing.T) {
	m, _ := NewManager(paperPlan(t), 10)
	a, _ := m.Admit("bi") // bi has 8 executors, parallelism 2 -> share 4
	if a.Executors < 4 {
		t.Errorf("bi admission got %d executors, want >= 4", a.Executors)
	}
	a.Release()
	running, inUse, _, _ := m.PoolSnapshot("bi")
	if running != 0 || inUse != 0 {
		t.Errorf("release did not return resources: running=%d inUse=%d", running, inUse)
	}
}

func TestTriggers(t *testing.T) {
	m, _ := NewManager(paperPlan(t), 10)
	action, target := m.Evaluate("bi", QueryMetrics{TotalRuntimeMS: 5000})
	if action != ActionMove || target != "etl" {
		t.Errorf("downgrade trigger: %v -> %s", action, target)
	}
	action, _ = m.Evaluate("bi", QueryMetrics{TotalRuntimeMS: 100})
	if action != ActionNone {
		t.Errorf("under threshold: %v", action)
	}
	// Trigger does not apply to pools it is not attached to.
	action, _ = m.Evaluate("etl", QueryMetrics{TotalRuntimeMS: 5000})
	if action != ActionNone {
		t.Errorf("unattached pool: %v", action)
	}
}

func TestMoveRehomesQuery(t *testing.T) {
	m, _ := NewManager(paperPlan(t), 10)
	a, _ := m.Admit("bi")
	moved, err := m.Move(a, "etl")
	if err != nil {
		t.Fatal(err)
	}
	if moved.Pool != "etl" {
		t.Errorf("moved to %s", moved.Pool)
	}
	running, _, _, _ := m.PoolSnapshot("bi")
	if running != 0 {
		t.Error("bi slot not released by move")
	}
	moved.Release()
}

// TestMemoryTriggers covers the paper §4.4 loop closed by the memory
// governor: resource-plan triggers acting on peak memory and spilled
// bytes.
func TestMemoryTriggers(t *testing.T) {
	p := paperPlan(t)
	p.Triggers = []metastore.Trigger{
		{
			Name: "mem_hog", Metric: "peak_memory", Threshold: 1 << 20,
			Action: metastore.ActionMoveToPool, TargetPool: "etl", Pools: []string{"bi"},
		},
		{
			Name: "spill_storm", Metric: "spilled_bytes", Threshold: 1 << 24,
			Action: metastore.ActionKill, Pools: []string{"bi"},
		},
	}
	m, err := NewManager(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := m.Evaluate("bi", QueryMetrics{PeakMemoryBytes: 1 << 19}); a != ActionNone {
		t.Errorf("under-threshold peak fired %v", a)
	}
	if a, pool := m.Evaluate("bi", QueryMetrics{PeakMemoryBytes: 2 << 20}); a != ActionMove || pool != "etl" {
		t.Errorf("peak_memory: got %v %q", a, pool)
	}
	if a, _ := m.Evaluate("bi", QueryMetrics{SpilledBytes: 1 << 25}); a != ActionKill {
		t.Errorf("spilled_bytes kill: got %v", a)
	}
	if a, _ := m.Evaluate("etl", QueryMetrics{SpilledBytes: 1 << 25}); a != ActionNone {
		t.Errorf("trigger leaked outside its pool: %v", a)
	}
}
