package wm

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/metastore"
)

var bg = context.Background()

func paperPlan(t *testing.T) *metastore.ResourcePlan {
	t.Helper()
	p := &metastore.ResourcePlan{
		Name: "daytime",
		Pools: map[string]*metastore.Pool{
			"bi":  {Name: "bi", AllocFraction: 0.8, QueryParallelism: 2},
			"etl": {Name: "etl", AllocFraction: 0.2, QueryParallelism: 4},
		},
		Mappings: []metastore.Mapping{
			{Kind: "application", Name: "visualization_app", Pool: "bi"},
		},
		Triggers: []metastore.Trigger{{
			Name: "downgrade", Metric: "total_runtime", Threshold: 3000,
			Action: metastore.ActionMoveToPool, TargetPool: "etl", Pools: []string{"bi"},
		}},
		DefaultPool: "etl",
	}
	return p
}

func TestMappingRoutesQueries(t *testing.T) {
	m, err := NewManager(paperPlan(t), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PoolFor("x", "visualization_app"); got != "bi" {
		t.Errorf("application mapping: %s", got)
	}
	if got := m.PoolFor("x", "other_app"); got != "etl" {
		t.Errorf("default pool: %s", got)
	}
}

func TestAdmissionConcurrencyCap(t *testing.T) {
	m, _ := NewManager(paperPlan(t), 10)
	a1, err := m.Admit(bg, "bi", AdmitRequest{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Admit(bg, "bi", AdmitRequest{})
	if err != nil {
		t.Fatal(err)
	}
	// Third admission must block until a release (parallelism=2).
	done := make(chan *Admission, 1)
	go func() {
		a3, _ := m.Admit(bg, "bi", AdmitRequest{})
		done <- a3
	}()
	select {
	case <-done:
		t.Fatal("third admission should have blocked")
	case <-time.After(30 * time.Millisecond):
	}
	a1.Release()
	select {
	case a3 := <-done:
		a3.Release()
	case <-time.After(time.Second):
		t.Fatal("admission did not wake after release")
	}
	a2.Release()
}

func TestExecutorSharesAndBorrowing(t *testing.T) {
	m, _ := NewManager(paperPlan(t), 10)
	a, _ := m.Admit(bg, "bi", AdmitRequest{}) // bi has 8 executors, parallelism 2 -> share 4
	if a.Executors < 4 {
		t.Errorf("bi admission got %d executors, want >= 4", a.Executors)
	}
	a.Release()
	running, inUse, _, _ := m.PoolSnapshot("bi")
	if running != 0 || inUse != 0 {
		t.Errorf("release did not return resources: running=%d inUse=%d", running, inUse)
	}
}

// TestBorrowedExecutorsReturnToLender is the Move/Release leak regression:
// executors borrowed from an idle pool must be handed back to that pool,
// not subtracted from the borrower's own allocation.
func TestBorrowedExecutorsReturnToLender(t *testing.T) {
	p := paperPlan(t)
	// etl owns 2 executors with parallelism 3: the third admission finds
	// its own pool exhausted and must borrow from idle bi.
	p.Pools["etl"] = &metastore.Pool{Name: "etl", AllocFraction: 0.2, QueryParallelism: 3}
	m, _ := NewManager(p, 10)
	var adms []*Admission
	for i := 0; i < 3; i++ {
		a, err := m.Admit(bg, "etl", AdmitRequest{})
		if err != nil {
			t.Fatal(err)
		}
		adms = append(adms, a)
	}
	if bi, _ := m.Stats("bi"); bi.ExecLent == 0 {
		t.Fatal("expected bi to lend executors to etl's third admission")
	}
	for _, a := range adms {
		a.Release()
	}
	if bi, _ := m.Stats("bi"); bi.ExecLent != 0 {
		t.Fatalf("bi loan not returned: %+v", bi)
	}

	// Repeated KILL→MOVE cycles must leave every pool's accounting at
	// zero (the old Move leaked the source pool's slot and any borrowed
	// executors were never returned to their lender).
	for i := 0; i < 5; i++ {
		a, err := m.Admit(bg, "bi", AdmitRequest{})
		if err != nil {
			t.Fatal(err)
		}
		moved, err := m.Move(bg, a, "etl")
		if err != nil {
			t.Fatal(err)
		}
		moved.Release()
	}
	for _, pool := range []string{"bi", "etl"} {
		st, err := m.Stats(pool)
		if err != nil {
			t.Fatal(err)
		}
		if st.Running != 0 || st.ExecInUse != 0 || st.ExecLent != 0 || st.MemInUse != 0 || st.MemLent != 0 {
			t.Errorf("pool %s leaked after move cycles: %+v", pool, st)
		}
	}
	if err := m.Reconcile(); err != nil {
		t.Error(err)
	}
}

func TestTriggers(t *testing.T) {
	m, _ := NewManager(paperPlan(t), 10)
	action, target := m.Evaluate("bi", QueryMetrics{TotalRuntimeMS: 5000})
	if action != ActionMove || target != "etl" {
		t.Errorf("downgrade trigger: %v -> %s", action, target)
	}
	action, _ = m.Evaluate("bi", QueryMetrics{TotalRuntimeMS: 100})
	if action != ActionNone {
		t.Errorf("under threshold: %v", action)
	}
	// Trigger does not apply to pools it is not attached to.
	action, _ = m.Evaluate("etl", QueryMetrics{TotalRuntimeMS: 5000})
	if action != ActionNone {
		t.Errorf("unattached pool: %v", action)
	}
}

func TestMoveRehomesQuery(t *testing.T) {
	m, _ := NewManager(paperPlan(t), 10)
	a, _ := m.Admit(bg, "bi", AdmitRequest{})
	moved, err := m.Move(bg, a, "etl")
	if err != nil {
		t.Fatal(err)
	}
	if moved.Pool != "etl" {
		t.Errorf("moved to %s", moved.Pool)
	}
	running, _, _, _ := m.PoolSnapshot("bi")
	if running != 0 {
		t.Error("bi slot not released by move")
	}
	moved.Release()
}

// TestMemoryTriggers covers the paper §4.4 loop closed by the memory
// governor: resource-plan triggers acting on peak memory and spilled
// bytes.
func TestMemoryTriggers(t *testing.T) {
	p := paperPlan(t)
	p.Triggers = []metastore.Trigger{
		{
			Name: "mem_hog", Metric: "peak_memory", Threshold: 1 << 20,
			Action: metastore.ActionMoveToPool, TargetPool: "etl", Pools: []string{"bi"},
		},
		{
			Name: "spill_storm", Metric: "spilled_bytes", Threshold: 1 << 24,
			Action: metastore.ActionKill, Pools: []string{"bi"},
		},
	}
	m, err := NewManager(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := m.Evaluate("bi", QueryMetrics{PeakMemoryBytes: 1 << 19}); a != ActionNone {
		t.Errorf("under-threshold peak fired %v", a)
	}
	if a, pool := m.Evaluate("bi", QueryMetrics{PeakMemoryBytes: 2 << 20}); a != ActionMove || pool != "etl" {
		t.Errorf("peak_memory: got %v %q", a, pool)
	}
	if a, _ := m.Evaluate("bi", QueryMetrics{SpilledBytes: 1 << 25}); a != ActionKill {
		t.Errorf("spilled_bytes kill: got %v", a)
	}
	if a, _ := m.Evaluate("etl", QueryMetrics{SpilledBytes: 1 << 25}); a != ActionNone {
		t.Errorf("trigger leaked outside its pool: %v", a)
	}
}

// ---- Memory-aware admission (tentpole) ----

// memPlan gives bi 3/4 and etl 1/4 of the memory budget with generous
// concurrency caps so memory, not slots, is the binding constraint.
func memPlan() *metastore.ResourcePlan {
	return &metastore.ResourcePlan{
		Name: "mem",
		Pools: map[string]*metastore.Pool{
			"bi":  {Name: "bi", AllocFraction: 0.5, QueryParallelism: 4, MemFraction: 0.75},
			"etl": {Name: "etl", AllocFraction: 0.5, QueryParallelism: 4, MemFraction: 0.25},
		},
		DefaultPool: "etl",
	}
}

func TestMemoryAdmissionGates(t *testing.T) {
	// bi budget: 0.75 * 8 MiB = 6 MiB; parallelism 4 -> first-run
	// estimate 1.5 MiB. Four unknown queries fit; the fifth would need a
	// free slot anyway; instead saturate with a known huge digest.
	m, _ := NewManagerWithMemory(memPlan(), 8, 8<<20)
	m.Observe("huge", 4<<20) // next admission reserves 5 MiB (1.25x)
	a1, err := m.Admit(bg, "bi", AdmitRequest{Digest: "huge"})
	if err != nil {
		t.Fatal(err)
	}
	if a1.MemoryBytes != 5<<20 {
		t.Errorf("history estimate: reserved %d, want %d", a1.MemoryBytes, 5<<20)
	}
	if a1.QueryBudget != a1.MemoryBytes {
		t.Errorf("admission must enforce its reservation: budget %d != reserved %d", a1.QueryBudget, a1.MemoryBytes)
	}
	// A second huge admission cannot fit 5 MiB into the remaining 1 MiB
	// (etl's idle 2 MiB can be borrowed but still not enough): it queues.
	done := make(chan *Admission, 1)
	go func() {
		a, err := m.Admit(bg, "bi", AdmitRequest{Digest: "huge"})
		if err != nil {
			t.Error(err)
		}
		done <- a
	}()
	select {
	case <-done:
		t.Fatal("second huge admission should have queued on memory")
	case <-time.After(30 * time.Millisecond):
	}
	a1.Release()
	select {
	case a2 := <-done:
		a2.Release()
	case <-time.After(time.Second):
		t.Fatal("queued admission did not wake on release")
	}
	if err := m.Reconcile(); err != nil {
		t.Error(err)
	}
}

func TestFeedbackShrinksEstimates(t *testing.T) {
	m, _ := NewManagerWithMemory(memPlan(), 8, 8<<20)
	first := m.EstimateFor("bi", "tiny")
	if first != (6<<20)/4 {
		t.Errorf("conservative first-run estimate: %d", first)
	}
	m.Observe("tiny", 100<<10) // observed: 100 KiB
	repeat := m.EstimateFor("bi", "tiny")
	if repeat >= first {
		t.Errorf("estimate did not shrink with feedback: %d -> %d", first, repeat)
	}
	if repeat != 125<<10 {
		t.Errorf("repeat estimate: got %d, want observed*1.25 = %d", repeat, 125<<10)
	}
	// Growth is adopted immediately.
	m.Observe("tiny", 2<<20)
	if got := m.EstimateFor("bi", "tiny"); got != (2<<20)+(2<<20)/4 {
		t.Errorf("estimate did not grow with feedback: %d", got)
	}
	// Estimates never exceed the pool budget: a repeat offender reserves
	// the whole pool and runs alone.
	m.Observe("whale", 1<<30)
	if got := m.EstimateFor("bi", "whale"); got != 6<<20 {
		t.Errorf("estimate not clamped to pool budget: %d", got)
	}
}

func TestAdmitContextCanceledWhileQueued(t *testing.T) {
	m, _ := NewManagerWithMemory(memPlan(), 8, 8<<20)
	m.Observe("huge", 5<<20)
	a1, _ := m.Admit(bg, "bi", AdmitRequest{Digest: "huge"})

	ctx, cancel := context.WithCancel(bg)
	errc := make(chan error, 1)
	go func() {
		_, err := m.Admit(ctx, "bi", AdmitRequest{Digest: "huge"})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it queue
	if st, _ := m.Stats("bi"); st.Queued != 1 {
		t.Fatalf("expected 1 queued waiter, got %d", st.Queued)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("want context.Canceled, got %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("canceled waiter did not return")
	}
	// The canceled waiter must be gone: the queue keeps moving and the
	// pool drains clean.
	if st, _ := m.Stats("bi"); st.Queued != 0 {
		t.Errorf("canceled waiter still queued: %+v", st)
	}
	a1.Release()
	if st, _ := m.Stats("bi"); st.Running != 0 || st.MemInUse != 0 {
		t.Errorf("pool did not drain: %+v", st)
	}
}

func TestQueueDeadlineDegrades(t *testing.T) {
	// 32 executors: bi's full share is 16/4 = 4, so a degraded DOP (2) is
	// distinguishable from a full one.
	m, _ := NewManagerWithMemory(memPlan(), 32, 8<<20)
	m.Observe("huge", 5<<20)
	a1, _ := m.Admit(bg, "bi", AdmitRequest{Digest: "huge"})

	// Memory is the blocker and a concurrency slot is free: after the
	// queue deadline the query is admitted degraded — reduced DOP and a
	// shrunken enforced budget — instead of waiting forever.
	a2, err := m.Admit(bg, "bi", AdmitRequest{Digest: "huge", QueueTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !a2.Degraded {
		t.Fatal("expected degraded admission after queue deadline")
	}
	if a2.QueryBudget <= 0 || a2.QueryBudget >= 5<<20 {
		t.Errorf("degraded budget not shrunken: %d", a2.QueryBudget)
	}
	if a2.DOP >= a1.DOP {
		t.Errorf("degraded DOP %d not below full DOP %d", a2.DOP, a1.DOP)
	}
	a1.Release()
	a2.Release()
	if err := m.Reconcile(); err != nil {
		t.Error(err)
	}
	if st, _ := m.Stats("bi"); st.MemInUse != 0 || st.Running != 0 {
		t.Errorf("pool did not drain: %+v", st)
	}
}

func TestQueueTimeoutOnConcurrencyCap(t *testing.T) {
	p := memPlan()
	p.Pools["bi"].QueryParallelism = 1
	m, _ := NewManagerWithMemory(p, 8, 8<<20)
	a1, _ := m.Admit(bg, "bi", AdmitRequest{})
	// The concurrency cap is hard: a deadline expiring while the cap is
	// exhausted fails with ErrQueueTimeout (nothing to degrade into).
	_, err := m.Admit(bg, "bi", AdmitRequest{QueueTimeout: 30 * time.Millisecond})
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("want ErrQueueTimeout, got %v", err)
	}
	a1.Release()
	if st, _ := m.Stats("bi"); st.Running != 0 || st.Queued != 0 {
		t.Errorf("pool did not drain: %+v", st)
	}
}

func TestBoundedQueueDegradesOnOverflow(t *testing.T) {
	m, _ := NewManagerWithMemory(memPlan(), 8, 8<<20)
	m.QueueLimit = 2
	m.Observe("huge", 5<<20)
	a1, _ := m.Admit(bg, "bi", AdmitRequest{Digest: "huge"})
	// Fill the queue with two waiters.
	for i := 0; i < 2; i++ {
		go func() {
			a, err := m.Admit(bg, "bi", AdmitRequest{Digest: "huge"})
			if err == nil {
				time.Sleep(50 * time.Millisecond)
				a.Release()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	// Queue full + slot free: degrade instead of growing the queue.
	a, err := m.Admit(bg, "bi", AdmitRequest{Digest: "huge"})
	if err != nil {
		t.Fatalf("overflow should degrade, got %v", err)
	}
	if !a.Degraded {
		t.Error("overflow admission should be degraded")
	}
	a.Release()
	a1.Release()
	time.Sleep(100 * time.Millisecond)
	if err := m.Reconcile(); err != nil {
		t.Error(err)
	}
}

func TestIdlePoolLendsAndReclaims(t *testing.T) {
	m, _ := NewManagerWithMemory(memPlan(), 8, 8<<20)
	// Two 4 MiB queries against bi's 6 MiB budget: the second covers its
	// 2 MiB shortfall by borrowing idle etl's headroom.
	m.Observe("big", int64(4<<20)*4/5) // est 4 MiB
	a1, err := m.Admit(bg, "bi", AdmitRequest{Digest: "big"})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Admit(bg, "bi", AdmitRequest{Digest: "big"})
	if err != nil {
		t.Fatal(err)
	}
	bi, _ := m.Stats("bi")
	etl, _ := m.Stats("etl")
	if etl.MemLent == 0 {
		t.Fatalf("expected etl to lend headroom: bi=%+v etl=%+v", bi, etl)
	}
	if bi.MemInUse != bi.MemBudget {
		t.Errorf("bi should be fully reserved: %+v", bi)
	}
	// Release returns the loan to the lender, not the borrower.
	a2.Release()
	a1.Release()
	bi, _ = m.Stats("bi")
	etl, _ = m.Stats("etl")
	if bi.MemInUse != 0 || etl.MemLent != 0 || etl.MemInUse != 0 {
		t.Errorf("loan not reclaimed: bi=%+v etl=%+v", bi, etl)
	}
}

func TestPoolWithWaitersDoesNotLend(t *testing.T) {
	m, _ := NewManagerWithMemory(memPlan(), 8, 8<<20)
	// Occupy most of bi (5 of 6 MiB) so its queries will want to borrow.
	m.Observe("bihalf", 4<<20) // est 5 MiB
	b1, err := m.Admit(bg, "bi", AdmitRequest{Digest: "bihalf"})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate etl (2 MiB budget) and queue a waiter behind it: etl now
	// has demand of its own and must not lend.
	m.Observe("etlbig", int64(2<<20)*4/5)
	e1, _ := m.Admit(bg, "etl", AdmitRequest{Digest: "etlbig"})
	queued := make(chan *Admission, 1)
	go func() {
		a, _ := m.Admit(bg, "etl", AdmitRequest{Digest: "etlbig"})
		queued <- a
	}()
	time.Sleep(20 * time.Millisecond)
	if st, _ := m.Stats("etl"); st.Queued != 1 {
		t.Fatalf("etl waiter not queued: %+v", st)
	}
	// A second bi query (5 MiB estimate, 1 MiB free) cannot take etl's
	// headroom: it waits, then degrades inside its own pool.
	a, err := m.Admit(bg, "bi", AdmitRequest{Digest: "bihalf", QueueTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Degraded {
		t.Error("bi admission while etl is under demand should degrade, not borrow")
	}
	if st, _ := m.Stats("etl"); st.MemLent != 0 {
		t.Errorf("etl lent memory while it had waiters: %+v", st)
	}
	a.Release()
	b1.Release()
	e1.Release()
	select {
	case a := <-queued:
		a.Release()
	case <-time.After(time.Second):
		t.Fatal("etl waiter starved")
	}
	if err := m.Reconcile(); err != nil {
		t.Error(err)
	}
}

// TestAccountingInvariantsUnderRace hammers Admit/Release/Move/Observe
// from many goroutines (run under -race) and checks that the accounting
// reconciles at every step and drains to zero.
func TestAccountingInvariantsUnderRace(t *testing.T) {
	p := memPlan()
	p.Mappings = []metastore.Mapping{{Kind: "user", Name: "u", Pool: "bi"}}
	m, _ := NewManagerWithMemory(p, 16, 16<<20)
	pools := []string{"bi", "etl"}
	digests := []string{"", "a", "b", "c", "huge"}
	m.Observe("huge", 10<<20)

	workers := 16
	iters := 60
	if testing.Short() {
		workers, iters = 8, 25
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				pool := pools[rng.Intn(len(pools))]
				dig := digests[rng.Intn(len(digests))]
				a, err := m.Admit(bg, pool, AdmitRequest{Digest: dig, QueueTimeout: 50 * time.Millisecond})
				if err != nil {
					continue // queue timeout/full under overload is legal
				}
				if rng.Intn(4) == 0 {
					target := pools[rng.Intn(len(pools))]
					if moved, err := m.Move(bg, a, target); err == nil {
						a = moved
					} else {
						continue // move target full: original already released
					}
				}
				m.Observe(dig, int64(rng.Intn(4<<20)))
				a.Release()
				if rng.Intn(8) == 0 {
					if err := m.Reconcile(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if err := m.Reconcile(); err != nil {
		t.Fatal(err)
	}
	for _, pool := range pools {
		st, _ := m.Stats(pool)
		if st.Running != 0 || st.Queued != 0 || st.ExecInUse != 0 || st.ExecLent != 0 || st.MemInUse != 0 || st.MemLent != 0 {
			t.Errorf("pool %s did not drain to zero: %+v", pool, st)
		}
	}
	if m.GlobalPeakBytes() <= 0 {
		t.Error("global peak not observed")
	}
}
