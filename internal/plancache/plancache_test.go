package plancache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/types"
)

func tmpl() *Entry {
	return &Entry{
		Rel:           &plan.Values{Rows: [][]types.Datum{{}}, Types: nil},
		Columns:       []string{"a"},
		Deterministic: true,
	}
}

func TestGetPut(t *testing.T) {
	c := New(8)
	k := Key{DB: "default", Digest: "select a from t where b = ?0:bigint", Schema: 1, Conf: "v10"}
	if c.Get(k) != nil {
		t.Fatal("empty cache should miss")
	}
	e := tmpl()
	c.Put(k, e)
	if got := c.Get(k); got != e {
		t.Fatalf("get after put: %v", got)
	}
	// Any key component change misses.
	for _, k2 := range []Key{
		{DB: "other", Digest: k.Digest, Schema: 1, Conf: "v10"},
		{DB: "default", Digest: "other", Schema: 1, Conf: "v10"},
		{DB: "default", Digest: k.Digest, Schema: 2, Conf: "v10"},
		{DB: "default", Digest: k.Digest, Schema: 1, Conf: "v12"},
	} {
		if c.Get(k2) != nil {
			t.Fatalf("key %+v should miss", k2)
		}
	}
}

func TestReplaceDoesNotEvict(t *testing.T) {
	c := New(2)
	a := Key{Digest: "a"}
	b := Key{Digest: "b"}
	c.Put(a, tmpl())
	c.Put(b, tmpl())
	c.Put(a, tmpl()) // replace at capacity
	if c.Get(b) == nil {
		t.Fatal("replacing a evicted b")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	a, b, d := Key{Digest: "a"}, Key{Digest: "b"}, Key{Digest: "d"}
	c.Put(a, tmpl())
	c.Put(b, tmpl())
	c.Get(a) // b becomes LRU
	c.Put(d, tmpl())
	if c.Get(a) == nil {
		t.Fatal("recently used a evicted")
	}
	if c.Get(b) != nil {
		t.Fatal("LRU b should have been evicted")
	}
}

func TestConcurrent(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Digest: fmt.Sprintf("q%d", i%20), Schema: int64(i % 3)}
				if c.Get(k) == nil {
					c.Put(k, tmpl())
				}
			}
		}(w)
	}
	wg.Wait()
}
