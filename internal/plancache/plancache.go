// Package plancache implements HS2's compiled-plan cache (paper §4.3): the
// optimized logical plan of a parameterized statement is stored once per
// normalized digest and reused for every literal variant, so the serving
// hot path skips parsing, analysis and optimization entirely. Entries are
// keyed on (database, normalized digest, metastore schema version,
// plan-affecting configuration fingerprint): any DDL or planner-relevant
// SET invalidates by changing the key, without explicit invalidation
// traffic. The cache is sharded and evicts LRU within each shard.
package plancache

import (
	"container/list"
	"hash/fnv"
	"strconv"
	"sync"

	"repro/internal/plan"
	"repro/internal/types"
)

// Key identifies one cached plan template.
type Key struct {
	DB     string // current database at compile time
	Digest string // normalized statement digest (literals hoisted)
	Schema int64  // metastore schema version at compile time
	Conf   string // fingerprint of plan-affecting session configuration
}

func (k Key) hash() uint32 {
	h := fnv.New32a()
	h.Write([]byte(k.DB))
	h.Write([]byte{0})
	h.Write([]byte(k.Digest))
	h.Write([]byte{0})
	h.Write([]byte(strconv.FormatInt(k.Schema, 10)))
	h.Write([]byte{0})
	h.Write([]byte(k.Conf))
	return h.Sum32()
}

// Entry is a compiled plan template: an optimized logical plan whose
// literals are plan.Param placeholders. Callers must never execute Rel
// directly — plan.BindParams stamps out a private deep copy per run.
type Entry struct {
	Rel           plan.Rel
	Columns       []string  // output column names
	ParamTypes    []types.T // declared type of each hoisted parameter
	Deterministic bool      // false disables result caching for the statement
}

type cached struct {
	key   Key
	entry *Entry
	elem  *list.Element
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*cached
	lru     *list.List // of *cached; front = most recently used
	max     int

	hits, misses int64
}

// Cache is one HS2 instance's plan cache, shared by all sessions.
type Cache struct {
	noCopy noCopy
	shards []*shard
}

// noCopy makes `go vet` (copylocks) flag by-value copies of Cache: the
// shards are shared mutable state behind pointers, so a copied handle
// silently aliases the original instead of being independent.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// New creates a plan cache bounded to maxEntries templates.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 128
	}
	n := maxEntries / 16
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	per := maxEntries / n
	if per < 1 {
		per = 1
	}
	c := &Cache{shards: make([]*shard, n)}
	for i := range c.shards {
		c.shards[i] = &shard{entries: make(map[Key]*cached), lru: list.New(), max: per}
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	return c.shards[k.hash()%uint32(len(c.shards))]
}

// Get returns the cached template for k, or nil.
func (c *Cache) Get(k Key) *Entry {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		s.hits++
		s.lru.MoveToFront(e.elem)
		return e.entry
	}
	s.misses++
	return nil
}

// Put stores a template. Replacing an existing key does not evict; a new
// key evicts the shard's least-recently-used template when full.
func (c *Cache) Put(k Key, e *Entry) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[k]; ok {
		old.entry = e
		s.lru.MoveToFront(old.elem)
		return
	}
	if s.lru.Len() >= s.max {
		back := s.lru.Back()
		if back != nil {
			victim := back.Value.(*cached)
			s.lru.Remove(back)
			delete(s.entries, victim.key)
		}
	}
	ce := &cached{key: k, entry: e}
	ce.elem = s.lru.PushFront(ce)
	s.entries[k] = ce
}

// Stats returns hit/miss counters summed across shards.
func (c *Cache) Stats() (hits, misses int64) {
	for _, s := range c.shards {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return
}

// Len reports the number of cached templates (for tests).
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}
