package mv

import (
	"strings"
	"testing"

	"repro/internal/analyze"
	"repro/internal/dfs"
	"repro/internal/metastore"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
)

func fixture(t *testing.T) (*metastore.Metastore, *Rewriter) {
	t.Helper()
	ms := metastore.New(dfs.New(), "/wh")
	for _, tbl := range []*metastore.Table{
		{DB: "default", Name: "sales", Cols: []metastore.Column{
			{Name: "item", Type: types.TBigint},
			{Name: "amount", Type: types.TDecimal(7, 2)},
			{Name: "year", Type: types.TInt},
		}},
		{DB: "default", Name: "dim", Cols: []metastore.Column{
			{Name: "d_item", Type: types.TBigint},
			{Name: "cat", Type: types.TString},
		}},
	} {
		if err := ms.CreateTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	rw := &Rewriter{
		MS: ms,
		AnalyzeView: func(viewSQL, db string) (plan.Rel, error) {
			st, err := sql.Parse(viewSQL)
			if err != nil {
				return nil, err
			}
			return analyze.New(ms, db).AnalyzeSelect(st.(*sql.SelectStmt))
		},
	}
	return ms, rw
}

func registerMV(t *testing.T, ms *metastore.Metastore, name, viewSQL string, cols []metastore.Column) *metastore.Table {
	t.Helper()
	mvT := &metastore.Table{
		DB: "default", Name: name, Cols: cols,
		IsMaterializedView: true, RewriteEnabled: true,
		ViewSQL:          viewSQL,
		SnapshotWriteIds: map[string]int64{},
	}
	if err := ms.CreateTable(mvT); err != nil {
		t.Fatal(err)
	}
	return mvT
}

const viewSQL = `SELECT cat, year, SUM(amount) AS s, COUNT(*) AS c
	FROM sales, dim WHERE item = d_item GROUP BY cat, year`

var mvCols = []metastore.Column{
	{Name: "cat", Type: types.TString},
	{Name: "year", Type: types.TInt},
	{Name: "s", Type: types.TDecimal(38, 2)},
	{Name: "c", Type: types.TBigint},
}

func analyzeQuery(t *testing.T, ms *metastore.Metastore, q string) plan.Rel {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := analyze.New(ms, "default").AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestFullContainmentRewrite(t *testing.T) {
	ms, rw := fixture(t)
	registerMV(t, ms, "mv1", viewSQL, mvCols)
	rel := analyzeQuery(t, ms, `SELECT cat, SUM(amount) FROM sales, dim
		WHERE item = d_item GROUP BY cat`)
	out, changed := rw.Rewrite(rel, "default")
	if !changed {
		t.Fatalf("query should rewrite onto the view:\n%s", plan.Explain(rel))
	}
	s := plan.Explain(out)
	if !strings.Contains(s, "default.mv1") || strings.Contains(s, "default.sales") {
		t.Errorf("rewritten plan should scan only the view:\n%s", s)
	}
}

func TestResidualFilterRewrite(t *testing.T) {
	ms, rw := fixture(t)
	registerMV(t, ms, "mv1", viewSQL, mvCols)
	// Extra predicate on a grouping column: becomes a residual filter over
	// the materialization (Figure 4b).
	rel := analyzeQuery(t, ms, `SELECT cat, SUM(amount) FROM sales, dim
		WHERE item = d_item AND year = 2018 GROUP BY cat`)
	out, changed := rw.Rewrite(rel, "default")
	if !changed {
		t.Fatalf("contained query should rewrite")
	}
	s := plan.Explain(out)
	if !strings.Contains(s, "default.mv1") {
		t.Errorf("plan:\n%s", s)
	}
	if !strings.Contains(s, "2018") {
		t.Errorf("residual filter lost:\n%s", s)
	}
}

func TestNonContainedQueriesNotRewritten(t *testing.T) {
	ms, rw := fixture(t)
	registerMV(t, ms, "mv1", viewSQL, mvCols)
	for _, q := range []string{
		// Filter on a non-grouped base column.
		`SELECT cat, SUM(amount) FROM sales, dim WHERE item = d_item AND amount > 5 GROUP BY cat`,
		// Different table set.
		`SELECT year, SUM(amount) FROM sales GROUP BY year`,
		// AVG does not re-aggregate.
		`SELECT cat, AVG(amount) FROM sales, dim WHERE item = d_item GROUP BY cat`,
	} {
		rel := analyzeQuery(t, ms, q)
		if _, changed := rw.Rewrite(rel, "default"); changed {
			t.Errorf("query must not rewrite: %s", q)
		}
	}
}

func TestStaleViewSkipped(t *testing.T) {
	ms, rw := fixture(t)
	mvT := registerMV(t, ms, "mv1", viewSQL, mvCols)
	// Record a snapshot, then advance the source table's writeid.
	mvT.SnapshotWriteIds["default.sales"] = 0
	tm := ms.Txns()
	id := tm.Begin()
	tm.AllocateWriteId(id, "default.sales")
	tm.Commit(id)
	rel := analyzeQuery(t, ms, `SELECT cat, SUM(amount) FROM sales, dim
		WHERE item = d_item GROUP BY cat`)
	if _, changed := rw.Rewrite(rel, "default"); changed {
		t.Error("stale view must not be used")
	}
	// Allowing staleness re-enables it (paper §4.4 staleness window).
	mvT.Props["materialized.view.allow.stale"] = "true"
	if _, changed := rw.Rewrite(rel, "default"); !changed {
		t.Error("explicitly allowed staleness should permit the rewrite")
	}
}
