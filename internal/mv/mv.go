// Package mv implements materialized view rewriting (paper §4.4): the
// optimizer matches Select-Project-Join-Aggregate query expressions against
// enabled materialized views and substitutes a scan of the materialization,
// re-aggregating on top (full containment; a residual filter covers views
// that are less selective than the query). Views are ordinary tables — they
// can live in Hive's native storage or any federated system (e.g. Druid).
package mv

import (
	"fmt"
	"strings"

	"repro/internal/metastore"
	"repro/internal/plan"
	"repro/internal/types"
)

// spja is the canonical form of a Select-Project-Join-Aggregate block:
// every column is named "table.col" (sym), so two blocks over the same
// tables compare structurally regardless of join order.
type spja struct {
	tables  []string            // sorted full names (no duplicates allowed)
	conjs   map[string]plan.Rex // normalized digest -> normalized conjunct
	groups  []plan.Rex          // normalized group exprs, in view/query order
	aggs    []plan.AggCall      // normalized agg calls
	aggNode *plan.Aggregate     // original node (query side)
}

// sym is a Rex leaf naming a base-table column.
type sym struct {
	name string
	t    types.T
}

func (s *sym) Type() types.T  { return s.t }
func (s *sym) Digest() string { return s.name }

// extract canonicalizes a plan of shape Aggregate(Filter*(JoinTree(Scans)))
// (Projects of plain column refs are looked through). Returns false for
// any other shape.
func extract(rel plan.Rel) (*spja, bool) {
	agg, ok := rel.(*plan.Aggregate)
	if !ok || agg.GroupingSets != nil {
		return nil, false
	}
	syms, tables, conjs, ok := flatten(agg.Input)
	if !ok {
		return nil, false
	}
	out := &spja{tables: tables, conjs: map[string]plan.Rex{}, aggNode: agg}
	for _, c := range conjs {
		out.conjs[c.Digest()] = c
	}
	for _, g := range agg.GroupBy {
		ng, ok := normalize(g, syms)
		if !ok {
			return nil, false
		}
		out.groups = append(out.groups, ng)
	}
	for _, a := range agg.Aggs {
		na := a
		if a.Arg != nil {
			arg, ok := normalize(a.Arg, syms)
			if !ok {
				return nil, false
			}
			na.Arg = arg
		}
		out.aggs = append(out.aggs, na)
	}
	return out, true
}

// flatten resolves a join tree into per-column syms plus normalized
// conjuncts (join conditions and filters).
func flatten(rel plan.Rel) (syms []*sym, tables []string, conjs []plan.Rex, ok bool) {
	switch x := rel.(type) {
	case *plan.Scan:
		if x.Meta {
			return nil, nil, nil, false
		}
		name := x.Table.FullName()
		all := plan.TableCols(x.Table)
		for _, c := range x.Cols {
			syms = append(syms, &sym{name: name + "." + all[c].Name, t: all[c].Type})
		}
		for _, f := range x.Filter {
			nf, okc := normalize(f, syms)
			if !okc {
				return nil, nil, nil, false
			}
			conjs = append(conjs, nf)
		}
		return syms, []string{name}, conjs, true
	case *plan.Filter:
		syms, tables, conjs, ok = flatten(x.Input)
		if !ok {
			return nil, nil, nil, false
		}
		for _, c := range plan.Conjuncts(x.Cond) {
			nc, okc := normalize(c, syms)
			if !okc {
				return nil, nil, nil, false
			}
			conjs = append(conjs, nc)
		}
		return syms, tables, conjs, true
	case *plan.Project:
		inSyms, tables, conjs, ok := flatten(x.Input)
		if !ok {
			return nil, nil, nil, false
		}
		for _, e := range x.Exprs {
			cr, isCol := e.(*plan.ColRef)
			if !isCol {
				return nil, nil, nil, false
			}
			syms = append(syms, inSyms[cr.Idx])
		}
		return syms, tables, conjs, true
	case *plan.Join:
		if x.Kind != plan.Inner && x.Kind != plan.Cross {
			return nil, nil, nil, false
		}
		ls, lt, lc, lok := flatten(x.Left)
		rs, rt, rc, rok := flatten(x.Right)
		if !lok || !rok {
			return nil, nil, nil, false
		}
		syms = append(append([]*sym{}, ls...), rs...)
		for _, t := range append(lt, rt...) {
			for _, seen := range tables {
				if seen == t {
					return nil, nil, nil, false // self-join: bail out
				}
			}
			tables = append(tables, t)
		}
		conjs = append(append([]plan.Rex{}, lc...), rc...)
		if x.Cond != nil {
			for _, c := range plan.Conjuncts(x.Cond) {
				nc, okc := normalize(c, syms)
				if !okc {
					return nil, nil, nil, false
				}
				conjs = append(conjs, nc)
			}
		}
		return syms, tables, conjs, true
	}
	return nil, nil, nil, false
}

// normalize replaces ColRefs with syms.
func normalize(e plan.Rex, syms []*sym) (plan.Rex, bool) {
	switch x := e.(type) {
	case *plan.ColRef:
		if x.Idx >= len(syms) {
			return nil, false
		}
		return syms[x.Idx], true
	case *plan.Func:
		args := make([]plan.Rex, len(x.Args))
		for i, a := range x.Args {
			na, ok := normalize(a, syms)
			if !ok {
				return nil, false
			}
			args[i] = na
		}
		return &plan.Func{Op: x.Op, Args: args, T: x.T}, true
	default:
		return e, true
	}
}

// Rewriter matches queries against registered materialized views.
type Rewriter struct {
	MS *metastore.Metastore
	// AnalyzeView turns a view's stored SQL into a logical plan; injected
	// to avoid a dependency cycle with the analyzer's driver.
	AnalyzeView func(viewSQL, db string) (plan.Rel, error)
	// Rewrites counts successful substitutions (observability).
	Rewrites int
}

// Rewrite walks the plan and substitutes materialized views for contained
// SPJA blocks. Returns the rewritten plan and whether anything changed.
func (r *Rewriter) Rewrite(rel plan.Rel, db string) (plan.Rel, bool) {
	views := r.MS.MaterializedViews()
	if len(views) == 0 {
		return rel, false
	}
	changed := false
	var visit func(n plan.Rel) plan.Rel
	visit = func(n plan.Rel) plan.Rel {
		if agg, ok := n.(*plan.Aggregate); ok {
			if sub, ok := r.tryViews(agg, views, db); ok {
				changed = true
				return sub
			}
		}
		switch x := n.(type) {
		case *plan.Filter:
			return &plan.Filter{Input: visit(x.Input), Cond: x.Cond}
		case *plan.Project:
			return &plan.Project{Input: visit(x.Input), Exprs: x.Exprs, Names: x.Names}
		case *plan.Sort:
			return &plan.Sort{Input: visit(x.Input), Keys: x.Keys}
		case *plan.Limit:
			return &plan.Limit{Input: visit(x.Input), N: x.N, Offset: x.Offset}
		case *plan.Join:
			return &plan.Join{Kind: x.Kind, Left: visit(x.Left), Right: visit(x.Right), Cond: x.Cond, ReducerID: x.ReducerID}
		case *plan.SetOp:
			return &plan.SetOp{Kind: x.Kind, All: x.All, Left: visit(x.Left), Right: visit(x.Right)}
		}
		return n
	}
	out := visit(rel)
	return out, changed
}

// Fresh reports whether the view's contents reflect the current state of
// its source tables, or staleness is explicitly allowed (paper §4.4's
// staleness window, via the materialized.view.allow.stale property).
func (r *Rewriter) Fresh(view *metastore.Table) bool {
	if view.Props["materialized.view.allow.stale"] == "true" {
		return true
	}
	tm := r.MS.Txns()
	snap := tm.GetSnapshot()
	for tbl, wid := range view.SnapshotWriteIds {
		cur := tm.GetValidWriteIds(tbl, snap)
		if cur.HighWater != wid {
			return false
		}
	}
	return true
}

func (r *Rewriter) tryViews(agg *plan.Aggregate, views []*metastore.Table, db string) (plan.Rel, bool) {
	q, ok := extract(agg)
	if !ok {
		return nil, false
	}
	for _, view := range views {
		if !view.RewriteEnabled || !r.Fresh(view) {
			continue
		}
		vplan, err := r.AnalyzeView(view.ViewSQL, db)
		if err != nil {
			continue
		}
		// The analyzed view plan is typically Project(Aggregate(...)).
		vagg := findAggregate(vplan)
		if vagg == nil {
			continue
		}
		v, ok := extract(vagg)
		if !ok {
			continue
		}
		if sub, ok := r.substitute(q, v, view, vagg); ok {
			r.Rewrites++
			return sub, true
		}
	}
	return nil, false
}

func findAggregate(rel plan.Rel) *plan.Aggregate {
	if a, ok := rel.(*plan.Aggregate); ok {
		return a
	}
	kids := rel.Children()
	if len(kids) == 1 {
		// Only look through bare projections of the aggregate output.
		if p, ok := rel.(*plan.Project); ok {
			for _, e := range p.Exprs {
				if _, isCol := e.(*plan.ColRef); !isCol {
					return nil
				}
			}
		}
		return findAggregate(kids[0])
	}
	return nil
}

// substitute produces Aggregate'(Filter'(Scan(view))) when the query block
// is fully contained in the view.
func (r *Rewriter) substitute(q, v *spja, view *metastore.Table, vagg *plan.Aggregate) (plan.Rel, bool) {
	if !sameTables(q.tables, v.tables) {
		return nil, false
	}
	// View conjuncts must all appear in the query.
	for d := range v.conjs {
		if _, ok := q.conjs[d]; !ok {
			return nil, false
		}
	}
	// Residual query conjuncts must be computable from view outputs.
	// View outputs: group exprs (columns of the materialization, in
	// order), then agg values.
	outPos := map[string]int{}
	for i, g := range v.groups {
		outPos[g.Digest()] = i
	}
	var residual []plan.Rex
	for d, c := range q.conjs {
		if _, ok := v.conjs[d]; ok {
			continue
		}
		rc, ok := remapToView(c, outPos, view)
		if !ok {
			return nil, false
		}
		residual = append(residual, rc)
		_ = d
	}
	// Query groups must be view group columns (or exprs over them).
	scan := plan.NewScan(view, view.Name)
	viewFields := scan.Schema()
	var groups []plan.Rex
	for _, g := range q.groups {
		rg, ok := remapToView(g, outPos, view)
		if !ok {
			return nil, false
		}
		groups = append(groups, rg)
	}
	// Query aggs must be re-aggregations of view aggs.
	var aggs []plan.AggCall
	for _, qa := range q.aggs {
		pos := -1
		for i, va := range v.aggs {
			if va.Fn == qa.Fn && va.Distinct == qa.Distinct && argDigest(va) == argDigest(qa) {
				pos = i
				break
			}
		}
		if pos < 0 || qa.Distinct {
			return nil, false
		}
		viewCol := len(v.groups) + pos
		if viewCol >= len(viewFields) {
			return nil, false
		}
		ref := &plan.ColRef{Idx: viewCol, T: viewFields[viewCol].T}
		fn := qa.Fn
		switch qa.Fn {
		case "count":
			fn = "sum" // counts re-aggregate by summation
		case "sum", "min", "max":
		default:
			return nil, false // avg needs sum+count decomposition
		}
		aggs = append(aggs, plan.AggCall{Fn: fn, Arg: ref, T: qa.T})
	}
	var input plan.Rel = scan
	if cond := plan.AndAll(residual); cond != nil {
		input = &plan.Filter{Input: input, Cond: cond}
	}
	return &plan.Aggregate{Input: input, GroupBy: groups, Aggs: aggs, Names: q.aggNode.Names}, true
}

func argDigest(a plan.AggCall) string {
	if a.Arg == nil {
		return "*"
	}
	return a.Arg.Digest()
}

// remapToView rewrites a normalized expression so its sym leaves become
// ColRefs into the view scan, matching by the view's group expressions.
func remapToView(e plan.Rex, outPos map[string]int, view *metastore.Table) (plan.Rex, bool) {
	if pos, ok := outPos[e.Digest()]; ok {
		all := plan.TableCols(view)
		if pos >= len(all) {
			return nil, false
		}
		return &plan.ColRef{Idx: pos, T: all[pos].Type}, true
	}
	switch x := e.(type) {
	case *sym:
		return nil, false // base column not exposed by the view
	case *plan.Func:
		args := make([]plan.Rex, len(x.Args))
		for i, a := range x.Args {
			na, ok := remapToView(a, outPos, view)
			if !ok {
				return nil, false
			}
			args[i] = na
		}
		return &plan.Func{Op: x.Op, Args: args, T: x.T}, true
	default:
		return e, true
	}
}

func sameTables(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string{}, a...)
	bs := append([]string{}, b...)
	sortStrings(as)
	sortStrings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sortStrings(s []string) {
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
}

// DigestOf renders a stable description of a view definition for errors.
func DigestOf(view *metastore.Table) string {
	return fmt.Sprintf("%s := %s", view.FullName(), strings.TrimSpace(view.ViewSQL))
}
