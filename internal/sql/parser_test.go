package sql

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	st := mustParse(t, src)
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("expected SelectStmt, got %T", st)
	}
	return sel
}

func TestLexerBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s' FROM t -- comment\nWHERE x >= 1.5")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "a", ",", "it's", "FROM", "t", "WHERE", "x", ">=", "1.5", ""}
	for i, w := range want {
		if texts[i] != w {
			t.Errorf("token %d = %q, want %q", i, texts[i], w)
		}
	}
	if kinds[3] != TokString {
		t.Error("string literal kind wrong")
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("a $ b"); err == nil {
		t.Error("illegal char should fail")
	}
}

func TestSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b AS total FROM t WHERE a > 1 ORDER BY total DESC LIMIT 10")
	core := sel.Body.(*SelectCore)
	if len(core.Items) != 2 || core.Items[1].Alias != "total" {
		t.Errorf("items: %+v", core.Items)
	}
	tn := core.From.(*TableName)
	if tn.Name != "t" {
		t.Errorf("from: %+v", tn)
	}
	if sel.Limit != 10 || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order/limit: %+v %d", sel.OrderBy, sel.Limit)
	}
	be := core.Where.(*BinExpr)
	if be.Op != ">" {
		t.Errorf("where: %+v", be)
	}
}

func TestLimitOffsetParsing(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t ORDER BY a LIMIT 10 OFFSET 25")
	if sel.Limit != 10 || sel.Offset != 25 {
		t.Errorf("limit/offset: %d/%d", sel.Limit, sel.Offset)
	}
	sel = mustSelect(t, "SELECT a FROM t LIMIT 5")
	if sel.Limit != 5 || sel.Offset != 0 {
		t.Errorf("limit without offset: %d/%d", sel.Limit, sel.Offset)
	}
	if _, err := Parse("SELECT a FROM t LIMIT 5 OFFSET x"); err == nil {
		t.Error("non-numeric OFFSET must fail")
	}
	if _, err := Parse("SELECT a FROM t OFFSET 5"); err == nil {
		t.Error("OFFSET without LIMIT must fail")
	}
}

func TestJoinParsing(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM store_sales ss
		JOIN item ON ss.item_sk = item.i_item_sk
		LEFT OUTER JOIN store_returns sr ON ss.ticket = sr.ticket
		WHERE item.category = 'Sports'`)
	core := sel.Body.(*SelectCore)
	j := core.From.(*Join)
	if j.Kind != JoinLeft {
		t.Errorf("outer join kind = %v", j.Kind)
	}
	inner := j.Left.(*Join)
	if inner.Kind != JoinInner {
		t.Errorf("inner join kind = %v", inner.Kind)
	}
	ss := inner.Left.(*TableName)
	if ss.Name != "store_sales" || ss.Alias != "ss" {
		t.Errorf("aliased table: %+v", ss)
	}
}

func TestCommaJoinAndSemi(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 FROM a, b WHERE a.x = b.y")
	j := sel.Body.(*SelectCore).From.(*Join)
	if j.Kind != JoinCross {
		t.Errorf("comma join should be cross, got %v", j.Kind)
	}
	sel = mustSelect(t, "SELECT 1 FROM a LEFT SEMI JOIN b ON a.x = b.y")
	j = sel.Body.(*SelectCore).From.(*Join)
	if j.Kind != JoinSemi {
		t.Errorf("semi join kind = %v", j.Kind)
	}
}

func TestSetOperations(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t UNION ALL SELECT a FROM u INTERSECT SELECT a FROM v")
	// INTERSECT binds tighter: union(t, intersect(u,v)).
	op := sel.Body.(*SetOp)
	if op.Kind != SetUnion || !op.All {
		t.Fatalf("top op: %+v", op)
	}
	right := op.Right.(*SetOp)
	if right.Kind != SetIntersect || right.All {
		t.Errorf("right op: %+v", right)
	}
	sel = mustSelect(t, "SELECT a FROM t EXCEPT SELECT a FROM u")
	if sel.Body.(*SetOp).Kind != SetExcept {
		t.Error("except kind")
	}
}

func TestSubqueries(t *testing.T) {
	sel := mustSelect(t, `SELECT c FROM t WHERE
		x IN (SELECT y FROM u WHERE u.k = t.k) AND
		EXISTS (SELECT 1 FROM v) AND
		amount > (SELECT avg(amount) FROM t)`)
	where := sel.Body.(*SelectCore).Where.(*BinExpr)
	// ((IN AND EXISTS) AND scalar-compare)
	if where.Op != "AND" {
		t.Fatalf("where: %+v", where)
	}
	inner := where.L.(*BinExpr)
	if _, ok := inner.L.(*InExpr); !ok {
		t.Errorf("IN subquery: %T", inner.L)
	}
	if _, ok := inner.R.(*ExistsExpr); !ok {
		t.Errorf("EXISTS: %T", inner.R)
	}
	cmp := where.R.(*BinExpr)
	if _, ok := cmp.R.(*SubqueryExpr); !ok {
		t.Errorf("scalar subquery: %T", cmp.R)
	}
}

func TestDerivedTableAndCTE(t *testing.T) {
	sel := mustSelect(t, `WITH x AS (SELECT a FROM t), y AS (SELECT a FROM u)
		SELECT * FROM (SELECT a FROM x) sub JOIN y ON sub.a = y.a`)
	if len(sel.With) != 2 || sel.With[0].Name != "x" {
		t.Fatalf("ctes: %+v", sel.With)
	}
	j := sel.Body.(*SelectCore).From.(*Join)
	sq := j.Left.(*SubqueryRef)
	if sq.Alias != "sub" {
		t.Errorf("derived table alias: %q", sq.Alias)
	}
}

func TestGroupingSetsRollupCube(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b, sum(c) FROM t GROUP BY GROUPING SETS ((a,b),(a),())")
	core := sel.Body.(*SelectCore)
	if len(core.GroupingSets) != 3 || len(core.GroupingSets[2]) != 0 {
		t.Errorf("grouping sets: %v", core.GroupingSets)
	}
	sel = mustSelect(t, "SELECT a, b, sum(c) FROM t GROUP BY ROLLUP(a, b)")
	core = sel.Body.(*SelectCore)
	if len(core.GroupingSets) != 3 {
		t.Errorf("rollup sets: %d", len(core.GroupingSets))
	}
	sel = mustSelect(t, "SELECT a, b, sum(c) FROM t GROUP BY CUBE(a, b)")
	core = sel.Body.(*SelectCore)
	if len(core.GroupingSets) != 4 {
		t.Errorf("cube sets: %d", len(core.GroupingSets))
	}
}

func TestWindowFunctions(t *testing.T) {
	sel := mustSelect(t, `SELECT rank() OVER (PARTITION BY d ORDER BY s DESC),
		sum(x) OVER (PARTITION BY d ORDER BY s ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW)
		FROM t`)
	core := sel.Body.(*SelectCore)
	c0 := core.Items[0].Expr.(*Call)
	if c0.Over == nil || len(c0.Over.PartitionBy) != 1 || !c0.Over.OrderBy[0].Desc {
		t.Errorf("window spec: %+v", c0.Over)
	}
	c1 := core.Items[1].Expr.(*Call)
	if c1.Over == nil {
		t.Error("frame clause broke the window spec")
	}
}

func TestExpressions(t *testing.T) {
	sel := mustSelect(t, `SELECT
		CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END,
		CAST(a AS decimal(7,2)),
		EXTRACT(year FROM d),
		a BETWEEN 1 AND 10,
		s LIKE '%x%',
		b IS NOT NULL,
		d + INTERVAL 3 DAYS,
		-5,
		1.25,
		x NOT IN (1, 2, 3)
		FROM t`)
	items := sel.Body.(*SelectCore).Items
	if _, ok := items[0].Expr.(*CaseExpr); !ok {
		t.Errorf("case: %T", items[0].Expr)
	}
	cast := items[1].Expr.(*CastExpr)
	if cast.Type.String() != "DECIMAL(7,2)" {
		t.Errorf("cast type: %s", cast.Type)
	}
	if ex := items[2].Expr.(*ExtractExpr); ex.Field != "year" {
		t.Errorf("extract: %+v", ex)
	}
	if _, ok := items[3].Expr.(*BetweenExpr); !ok {
		t.Errorf("between: %T", items[3].Expr)
	}
	if _, ok := items[4].Expr.(*LikeExpr); !ok {
		t.Errorf("like: %T", items[4].Expr)
	}
	if n := items[5].Expr.(*IsNullExpr); !n.Not {
		t.Errorf("is not null: %+v", n)
	}
	add := items[6].Expr.(*BinExpr)
	if _, ok := add.R.(*IntervalExpr); !ok {
		t.Errorf("interval: %T", add.R)
	}
	if lit := items[7].Expr.(*Lit); lit.Val.I != -5 {
		t.Errorf("neg literal: %v", lit.Val)
	}
	if lit := items[8].Expr.(*Lit); lit.Val.K != types.Decimal || lit.Val.String() != "1.25" {
		t.Errorf("decimal literal: %v", lit.Val)
	}
	if in := items[9].Expr.(*InExpr); !in.Not || len(in.List) != 3 {
		t.Errorf("not in: %+v", in)
	}
}

func TestInsertForms(t *testing.T) {
	st := mustParse(t, "INSERT INTO t VALUES (1, 'a'), (2, 'b')").(*InsertStmt)
	if len(st.Values) != 2 || st.Overwrite {
		t.Errorf("values insert: %+v", st)
	}
	st = mustParse(t, "INSERT OVERWRITE TABLE t PARTITION (ds='2018-01-01') SELECT a FROM u").(*InsertStmt)
	if !st.Overwrite || st.Partition["ds"] == nil || st.Select == nil {
		t.Errorf("overwrite insert: %+v", st)
	}
	st = mustParse(t, "INSERT INTO t (a, b) SELECT x, y FROM u").(*InsertStmt)
	if len(st.Columns) != 2 {
		t.Errorf("column list: %+v", st.Columns)
	}
}

func TestMultiInsert(t *testing.T) {
	st := mustParse(t, `FROM staging s
		INSERT INTO t1 SELECT s.a WHERE s.a > 0
		INSERT INTO t2 SELECT s.b`).(*MultiInsertStmt)
	if len(st.Inserts) != 2 {
		t.Fatalf("inserts: %d", len(st.Inserts))
	}
	if st.Inserts[0].Select.Body.(*SelectCore).Where == nil {
		t.Error("per-insert WHERE lost")
	}
}

func TestUpdateDeleteMerge(t *testing.T) {
	up := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE k = 5").(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Errorf("update: %+v", up)
	}
	del := mustParse(t, "DELETE FROM t WHERE k = 5").(*DeleteStmt)
	if del.Where == nil {
		t.Errorf("delete: %+v", del)
	}
	mg := mustParse(t, `MERGE INTO target t USING source s ON t.k = s.k
		WHEN MATCHED AND s.op = 'del' THEN DELETE
		WHEN MATCHED THEN UPDATE SET v = s.v
		WHEN NOT MATCHED THEN INSERT VALUES (s.k, s.v)`).(*MergeStmt)
	if len(mg.When) != 3 {
		t.Fatalf("merge whens: %d", len(mg.When))
	}
	if !mg.When[0].Delete || mg.When[0].And == nil {
		t.Errorf("when matched delete: %+v", mg.When[0])
	}
	if len(mg.When[1].Set) != 1 {
		t.Errorf("when matched update: %+v", mg.When[1])
	}
	if len(mg.When[2].Values) != 2 {
		t.Errorf("when not matched: %+v", mg.When[2])
	}
}

func TestCreateTablePaperExample(t *testing.T) {
	st := mustParse(t, `CREATE TABLE store_sales (
		sold_date_sk INT, item_sk INT, customer_sk INT, store_sk INT,
		quantity INT, list_price DECIMAL(7,2), sales_price DECIMAL(7,2)
	) PARTITIONED BY (sold_date_sk2 INT)`).(*CreateTableStmt)
	if len(st.Cols) != 7 || len(st.PartKeys) != 1 {
		t.Errorf("cols=%d parts=%d", len(st.Cols), len(st.PartKeys))
	}
	if st.Cols[5].Type.String() != "DECIMAL(7,2)" {
		t.Errorf("decimal col: %s", st.Cols[5].Type)
	}
}

func TestCreateTableConstraintsAndProps(t *testing.T) {
	st := mustParse(t, `CREATE EXTERNAL TABLE IF NOT EXISTS db.t (
		id BIGINT NOT NULL,
		name STRING,
		PRIMARY KEY (id) DISABLE NOVALIDATE RELY,
		FOREIGN KEY (name) REFERENCES dim(name_key),
		UNIQUE (name)
	) STORED BY 'org.apache.hadoop.hive.druid.DruidStorageHandler'
	TBLPROPERTIES ('druid.datasource' = 'my_source')`).(*CreateTableStmt)
	if !st.External || !st.IfNotExists || st.Table.DB != "db" {
		t.Errorf("flags: %+v", st)
	}
	if len(st.PrimaryKey) != 1 || len(st.ForeignKeys) != 1 || len(st.UniqueKeys) != 1 {
		t.Errorf("constraints: %+v", st)
	}
	if !st.Cols[0].NotNull {
		t.Error("NOT NULL lost")
	}
	if st.StoredBy != "org.apache.hadoop.hive.druid.DruidStorageHandler" {
		t.Errorf("stored by: %q", st.StoredBy)
	}
	if st.TblProps["druid.datasource"] != "my_source" {
		t.Errorf("props: %v", st.TblProps)
	}
}

func TestCreateMaterializedView(t *testing.T) {
	st := mustParse(t, `CREATE MATERIALIZED VIEW mat_view AS
		SELECT d_year, SUM(ss_sales_price) AS sum_sales
		FROM store_sales, date_dim
		WHERE ss_sold_date_sk = d_date_sk AND d_year > 2017
		GROUP BY d_year`).(*CreateMaterializedViewStmt)
	if st.Name.Name != "mat_view" || st.Query == nil {
		t.Errorf("mv: %+v", st)
	}
	if !strings.Contains(st.QueryText, "SUM(ss_sales_price)") {
		t.Errorf("query text: %q", st.QueryText)
	}
	rb := mustParse(t, "ALTER MATERIALIZED VIEW mat_view REBUILD").(*AlterMVRebuildStmt)
	if rb.Name.Name != "mat_view" {
		t.Errorf("rebuild: %+v", rb)
	}
}

func TestResourcePlanDDLPaperExample(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE RESOURCE PLAN daytime;
		CREATE POOL daytime.bi WITH alloc_fraction=0.8, query_parallelism=5;
		CREATE POOL daytime.etl WITH alloc_fraction=0.2, query_parallelism=20;
		CREATE RULE downgrade IN daytime WHEN total_runtime > 3000 THEN MOVE etl;
		ADD RULE downgrade TO bi;
		CREATE APPLICATION MAPPING visualization_app IN daytime TO bi;
		ALTER PLAN daytime SET DEFAULT POOL = etl;
		ALTER RESOURCE PLAN daytime ENABLE ACTIVATE;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 8 {
		t.Fatalf("parsed %d statements", len(stmts))
	}
	pool := stmts[1].(*CreatePoolStmt)
	if pool.Plan != "daytime" || pool.Pool != "bi" || pool.AllocFraction != 0.8 || pool.QueryParallelism != 5 {
		t.Errorf("pool: %+v", pool)
	}
	rule := stmts[3].(*CreateRuleStmt)
	if rule.Metric != "total_runtime" || rule.Threshold != 3000 || rule.MovePool != "etl" {
		t.Errorf("rule: %+v", rule)
	}
	add := stmts[4].(*AddRuleStmt)
	if add.Rule != "downgrade" || add.Pool != "bi" {
		t.Errorf("add rule: %+v", add)
	}
	mp := stmts[5].(*CreateMappingStmt)
	if mp.Kind != "application" || mp.Name != "visualization_app" || mp.Pool != "bi" {
		t.Errorf("mapping: %+v", mp)
	}
	ap := stmts[6].(*AlterPlanStmt)
	if ap.DefaultPool != "etl" {
		t.Errorf("default pool: %+v", ap)
	}
	act := stmts[7].(*AlterPlanStmt)
	if !act.EnableActivate {
		t.Errorf("activate: %+v", act)
	}
}

func TestMiscStatements(t *testing.T) {
	if st := mustParse(t, "EXPLAIN SELECT 1").(*ExplainStmt); st.Inner == nil {
		t.Error("explain inner nil")
	}
	set := mustParse(t, "SET hive.llap.enabled = true").(*SetStmt)
	if set.Key != "hive.llap.enabled" || set.Value != "TRUE" {
		t.Errorf("set: %+v", set)
	}
	an := mustParse(t, "ANALYZE TABLE t COMPUTE STATISTICS").(*AnalyzeStmt)
	if an.Table.Name != "t" {
		t.Errorf("analyze: %+v", an)
	}
	drop := mustParse(t, "DROP TABLE IF EXISTS db.t").(*DropStmt)
	if !drop.IfExists || drop.Name.DB != "db" {
		t.Errorf("drop: %+v", drop)
	}
	dp := mustParse(t, "ALTER TABLE t DROP PARTITION (ds = '2018-01-01')").(*AlterTableDropPartitionStmt)
	if dp.Spec["ds"] == nil {
		t.Errorf("drop partition: %+v", dp)
	}
	use := mustParse(t, "USE tpcds").(*UseStmt)
	if use.DB != "tpcds" {
		t.Errorf("use: %+v", use)
	}
	show := mustParse(t, "SHOW TABLES").(*ShowStmt)
	if show.What != "tables" {
		t.Errorf("show: %+v", show)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"FROB x",
		"INSERT INTO",
		"MERGE INTO t USING s ON 1=1",
		"SELECT a FROM t GROUP BY GROUPING SETS (a)",
		"CREATE POOL p WITH alloc_fraction='x'",
		"SELECT a b c FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestFormatExprRoundsTrip(t *testing.T) {
	sel := mustSelect(t, "SELECT CASE WHEN a > 1 THEN b ELSE c END FROM t WHERE x IN (1,2) AND y IS NULL")
	core := sel.Body.(*SelectCore)
	got := FormatExpr(core.Where)
	if !strings.Contains(got, "IN (1, 2)") || !strings.Contains(got, "IS NULL") {
		t.Errorf("format: %s", got)
	}
	reparsed, err := Parse("SELECT 1 FROM t WHERE " + got)
	if err != nil {
		t.Fatalf("formatted expr does not reparse: %v\n%s", err, got)
	}
	if FormatExpr(reparsed.(*SelectStmt).Body.(*SelectCore).Where) != got {
		t.Error("format not a fixpoint")
	}
}
