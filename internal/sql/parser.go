package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected %q after statement", p.cur().Text)
	}
	return st, nil
}

// ParseScript splits src on top-level semicolons and parses each statement.
func ParseScript(src string) ([]Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var out []Statement
	for !p.atEOF() {
		if p.accept(";") {
			continue
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(";") && !p.atEOF() {
			return nil, p.errf("expected ';' between statements, got %q", p.cur().Text)
		}
	}
	return out, nil
}

type parser struct {
	toks []Token
	pos  int
	src  string
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.cur().Pos)
}

// at reports whether the current token is the given keyword or operator.
func (p *parser) at(text string) bool {
	t := p.cur()
	return (t.Kind == TokKeyword || t.Kind == TokOp) && t.Text == text
}

func (p *parser) atAny(texts ...string) bool {
	for _, t := range texts {
		if p.at(t) {
			return true
		}
	}
	return false
}

// accept consumes the token if it matches.
func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, got %q", text, p.cur().Text)
	}
	return nil
}

// ident consumes an identifier (or keyword used as a name) and returns it
// lower-cased.
func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.Kind == TokIdent || t.Kind == TokKeyword {
		p.pos++
		return strings.ToLower(t.Text), nil
	}
	return "", p.errf("expected identifier, got %q", t.Text)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at("SELECT") || p.at("WITH") || p.at("("):
		return p.parseSelect()
	case p.at("INSERT"):
		return p.parseInsert(true)
	case p.at("FROM"):
		return p.parseMultiInsert()
	case p.at("UPDATE"):
		return p.parseUpdate()
	case p.at("DELETE"):
		return p.parseDelete()
	case p.at("MERGE"):
		return p.parseMerge()
	case p.at("CREATE"):
		return p.parseCreate()
	case p.at("ALTER"):
		return p.parseAlter()
	case p.at("DROP"):
		return p.parseDrop()
	case p.at("ADD"):
		return p.parseAddRule()
	case p.at("PREPARE"):
		return p.parsePrepare()
	case p.at("EXECUTE"):
		return p.parseExecute()
	case p.at("DEALLOCATE"):
		p.pos++
		p.accept("PREPARE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DeallocateStmt{Name: name}, nil
	case p.at("SHOW"):
		p.pos++
		what, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ShowStmt{What: what}, nil
	case p.at("EXPLAIN"):
		p.pos++
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Inner: inner}, nil
	case p.at("SET"):
		return p.parseSet()
	case p.at("ANALYZE"):
		return p.parseAnalyze()
	case p.at("USE"):
		p.pos++
		db, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &UseStmt{DB: db}, nil
	}
	return nil, p.errf("unsupported statement start %q", p.cur().Text)
}

// ---- SELECT ----

// parsePrepare parses PREPARE name AS <select>.
func (p *parser) parsePrepare() (Statement, error) {
	p.pos++ // PREPARE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	sel, ok := inner.(*SelectStmt)
	if !ok {
		return nil, p.errf("PREPARE supports SELECT statements, got %T", inner)
	}
	return &PrepareStmt{Name: name, Select: sel}, nil
}

// parseExecute parses EXECUTE name [(arg, ...)].
func (p *parser) parseExecute() (Statement, error) {
	p.pos++ // EXECUTE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &ExecuteStmt{Name: name}
	if p.accept("(") {
		if !p.at(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				st.Args = append(st.Args, a)
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	st := &SelectStmt{Limit: -1}
	if p.accept("WITH") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("AS"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			st.With = append(st.With, CTE{Name: name, Select: sub})
			if !p.accept(",") {
				break
			}
		}
	}
	body, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	st.Body = body
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		st.OrderBy = items
	}
	if p.accept("LIMIT") {
		t := p.cur()
		if t.Kind != TokNumber {
			return nil, p.errf("expected LIMIT count, got %q", t.Text)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.Text)
		}
		p.pos++
		st.Limit = n
		if p.accept("OFFSET") {
			t := p.cur()
			if t.Kind != TokNumber {
				return nil, p.errf("expected OFFSET count, got %q", t.Text)
			}
			off, err := strconv.ParseInt(t.Text, 10, 64)
			if err != nil {
				return nil, p.errf("bad OFFSET %q", t.Text)
			}
			p.pos++
			st.Offset = off
		}
	}
	return st, nil
}

func (p *parser) parseOrderItems() ([]OrderItem, error) {
	var items []OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		it := OrderItem{Expr: e}
		if p.accept("DESC") {
			it.Desc = true
		} else {
			p.accept("ASC")
		}
		if p.accept("NULLS") {
			first := p.accept("FIRST")
			if !first {
				if err := p.expect("LAST"); err != nil {
					return nil, err
				}
			}
			it.NullsFirst = &first
		}
		items = append(items, it)
		if !p.accept(",") {
			break
		}
	}
	return items, nil
}

// parseQueryExpr handles UNION/EXCEPT (lowest) over INTERSECT over terms.
func (p *parser) parseQueryExpr() (QueryExpr, error) {
	left, err := p.parseIntersectExpr()
	if err != nil {
		return nil, err
	}
	for {
		var kind SetOpKind
		switch {
		case p.at("UNION"):
			kind = SetUnion
		case p.at("EXCEPT") || p.at("MINUS"):
			kind = SetExcept
		default:
			return left, nil
		}
		p.pos++
		all := p.accept("ALL")
		if !all {
			p.accept("DISTINCT")
		}
		right, err := p.parseIntersectExpr()
		if err != nil {
			return nil, err
		}
		left = &SetOp{Kind: kind, All: all, Left: left, Right: right}
	}
}

func (p *parser) parseIntersectExpr() (QueryExpr, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for p.at("INTERSECT") {
		p.pos++
		all := p.accept("ALL")
		if !all {
			p.accept("DISTINCT")
		}
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &SetOp{Kind: SetIntersect, All: all, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseQueryTerm() (QueryExpr, error) {
	if p.accept("(") {
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return q, nil
	}
	return p.parseSelectCore()
}

func (p *parser) parseSelectCore() (*SelectCore, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	if p.accept("DISTINCT") {
		core.Distinct = true
	} else {
		p.accept("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if p.accept("FROM") {
		from, err := p.parseTableRefList()
		if err != nil {
			return nil, err
		}
		core.From = from
	}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		if err := p.parseGroupBy(core); err != nil {
			return nil, err
		}
	}
	if p.accept("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

func (p *parser) parseGroupBy(core *SelectCore) error {
	switch {
	case p.accept("GROUPING"):
		if err := p.expect("SETS"); err != nil {
			return err
		}
		if err := p.expect("("); err != nil {
			return err
		}
		for {
			if err := p.expect("("); err != nil {
				return err
			}
			var set []Expr
			if !p.at(")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return err
					}
					set = append(set, e)
					if !p.accept(",") {
						break
					}
				}
			}
			if err := p.expect(")"); err != nil {
				return err
			}
			core.GroupingSets = append(core.GroupingSets, set)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		core.GroupBy = unionOfSets(core.GroupingSets)
		return nil
	case p.accept("ROLLUP"):
		exprs, err := p.parseParenExprList()
		if err != nil {
			return err
		}
		core.GroupBy = exprs
		for i := len(exprs); i >= 0; i-- {
			core.GroupingSets = append(core.GroupingSets, exprs[:i])
		}
		return nil
	case p.accept("CUBE"):
		exprs, err := p.parseParenExprList()
		if err != nil {
			return err
		}
		core.GroupBy = exprs
		n := len(exprs)
		for mask := (1 << n) - 1; mask >= 0; mask-- {
			var set []Expr
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					set = append(set, exprs[i])
				}
			}
			core.GroupingSets = append(core.GroupingSets, set)
		}
		return nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		core.GroupBy = append(core.GroupBy, e)
		if !p.accept(",") {
			break
		}
	}
	return nil
}

func unionOfSets(sets [][]Expr) []Expr {
	var out []Expr
	seen := map[string]bool{}
	for _, s := range sets {
		for _, e := range s {
			k := FormatExpr(e)
			if !seen[k] {
				seen[k] = true
				out = append(out, e)
			}
		}
	}
	return out
}

func (p *parser) parseParenExprList() ([]Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.accept(",") {
			break
		}
	}
	return out, p.expect(")")
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form: ident '.' '*'
	if p.cur().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
		name := strings.ToLower(p.cur().Text)
		p.pos += 3
		return SelectItem{TableStar: name}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.cur().Kind == TokIdent {
		item.Alias = strings.ToLower(p.cur().Text)
		p.pos++
	}
	return item, nil
}

// ---- FROM clause ----

func (p *parser) parseTableRefList() (TableRef, error) {
	left, err := p.parseJoinChain()
	if err != nil {
		return nil, err
	}
	for p.accept(",") {
		right, err := p.parseJoinChain()
		if err != nil {
			return nil, err
		}
		left = &Join{Kind: JoinCross, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseJoinChain() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		kind, ok := p.peekJoin()
		if !ok {
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &Join{Kind: kind, Left: left, Right: right}
		if p.accept("ON") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = cond
		} else if kind != JoinCross {
			return nil, p.errf("expected ON for %s JOIN", kind)
		}
		left = j
	}
}

// peekJoin consumes the join tokens if present, returning the join kind.
func (p *parser) peekJoin() (JoinKind, bool) {
	switch {
	case p.accept("JOIN"):
		return JoinInner, true
	case p.accept("INNER"):
		p.expect("JOIN")
		return JoinInner, true
	case p.accept("CROSS"):
		p.expect("JOIN")
		return JoinCross, true
	case p.accept("LEFT"):
		if p.accept("SEMI") {
			p.expect("JOIN")
			return JoinSemi, true
		}
		if p.accept("ANTI") {
			p.expect("JOIN")
			return JoinAnti, true
		}
		p.accept("OUTER")
		p.expect("JOIN")
		return JoinLeft, true
	case p.accept("RIGHT"):
		p.accept("OUTER")
		p.expect("JOIN")
		return JoinRight, true
	case p.accept("FULL"):
		p.accept("OUTER")
		p.expect("JOIN")
		return JoinFull, true
	}
	return 0, false
}

func (p *parser) parseTablePrimary() (TableRef, error) {
	if p.accept("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		alias := ""
		if p.accept("AS") {
			a, err := p.ident()
			if err != nil {
				return nil, err
			}
			alias = a
		} else if p.cur().Kind == TokIdent {
			alias = strings.ToLower(p.cur().Text)
			p.pos++
		}
		return &SubqueryRef{Select: sub, Alias: alias}, nil
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if p.accept("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		tn.Alias = a
	} else if p.cur().Kind == TokIdent {
		tn.Alias = strings.ToLower(p.cur().Text)
		p.pos++
	}
	return tn, nil
}

func (p *parser) parseTableName() (*TableName, error) {
	first, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.accept(".") {
		second, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &TableName{DB: first, Name: second}, nil
	}
	return &TableName{Name: first}, nil
}

// ---- Expressions ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atAny("=", "==", "<>", "!=", "<", "<=", ">", ">="):
			op := p.cur().Text
			if op == "==" {
				op = "="
			}
			if op == "!=" {
				op = "<>"
			}
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinExpr{Op: op, L: left, R: right}
		case p.at("IS"):
			p.pos++
			not := p.accept("NOT")
			if err := p.expect("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{E: left, Not: not}
		case p.at("BETWEEN"):
			p.pos++
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expect("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BetweenExpr{E: left, Lo: lo, Hi: hi}
		case p.at("IN"):
			p.pos++
			in, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = in
		case p.at("LIKE"):
			p.pos++
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &LikeExpr{E: left, Pattern: pat}
		case p.at("NOT"):
			// e NOT IN / NOT BETWEEN / NOT LIKE
			save := p.pos
			p.pos++
			switch {
			case p.accept("IN"):
				in, err := p.parseInTail(left, true)
				if err != nil {
					return nil, err
				}
				left = in
			case p.accept("BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expect("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BetweenExpr{E: left, Lo: lo, Hi: hi, Not: true}
			case p.accept("LIKE"):
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &LikeExpr{E: left, Pattern: pat, Not: true}
			default:
				p.pos = save
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseInTail(left Expr, not bool) (Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if p.at("SELECT") || p.at("WITH") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: left, Sub: sub, Not: not}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &InExpr{E: left, List: list, Not: not}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.atAny("+", "-", "||") {
		op := p.cur().Text
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atAny("*", "/", "%") {
		op := p.cur().Text
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Lit); ok && !lit.Val.Null {
			switch lit.Val.K {
			case types.Int64, types.Int32:
				return &Lit{Val: types.NewBigint(-lit.Val.I)}, nil
			case types.Float64:
				return &Lit{Val: types.NewDouble(-lit.Val.F)}, nil
			case types.Decimal:
				return &Lit{Val: types.NewDecimal(-lit.Val.I, lit.Val.DecimalScale())}, nil
			}
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	p.accept("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		return numberLit(t.Text)
	case t.Kind == TokString:
		p.pos++
		return &Lit{Val: types.NewString(t.Text)}, nil
	case p.accept("TRUE"):
		return &Lit{Val: types.NewBool(true)}, nil
	case p.accept("FALSE"):
		return &Lit{Val: types.NewBool(false)}, nil
	case p.accept("NULL"):
		return &Lit{Val: types.NullOf(types.Unknown)}, nil
	case p.at("INTERVAL"):
		return p.parseInterval()
	case p.at("CAST"):
		return p.parseCast()
	case p.at("EXTRACT"):
		return p.parseExtract()
	case p.at("CASE"):
		return p.parseCase()
	case p.at("EXISTS"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub}, nil
	case p.accept("("):
		if p.at("SELECT") || p.at("WITH") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Sub: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case t.Kind == TokIdent || t.Kind == TokKeyword:
		return p.parseIdentOrCall()
	}
	return nil, p.errf("unexpected token %q in expression", t.Text)
}

func numberLit(text string) (Expr, error) {
	if strings.ContainsAny(text, "eE") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", text)
		}
		return &Lit{Val: types.NewDouble(f)}, nil
	}
	if i := strings.IndexByte(text, '.'); i >= 0 {
		scale := len(text) - i - 1
		d, err := types.ParseDecimal(text, scale)
		if err != nil {
			return nil, err
		}
		return &Lit{Val: d}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		f, ferr := strconv.ParseFloat(text, 64)
		if ferr != nil {
			return nil, fmt.Errorf("sql: bad number %q", text)
		}
		return &Lit{Val: types.NewDouble(f)}, nil
	}
	return &Lit{Val: types.NewBigint(v)}, nil
}

func (p *parser) parseInterval() (Expr, error) {
	p.pos++ // INTERVAL
	val, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	unit, err := p.ident()
	if err != nil {
		return nil, err
	}
	unit = strings.TrimSuffix(strings.ToUpper(unit), "S")
	switch unit {
	case "DAY", "MONTH", "YEAR", "HOUR", "MINUTE", "SECOND":
	default:
		return nil, p.errf("unknown interval unit %q", unit)
	}
	return &IntervalExpr{Value: val, Unit: unit}, nil
}

func (p *parser) parseCast() (Expr, error) {
	p.pos++ // CAST
	if err := p.expect("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect("AS"); err != nil {
		return nil, err
	}
	tt, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	return &CastExpr{E: e, Type: tt}, p.expect(")")
}

// parseTypeName reads a type like "decimal(7,2)" or "varchar(20)" or "int".
func (p *parser) parseTypeName() (types.T, error) {
	name, err := p.ident()
	if err != nil {
		return types.TUnknown, err
	}
	full := name
	if p.accept("(") {
		full += "("
		for !p.at(")") {
			full += p.cur().Text
			p.pos++
		}
		full += ")"
		p.pos++
	}
	return types.ParseType(full)
}

func (p *parser) parseExtract() (Expr, error) {
	p.pos++ // EXTRACT
	if err := p.expect("("); err != nil {
		return nil, err
	}
	field, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExtractExpr{Field: field, From: e}, p.expect(")")
}

func (p *parser) parseCase() (Expr, error) {
	p.pos++ // CASE
	ce := &CaseExpr{}
	if !p.at("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.accept("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, When{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.accept("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	return ce, p.expect("END")
}

func (p *parser) parseIdentOrCall() (Expr, error) {
	name := strings.ToLower(p.cur().Text)
	p.pos++
	if p.accept(".") {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Ident{Qualifier: name, Name: col}, nil
	}
	if !p.at("(") {
		return &Ident{Name: name}, nil
	}
	p.pos++ // (
	call := &Call{Name: name}
	if p.accept("*") {
		call.Star = true
	} else if !p.at(")") {
		if p.accept("DISTINCT") {
			call.Distinct = true
		}
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.accept("OVER") {
		spec, err := p.parseWindowSpec()
		if err != nil {
			return nil, err
		}
		call.Over = spec
	}
	return call, nil
}

func (p *parser) parseWindowSpec() (*WindowSpec, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	spec := &WindowSpec{}
	if p.accept("PARTITION") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			spec.PartitionBy = append(spec.PartitionBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		items, err := p.parseOrderItems()
		if err != nil {
			return nil, err
		}
		spec.OrderBy = items
	}
	// Accept and ignore a frame clause: ROWS|RANGE BETWEEN ... AND ... .
	if p.accept("ROWS") || p.accept("RANGE") {
		depth := 0
		for !p.atEOF() {
			if p.at("(") {
				depth++
			}
			if p.at(")") {
				if depth == 0 {
					break
				}
				depth--
			}
			p.pos++
		}
	}
	return spec, p.expect(")")
}
