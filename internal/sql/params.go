package sql

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Parameterize returns a copy of sel with every hoistable literal replaced
// by a Param node, the hoisted literal values in parameter order, and a
// normalized digest over the parameterized form. Two queries that differ
// only in literal values share a digest (and therefore a cached plan and a
// workload-management history entry); queries that differ in shape, in
// literal *types*, or in positional GROUP BY / ORDER BY ordinals do not.
//
// Literals that act as ordinals rather than values — a bare integer as a
// GROUP BY item, an ORDER BY key, or a window PARTITION BY item — are kept
// in place: hoisting them would change which column the query refers to.
// The input statement is never mutated.
func Parameterize(sel *SelectStmt) (*SelectStmt, []types.Datum, string) {
	pz := &paramizer{}
	norm := pz.copySelect(sel)
	var b strings.Builder
	digestSelect(&b, norm)
	return norm, pz.args, b.String()
}

// ParamType returns the declared type of a hoisted literal — the same
// typing rule the analyzer applies to the literal itself, so binding a
// value of this type reproduces the original plan types exactly.
func ParamType(d types.Datum) types.T {
	if d.K == types.Decimal {
		return types.TDecimal(18, d.DecimalScale())
	}
	return types.T{Kind: d.K}
}

type paramizer struct {
	args []types.Datum
}

// hoist replaces a literal with the next parameter.
func (p *paramizer) hoist(l *Lit) Expr {
	ord := len(p.args)
	p.args = append(p.args, l.Val)
	return &Param{Ord: ord, T: ParamType(l.Val)}
}

func (p *paramizer) copySelect(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	out := &SelectStmt{Limit: s.Limit, Offset: s.Offset}
	for _, cte := range s.With {
		out.With = append(out.With, CTE{Name: cte.Name, Select: p.copySelect(cte.Select)})
	}
	out.Body = p.copyBody(s.Body)
	out.OrderBy = p.copyOrderItems(s.OrderBy)
	return out
}

func (p *paramizer) copyBody(q QueryExpr) QueryExpr {
	switch b := q.(type) {
	case *SetOp:
		return &SetOp{Kind: b.Kind, All: b.All, Left: p.copyBody(b.Left), Right: p.copyBody(b.Right)}
	case *SelectCore:
		out := &SelectCore{Distinct: b.Distinct}
		for _, it := range b.Items {
			out.Items = append(out.Items, SelectItem{
				Expr: p.copyExpr(it.Expr), Alias: it.Alias, Star: it.Star, TableStar: it.TableStar,
			})
		}
		out.From = p.copyTableRef(b.From)
		out.Where = p.copyExpr(b.Where)
		for _, g := range b.GroupBy {
			out.GroupBy = append(out.GroupBy, p.copyOrdinal(g))
		}
		if b.GroupingSets != nil {
			out.GroupingSets = make([][]Expr, len(b.GroupingSets))
			for i, set := range b.GroupingSets {
				for _, g := range set {
					out.GroupingSets[i] = append(out.GroupingSets[i], p.copyOrdinal(g))
				}
				if b.GroupingSets[i] == nil {
					out.GroupingSets[i] = []Expr{}
				}
			}
		}
		out.Having = p.copyExpr(b.Having)
		return out
	}
	return q
}

// copyOrdinal copies a GROUP BY / ORDER BY / PARTITION BY item: a bare
// literal there is a positional column reference, not a value, and must
// survive parameterization in place.
func (p *paramizer) copyOrdinal(e Expr) Expr {
	if l, ok := e.(*Lit); ok {
		return &Lit{Val: l.Val}
	}
	return p.copyExpr(e)
}

func (p *paramizer) copyOrderItems(items []OrderItem) []OrderItem {
	var out []OrderItem
	for _, it := range items {
		out = append(out, OrderItem{Expr: p.copyOrdinal(it.Expr), Desc: it.Desc, NullsFirst: it.NullsFirst})
	}
	return out
}

func (p *paramizer) copyTableRef(tr TableRef) TableRef {
	switch x := tr.(type) {
	case *TableName:
		cp := *x
		return &cp
	case *Join:
		return &Join{Kind: x.Kind, Left: p.copyTableRef(x.Left), Right: p.copyTableRef(x.Right), On: p.copyExpr(x.On)}
	case *SubqueryRef:
		return &SubqueryRef{Select: p.copySelect(x.Select), Alias: x.Alias}
	}
	return tr
}

func (p *paramizer) copyExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Lit:
		return p.hoist(x)
	case *Ident:
		cp := *x
		return &cp
	case *Param:
		cp := *x
		return &cp
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: p.copyExpr(x.L), R: p.copyExpr(x.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, E: p.copyExpr(x.E)}
	case *Call:
		out := &Call{Name: x.Name, Distinct: x.Distinct, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, p.copyExpr(a))
		}
		if x.Over != nil {
			spec := &WindowSpec{}
			for _, pb := range x.Over.PartitionBy {
				spec.PartitionBy = append(spec.PartitionBy, p.copyOrdinal(pb))
			}
			spec.OrderBy = p.copyOrderItems(x.Over.OrderBy)
			out.Over = spec
		}
		return out
	case *CaseExpr:
		out := &CaseExpr{Operand: p.copyExpr(x.Operand), Else: p.copyExpr(x.Else)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, When{Cond: p.copyExpr(w.Cond), Then: p.copyExpr(w.Then)})
		}
		return out
	case *CastExpr:
		return &CastExpr{E: p.copyExpr(x.E), Type: x.Type}
	case *InExpr:
		out := &InExpr{E: p.copyExpr(x.E), Not: x.Not, Sub: p.copySelect(x.Sub)}
		for _, v := range x.List {
			out.List = append(out.List, p.copyExpr(v))
		}
		return out
	case *ExistsExpr:
		return &ExistsExpr{Sub: p.copySelect(x.Sub), Not: x.Not}
	case *SubqueryExpr:
		return &SubqueryExpr{Sub: p.copySelect(x.Sub)}
	case *BetweenExpr:
		return &BetweenExpr{E: p.copyExpr(x.E), Lo: p.copyExpr(x.Lo), Hi: p.copyExpr(x.Hi), Not: x.Not}
	case *LikeExpr:
		return &LikeExpr{E: p.copyExpr(x.E), Pattern: p.copyExpr(x.Pattern), Not: x.Not}
	case *IsNullExpr:
		return &IsNullExpr{E: p.copyExpr(x.E), Not: x.Not}
	case *IntervalExpr:
		return &IntervalExpr{Value: p.copyExpr(x.Value), Unit: x.Unit}
	case *ExtractExpr:
		return &ExtractExpr{Field: x.Field, From: p.copyExpr(x.From)}
	}
	return e
}

// ---- Normalized digest ----
//
// The digest is a complete canonical rendering of the parameterized
// statement. Unlike FormatExpr (which collapses subqueries and window
// specs for display), every shape-bearing detail is included: two
// statements share a digest exactly when they produce the same plan for
// every parameter binding.

func digestSelect(b *strings.Builder, s *SelectStmt) {
	if s == nil {
		b.WriteString("<nil>")
		return
	}
	if len(s.With) > 0 {
		b.WriteString("with ")
		for i, cte := range s.With {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strings.ToLower(cte.Name))
			b.WriteString(" as (")
			digestSelect(b, cte.Select)
			b.WriteByte(')')
		}
		b.WriteByte(' ')
	}
	digestBody(b, s.Body)
	if len(s.OrderBy) > 0 {
		b.WriteString(" order by ")
		digestOrderItems(b, s.OrderBy)
	}
	if s.Limit >= 0 {
		fmt.Fprintf(b, " limit %d", s.Limit)
		if s.Offset > 0 {
			fmt.Fprintf(b, " offset %d", s.Offset)
		}
	}
}

func digestBody(b *strings.Builder, q QueryExpr) {
	switch x := q.(type) {
	case *SetOp:
		b.WriteByte('(')
		digestBody(b, x.Left)
		fmt.Fprintf(b, ") %s", strings.ToLower(x.Kind.String()))
		if x.All {
			b.WriteString(" all")
		}
		b.WriteString(" (")
		digestBody(b, x.Right)
		b.WriteByte(')')
	case *SelectCore:
		b.WriteString("select ")
		if x.Distinct {
			b.WriteString("distinct ")
		}
		for i, it := range x.Items {
			if i > 0 {
				b.WriteByte(',')
			}
			switch {
			case it.Star:
				b.WriteByte('*')
			case it.TableStar != "":
				b.WriteString(strings.ToLower(it.TableStar))
				b.WriteString(".*")
			default:
				digestExpr(b, it.Expr)
				if it.Alias != "" {
					b.WriteString(" as ")
					b.WriteString(strings.ToLower(it.Alias))
				}
			}
		}
		if x.From != nil {
			b.WriteString(" from ")
			digestTableRef(b, x.From)
		}
		if x.Where != nil {
			b.WriteString(" where ")
			digestExpr(b, x.Where)
		}
		if len(x.GroupBy) > 0 {
			b.WriteString(" group by ")
			for i, g := range x.GroupBy {
				if i > 0 {
					b.WriteByte(',')
				}
				digestExpr(b, g)
			}
		}
		if x.GroupingSets != nil {
			b.WriteString(" sets(")
			for i, set := range x.GroupingSets {
				if i > 0 {
					b.WriteByte(';')
				}
				for j, g := range set {
					if j > 0 {
						b.WriteByte(',')
					}
					digestExpr(b, g)
				}
			}
			b.WriteByte(')')
		}
		if x.Having != nil {
			b.WriteString(" having ")
			digestExpr(b, x.Having)
		}
	default:
		fmt.Fprintf(b, "<%T>", q)
	}
}

func digestTableRef(b *strings.Builder, tr TableRef) {
	switch x := tr.(type) {
	case *TableName:
		b.WriteString(strings.ToLower(x.Qualified()))
		if x.Alias != "" {
			b.WriteString(" as ")
			b.WriteString(strings.ToLower(x.Alias))
		}
	case *Join:
		b.WriteByte('(')
		digestTableRef(b, x.Left)
		fmt.Fprintf(b, " %s join ", strings.ToLower(x.Kind.String()))
		digestTableRef(b, x.Right)
		if x.On != nil {
			b.WriteString(" on ")
			digestExpr(b, x.On)
		}
		b.WriteByte(')')
	case *SubqueryRef:
		b.WriteByte('(')
		digestSelect(b, x.Select)
		b.WriteByte(')')
		if x.Alias != "" {
			b.WriteString(" as ")
			b.WriteString(strings.ToLower(x.Alias))
		}
	default:
		fmt.Fprintf(b, "<%T>", tr)
	}
}

func digestOrderItems(b *strings.Builder, items []OrderItem) {
	for i, it := range items {
		if i > 0 {
			b.WriteByte(',')
		}
		digestExpr(b, it.Expr)
		if it.Desc {
			b.WriteString(" desc")
		}
		if it.NullsFirst != nil {
			if *it.NullsFirst {
				b.WriteString(" nulls first")
			} else {
				b.WriteString(" nulls last")
			}
		}
	}
}

func digestExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		b.WriteString("<nil>")
	case *Param:
		// The type is part of the digest: WHERE a = 1 and WHERE a = 'x'
		// parameterize to the same text but plan differently.
		fmt.Fprintf(b, "?%d:%s", x.Ord, x.T.String())
	case *Lit:
		// Unhoisted literals (positional ordinals) stay in the digest.
		if x.Val.K == types.String && !x.Val.Null {
			b.WriteByte('\'')
			b.WriteString(x.Val.S)
			b.WriteByte('\'')
		} else {
			b.WriteString(x.Val.String())
		}
	case *Ident:
		b.WriteString(strings.ToLower(x.String()))
	case *BinExpr:
		b.WriteByte('(')
		digestExpr(b, x.L)
		b.WriteString(x.Op)
		digestExpr(b, x.R)
		b.WriteByte(')')
	case *UnaryExpr:
		b.WriteString(x.Op)
		b.WriteByte('(')
		digestExpr(b, x.E)
		b.WriteByte(')')
	case *Call:
		b.WriteString(strings.ToLower(x.Name))
		b.WriteByte('(')
		if x.Star {
			b.WriteByte('*')
		}
		if x.Distinct {
			b.WriteString("distinct ")
		}
		for i, a := range x.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			digestExpr(b, a)
		}
		b.WriteByte(')')
		if x.Over != nil {
			b.WriteString(" over(p:")
			for i, pb := range x.Over.PartitionBy {
				if i > 0 {
					b.WriteByte(',')
				}
				digestExpr(b, pb)
			}
			b.WriteString(" o:")
			digestOrderItems(b, x.Over.OrderBy)
			b.WriteByte(')')
		}
	case *CaseExpr:
		b.WriteString("case")
		if x.Operand != nil {
			b.WriteByte(' ')
			digestExpr(b, x.Operand)
		}
		for _, w := range x.Whens {
			b.WriteString(" when ")
			digestExpr(b, w.Cond)
			b.WriteString(" then ")
			digestExpr(b, w.Then)
		}
		if x.Else != nil {
			b.WriteString(" else ")
			digestExpr(b, x.Else)
		}
		b.WriteString(" end")
	case *CastExpr:
		b.WriteString("cast(")
		digestExpr(b, x.E)
		b.WriteString(" as ")
		b.WriteString(x.Type.String())
		b.WriteByte(')')
	case *InExpr:
		digestExpr(b, x.E)
		if x.Not {
			b.WriteString(" not")
		}
		b.WriteString(" in (")
		if x.Sub != nil {
			digestSelect(b, x.Sub)
		}
		for i, v := range x.List {
			if i > 0 {
				b.WriteByte(',')
			}
			digestExpr(b, v)
		}
		b.WriteByte(')')
	case *ExistsExpr:
		if x.Not {
			b.WriteString("not ")
		}
		b.WriteString("exists(")
		digestSelect(b, x.Sub)
		b.WriteByte(')')
	case *SubqueryExpr:
		b.WriteByte('(')
		digestSelect(b, x.Sub)
		b.WriteByte(')')
	case *BetweenExpr:
		digestExpr(b, x.E)
		if x.Not {
			b.WriteString(" not")
		}
		b.WriteString(" between ")
		digestExpr(b, x.Lo)
		b.WriteString(" and ")
		digestExpr(b, x.Hi)
	case *LikeExpr:
		digestExpr(b, x.E)
		if x.Not {
			b.WriteString(" not")
		}
		b.WriteString(" like ")
		digestExpr(b, x.Pattern)
	case *IsNullExpr:
		digestExpr(b, x.E)
		b.WriteString(" is ")
		if x.Not {
			b.WriteString("not ")
		}
		b.WriteString("null")
	case *IntervalExpr:
		b.WriteString("interval ")
		digestExpr(b, x.Value)
		b.WriteByte(' ')
		b.WriteString(strings.ToLower(x.Unit))
	case *ExtractExpr:
		b.WriteString("extract(")
		b.WriteString(strings.ToLower(x.Field))
		b.WriteString(" from ")
		digestExpr(b, x.From)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}
