// Package sql implements the HiveQL frontend: a lexer, an abstract syntax
// tree, and a recursive-descent parser covering the SQL surface the paper
// exercises (§3.1): SELECT with joins, correlated subqueries, set
// operations, grouping sets, window functions; ACID DML including MERGE and
// Hive multi-insert; DDL with PARTITIONED BY, constraints, materialized
// views; and the workload-management resource plan statements (§5.2).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int
}

var keywords = map[string]bool{}

func init() {
	for _, k := range strings.Fields(`
		SELECT FROM WHERE GROUP BY HAVING ORDER LIMIT OFFSET DISTINCT ALL AS
		JOIN INNER LEFT RIGHT FULL OUTER CROSS SEMI ANTI ON USING
		UNION INTERSECT EXCEPT MINUS WITH
		AND OR NOT IN EXISTS BETWEEN LIKE IS NULL TRUE FALSE
		CASE WHEN THEN ELSE END CAST ASC DESC NULLS FIRST LAST
		INSERT INTO OVERWRITE VALUES UPDATE SET DELETE MERGE MATCHED
		TABLE CREATE DROP ALTER EXTERNAL IF PARTITIONED PARTITION
		STORED TBLPROPERTIES CLUSTERED BUCKETS ROW FORMAT
		PRIMARY FOREIGN KEY REFERENCES UNIQUE CONSTRAINT RELY NOVALIDATE DISABLE
		MATERIALIZED VIEW REBUILD REWRITE ENABLE DATABASE SCHEMA SHOW TABLES DATABASES
		EXPLAIN ANALYZE COMPUTE STATISTICS DESCRIBE USE
		RESOURCE PLAN POOL RULE MOVE KILL TO ADD MAPPING APPLICATION USER DEFAULT ACTIVATE
		PREPARE EXECUTE DEALLOCATE
		INTERVAL EXTRACT OVER ROWS RANGE UNBOUNDED PRECEDING FOLLOWING CURRENT
		GROUPING SETS ROLLUP CUBE
		DAY DAYS MONTH MONTHS YEAR YEARS HOUR MINUTE SECOND
	`) {
		keywords[k] = true
	}
}

// Lex tokenizes a statement. It returns an error for unterminated strings
// or illegal characters.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated comment at %d", i)
			}
			i += end + 4
		case c == '\'':
			var sb strings.Builder
			j := i + 1
			for {
				if j >= n {
					return nil, fmt.Errorf("sql: unterminated string at %d", i)
				}
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				if src[j] == '\\' && j+1 < n {
					switch src[j+1] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\'':
						sb.WriteByte('\'')
					case '\\':
						sb.WriteByte('\\')
					default:
						sb.WriteByte(src[j+1])
					}
					j += 2
					continue
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: i})
			i = j + 1
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated string at %d", i)
			}
			toks = append(toks, Token{Kind: TokString, Text: src[i+1 : j], Pos: i})
			i = j + 1
		case c == '`':
			j := i + 1
			for j < n && src[j] != '`' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated identifier at %d", i)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[i+1 : j], Pos: i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			seenDot, seenExp := false, false
			for j < n {
				d := src[j]
				if d >= '0' && d <= '9' {
					j++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && j > i {
					seenExp = true
					j++
					if j < n && (src[j] == '+' || src[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokNumber, Text: src[i:j], Pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: i})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: i})
			}
			i = j
		default:
			for _, op := range []string{"<=", ">=", "<>", "!=", "==", "||"} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, Token{Kind: TokOp, Text: op, Pos: i})
					i += 2
					goto next
				}
			}
			if strings.ContainsRune("+-*/%(),.;=<>", rune(c)) {
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: i})
				i++
				goto next
			}
			return nil, fmt.Errorf("sql: illegal character %q at %d", c, i)
		next:
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
