package sql

import (
	"testing"

	"repro/internal/types"
)

func digestOf(t *testing.T, src string) (string, []types.Datum) {
	t.Helper()
	_, args, d := Parameterize(mustSelect(t, src))
	return d, args
}

func TestParameterizeSharesDigestAcrossLiterals(t *testing.T) {
	d1, a1 := digestOf(t, "SELECT a FROM t WHERE b = 1 AND c = 'x'")
	d2, a2 := digestOf(t, "SELECT a FROM t WHERE b = 42 AND c = 'hello'")
	if d1 != d2 {
		t.Fatalf("digests differ for same shape:\n%s\n%s", d1, d2)
	}
	if len(a1) != 2 || len(a2) != 2 {
		t.Fatalf("want 2 params each, got %d and %d", len(a1), len(a2))
	}
	if a2[0].I != 42 || a2[1].S != "hello" {
		t.Fatalf("args not in hoist order: %+v", a2)
	}
	if a1[0].I != 1 || a1[1].S != "x" {
		t.Fatalf("args not in hoist order: %+v", a1)
	}
}

func TestParameterizeTypeChangesDigest(t *testing.T) {
	d1, _ := digestOf(t, "SELECT a FROM t WHERE b = 1")
	d2, _ := digestOf(t, "SELECT a FROM t WHERE b = 'one'")
	if d1 == d2 {
		t.Fatalf("int vs string literal should yield distinct digests: %s", d1)
	}
	d3, _ := digestOf(t, "SELECT a FROM t WHERE b = 1.5")
	if d1 == d3 {
		t.Fatalf("int vs decimal literal should yield distinct digests: %s", d1)
	}
}

func TestParameterizeShapeChangesDigest(t *testing.T) {
	d1, _ := digestOf(t, "SELECT a FROM t WHERE b = 1")
	d2, _ := digestOf(t, "SELECT a FROM t WHERE b > 1")
	d3, _ := digestOf(t, "SELECT a FROM u WHERE b = 1")
	if d1 == d2 || d1 == d3 {
		t.Fatalf("different shapes must not collide: %s vs %s vs %s", d1, d2, d3)
	}
}

func TestParameterizeKeepsPositionalOrdinals(t *testing.T) {
	// GROUP BY 1 / ORDER BY 1 are positional column references; hoisting
	// them would change query meaning.
	norm, args, _ := Parameterize(mustSelect(t,
		"SELECT a, count(*) FROM t WHERE b = 7 GROUP BY 1 ORDER BY 2"))
	if len(args) != 1 || args[0].I != 7 {
		t.Fatalf("only the WHERE literal should hoist, got %+v", args)
	}
	core := norm.Body.(*SelectCore)
	if _, ok := core.GroupBy[0].(*Lit); !ok {
		t.Fatalf("GROUP BY ordinal was hoisted: %T", core.GroupBy[0])
	}
	if _, ok := norm.OrderBy[0].Expr.(*Lit); !ok {
		t.Fatalf("ORDER BY ordinal was hoisted: %T", norm.OrderBy[0].Expr)
	}

	// But literals *nested* under an ORDER BY expression are values.
	_, args2, _ := Parameterize(mustSelect(t, "SELECT a FROM t ORDER BY a + 3"))
	if len(args2) != 1 || args2[0].I != 3 {
		t.Fatalf("nested ORDER BY literal should hoist, got %+v", args2)
	}
}

func TestParameterizeWindowOrdinals(t *testing.T) {
	norm, args, _ := Parameterize(mustSelect(t,
		"SELECT sum(v) OVER(PARTITION BY 1 ORDER BY 2) FROM t WHERE k = 9"))
	if len(args) != 1 || args[0].I != 9 {
		t.Fatalf("only the WHERE literal should hoist, got %+v", args)
	}
	call := norm.Body.(*SelectCore).Items[0].Expr.(*Call)
	if _, ok := call.Over.PartitionBy[0].(*Lit); !ok {
		t.Fatalf("window PARTITION BY ordinal was hoisted: %T", call.Over.PartitionBy[0])
	}
	if _, ok := call.Over.OrderBy[0].Expr.(*Lit); !ok {
		t.Fatalf("window ORDER BY ordinal was hoisted: %T", call.Over.OrderBy[0].Expr)
	}
}

func TestParameterizeDigestSeesSubqueryContent(t *testing.T) {
	// FormatExpr collapses subqueries to "<subquery>"; the digest must not.
	d1, _ := digestOf(t, "SELECT a FROM t WHERE b IN (SELECT x FROM u)")
	d2, _ := digestOf(t, "SELECT a FROM t WHERE b IN (SELECT y FROM v)")
	if d1 == d2 {
		t.Fatalf("subquery content must be part of the digest: %s", d1)
	}
}

func TestParameterizeDigestSeesWindowSpec(t *testing.T) {
	d1, _ := digestOf(t, "SELECT sum(v) OVER(PARTITION BY a) FROM t")
	d2, _ := digestOf(t, "SELECT sum(v) OVER(PARTITION BY b) FROM t")
	if d1 == d2 {
		t.Fatalf("window spec must be part of the digest: %s", d1)
	}
}

func TestParameterizeHoistsThroughClauses(t *testing.T) {
	_, args, _ := Parameterize(mustSelect(t,
		"SELECT a, b + 2 FROM t WHERE c = 1 GROUP BY a, b HAVING count(*) > 3 LIMIT 10"))
	// 2 (projection), 1 (where), 3 (having) hoist in statement order;
	// LIMIT is structural and stays in the digest.
	if len(args) != 3 {
		t.Fatalf("want 3 hoisted params, got %d: %+v", len(args), args)
	}
	if args[0].I != 2 || args[1].I != 1 || args[2].I != 3 {
		t.Fatalf("hoist order wrong: %+v", args)
	}
}

func TestParameterizeLimitInDigest(t *testing.T) {
	d1, _ := digestOf(t, "SELECT a FROM t LIMIT 10")
	d2, _ := digestOf(t, "SELECT a FROM t LIMIT 20")
	if d1 == d2 {
		t.Fatalf("LIMIT must stay structural in the digest")
	}
}

func TestParameterizeDoesNotMutateInput(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE b = 5")
	before := sel.Body.(*SelectCore).Where.(*BinExpr).R
	if _, ok := before.(*Lit); !ok {
		t.Fatalf("setup: want *Lit, got %T", before)
	}
	Parameterize(sel)
	after := sel.Body.(*SelectCore).Where.(*BinExpr).R
	if _, ok := after.(*Lit); !ok {
		t.Fatalf("input mutated: literal became %T", after)
	}
}

func TestParsePrepareExecuteDeallocate(t *testing.T) {
	st, err := Parse("PREPARE q1 AS SELECT a FROM t WHERE b = 1")
	if err != nil {
		t.Fatalf("PREPARE: %v", err)
	}
	prep, ok := st.(*PrepareStmt)
	if !ok || prep.Name != "q1" || prep.Select == nil {
		t.Fatalf("PREPARE parse: %#v", st)
	}

	st, err = Parse("EXECUTE q1 (42, 'x')")
	if err != nil {
		t.Fatalf("EXECUTE: %v", err)
	}
	ex, ok := st.(*ExecuteStmt)
	if !ok || ex.Name != "q1" || len(ex.Args) != 2 {
		t.Fatalf("EXECUTE parse: %#v", st)
	}

	st, err = Parse("EXECUTE q1")
	if err != nil {
		t.Fatalf("EXECUTE no-args: %v", err)
	}
	if ex := st.(*ExecuteStmt); len(ex.Args) != 0 {
		t.Fatalf("EXECUTE no-args parse: %#v", ex)
	}

	st, err = Parse("DEALLOCATE PREPARE q1")
	if err != nil {
		t.Fatalf("DEALLOCATE: %v", err)
	}
	if d := st.(*DeallocateStmt); d.Name != "q1" {
		t.Fatalf("DEALLOCATE parse: %#v", d)
	}

	if _, err := Parse("PREPARE p AS INSERT INTO t VALUES (1)"); err == nil {
		t.Fatalf("PREPARE of non-SELECT should error")
	}
}
