package sql

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface{ expr() }

// ---- Query statements ----

// CTE is one WITH-clause entry.
type CTE struct {
	Name   string
	Select *SelectStmt
}

// SelectStmt is a full query: optional CTEs, a set-operation body, and
// outer ORDER BY / LIMIT [OFFSET].
type SelectStmt struct {
	With    []CTE
	Body    QueryExpr
	OrderBy []OrderItem
	Limit   int64 // -1 when absent
	Offset  int64 // 0 when absent; only meaningful with Limit >= 0
}

func (*SelectStmt) stmt() {}

// QueryExpr is either a *SelectCore or a *SetOp tree.
type QueryExpr interface{ queryExpr() }

// SetOpKind enumerates UNION / INTERSECT / EXCEPT.
type SetOpKind uint8

// Set operation kinds.
const (
	SetUnion SetOpKind = iota
	SetIntersect
	SetExcept
)

func (k SetOpKind) String() string {
	switch k {
	case SetIntersect:
		return "INTERSECT"
	case SetExcept:
		return "EXCEPT"
	}
	return "UNION"
}

// SetOp combines two query expressions.
type SetOp struct {
	Kind  SetOpKind
	All   bool
	Left  QueryExpr
	Right QueryExpr
}

func (*SetOp) queryExpr() {}

// SelectItem is one projection item.
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool   // SELECT *
	TableStar string // SELECT t.*
}

// SelectCore is a single SELECT block.
type SelectCore struct {
	Distinct     bool
	Items        []SelectItem
	From         TableRef // nil for "SELECT <exprs>"
	Where        Expr
	GroupBy      []Expr
	GroupingSets [][]Expr // non-nil when GROUPING SETS/ROLLUP/CUBE used
	Having       Expr
}

func (*SelectCore) queryExpr() {}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr       Expr
	Desc       bool
	NullsFirst *bool // nil = default (NULLS FIRST asc / LAST desc)
}

// ---- Table references ----

// TableRef is a FROM-clause item.
type TableRef interface{ tableRef() }

// TableName references a catalog table, optionally aliased.
type TableName struct {
	DB    string // empty = current database
	Name  string
	Alias string
}

func (*TableName) tableRef() {}

// Qualified renders db.name (db may be empty).
func (t *TableName) Qualified() string {
	if t.DB == "" {
		return t.Name
	}
	return t.DB + "." + t.Name
}

// JoinKind enumerates join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
	JoinSemi
	JoinAnti
)

func (k JoinKind) String() string {
	return [...]string{"INNER", "LEFT", "RIGHT", "FULL", "CROSS", "SEMI", "ANTI"}[k]
}

// Join is a binary join between two table references.
type Join struct {
	Kind  JoinKind
	Left  TableRef
	Right TableRef
	On    Expr
}

func (*Join) tableRef() {}

// SubqueryRef is a derived table in FROM.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) tableRef() {}

// ---- Expressions ----

// Ident is a (possibly qualified) column reference.
type Ident struct {
	Qualifier string
	Name      string
}

func (*Ident) expr() {}

func (id *Ident) String() string {
	if id.Qualifier != "" {
		return id.Qualifier + "." + id.Name
	}
	return id.Name
}

// Lit is a literal constant.
type Lit struct{ Val types.Datum }

func (*Lit) expr() {}

// Param is a bound parameter: position Ord (0-based) in the statement's
// parameter vector. The parser never produces Param nodes — Parameterize
// hoists literals into them so a prepared statement (or the transparent
// plan cache) can bind fresh values at EXECUTE time. T is the type of the
// hoisted literal; bound arguments are cast to it.
type Param struct {
	Ord int
	T   types.T
}

func (*Param) expr() {}

// BinExpr is a binary operation; Op is one of
// + - * / % = <> < <= > >= AND OR ||.
type BinExpr struct {
	Op string
	L  Expr
	R  Expr
}

func (*BinExpr) expr() {}

// UnaryExpr is NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT", "-"
	E  Expr
}

func (*UnaryExpr) expr() {}

// WindowSpec is an OVER clause.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
}

// Call is a function call, possibly aggregate or windowed.
type Call struct {
	Name     string
	Args     []Expr
	Distinct bool
	Star     bool // COUNT(*)
	Over     *WindowSpec
}

func (*Call) expr() {}

// When is one CASE branch.
type When struct {
	Cond Expr
	Then Expr
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr
}

func (*CaseExpr) expr() {}

// CastExpr is CAST(e AS type).
type CastExpr struct {
	E    Expr
	Type types.T
}

func (*CastExpr) expr() {}

// InExpr is "e [NOT] IN (list)" or "e [NOT] IN (subquery)".
type InExpr struct {
	E    Expr
	List []Expr
	Sub  *SelectStmt
	Not  bool
}

func (*InExpr) expr() {}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sub *SelectStmt
	Not bool
}

func (*ExistsExpr) expr() {}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Sub *SelectStmt }

func (*SubqueryExpr) expr() {}

// BetweenExpr is "e [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

func (*BetweenExpr) expr() {}

// LikeExpr is "e [NOT] LIKE pattern".
type LikeExpr struct {
	E, Pattern Expr
	Not        bool
}

func (*LikeExpr) expr() {}

// IsNullExpr is "e IS [NOT] NULL".
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// IntervalExpr is INTERVAL '<n>' unit.
type IntervalExpr struct {
	Value Expr
	Unit  string // DAY, MONTH, YEAR, HOUR, MINUTE, SECOND
}

func (*IntervalExpr) expr() {}

// ExtractExpr is EXTRACT(field FROM e).
type ExtractExpr struct {
	Field string
	From  Expr
}

func (*ExtractExpr) expr() {}

// ---- DML ----

// InsertStmt is INSERT INTO/OVERWRITE ... VALUES | SELECT.
type InsertStmt struct {
	Table     *TableName
	Columns   []string
	Partition map[string]Expr // static partition spec values (nil exprs = dynamic)
	Overwrite bool
	Select    *SelectStmt
	Values    [][]Expr
}

func (*InsertStmt) stmt() {}

// MultiInsertStmt is Hive's "FROM src INSERT INTO a SELECT ... INSERT INTO
// b SELECT ..." which writes multiple tables in one transaction (§3.2).
type MultiInsertStmt struct {
	From    TableRef
	Inserts []*InsertStmt // each Select has From == nil; uses shared From
}

func (*MultiInsertStmt) stmt() {}

// UpdateStmt is UPDATE t SET c = e, ... [WHERE ...].
type UpdateStmt struct {
	Table *TableName
	Set   []Assignment
	Where Expr
}

// Assignment is one SET column = expr.
type Assignment struct {
	Column string
	Value  Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table *TableName
	Where Expr
}

func (*DeleteStmt) stmt() {}

// MergeClause is one WHEN [NOT] MATCHED branch.
type MergeClause struct {
	Matched bool
	And     Expr // optional extra condition
	Delete  bool
	Set     []Assignment // update when Matched && !Delete
	Values  []Expr       // insert values when !Matched
}

// MergeStmt is MERGE INTO target USING source ON cond WHEN ... .
type MergeStmt struct {
	Target *TableName
	Source TableRef
	On     Expr
	When   []MergeClause
}

func (*MergeStmt) stmt() {}

// ---- DDL ----

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    types.T
	NotNull bool
}

// ForeignKeyDef is a table-level FOREIGN KEY constraint.
type ForeignKeyDef struct {
	Cols     []string
	RefTable *TableName
	RefCols  []string
}

// CreateTableStmt is CREATE [EXTERNAL] TABLE.
type CreateTableStmt struct {
	Table       *TableName
	IfNotExists bool
	External    bool
	Cols        []ColumnDef
	PartKeys    []ColumnDef
	PrimaryKey  []string
	ForeignKeys []ForeignKeyDef
	UniqueKeys  [][]string
	StoredBy    string // storage handler class name
	TblProps    map[string]string
	AsSelect    *SelectStmt // CTAS
}

func (*CreateTableStmt) stmt() {}

// CreateMaterializedViewStmt is CREATE MATERIALIZED VIEW ... AS SELECT.
type CreateMaterializedViewStmt struct {
	Name           *TableName
	DisableRewrite bool
	StoredBy       string
	TblProps       map[string]string
	Query          *SelectStmt
	QueryText      string // original SQL of the defining query
}

func (*CreateMaterializedViewStmt) stmt() {}

// AlterMVRebuildStmt is ALTER MATERIALIZED VIEW name REBUILD.
type AlterMVRebuildStmt struct{ Name *TableName }

func (*AlterMVRebuildStmt) stmt() {}

// DropStmt drops a table, view or database.
type DropStmt struct {
	Kind     string // "table", "materialized view", "database"
	Name     *TableName
	IfExists bool
}

func (*DropStmt) stmt() {}

// AlterTableDropPartitionStmt is ALTER TABLE t DROP PARTITION (k=v,...).
type AlterTableDropPartitionStmt struct {
	Table *TableName
	Spec  map[string]Expr
}

func (*AlterTableDropPartitionStmt) stmt() {}

// CreateDatabaseStmt is CREATE DATABASE [IF NOT EXISTS] name.
type CreateDatabaseStmt struct {
	Name        string
	IfNotExists bool
}

func (*CreateDatabaseStmt) stmt() {}

// UseStmt switches the current database.
type UseStmt struct{ DB string }

func (*UseStmt) stmt() {}

// ShowStmt is SHOW TABLES | DATABASES.
type ShowStmt struct{ What string }

func (*ShowStmt) stmt() {}

// ExplainStmt wraps another statement.
type ExplainStmt struct{ Inner Statement }

func (*ExplainStmt) stmt() {}

// SetStmt is SET key = value (session configuration).
type SetStmt struct {
	Key   string
	Value string
}

func (*SetStmt) stmt() {}

// AnalyzeStmt is ANALYZE TABLE t COMPUTE STATISTICS.
type AnalyzeStmt struct{ Table *TableName }

func (*AnalyzeStmt) stmt() {}

// PrepareStmt is PREPARE name AS <select>: the statement's literals are
// hoisted into parameters and the normalized plan is cached, so EXECUTE
// binds values without re-parsing or re-planning (paper §4.3 hot-path
// serving).
type PrepareStmt struct {
	Name   string
	Select *SelectStmt
}

func (*PrepareStmt) stmt() {}

// ExecuteStmt is EXECUTE name [(arg, ...)]; args are literal constants
// bound positionally to the prepared statement's hoisted parameters.
type ExecuteStmt struct {
	Name string
	Args []Expr
}

func (*ExecuteStmt) stmt() {}

// DeallocateStmt is DEALLOCATE [PREPARE] name.
type DeallocateStmt struct{ Name string }

func (*DeallocateStmt) stmt() {}

// ---- Workload management DDL (paper §5.2) ----

// CreateResourcePlanStmt is CREATE RESOURCE PLAN name.
type CreateResourcePlanStmt struct{ Name string }

func (*CreateResourcePlanStmt) stmt() {}

// CreatePoolStmt is CREATE POOL plan.pool WITH alloc_fraction=..,
// query_parallelism=.., memory_fraction=...
type CreatePoolStmt struct {
	Plan             string
	Pool             string
	AllocFraction    float64
	QueryParallelism int
	MemFraction      float64
}

func (*CreatePoolStmt) stmt() {}

// CreateRuleStmt is CREATE RULE name IN plan WHEN metric > n THEN MOVE pool
// | KILL.
type CreateRuleStmt struct {
	Name      string
	Plan      string
	Metric    string
	Threshold int64
	Kill      bool
	MovePool  string
}

func (*CreateRuleStmt) stmt() {}

// AddRuleStmt is ADD RULE name TO pool.
type AddRuleStmt struct {
	Rule string
	Pool string
}

func (*AddRuleStmt) stmt() {}

// CreateMappingStmt is CREATE APPLICATION|USER MAPPING name IN plan TO pool.
type CreateMappingStmt struct {
	Kind string // "application" or "user"
	Name string
	Plan string
	Pool string
}

func (*CreateMappingStmt) stmt() {}

// AlterPlanStmt is ALTER PLAN name SET DEFAULT POOL = pool
// or ALTER RESOURCE PLAN name ENABLE ACTIVATE.
type AlterPlanStmt struct {
	Plan           string
	DefaultPool    string
	EnableActivate bool
}

func (*AlterPlanStmt) stmt() {}

// FormatExpr renders an expression back to SQL-ish text; used for EXPLAIN,
// digests and error messages.
func FormatExpr(e Expr) string {
	var b strings.Builder
	formatExpr(&b, e)
	return b.String()
}

func formatExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		b.WriteString("<nil>")
	case *Ident:
		b.WriteString(x.String())
	case *Param:
		fmt.Fprintf(b, "?%d", x.Ord)
	case *Lit:
		if x.Val.K == types.String && !x.Val.Null {
			b.WriteByte('\'')
			b.WriteString(x.Val.S)
			b.WriteByte('\'')
		} else {
			b.WriteString(x.Val.String())
		}
	case *BinExpr:
		b.WriteByte('(')
		formatExpr(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op)
		b.WriteByte(' ')
		formatExpr(b, x.R)
		b.WriteByte(')')
	case *UnaryExpr:
		b.WriteString(x.Op)
		b.WriteByte(' ')
		formatExpr(b, x.E)
	case *Call:
		b.WriteString(x.Name)
		b.WriteByte('(')
		if x.Star {
			b.WriteByte('*')
		}
		if x.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, a)
		}
		b.WriteByte(')')
		if x.Over != nil {
			b.WriteString(" OVER(...)")
		}
	case *CaseExpr:
		b.WriteString("CASE")
		if x.Operand != nil {
			b.WriteByte(' ')
			formatExpr(b, x.Operand)
		}
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			formatExpr(b, w.Cond)
			b.WriteString(" THEN ")
			formatExpr(b, w.Then)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			formatExpr(b, x.Else)
		}
		b.WriteString(" END")
	case *CastExpr:
		b.WriteString("CAST(")
		formatExpr(b, x.E)
		b.WriteString(" AS ")
		b.WriteString(x.Type.String())
		b.WriteByte(')')
	case *InExpr:
		formatExpr(b, x.E)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		if x.Sub != nil {
			b.WriteString("<subquery>")
		}
		for i, v := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, v)
		}
		b.WriteByte(')')
	case *ExistsExpr:
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS(<subquery>)")
	case *SubqueryExpr:
		b.WriteString("(<subquery>)")
	case *BetweenExpr:
		formatExpr(b, x.E)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		formatExpr(b, x.Lo)
		b.WriteString(" AND ")
		formatExpr(b, x.Hi)
	case *LikeExpr:
		formatExpr(b, x.E)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" LIKE ")
		formatExpr(b, x.Pattern)
	case *IsNullExpr:
		formatExpr(b, x.E)
		b.WriteString(" IS ")
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("NULL")
	case *IntervalExpr:
		b.WriteString("INTERVAL ")
		formatExpr(b, x.Value)
		b.WriteByte(' ')
		b.WriteString(x.Unit)
	case *ExtractExpr:
		b.WriteString("EXTRACT(")
		b.WriteString(x.Field)
		b.WriteString(" FROM ")
		formatExpr(b, x.From)
		b.WriteByte(')')
	default:
		fmtUnknown(b, e)
	}
}

func fmtUnknown(b *strings.Builder, e Expr) {
	b.WriteString("<expr>")
	_ = e
}
