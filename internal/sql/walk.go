package sql

// IsDeterministic reports whether a SELECT avoids nondeterministic
// functions (rand) and runtime constants (current_date,
// current_timestamp); only deterministic queries enter the results cache
// (paper §4.3).
func IsDeterministic(sel *SelectStmt) bool {
	det := true
	var checkExpr func(e Expr)
	var checkSelect func(ss *SelectStmt)
	checkExpr = func(e Expr) {
		if e == nil || !det {
			return
		}
		switch x := e.(type) {
		case *Call:
			switch x.Name {
			case "rand", "current_date", "current_timestamp", "unix_timestamp":
				det = false
				return
			}
			for _, a := range x.Args {
				checkExpr(a)
			}
			if x.Over != nil {
				for _, p := range x.Over.PartitionBy {
					checkExpr(p)
				}
				for _, o := range x.Over.OrderBy {
					checkExpr(o.Expr)
				}
			}
		case *BinExpr:
			checkExpr(x.L)
			checkExpr(x.R)
		case *UnaryExpr:
			checkExpr(x.E)
		case *CaseExpr:
			checkExpr(x.Operand)
			for _, w := range x.Whens {
				checkExpr(w.Cond)
				checkExpr(w.Then)
			}
			checkExpr(x.Else)
		case *CastExpr:
			checkExpr(x.E)
		case *BetweenExpr:
			checkExpr(x.E)
			checkExpr(x.Lo)
			checkExpr(x.Hi)
		case *LikeExpr:
			checkExpr(x.E)
			checkExpr(x.Pattern)
		case *IsNullExpr:
			checkExpr(x.E)
		case *InExpr:
			checkExpr(x.E)
			for _, v := range x.List {
				checkExpr(v)
			}
			if x.Sub != nil {
				checkSelect(x.Sub)
			}
		case *ExistsExpr:
			checkSelect(x.Sub)
		case *SubqueryExpr:
			checkSelect(x.Sub)
		case *IntervalExpr:
			checkExpr(x.Value)
		case *ExtractExpr:
			checkExpr(x.From)
		}
	}
	var checkBody func(q QueryExpr)
	checkBody = func(q QueryExpr) {
		switch b := q.(type) {
		case *SetOp:
			checkBody(b.Left)
			checkBody(b.Right)
		case *SelectCore:
			for _, it := range b.Items {
				checkExpr(it.Expr)
			}
			checkExpr(b.Where)
			checkExpr(b.Having)
			for _, g := range b.GroupBy {
				checkExpr(g)
			}
			checkFrom(b.From, checkSelect)
		}
	}
	checkSelect = func(ss *SelectStmt) {
		if ss == nil || !det {
			return
		}
		for _, cte := range ss.With {
			checkSelect(cte.Select)
		}
		checkBody(ss.Body)
		for _, o := range ss.OrderBy {
			checkExpr(o.Expr)
		}
	}
	checkSelect(sel)
	return det
}

func checkFrom(tr TableRef, checkSelect func(*SelectStmt)) {
	switch x := tr.(type) {
	case *SubqueryRef:
		checkSelect(x.Select)
	case *Join:
		checkFrom(x.Left, checkSelect)
		checkFrom(x.Right, checkSelect)
	}
}
