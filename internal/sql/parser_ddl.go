package sql

import (
	"strconv"
	"strings"
)

// ---- DML ----

// parseInsert parses INSERT INTO/OVERWRITE. When withSource is false the
// SELECT body's FROM clause is omitted (multi-insert branch).
func (p *parser) parseInsert(withSource bool) (*InsertStmt, error) {
	if err := p.expect("INSERT"); err != nil {
		return nil, err
	}
	st := &InsertStmt{}
	switch {
	case p.accept("INTO"):
	case p.accept("OVERWRITE"):
		st.Overwrite = true
	default:
		return nil, p.errf("expected INTO or OVERWRITE")
	}
	p.accept("TABLE")
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	st.Table = tn
	if p.accept("PARTITION") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		st.Partition = map[string]Expr{}
		for {
			k, err := p.ident()
			if err != nil {
				return nil, err
			}
			var v Expr
			if p.accept("=") {
				v, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			st.Partition[k] = v
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if p.at("(") {
		// Could be column list or VALUES-less select; column list only
		// contains identifiers followed by ')' then VALUES|SELECT.
		save := p.pos
		p.pos++
		var cols []string
		ok := true
		for {
			if p.cur().Kind != TokIdent {
				ok = false
				break
			}
			cols = append(cols, strings.ToLower(p.cur().Text))
			p.pos++
			if p.accept(",") {
				continue
			}
			break
		}
		if ok && p.accept(")") && (p.at("VALUES") || p.at("SELECT") || p.at("WITH")) {
			st.Columns = cols
		} else {
			p.pos = save
		}
	}
	switch {
	case p.accept("VALUES"):
		for {
			row, err := p.parseParenExprList()
			if err != nil {
				return nil, err
			}
			st.Values = append(st.Values, row)
			if !p.accept(",") {
				break
			}
		}
	case p.at("SELECT") || p.at("WITH") || p.at("("):
		if withSource {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			st.Select = sel
		} else {
			sel, err := p.parseBodylessSelect()
			if err != nil {
				return nil, err
			}
			st.Select = sel
		}
	default:
		return nil, p.errf("expected VALUES or SELECT in INSERT")
	}
	return st, nil
}

// parseBodylessSelect parses the "SELECT ... [WHERE] [GROUP BY]" branch of a
// multi-insert, which inherits the statement-level FROM.
func (p *parser) parseBodylessSelect() (*SelectStmt, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	if p.accept("DISTINCT") {
		core.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		if err := p.parseGroupBy(core); err != nil {
			return nil, err
		}
	}
	return &SelectStmt{Body: core, Limit: -1}, nil
}

// parseMultiInsert parses "FROM src INSERT ... INSERT ...".
func (p *parser) parseMultiInsert() (Statement, error) {
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRefList()
	if err != nil {
		return nil, err
	}
	st := &MultiInsertStmt{From: from}
	for p.at("INSERT") {
		ins, err := p.parseInsert(false)
		if err != nil {
			return nil, err
		}
		st.Inserts = append(st.Inserts, ins)
	}
	if len(st.Inserts) == 0 {
		return nil, p.errf("multi-insert requires at least one INSERT")
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.pos++ // UPDATE
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: tn}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assignment{Column: col, Value: val})
		if !p.accept(",") {
			break
		}
	}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.pos++ // DELETE
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: tn}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseMerge() (Statement, error) {
	p.pos++ // MERGE
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	target, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if p.accept("AS") {
		a, err := p.ident()
		if err != nil {
			return nil, err
		}
		target.Alias = a
	} else if p.cur().Kind == TokIdent {
		target.Alias = strings.ToLower(p.cur().Text)
		p.pos++
	}
	if err := p.expect("USING"); err != nil {
		return nil, err
	}
	source, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	if err := p.expect("ON"); err != nil {
		return nil, err
	}
	on, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	st := &MergeStmt{Target: target, Source: source, On: on}
	for p.accept("WHEN") {
		cl := MergeClause{Matched: true}
		if p.accept("NOT") {
			cl.Matched = false
		}
		if err := p.expect("MATCHED"); err != nil {
			return nil, err
		}
		if p.accept("AND") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cl.And = cond
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		switch {
		case cl.Matched && p.accept("UPDATE"):
			if err := p.expect("SET"); err != nil {
				return nil, err
			}
			for {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				if err := p.expect("="); err != nil {
					return nil, err
				}
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				cl.Set = append(cl.Set, Assignment{Column: col, Value: val})
				if !p.accept(",") {
					break
				}
			}
		case cl.Matched && p.accept("DELETE"):
			cl.Delete = true
		case !cl.Matched && p.accept("INSERT"):
			if err := p.expect("VALUES"); err != nil {
				return nil, err
			}
			vals, err := p.parseParenExprList()
			if err != nil {
				return nil, err
			}
			cl.Values = vals
		default:
			return nil, p.errf("unsupported MERGE action")
		}
		st.When = append(st.When, cl)
	}
	if len(st.When) == 0 {
		return nil, p.errf("MERGE requires at least one WHEN clause")
	}
	return st, nil
}

// ---- DDL ----

func (p *parser) parseCreate() (Statement, error) {
	p.pos++ // CREATE
	switch {
	case p.at("TABLE") || p.at("EXTERNAL"):
		return p.parseCreateTable()
	case p.at("MATERIALIZED"):
		return p.parseCreateMV()
	case p.accept("DATABASE") || p.accept("SCHEMA"):
		st := &CreateDatabaseStmt{}
		if p.accept("IF") {
			p.expect("NOT")
			p.expect("EXISTS")
			st.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Name = name
		return st, nil
	case p.accept("RESOURCE"):
		if err := p.expect("PLAN"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &CreateResourcePlanStmt{Name: name}, nil
	case p.accept("POOL"):
		return p.parseCreatePool()
	case p.accept("RULE"):
		return p.parseCreateRule()
	case p.at("APPLICATION") || p.at("USER"):
		kind := strings.ToLower(p.cur().Text)
		p.pos++
		if err := p.expect("MAPPING"); err != nil {
			return nil, err
		}
		var name string
		if p.cur().Kind == TokString {
			name = p.cur().Text
			p.pos++
		} else {
			n, err := p.ident()
			if err != nil {
				return nil, err
			}
			name = n
		}
		if err := p.expect("IN"); err != nil {
			return nil, err
		}
		plan, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("TO"); err != nil {
			return nil, err
		}
		pool, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &CreateMappingStmt{Kind: kind, Name: name, Plan: plan, Pool: pool}, nil
	}
	return nil, p.errf("unsupported CREATE %q", p.cur().Text)
}

func (p *parser) parseCreateTable() (Statement, error) {
	st := &CreateTableStmt{TblProps: map[string]string{}}
	if p.accept("EXTERNAL") {
		st.External = true
	}
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	if p.accept("IF") {
		p.expect("NOT")
		p.expect("EXISTS")
		st.IfNotExists = true
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	st.Table = tn
	if p.accept("(") {
		for {
			switch {
			case p.accept("PRIMARY"):
				if err := p.expect("KEY"); err != nil {
					return nil, err
				}
				cols, err := p.parseIdentList()
				if err != nil {
					return nil, err
				}
				st.PrimaryKey = cols
				p.skipConstraintSuffix()
			case p.accept("FOREIGN"):
				if err := p.expect("KEY"); err != nil {
					return nil, err
				}
				cols, err := p.parseIdentList()
				if err != nil {
					return nil, err
				}
				if err := p.expect("REFERENCES"); err != nil {
					return nil, err
				}
				ref, err := p.parseTableName()
				if err != nil {
					return nil, err
				}
				refCols, err := p.parseIdentList()
				if err != nil {
					return nil, err
				}
				st.ForeignKeys = append(st.ForeignKeys, ForeignKeyDef{Cols: cols, RefTable: ref, RefCols: refCols})
				p.skipConstraintSuffix()
			case p.accept("UNIQUE"):
				cols, err := p.parseIdentList()
				if err != nil {
					return nil, err
				}
				st.UniqueKeys = append(st.UniqueKeys, cols)
				p.skipConstraintSuffix()
			case p.accept("CONSTRAINT"):
				if _, err := p.ident(); err != nil { // constraint name
					return nil, err
				}
				continue // loop handles the PRIMARY/FOREIGN/UNIQUE that follows
			default:
				col, err := p.parseColumnDef()
				if err != nil {
					return nil, err
				}
				st.Cols = append(st.Cols, col)
			}
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	for {
		switch {
		case p.accept("PARTITIONED"):
			if err := p.expect("BY"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.parseColumnDef()
				if err != nil {
					return nil, err
				}
				st.PartKeys = append(st.PartKeys, col)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		case p.accept("STORED"):
			if p.accept("BY") {
				if p.cur().Kind != TokString {
					return nil, p.errf("expected storage handler class string")
				}
				st.StoredBy = p.cur().Text
				p.pos++
			} else if p.accept("AS") {
				if _, err := p.ident(); err != nil { // ORC, PARQUET, ... accepted
					return nil, err
				}
			}
		case p.accept("TBLPROPERTIES"):
			props, err := p.parseProps()
			if err != nil {
				return nil, err
			}
			for k, v := range props {
				st.TblProps[k] = v
			}
		case p.accept("AS"):
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			st.AsSelect = sel
		default:
			return st, nil
		}
	}
}

func (p *parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return ColumnDef{}, err
	}
	t, err := p.parseTypeName()
	if err != nil {
		return ColumnDef{}, err
	}
	cd := ColumnDef{Name: name, Type: t}
	if p.accept("NOT") {
		if err := p.expect("NULL"); err != nil {
			return ColumnDef{}, err
		}
		cd.NotNull = true
		p.skipConstraintSuffix()
	}
	return cd, nil
}

func (p *parser) parseIdentList() ([]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.accept(",") {
			break
		}
	}
	return out, p.expect(")")
}

// skipConstraintSuffix consumes optional DISABLE NOVALIDATE RELY markers.
func (p *parser) skipConstraintSuffix() {
	for p.accept("DISABLE") || p.accept("NOVALIDATE") || p.accept("RELY") || p.accept("ENABLE") {
	}
}

func (p *parser) parseProps() (map[string]string, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	props := map[string]string{}
	for {
		if p.cur().Kind != TokString {
			return nil, p.errf("expected property key string")
		}
		k := p.cur().Text
		p.pos++
		if err := p.expect("="); err != nil {
			return nil, err
		}
		if p.cur().Kind != TokString {
			return nil, p.errf("expected property value string")
		}
		props[k] = p.cur().Text
		p.pos++
		if !p.accept(",") {
			break
		}
	}
	return props, p.expect(")")
}

func (p *parser) parseCreateMV() (Statement, error) {
	p.pos++ // MATERIALIZED
	if err := p.expect("VIEW"); err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	st := &CreateMaterializedViewStmt{Name: tn, TblProps: map[string]string{}}
	for {
		switch {
		case p.accept("DISABLE"):
			if err := p.expect("REWRITE"); err != nil {
				return nil, err
			}
			st.DisableRewrite = true
		case p.accept("STORED"):
			if err := p.expect("BY"); err != nil {
				return nil, err
			}
			if p.cur().Kind != TokString {
				return nil, p.errf("expected storage handler class string")
			}
			st.StoredBy = p.cur().Text
			p.pos++
		case p.accept("TBLPROPERTIES"):
			props, err := p.parseProps()
			if err != nil {
				return nil, err
			}
			for k, v := range props {
				st.TblProps[k] = v
			}
		case p.accept("AS"):
			start := p.cur().Pos
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			st.Query = sel
			end := p.cur().Pos
			st.QueryText = strings.TrimSpace(strings.TrimSuffix(p.src[start:min(end, len(p.src))], ";"))
			return st, nil
		default:
			return nil, p.errf("expected AS SELECT in CREATE MATERIALIZED VIEW")
		}
	}
}

func (p *parser) parseAlter() (Statement, error) {
	p.pos++ // ALTER
	switch {
	case p.accept("MATERIALIZED"):
		if err := p.expect("VIEW"); err != nil {
			return nil, err
		}
		tn, err := p.parseTableName()
		if err != nil {
			return nil, err
		}
		if err := p.expect("REBUILD"); err != nil {
			return nil, err
		}
		return &AlterMVRebuildStmt{Name: tn}, nil
	case p.accept("TABLE"):
		tn, err := p.parseTableName()
		if err != nil {
			return nil, err
		}
		if err := p.expect("DROP"); err != nil {
			return nil, err
		}
		if err := p.expect("PARTITION"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		spec := map[string]Expr{}
		for {
			k, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			spec[k] = v
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &AlterTableDropPartitionStmt{Table: tn, Spec: spec}, nil
	case p.accept("PLAN"):
		plan, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("SET"); err != nil {
			return nil, err
		}
		if err := p.expect("DEFAULT"); err != nil {
			return nil, err
		}
		if err := p.expect("POOL"); err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		pool, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &AlterPlanStmt{Plan: plan, DefaultPool: pool}, nil
	case p.accept("RESOURCE"):
		if err := p.expect("PLAN"); err != nil {
			return nil, err
		}
		plan, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("ENABLE"); err != nil {
			return nil, err
		}
		if err := p.expect("ACTIVATE"); err != nil {
			return nil, err
		}
		return &AlterPlanStmt{Plan: plan, EnableActivate: true}, nil
	}
	return nil, p.errf("unsupported ALTER %q", p.cur().Text)
}

func (p *parser) parseDrop() (Statement, error) {
	p.pos++ // DROP
	st := &DropStmt{}
	switch {
	case p.accept("TABLE"):
		st.Kind = "table"
	case p.accept("MATERIALIZED"):
		if err := p.expect("VIEW"); err != nil {
			return nil, err
		}
		st.Kind = "materialized view"
	case p.accept("DATABASE") || p.accept("SCHEMA"):
		st.Kind = "database"
	default:
		return nil, p.errf("unsupported DROP %q", p.cur().Text)
	}
	if p.accept("IF") {
		p.expect("EXISTS")
		st.IfExists = true
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	st.Name = tn
	return st, nil
}

func (p *parser) parseCreatePool() (Statement, error) {
	// CREATE POOL plan.pool WITH alloc_fraction=0.8, query_parallelism=5
	plan, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("."); err != nil {
		return nil, err
	}
	pool, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &CreatePoolStmt{Plan: plan, Pool: pool}
	if err := p.expect("WITH"); err != nil {
		return nil, err
	}
	for {
		key, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		if p.cur().Kind != TokNumber {
			return nil, p.errf("expected number for %s", key)
		}
		val := p.cur().Text
		p.pos++
		switch key {
		case "alloc_fraction":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, p.errf("bad alloc_fraction %q", val)
			}
			st.AllocFraction = f
		case "query_parallelism":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, p.errf("bad query_parallelism %q", val)
			}
			st.QueryParallelism = n
		case "memory_fraction":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, p.errf("bad memory_fraction %q", val)
			}
			st.MemFraction = f
		default:
			return nil, p.errf("unknown pool option %q", key)
		}
		if !p.accept(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseCreateRule() (Statement, error) {
	// CREATE RULE name IN plan WHEN metric > n THEN MOVE pool | KILL
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("IN"); err != nil {
		return nil, err
	}
	plan, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("WHEN"); err != nil {
		return nil, err
	}
	metric, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(">"); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokNumber {
		return nil, p.errf("expected threshold number")
	}
	threshold, err := strconv.ParseInt(p.cur().Text, 10, 64)
	if err != nil {
		return nil, p.errf("bad threshold %q", p.cur().Text)
	}
	p.pos++
	if err := p.expect("THEN"); err != nil {
		return nil, err
	}
	st := &CreateRuleStmt{Name: name, Plan: plan, Metric: metric, Threshold: threshold}
	switch {
	case p.accept("MOVE"):
		pool, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.MovePool = pool
	case p.accept("KILL"):
		st.Kill = true
	default:
		return nil, p.errf("expected MOVE or KILL")
	}
	return st, nil
}

func (p *parser) parseAddRule() (Statement, error) {
	p.pos++ // ADD
	if err := p.expect("RULE"); err != nil {
		return nil, err
	}
	rule, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("TO"); err != nil {
		return nil, err
	}
	pool, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &AddRuleStmt{Rule: rule, Pool: pool}, nil
}

func (p *parser) parseSet() (Statement, error) {
	p.pos++ // SET
	key, err := p.ident()
	if err != nil {
		return nil, err
	}
	for p.accept(".") {
		part, err := p.ident()
		if err != nil {
			return nil, err
		}
		key += "." + part
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	var val strings.Builder
	for !p.atEOF() && !p.at(";") {
		val.WriteString(p.cur().Text)
		p.pos++
	}
	return &SetStmt{Key: key, Value: strings.TrimSpace(val.String())}, nil
}

func (p *parser) parseAnalyze() (Statement, error) {
	p.pos++ // ANALYZE
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	tn, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	if err := p.expect("COMPUTE"); err != nil {
		return nil, err
	}
	if err := p.expect("STATISTICS"); err != nil {
		return nil, err
	}
	return &AnalyzeStmt{Table: tn}, nil
}
