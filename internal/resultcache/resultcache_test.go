package resultcache

import (
	"sync"
	"testing"

	"repro/internal/types"
)

func row(v int64) []types.Datum { return []types.Datum{types.NewBigint(v)} }

func TestHitMissAndInvalidation(t *testing.T) {
	c := New(8)
	snap := Snapshot{"db.t": 5}
	_, _, out := c.Lookup("q1", snap)
	if out != MissFill {
		t.Fatalf("first lookup: %v", out)
	}
	c.Fill("q1", []string{"a"}, [][]types.Datum{row(1)}, snap)
	cols, rows, out := c.Lookup("q1", snap)
	if out != Hit || cols[0] != "a" || rows[0][0].I != 1 {
		t.Fatalf("hit: %v %v %v", cols, rows, out)
	}
	// A different snapshot (after a write) misses.
	_, _, out = c.Lookup("q1", Snapshot{"db.t": 6})
	if out != MissFill {
		t.Fatalf("stale snapshot should miss: %v", out)
	}
	c.Abandon("q1")
}

func TestPendingEntryBlocksThunderingHerd(t *testing.T) {
	c := New(8)
	snap := Snapshot{"db.t": 1}
	if _, _, out := c.Lookup("q", snap); out != MissFill {
		t.Fatal("expected fill ownership")
	}
	var wg sync.WaitGroup
	results := make([]Outcome, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, out := c.Lookup("q", snap)
			results[i] = out
		}(i)
	}
	c.Fill("q", []string{"x"}, [][]types.Datum{row(7)}, snap)
	wg.Wait()
	for i, out := range results {
		// A waiter either blocked on the pending entry (MissWaited) or ran
		// after the fill and saw the fresh entry (Hit); it must never be
		// handed fill ownership while another query is computing.
		if out != MissWaited && out != Hit {
			t.Errorf("waiter %d got %v, want MissWaited or Hit", i, out)
		}
	}
	// Retry after wait is a hit.
	if _, _, out := c.Lookup("q", snap); out != Hit {
		t.Errorf("post-fill lookup: %v", out)
	}
}

func TestAbandonReleasesWaiters(t *testing.T) {
	c := New(8)
	snap := Snapshot{}
	c.Lookup("q", snap) // MissFill: we own it
	done := make(chan Outcome, 1)
	go func() {
		_, _, out := c.Lookup("q", snap)
		done <- out
	}()
	c.Abandon("q")
	// The waiter either blocked on the pending entry (MissWaited) or ran
	// after the abandon and took over the fill (MissFill); both are
	// correct — the essential property is that it does not hang.
	out := <-done
	if out == MissFill {
		c.Abandon("q")
	} else if out != MissWaited {
		t.Errorf("waiter after abandon: %v", out)
	}
}

func TestEvictionBound(t *testing.T) {
	c := New(2)
	for i := 0; i < 5; i++ {
		key := string(rune('a' + i))
		c.Lookup(key, Snapshot{})
		c.Fill(key, nil, nil, Snapshot{})
	}
	hits, misses, _ := c.Stats()
	if misses != 5 || hits != 0 {
		t.Errorf("stats: %d hits %d misses", hits, misses)
	}
}

// TestConcurrentStress exercises the pending-entry protocol from many
// goroutines racing identical and distinct queries with fills, abandons
// and snapshot invalidations. Run with -race.
func TestConcurrentStress(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := string(rune('a' + i%12))
				snap := Snapshot{"t": int64(i % 3)}
				cols, rows, out := c.Lookup(key, snap)
				switch out {
				case Hit:
					if len(cols) != 1 || len(rows) != 1 {
						t.Error("hit returned wrong shape")
						return
					}
				case MissFill:
					if i%7 == 0 {
						c.Abandon(key)
					} else {
						c.Fill(key, []string{"c"}, [][]types.Datum{{types.NewBigint(int64(w))}}, snap)
					}
				case MissWaited:
					// retry next round
				}
			}
		}(w)
	}
	wg.Wait()
}
