package resultcache

import (
	"sync"
	"testing"

	"repro/internal/types"
)

func row(v int64) []types.Datum { return []types.Datum{types.NewBigint(v)} }

func TestHitMissAndInvalidation(t *testing.T) {
	c := New(8)
	snap := Snapshot{"db.t": 5}
	_, _, out := c.Lookup("q1", snap)
	if out != MissFill {
		t.Fatalf("first lookup: %v", out)
	}
	c.Fill("q1", []string{"a"}, [][]types.Datum{row(1)}, snap)
	cols, rows, out := c.Lookup("q1", snap)
	if out != Hit || cols[0] != "a" || rows[0][0].I != 1 {
		t.Fatalf("hit: %v %v %v", cols, rows, out)
	}
	// A different snapshot (after a write) misses.
	snap2 := Snapshot{"db.t": 6}
	_, _, out = c.Lookup("q1", snap2)
	if out != MissFill {
		t.Fatalf("stale snapshot should miss: %v", out)
	}
	c.Abandon("q1", snap2)
}

// TestOldSnapshotStillServed is the multi-version property: a write (new
// snapshot version) must not stop the cache from serving readers whose
// snapshot predates it.
func TestOldSnapshotStillServed(t *testing.T) {
	c := New(8)
	old := Snapshot{"db.t": 5}
	niu := Snapshot{"db.t": 6}
	c.Lookup("q", old)
	c.Fill("q", []string{"a"}, [][]types.Datum{row(1)}, old)
	c.Lookup("q", niu)
	c.Fill("q", []string{"a"}, [][]types.Datum{row(2)}, niu)

	_, rows, out := c.Lookup("q", old)
	if out != Hit || rows[0][0].I != 1 {
		t.Fatalf("old-snapshot reader lost its version: %v %v", rows, out)
	}
	_, rows, out = c.Lookup("q", niu)
	if out != Hit || rows[0][0].I != 2 {
		t.Fatalf("new-snapshot reader: %v %v", rows, out)
	}
}

// TestHitDoesNotAliasCachedRows is the regression test for the cache
// aliasing bug: a Hit used to return the internal rows slice by reference,
// so a downstream mutation (sort, truncation, element replacement)
// poisoned the shared entry for every later session.
func TestHitDoesNotAliasCachedRows(t *testing.T) {
	c := New(8)
	snap := Snapshot{"db.t": 1}
	c.Lookup("q", snap)
	c.Fill("q", []string{"a"}, [][]types.Datum{row(1), row(2)}, snap)

	cols, rows, out := c.Lookup("q", snap)
	if out != Hit {
		t.Fatal("setup: expected hit")
	}
	// Vandalize the returned headers the way a fetch path might.
	rows[0], rows[1] = rows[1], rows[0]
	rows[0] = row(99)
	rows = rows[:1]
	cols[0] = "mangled"
	_ = rows

	cols2, rows2, out := c.Lookup("q", snap)
	if out != Hit {
		t.Fatal("second lookup should hit")
	}
	if cols2[0] != "a" {
		t.Fatalf("cached columns poisoned: %v", cols2)
	}
	if len(rows2) != 2 || rows2[0][0].I != 1 || rows2[1][0].I != 2 {
		t.Fatalf("cached rows poisoned: %v", rows2)
	}
}

// TestNoEvictionOnReplace is the regression test for the eviction-on-replace
// bug: refilling an existing (key, snapshot) does not grow the cache and
// must not evict an unrelated entry. Pre-fix the cache evicted an arbitrary
// map entry whenever it was at capacity, even on replacement.
func TestNoEvictionOnReplace(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		c := New(2)
		snap := Snapshot{"t": 1}
		c.Lookup("a", snap)
		c.Fill("a", []string{"x"}, [][]types.Datum{row(1)}, snap)
		c.Lookup("b", snap)
		c.Fill("b", []string{"x"}, [][]types.Datum{row(2)}, snap)
		// Replace "a" in place; cache is at capacity but does not grow.
		c.Fill("a", []string{"x"}, [][]types.Datum{row(10)}, snap)
		if _, _, out := c.Lookup("b", snap); out != Hit {
			t.Fatalf("trial %d: replacing %q evicted unrelated %q", trial, "a", "b")
		}
		if _, rows, out := c.Lookup("a", snap); out != Hit || rows[0][0].I != 10 {
			t.Fatalf("trial %d: replacement not visible: %v", trial, out)
		}
	}
}

// TestEvictionIsLRU: with the cache full, filling a new key evicts the
// least-recently-used entry, not an arbitrary one.
func TestEvictionIsLRU(t *testing.T) {
	c := New(2)
	snap := Snapshot{"t": 1}
	for _, k := range []string{"a", "b"} {
		c.Lookup(k, snap)
		c.Fill(k, []string{"x"}, [][]types.Datum{row(1)}, snap)
	}
	// Touch "a" so "b" is least recently used.
	if _, _, out := c.Lookup("a", snap); out != Hit {
		t.Fatal("setup: a should hit")
	}
	c.Lookup("c", snap)
	c.Fill("c", []string{"x"}, [][]types.Datum{row(3)}, snap)

	if _, _, out := c.Lookup("a", snap); out != Hit {
		t.Fatal("LRU eviction removed recently-used entry a")
	}
	if c.Len() != 2 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
	_, _, out := c.Lookup("b", snap)
	if out == Hit {
		t.Fatal("expected b (least recently used) to be evicted")
	}
	if out == MissFill {
		c.Abandon("b", snap)
	}
}

func TestPendingEntryBlocksThunderingHerd(t *testing.T) {
	c := New(8)
	snap := Snapshot{"db.t": 1}
	if _, _, out := c.Lookup("q", snap); out != MissFill {
		t.Fatal("expected fill ownership")
	}
	var wg sync.WaitGroup
	results := make([]Outcome, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, out := c.Lookup("q", snap)
			results[i] = out
		}(i)
	}
	c.Fill("q", []string{"x"}, [][]types.Datum{row(7)}, snap)
	wg.Wait()
	for i, out := range results {
		// A waiter either blocked on the pending entry (MissWaited) or ran
		// after the fill and saw the fresh entry (Hit); it must never be
		// handed fill ownership while another query is computing.
		if out != MissWaited && out != Hit {
			t.Errorf("waiter %d got %v, want MissWaited or Hit", i, out)
		}
	}
	// Retry after wait is a hit.
	if _, _, out := c.Lookup("q", snap); out != Hit {
		t.Errorf("post-fill lookup: %v", out)
	}
}

// TestPendingPerSnapshot: fills at distinct snapshots do not serialize on
// one pending entry — a reader at a newer snapshot is not blocked by a
// fill in progress at an older one.
func TestPendingPerSnapshot(t *testing.T) {
	c := New(8)
	old := Snapshot{"t": 1}
	niu := Snapshot{"t": 2}
	if _, _, out := c.Lookup("q", old); out != MissFill {
		t.Fatal("expected fill ownership at old snapshot")
	}
	// A newer-snapshot reader must get its own fill, not wait.
	if _, _, out := c.Lookup("q", niu); out != MissFill {
		t.Fatalf("newer snapshot should own its own fill, got %v", out)
	}
	c.Fill("q", []string{"x"}, [][]types.Datum{row(1)}, old)
	c.Fill("q", []string{"x"}, [][]types.Datum{row(2)}, niu)
}

func TestAbandonReleasesWaiters(t *testing.T) {
	c := New(8)
	snap := Snapshot{}
	c.Lookup("q", snap) // MissFill: we own it
	done := make(chan Outcome, 1)
	go func() {
		_, _, out := c.Lookup("q", snap)
		done <- out
	}()
	c.Abandon("q", snap)
	// The waiter either blocked on the pending entry (MissWaited) or ran
	// after the abandon and took over the fill (MissFill); both are
	// correct — the essential property is that it does not hang.
	out := <-done
	if out == MissFill {
		c.Abandon("q", snap)
	} else if out != MissWaited {
		t.Errorf("waiter after abandon: %v", out)
	}
}

func TestEvictionBound(t *testing.T) {
	c := New(2)
	for i := 0; i < 5; i++ {
		key := string(rune('a' + i))
		c.Lookup(key, Snapshot{})
		c.Fill(key, nil, nil, Snapshot{})
	}
	hits, misses, _ := c.Stats()
	if misses != 5 || hits != 0 {
		t.Errorf("stats: %d hits %d misses", hits, misses)
	}
	if c.Len() > 2 {
		t.Errorf("cache exceeded bound: %d entries", c.Len())
	}
}

// TestConcurrentStress exercises the pending-entry protocol from many
// goroutines racing identical and distinct queries with fills, abandons
// and snapshot invalidations. Run with -race.
func TestConcurrentStress(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := string(rune('a' + i%12))
				snap := Snapshot{"t": int64(i % 3)}
				cols, rows, out := c.Lookup(key, snap)
				switch out {
				case Hit:
					if len(cols) != 1 || len(rows) != 1 {
						t.Error("hit returned wrong shape")
						return
					}
				case MissFill:
					if i%7 == 0 {
						c.Abandon(key, snap)
					} else {
						c.Fill(key, []string{"c"}, [][]types.Datum{{types.NewBigint(42)}}, snap)
					}
				case MissWaited:
					// retry next round
				}
			}
		}(w)
	}
	wg.Wait()
}
