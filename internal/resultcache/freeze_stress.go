//go:build stress

package resultcache

import (
	"fmt"
	"hash/fnv"

	"repro/internal/types"
)

// freezeHash fingerprints a cached result so the stress build can detect
// any in-place mutation of shared rows (the cache hands out fresh slice
// headers but shares row data; mutating it would poison every session).
func freezeHash(columns []string, rows [][]types.Datum) uint64 {
	h := fnv.New64a()
	for _, c := range columns {
		h.Write([]byte(c))
		h.Write([]byte{0})
	}
	for _, r := range rows {
		for _, d := range r {
			h.Write([]byte(d.String()))
			h.Write([]byte{1})
		}
		h.Write([]byte{2})
	}
	return h.Sum64()
}

// checkFrozen panics when a cached entry's content no longer matches the
// fingerprint taken at Fill time — some caller mutated shared rows.
func checkFrozen(e *entry) {
	if got := freezeHash(e.columns, e.rows); got != e.frozen {
		panic(fmt.Sprintf("resultcache: cached entry %q mutated after Fill (deep-freeze hash %x != %x)",
			e.key, got, e.frozen))
	}
}
