// Package resultcache implements HS2's query results cache (paper §4.3):
// entries are keyed by the resolved query representation plus the
// transactional snapshot of every table read, so transactional consistency
// decides validity. The cache is multi-version: a write does not invalidate
// an entry, it just makes new readers fill a newer version, while readers
// whose snapshot predates the write keep being served the old rows. A
// pending-entry mode protects against a thundering herd of identical
// queries racing to refill after an invalidating write. Shard-level locks
// keep concurrent sessions from serializing on one mutex, and eviction is
// LRU within each shard.
package resultcache

import (
	"container/list"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/types"
)

// Snapshot maps each table read by the query to the WriteId high watermark
// it was answered under.
type Snapshot map[string]int64

func snapshotEqual(a, b Snapshot) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// snapKey renders a snapshot canonically (sorted) for pending-entry keys.
func snapKey(s Snapshot) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatInt(s[k], 10))
		b.WriteByte(';')
	}
	return b.String()
}

type entry struct {
	key      string
	columns  []string
	rows     [][]types.Datum
	snapshot Snapshot
	elem     *list.Element
	frozen   uint64 // content hash under -tags stress; 0 otherwise
}

type pending struct {
	done chan struct{}
}

type shard struct {
	mu       sync.Mutex
	versions map[string][]*entry // key -> entries at distinct snapshots
	lru      *list.List          // of *entry; front = most recently used
	pendings map[string]*pending // key + "\x00" + snapKey
	max      int

	hits, misses, waits int64
}

// Cache is one HS2 instance's results cache.
type Cache struct {
	noCopy noCopy
	shards []*shard
}

// noCopy makes `go vet` (copylocks) flag by-value copies of Cache: the
// shards are shared mutable state behind pointers, so a copied handle
// silently aliases the original instead of being independent.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// New creates a cache bounded to maxEntries cached results in total
// (summed across all versions of all keys).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	// Scale shard count with capacity so small caches keep their global
	// bound tight (per-shard bounds multiply out to <= maxEntries).
	n := maxEntries / 16
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	per := maxEntries / n
	if per < 1 {
		per = 1
	}
	c := &Cache{shards: make([]*shard, n)}
	for i := range c.shards {
		c.shards[i] = &shard{
			versions: make(map[string][]*entry),
			lru:      list.New(),
			pendings: make(map[string]*pending),
			max:      per,
		}
	}
	return c
}

func (c *Cache) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Outcome reports what Lookup decided.
type Outcome int

// Lookup outcomes.
const (
	Hit        Outcome = iota
	MissFill           // caller should run the query and call Fill/Abandon
	MissWaited         // caller waited for a pending fill; retry Lookup
)

// Lookup probes the cache for an entry at exactly the caller's snapshot. On
// Hit the cached columns and rows are returned; the returned slices are
// fresh headers — callers may append to or reorder them without poisoning
// the shared entry (the row data itself is immutable by contract, enforced
// under -tags stress). On MissFill the caller owns refilling for this
// (key, snapshot) pair: concurrent identical queries at the same snapshot
// wait rather than also running, while queries at other snapshots proceed
// independently. On MissWaited another session just filled or abandoned;
// the caller should retry.
func (c *Cache) Lookup(key string, current Snapshot) ([]string, [][]types.Datum, Outcome) {
	s := c.shardFor(key)
	pk := key + "\x00" + snapKey(current)
	s.mu.Lock()
	for _, e := range s.versions[key] {
		if snapshotEqual(e.snapshot, current) {
			s.hits++
			s.lru.MoveToFront(e.elem)
			checkFrozen(e)
			cols := append([]string(nil), e.columns...)
			rows := append([][]types.Datum(nil), e.rows...)
			s.mu.Unlock()
			return cols, rows, Hit
		}
	}
	if p, ok := s.pendings[pk]; ok {
		s.waits++
		s.mu.Unlock()
		<-p.done
		return nil, nil, MissWaited
	}
	s.misses++
	s.pendings[pk] = &pending{done: make(chan struct{})}
	s.mu.Unlock()
	return nil, nil, MissFill
}

// Fill completes a MissFill with results computed at snap. An existing
// version at the same snapshot is replaced in place — replacement never
// evicts. A genuinely new version may evict the least-recently-used entry
// (possibly an older version of the same key) once the shard is full. The
// pending marker for (key, snap) is released; when the run's actual
// snapshot differed from the Lookup snapshot, the caller must Abandon the
// original (key, lookupSnap) reservation separately.
func (c *Cache) Fill(key string, columns []string, rows [][]types.Datum, snap Snapshot) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	replaced := false
	for _, e := range s.versions[key] {
		if snapshotEqual(e.snapshot, snap) {
			e.columns = columns
			e.rows = rows
			e.frozen = freezeHash(columns, rows)
			s.lru.MoveToFront(e.elem)
			replaced = true
			break
		}
	}
	if !replaced {
		if s.lru.Len() >= s.max {
			s.evictLRU()
		}
		e := &entry{key: key, columns: columns, rows: rows, snapshot: snap,
			frozen: freezeHash(columns, rows)}
		e.elem = s.lru.PushFront(e)
		s.versions[key] = append(s.versions[key], e)
	}
	s.release(key + "\x00" + snapKey(snap))
}

// evictLRU removes the least-recently-used entry. Caller holds s.mu.
func (s *shard) evictLRU() {
	back := s.lru.Back()
	if back == nil {
		return
	}
	victim := back.Value.(*entry)
	s.lru.Remove(back)
	vs := s.versions[victim.key]
	for i, e := range vs {
		if e == victim {
			vs = append(vs[:i], vs[i+1:]...)
			break
		}
	}
	if len(vs) == 0 {
		delete(s.versions, victim.key)
	} else {
		s.versions[victim.key] = vs
	}
}

// Abandon releases a MissFill reservation without caching (nondeterministic
// query, execution error, or a run whose actual snapshot no longer matches
// the reservation).
func (c *Cache) Abandon(key string, snap Snapshot) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.release(key + "\x00" + snapKey(snap))
}

// release closes a pending marker. Caller holds s.mu.
func (s *shard) release(pk string) {
	if p, ok := s.pendings[pk]; ok {
		close(p.done)
		delete(s.pendings, pk)
	}
}

// Stats returns hit/miss/wait counters summed across shards.
func (c *Cache) Stats() (hits, misses, waits int64) {
	for _, s := range c.shards {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		waits += s.waits
		s.mu.Unlock()
	}
	return
}

// Len reports the number of cached result versions (for tests).
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}
