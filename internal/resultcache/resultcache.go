// Package resultcache implements HS2's query results cache (paper §4.3):
// entries are keyed by the resolved query representation plus the
// transactional snapshot of every table read, so transactional consistency
// decides validity. A pending-entry mode protects against a thundering
// herd of identical queries racing to refill after an invalidating write.
package resultcache

import (
	"sync"

	"repro/internal/types"
)

// Snapshot maps each table read by the query to the WriteId high watermark
// it was answered under.
type Snapshot map[string]int64

func snapshotEqual(a, b Snapshot) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

type entry struct {
	columns  []string
	rows     [][]types.Datum
	snapshot Snapshot
}

type pending struct {
	done chan struct{}
}

// Cache is one HS2 instance's results cache.
type Cache struct {
	mu         sync.Mutex
	entries    map[string]*entry
	pendings   map[string]*pending
	maxEntries int

	hits, misses, waits int64
}

// New creates a cache bounded to maxEntries results.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &Cache{
		entries:    make(map[string]*entry),
		pendings:   make(map[string]*pending),
		maxEntries: maxEntries,
	}
}

// Outcome reports what Lookup decided.
type Outcome int

// Lookup outcomes.
const (
	Hit        Outcome = iota
	MissFill           // caller should run the query and call Fill/Abandon
	MissWaited         // caller waited for a pending fill; retry Lookup
)

// Lookup probes the cache. On Hit the cached rows are returned. On
// MissFill the caller owns refilling (pending-entry mode: concurrent
// identical queries will wait rather than also running). On MissWaited
// another query just filled or abandoned; the caller should retry.
func (c *Cache) Lookup(key string, current Snapshot) ([]string, [][]types.Datum, Outcome) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok && snapshotEqual(e.snapshot, current) {
		c.hits++
		cols, rows := e.columns, e.rows
		c.mu.Unlock()
		return cols, rows, Hit
	}
	if p, ok := c.pendings[key]; ok {
		c.waits++
		c.mu.Unlock()
		<-p.done
		return nil, nil, MissWaited
	}
	c.misses++
	c.pendings[key] = &pending{done: make(chan struct{})}
	c.mu.Unlock()
	return nil, nil, MissFill
}

// Fill completes a MissFill with results. Stale entries for the key are
// replaced; the pending marker is released.
func (c *Cache) Fill(key string, columns []string, rows [][]types.Datum, snap Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.maxEntries {
		for k := range c.entries {
			delete(c.entries, k) // evict arbitrary entry; bounded memory
			break
		}
	}
	c.entries[key] = &entry{columns: columns, rows: rows, snapshot: snap}
	if p, ok := c.pendings[key]; ok {
		close(p.done)
		delete(c.pendings, key)
	}
}

// Abandon releases a MissFill without caching (e.g. nondeterministic
// query or execution error).
func (c *Cache) Abandon(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.pendings[key]; ok {
		close(p.done)
		delete(c.pendings, key)
	}
}

// Stats returns hit/miss/wait counters.
func (c *Cache) Stats() (hits, misses, waits int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.waits
}
