//go:build !stress

package resultcache

import "repro/internal/types"

// freezeHash is a no-op without -tags stress: cached rows are immutable by
// contract, and the stress build enforces it.
func freezeHash(columns []string, rows [][]types.Datum) uint64 { return 0 }

func checkFrozen(e *entry) {}
