// Package dfs implements an in-memory simulated distributed file system that
// plays the role HDFS (or a cloud object store) plays for Hive. It provides
// exactly the properties the warehouse layers above rely on:
//
//   - write-once immutable files, each with a unique FileID (the analogue of
//     an HDFS inode generation or S3 ETag) that the LLAP cache uses to keep
//     cached chunks valid under file replacement (paper §5.1);
//   - hierarchical directories with atomic rename, which the ACID layout
//     uses for base/delta directory management (paper §3.2);
//   - a configurable latency model (seek cost per read call plus per-byte
//     throughput cost) so that I/O savings from predicate pushdown and LLAP
//     caching are measurable in a single process, standing in for the
//     paper's 10-node cluster disks and network.
//
// All methods are safe for concurrent use.
package dfs

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Latency models the cost of reads against the simulated storage.
// Zero values mean free I/O (the default for unit tests).
type Latency struct {
	SeekCost    time.Duration // charged once per read call
	PerByteCost time.Duration // charged per byte read
}

// Stats counts I/O operations, used by tests to assert that pushdown and
// caching actually avoid reads.
type Stats struct {
	ReadOps   int64
	BytesRead int64
	WriteOps  int64
}

type file struct {
	data  []byte
	id    uint64
	mtime time.Time
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Path   string
	Size   int64
	FileID uint64 // unique per file content generation; 0 for directories
	IsDir  bool
}

// FS is the simulated file system.
type FS struct {
	mu      sync.RWMutex
	files   map[string]*file
	dirs    map[string]bool
	lat     Latency
	nextID  uint64
	readOps atomic.Int64
	bytes   atomic.Int64
	writes  atomic.Int64
}

// New returns an empty file system with free I/O.
func New() *FS {
	return &FS{
		files: make(map[string]*file),
		dirs:  map[string]bool{"/": true},
	}
}

// SetLatency installs the read latency model. Safe to call at any time.
func (fs *FS) SetLatency(l Latency) {
	fs.mu.Lock()
	fs.lat = l
	fs.mu.Unlock()
}

// IOStats returns a snapshot of the I/O counters.
func (fs *FS) IOStats() Stats {
	return Stats{
		ReadOps:   fs.readOps.Load(),
		BytesRead: fs.bytes.Load(),
		WriteOps:  fs.writes.Load(),
	}
}

// ResetStats zeroes the I/O counters.
func (fs *FS) ResetStats() {
	fs.readOps.Store(0)
	fs.bytes.Store(0)
	fs.writes.Store(0)
}

func clean(p string) string {
	p = path.Clean("/" + p)
	return p
}

// MkdirAll creates the directory and any missing parents.
func (fs *FS) MkdirAll(dir string) {
	dir = clean(dir)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.mkdirLocked(dir)
}

func (fs *FS) mkdirLocked(dir string) {
	for d := dir; d != "/"; d = path.Dir(d) {
		if fs.dirs[d] {
			break
		}
		fs.dirs[d] = true
	}
}

// WriteFile atomically creates an immutable file at p. It is an error if the
// file already exists; files are write-once like HDFS output files.
func (fs *FS) WriteFile(p string, data []byte) error {
	p = clean(p)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[p]; ok {
		return fmt.Errorf("dfs: file exists: %s", p)
	}
	if fs.dirs[p] {
		return fmt.Errorf("dfs: is a directory: %s", p)
	}
	fs.mkdirLocked(path.Dir(p))
	fs.nextID++
	cp := make([]byte, len(data))
	copy(cp, data)
	fs.files[p] = &file{data: cp, id: fs.nextID, mtime: time.Now()}
	fs.writes.Add(1)
	return nil
}

// ReadFile reads the whole file, charging the latency model.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	p = clean(p)
	fs.mu.RLock()
	f, ok := fs.files[p]
	lat := fs.lat
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: no such file: %s", p)
	}
	fs.charge(lat, len(f.data))
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// ReadAt reads length bytes at offset from the file, charging the latency
// model for one seek plus the bytes read. Short reads at EOF return what is
// available.
func (fs *FS) ReadAt(p string, off, length int64) ([]byte, error) {
	p = clean(p)
	fs.mu.RLock()
	f, ok := fs.files[p]
	lat := fs.lat
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dfs: no such file: %s", p)
	}
	if off < 0 || off > int64(len(f.data)) {
		return nil, fmt.Errorf("dfs: read offset %d out of range for %s", off, p)
	}
	end := off + length
	if end > int64(len(f.data)) {
		end = int64(len(f.data))
	}
	n := int(end - off)
	fs.charge(lat, n)
	out := make([]byte, n)
	copy(out, f.data[off:end])
	return out, nil
}

func (fs *FS) charge(lat Latency, n int) {
	fs.readOps.Add(1)
	fs.bytes.Add(int64(n))
	if lat.SeekCost > 0 || lat.PerByteCost > 0 {
		time.Sleep(lat.SeekCost + time.Duration(n)*lat.PerByteCost)
	}
}

// Stat returns metadata for a file or directory.
func (fs *FS) Stat(p string) (FileInfo, error) {
	p = clean(p)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if f, ok := fs.files[p]; ok {
		return FileInfo{Path: p, Size: int64(len(f.data)), FileID: f.id}, nil
	}
	if fs.dirs[p] {
		return FileInfo{Path: p, IsDir: true}, nil
	}
	return FileInfo{}, fmt.Errorf("dfs: no such file or directory: %s", p)
}

// Exists reports whether a file or directory exists at p.
func (fs *FS) Exists(p string) bool {
	_, err := fs.Stat(p)
	return err == nil
}

// List returns the immediate children of dir, sorted by path.
func (fs *FS) List(dir string) ([]FileInfo, error) {
	dir = clean(dir)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if !fs.dirs[dir] {
		return nil, fmt.Errorf("dfs: no such directory: %s", dir)
	}
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	}
	var out []FileInfo
	seen := map[string]bool{}
	for p, f := range fs.files {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := p[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			continue // deeper than one level; the dir entry covers it
		}
		out = append(out, FileInfo{Path: p, Size: int64(len(f.data)), FileID: f.id})
		seen[p] = true
	}
	for d := range fs.dirs {
		if d == dir || !strings.HasPrefix(d, prefix) {
			continue
		}
		rest := d[len(prefix):]
		if strings.IndexByte(rest, '/') >= 0 {
			continue
		}
		out = append(out, FileInfo{Path: d, IsDir: true})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// ListRecursive returns every file (not directory) under dir.
func (fs *FS) ListRecursive(dir string) ([]FileInfo, error) {
	dir = clean(dir)
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if !fs.dirs[dir] {
		return nil, fmt.Errorf("dfs: no such directory: %s", dir)
	}
	prefix := dir
	if prefix != "/" {
		prefix += "/"
	}
	var out []FileInfo
	for p, f := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, FileInfo{Path: p, Size: int64(len(f.data)), FileID: f.id})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Rename atomically moves a file or directory subtree from src to dst.
// It fails if dst already exists.
func (fs *FS) Rename(src, dst string) error {
	src, dst = clean(src), clean(dst)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[dst]; ok || fs.dirs[dst] {
		return fmt.Errorf("dfs: destination exists: %s", dst)
	}
	if f, ok := fs.files[src]; ok {
		delete(fs.files, src)
		fs.mkdirLocked(path.Dir(dst))
		fs.files[dst] = f
		return nil
	}
	if !fs.dirs[src] {
		return fmt.Errorf("dfs: no such file or directory: %s", src)
	}
	prefix := src + "/"
	moved := map[string]*file{}
	for p, f := range fs.files {
		if strings.HasPrefix(p, prefix) {
			moved[dst+"/"+p[len(prefix):]] = f
			delete(fs.files, p)
		}
	}
	movedDirs := []string{}
	for d := range fs.dirs {
		if d == src || strings.HasPrefix(d, prefix) {
			movedDirs = append(movedDirs, d)
		}
	}
	for _, d := range movedDirs {
		delete(fs.dirs, d)
		if d == src {
			fs.dirs[dst] = true
		} else {
			fs.dirs[dst+"/"+d[len(prefix):]] = true
		}
	}
	fs.mkdirLocked(path.Dir(dst))
	for p, f := range moved {
		fs.files[p] = f
	}
	return nil
}

// Remove deletes a file, or a directory subtree when recursive is true.
func (fs *FS) Remove(p string, recursive bool) error {
	p = clean(p)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[p]; ok {
		delete(fs.files, p)
		return nil
	}
	if !fs.dirs[p] {
		return fmt.Errorf("dfs: no such file or directory: %s", p)
	}
	prefix := p + "/"
	if !recursive {
		for q := range fs.files {
			if strings.HasPrefix(q, prefix) {
				return fmt.Errorf("dfs: directory not empty: %s", p)
			}
		}
		for d := range fs.dirs {
			if strings.HasPrefix(d, prefix) {
				return fmt.Errorf("dfs: directory not empty: %s", p)
			}
		}
	}
	for q := range fs.files {
		if strings.HasPrefix(q, prefix) {
			delete(fs.files, q)
		}
	}
	for d := range fs.dirs {
		if d == p || strings.HasPrefix(d, prefix) {
			delete(fs.dirs, d)
		}
	}
	return nil
}
