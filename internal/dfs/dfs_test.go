package dfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	data := []byte("hello warehouse")
	if err := fs.WriteFile("/wh/db/t/file_0000", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/wh/db/t/file_0000")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back: %q %v", got, err)
	}
	// Files are immutable: rewriting fails.
	if err := fs.WriteFile("/wh/db/t/file_0000", data); err == nil {
		t.Error("overwrite should fail")
	}
}

func TestReadAt(t *testing.T) {
	fs := New()
	fs.WriteFile("/f", []byte("0123456789"))
	got, err := fs.ReadAt("/f", 3, 4)
	if err != nil || string(got) != "3456" {
		t.Fatalf("ReadAt: %q %v", got, err)
	}
	got, err = fs.ReadAt("/f", 8, 100) // short read at EOF
	if err != nil || string(got) != "89" {
		t.Fatalf("short ReadAt: %q %v", got, err)
	}
	if _, err = fs.ReadAt("/f", 11, 1); err == nil {
		t.Error("offset past EOF should fail")
	}
}

func TestFileIDsUniqueAndStable(t *testing.T) {
	fs := New()
	fs.WriteFile("/a", []byte("x"))
	fs.WriteFile("/b", []byte("x"))
	fa, _ := fs.Stat("/a")
	fb, _ := fs.Stat("/b")
	if fa.FileID == 0 || fa.FileID == fb.FileID {
		t.Errorf("file ids not unique: %d %d", fa.FileID, fb.FileID)
	}
	// Delete and recreate: new generation, new id (cache invalidation hook).
	fs.Remove("/a", false)
	fs.WriteFile("/a", []byte("y"))
	fa2, _ := fs.Stat("/a")
	if fa2.FileID == fa.FileID {
		t.Error("recreated file must get a fresh FileID")
	}
}

func TestListAndListRecursive(t *testing.T) {
	fs := New()
	fs.WriteFile("/wh/t/delta_1_1/f0", []byte("a"))
	fs.WriteFile("/wh/t/delta_1_1/f1", []byte("b"))
	fs.WriteFile("/wh/t/base_5/f0", []byte("c"))
	infos, err := fs.List("/wh/t")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || !infos[0].IsDir || infos[0].Path != "/wh/t/base_5" {
		t.Fatalf("List: %+v", infos)
	}
	all, err := fs.ListRecursive("/wh/t")
	if err != nil || len(all) != 3 {
		t.Fatalf("ListRecursive: %+v %v", all, err)
	}
	if _, err := fs.List("/nope"); err == nil {
		t.Error("List on missing dir should fail")
	}
}

func TestRenameDirectoryAtomic(t *testing.T) {
	fs := New()
	fs.WriteFile("/wh/t/.tmp_compact/f0", []byte("new base"))
	fs.MkdirAll("/wh/t/.tmp_compact/sub")
	if err := fs.Rename("/wh/t/.tmp_compact", "/wh/t/base_10"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/wh/t/.tmp_compact") {
		t.Error("source still exists after rename")
	}
	got, err := fs.ReadFile("/wh/t/base_10/f0")
	if err != nil || string(got) != "new base" {
		t.Fatalf("renamed file: %q %v", got, err)
	}
	if fi, err := fs.Stat("/wh/t/base_10/sub"); err != nil || !fi.IsDir {
		t.Error("nested dir not renamed")
	}
	// Rename onto existing destination fails.
	fs.MkdirAll("/x")
	fs.MkdirAll("/y")
	if err := fs.Rename("/x", "/y"); err == nil {
		t.Error("rename onto existing dir should fail")
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	fs.WriteFile("/d/a/f", []byte("1"))
	if err := fs.Remove("/d", false); err == nil {
		t.Error("non-recursive remove of non-empty dir should fail")
	}
	if err := fs.Remove("/d", true); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/d/a/f") || fs.Exists("/d") {
		t.Error("recursive remove left entries")
	}
}

func TestIOStatsCountReads(t *testing.T) {
	fs := New()
	fs.WriteFile("/f", make([]byte, 1000))
	fs.ResetStats()
	fs.ReadAt("/f", 0, 100)
	fs.ReadAt("/f", 500, 100)
	st := fs.IOStats()
	if st.ReadOps != 2 || st.BytesRead != 200 {
		t.Errorf("stats = %+v, want 2 ops / 200 bytes", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := fmt.Sprintf("/c/f%d", i)
			if err := fs.WriteFile(p, []byte{byte(i)}); err != nil {
				t.Error(err)
				return
			}
			if _, err := fs.ReadFile(p); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	infos, _ := fs.ListRecursive("/c")
	if len(infos) != 20 {
		t.Errorf("got %d files, want 20", len(infos))
	}
}
