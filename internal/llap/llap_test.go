package llap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dfs"
	"repro/internal/orc"
	"repro/internal/types"
)

func TestCacheHitAvoidsFS(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("/f", make([]byte, 4096))
	c := NewCache(fs, 1<<20)
	if _, err := c.ReadChunk("/f", 1, 0, 0, 0, 1024); err != nil {
		t.Fatal(err)
	}
	fs.ResetStats()
	if _, err := c.ReadChunk("/f", 1, 0, 0, 0, 1024); err != nil {
		t.Fatal(err)
	}
	if got := fs.IOStats().ReadOps; got != 0 {
		t.Errorf("cache hit touched the fs: %d reads", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCacheKeyIncludesFileID(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("/f", []byte("old content padding pad"))
	c := NewCache(fs, 1<<20)
	c.ReadChunk("/f", 1, 0, 0, 0, 3)
	// A new file generation (new FileID) must not see the old bytes: the
	// MVCC property of §5.1.
	fs.Remove("/f", false)
	fs.WriteFile("/f", []byte("NEW content padding pad"))
	got, err := c.ReadChunk("/f", 2, 0, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "NEW" {
		t.Errorf("stale cache served for new file generation: %q", got)
	}
}

func TestCacheEvictionRespectsCapacity(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("/f", make([]byte, 1<<16))
	c := NewCache(fs, 4096) // room for 4 x 1 KiB chunks
	for i := 0; i < 10; i++ {
		if _, err := c.ReadChunk("/f", 1, i, 0, int64(i*1024), 1024); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.UsedBytes > 4096 {
		t.Errorf("cache exceeded capacity: %d", st.UsedBytes)
	}
	if st.Evictions == 0 {
		t.Error("expected evictions")
	}
}

func TestCacheLRFUPrefersFrequent(t *testing.T) {
	fs := dfs.New()
	fs.WriteFile("/f", make([]byte, 1<<16))
	c := NewCache(fs, 2048)
	// Chunk A accessed many times, B once, then C forces an eviction.
	for i := 0; i < 8; i++ {
		c.ReadChunk("/f", 1, 0, 0, 0, 1024)
	}
	c.ReadChunk("/f", 1, 1, 0, 1024, 1024)
	c.ReadChunk("/f", 1, 2, 0, 2048, 1024) // evicts one of A/B
	fs.ResetStats()
	c.ReadChunk("/f", 1, 0, 0, 0, 1024) // A should still be cached
	if fs.IOStats().ReadOps != 0 {
		t.Error("frequently used chunk was evicted before the cold one")
	}
}

func TestMetadataCache(t *testing.T) {
	fs := dfs.New()
	w := orc.NewWriter(fs, "/t/f", []orc.Column{{Name: "x", Type: types.TInt}}, orc.WriterOptions{})
	w.WriteRow([]types.Datum{types.NewInt(1)})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	mc := NewMetadataCache()
	r1, err := mc.Reader(fs, "/t/f")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mc.Reader(fs, "/t/f")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 || mc.Hits() != 1 {
		t.Error("metadata cache did not reuse the reader")
	}
	// Replacing the file invalidates by FileID.
	fs.Remove("/t/f", false)
	w = orc.NewWriter(fs, "/t/f", []orc.Column{{Name: "x", Type: types.TInt}}, orc.WriterOptions{})
	w.WriteRow([]types.Datum{types.NewInt(2)})
	w.Close()
	r3, err := mc.Reader(fs, "/t/f")
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("metadata cache served a stale reader for a new generation")
	}
}

func TestDaemonsPool(t *testing.T) {
	d := NewDaemons(4)
	rel := d.Acquire(3)
	if _, ok := d.TryAcquire(2); ok {
		t.Error("over-acquisition should fail")
	}
	if r2, ok := d.TryAcquire(1); !ok {
		t.Error("one slot should remain")
	} else {
		r2()
	}
	rel()
	if r, ok := d.TryAcquire(4); !ok {
		t.Error("all slots should be free again")
	} else {
		r()
	}
}

// TestCacheConcurrentStress hammers the data cache from many goroutines
// with a capacity small enough to force constant insert/evict churn,
// modeling parallel morsel-driven scans sharing one LLAP cache. Run with
// -race; correctness here is "right bytes, no data races, bounded size".
func TestCacheConcurrentStress(t *testing.T) {
	fs := dfs.New()
	const files = 8
	for f := 0; f < files; f++ {
		data := make([]byte, 8192)
		for i := range data {
			data[i] = byte(f)
		}
		fs.WriteFile(fmt.Sprintf("/f%d", f), data)
	}
	// Capacity of ~4 chunks so concurrent readers evict each other.
	c := NewCache(fs, 4*1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				f := (w + i) % files
				off := int64((i % 8) * 1024)
				data, err := c.ReadChunk(fmt.Sprintf("/f%d", f), uint64(f+1), i%4, w%3, off, 1024)
				if err != nil {
					t.Error(err)
					return
				}
				if len(data) != 1024 || data[0] != byte(f) {
					t.Errorf("wrong chunk content for file %d", f)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.UsedBytes > 4*1024 {
		t.Errorf("cache over capacity: %d bytes", st.UsedBytes)
	}
	if st.Hits+st.Misses != 8*300 {
		t.Errorf("lost reads: hits %d misses %d", st.Hits, st.Misses)
	}
}

// TestDaemonsConcurrentTryAcquire checks slot accounting under concurrent
// acquire/release from parallel operators.
func TestDaemonsConcurrentTryAcquire(t *testing.T) {
	d := NewDaemons(4)
	var inUse atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 1 + (w+i)%3
				rel, ok := d.TryAcquire(n)
				if !ok {
					continue
				}
				if cur := inUse.Add(int64(n)); cur > 4 {
					t.Errorf("pool over-committed: %d slots in use", cur)
				}
				inUse.Add(int64(-n))
				rel()
			}
		}(w)
	}
	wg.Wait()
	if r, ok := d.TryAcquire(4); !ok {
		t.Error("slots leaked: full pool unavailable after stress")
	} else {
		r()
	}
}
