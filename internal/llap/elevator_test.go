package llap

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/orc"
	"repro/internal/types"
	"repro/internal/vector"
)

func i64Vec(vals ...int64) *vector.Vector {
	return &vector.Vector{Type: types.TBigint, I64: vals}
}

func TestDecodedCacheLRUEviction(t *testing.T) {
	v := i64Vec(1, 2, 3, 4)
	size := VectorBytes(v)
	c := NewDecodedCache(2 * size)
	c.PutVector(1, 0, 0, i64Vec(1, 2, 3, 4))
	c.PutVector(1, 1, 0, i64Vec(5, 6, 7, 8))
	// Touch stripe 0 so stripe 1 is the LRU victim.
	if _, ok := c.GetVector(1, 0, 0); !ok {
		t.Fatal("expected stripe 0 resident")
	}
	c.PutVector(1, 2, 0, i64Vec(9, 10, 11, 12))
	if _, ok := c.GetVector(1, 1, 0); ok {
		t.Error("expected LRU stripe 1 evicted")
	}
	if _, ok := c.GetVector(1, 0, 0); !ok {
		t.Error("expected recently used stripe 0 retained")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.UsedBytes > 2*size {
		t.Errorf("used %d bytes over capacity %d", st.UsedBytes, 2*size)
	}
}

// TestDecodedCacheEvictionDuringFill is the eviction-during-fill
// correctness test: a consumer that obtained a vector right before it was
// evicted must still read valid data — eviction only drops the cache's
// reference, never the vector's contents.
func TestDecodedCacheEvictionDuringFill(t *testing.T) {
	v := i64Vec(1, 2, 3, 4)
	size := VectorBytes(v)
	c := NewDecodedCache(size) // exactly one entry fits
	c.PutVector(1, 0, 0, v)
	held, ok := c.GetVector(1, 0, 0)
	if !ok {
		t.Fatal("expected fill to be resident")
	}
	// A concurrent fill of another stripe evicts the held entry.
	c.PutVector(1, 1, 0, i64Vec(5, 6, 7, 8))
	if _, ok := c.GetVector(1, 0, 0); ok {
		t.Fatal("expected held entry evicted")
	}
	for i, want := range []int64{1, 2, 3, 4} {
		if held.I64[i] != want {
			t.Fatalf("held vector corrupted after eviction: %v", held.I64)
		}
	}
	// Oversized vectors bypass the cache entirely.
	big := i64Vec(make([]int64, 1024)...)
	c.PutVector(2, 0, 0, big)
	if c.PeekVector(2, 0, 0) {
		t.Error("oversized vector should not be cached")
	}
}

func TestQueryVectorViewCountsPerQuery(t *testing.T) {
	c := NewDecodedCache(1 << 20)
	c.PutVector(1, 0, 0, i64Vec(1))
	q1 := &QueryVectorView{Cache: c}
	q2 := &QueryVectorView{Cache: c}
	q1.GetVector(1, 0, 0) // hit
	q1.GetVector(1, 9, 0) // miss
	q2.GetVector(1, 0, 0) // hit
	if q1.Hits.Load() != 1 || q1.Misses.Load() != 1 {
		t.Errorf("q1 hits/misses = %d/%d, want 1/1", q1.Hits.Load(), q1.Misses.Load())
	}
	if q2.Hits.Load() != 1 || q2.Misses.Load() != 0 {
		t.Errorf("q2 hits/misses = %d/%d, want 1/0", q2.Hits.Load(), q2.Misses.Load())
	}
	// Peek must not count anywhere.
	q1.PeekVector(1, 0, 0)
	if q1.Hits.Load() != 1 {
		t.Error("PeekVector must not count as a hit")
	}
}

// writeStripedFile writes rows/stripeRows stripes of (BIGINT k, DOUBLE v).
func writeStripedFile(t testing.TB, fs *dfs.FS, path string, rows, stripeRows int) {
	t.Helper()
	w := orc.NewWriter(fs, path, []orc.Column{
		{Name: "k", Type: types.TBigint},
		{Name: "v", Type: types.TDouble},
	}, orc.WriterOptions{StripeRows: stripeRows})
	for i := 0; i < rows; i++ {
		if err := w.WriteRow([]types.Datum{types.NewBigint(int64(i)), types.NewDouble(float64(i) / 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestElevatorPrefetchFillsDecodedCache(t *testing.T) {
	fs := dfs.New()
	writeStripedFile(t, fs, "/t/f", 64, 16)
	cache := NewDecodedCache(1 << 20)
	e := NewElevator(2, 1<<20)
	defer e.Close()
	r, err := orc.NewReader(fs, "/t/f")
	if err != nil {
		t.Fatal(err)
	}
	r.SetVectorCache(cache)
	var done atomic.Int64
	for st := 0; st < r.NumStripes(); st++ {
		if !e.Prefetch(r, st, []int{0, 1}, func() { done.Add(1) }) {
			t.Fatalf("prefetch of stripe %d rejected", st)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for done.Load() < int64(r.NumStripes()) {
		if time.Now().After(deadline) {
			t.Fatalf("elevator decoded %d/%d stripes", done.Load(), r.NumStripes())
		}
		time.Sleep(time.Millisecond)
	}
	for st := 0; st < r.NumStripes(); st++ {
		for col := 0; col < 2; col++ {
			if !cache.PeekVector(r.FileID(), st, col) {
				t.Errorf("stripe %d col %d not in decoded cache after prefetch", st, col)
			}
		}
	}
	if got := e.Stats(); got.Decoded != int64(r.NumStripes()) || got.Enqueued != int64(r.NumStripes()) {
		t.Errorf("elevator stats = %+v", got)
	}
	// A consumer read is now served from the decoded cache: no chunk I/O.
	pre := fs.IOStats().ReadOps
	if _, err := r.ReadStripe(0, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if post := fs.IOStats().ReadOps; post != pre {
		t.Errorf("ReadStripe after prefetch did %d FS reads, want 0", post-pre)
	}
}

func TestElevatorDedupAndClose(t *testing.T) {
	fs := dfs.New()
	writeStripedFile(t, fs, "/t/f", 32, 16)
	e := NewElevator(1, 1<<20)
	r, err := orc.NewReader(fs, "/t/f")
	if err != nil {
		t.Fatal(err)
	}
	r.SetVectorCache(NewDecodedCache(1 << 20))
	// Flood the single worker so duplicates overlap in the pending set.
	var accepted, calls atomic.Int64
	for i := 0; i < 50; i++ {
		st := i % r.NumStripes()
		if e.Prefetch(r, st, nil, func() { calls.Add(1) }) {
			accepted.Add(1)
		}
	}
	e.Close()
	if calls.Load() != accepted.Load() {
		t.Errorf("done callbacks %d != accepted prefetches %d", calls.Load(), accepted.Load())
	}
	if e.Prefetch(r, 0, nil, nil) {
		t.Error("prefetch after Close must be rejected")
	}
	e.Close() // idempotent
}

// TestElevatorSingleFlight pins the join semantics deterministically: the
// elevator is built without workers, so requests stay queued and
// duplicates provably overlap the flight they join.
func TestElevatorSingleFlight(t *testing.T) {
	fs := dfs.New()
	writeStripedFile(t, fs, "/t/f", 32, 16)
	r, err := orc.NewReader(fs, "/t/f")
	if err != nil {
		t.Fatal(err)
	}
	r.SetVectorCache(NewDecodedCache(1 << 20))
	e := &Elevator{
		reqs:    make(chan elevReq, 8),
		quit:    make(chan struct{}),
		cap:     1 << 30,
		pending: make(map[elevKey]*flight),
	}
	var done atomic.Int64
	cb := func() { done.Add(1) }
	if !e.Prefetch(r, 0, []int{0, 1}, cb) {
		t.Fatal("first prefetch rejected")
	}
	// Same stripe, same column set (order-insensitively): joins the flight.
	if !e.Prefetch(r, 0, []int{1, 0}, cb) {
		t.Fatal("identical prefetch must join the in-flight decode, not drop")
	}
	// A different projection of the same stripe is distinct work.
	if !e.Prefetch(r, 0, []int{0}, cb) {
		t.Fatal("narrower projection must enqueue its own decode")
	}
	st := e.Stats()
	if st.Enqueued != 2 || st.Coalesced != 1 || st.Dropped != 0 {
		t.Errorf("enqueued/coalesced/dropped = %d/%d/%d, want 2/1/0",
			st.Enqueued, st.Coalesced, st.Dropped)
	}
	// Close abandons both queued flights; every chained done fires once.
	e.Close()
	if done.Load() != 3 {
		t.Errorf("done callbacks = %d, want 3 (two flights, one joiner)", done.Load())
	}
	st = e.Stats()
	if st.Abandoned != 2 || st.Enqueued != st.Decoded+st.Abandoned {
		t.Errorf("accounting after Close: %+v", st)
	}
	if st.InflightBytes != 0 {
		t.Errorf("in-flight bytes = %d after Close, want 0", st.InflightBytes)
	}
}

func TestMetadataCacheLRUAndInvalidate(t *testing.T) {
	fs := dfs.New()
	for i := 0; i < 4; i++ {
		writeStripedFile(t, fs, fmt.Sprintf("/t/f%d", i), 4, 4)
	}
	m := NewMetadataCacheSize(2)
	for i := 0; i < 4; i++ {
		if _, err := m.Reader(fs, fmt.Sprintf("/t/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Entries != 2 || st.Evictions != 2 || st.Misses != 4 {
		t.Errorf("stats after fills = %+v", st)
	}
	// f3 is resident (most recent): hit without reopening.
	if _, err := m.Reader(fs, "/t/f3"); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Hits != 1 {
		t.Errorf("hits = %d, want 1", m.Stats().Hits)
	}
	m.Invalidate("/t/f3")
	if _, err := m.Reader(fs, "/t/f3"); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Misses != 5 {
		t.Errorf("misses after invalidate = %d, want 5", m.Stats().Misses)
	}
	m.InvalidatePrefix("/t/")
	if m.Stats().Entries != 0 {
		t.Errorf("entries after prefix invalidate = %d, want 0", m.Stats().Entries)
	}
}
