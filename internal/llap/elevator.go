package llap

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/orc"
	"repro/internal/vector"
)

// The I/O elevator (paper §5.1): LLAP separates I/O from execution with an
// asynchronous pool that reads, decompresses and *decodes* column data
// ahead of the consuming executor, and caches the decoded representation
// rather than raw bytes. This file provides the two halves:
//
//   - DecodedCache: a memory-bounded LRU of decoded vector.Vectors keyed
//     by (fileID, stripe, column) and charged by decoded size. Like the
//     chunk cache it is an MVCC view — DFS files are immutable and each
//     write generation gets a fresh FileID, so stale entries simply age
//     out rather than needing invalidation.
//   - Elevator: a fixed pool of decode goroutines fed by scanning workers,
//     which publish upcoming sarg-surviving stripes before needing them.

// vecKey addresses one decoded column of one file generation.
type vecKey struct {
	fileID uint64
	stripe int
	col    int
}

type vecEntry struct {
	key  vecKey
	vec  *vector.Vector
	size int64
}

// DecodedCacheStats counts decoded-cache effectiveness.
type DecodedCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	UsedBytes int64
	Entries   int
}

// DecodedCache is the elevator's decoded-vector cache: an orc.VectorCache
// bounded by decoded bytes with LRU eviction. Cached vectors are shared
// between queries and are immutable by contract; eviction only drops the
// cache's reference, so a consumer holding an evicted vector keeps a valid
// value (eviction-during-fill is safe by construction).
type DecodedCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[vecKey]*list.Element // of vecEntry
	lru      list.List                // front = most recent

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewDecodedCache creates a decoded-vector cache with the given capacity
// in decoded bytes.
func NewDecodedCache(capacity int64) *DecodedCache {
	return &DecodedCache{capacity: capacity, entries: make(map[vecKey]*list.Element)}
}

// VectorBytes estimates the resident size of a decoded vector, the unit
// the cache capacity is charged in.
func VectorBytes(v *vector.Vector) int64 {
	n := int64(48) // struct + slice headers
	n += int64(len(v.Nulls))
	n += 8 * int64(len(v.I64))
	n += 8 * int64(len(v.F64))
	if v.Str != nil {
		n += 16 * int64(len(v.Str))
		for _, s := range v.Str {
			n += int64(len(s))
		}
	}
	return n
}

// GetVector implements orc.VectorCache.
func (c *DecodedCache) GetVector(fileID uint64, stripe, col int) (*vector.Vector, bool) {
	key := vecKey{fileID, stripe, col}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		v := el.Value.(*vecEntry).vec
		c.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// PeekVector implements orc.VectorPeeker: residency check without hit/miss
// accounting or LRU promotion, used by the prefetch path.
func (c *DecodedCache) PeekVector(fileID uint64, stripe, col int) bool {
	key := vecKey{fileID, stripe, col}
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	return ok
}

// PutVector implements orc.VectorCache.
func (c *DecodedCache) PutVector(fileID uint64, stripe, col int, v *vector.Vector) {
	size := VectorBytes(v)
	if size > c.capacity {
		return // larger than the cache: serve uncached
	}
	key := vecKey{fileID, stripe, col}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	for c.used+size > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*vecEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.size
		c.evictions.Add(1)
	}
	c.entries[key] = c.lru.PushFront(&vecEntry{key: key, vec: v, size: size})
	c.used += size
}

// Capacity returns the cache's byte capacity.
func (c *DecodedCache) Capacity() int64 { return c.capacity }

// Stats returns decoded-cache counters.
func (c *DecodedCache) Stats() DecodedCacheStats {
	c.mu.Lock()
	used, n := c.used, c.lru.Len()
	c.mu.Unlock()
	return DecodedCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		UsedBytes: used,
		Entries:   n,
	}
}

// QueryVectorView wraps the shared DecodedCache with per-query hit/miss
// counters so sessions can report LastDecodedCacheHits/Misses without
// disentangling the global totals. Peeks pass through uncounted.
type QueryVectorView struct {
	Cache  *DecodedCache
	Hits   atomic.Int64
	Misses atomic.Int64
}

// GetVector implements orc.VectorCache.
func (q *QueryVectorView) GetVector(fileID uint64, stripe, col int) (*vector.Vector, bool) {
	v, ok := q.Cache.GetVector(fileID, stripe, col)
	if ok {
		q.Hits.Add(1)
	} else {
		q.Misses.Add(1)
	}
	return v, ok
}

// PutVector implements orc.VectorCache.
func (q *QueryVectorView) PutVector(fileID uint64, stripe, col int, v *vector.Vector) {
	q.Cache.PutVector(fileID, stripe, col, v)
}

// PeekVector implements orc.VectorPeeker.
func (q *QueryVectorView) PeekVector(fileID uint64, stripe, col int) bool {
	return q.Cache.PeekVector(fileID, stripe, col)
}

// ElevatorStats counts elevator activity.
type ElevatorStats struct {
	Enqueued      int64 // requests accepted into the queue
	Decoded       int64 // stripes decoded by elevator workers
	Coalesced     int64 // requests joined onto an identical in-flight decode
	Dropped       int64 // requests rejected (full queue, byte cap)
	Abandoned     int64 // queued requests discarded by Close
	MaxDepth      int64 // high-water mark of queued requests
	InflightBytes int64 // current estimated bytes of queued + running work
}

// elevKey identifies one in-flight decode unit. The column-set fingerprint
// matters: two queries projecting different columns of the same stripe are
// different work — deduping them on (file, stripe) alone would leave the
// second projection undecoded.
type elevKey struct {
	fileID uint64
	stripe int
	colset string
}

// colsetKey fingerprints a projection order-insensitively.
func colsetKey(cols []int) string {
	cs := append([]int(nil), cols...)
	sort.Ints(cs)
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

type elevReq struct {
	r      *orc.Reader
	stripe int
	cols   []int
	est    int64
	key    elevKey
}

// flight is the single-flight record for one in-flight decode: every
// caller that joined it gets its done callback on completion (or on
// Close's abandonment), so per-query accounting always unwinds.
type flight struct {
	dones []func()
}

// Elevator is the per-daemon asynchronous decode pool. Scanning workers
// enqueue upcoming (file, stripe, projection) units; worker goroutines
// perform the DFS reads and column decodes ahead of the consumer and
// publish decoded vectors through the reader's vector cache. Requests are
// advisory: when the queue or the in-flight byte budget is full they are
// dropped and the consumer decodes synchronously as before, so the
// elevator can never change results — only timing.
type Elevator struct {
	reqs     chan elevReq
	quit     chan struct{}
	wg       sync.WaitGroup
	cap      int64 // in-flight decode estimate budget, bytes
	inflight atomic.Int64

	mu      sync.Mutex
	pending map[elevKey]*flight // single-flight: one decode per (file, stripe, colset)

	enqueued  atomic.Int64
	decoded   atomic.Int64
	coalesced atomic.Int64
	dropped   atomic.Int64
	abandoned atomic.Int64
	depth     atomic.Int64
	maxDepth  atomic.Int64
	closed    atomic.Bool
}

// NewElevator starts an elevator with the given worker count
// (hive.llap.io.threads) and in-flight byte budget; zero values pick
// defaults of 4 threads and 32 MiB.
func NewElevator(threads int, inflightBytes int64) *Elevator {
	if threads <= 0 {
		threads = 4
	}
	if inflightBytes <= 0 {
		inflightBytes = 32 << 20
	}
	e := &Elevator{
		reqs:    make(chan elevReq, 4*threads),
		quit:    make(chan struct{}),
		cap:     inflightBytes,
		pending: make(map[elevKey]*flight),
	}
	e.wg.Add(threads)
	for i := 0; i < threads; i++ {
		go e.worker()
	}
	return e
}

func (e *Elevator) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case req := <-e.reqs:
			e.depth.Add(-1)
			// Errors are swallowed: the consumer's synchronous read will
			// surface them with full context if they are real.
			_ = req.r.PrefetchStripe(req.stripe, req.cols)
			e.decoded.Add(1)
			e.finish(req)
		}
	}
}

func (e *Elevator) finish(req elevReq) {
	e.inflight.Add(-req.est)
	e.mu.Lock()
	fl := e.pending[req.key]
	delete(e.pending, req.key)
	e.mu.Unlock()
	if fl != nil {
		for _, done := range fl.dones {
			done()
		}
	}
}

// Prefetch implements orc.Prefetcher. A request identical to one already
// in flight — same file generation, stripe and column set — joins it
// (single-flight): the decode happens once, every joiner's done callback
// fires when it lands, and the call reports true. The request is dropped
// (returning false, done never called) when the elevator is saturated.
func (e *Elevator) Prefetch(r *orc.Reader, stripe int, cols []int, done func()) bool {
	if e.closed.Load() {
		return false
	}
	est := 2 * r.StripeEncodedBytes(stripe, cols) // encoded + decoded copies
	key := elevKey{r.FileID(), stripe, colsetKey(cols)}
	e.mu.Lock()
	if fl, dup := e.pending[key]; dup {
		if done != nil {
			fl.dones = append(fl.dones, done)
		}
		e.mu.Unlock()
		e.coalesced.Add(1)
		return true
	}
	if e.inflight.Load()+est > e.cap {
		e.mu.Unlock()
		e.dropped.Add(1)
		return false
	}
	// Register the flight and enqueue while still holding the lock: a
	// worker cannot finish (and unregister) the request before its flight
	// record exists, and no duplicate can slip between the two steps.
	fl := &flight{}
	if done != nil {
		fl.dones = append(fl.dones, done)
	}
	select {
	case e.reqs <- elevReq{r: r, stripe: stripe, cols: cols, est: est, key: key}:
		e.pending[key] = fl
		e.inflight.Add(est)
		e.mu.Unlock()
		e.enqueued.Add(1)
		d := e.depth.Add(1)
		for {
			m := e.maxDepth.Load()
			if d <= m || e.maxDepth.CompareAndSwap(m, d) {
				break
			}
		}
		return true
	default:
		e.mu.Unlock()
		e.dropped.Add(1)
		return false
	}
}

// Close stops the workers and abandons queued requests, invoking their
// done callbacks so callers' accounting is released.
func (e *Elevator) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	close(e.quit)
	e.wg.Wait()
	for {
		select {
		case req := <-e.reqs:
			e.depth.Add(-1)
			e.abandoned.Add(1)
			e.finish(req)
		default:
			return
		}
	}
}

// Stats returns elevator counters.
func (e *Elevator) Stats() ElevatorStats {
	return ElevatorStats{
		Enqueued:      e.enqueued.Load(),
		Decoded:       e.decoded.Load(),
		Coalesced:     e.coalesced.Load(),
		Dropped:       e.dropped.Load(),
		Abandoned:     e.abandoned.Load(),
		MaxDepth:      e.maxDepth.Load(),
		InflightBytes: e.inflight.Load(),
	}
}
