// Package llap implements Live Long and Process (paper §5.1): persistent
// multi-threaded query executors and a multi-tenant in-memory cache.
//
//   - The data cache is addressed by (FileID, stripe, column) — the
//     row-group/column-group chunk addressing of paper Figure 5 — and uses
//     an LRFU (Least Recently/Frequently Used) eviction policy tuned for
//     analytic scan patterns. FileID-based addressing makes the cache an
//     MVCC view: ACID controls visibility at the file level, so new data
//     never invalidates cached chunks of immutable files.
//   - The metadata cache keeps parsed file footers so planning and stripe
//     selection avoid re-reading file tails.
//   - Daemons provide a fixed pool of persistent executors; query
//     fragments borrow executors without container start-up cost.
package llap

import (
	"container/list"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dfs"
	"repro/internal/orc"
)

// chunkKey addresses one column chunk of one file generation.
type chunkKey struct {
	fileID uint64
	stripe int
	col    int
	off    int64
}

type chunkEntry struct {
	key  chunkKey
	data []byte
	crf  float64 // combined recency-frequency value (LRFU)
	last int64   // logical time of last access
}

// CacheStats counts cache effectiveness.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	UsedBytes int64
}

// Cache is the LLAP data cache: an orc.ChunkReader that fills itself on
// miss and serves immutable chunks on hit.
type Cache struct {
	mu       sync.Mutex
	fs       *dfs.FS
	capacity int64
	used     int64
	entries  map[chunkKey]*chunkEntry
	clock    int64
	lambda   float64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewCache creates a cache with the given capacity in bytes.
func NewCache(fs *dfs.FS, capacity int64) *Cache {
	return &Cache{
		fs:       fs,
		capacity: capacity,
		entries:  make(map[chunkKey]*chunkEntry),
		lambda:   0.01, // LRFU decay: closer to LFU for scan-heavy loads
	}
}

// ReadChunk implements orc.ChunkReader with caching.
func (c *Cache) ReadChunk(path string, fileID uint64, stripe, col int, off, length int64) ([]byte, error) {
	key := chunkKey{fileID: fileID, stripe: stripe, col: col, off: off}
	c.mu.Lock()
	c.clock++
	now := c.clock
	if e, ok := c.entries[key]; ok {
		e.crf = 1 + e.crf*math.Pow(2, -c.lambda*float64(now-e.last))
		e.last = now
		data := e.data
		c.mu.Unlock()
		c.hits.Add(1)
		// Decoders treat encoded chunks as immutable; copying here would
		// tax every hit to defend against a write that never happens (the
		// -tags stress deep-freeze build verifies the contract).
		//lint:ignore no-alias-escape encoded chunks are immutable by contract; per-hit copies would defeat the cache
		return data, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)
	data, err := c.fs.ReadAt(path, off, length)
	if err != nil {
		return nil, err
	}
	c.insert(key, data)
	return data, nil
}

func (c *Cache) insert(key chunkKey, data []byte) {
	size := int64(len(data))
	if size > c.capacity {
		return // larger than the cache: serve uncached
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	for c.used+size > c.capacity {
		c.evictOneLocked()
	}
	c.entries[key] = &chunkEntry{key: key, data: data, crf: 1, last: c.clock}
	c.used += size
}

// evictOneLocked removes the entry with the lowest LRFU value.
func (c *Cache) evictOneLocked() {
	var victim *chunkEntry
	lowest := math.Inf(1)
	now := c.clock
	for _, e := range c.entries {
		v := e.crf * math.Pow(2, -c.lambda*float64(now-e.last))
		if v < lowest {
			lowest = v
			victim = e
		}
	}
	if victim == nil {
		return
	}
	delete(c.entries, victim.key)
	c.used -= int64(len(victim.data))
	c.evictions.Add(1)
}

// Stats returns cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	used := c.used
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		UsedBytes: used,
	}
}

// MetadataCache keeps parsed ORC readers (file footers, stripe statistics)
// keyed by path and validated by FileID, so repeated scans skip footer
// reads entirely — including for files whose data was never cached
// (paper §5.1: metadata is cached even for data that was never in cache).
// Capacity is an entry count with LRU eviction: footers are small and
// uniform, so recency matters more than byte-accurate charging here.
type MetadataCache struct {
	mu       sync.Mutex
	capacity int
	readers  map[string]*list.Element // of metaEntry
	lru      list.List                // front = most recent
	hits     atomic.Int64
	misses   atomic.Int64
	evicted  atomic.Int64
}

type metaEntry struct {
	path   string
	reader *orc.Reader
}

// DefaultMetadataCapacity bounds the footer cache when no explicit size is
// given; at a few KB per parsed footer this stays well under a megabyte.
const DefaultMetadataCapacity = 1024

// MetaStats counts metadata-cache effectiveness, reported alongside
// CacheStats.
type MetaStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int
}

// NewMetadataCache returns an empty metadata cache with the default
// capacity.
func NewMetadataCache() *MetadataCache { return NewMetadataCacheSize(DefaultMetadataCapacity) }

// NewMetadataCacheSize returns an empty metadata cache holding at most
// capacity parsed footers.
func NewMetadataCacheSize(capacity int) *MetadataCache {
	if capacity <= 0 {
		capacity = DefaultMetadataCapacity
	}
	return &MetadataCache{capacity: capacity, readers: make(map[string]*list.Element)}
}

// Reader returns a cached ORC reader for the file, reopening when the file
// generation changed. The returned reader is shared across queries; callers
// that need query-local cache wiring must use orc.Reader.WithSources rather
// than mutating it.
func (m *MetadataCache) Reader(fs *dfs.FS, path string) (*orc.Reader, error) {
	st, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if el, ok := m.readers[path]; ok {
		if r := el.Value.(*metaEntry).reader; r.FileID() == st.FileID {
			m.lru.MoveToFront(el)
			m.mu.Unlock()
			m.hits.Add(1)
			return r, nil
		}
		// Stale generation: drop so the slot is refilled below.
		m.lru.Remove(el)
		delete(m.readers, path)
	}
	m.mu.Unlock()
	m.misses.Add(1)
	r, err := orc.NewReader(fs, path)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if el, ok := m.readers[path]; ok {
		// Lost a race with a concurrent fill; keep the resident entry.
		m.lru.MoveToFront(el)
		r = el.Value.(*metaEntry).reader
	} else {
		m.readers[path] = m.lru.PushFront(&metaEntry{path: path, reader: r})
		for m.lru.Len() > m.capacity {
			back := m.lru.Back()
			delete(m.readers, back.Value.(*metaEntry).path)
			m.lru.Remove(back)
			m.evicted.Add(1)
		}
	}
	m.mu.Unlock()
	return r, nil
}

// Invalidate drops the cached footer for a path, e.g. after the path was
// overwritten or removed outside the FileID-versioned write path.
func (m *MetadataCache) Invalidate(path string) {
	m.mu.Lock()
	if el, ok := m.readers[path]; ok {
		m.lru.Remove(el)
		delete(m.readers, path)
	}
	m.mu.Unlock()
}

// InvalidatePrefix drops every cached footer under a path prefix, used when
// a table or partition directory is dropped or truncated.
func (m *MetadataCache) InvalidatePrefix(prefix string) {
	m.mu.Lock()
	for path, el := range m.readers {
		if strings.HasPrefix(path, prefix) {
			m.lru.Remove(el)
			delete(m.readers, path)
		}
	}
	m.mu.Unlock()
}

// Stats returns metadata-cache counters.
func (m *MetadataCache) Stats() MetaStats {
	m.mu.Lock()
	n := m.lru.Len()
	m.mu.Unlock()
	return MetaStats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Evictions: m.evicted.Load(),
		Entries:   n,
		Capacity:  m.capacity,
	}
}

// Hits reports metadata cache hits (for tests).
func (m *MetadataCache) Hits() int64 { return m.hits.Load() }

// Daemons is the pool of persistent executors. Executors are acquired per
// query fragment; there is no per-task start-up cost, unlike YARN
// containers.
type Daemons struct {
	slots chan struct{}
}

// NewDaemons starts a pool with the given total executor count.
func NewDaemons(executors int) *Daemons {
	d := &Daemons{slots: make(chan struct{}, executors)}
	for i := 0; i < executors; i++ {
		d.slots <- struct{}{}
	}
	return d
}

// Acquire takes n executors, blocking until available; the returned
// function releases them.
func (d *Daemons) Acquire(n int) (release func()) {
	if n > cap(d.slots) {
		n = cap(d.slots)
	}
	for i := 0; i < n; i++ {
		<-d.slots
	}
	return func() {
		for i := 0; i < n; i++ {
			d.slots <- struct{}{}
		}
	}
}

// TryAcquire takes n executors without blocking.
func (d *Daemons) TryAcquire(n int) (release func(), ok bool) {
	if n > cap(d.slots) {
		n = cap(d.slots)
	}
	taken := 0
	for taken < n {
		select {
		case <-d.slots:
			taken++
		default:
			for i := 0; i < taken; i++ {
				d.slots <- struct{}{}
			}
			return nil, false
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			d.slots <- struct{}{}
		}
	}, true
}

// Executors returns the pool size.
func (d *Daemons) Executors() int { return cap(d.slots) }
