// Package vector implements the columnar batch representation used by the
// vectorized execution engine and the LLAP I/O elevator (paper §5.1): data is
// processed in fixed-size batches of column vectors, each a typed slice plus
// a null mask, with an optional selection vector identifying the live rows.
package vector

import (
	"math"

	"repro/internal/types"
)

// BatchSize is the default number of rows in a full batch.
const BatchSize = 1024

// Vector is a single column of values. Exactly one of I64, F64, Str is the
// backing store, chosen by the type kind:
//
//	I64: BOOLEAN (0/1), INT, BIGINT, DECIMAL (unscaled), DATE, TIMESTAMP, INTERVAL
//	F64: DOUBLE
//	Str: STRING
//
// Nulls[i] reports whether row i is NULL. A nil Nulls slice means
// "no nulls in this vector", which fast paths exploit.
type Vector struct {
	Type  types.T
	Nulls []bool
	I64   []int64
	F64   []float64
	Str   []string
}

// New returns a vector of the given type with capacity for n rows, length n.
func New(t types.T, n int) *Vector {
	v := &Vector{Type: t}
	switch t.Kind {
	case types.Float64:
		v.F64 = make([]float64, n)
	case types.String:
		v.Str = make([]string, n)
	default:
		v.I64 = make([]int64, n)
	}
	return v
}

// Len returns the number of physical rows in the vector.
func (v *Vector) Len() int {
	switch v.Type.Kind {
	case types.Float64:
		return len(v.F64)
	case types.String:
		return len(v.Str)
	default:
		return len(v.I64)
	}
}

// Resize sets the physical length to n, reallocating if needed.
func (v *Vector) Resize(n int) {
	switch v.Type.Kind {
	case types.Float64:
		if cap(v.F64) >= n {
			v.F64 = v.F64[:n]
		} else {
			nf := make([]float64, n)
			copy(nf, v.F64)
			v.F64 = nf
		}
	case types.String:
		if cap(v.Str) >= n {
			v.Str = v.Str[:n]
		} else {
			ns := make([]string, n)
			copy(ns, v.Str)
			v.Str = ns
		}
	default:
		if cap(v.I64) >= n {
			v.I64 = v.I64[:n]
		} else {
			ni := make([]int64, n)
			copy(ni, v.I64)
			v.I64 = ni
		}
	}
	if v.Nulls != nil {
		if cap(v.Nulls) >= n {
			old := len(v.Nulls)
			v.Nulls = v.Nulls[:n]
			for i := old; i < n; i++ {
				v.Nulls[i] = false
			}
		} else {
			nn := make([]bool, n)
			copy(nn, v.Nulls)
			v.Nulls = nn
		}
	}
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool { return v.Nulls != nil && v.Nulls[i] }

// SetNull marks row i as NULL, allocating the null mask on first use.
func (v *Vector) SetNull(i int) {
	if v.Nulls == nil {
		v.Nulls = make([]bool, v.Len())
	}
	v.Nulls[i] = true
}

// EqDatum reports whether row i equals d under key equality — the same
// relation Datum.Compare() == 0 yields — without materializing a Datum.
// The caller must have materialized d from a vector of this column's type
// (aggregation group keys are), so kinds and decimal scales already agree
// and the raw backing values compare directly. Float equality mirrors
// cmpFloat (!(a<b) && !(a>b)), under which NaN equals everything — the
// same treatment the sort and group paths give it.
func (v *Vector) EqDatum(i int, d types.Datum) bool {
	if null := v.IsNull(i); null || d.Null {
		return null == d.Null
	}
	switch v.Type.Kind {
	case types.Float64:
		a, b := v.F64[i], d.F
		return !(a < b) && !(a > b)
	case types.String:
		return v.Str[i] == d.S
	default:
		return v.I64[i] == d.I
	}
}

// Get materializes row i as a Datum. Not for hot loops.
func (v *Vector) Get(i int) types.Datum {
	if v.IsNull(i) {
		return types.NullOf(v.Type.Kind)
	}
	switch v.Type.Kind {
	case types.Float64:
		return types.NewDouble(v.F64[i])
	case types.String:
		return types.NewString(v.Str[i])
	case types.Decimal:
		return types.NewDecimal(v.I64[i], v.Type.Scale)
	default:
		return types.Datum{K: v.Type.Kind, I: v.I64[i]}
	}
}

// Set stores a Datum into row i. The datum must already have the vector's
// type (use types.Cast upstream).
func (v *Vector) Set(i int, d types.Datum) {
	if d.Null {
		v.SetNull(i)
		return
	}
	if v.Nulls != nil {
		v.Nulls[i] = false
	}
	switch v.Type.Kind {
	case types.Float64:
		v.F64[i] = d.Float()
	case types.String:
		v.Str[i] = d.S
	case types.Decimal:
		// Normalize to the vector's scale.
		ds := d.DecimalScale()
		switch {
		case d.K != types.Decimal:
			v.I64[i] = d.I * types.Pow10(v.Type.Scale)
		case ds == v.Type.Scale:
			v.I64[i] = d.I
		case ds < v.Type.Scale:
			v.I64[i] = d.I * types.Pow10(v.Type.Scale-ds)
		default:
			v.I64[i] = d.I / types.Pow10(ds-v.Type.Scale)
		}
	default:
		v.I64[i] = d.I
	}
}

// CopyRow copies row src of from into row dst of v. Types must match.
func (v *Vector) CopyRow(dst int, from *Vector, src int) {
	if from.IsNull(src) {
		v.SetNull(dst)
		return
	}
	if v.Nulls != nil {
		v.Nulls[dst] = false
	}
	switch v.Type.Kind {
	case types.Float64:
		v.F64[dst] = from.F64[src]
	case types.String:
		v.Str[dst] = from.Str[src]
	default:
		v.I64[dst] = from.I64[src]
	}
}

// CopyRows copies n consecutive physical rows starting at src of from into
// consecutive rows starting at dst of v — the multi-row form of CopyRow for
// gather batching, one slice copy per column instead of one call per row.
// Types must match.
func (v *Vector) CopyRows(dst int, from *Vector, src, n int) {
	switch v.Type.Kind {
	case types.Float64:
		copy(v.F64[dst:dst+n], from.F64[src:src+n])
	case types.String:
		copy(v.Str[dst:dst+n], from.Str[src:src+n])
	default:
		copy(v.I64[dst:dst+n], from.I64[src:src+n])
	}
	if from.Nulls != nil {
		if v.Nulls == nil {
			v.Nulls = make([]bool, v.Len())
		}
		copy(v.Nulls[dst:dst+n], from.Nulls[src:src+n])
	} else if v.Nulls != nil {
		for i := dst; i < dst+n; i++ {
			v.Nulls[i] = false
		}
	}
}

// Hashing constants for the column-at-a-time key hashing used by hash
// joins and hash aggregation. Combined hashes follow FNV-1a mixing:
// h = h*HashPrime ^ columnHash.
const (
	// HashSeed is the initial value for a combined multi-column key hash.
	HashSeed uint64 = 14695981039346656037
	// HashPrime is the FNV-1a multiplier used to combine column hashes.
	HashPrime uint64 = 1099511628211
	// NullHash is the hash of a NULL value in any column.
	NullHash uint64 = 0x9e3779b97f4a7c15
)

// mix64 is the splitmix64 finalizer, used to spread raw values over the
// whole 64-bit space before FNV combination.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashAt returns the hash of physical row r. Values of different numeric
// kinds that compare equal hash equal (INT 3, DOUBLE 3.0 and DECIMAL 3.00
// all hash as integer 3), mirroring types.Datum.Hash semantics without
// materializing a Datum.
func (v *Vector) HashAt(r int) uint64 {
	if v.Nulls != nil && v.Nulls[r] {
		return NullHash
	}
	switch v.Type.Kind {
	case types.String:
		h := HashSeed
		s := v.Str[r]
		for j := 0; j < len(s); j++ {
			h = (h ^ uint64(s[j])) * HashPrime
		}
		return mix64(h ^ 1)
	case types.Float64:
		return hashNumeric(v.F64[r])
	case types.Decimal:
		return hashNumeric(float64(v.I64[r]) / float64(types.Pow10(v.Type.Scale)))
	default:
		return mix64(uint64(v.I64[r]))
	}
}

func hashNumeric(f float64) uint64 {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return mix64(uint64(int64(f)))
	}
	return mix64(math.Float64bits(f))
}

// HashInto folds each live row's hash into dst, one slot per live row:
// dst[i] = dst[i]*HashPrime ^ hash(row i). Callers seed dst (HashSeed for
// the first column, or a raw zero to extract per-column hashes) and call
// HashInto once per key column, hashing column-at-a-time instead of
// materializing per-row datums.
func (v *Vector) HashInto(sel []int, n int, dst []uint64) {
	if sel != nil {
		for i := 0; i < n; i++ {
			dst[i] = dst[i]*HashPrime ^ v.HashAt(sel[i])
		}
		return
	}
	for i := 0; i < n; i++ {
		dst[i] = dst[i]*HashPrime ^ v.HashAt(i)
	}
}

// Batch is a set of equal-length column vectors plus an optional selection
// vector. When Sel is non-nil, only rows Sel[0:N] are live; otherwise rows
// 0..N-1 are live.
type Batch struct {
	Cols []*Vector
	Sel  []int
	N    int
}

// NewBatch allocates a batch with one vector per type, each sized to cap rows.
func NewBatch(ts []types.T, capacity int) *Batch {
	cols := make([]*Vector, len(ts))
	for i, t := range ts {
		cols[i] = New(t, capacity)
	}
	return &Batch{Cols: cols}
}

// Capacity returns the physical row capacity of the batch.
func (b *Batch) Capacity() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// RowIdx maps a live-row ordinal to a physical row index.
func (b *Batch) RowIdx(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return i
}

// Row materializes live row i as a slice of datums. Not for hot loops.
func (b *Batch) Row(i int) []types.Datum {
	r := b.RowIdx(i)
	out := make([]types.Datum, len(b.Cols))
	for c, col := range b.Cols {
		out[c] = col.Get(r)
	}
	return out
}

// Compact rewrites the batch so the live rows become physical rows 0..N-1
// and drops the selection vector. This simplifies operators that need dense
// input (e.g. shuffle writers).
func (b *Batch) Compact() {
	if b.Sel == nil {
		return
	}
	for _, col := range b.Cols {
		switch col.Type.Kind {
		case types.Float64:
			for i := 0; i < b.N; i++ {
				col.F64[i] = col.F64[b.Sel[i]]
			}
		case types.String:
			for i := 0; i < b.N; i++ {
				col.Str[i] = col.Str[b.Sel[i]]
			}
		default:
			for i := 0; i < b.N; i++ {
				col.I64[i] = col.I64[b.Sel[i]]
			}
		}
		if col.Nulls != nil {
			for i := 0; i < b.N; i++ {
				col.Nulls[i] = col.Nulls[b.Sel[i]]
			}
		}
	}
	b.Sel = nil
}

// Types returns the column types of the batch.
func (b *Batch) Types() []types.T {
	ts := make([]types.T, len(b.Cols))
	for i, c := range b.Cols {
		ts[i] = c.Type
	}
	return ts
}
