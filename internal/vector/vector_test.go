package vector

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestVectorSetGetRoundTrip(t *testing.T) {
	cases := []struct {
		typ types.T
		d   types.Datum
	}{
		{types.TInt, types.NewInt(42)},
		{types.TBigint, types.NewBigint(-7)},
		{types.TDouble, types.NewDouble(2.5)},
		{types.TString, types.NewString("hello")},
		{types.TBool, types.NewBool(true)},
		{types.TDate, types.NewDate(17000)},
		{types.TDecimal(7, 2), types.NewDecimal(1234, 2)},
	}
	for _, c := range cases {
		v := New(c.typ, 4)
		v.Set(2, c.d)
		got := v.Get(2)
		if got.Compare(c.d) != 0 {
			t.Errorf("%s: got %v want %v", c.typ, got, c.d)
		}
	}
}

func TestVectorNulls(t *testing.T) {
	v := New(types.TInt, 3)
	if v.IsNull(1) {
		t.Error("fresh vector should have no nulls")
	}
	v.Set(1, types.NullOf(types.Int32))
	if !v.IsNull(1) || v.IsNull(0) {
		t.Error("null mask wrong after SetNull")
	}
	v.Set(1, types.NewInt(9))
	if v.IsNull(1) || v.Get(1).I != 9 {
		t.Error("overwriting a null should clear the mask")
	}
}

func TestVectorDecimalRescale(t *testing.T) {
	v := New(types.TDecimal(10, 3), 1)
	v.Set(0, types.NewDecimal(15, 1)) // 1.5 -> 1.500
	if v.I64[0] != 1500 {
		t.Errorf("rescale up: %d", v.I64[0])
	}
	v.Set(0, types.NewBigint(2)) // 2 -> 2.000
	if v.I64[0] != 2000 {
		t.Errorf("int into decimal: %d", v.I64[0])
	}
}

func TestVectorResize(t *testing.T) {
	v := New(types.TString, 2)
	v.Set(0, types.NewString("a"))
	v.SetNull(1)
	v.Resize(5)
	if v.Len() != 5 || v.Str[0] != "a" || !v.IsNull(1) || v.IsNull(4) {
		t.Errorf("resize lost data: len=%d", v.Len())
	}
	v.Resize(1)
	if v.Len() != 1 || v.Str[0] != "a" {
		t.Error("shrink lost data")
	}
}

func TestBatchSelectionAndCompact(t *testing.T) {
	b := NewBatch([]types.T{types.TInt, types.TString}, 8)
	for i := 0; i < 8; i++ {
		b.Cols[0].Set(i, types.NewInt(int32(i)))
		b.Cols[1].Set(i, types.NewString(string(rune('a'+i))))
	}
	b.Sel = []int{1, 3, 5}
	b.N = 3
	row := b.Row(1)
	if row[0].I != 3 || row[1].S != "d" {
		t.Errorf("Row(1) = %v", row)
	}
	b.Compact()
	if b.Sel != nil || b.N != 3 {
		t.Fatal("compact did not clear selection")
	}
	if b.Cols[0].I64[0] != 1 || b.Cols[0].I64[1] != 3 || b.Cols[0].I64[2] != 5 {
		t.Errorf("compact ints: %v", b.Cols[0].I64[:3])
	}
	if b.Cols[1].Str[2] != "f" {
		t.Errorf("compact strings: %v", b.Cols[1].Str[:3])
	}
}

func TestBatchCompactWithNulls(t *testing.T) {
	b := NewBatch([]types.T{types.TInt}, 4)
	b.Cols[0].Set(0, types.NewInt(0))
	b.Cols[0].SetNull(1)
	b.Cols[0].Set(2, types.NewInt(2))
	b.Cols[0].SetNull(3)
	b.Sel = []int{1, 2}
	b.N = 2
	b.Compact()
	if !b.Cols[0].IsNull(0) || b.Cols[0].IsNull(1) || b.Cols[0].I64[1] != 2 {
		t.Error("null mask not compacted correctly")
	}
}

func TestCopyRow(t *testing.T) {
	src := New(types.TString, 2)
	src.Set(0, types.NewString("x"))
	src.SetNull(1)
	dst := New(types.TString, 2)
	dst.CopyRow(0, src, 1)
	dst.CopyRow(1, src, 0)
	if !dst.IsNull(0) || dst.Str[1] != "x" {
		t.Error("CopyRow wrong")
	}
}

// Property: for any int64 values, storing then reading through the Datum
// interface is the identity.
func TestQuickBigintRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		v := New(types.TBigint, len(vals))
		for i, x := range vals {
			v.Set(i, types.NewBigint(x))
		}
		for i, x := range vals {
			if v.Get(i).I != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
