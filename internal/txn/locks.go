package txn

import (
	"fmt"
	"sync"
	"time"
)

// LockMode is the strength of a lock request.
type LockMode uint8

// Lock modes: common operations take shared locks; only reader/writer
// disrupting operations (DROP TABLE, DROP PARTITION) take exclusive locks
// (paper §3.2).
const (
	LockShared LockMode = iota
	LockExclusive
)

// LockRequest names a lockable scope. For partitioned tables the
// granularity is a partition; for unpartitioned tables the whole table
// (empty Partition).
type LockRequest struct {
	Table     string
	Partition string
	Mode      LockMode
}

type lockKey struct {
	table     string
	partition string
}

type lockState struct {
	sharedBy  map[int64]int // txn -> count
	exclusive int64         // txn holding exclusive, 0 if none
}

// LockManager grants shared/exclusive locks with blocking waits.
type LockManager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[lockKey]*lockState
	held  map[int64][]lockKey
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	lm := &LockManager{
		locks: make(map[lockKey]*lockState),
		held:  make(map[int64][]lockKey),
	}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// Acquire blocks until every requested lock is granted or the timeout
// elapses. Requests are granted atomically (all or nothing) to avoid
// deadlocks between multi-scope requests.
func (lm *LockManager) Acquire(txnID int64, reqs []LockRequest, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for {
		if lm.grantableLocked(txnID, reqs) {
			for _, r := range reqs {
				lm.grantLocked(txnID, r)
			}
			return nil
		}
		if timeout >= 0 && time.Now().After(deadline) {
			return fmt.Errorf("txn: lock timeout for txn %d", txnID)
		}
		// Wake periodically so the deadline is honored even without signals.
		waker := time.AfterFunc(10*time.Millisecond, lm.cond.Broadcast)
		lm.cond.Wait()
		waker.Stop()
	}
}

// TryAcquire attempts the grant without blocking.
func (lm *LockManager) TryAcquire(txnID int64, reqs []LockRequest) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if !lm.grantableLocked(txnID, reqs) {
		return false
	}
	for _, r := range reqs {
		lm.grantLocked(txnID, r)
	}
	return true
}

func (lm *LockManager) grantableLocked(txnID int64, reqs []LockRequest) bool {
	for _, r := range reqs {
		k := lockKey{r.Table, r.Partition}
		if st := lm.locks[k]; st != nil {
			if st.exclusive != 0 && st.exclusive != txnID {
				return false
			}
			if r.Mode == LockExclusive {
				for holder := range st.sharedBy {
					if holder != txnID {
						return false
					}
				}
			}
		}
		// A table-level exclusive also conflicts with partition locks and
		// vice versa: check the enclosing table scope.
		if r.Partition != "" {
			if tst := lm.locks[lockKey{r.Table, ""}]; tst != nil {
				if tst.exclusive != 0 && tst.exclusive != txnID {
					return false
				}
				if r.Mode == LockExclusive {
					for holder := range tst.sharedBy {
						if holder != txnID {
							return false
						}
					}
				}
			}
		} else if r.Mode == LockExclusive {
			for other, ost := range lm.locks {
				if other.table != r.Table || other.partition == "" {
					continue
				}
				if ost.exclusive != 0 && ost.exclusive != txnID {
					return false
				}
				for holder := range ost.sharedBy {
					if holder != txnID {
						return false
					}
				}
			}
		}
	}
	return true
}

func (lm *LockManager) grantLocked(txnID int64, r LockRequest) {
	k := lockKey{r.Table, r.Partition}
	st := lm.locks[k]
	if st == nil {
		st = &lockState{sharedBy: make(map[int64]int)}
		lm.locks[k] = st
	}
	if r.Mode == LockExclusive {
		st.exclusive = txnID
	} else {
		st.sharedBy[txnID]++
	}
	lm.held[txnID] = append(lm.held[txnID], k)
}

// releaseAll frees every lock held by the transaction.
func (lm *LockManager) releaseAll(txnID int64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, k := range lm.held[txnID] {
		st := lm.locks[k]
		if st == nil {
			continue
		}
		if st.exclusive == txnID {
			st.exclusive = 0
		}
		if n := st.sharedBy[txnID]; n > 1 {
			st.sharedBy[txnID] = n - 1
		} else {
			delete(st.sharedBy, txnID)
		}
		if st.exclusive == 0 && len(st.sharedBy) == 0 {
			delete(lm.locks, k)
		}
	}
	delete(lm.held, txnID)
	lm.cond.Broadcast()
}

// Release frees every lock held by the transaction (public entry point for
// read-only queries that lock without a full transaction lifecycle).
func (lm *LockManager) Release(txnID int64) { lm.releaseAll(txnID) }
