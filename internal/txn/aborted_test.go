package txn

import "testing"

// TestValidWriteIdsAbortedSubset checks that reader and compactor write-id
// lists single out aborted writes from still-open ones: both are invalid,
// but only aborted ids land in the Aborted set.
func TestValidWriteIdsAbortedSubset(t *testing.T) {
	m := NewManager()

	committed := m.Begin()
	wCommitted, _ := m.AllocateWriteId(committed, "t")
	if err := m.Commit(committed); err != nil {
		t.Fatal(err)
	}

	aborted := m.Begin()
	wAborted, _ := m.AllocateWriteId(aborted, "t")
	if err := m.Abort(aborted); err != nil {
		t.Fatal(err)
	}

	open := m.Begin()
	wOpen, _ := m.AllocateWriteId(open, "t")

	v := m.GetValidWriteIds("t", m.GetSnapshot())
	if !v.Valid(wCommitted) {
		t.Errorf("committed write %d not valid", wCommitted)
	}
	if v.Valid(wAborted) || !v.AbortedWrite(wAborted) {
		t.Errorf("aborted write %d: valid=%v aborted=%v, want invalid+aborted", wAborted, v.Valid(wAborted), v.AbortedWrite(wAborted))
	}
	if v.Valid(wOpen) || v.AbortedWrite(wOpen) {
		t.Errorf("open write %d: valid=%v aborted=%v, want invalid+not-aborted", wOpen, v.Valid(wOpen), v.AbortedWrite(wOpen))
	}

	// A transaction aborting after the snapshot was taken is still marked
	// aborted: aborts are final, the data was never visible.
	lateAbort := m.Begin()
	wLate, _ := m.AllocateWriteId(lateAbort, "t")
	snap := m.GetSnapshot()
	if err := m.Abort(lateAbort); err != nil {
		t.Fatal(err)
	}
	v = m.GetValidWriteIds("t", snap)
	if v.Valid(wLate) || !v.AbortedWrite(wLate) {
		t.Errorf("late-aborted write %d: valid=%v aborted=%v", wLate, v.Valid(wLate), v.AbortedWrite(wLate))
	}

	// Compactor view: aborted ids are invalid+aborted, open ids bound the
	// high watermark.
	cv := m.CompactorValidWriteIds("t")
	if !cv.AbortedWrite(wAborted) {
		t.Errorf("compactor view misses aborted write %d", wAborted)
	}
	if cv.HighWater >= wOpen {
		t.Errorf("compactor high water %d reaches open write %d", cv.HighWater, wOpen)
	}
}
