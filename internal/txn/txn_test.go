package txn

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestTxnIdsMonotonic(t *testing.T) {
	m := NewManager()
	a, b, c := m.Begin(), m.Begin(), m.Begin()
	if !(a < b && b < c) {
		t.Errorf("txn ids not monotonic: %d %d %d", a, b, c)
	}
}

func TestWriteIdPerTableScoped(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	w1a, _ := m.AllocateWriteId(t1, "db.a")
	w2a, _ := m.AllocateWriteId(t2, "db.a")
	w1b, _ := m.AllocateWriteId(t1, "db.b")
	if w1a != 1 || w2a != 2 {
		t.Errorf("writeids on db.a: %d %d", w1a, w2a)
	}
	if w1b != 1 {
		t.Errorf("writeid on db.b should restart at 1, got %d", w1b)
	}
	// Same txn, same table: same WriteId.
	again, _ := m.AllocateWriteId(t1, "db.a")
	if again != w1a {
		t.Errorf("re-allocation changed writeid: %d vs %d", again, w1a)
	}
	if _, err := m.AllocateWriteId(999, "db.a"); err == nil {
		t.Error("allocation for unknown txn should fail")
	}
}

func TestSnapshotIsolationVisibility(t *testing.T) {
	m := NewManager()
	writer := m.Begin()
	w, _ := m.AllocateWriteId(writer, "db.t")

	// Snapshot taken while writer is open: writer's data invisible.
	snap := m.GetSnapshot()
	valid := m.GetValidWriteIds("db.t", snap)
	if valid.Valid(w) {
		t.Error("open txn's writeid should be invalid in concurrent snapshot")
	}

	m.Commit(writer)
	// Old snapshot still must not see it (repeatable snapshot).
	valid = m.GetValidWriteIds("db.t", snap)
	if valid.Valid(w) {
		t.Error("snapshot taken before commit must not see the write")
	}
	// Fresh snapshot sees it.
	valid = m.GetValidWriteIds("db.t", m.GetSnapshot())
	if !valid.Valid(w) {
		t.Error("fresh snapshot should see committed write")
	}
}

func TestAbortedWritesNeverVisible(t *testing.T) {
	m := NewManager()
	bad := m.Begin()
	w, _ := m.AllocateWriteId(bad, "db.t")
	m.Abort(bad)
	valid := m.GetValidWriteIds("db.t", m.GetSnapshot())
	if valid.Valid(w) {
		t.Error("aborted write visible")
	}
	// High watermark still advances past the aborted id.
	if valid.HighWater != w {
		t.Errorf("high water %d, want %d", valid.HighWater, w)
	}
}

func TestFutureWritesInvisible(t *testing.T) {
	m := NewManager()
	snap := m.GetSnapshot()
	later := m.Begin()
	w, _ := m.AllocateWriteId(later, "db.t")
	m.Commit(later)
	valid := m.GetValidWriteIds("db.t", snap)
	if valid.Valid(w) {
		t.Error("write from txn begun after snapshot is visible")
	}
}

func TestFirstCommitWins(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	m.AddWriteSet(t1, "db.t", "p=1", OpUpdate)
	m.AddWriteSet(t2, "db.t", "p=1", OpDelete)
	if err := m.Commit(t1); err != nil {
		t.Fatalf("first commit should win: %v", err)
	}
	err := m.Commit(t2)
	var conflict ErrConflict
	if !errors.As(err, &conflict) {
		t.Fatalf("second commit should conflict, got %v", err)
	}
	if st, _ := m.TxnStatus(t2); st != StatusAborted {
		t.Error("conflicting txn should be aborted")
	}
}

func TestInsertsNeverConflict(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	m.AddWriteSet(t1, "db.t", "p=1", OpInsert)
	m.AddWriteSet(t2, "db.t", "p=1", OpInsert)
	if err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(t2); err != nil {
		t.Errorf("concurrent inserts must not conflict: %v", err)
	}
}

func TestNoConflictDifferentPartitions(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	m.AddWriteSet(t1, "db.t", "p=1", OpUpdate)
	m.AddWriteSet(t2, "db.t", "p=2", OpUpdate)
	if err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(t2); err != nil {
		t.Errorf("updates to different partitions must not conflict: %v", err)
	}
}

func TestSerialUpdatesNoConflict(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	m.AddWriteSet(t1, "db.t", "", OpUpdate)
	m.Commit(t1)
	// t2 begins after t1 committed: no conflict.
	t2 := m.Begin()
	m.AddWriteSet(t2, "db.t", "", OpUpdate)
	if err := m.Commit(t2); err != nil {
		t.Errorf("serial updates should not conflict: %v", err)
	}
}

func TestCommitAbortStateMachine(t *testing.T) {
	m := NewManager()
	id := m.Begin()
	if err := m.Commit(id); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(id); err == nil {
		t.Error("double commit should fail")
	}
	if err := m.Abort(id); err == nil {
		t.Error("abort after commit should fail")
	}
	if err := m.Commit(12345); err == nil {
		t.Error("commit of unknown txn should fail")
	}
}

func TestCompactorValidWriteIdsBoundedByOpenTxn(t *testing.T) {
	m := NewManager()
	c1 := m.Begin()
	m.AllocateWriteId(c1, "db.t")
	m.Commit(c1) // writeid 1 committed
	open := m.Begin()
	m.AllocateWriteId(open, "db.t") // writeid 2 open
	c2 := m.Begin()
	m.AllocateWriteId(c2, "db.t")
	m.Commit(c2) // writeid 3 committed but above an open writeid

	v := m.CompactorValidWriteIds("db.t")
	if v.HighWater != 1 {
		t.Errorf("compactor high water %d, want 1 (bounded by open txn)", v.HighWater)
	}
	m.Commit(open)
	v = m.CompactorValidWriteIds("db.t")
	if v.HighWater != 3 {
		t.Errorf("after commit, compactor high water %d, want 3", v.HighWater)
	}
}

func TestSharedLocksCoexistExclusiveBlocks(t *testing.T) {
	lm := NewLockManager()
	if !lm.TryAcquire(1, []LockRequest{{Table: "t", Mode: LockShared}}) {
		t.Fatal("first shared lock")
	}
	if !lm.TryAcquire(2, []LockRequest{{Table: "t", Mode: LockShared}}) {
		t.Fatal("second shared lock should coexist")
	}
	if lm.TryAcquire(3, []LockRequest{{Table: "t", Mode: LockExclusive}}) {
		t.Fatal("exclusive should block while shared held")
	}
	lm.Release(1)
	lm.Release(2)
	if !lm.TryAcquire(3, []LockRequest{{Table: "t", Mode: LockExclusive}}) {
		t.Fatal("exclusive after releases")
	}
	if lm.TryAcquire(4, []LockRequest{{Table: "t", Mode: LockShared}}) {
		t.Fatal("shared should block while exclusive held")
	}
}

func TestPartitionVsTableLockInteraction(t *testing.T) {
	lm := NewLockManager()
	if !lm.TryAcquire(1, []LockRequest{{Table: "t", Partition: "p=1", Mode: LockShared}}) {
		t.Fatal("partition shared")
	}
	// DROP TABLE needs table-level exclusive: must conflict with the
	// partition reader.
	if lm.TryAcquire(2, []LockRequest{{Table: "t", Mode: LockExclusive}}) {
		t.Fatal("table exclusive must wait for partition locks")
	}
	// Another partition is still lockable.
	if !lm.TryAcquire(3, []LockRequest{{Table: "t", Partition: "p=2", Mode: LockExclusive}}) {
		t.Fatal("unrelated partition should be free")
	}
	lm.Release(1)
	lm.Release(3)
	if !lm.TryAcquire(2, []LockRequest{{Table: "t", Mode: LockExclusive}}) {
		t.Fatal("table exclusive after partition released")
	}
	// Partition shared under table exclusive must block.
	if lm.TryAcquire(4, []LockRequest{{Table: "t", Partition: "p=9", Mode: LockShared}}) {
		t.Fatal("partition lock must respect table exclusive")
	}
}

func TestBlockingAcquireWakesUp(t *testing.T) {
	lm := NewLockManager()
	lm.TryAcquire(1, []LockRequest{{Table: "t", Mode: LockExclusive}})
	done := make(chan error, 1)
	go func() {
		done <- lm.Acquire(2, []LockRequest{{Table: "t", Mode: LockShared}}, 2*time.Second)
	}()
	time.Sleep(20 * time.Millisecond)
	lm.Release(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked acquire should succeed after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("acquire did not wake up")
	}
}

func TestAcquireTimeout(t *testing.T) {
	lm := NewLockManager()
	lm.TryAcquire(1, []LockRequest{{Table: "t", Mode: LockExclusive}})
	err := lm.Acquire(2, []LockRequest{{Table: "t", Mode: LockShared}}, 50*time.Millisecond)
	if err == nil {
		t.Fatal("acquire should time out")
	}
}

func TestConcurrentWritersExactlyOneWins(t *testing.T) {
	m := NewManager()
	const writers = 8
	var wg sync.WaitGroup
	results := make([]error, writers)
	ids := make([]int64, writers)
	for i := 0; i < writers; i++ {
		ids[i] = m.Begin()
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.AddWriteSet(ids[i], "db.t", "row-scope", OpUpdate)
			results[i] = m.Commit(ids[i])
		}(i)
	}
	wg.Wait()
	wins := 0
	for _, err := range results {
		if err == nil {
			wins++
		} else {
			var c ErrConflict
			if !errors.As(err, &c) {
				t.Errorf("unexpected error: %v", err)
			}
		}
	}
	if wins != 1 {
		t.Errorf("%d winners, want exactly 1", wins)
	}
}

func TestCommitReleasesLocks(t *testing.T) {
	m := NewManager()
	id := m.Begin()
	m.Locks().TryAcquire(id, []LockRequest{{Table: "t", Mode: LockExclusive}})
	m.Commit(id)
	if !m.Locks().TryAcquire(m.Begin(), []LockRequest{{Table: "t", Mode: LockExclusive}}) {
		t.Error("locks not released at commit")
	}
}
