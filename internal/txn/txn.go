// Package txn implements the Hive transaction manager (paper §3.2): global
// TxnIds, per-table WriteIds, Snapshot Isolation via transaction lists,
// shared/exclusive locking at partition granularity, and optimistic
// first-commit-wins conflict resolution for update/delete write sets.
//
// In Hive this state lives in the Metastore RDBMS; here the manager is an
// in-process component that the metastore composes.
package txn

import (
	"fmt"
	"sort"
	"sync"
)

// Status of a transaction.
type Status uint8

// Transaction states.
const (
	StatusOpen Status = iota
	StatusCommitted
	StatusAborted
)

// OpKind distinguishes write-set entries for conflict detection: only
// updates and deletes conflict with each other; plain inserts never do.
type OpKind uint8

// Write-set operation kinds.
const (
	OpInsert OpKind = iota
	OpUpdate
	OpDelete
)

// writeSetEntry records that a transaction updated/deleted within a
// (table, partition) scope.
type writeSetEntry struct {
	table     string
	partition string
	kind      OpKind
}

type txnState struct {
	id       int64
	status   Status
	writeIds map[string]int64 // table -> allocated WriteId
	writeSet []writeSetEntry
	// commitSeq is a logical clock stamped at commit, used to decide
	// "committed after I began" during conflict detection.
	commitSeq int64
	beginSeq  int64
}

// writeRecord maps an allocated WriteId back to its transaction.
type writeRecord struct {
	writeID int64
	txnID   int64
}

// Snapshot is the logical snapshot a query reads under: the highest
// allocated TxnId at snapshot time (high watermark) plus the set of open
// and aborted transactions at or below it (paper §3.2).
type Snapshot struct {
	HighWater int64
	Invalid   map[int64]bool // open or aborted TxnIds <= HighWater
}

// ValidWriteIds is the per-table projection of a Snapshot: readers skip any
// row whose WriteId exceeds the high watermark or belongs to the invalid
// set. Keeping per-table lists keeps reader state small even when many
// transactions are open system-wide (paper §3.2).
type ValidWriteIds struct {
	Table     string
	HighWater int64
	Invalid   map[int64]bool
	// Aborted marks the subset of Invalid whose transactions have aborted.
	// An abort is final, so these write ids are permanently dead — unlike
	// still-open ids, which may yet commit. Readers use the distinction for
	// base-file selection: compaction excludes aborted data, so a compacted
	// base whose watermark only skips over aborted ids is safe to read,
	// while one covering a still-open (or invisible-but-committed) write is
	// not. Delete-delta loading prunes aborted deleters the same way.
	Aborted map[int64]bool
}

// Valid reports whether a row stamped with writeID is visible.
func (v ValidWriteIds) Valid(writeID int64) bool {
	if writeID > v.HighWater {
		return false
	}
	return !v.Invalid[writeID]
}

// AbortedWrite reports whether writeID belongs to an aborted transaction —
// permanently invisible, as opposed to merely invisible to this snapshot.
func (v ValidWriteIds) AbortedWrite(writeID int64) bool {
	return v.Aborted[writeID]
}

// ErrConflict is returned by Commit when first-commit-wins resolution
// aborts the transaction.
type ErrConflict struct {
	Txn       int64
	Table     string
	Partition string
}

func (e ErrConflict) Error() string {
	return fmt.Sprintf("txn %d: write-write conflict on %s/%s (first commit wins)", e.Txn, e.Table, e.Partition)
}

// Manager allocates transaction and write identifiers and tracks state.
type Manager struct {
	mu          sync.Mutex
	nextTxn     int64
	nextSeq     int64
	txns        map[int64]*txnState
	nextWriteID map[string]int64
	tableWrites map[string][]writeRecord
	committed   []*txnState // committed txns with non-empty write sets
	locks       *LockManager
}

// NewManager returns an empty transaction manager.
func NewManager() *Manager {
	return &Manager{
		txns:        make(map[int64]*txnState),
		nextWriteID: make(map[string]int64),
		tableWrites: make(map[string][]writeRecord),
		locks:       NewLockManager(),
	}
}

// Locks returns the lock manager.
func (m *Manager) Locks() *LockManager { return m.locks }

// Begin opens a transaction and returns its TxnId (monotonically
// increasing, Metastore-generated in Hive).
func (m *Manager) Begin() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTxn++
	m.nextSeq++
	m.txns[m.nextTxn] = &txnState{
		id:       m.nextTxn,
		writeIds: make(map[string]int64),
		beginSeq: m.nextSeq,
	}
	return m.nextTxn
}

// GetSnapshot captures the current transaction list: high watermark plus
// open/aborted transactions below it.
func (m *Manager) GetSnapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	inv := make(map[int64]bool)
	for id, st := range m.txns {
		if st.status != StatusCommitted {
			inv[id] = true
		}
	}
	return Snapshot{HighWater: m.nextTxn, Invalid: inv}
}

// AllocateWriteId returns the WriteId for txn on table, allocating a fresh
// one on first use. All records written by the same transaction to the same
// table share one WriteId.
func (m *Manager) AllocateWriteId(txnID int64, table string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.txns[txnID]
	if !ok || st.status != StatusOpen {
		return 0, fmt.Errorf("txn: %d is not open", txnID)
	}
	if w, ok := st.writeIds[table]; ok {
		return w, nil
	}
	m.nextWriteID[table]++
	w := m.nextWriteID[table]
	st.writeIds[table] = w
	m.tableWrites[table] = append(m.tableWrites[table], writeRecord{writeID: w, txnID: txnID})
	return w, nil
}

// AddWriteSet records an update/delete scope for conflict detection.
func (m *Manager) AddWriteSet(txnID int64, table, partition string, kind OpKind) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.txns[txnID]
	if !ok || st.status != StatusOpen {
		return fmt.Errorf("txn: %d is not open", txnID)
	}
	st.writeSet = append(st.writeSet, writeSetEntry{table: table, partition: partition, kind: kind})
	return nil
}

// Commit finishes the transaction, running first-commit-wins conflict
// detection: if another transaction committed an overlapping update/delete
// write set after this transaction began, this transaction aborts.
func (m *Manager) Commit(txnID int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.txns[txnID]
	if !ok {
		return fmt.Errorf("txn: unknown transaction %d", txnID)
	}
	if st.status != StatusOpen {
		return fmt.Errorf("txn: %d already %v", txnID, st.status)
	}
	for _, mine := range st.writeSet {
		if mine.kind == OpInsert {
			continue
		}
		for _, other := range m.committed {
			if other.commitSeq <= st.beginSeq {
				continue // committed before we began: visible, not a conflict
			}
			for _, theirs := range other.writeSet {
				if theirs.kind == OpInsert {
					continue
				}
				if theirs.table == mine.table && theirs.partition == mine.partition {
					st.status = StatusAborted
					m.locks.releaseAll(txnID)
					return ErrConflict{Txn: txnID, Table: mine.table, Partition: mine.partition}
				}
			}
		}
	}
	m.nextSeq++
	st.commitSeq = m.nextSeq
	st.status = StatusCommitted
	if len(st.writeSet) > 0 {
		m.committed = append(m.committed, st)
	}
	m.locks.releaseAll(txnID)
	return nil
}

// Abort marks the transaction aborted and releases its locks. Its WriteIds
// remain allocated and are excluded from every future snapshot.
func (m *Manager) Abort(txnID int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.txns[txnID]
	if !ok {
		return fmt.Errorf("txn: unknown transaction %d", txnID)
	}
	if st.status != StatusOpen {
		return fmt.Errorf("txn: %d already %v", txnID, st.status)
	}
	st.status = StatusAborted
	m.locks.releaseAll(txnID)
	return nil
}

// TxnStatus returns the current status of a transaction.
func (m *Manager) TxnStatus(txnID int64) (Status, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.txns[txnID]
	if !ok {
		return 0, false
	}
	return st.status, true
}

// GetValidWriteIds projects a snapshot onto one table (paper §3.2): the
// returned list has the table's WriteId high watermark and the invalid
// WriteIds (those of open/aborted transactions or of transactions above
// the snapshot's high watermark), with the aborted subset singled out so
// readers can tell permanently-dead writes from still-pending ones.
func (m *Manager) GetValidWriteIds(table string, snap Snapshot) ValidWriteIds {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := ValidWriteIds{Table: table, Invalid: make(map[int64]bool), Aborted: make(map[int64]bool)}
	for _, rec := range m.tableWrites[table] {
		if rec.writeID > out.HighWater {
			out.HighWater = rec.writeID
		}
		// An abort is final, so "aborted now" marks the write dead even if
		// the snapshot predates the abort (the data was never visible).
		aborted := false
		if st, ok := m.txns[rec.txnID]; ok && st.status == StatusAborted {
			aborted = true
		}
		if aborted {
			out.Invalid[rec.writeID] = true
			out.Aborted[rec.writeID] = true
			continue
		}
		if rec.txnID > snap.HighWater || snap.Invalid[rec.txnID] {
			out.Invalid[rec.writeID] = true
		}
	}
	return out
}

// CompactorValidWriteIds returns the WriteIds safe for compaction on a
// table: everything committed right now, with aborted ids listed as
// invalid. Open transactions bound the high watermark so in-flight data is
// never compacted.
func (m *Manager) CompactorValidWriteIds(table string) ValidWriteIds {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := ValidWriteIds{Table: table, Invalid: make(map[int64]bool), Aborted: make(map[int64]bool)}
	// High watermark: largest prefix of writeids whose txns are resolved.
	recs := append([]writeRecord(nil), m.tableWrites[table]...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].writeID < recs[j].writeID })
	for _, rec := range recs {
		st := m.txns[rec.txnID]
		switch st.status {
		case StatusOpen:
			return out
		case StatusAborted:
			out.Invalid[rec.writeID] = true
			out.Aborted[rec.writeID] = true
			out.HighWater = rec.writeID
		default:
			out.HighWater = rec.writeID
		}
	}
	return out
}

// OpenTxnCount reports the number of open transactions (for tests and the
// compaction trigger heuristics).
func (m *Manager) OpenTxnCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.txns {
		if st.status == StatusOpen {
			n++
		}
	}
	return n
}
