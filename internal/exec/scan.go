package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/acid"
	"repro/internal/dfs"
	"repro/internal/metastore"
	"repro/internal/orc"
	"repro/internal/plan"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
)

// TableSplit is one unit of scan work, with its snapshot and the partition
// key values. The zero value of the stripe fields makes the split a whole
// table/partition directory — the granularity MR and container modes scan
// at. The parallel planner refines directory splits into stripe-granular
// morsels (paper §5.1): File names one data file and [StripeLo, StripeHi)
// the stripes to read through Snap, the ACID snapshot shared by every
// split of the same directory so delete deltas load once, not per morsel.
type TableSplit struct {
	Loc        string
	PartValues []types.Datum // one per partition key column
	Valid      txn.ValidWriteIds

	File     string
	StripeLo int
	StripeHi int
	Snap     *acid.Snapshot
}

// RuntimeFilterBind attaches a dynamic semijoin reducer (paper §4.6) to a
// scan output column: rows whose value falls outside the reducer's range or
// Bloom filter are dropped at the scan.
type RuntimeFilterBind struct {
	FilterID int
	OutCol   int
}

// PartPruneBind prunes entire splits using the value set of a reducer
// (dynamic partition pruning, paper §4.6).
type PartPruneBind struct {
	FilterID int
	PartKey  int // index into the table's partition key columns
}

// SplitQueue is a shared morsel dispenser: parallel scan workers steal
// splits from it through an atomic index (morsel-driven scheduling after
// Leis et al.; LLAP executors process scan fragments the same way). The
// first taker applies dynamic partition pruning once for everyone.
type SplitQueue struct {
	splits []TableSplit
	next   atomic.Int64
	prune  sync.Once
}

// NewSplitQueue shares the given splits between workers.
func NewSplitQueue(splits []TableSplit) *SplitQueue {
	return &SplitQueue{splits: splits}
}

// take returns the next unclaimed split, pruning the list once first.
func (q *SplitQueue) take(prune func([]TableSplit) []TableSplit) (TableSplit, bool) {
	if prune != nil {
		q.prune.Do(func() { q.splits = prune(q.splits) })
	}
	i := int(q.next.Add(1) - 1)
	if i >= len(q.splits) {
		return TableSplit{}, false
	}
	return q.splits[i], true
}

// peek returns up to n upcoming unclaimed splits without claiming them.
// Racy by design: another worker may claim a peeked split at any moment,
// which is harmless for advisory prefetch hints. Callers must have taken
// at least one split already, so the one-time prune has run and q.splits
// is stable.
func (q *SplitQueue) peek(n int) []TableSplit {
	i := int(q.next.Load())
	if i >= len(q.splits) {
		return nil
	}
	if end := i + n; end < len(q.splits) {
		return q.splits[i:end]
	}
	return q.splits[i:]
}

// ScanOp reads an ACID table: it merges base and delta stores under the
// split's WriteId snapshot, pushes the search argument into stripe
// selection, fills partition key columns from the split, and applies
// runtime semijoin reducers.
type ScanOp struct {
	FS    *dfs.FS
	Table *metastore.Table
	// Cols are table-column ordinals (data columns then partition keys).
	Cols   []int
	Meta   bool
	Splits []TableSplit
	Sarg   *orc.SearchArgument // over the ACID file schema (3 meta + data)
	RF     []RuntimeFilterBind
	Prune  []PartPruneBind
	Ctx    *Context
	Stats  *RuntimeStats
	// Shared, when non-nil, overrides Splits: this scan is one worker of a
	// parallel scan and steals its splits from the shared morsel queue.
	Shared *SplitQueue

	outTypes []types.T
	splitIdx int
	pending  []*vector.Batch
	started  bool
}

// Types implements Operator.
func (s *ScanOp) Types() []types.T {
	if s.outTypes == nil {
		if s.Meta {
			s.outTypes = append(s.outTypes, types.TBigint, types.TBigint, types.TBigint)
		}
		all := plan.TableCols(s.Table)
		for _, c := range s.Cols {
			s.outTypes = append(s.outTypes, all[c].Type)
		}
	}
	return s.outTypes
}

// Open implements Operator.
func (s *ScanOp) Open() error {
	s.Types()
	s.splitIdx = 0
	s.pending = nil
	s.started = false
	return nil
}

// dataColCount returns the number of stored (non-partition) columns.
func (s *ScanOp) dataColCount() int { return len(s.Table.Cols) }

// Next implements Operator.
func (s *ScanOp) Next() (*vector.Batch, error) {
	if !s.started {
		s.started = true
		if s.Shared == nil {
			s.Splits = s.pruneList(s.Splits)
		}
	}
	// Scans are where long queries spend their input phase, so this is the
	// cancellation point that makes hive.query.timeout and client
	// disconnects effective even under a blocking operator upstream.
	if err := s.Ctx.CheckCanceled(); err != nil {
		return nil, err
	}
	for {
		if len(s.pending) > 0 {
			b := s.pending[0]
			s.pending = s.pending[1:]
			if s.Stats != nil {
				s.Stats.Rows.Add(int64(b.N))
			}
			return b, nil
		}
		split, ok := s.nextSplit()
		if !ok {
			return nil, nil
		}
		if err := s.scanSplit(split); err != nil {
			return nil, err
		}
	}
}

// nextSplit claims the next morsel, either from this operator's own split
// list or from the shared work-stealing queue.
func (s *ScanOp) nextSplit() (TableSplit, bool) {
	if s.Shared != nil {
		return s.Shared.take(s.pruneList)
	}
	if s.splitIdx >= len(s.Splits) {
		return TableSplit{}, false
	}
	split := s.Splits[s.splitIdx]
	s.splitIdx++
	return split, true
}

// pruneList applies dynamic partition pruning using runtime filters.
func (s *ScanOp) pruneList(splits []TableSplit) []TableSplit {
	if len(s.Prune) == 0 || s.Ctx == nil {
		return splits
	}
	kept := make([]TableSplit, 0, len(splits))
	for _, split := range splits {
		keep := true
		for _, p := range s.Prune {
			f := s.Ctx.Filter(p.FilterID)
			if f == nil || f.Values == nil {
				continue
			}
			if p.PartKey >= len(split.PartValues) {
				continue
			}
			v := split.PartValues[p.PartKey]
			found := false
			for _, fv := range f.Values {
				if fv.Compare(v) == 0 {
					found = true
					break
				}
			}
			if !found {
				keep = false
				break
			}
		}
		if keep {
			kept = append(kept, split)
		}
	}
	return kept
}

func (s *ScanOp) scanSplit(split TableSplit) error {
	snap := split.Snap
	if snap == nil {
		var err error
		snap, err = acid.OpenSnapshotWith(s.FS, split.Loc, s.dataColumns(), split.Valid, s.Ctx.snapOpts())
		if err != nil {
			return err
		}
	}
	// Projection over the ACID file schema: meta first if requested, then
	// the stored data columns among s.Cols; partition columns are filled
	// from the split.
	var proj []int
	if s.Meta {
		proj = append(proj, acid.MetaWriteID, acid.MetaFileID, acid.MetaRowID)
	}
	type colSource struct {
		fromFile int // ordinal in the file read batch, -1 for partition col
		partIdx  int
	}
	srcs := make([]colSource, len(s.Cols))
	for i, c := range s.Cols {
		if c < s.dataColCount() {
			srcs[i] = colSource{fromFile: len(proj)}
			proj = append(proj, acid.NumMetaCols+c)
		} else {
			srcs[i] = colSource{fromFile: -1, partIdx: c - s.dataColCount()}
		}
	}
	emit := func(fb *vector.Batch) error {
		out := &vector.Batch{Sel: fb.Sel, N: fb.N}
		next := 0
		if s.Meta {
			out.Cols = append(out.Cols, fb.Cols[0], fb.Cols[1], fb.Cols[2])
			next = 3
		}
		for i := range s.Cols {
			src := srcs[i]
			if src.fromFile >= 0 {
				out.Cols = append(out.Cols, fb.Cols[src.fromFile])
				continue
			}
			// Partition key column: constant for the whole split.
			pv := types.NullOf(types.Unknown)
			if src.partIdx < len(split.PartValues) {
				pv = split.PartValues[src.partIdx]
			}
			pcol := vector.New(s.outTypes[next+i], capOf(fb))
			for r := 0; r < fb.N; r++ {
				pcol.Set(fb.RowIdx(r), pv)
			}
			out.Cols = append(out.Cols, pcol)
		}
		_ = next
		if len(s.RF) > 0 && s.Ctx != nil {
			out = s.applyRuntimeFilters(out)
			if out.N == 0 {
				return nil
			}
		}
		s.pending = append(s.pending, out)
		return nil
	}
	s.hintUpcoming(proj)
	if split.File != "" {
		return snap.ScanRange(acid.ScanRange{
			File: split.File, StripeLo: split.StripeLo, StripeHi: split.StripeHi,
		}, proj, s.Sarg, emit)
	}
	return snap.Scan(proj, s.Sarg, emit)
}

// hintUpcoming is the worker side of the elevator protocol (paper §5.1):
// before scanning the split it just claimed, a worker hints the stripe
// ranges of the next few unclaimed morsels to the elevator, so decode of
// upcoming stripes overlaps with execution of the current one. With the
// default one-stripe morsels, this — not the within-range window in
// scanFile — is what keeps the elevator ahead of a parallel scan.
const hintSplitsAhead = 2

func (s *ScanOp) hintUpcoming(proj []int) {
	if s.Ctx == nil || s.Ctx.Prefetch == nil {
		return
	}
	var upcoming []TableSplit
	if s.Shared != nil {
		upcoming = s.Shared.peek(hintSplitsAhead)
	} else if s.splitIdx < len(s.Splits) {
		upcoming = s.Splits[s.splitIdx:]
		if len(upcoming) > hintSplitsAhead {
			upcoming = upcoming[:hintSplitsAhead]
		}
	}
	for _, sp := range upcoming {
		// Directory splits (no refined stripe range) carry no snapshot to
		// prefetch through; opening one here would cost more than it saves.
		if sp.Snap == nil || sp.File == "" {
			continue
		}
		sp.Snap.PrefetchRange(acid.ScanRange{
			File: sp.File, StripeLo: sp.StripeLo, StripeHi: sp.StripeHi,
		}, proj, s.Sarg, hintSplitsAhead)
	}
}

// dataColumns returns the table's stored columns as an ORC schema.
func (s *ScanOp) dataColumns() []orc.Column {
	dataCols := make([]orc.Column, len(s.Table.Cols))
	for i, c := range s.Table.Cols {
		dataCols[i] = orc.Column{Name: c.Name, Type: c.Type}
	}
	return dataCols
}

func capOf(b *vector.Batch) int {
	if c := b.Capacity(); c > 0 {
		return c
	}
	return b.N
}

func (s *ScanOp) applyRuntimeFilters(b *vector.Batch) *vector.Batch {
	sel := make([]int, 0, b.N)
	for i := 0; i < b.N; i++ {
		r := b.RowIdx(i)
		ok := true
		for _, bind := range s.RF {
			f := s.Ctx.Filter(bind.FilterID)
			if f == nil {
				continue
			}
			d := b.Cols[bind.OutCol].Get(r)
			if d.Null {
				ok = false
				break
			}
			if f.Min.K != types.Unknown && (d.Compare(f.Min) < 0 || d.Compare(f.Max) > 0) {
				ok = false
				break
			}
			if f.Bloom != nil && !f.Bloom.MayContain(d.Hash()) {
				ok = false
				break
			}
		}
		if ok {
			sel = append(sel, r)
		}
	}
	return &vector.Batch{Cols: b.Cols, Sel: sel, N: len(sel)}
}

// Close implements Operator.
func (s *ScanOp) Close() error { return nil }
