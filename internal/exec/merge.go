// Order-preserving parallel sort (paper §5.1): the parallel planner places
// Sort/TopN below the exchange, so every worker produces a locally sorted
// run over its share of the morsel stream, and the coordinator merges the
// runs through a streaming loser-tree k-way merge (MergeOp) instead of the
// unordered bounded-channel exchange. TopN parallelizes with per-worker
// bounded heaps merged into one final heap (ParallelTopNOp) — the LIMIT is
// pushed into every run. This removes the last coordinator-serialized
// relational operator in the parallel path: the coordinator's share of an
// ORDER BY drops from the full O(n log n) sort to the O(n log k) merge.
package exec

import (
	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// runCursor streams one worker's sorted run batch by batch; the current
// row is (b, i) in place — never materialized to a datum slice, this is
// the merge's hot loop — and b == nil marks an exhausted run.
type runCursor struct {
	ch <-chan *vector.Batch
	b  *vector.Batch
	i  int // live-row ordinal within b
}

// advance moves to the run's next row, pulling a new batch from the worker
// when the current one is spent; it reports false at end of run.
func (c *runCursor) advance() bool {
	for {
		if c.b != nil && c.i+1 < c.b.N {
			c.i++
			return true
		}
		b, ok := <-c.ch
		if !ok {
			c.b = nil
			return false
		}
		if b.N == 0 {
			continue
		}
		c.b, c.i = b, 0
		return true
	}
}

// live reports whether the cursor still has a current row.
func (c *runCursor) live() bool { return c.b != nil }

// loserTree is the k-way merge tournament: leaves are run cursors, each
// internal node stores the loser of the match played there and the overall
// winner (the smallest current row) sits at tree[0]. Advancing the winner
// replays only its leaf-to-root path — O(log k) comparisons per row versus
// O(k) for rescanning every run head.
type loserTree struct {
	size int // leaf count padded to a power of two
	tree []int
	runs []*runCursor
	cmp  func(ab *vector.Batch, ai int, bb *vector.Batch, bi int) int
}

// newLoserTree builds the tournament; every cursor must already be primed
// (advanced to its first row, or exhausted).
func newLoserTree(runs []*runCursor, cmp func(ab *vector.Batch, ai int, bb *vector.Batch, bi int) int) *loserTree {
	size := 1
	for size < len(runs) {
		size *= 2
	}
	lt := &loserTree{size: size, tree: make([]int, size), runs: runs, cmp: cmp}
	if size == 1 {
		lt.tree[0] = 0
		return lt
	}
	lt.tree[0] = lt.build(1)
	return lt
}

// build plays the full tournament under node t, storing each match's loser
// at its node, and returns the winner. Leaves beyond the real run count are
// the padding of the power-of-two tree and lose every match.
func (lt *loserTree) build(t int) int {
	if t >= lt.size {
		leaf := t - lt.size
		if leaf >= len(lt.runs) {
			return -1
		}
		return leaf
	}
	a, b := lt.build(2*t), lt.build(2*t+1)
	if lt.beats(a, b) {
		lt.tree[t] = b
		return a
	}
	lt.tree[t] = a
	return b
}

// beats reports whether contestant a wins (orders before) contestant b.
// Exhausted runs and padding lose to live runs; ties go to the lower run
// index, making the merge deterministic for a given run assignment.
func (lt *loserTree) beats(a, b int) bool {
	if a < 0 || !lt.runs[a].live() {
		return false
	}
	if b < 0 || !lt.runs[b].live() {
		return true
	}
	ca, cb := lt.runs[a], lt.runs[b]
	if c := lt.cmp(ca.b, ca.i, cb.b, cb.i); c != 0 {
		return c < 0
	}
	return a < b
}

// winner returns the run index holding the smallest current row, or -1 when
// every run is exhausted.
func (lt *loserTree) winner() int {
	w := lt.tree[0]
	if w < 0 || !lt.runs[w].live() {
		return -1
	}
	return w
}

// fix replays leaf s's path to the root after its cursor advanced: at each
// node the stored loser and the incoming winner play again, the loser stays
// and the winner moves up.
func (lt *loserTree) fix(s int) {
	winner := s
	for t := (lt.size + s) / 2; t > 0; t /= 2 {
		if lt.beats(lt.tree[t], winner) {
			lt.tree[t], winner = winner, lt.tree[t]
		}
	}
	lt.tree[0] = winner
}

// MergeOp is the order-preserving exchange: worker pipelines each emit a
// run already sorted by Keys (the planner wraps clones in SortOp) on their
// own goroutines, and Next streams globally ordered batches out of a
// loser-tree merge over the runs. It shares ParallelOp's exchange
// lifecycle but gives every run its own bounded channel — per-run channels
// preserve each run's order, which the shared arrival-order channel
// deliberately does not — so a Close mid-merge (LIMIT satisfied upstream)
// unwinds workers blocked on their sends without leaking goroutines.
type MergeOp struct {
	// Workers must each produce rows sorted by Keys, in freshly allocated
	// batches (the merge holds a batch reference while the worker runs
	// ahead; SortOp and TopNOp, the planner's runs, satisfy both).
	Workers []Operator
	Keys    []plan.SortKey
	Ctx     *Context
	merges  []statMerge

	exchange
	chans   []chan *vector.Batch
	cursors []*runCursor
	lt      *loserTree
}

// Types implements Operator.
func (m *MergeOp) Types() []types.T { return m.Workers[0].Types() }

// Open implements Operator. Workers launch at the first Next so upstream
// build sides run before any worker can block on them.
func (m *MergeOp) Open() error {
	m.reset()
	m.chans, m.cursors, m.lt = nil, nil, nil
	return nil
}

// start acquires executor slots and launches the sorted-run workers, one
// ordered channel each, closed when its run ends so the merge sees EOF.
func (m *MergeOp) start() {
	n := m.begin(m.Ctx, len(m.Workers))
	m.chans = make([]chan *vector.Batch, n)
	m.cursors = make([]*runCursor, n)
	for w := 0; w < n; w++ {
		ch := make(chan *vector.Batch, 2)
		m.chans[w] = ch
		m.cursors[w] = &runCursor{ch: ch}
		m.wg.Add(1)
		go func(i int, wk Operator) {
			defer m.wg.Done()
			defer close(m.chans[i])
			m.drainWorker(wk, func(b *vector.Batch) bool {
				select {
				case m.chans[i] <- b:
					return true
				case <-m.done:
					return false
				}
			})
		}(w, m.Workers[w])
	}
}

// Next implements Operator: it streams the next batch of globally ordered
// rows out of the loser tree, copying winner rows until the batch fills or
// every run is exhausted.
func (m *MergeOp) Next() (*vector.Batch, error) {
	if !m.started {
		m.start()
	}
	if m.lt == nil {
		for _, c := range m.cursors {
			if !c.advance() {
				if err := m.firstErr(); err != nil {
					return nil, err
				}
			}
		}
		m.lt = newLoserTree(m.cursors, sortCompareAt(m.Keys))
	}
	var out *vector.Batch
	n := 0
	for n < vector.BatchSize {
		w := m.lt.winner()
		if w < 0 {
			break
		}
		if out == nil {
			out = vector.NewBatch(m.Types(), vector.BatchSize)
		}
		cur := m.cursors[w]
		r := cur.b.RowIdx(cur.i)
		for c := range out.Cols {
			out.Cols[c].CopyRow(n, cur.b.Cols[c], r)
		}
		n++
		if !cur.advance() {
			// A run that ends because its worker failed ended *early*:
			// everything merged from here on would wrongly skip its unsent
			// rows, and a downstream LIMIT could return that broken prefix
			// without ever reaching end-of-stream. The error is recorded
			// before the failed channel closes (drainWorker fails, then the
			// goroutine's defer closes the channel), so checking at every
			// exhaustion catches the failure before one bad row is emitted.
			if err := m.firstErr(); err != nil {
				return nil, err
			}
		}
		m.lt.fix(w)
	}
	if n == 0 {
		// Every run ended — cleanly or because the shutdown drained the
		// rest after a failure. Surface the first error either way.
		return nil, m.firstErr()
	}
	out.N = n
	return out, nil
}

// Close implements Operator.
func (m *MergeOp) Close() error {
	m.shutdown()
	return closeWorkers(m.Workers, m.merges)
}

// ParallelTopNOp is the two-phase parallel TopN: every worker pipeline
// feeds a thread-local bounded heap of its N best rows (the LIMIT pushed
// into the run), and the per-worker survivors merge through one final heap
// before emission — at most workers×N rows ever reach the coordinator.
type ParallelTopNOp struct {
	Workers []Operator
	Keys    []plan.SortKey
	N       int64
	Ctx     *Context
	merges  []statMerge

	rows    [][]types.Datum
	done    bool
	emitted int
}

// Types implements Operator.
func (t *ParallelTopNOp) Types() []types.T { return t.Workers[0].Types() }

// Open implements Operator. Worker pipelines open on their goroutines.
func (t *ParallelTopNOp) Open() error {
	t.rows, t.emitted = nil, 0
	// N == 0 short-circuits to EOF without ever opening a worker,
	// mirroring the serial TopNOp.
	t.done = t.N <= 0
	return nil
}

// run executes both phases: parallel per-worker TopN, then the final heap
// merge. Ties across workers follow run assignment, which is dynamic —
// like every parallel exchange here, only key order is deterministic.
func (t *ParallelTopNOp) run() error {
	locals := make([][][]types.Datum, len(t.Workers))
	err := runPhased(t.Ctx, len(t.Workers), func(w int) error {
		local := &TopNOp{Input: t.Workers[w], Keys: t.Keys, N: t.N}
		if err := local.Open(); err != nil {
			return err
		}
		if err := local.consume(); err != nil {
			return err
		}
		locals[w] = local.rows
		return nil
	})
	if err != nil {
		return err
	}
	final := newTopNHeap(t.Keys, t.N)
	for _, rows := range locals {
		for _, r := range rows {
			final.push(r)
		}
	}
	t.rows = final.sorted()
	return nil
}

// Next implements Operator.
func (t *ParallelTopNOp) Next() (*vector.Batch, error) {
	if !t.done {
		if err := t.run(); err != nil {
			return nil, err
		}
		t.done = true
	}
	out := emitRows(t.rows, t.emitted, t.Types())
	if out == nil {
		return nil, nil
	}
	t.emitted += out.N
	return out, nil
}

// Close implements Operator.
func (t *ParallelTopNOp) Close() error {
	t.rows = nil
	return closeWorkers(t.Workers, t.merges)
}
