// Order-preserving parallel sort (paper §5.1): the parallel planner places
// Sort/TopN below the exchange, so every worker produces a locally sorted
// run over its share of the morsel stream, and the coordinator merges the
// runs through a streaming loser-tree k-way merge (MergeOp) instead of the
// unordered bounded-channel exchange. TopN parallelizes with per-worker
// bounded heaps merged into one final heap (ParallelTopNOp) — the LIMIT is
// pushed into every run. This removes the last coordinator-serialized
// relational operator in the parallel path: the coordinator's share of an
// ORDER BY drops from the full O(n log n) sort to the O(n log k) merge.
//
// The same loser tree also drains the external sort (sort.go): run cursors
// are source-agnostic, so worker channels, spilled run files on the DFS
// and in-memory row slices merge uniformly.
package exec

import (
	"repro/internal/dfs"
	"repro/internal/plan"
	"repro/internal/spill"
	"repro/internal/types"
	"repro/internal/vector"
)

// runCursor streams one sorted run batch by batch; the current row is
// (b, i) in place — never materialized to a datum slice, this is the
// merge's hot loop — and b == nil marks an exhausted run. pull supplies the
// next batch from whatever backs the run (a worker channel, a spill file,
// a row slice); returning (nil, nil) ends the run, and a pull error parks
// in err and ends the run too.
type runCursor struct {
	pull func() (*vector.Batch, error)
	b    *vector.Batch
	i    int // live-row ordinal within b
	err  error
}

// advance moves to the run's next row, pulling a new batch when the
// current one is spent; it reports false at end of run (check err).
func (c *runCursor) advance() bool {
	for {
		if c.b != nil && c.i+1 < c.b.N {
			c.i++
			return true
		}
		b, err := c.pull()
		if err != nil {
			c.b, c.err = nil, err
			return false
		}
		if b == nil {
			c.b = nil
			return false
		}
		if b.N == 0 {
			continue
		}
		c.b, c.i = b, 0
		return true
	}
}

// live reports whether the cursor still has a current row.
func (c *runCursor) live() bool { return c.b != nil }

// chanRunCursor wraps a worker's ordered batch channel (MergeOp's runs).
func chanRunCursor(ch <-chan *vector.Batch) *runCursor {
	return &runCursor{pull: func() (*vector.Batch, error) {
		b, ok := <-ch
		if !ok {
			return nil, nil
		}
		return b, nil
	}}
}

// runFilePuller streams the given spill files, in order, back as batches
// — one block of rows in memory at a time. It backs both the file-run
// cursors of the external sort merge and the Grace join's probe replay.
func runFilePuller(fs *dfs.FS, paths []string, ts []types.T) func() (*vector.Batch, error) {
	var r *spill.Reader
	var rows [][]types.Datum
	file, start := 0, 0
	return func() (*vector.Batch, error) {
		for {
			if start < len(rows) {
				b := emitRows(rows, start, ts)
				start += b.N
				return b, nil
			}
			if r == nil {
				if file >= len(paths) {
					return nil, nil
				}
				rr, err := spill.OpenReader(fs, paths[file])
				if err != nil {
					return nil, err
				}
				file++
				r = rr
			}
			var err error
			rows, err = r.Next()
			if err != nil {
				return nil, err
			}
			if rows == nil {
				r = nil
				continue
			}
			start = 0
		}
	}
}

// fileRunCursor streams one spilled sorted run back from the DFS — k
// file-backed runs cost k resident blocks, not k whole runs, which is what
// makes the merge beyond-memory capable.
func fileRunCursor(fs *dfs.FS, path string, ts []types.T) *runCursor {
	return &runCursor{pull: runFilePuller(fs, []string{path}, ts)}
}

// memRunCursor emits an in-memory sorted run.
func memRunCursor(rows [][]types.Datum, ts []types.T) *runCursor {
	start := 0
	return &runCursor{pull: func() (*vector.Batch, error) {
		b := emitRows(rows, start, ts)
		if b == nil {
			return nil, nil
		}
		start += b.N
		return b, nil
	}}
}

// loserTree is the k-way merge tournament: leaves are run cursors, each
// internal node stores the loser of the match played there and the overall
// winner (the smallest current row) sits at tree[0]. Advancing the winner
// replays only its leaf-to-root path — O(log k) comparisons per row versus
// O(k) for rescanning every run head.
type loserTree struct {
	size int // leaf count padded to a power of two
	tree []int
	runs []*runCursor
	cmp  func(ab *vector.Batch, ai int, bb *vector.Batch, bi int) int
}

// newLoserTree builds the tournament; every cursor must already be primed
// (advanced to its first row, or exhausted).
func newLoserTree(runs []*runCursor, cmp func(ab *vector.Batch, ai int, bb *vector.Batch, bi int) int) *loserTree {
	size := 1
	for size < len(runs) {
		size *= 2
	}
	lt := &loserTree{size: size, tree: make([]int, size), runs: runs, cmp: cmp}
	if size == 1 {
		lt.tree[0] = 0
		return lt
	}
	lt.tree[0] = lt.build(1)
	return lt
}

// build plays the full tournament under node t, storing each match's loser
// at its node, and returns the winner. Leaves beyond the real run count are
// the padding of the power-of-two tree and lose every match.
func (lt *loserTree) build(t int) int {
	if t >= lt.size {
		leaf := t - lt.size
		if leaf >= len(lt.runs) {
			return -1
		}
		return leaf
	}
	a, b := lt.build(2*t), lt.build(2*t+1)
	if lt.beats(a, b) {
		lt.tree[t] = b
		return a
	}
	lt.tree[t] = a
	return b
}

// beats reports whether contestant a wins (orders before) contestant b.
// Exhausted runs and padding lose to live runs; ties go to the lower run
// index, making the merge deterministic for a given run assignment.
func (lt *loserTree) beats(a, b int) bool {
	if a < 0 || !lt.runs[a].live() {
		return false
	}
	if b < 0 || !lt.runs[b].live() {
		return true
	}
	ca, cb := lt.runs[a], lt.runs[b]
	if c := lt.cmp(ca.b, ca.i, cb.b, cb.i); c != 0 {
		return c < 0
	}
	return a < b
}

// winner returns the run index holding the smallest current row, or -1 when
// every run is exhausted.
func (lt *loserTree) winner() int {
	w := lt.tree[0]
	if w < 0 || !lt.runs[w].live() {
		return -1
	}
	return w
}

// challenger returns the run that would win the tournament if run s were
// exhausted: the best among the losers stored on s's leaf-to-root path.
// It returns -1 when no other run is live.
func (lt *loserTree) challenger(s int) int {
	best := -1
	for t := (lt.size + s) / 2; t > 0; t /= 2 {
		if lt.beats(lt.tree[t], best) {
			best = lt.tree[t]
		}
	}
	if best < 0 || !lt.runs[best].live() {
		return -1
	}
	return best
}

// fix replays leaf s's path to the root after its cursor advanced: at each
// node the stored loser and the incoming winner play again, the loser stays
// and the winner moves up.
func (lt *loserTree) fix(s int) {
	winner := s
	for t := (lt.size + s) / 2; t > 0; t /= 2 {
		if lt.beats(lt.tree[t], winner) {
			lt.tree[t], winner = winner, lt.tree[t]
		}
	}
	lt.tree[0] = winner
}

// copySpan copies live rows lo..hi-1 of b into out starting at row n. The
// runs the merge consumes emit dense batches (no selection vector), which
// take the multi-row CopyRows path — one slice copy per column.
func copySpan(out *vector.Batch, n int, b *vector.Batch, lo, hi int) {
	if b.Sel == nil {
		for c := range out.Cols {
			out.Cols[c].CopyRows(n, b.Cols[c], lo, hi-lo)
		}
		return
	}
	for i := lo; i < hi; i++ {
		r := b.Sel[i]
		for c := range out.Cols {
			out.Cols[c].CopyRow(n+(i-lo), b.Cols[c], r)
		}
	}
}

// emit streams the next batch of globally ordered rows out of the tree, or
// nil when every run is exhausted. Consecutive winners from the same run
// gather into multi-row span copies: once winner w is known, its
// challenger (the run that would win were w exhausted) is read off w's
// leaf-to-root path, and w's rows keep copying — without replaying the
// tournament — for as long as they beat the challenger's current row,
// which stands still the whole streak. Skewed merges pay one fix() per
// streak instead of one per row, and the copies vectorize per column.
//
// onEnd, when non-nil, runs every time a run is exhausted, before any row
// from another run is emitted. MergeOp surfaces worker errors there: a run
// that ended because its worker failed ended *early*, and everything
// merged past it would wrongly skip its unsent rows — a downstream LIMIT
// could return that broken prefix without ever reaching end-of-stream.
func (lt *loserTree) emit(ts []types.T, onEnd func() error) (*vector.Batch, error) {
	var out *vector.Batch
	n := 0
	for n < vector.BatchSize {
		w := lt.winner()
		if w < 0 {
			break
		}
		if out == nil {
			out = vector.NewBatch(ts, vector.BatchSize)
		}
		cur := lt.runs[w]
		var cb *runCursor
		ch := lt.challenger(w)
		if ch >= 0 {
			cb = lt.runs[ch]
		}
		for n < vector.BatchSize {
			// Rows within a run are sorted, so the rows still beating the
			// challenger form a prefix of the current batch's remainder.
			lo := cur.i
			hi := lo + 1
			if cb == nil {
				hi = lo + (cur.b.N - lo)
				if room := vector.BatchSize - n; hi-lo > room {
					hi = lo + room
				}
			} else {
				for hi < cur.b.N && n+(hi-lo) < vector.BatchSize {
					c := lt.cmp(cur.b, hi, cb.b, cb.i)
					if c < 0 || (c == 0 && w < ch) {
						hi++
					} else {
						break
					}
				}
			}
			copySpan(out, n, cur.b, lo, hi)
			n += hi - lo
			cur.i = hi - 1
			if !cur.advance() {
				if cur.err != nil {
					return nil, cur.err
				}
				if onEnd != nil {
					if err := onEnd(); err != nil {
						return nil, err
					}
				}
				break
			}
			if cb != nil {
				c := lt.cmp(cur.b, cur.i, cb.b, cb.i)
				if !(c < 0 || (c == 0 && w < ch)) {
					break
				}
			}
		}
		lt.fix(w)
	}
	if n == 0 {
		return nil, nil
	}
	out.N = n
	return out, nil
}

// MergeOp is the order-preserving exchange: worker pipelines each emit a
// run already sorted by Keys (the planner wraps clones in SortOp) on their
// own goroutines, and Next streams globally ordered batches out of a
// loser-tree merge over the runs. It shares ParallelOp's exchange
// lifecycle but gives every run its own bounded channel — per-run channels
// preserve each run's order, which the shared arrival-order channel
// deliberately does not — so a Close mid-merge (LIMIT satisfied upstream)
// unwinds workers blocked on their sends without leaking goroutines.
type MergeOp struct {
	// Workers must each produce rows sorted by Keys, in freshly allocated
	// batches (the merge holds a batch reference while the worker runs
	// ahead; SortOp and TopNOp, the planner's runs, satisfy both).
	Workers []Operator
	Keys    []plan.SortKey
	Ctx     *Context
	merges  []statMerge

	exchange
	chans   []chan *vector.Batch
	cursors []*runCursor
	lt      *loserTree
}

// Types implements Operator.
func (m *MergeOp) Types() []types.T { return m.Workers[0].Types() }

// Open implements Operator. Workers launch at the first Next so upstream
// build sides run before any worker can block on them.
func (m *MergeOp) Open() error {
	m.reset()
	m.chans, m.cursors, m.lt = nil, nil, nil
	return nil
}

// start acquires executor slots and launches the sorted-run workers, one
// ordered channel each, closed when its run ends so the merge sees EOF.
func (m *MergeOp) start() {
	n := m.begin(m.Ctx, len(m.Workers))
	m.chans = make([]chan *vector.Batch, n)
	m.cursors = make([]*runCursor, n)
	for w := 0; w < n; w++ {
		ch := make(chan *vector.Batch, 2)
		m.chans[w] = ch
		m.cursors[w] = chanRunCursor(ch)
		m.wg.Add(1)
		go func(i int, wk Operator) {
			defer m.wg.Done()
			defer close(m.chans[i])
			m.drainWorker(wk, func(b *vector.Batch) bool {
				select {
				case m.chans[i] <- b:
					return true
				case <-m.done:
					return false
				}
			})
		}(w, m.Workers[w])
	}
}

// Next implements Operator: it streams the next batch of globally ordered
// rows out of the loser tree. Worker errors are surfaced whenever a run
// ends (the error is recorded before the failed channel closes, so the
// check catches the failure before one bad row is emitted) and at end of
// merge.
func (m *MergeOp) Next() (*vector.Batch, error) {
	if !m.started {
		m.start()
	}
	if m.lt == nil {
		for _, c := range m.cursors {
			if !c.advance() {
				if err := m.firstErr(); err != nil {
					return nil, err
				}
			}
		}
		m.lt = newLoserTree(m.cursors, sortCompareAt(m.Keys))
	}
	out, err := m.lt.emit(m.Types(), m.firstErr)
	if err != nil {
		return nil, err
	}
	if out == nil {
		// Every run ended — cleanly or because the shutdown drained the
		// rest after a failure. Surface the first error either way.
		return nil, m.firstErr()
	}
	return out, nil
}

// Close implements Operator.
func (m *MergeOp) Close() error {
	m.shutdown()
	return closeWorkers(m.Workers, m.merges)
}

// ParallelTopNOp is the two-phase parallel TopN: every worker pipeline
// feeds a thread-local bounded heap of its best rows (the LIMIT — plus any
// OFFSET — pushed into the run), and the per-worker survivors merge
// through one final heap before emission, where the offset rows are
// skipped exactly once — at most workers×(offset+limit) rows ever reach
// the coordinator.
type ParallelTopNOp struct {
	Workers []Operator
	Keys    []plan.SortKey
	N       int64
	Offset  int64
	Ctx     *Context
	merges  []statMerge

	rows    [][]types.Datum
	done    bool
	emitted int
}

// Types implements Operator.
func (t *ParallelTopNOp) Types() []types.T { return t.Workers[0].Types() }

// Open implements Operator. Worker pipelines open on their goroutines.
func (t *ParallelTopNOp) Open() error {
	t.rows, t.emitted = nil, 0
	// N == 0 short-circuits to EOF without ever opening a worker,
	// mirroring the serial TopNOp.
	t.done = t.N <= 0
	return nil
}

// run executes both phases: parallel per-worker TopN, then the final heap
// merge. Ties across workers follow run assignment, which is dynamic —
// like every parallel exchange here, only key order is deterministic.
func (t *ParallelTopNOp) run() error {
	keep := t.N + t.Offset
	locals := make([][][]types.Datum, len(t.Workers))
	err := runPhased(t.Ctx, len(t.Workers), func(w int) error {
		local := &TopNOp{Input: t.Workers[w], Keys: t.Keys, N: keep, Ctx: t.Ctx}
		if err := local.Open(); err != nil {
			return err
		}
		if err := local.consume(); err != nil {
			return err
		}
		locals[w] = local.rows
		return nil
	})
	if err != nil {
		return err
	}
	final := newTopNHeap(t.Keys, keep)
	for _, rows := range locals {
		for _, r := range rows {
			final.push(r)
		}
	}
	t.rows = dropOffset(final.sorted(), t.Offset)
	return nil
}

// Next implements Operator.
func (t *ParallelTopNOp) Next() (*vector.Batch, error) {
	if !t.done {
		if err := t.run(); err != nil {
			return nil, err
		}
		t.done = true
	}
	out := emitRows(t.rows, t.emitted, t.Types())
	if out == nil {
		return nil, nil
	}
	t.emitted += out.N
	return out, nil
}

// Close implements Operator.
func (t *ParallelTopNOp) Close() error {
	t.rows = nil
	return closeWorkers(t.Workers, t.merges)
}
