// Property-driven physical planning (paper §4.1–4.2): every operator
// delivers physical properties — sort order, value partitioning,
// uniqueness (plan.Properties) — and consumers match required properties
// against delivered ones instead of unconditionally enforcing. Enforcers
// (Sort, exchange, shared hash tables) are inserted only when required ⊄
// delivered. The paydays wired through here:
//
//   - A SortOp whose input already delivers its keys disappears; a TopNOp
//     degrades to a plain LimitOp.
//   - ORDER BY over a window commutes with the window when the reorder
//     cannot change any function value: Sort(Window(X)) becomes
//     Window(Sort(X)), which the parallel planner then splits into
//     per-worker runs under a MergeOp — and the WindowOp, seeing its
//     input deliver the group's (partition, order) keys, skips its own
//     sort (window.go).
//   - Aggregations and joins whose keys cover a scan's partition columns
//     run partition-wise: worker partials are key-disjoint, so the final
//     merge appends without hash lookups (ParallelHashAggOp.Disjoint)
//     and co-partitioned joins build one small table per partition pair
//     with no shared build (PartitionJoinOp).
//
// Every rewrite here is byte-identical to the enforcer-everywhere plan;
// the conditions under which that holds are spelled out at each site and
// exercised by the property-equivalence suites against
// hive.planner.properties=false.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/plan"
	"repro/internal/types"
)

// DeliveredProps derives the physical properties an operator tree's output
// stream is guaranteed to satisfy. The derivation is conservative: an
// operator the walk does not understand delivers nothing.
func DeliveredProps(op Operator) plan.Properties {
	switch x := op.(type) {
	case *SortOp:
		return plan.Properties{Ordering: x.Keys}
	case *MergeOp:
		// The loser-tree merge preserves the per-run order globally.
		return plan.Properties{Ordering: x.Keys}
	case *TopNOp:
		return plan.Properties{Ordering: x.Keys}
	case *ParallelTopNOp:
		return plan.Properties{Ordering: x.Keys}
	case *FilterOp:
		// Dropping rows preserves order and co-location.
		return DeliveredProps(x.Input)
	case *LimitOp:
		return plan.Properties{Ordering: DeliveredProps(x.Input).Ordering}
	case *SpoolOp:
		// Replay is in materialization (= input) order; a parallel shared
		// cursor hands each consumer a subsequence, which is still ordered
		// but not partition-aligned.
		return plan.Properties{Ordering: DeliveredProps(x.Input).Ordering}
	case *WindowOp:
		// Rows emit in arrival order with appended function columns.
		return plan.Properties{Ordering: DeliveredProps(x.Input).Ordering}
	case *ProjectOp:
		return projectProps(x)
	case *HashAggOp:
		if x.GroupingSets == nil && len(x.GroupExprs) > 0 {
			return plan.Properties{Unique: [][]int{ordinals(len(x.GroupExprs))}}
		}
		return plan.Properties{}
	case *ParallelHashAggOp:
		if x.GroupingSets == nil && len(x.GroupExprs) > 0 {
			return plan.Properties{Unique: [][]int{ordinals(len(x.GroupExprs))}}
		}
		return plan.Properties{}
	case *ScanOp:
		if m, ok := scanPartMap(x); ok && wholeDirSplits(x) {
			return plan.Properties{Partitioning: mapKeys(m)}
		}
		return plan.Properties{}
	case *HashJoinOp:
		// The probe pipeline emits left rows (expanded by matches) in left
		// order with left ordinals unchanged for the kinds whose output
		// leads with — or is exactly — the left row, so the left stream's
		// partitioning survives.
		switch x.Kind {
		case plan.Inner, plan.Left, plan.Semi, plan.Anti:
			return plan.Properties{Partitioning: DeliveredProps(x.Left).Partitioning}
		}
		return plan.Properties{}
	}
	return plan.Properties{}
}

func ordinals(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func mapKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// projectProps remaps the input's properties through bare column
// references; anything computed loses its provenance.
func projectProps(p *ProjectOp) plan.Properties {
	in := DeliveredProps(p.Input)
	var out plan.Properties
	// inverse map: input ordinal -> first output ordinal referencing it.
	inv := map[int]int{}
	for o, e := range p.Exprs {
		if c, ok := e.ColRef(); ok {
			if _, dup := inv[c]; !dup {
				inv[c] = o
			}
		}
	}
	// Ordering survives as the longest remappable prefix.
	for _, k := range in.Ordering {
		o, ok := inv[k.Col]
		if !ok {
			break
		}
		out.Ordering = append(out.Ordering, plan.SortKey{Col: o, Desc: k.Desc, NullsFirst: k.NullsFirst})
	}
	// Partitioning survives only whole: dropping one partition column
	// breaks the "equal on these columns ⇒ same unit" promise.
	if len(in.Partitioning) > 0 {
		part := make([]int, 0, len(in.Partitioning))
		complete := true
		for _, c := range in.Partitioning {
			o, ok := inv[c]
			if !ok {
				complete = false
				break
			}
			part = append(part, o)
		}
		if complete {
			out.Partitioning = part
		}
	}
	return out
}

// scanPartInfo walks a morsel pipeline (Filter/Project/probe-join chain)
// to its base scan and returns the scan plus a map from pipeline output
// ordinal to partition key index — defined only when every partition key
// column survives to the output. This is the provenance the partition-wise
// agg and join placements match their keys against.
func scanPartInfo(op Operator) (*ScanOp, map[int]int, bool) {
	switch x := op.(type) {
	case *ScanOp:
		m, ok := scanPartMap(x)
		return x, m, ok
	case *FilterOp:
		return scanPartInfo(x.Input)
	case *ProjectOp:
		s, m, ok := scanPartInfo(x.Input)
		if !ok {
			return nil, nil, false
		}
		out := map[int]int{}
		covered := map[int]bool{}
		for o, e := range x.Exprs {
			if c, refOK := e.ColRef(); refOK {
				if pk, isPart := m[c]; isPart {
					out[o] = pk
					covered[pk] = true
				}
			}
		}
		if len(covered) != len(s.Table.PartKeys) {
			return nil, nil, false
		}
		return s, out, true
	case *HashJoinOp:
		switch x.Kind {
		case plan.Inner, plan.Left, plan.Semi, plan.Anti:
			return scanPartInfo(x.Left)
		}
	}
	return nil, nil, false
}

// scanPartMap maps scan output ordinals to partition key indexes when the
// scan projects every partition key column of a partitioned table.
func scanPartMap(s *ScanOp) (map[int]int, bool) {
	if len(s.Table.PartKeys) == 0 {
		return nil, false
	}
	metaOff := 0
	if s.Meta {
		metaOff = 3
	}
	m := map[int]int{}
	covered := map[int]bool{}
	for i, c := range s.Cols {
		if c >= len(s.Table.Cols) {
			pk := c - len(s.Table.Cols)
			m[metaOff+i] = pk
			covered[pk] = true
		}
	}
	if len(covered) != len(s.Table.PartKeys) {
		return nil, false
	}
	return m, true
}

// wholeDirSplits reports whether every split of the scan is a whole
// partition directory — one split per distinct partition value combination
// — which is what makes the split stream value-disjoint. Stripe-expanded
// splits break disjointness (two ranges of one directory can land on
// different workers).
func wholeDirSplits(s *ScanOp) bool {
	if s.Shared != nil {
		return false
	}
	for _, sp := range s.Splits {
		if sp.File != "" {
			return false
		}
	}
	return len(s.Splits) > 0
}

// ApplyProperties rewrites a physical tree bottom-up using delivered
// properties: sorts over already-ordered input disappear, TopN over
// ordered input degrades to Limit, and ORDER BY commutes below a window
// when the reorder is value-invariant. Every rewrite preserves the output
// byte for byte; run it before Parallelize so the parallel planner sees
// the property-shaped tree.
func ApplyProperties(op Operator) Operator {
	// Recurse first: children settle before the local match.
	switch x := op.(type) {
	case *SortOp:
		x.Input = ApplyProperties(x.Input)
	case *TopNOp:
		x.Input = ApplyProperties(x.Input)
	case *FilterOp:
		x.Input = ApplyProperties(x.Input)
	case *ProjectOp:
		x.Input = ApplyProperties(x.Input)
	case *LimitOp:
		x.Input = ApplyProperties(x.Input)
	case *WindowOp:
		x.Input = ApplyProperties(x.Input)
	case *SpoolOp:
		x.Input = ApplyProperties(x.Input)
	case *HashAggOp:
		x.Input = ApplyProperties(x.Input)
	case *HashJoinOp:
		x.Left = ApplyProperties(x.Left)
		if x.Right != nil {
			x.Right = ApplyProperties(x.Right)
		}
	case *SetOpOp:
		x.Left = ApplyProperties(x.Left)
		x.Right = ApplyProperties(x.Right)
	case *UnionAllOp:
		for i, in := range x.Inputs {
			x.Inputs[i] = ApplyProperties(in)
		}
	}
	switch x := op.(type) {
	case *SortOp:
		// Required ordering already delivered: a stable sort of ordered
		// input is the identity, so the enforcer adds nothing.
		if plan.OrderingSatisfies(DeliveredProps(x.Input).Ordering, x.Keys) {
			return x.Input
		}
		if rewritten, ok := pushSortThroughWindow(x); ok {
			return rewritten
		}
	case *TopNOp:
		// Ordered input turns top-N into a plain prefix: the bounded heap
		// would retain exactly the first Offset+N rows (arrival breaks
		// ties) and emit them in input order.
		if x.N > 0 && plan.OrderingSatisfies(DeliveredProps(x.Input).Ordering, x.Keys) {
			return &LimitOp{Input: x.Input, N: x.N, Offset: x.Offset}
		}
	}
	return op
}

// pushSortThroughWindow rewrites Sort(Window(X)) — optionally with a
// column-remapping projection between — into Window(Sort(X)).
//
// Byte-identity argument: the window emits its input order, so the pushed
// plan emits X sorted stably by the keys; the enforcer plan sorts the
// window output (in X's arrival order) stably by the same keys — the same
// permutation. The function VALUES must also survive the input reorder,
// which holds per group when either
//
//   - every function is permutation-invariant — rank/dense_rank (peer
//     membership only), count/min/max, and exact (non-float) sums — or
//   - the sort keys are a subset of the group's partition+order columns:
//     rows tied on (partition, order) are then tied on every sort key, so
//     the stable sort preserves their arrival order and position-sensitive
//     functions (row_number, float accumulation order) see identical
//     sequences.
//
// The rewrite only fires when at least one group's own sort becomes
// skippable under the pushed ordering — otherwise it just moves work.
func pushSortThroughWindow(s *SortOp) (Operator, bool) {
	var w *WindowOp
	var proj *ProjectOp
	switch in := s.Input.(type) {
	case *WindowOp:
		w = in
	case *ProjectOp:
		if pw, ok := in.Input.(*WindowOp); ok {
			w, proj = pw, in
		}
	}
	if w == nil {
		return nil, false
	}
	inW := len(w.Input.Types())
	// Map the sort keys to window-input ordinals.
	keys := make([]plan.SortKey, len(s.Keys))
	for i, k := range s.Keys {
		col := k.Col
		if proj != nil {
			c, ok := proj.Exprs[col].ColRef()
			if !ok {
				return nil, false
			}
			col = c
		}
		if col >= inW {
			return nil, false // references a window function column
		}
		keys[i] = plan.SortKey{Col: col, Desc: k.Desc, NullsFirst: k.NullsFirst}
	}
	groups, err := buildWindowGroups(w.Fns, w.Input.Types())
	if err != nil {
		return nil, false
	}
	payoff := false
	for gi := range groups {
		g := &groups[gi]
		if !windowReorderSafe(g, w.Fns, keys) {
			return nil, false
		}
		if windowSortSatisfied(keys, g) {
			payoff = true
		}
	}
	if !payoff {
		return nil, false
	}
	w.Input = &SortOp{Input: w.Input, Keys: keys, Ctx: s.Ctx}
	return s.Input, true
}

// windowReorderSafe reports whether reordering the window's input by keys
// cannot change any of group g's computed values (see
// pushSortThroughWindow for the argument).
func windowReorderSafe(g *windowGroup, fns []plan.WindowFn, keys []plan.SortKey) bool {
	own := map[int]bool{}
	for _, c := range g.partitionBy {
		own[c] = true
	}
	for _, k := range g.orderBy {
		own[k.Col] = true
	}
	subset := true
	for _, k := range keys {
		if !own[k.Col] {
			subset = false
			break
		}
	}
	if subset {
		return true
	}
	for _, fi := range g.fnIdx {
		if !permutationInvariantFn(fns[fi]) {
			return false
		}
	}
	return true
}

// permutationInvariantFn reports whether a window function's values are
// unchanged under any reordering of its input: peer membership and
// partition membership are order-free, and the accumulation is exact and
// commutative. row_number depends on within-peer positions; avg and float
// sums accumulate in visit order.
func permutationInvariantFn(fn plan.WindowFn) bool {
	switch fn.Fn {
	case "rank", "dense_rank", "count", "min", "max":
		return true
	case "sum":
		return fn.T.Kind != types.Float64
	}
	return false
}

// windowSortSatisfied reports whether input delivered in this ordering
// lets group g skip its partition/order sort: the leading keys cover the
// partition columns (any permutation and direction — contiguity is all a
// partition needs), immediately followed by the exact order keys. Any
// further delivered keys only refine ties that the group's own stable
// sort would leave in arrival (= delivered) order anyway, so the skip is
// unconditionally byte-identical.
func windowSortSatisfied(delivered []plan.SortKey, g *windowGroup) bool {
	if len(g.partitionBy)+len(g.orderBy) == 0 {
		return false
	}
	m := plan.OrderingCoversSet(delivered, g.partitionBy)
	if m < 0 || len(delivered) < m+len(g.orderBy) {
		return false
	}
	for i, k := range g.orderBy {
		if delivered[m+i] != k {
			return false
		}
	}
	return true
}

// ExplainPhysical renders the prepared physical operator tree, one line
// per operator, annotating the property-driven decisions: which window
// groups skip their sort or share a partition pass, which exchanges are
// partition-wise, and where enforcers remain. Sessions expose it as
// LastPhysicalPlan; the golden-explain suite asserts on it.
func ExplainPhysical(op Operator) string {
	var b strings.Builder
	explainPhys(&b, op, 0)
	return b.String()
}

func explainPhys(b *strings.Builder, op Operator, depth int) {
	indent := strings.Repeat("  ", depth)
	line := func(format string, args ...interface{}) {
		fmt.Fprintf(b, "%s%s\n", indent, fmt.Sprintf(format, args...))
	}
	switch x := op.(type) {
	case *ScanOp:
		n := len(x.Splits)
		shared := ""
		if x.Shared != nil {
			n = len(x.Shared.splits)
			shared = " shared-queue"
		}
		line("TableScan table=%s splits=%d%s", x.Table.Name, n, shared)
	case *FilterOp:
		line("Filter")
		explainPhys(b, x.Input, depth+1)
	case *ProjectOp:
		line("Project")
		explainPhys(b, x.Input, depth+1)
	case *LimitOp:
		line("Limit n=%d offset=%d", x.N, x.Offset)
		explainPhys(b, x.Input, depth+1)
	case *SortOp:
		line("Sort keys=%s", sortKeysDigest(x.Keys))
		explainPhys(b, x.Input, depth+1)
	case *TopNOp:
		line("TopN n=%d keys=%s", x.N, sortKeysDigest(x.Keys))
		explainPhys(b, x.Input, depth+1)
	case *MergeOp:
		line("MergeExchange workers=%d keys=%s", len(x.Workers), sortKeysDigest(x.Keys))
		if len(x.Workers) > 0 {
			explainPhys(b, x.Workers[0], depth+1)
		}
	case *ParallelTopNOp:
		line("ParallelTopN workers=%d n=%d keys=%s", len(x.Workers), x.N, sortKeysDigest(x.Keys))
		if len(x.Workers) > 0 {
			explainPhys(b, x.Workers[0], depth+1)
		}
	case *ParallelOp:
		line("Exchange workers=%d", len(x.Workers))
		if len(x.Workers) > 0 {
			explainPhys(b, x.Workers[0], depth+1)
		}
	case *ParallelHashAggOp:
		mode := ""
		if x.Disjoint {
			mode = " partition-wise"
		}
		line("ParallelHashAgg workers=%d groups=%d%s", len(x.Workers), len(x.GroupExprs), mode)
		if len(x.Workers) > 0 {
			explainPhys(b, x.Workers[0], depth+1)
		}
	case *HashAggOp:
		line("HashAgg groups=%d", len(x.GroupExprs))
		explainPhys(b, x.Input, depth+1)
	case *HashJoinOp:
		shared := ""
		if x.Shared != nil {
			shared = " shared-build"
		}
		line("HashJoin kind=%s%s", x.Kind, shared)
		explainPhys(b, x.Left, depth+1)
		if x.Right != nil {
			explainPhys(b, x.Right, depth+1)
		} else if x.Shared != nil && x.Shared.right != nil {
			explainPhys(b, x.Shared.right, depth+1)
		}
	case *PartitionJoinOp:
		kind := "?"
		if hj, ok := chainJoin(x.Pipeline); ok {
			kind = hj.Kind.String()
		}
		line("PartitionJoin kind=%s units=%d workers=%d", kind, len(x.Units), x.workersWanted())
		explainPhys(b, x.Pipeline, depth+1)
	case *WindowOp:
		line("Window %s", explainWindow(x))
		explainPhys(b, x.Input, depth+1)
	case *SpoolOp:
		line("Spool id=%d", x.ID)
		explainPhys(b, x.Input, depth+1)
	case *SetOpOp:
		line("SetOp kind=%v", x.Kind)
		explainPhys(b, x.Left, depth+1)
		explainPhys(b, x.Right, depth+1)
	case *UnionAllOp:
		line("UnionAll")
		for _, in := range x.Inputs {
			explainPhys(b, in, depth+1)
		}
	case *ValuesOp:
		line("Values rows=%d", len(x.Rows))
	default:
		line("%T", op)
		// Unknown wrappers (e.g. dag.SpillExchangeOp) are rendered opaque.
	}
}

// explainWindow annotates the window's per-group plan: how many groups,
// how many arrive presorted (sort elided) and how many share a partition
// pass — the same classification computeResident will make.
func explainWindow(w *WindowOp) string {
	groups, err := buildWindowGroups(w.Fns, w.Input.Types())
	if err != nil {
		return fmt.Sprintf("fns=%d", len(w.Fns))
	}
	var delivered []plan.SortKey
	if w.Ctx.propsOn() {
		delivered = DeliveredProps(w.Input).Ordering
	}
	wp := planWindowGroups(groups, delivered, w.Ctx.propsOn())
	presorted := 0
	for _, p := range wp.presorted {
		if p {
			presorted++
		}
	}
	sharedGroups := 0
	for _, bucket := range wp.shared {
		sharedGroups += len(bucket)
	}
	out := fmt.Sprintf("fns=%d specs=%d", len(w.Fns), len(groups))
	if presorted > 0 {
		out += fmt.Sprintf(" presorted=%d", presorted)
	}
	if sharedGroups > 0 {
		out += fmt.Sprintf(" shared-partition-pass=%d(%d passes)", sharedGroups, len(wp.shared))
	}
	return out
}

func sortKeysDigest(keys []plan.SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.Digest()
	}
	return "[" + strings.Join(parts, ",") + "]"
}
