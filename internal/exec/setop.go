package exec

import (
	"strconv"
	"strings"

	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// rowKey renders a row as a collision-free map key (length-prefixed).
func rowKey(row []types.Datum) string {
	var b strings.Builder
	for _, d := range row {
		if d.Null {
			b.WriteString("n|")
			continue
		}
		s := d.String()
		b.WriteString(strconv.Itoa(int(d.K)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	return b.String()
}

// UnionAllOp concatenates its inputs.
type UnionAllOp struct {
	Inputs []Operator
	cur    int
}

// Types implements Operator.
func (u *UnionAllOp) Types() []types.T { return u.Inputs[0].Types() }

// Open implements Operator.
func (u *UnionAllOp) Open() error {
	u.cur = 0
	for _, in := range u.Inputs {
		if err := in.Open(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (u *UnionAllOp) Next() (*vector.Batch, error) {
	for u.cur < len(u.Inputs) {
		b, err := u.Inputs[u.cur].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.cur++
	}
	return nil, nil
}

// Close implements Operator.
func (u *UnionAllOp) Close() error {
	var first error
	for _, in := range u.Inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetOpOp implements UNION [DISTINCT], INTERSECT [ALL] and EXCEPT [ALL]
// using row-count maps (paper §3.1: set operations were among the SQL gaps
// closed after Hive 1.2).
type SetOpOp struct {
	Kind  plan.SetOpKind
	All   bool
	Left  Operator
	Right Operator
	Ctx   *Context

	out     [][]types.Datum
	done    bool
	emitted int
}

// Types implements Operator.
func (s *SetOpOp) Types() []types.T { return s.Left.Types() }

// Open implements Operator.
func (s *SetOpOp) Open() error {
	s.out, s.done, s.emitted = nil, false, 0
	if err := s.Left.Open(); err != nil {
		return err
	}
	return s.Right.Open()
}

func drainCounts(ctx *Context, op Operator) (map[string]int64, map[string][]types.Datum, []string, error) {
	counts := map[string]int64{}
	sample := map[string][]types.Datum{}
	var order []string
	for {
		if err := ctx.CheckCanceled(); err != nil {
			return nil, nil, nil, err
		}
		b, err := op.Next()
		if err != nil {
			return nil, nil, nil, err
		}
		if b == nil {
			return counts, sample, order, nil
		}
		for i := 0; i < b.N; i++ {
			row := b.Row(i)
			k := rowKey(row)
			if counts[k] == 0 {
				sample[k] = row
				order = append(order, k)
			}
			counts[k]++
		}
	}
}

func (s *SetOpOp) compute() error {
	lCounts, lRows, lOrder, err := drainCounts(s.Ctx, s.Left)
	if err != nil {
		return err
	}
	rCounts, rRows, rOrder, err := drainCounts(s.Ctx, s.Right)
	if err != nil {
		return err
	}
	for _, k := range lOrder {
		lc, rc := lCounts[k], rCounts[k]
		var n int64
		switch s.Kind {
		case plan.Union:
			n = 1 // UNION DISTINCT; UNION ALL is UnionAllOp
		case plan.Intersect:
			if s.All {
				n = min64(lc, rc)
			} else if rc > 0 {
				n = 1
			}
		case plan.Except:
			if s.All {
				n = lc - rc
			} else if rc == 0 {
				n = 1
			}
		}
		for i := int64(0); i < n; i++ {
			s.out = append(s.out, lRows[k])
		}
	}
	// UNION DISTINCT also emits right-only rows.
	if s.Kind == plan.Union {
		for _, k := range rOrder {
			if lCounts[k] == 0 {
				s.out = append(s.out, rRows[k])
			}
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Next implements Operator.
func (s *SetOpOp) Next() (*vector.Batch, error) {
	if !s.done {
		if err := s.compute(); err != nil {
			return nil, err
		}
		s.done = true
	}
	if s.emitted >= len(s.out) {
		return nil, nil
	}
	n := len(s.out) - s.emitted
	if n > vector.BatchSize {
		n = vector.BatchSize
	}
	b := vector.NewBatch(s.Types(), n)
	for i := 0; i < n; i++ {
		for c, d := range s.out[s.emitted+i] {
			b.Cols[c].Set(i, d)
		}
	}
	b.N = n
	s.emitted += n
	return b, nil
}

// Close implements Operator.
func (s *SetOpOp) Close() error {
	s.out = nil
	if err := s.Left.Close(); err != nil {
		s.Right.Close()
		return err
	}
	return s.Right.Close()
}
