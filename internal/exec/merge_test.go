package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/types"
	"repro/internal/vector"
)

// rowsOp emits fixed rows in batches of a given size — a test stand-in for
// a worker pipeline. It counts lifecycle calls so tests can assert an input
// was (or was not) touched.
type rowsOp struct {
	ts    []types.T
	rows  [][]types.Datum
	batch int

	pos   int
	opens int
	nexts int
	errAt int // emit an error instead of the batch containing row errAt (0 = never)
}

func (r *rowsOp) Types() []types.T { return r.ts }

func (r *rowsOp) Open() error { r.opens++; r.pos = 0; return nil }

func (r *rowsOp) Next() (*vector.Batch, error) {
	r.nexts++
	if r.errAt > 0 && r.pos >= r.errAt {
		return nil, errors.New("rowsOp: injected failure")
	}
	if r.pos >= len(r.rows) {
		return nil, nil
	}
	n := r.batch
	if n <= 0 {
		n = vector.BatchSize
	}
	if rem := len(r.rows) - r.pos; n > rem {
		n = rem
	}
	b := vector.NewBatch(r.ts, n)
	for i := 0; i < n; i++ {
		for c, d := range r.rows[r.pos+i] {
			b.Cols[c].Set(i, d)
		}
	}
	b.N = n
	r.pos += n
	return b, nil
}

func (r *rowsOp) Close() error { return nil }

var mergeTestTypes = []types.T{types.TBigint, types.TString, types.TBigint}

// randomRows builds rows of (nullable bigint, string, unique id) — the id
// makes multiset comparison exact even under heavy key duplication.
func randomRows(rng *rand.Rand, n int) [][]types.Datum {
	rows := make([][]types.Datum, n)
	for i := range rows {
		k := types.NewBigint(int64(rng.Intn(7)))
		if rng.Intn(5) == 0 {
			k = types.NullOf(types.Int64)
		}
		rows[i] = []types.Datum{
			k,
			types.NewString(string(rune('a' + rng.Intn(4)))),
			types.NewBigint(int64(i)),
		}
	}
	return rows
}

func randomKeys(rng *rand.Rand) []plan.SortKey {
	keys := []plan.SortKey{{Col: 0, Desc: rng.Intn(2) == 0, NullsFirst: rng.Intn(2) == 0}}
	if rng.Intn(2) == 0 {
		keys = append(keys, plan.SortKey{Col: 1, Desc: rng.Intn(2) == 0})
	}
	return keys
}

func renderRow(r []types.Datum) string {
	parts := make([]string, len(r))
	for i, d := range r {
		parts[i] = d.String()
	}
	return strings.Join(parts, "|")
}

// runMergeTrial partitions random rows into k pre-sorted runs, streams them
// through a MergeOp, and checks the output against sort.Slice ground truth:
// the merged stream must be a permutation of the input and nondecreasing
// under the key comparator. Shared by the fixed-seed test and the
// seed-randomized stress twin.
func runMergeTrial(t *testing.T, rng *rand.Rand) {
	t.Helper()
	rows := randomRows(rng, rng.Intn(120))
	keys := randomKeys(rng)
	less := sortLess(keys)
	k := 1 + rng.Intn(8)
	runs := make([][][]types.Datum, k)
	for _, r := range rows {
		w := rng.Intn(k)
		runs[w] = append(runs[w], r)
	}
	workers := make([]Operator, k)
	for w := range workers {
		sort.Slice(runs[w], func(i, j int) bool { return less(runs[w][i], runs[w][j]) })
		workers[w] = &rowsOp{ts: mergeTestTypes, rows: runs[w], batch: 1 + rng.Intn(4)}
	}
	m := &MergeOp{Workers: workers, Keys: keys}
	got, err := Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("merged %d rows, want %d", len(got), len(rows))
	}
	var gotR, wantR []string
	for i, r := range got {
		if i > 0 && less(r, got[i-1]) {
			t.Fatalf("row %d out of order: %s after %s (keys %v)", i, renderRow(r), renderRow(got[i-1]), keys)
		}
		gotR = append(gotR, renderRow(r))
	}
	for _, r := range rows {
		wantR = append(wantR, renderRow(r))
	}
	sort.Strings(gotR)
	sort.Strings(wantR)
	if strings.Join(gotR, "\n") != strings.Join(wantR, "\n") {
		t.Fatalf("merged rows are not a permutation of the input\n got %v\nwant %v", gotR, wantR)
	}
}

// TestLoserTreeMergeProperty drives the k-way merge over randomized runs,
// batch sizes and key sets with a fixed seed (the seed-randomized variant
// runs under -tags stress, the hll pattern).
func TestLoserTreeMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		runMergeTrial(t, rng)
	}
}

// runTopNHeapTrial checks the bounded heap against stable-sort-and-truncate
// ground truth. The heap's arrival-order tie-breaking makes the comparison
// exact, not just key-equal.
func runTopNHeapTrial(t *testing.T, rng *rand.Rand) {
	t.Helper()
	rows := randomRows(rng, rng.Intn(100))
	keys := randomKeys(rng)
	n := int64(rng.Intn(20))
	h := newTopNHeap(keys, n)
	for _, r := range rows {
		h.push(r)
	}
	got := h.sorted()
	want := append([][]types.Datum{}, rows...)
	sortRows(want, keys)
	if int64(len(want)) > n {
		want = want[:n]
	}
	if len(got) != len(want) {
		t.Fatalf("heap kept %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if renderRow(got[i]) != renderRow(want[i]) {
			t.Fatalf("row %d: got %s want %s (keys %v, n %d)", i, renderRow(got[i]), renderRow(want[i]), keys, n)
		}
	}
}

// TestTopNHeapMatchesStableSort is the fixed-seed property test for the
// bounded heap behind TopNOp and ParallelTopNOp.
func TestTopNHeapMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		runTopNHeapTrial(t, rng)
	}
}

// TestMergeExchangeEarlyCloseNoLeak closes merges mid-stream — the LIMIT-
// satisfied path — over many small runs with tiny batches and verifies no
// worker goroutine outlives its operator. Runs under `make race`.
func TestMergeExchangeEarlyCloseNoLeak(t *testing.T) {
	keys := []plan.SortKey{{Col: 2}}
	before := runtime.NumGoroutine()
	for iter := 0; iter < 40; iter++ {
		workers := make([]Operator, 16)
		id := 0
		for w := range workers {
			rows := make([][]types.Datum, 200)
			for i := range rows {
				rows[i] = []types.Datum{
					types.NewBigint(int64(i % 3)), types.NewString("x"), types.NewBigint(int64(id)),
				}
				id++
			}
			workers[w] = &rowsOp{ts: mergeTestTypes, rows: rows, batch: 1}
		}
		m := &MergeOp{Workers: workers, Keys: keys}
		if err := m.Open(); err != nil {
			t.Fatal(err)
		}
		// Pull one batch (workers keep producing behind it), then bail —
		// also exercise close-before-first-Next on even iterations.
		if iter%2 == 0 {
			if b, err := m.Next(); err != nil || b == nil {
				t.Fatalf("iter %d: batch %v err %v", iter, b, err)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Goroutines park asynchronously after Close returns from wg.Wait (it
	// returns when counters hit zero, which races the final stack frames),
	// so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMergeExchangeWorkerError verifies a failing run surfaces its error
// through the merge and unwinds the healthy workers.
func TestMergeExchangeWorkerError(t *testing.T) {
	keys := []plan.SortKey{{Col: 2}}
	ok := make([][]types.Datum, 50)
	for i := range ok {
		ok[i] = []types.Datum{types.NewBigint(1), types.NewString("x"), types.NewBigint(int64(i))}
	}
	workers := []Operator{
		&rowsOp{ts: mergeTestTypes, rows: ok, batch: 2},
		&rowsOp{ts: mergeTestTypes, rows: ok, batch: 2, errAt: 10},
		&rowsOp{ts: mergeTestTypes, rows: ok, batch: 2},
	}
	m := &MergeOp{Workers: workers, Keys: keys}
	_, err := Drain(m)
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("expected injected failure, got %v", err)
	}
}

// TestMergeExchangeErrorBeforeBrokenPrefix pins the early-exit hazard: when
// the run holding the smallest keys dies mid-stream, the merge must surface
// the error at that run's premature end — NOT keep emitting the other runs'
// buffered rows, which a downstream LIMIT could accept as a (wrong) ordered
// prefix without ever reaching end-of-stream.
func TestMergeExchangeErrorBeforeBrokenPrefix(t *testing.T) {
	keys := []plan.SortKey{{Col: 2}}
	mkRows := func(lo, n int) [][]types.Datum {
		rows := make([][]types.Datum, n)
		for i := range rows {
			rows[i] = []types.Datum{types.NewBigint(0), types.NewString("x"), types.NewBigint(int64(lo + i))}
		}
		return rows
	}
	workers := []Operator{
		// Smallest keys live here; dies after 4 rows.
		&rowsOp{ts: mergeTestTypes, rows: mkRows(0, 50), batch: 2, errAt: 4},
		&rowsOp{ts: mergeTestTypes, rows: mkRows(100, 50), batch: 2},
		&rowsOp{ts: mergeTestTypes, rows: mkRows(200, 50), batch: 2},
	}
	m := &MergeOp{Workers: workers, Keys: keys}
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	b, err := m.Next()
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("first Next after mid-run failure: batch %v err %v, want injected failure", b, err)
	}
}

// TestTopNZeroShortCircuits covers the N == 0 fix: serial and parallel TopN
// must report EOF without opening or draining their input.
func TestTopNZeroShortCircuits(t *testing.T) {
	keys := []plan.SortKey{{Col: 0}}
	in := &rowsOp{ts: mergeTestTypes, rows: randomRows(rand.New(rand.NewSource(1)), 10)}
	top := &TopNOp{Input: in, Keys: keys, N: 0}
	rows, err := Drain(top)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("TopN(0) emitted %d rows", len(rows))
	}
	if in.opens != 0 || in.nexts != 0 {
		t.Fatalf("TopN(0) touched its input: %d opens, %d nexts", in.opens, in.nexts)
	}
	in2 := &rowsOp{ts: mergeTestTypes, rows: randomRows(rand.New(rand.NewSource(2)), 10)}
	par := &ParallelTopNOp{Workers: []Operator{in2, in2}, Keys: keys, N: 0}
	rows, err = Drain(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("ParallelTopN(0) emitted %d rows", len(rows))
	}
	if in2.opens != 0 || in2.nexts != 0 {
		t.Fatalf("ParallelTopN(0) touched its input: %d opens, %d nexts", in2.opens, in2.nexts)
	}
}

// TestParallelizePlacesSortBelowExchange checks the planner rewrites: Sort
// over a clonable pipeline becomes a MergeOp whose workers are per-run
// sorts, TopN becomes a ParallelTopNOp, an unfused Limit-over-Sort gets the
// limit pushed into per-worker runs, and the hive.sort.parallel=false knob
// keeps the coordinator sort.
func TestParallelizePlacesSortBelowExchange(t *testing.T) {
	w := newTestWarehouse(t)
	keys := []plan.SortKey{{Col: 1}, {Col: 0, Desc: true}}

	ctx := NewContext()
	par, changed := Parallelize(&SortOp{Input: w.salesScan(ctx), Keys: keys}, ctx, 4)
	if !changed {
		t.Fatal("Parallelize left the sort serial")
	}
	m, ok := par.(*MergeOp)
	if !ok {
		t.Fatalf("expected MergeOp, got %T", par)
	}
	for _, wk := range m.Workers {
		if _, ok := wk.(*SortOp); !ok {
			t.Fatalf("merge worker is %T, want per-run *SortOp", wk)
		}
	}

	ctx = NewContext()
	par, _ = Parallelize(&TopNOp{Input: w.salesScan(ctx), Keys: keys, N: 3}, ctx, 4)
	if _, ok := par.(*ParallelTopNOp); !ok {
		t.Fatalf("expected ParallelTopNOp, got %T", par)
	}

	ctx = NewContext()
	par, _ = Parallelize(&LimitOp{Input: &SortOp{Input: w.salesScan(ctx), Keys: keys}, N: 3}, ctx, 4)
	ptop, ok := par.(*ParallelTopNOp)
	if !ok {
		t.Fatalf("expected ParallelTopNOp for Limit over Sort, got %T", par)
	}
	if ptop.N != 3 {
		t.Fatalf("limit not pushed into runs: N = %d", ptop.N)
	}

	ctx = NewContext()
	ctx.SortParallel = false
	par, _ = Parallelize(&SortOp{Input: w.salesScan(ctx), Keys: keys}, ctx, 4)
	s, ok := par.(*SortOp)
	if !ok {
		t.Fatalf("knob off: expected coordinator *SortOp, got %T", par)
	}
	if _, ok := s.Input.(*ParallelOp); !ok {
		t.Fatalf("knob off: sort input is %T, want the unordered *ParallelOp exchange", s.Input)
	}
}

// TestParallelOrderByOrderedMatchesSerial runs ORDER BY / TopN queries at
// several DOPs and requires output identical to serial *in order*, not just
// as a multiset (sort keys are unique per row, so ties cannot mask run-
// interleaving differences).
func TestParallelOrderByOrderedMatchesSerial(t *testing.T) {
	w := newTestWarehouse(t)
	queries := []string{
		`SELECT item_sk, ds, qty FROM sales ORDER BY item_sk, ds`,
		`SELECT item_sk, ds, price FROM sales ORDER BY price DESC, item_sk DESC, ds`,
		`SELECT item_sk, ds FROM sales ORDER BY qty, item_sk, ds`,
		`SELECT item_sk, ds FROM sales ORDER BY item_sk DESC, ds LIMIT 3`,
		`SELECT item_sk, ds, qty FROM sales ORDER BY qty DESC, item_sk, ds LIMIT 5`,
		`SELECT category, COUNT(*) FROM sales s, items i WHERE s.item_sk = i.item_sk
		   GROUP BY category ORDER BY category`,
	}
	for _, q := range queries {
		want, err := w.run(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		for _, dop := range []int{2, 4, 8} {
			got, err := w.runDOP(q, dop)
			if err != nil {
				t.Fatalf("dop=%d %s: %v", dop, q, err)
			}
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("dop=%d %s: ordered output diverges\n got %v\nwant %v", dop, q, got, want)
			}
		}
	}
}

// TestMergeExchangeManyRuns merges more runs than executor-slot tests
// usually reach, crossing the power-of-two padding boundaries of the loser
// tree (k = 1, 2, 3, ..., 17).
func TestMergeExchangeManyRuns(t *testing.T) {
	keys := []plan.SortKey{{Col: 2}}
	for k := 1; k <= 17; k++ {
		var workers []Operator
		var all []string
		for wi := 0; wi < k; wi++ {
			var rows [][]types.Datum
			for i := wi; i < 100; i += k {
				row := []types.Datum{types.NewBigint(0), types.NewString("x"), types.NewBigint(int64(i))}
				rows = append(rows, row)
			}
			workers = append(workers, &rowsOp{ts: mergeTestTypes, rows: rows, batch: 3})
		}
		for i := 0; i < 100; i++ {
			all = append(all, fmt.Sprintf("0|x|%d", i))
		}
		m := &MergeOp{Workers: workers, Keys: keys}
		got, err := Drain(m)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		var gotR []string
		for _, r := range got {
			gotR = append(gotR, renderRow(r))
		}
		if strings.Join(gotR, ",") != strings.Join(all, ",") {
			t.Fatalf("k=%d: merged stream wrong\n got %v", k, gotR)
		}
	}
}
