package exec

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/acid"
	"repro/internal/analyze"
	"repro/internal/dfs"
	"repro/internal/metastore"
	"repro/internal/orc"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/vector"
)

// testWarehouse sets up a small catalog with ACID data:
//
//	sales(item_sk BIGINT, qty INT, price DECIMAL(7,2)) PARTITIONED BY (ds INT)
//	items(item_sk BIGINT, category STRING, name STRING)
type testWarehouse struct {
	ms *metastore.Metastore
	t  *testing.T
}

func newTestWarehouse(t *testing.T) *testWarehouse {
	t.Helper()
	ms := metastore.New(dfs.New(), "/wh")
	w := &testWarehouse{ms: ms, t: t}
	if err := ms.CreateTable(&metastore.Table{
		DB: "default", Name: "sales",
		Cols: []metastore.Column{
			{Name: "item_sk", Type: types.TBigint},
			{Name: "qty", Type: types.TInt},
			{Name: "price", Type: types.TDecimal(7, 2)},
		},
		PartKeys: []metastore.Column{{Name: "ds", Type: types.TInt}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ms.CreateTable(&metastore.Table{
		DB: "default", Name: "items",
		Cols: []metastore.Column{
			{Name: "item_sk", Type: types.TBigint},
			{Name: "category", Type: types.TString},
			{Name: "name", Type: types.TString},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// Partition ds=1: items 1..4; ds=2: items 3..6.
	w.insertSales(1, [][3]int64{{1, 2, 500}, {2, 1, 1000}, {3, 5, 250}, {4, 1, 750}})
	w.insertSales(2, [][3]int64{{3, 2, 250}, {4, 4, 750}, {5, 1, 1250}, {6, 3, 2000}})
	w.insertItems([][2]string{
		{"1", "Sports"}, {"2", "Books"}, {"3", "Sports"},
		{"4", "Home"}, {"5", "Books"}, {"6", "Sports"},
	})
	return w
}

func (w *testWarehouse) insertSales(ds int, rows [][3]int64) {
	w.t.Helper()
	tbl, _ := w.ms.GetTable("default", "sales")
	part, err := w.ms.AddPartition("default", "sales", []string{fmt.Sprint(ds)})
	if err != nil {
		w.t.Fatal(err)
	}
	tm := w.ms.Txns()
	id := tm.Begin()
	wid, _ := tm.AllocateWriteId(id, tbl.FullName())
	iw := acid.NewInsertWriter(w.ms.FS(), part.Location, wid, 0, []orc.Column{
		{Name: "item_sk", Type: types.TBigint},
		{Name: "qty", Type: types.TInt},
		{Name: "price", Type: types.TDecimal(7, 2)},
	}, orc.WriterOptions{StripeRows: 2})
	for _, r := range rows {
		if err := iw.WriteRow([]types.Datum{
			types.NewBigint(r[0]), types.NewInt(int32(r[1])), types.NewDecimal(r[2], 2),
		}); err != nil {
			w.t.Fatal(err)
		}
	}
	if err := iw.Close(); err != nil {
		w.t.Fatal(err)
	}
	if err := tm.Commit(id); err != nil {
		w.t.Fatal(err)
	}
}

func (w *testWarehouse) insertItems(rows [][2]string) {
	w.t.Helper()
	tbl, _ := w.ms.GetTable("default", "items")
	tm := w.ms.Txns()
	id := tm.Begin()
	wid, _ := tm.AllocateWriteId(id, tbl.FullName())
	iw := acid.NewInsertWriter(w.ms.FS(), tbl.Location, wid, 0, []orc.Column{
		{Name: "item_sk", Type: types.TBigint},
		{Name: "category", Type: types.TString},
		{Name: "name", Type: types.TString},
	}, orc.WriterOptions{})
	for _, r := range rows {
		var sk int64
		fmt.Sscan(r[0], &sk)
		if err := iw.WriteRow([]types.Datum{
			types.NewBigint(sk), types.NewString(r[1]), types.NewString("item-" + r[0]),
		}); err != nil {
			w.t.Fatal(err)
		}
	}
	if err := iw.Close(); err != nil {
		w.t.Fatal(err)
	}
	if err := tm.Commit(id); err != nil {
		w.t.Fatal(err)
	}
}

// makeScan is the scan factory tests use: every partition becomes a split.
func (w *testWarehouse) makeScan(ctx *Context) func(s *plan.Scan) (Operator, error) {
	return func(s *plan.Scan) (Operator, error) {
		tm := w.ms.Txns()
		snap := tm.GetSnapshot()
		valid := tm.GetValidWriteIds(s.Table.FullName(), snap)
		var splits []TableSplit
		if len(s.Table.PartKeys) == 0 {
			splits = append(splits, TableSplit{Loc: s.Table.Location, Valid: valid})
		} else {
			for _, p := range w.ms.PartitionsOf(s.Table) {
				vals := make([]types.Datum, len(p.Values))
				for i, v := range p.Values {
					d, err := types.Cast(types.NewString(v), s.Table.PartKeys[i].Type)
					if err != nil {
						return nil, err
					}
					vals[i] = d
				}
				splits = append(splits, TableSplit{Loc: p.Location, PartValues: vals, Valid: valid})
			}
		}
		return &ScanOp{
			FS: w.ms.FS(), Table: s.Table, Cols: s.Cols, Meta: s.Meta,
			Splits: splits, Ctx: ctx,
		}, nil
	}
}

// analyzeSQL parses and analyzes a SELECT against the test catalog.
func (w *testWarehouse) analyzeSQL(q string) (plan.Rel, error) {
	st, err := sql.Parse(q)
	if err != nil {
		return nil, err
	}
	return analyze.New(w.ms, "default").AnalyzeSelect(st.(*sql.SelectStmt))
}

// run executes a SQL query end to end and returns rows rendered as strings.
func (w *testWarehouse) run(q string) ([]string, error) {
	return w.runWith(NewContext(), q)
}

func (w *testWarehouse) mustRun(q string) []string {
	w.t.Helper()
	rows, err := w.run(q)
	if err != nil {
		w.t.Fatalf("run %q: %v", q, err)
	}
	return rows
}

func sorted(rows []string) []string {
	out := append([]string{}, rows...)
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func TestScanAndFilter(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun("SELECT item_sk, qty FROM sales WHERE ds = 1 AND qty > 1 ORDER BY item_sk")
	want := []string{"1|2", "3|5"}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("got %v want %v", rows, want)
	}
}

func TestPartitionColumnProjection(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun("SELECT ds, count(*) FROM sales GROUP BY ds ORDER BY ds")
	want := []string{"1|4", "2|4"}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("got %v want %v", rows, want)
	}
}

func TestJoinAggregation(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun(`SELECT category, SUM(qty * price) AS total
		FROM sales JOIN items ON sales.item_sk = items.item_sk
		GROUP BY category ORDER BY total DESC`)
	// Sports: items 1,3,6 -> 2*5.00 + 5*2.50 + 2*2.50 + 3*20.00 = 10+12.5+5+60 = 87.50
	// Home: item 4 -> 1*7.50 + 4*7.50 = 37.50
	// Books: items 2,5 -> 1*10.00 + 1*12.50 = 22.50
	want := []string{"Sports|87.50", "Home|37.50", "Books|22.50"}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("got %v want %v", rows, want)
	}
}

func TestLeftOuterJoinProducesNulls(t *testing.T) {
	w := newTestWarehouse(t)
	// items 2 and 5 have sales only via Books; delete-free check with an
	// item that has no sales at all: add item 99.
	w.insertItems([][2]string{{"99", "Ghost"}})
	rows := w.mustRun(`SELECT items.item_sk, sales.qty FROM items
		LEFT OUTER JOIN sales ON items.item_sk = sales.item_sk
		WHERE items.item_sk = 99`)
	if len(rows) != 1 || rows[0] != "99|NULL" {
		t.Errorf("got %v", rows)
	}
}

func TestSemiAntiViaSubqueries(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun(`SELECT DISTINCT category FROM items
		WHERE item_sk IN (SELECT item_sk FROM sales WHERE ds = 1) ORDER BY category`)
	if !reflect.DeepEqual(rows, []string{"Books", "Home", "Sports"}) {
		t.Errorf("IN: %v", rows)
	}
	rows = w.mustRun(`SELECT item_sk FROM items
		WHERE item_sk NOT IN (SELECT item_sk FROM sales) ORDER BY item_sk`)
	if len(rows) != 0 {
		t.Errorf("NOT IN should be empty, got %v", rows)
	}
	rows = w.mustRun(`SELECT i.item_sk FROM items i
		WHERE NOT EXISTS (SELECT 1 FROM sales s WHERE s.item_sk = i.item_sk AND s.ds = 2)
		ORDER BY i.item_sk`)
	if !reflect.DeepEqual(rows, []string{"1", "2"}) {
		t.Errorf("NOT EXISTS: %v", rows)
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun(`SELECT i.item_sk FROM items i
		WHERE 2 < (SELECT SUM(s.qty) FROM sales s WHERE s.item_sk = i.item_sk)
		ORDER BY i.item_sk`)
	// qty sums: 1->2, 2->1, 3->7, 4->5, 5->1, 6->3.
	if !reflect.DeepEqual(rows, []string{"3", "4", "6"}) {
		t.Errorf("got %v", rows)
	}
}

func TestScalarSubqueryCardinalityGuard(t *testing.T) {
	w := newTestWarehouse(t)
	_, err := w.run("SELECT (SELECT item_sk FROM items) FROM items")
	if err == nil || !strings.Contains(err.Error(), "more than one row") {
		t.Errorf("expected cardinality error, got %v", err)
	}
}

func TestSetOperations(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun(`SELECT item_sk FROM sales WHERE ds = 1
		INTERSECT SELECT item_sk FROM sales WHERE ds = 2 ORDER BY item_sk`)
	if !reflect.DeepEqual(rows, []string{"3", "4"}) {
		t.Errorf("intersect: %v", rows)
	}
	rows = w.mustRun(`SELECT item_sk FROM sales WHERE ds = 1
		EXCEPT SELECT item_sk FROM sales WHERE ds = 2 ORDER BY item_sk`)
	if !reflect.DeepEqual(rows, []string{"1", "2"}) {
		t.Errorf("except: %v", rows)
	}
	rows = w.mustRun(`SELECT item_sk FROM sales WHERE ds = 1
		UNION SELECT item_sk FROM sales WHERE ds = 2`)
	if len(rows) != 6 {
		t.Errorf("union distinct: %v", rows)
	}
	rows = w.mustRun(`SELECT item_sk FROM sales UNION ALL SELECT item_sk FROM sales`)
	if len(rows) != 16 {
		t.Errorf("union all: %d rows", len(rows))
	}
}

func TestGroupingSetsExecution(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun(`SELECT ds, count(*) AS c FROM sales
		GROUP BY GROUPING SETS ((ds), ()) ORDER BY c, ds`)
	// (ds=1,4), (ds=2,4), (NULL,8)
	if !reflect.DeepEqual(sorted(rows), sorted([]string{"1|4", "2|4", "NULL|8"})) {
		t.Errorf("grouping sets: %v", rows)
	}
}

func TestWindowExecution(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun(`SELECT item_sk, rank() OVER (PARTITION BY ds ORDER BY price DESC) AS r
		FROM sales WHERE ds = 1 ORDER BY r, item_sk`)
	// prices ds=1: item2=10.00, item4=7.50, item1=5.00, item3=2.50
	want := []string{"2|1", "4|2", "1|3", "3|4"}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("rank: %v", rows)
	}
	rows = w.mustRun(`SELECT item_sk, SUM(qty) OVER (PARTITION BY ds ORDER BY item_sk) AS running
		FROM sales WHERE ds = 2 ORDER BY item_sk`)
	want = []string{"3|2", "4|6", "5|7", "6|10"}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("running sum: %v", rows)
	}
}

func TestHavingAndDistinctAggregates(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun(`SELECT category, COUNT(DISTINCT items.item_sk) AS n
		FROM items JOIN sales ON items.item_sk = sales.item_sk
		GROUP BY category HAVING COUNT(DISTINCT items.item_sk) > 1
		ORDER BY category`)
	if !reflect.DeepEqual(rows, []string{"Books|2", "Sports|3"}) {
		t.Errorf("got %v", rows)
	}
}

func TestCaseAndLike(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun(`SELECT name, CASE WHEN category = 'Sports' THEN 'S' ELSE 'O' END
		FROM items WHERE name LIKE 'item-_' AND category LIKE '%oo%' ORDER BY name`)
	if !reflect.DeepEqual(rows, []string{"item-2|O", "item-5|O"}) {
		t.Errorf("got %v", rows)
	}
}

func TestLimitAndTopN(t *testing.T) {
	w := newTestWarehouse(t)
	rows := w.mustRun("SELECT item_sk FROM sales ORDER BY price DESC, item_sk LIMIT 3")
	if !reflect.DeepEqual(rows, []string{"6", "5", "2"}) {
		t.Errorf("topn: %v", rows)
	}
}

func TestDeleteVisibilityThroughQuery(t *testing.T) {
	w := newTestWarehouse(t)
	// Delete item_sk=3 rows from partition ds=1 via the ACID layer.
	tbl, _ := w.ms.GetTable("default", "sales")
	part, _ := w.ms.AddPartition("default", "sales", []string{"1"})
	tm := w.ms.Txns()
	valid := tm.GetValidWriteIds(tbl.FullName(), tm.GetSnapshot())
	snap, err := acid.OpenSnapshot(w.ms.FS(), part.Location, []orc.Column{
		{Name: "item_sk", Type: types.TBigint},
		{Name: "qty", Type: types.TInt},
		{Name: "price", Type: types.TDecimal(7, 2)},
	}, valid)
	if err != nil {
		t.Fatal(err)
	}
	var keys []acid.RowKey
	snap.Scan([]int{acid.MetaWriteID, acid.MetaFileID, acid.MetaRowID, acid.NumMetaCols}, nil,
		func(b *vector.Batch) error {
			for i := 0; i < b.N; i++ {
				r := b.RowIdx(i)
				if b.Cols[3].I64[r] == 3 {
					keys = append(keys, acid.RowKey{
						WriteID: b.Cols[0].I64[r], FileID: b.Cols[1].I64[r], RowID: b.Cols[2].I64[r],
					})
				}
			}
			return nil
		})
	id := tm.Begin()
	wid, _ := tm.AllocateWriteId(id, tbl.FullName())
	dw := acid.NewDeleteWriter(w.ms.FS(), part.Location, wid, 0)
	for _, k := range keys {
		dw.Delete(k)
	}
	dw.Close()
	tm.Commit(id)

	rows := w.mustRun("SELECT item_sk FROM sales WHERE ds = 1 ORDER BY item_sk")
	if !reflect.DeepEqual(rows, []string{"1", "2", "4"}) {
		t.Errorf("after delete: %v", rows)
	}
}

func TestRuntimeFilterScanPruning(t *testing.T) {
	w := newTestWarehouse(t)
	ctx := NewContext()
	f := ctx.RegisterFilter(1)
	f.Min = types.NewBigint(3)
	f.Max = types.NewBigint(3)
	f.Bloom = NewBloom(8)
	f.Bloom.Add(types.NewBigint(3).Hash())
	f.Publish()
	tbl, _ := w.ms.GetTable("default", "sales")
	scan := &ScanOp{
		FS: w.ms.FS(), Table: tbl, Cols: []int{0},
		Splits: w.splitsOf(tbl), Ctx: ctx,
		RF: []RuntimeFilterBind{{FilterID: 1, OutCol: 0}},
	}
	rows, err := Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[0].I != 3 {
			t.Errorf("runtime filter leaked %v", r[0])
		}
	}
	if len(rows) != 2 {
		t.Errorf("expected 2 rows for item 3, got %d", len(rows))
	}
}

func (w *testWarehouse) splitsOf(tbl *metastore.Table) []TableSplit {
	tm := w.ms.Txns()
	valid := tm.GetValidWriteIds(tbl.FullName(), tm.GetSnapshot())
	var splits []TableSplit
	if len(tbl.PartKeys) == 0 {
		return []TableSplit{{Loc: tbl.Location, Valid: valid}}
	}
	for _, p := range w.ms.PartitionsOf(tbl) {
		vals := make([]types.Datum, len(p.Values))
		for i, v := range p.Values {
			vals[i], _ = types.Cast(types.NewString(v), tbl.PartKeys[i].Type)
		}
		splits = append(splits, TableSplit{Loc: p.Location, PartValues: vals, Valid: valid})
	}
	return splits
}

func TestDynamicPartitionPruning(t *testing.T) {
	w := newTestWarehouse(t)
	ctx := NewContext()
	f := ctx.RegisterFilter(7)
	f.Values = []types.Datum{types.NewInt(2)}
	f.Publish()
	tbl, _ := w.ms.GetTable("default", "sales")
	scan := &ScanOp{
		FS: w.ms.FS(), Table: tbl, Cols: []int{0, 3}, // item_sk, ds
		Splits: w.splitsOf(tbl), Ctx: ctx,
		Prune: []PartPruneBind{{FilterID: 7, PartKey: 0}},
	}
	rows, err := Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected only ds=2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r[1].I != 2 {
			t.Errorf("pruning leaked ds=%v", r[1])
		}
	}
}

func TestMemoryPressureError(t *testing.T) {
	w := newTestWarehouse(t)
	st, _ := sql.Parse("SELECT 1 FROM sales JOIN items ON sales.item_sk = items.item_sk")
	rel, err := analyze.New(w.ms, "default").AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	ctx.MemoryLimitRows = 2
	comp := &Compiler{Ctx: ctx, MakeScan: w.makeScan(ctx)}
	op, err := comp.Compile(rel)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Drain(op)
	if _, ok := err.(ErrMemoryPressure); !ok {
		t.Errorf("expected memory pressure, got %v", err)
	}
}
