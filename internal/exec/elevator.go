package exec

import (
	"repro/internal/acid"
	"repro/internal/orc"
)

// governedPrefetcher wraps the shared I/O elevator with the query's memory
// governor: every accepted prefetch reserves its estimated decode footprint
// and releases it when the elevator worker finishes, so background decode
// is accounted like any blocking operator and prefetch can never OOM the
// process on a query's behalf (it is shed instead).
type governedPrefetcher struct {
	inner orc.Prefetcher
	g     *Governor
	res   *Reservation
}

// NewGovernedPrefetcher returns a Prefetcher that charges prefetch decode
// memory to g before forwarding to inner. With a nil governor the inner
// prefetcher is returned unwrapped.
func NewGovernedPrefetcher(inner orc.Prefetcher, g *Governor) orc.Prefetcher {
	if g == nil {
		return inner
	}
	return &governedPrefetcher{inner: inner, g: g, res: g.Reserve("elevator")}
}

func (p *governedPrefetcher) Prefetch(r *orc.Reader, stripe int, cols []int, done func()) bool {
	est := 2 * r.StripeEncodedBytes(stripe, cols) // encoded + decoded copies
	// Prefetch is an optimization: shed it long before it would pressure
	// the blocking operators into spilling to make room for it.
	if b := p.g.Budget(); b > 0 && p.g.UsedBytes()+est > b/2 {
		return false
	}
	if !p.res.Grow(est) {
		return false
	}
	release := func() {
		p.res.Shrink(est)
		if done != nil {
			done()
		}
	}
	if !p.inner.Prefetch(r, stripe, cols, release) {
		p.res.Shrink(est)
		return false
	}
	return true
}

// snapOpts assembles the ACID snapshot wiring from the query context.
func (c *Context) snapOpts() acid.SnapshotOpts {
	if c == nil {
		return acid.SnapshotOpts{}
	}
	return acid.SnapshotOpts{
		Chunks:   c.Chunks,
		Vectors:  c.Vectors,
		Readers:  c.Readers,
		Prefetch: c.Prefetch,
		Counters: &c.ScanStats,
	}
}
