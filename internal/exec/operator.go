// Package exec implements the vectorized physical operators (paper §2, §5):
// scans over ACID snapshots with sargable predicate and Bloom pushdown,
// filters and projections evaluated column-at-a-time over vector batches,
// hash joins (including the semi/anti joins produced by subquery
// decorrelation and the Single join guarding scalar subqueries), hash
// aggregation with grouping sets, sort, limit, set operations and window
// functions.
package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/acid"
	"repro/internal/dfs"
	"repro/internal/orc"
	"repro/internal/types"
	"repro/internal/vector"
)

// Operator is a pull-based vectorized operator. Next returns nil at end of
// stream.
type Operator interface {
	Types() []types.T
	Open() error
	Next() (*vector.Batch, error)
	Close() error
}

// RuntimeStats counts rows flowing out of an operator; HS2's reoptimization
// compares them with the optimizer's estimates (paper §4.2).
type RuntimeStats struct {
	Name string
	Rows atomic.Int64
}

// SlotPool grants executor slots to parallel operators without blocking.
// *llap.Daemons satisfies it; a nil pool means parallelism is unbounded.
type SlotPool interface {
	TryAcquire(n int) (release func(), ok bool)
	Executors() int
}

// Context carries per-query execution state.
type Context struct {
	// Chunks, when non-nil, routes ORC reads through the LLAP cache.
	Chunks orc.ChunkReader
	// Vectors, when non-nil, serves and publishes decoded column vectors
	// (the I/O elevator's decoded-data cache, hive.llap.elevator).
	Vectors orc.VectorCache
	// Prefetch, when non-nil, is the async decode pool scans hint their
	// upcoming sarg-surviving stripes to.
	Prefetch orc.Prefetcher
	// Readers, when non-nil, shares parsed ORC footers across queries
	// (the LLAP metadata cache).
	Readers acid.ReaderCache
	// ScanStats aggregates stripe-skip and prefetch counters across every
	// snapshot and scan worker of the query.
	ScanStats acid.ScanCounters
	// BloomFilters holds runtime semijoin reducers keyed by reducer id
	// (paper §4.6): the build side registers, scans consult.
	blooms map[int]*RuntimeFilter
	// Stats per plan operator for reoptimization.
	Stats []*RuntimeStats
	// MemoryLimitRows aborts hash joins whose build side exceeds the
	// limit, simulating executor memory pressure (drives reoptimization).
	MemoryLimitRows int64
	// spools holds the shared-work materializations keyed by spool id
	// (spool.go); spoolMu guards map access for parallel worker clones.
	spoolMu sync.Mutex
	spools  map[int]*sharedSpool
	// DOP is the requested degree of intra-operator parallelism
	// (hive.parallelism). 1 or 0 means serial execution.
	DOP int
	// TargetStripes bounds the stripes per morsel when the parallel
	// planner refines directory splits into stripe-granular scan ranges
	// (hive.split.target.stripes). 0 or negative means one stripe per
	// morsel.
	TargetStripes int
	// SortParallel lets the parallel planner move Sort/TopN below the
	// exchange: per-worker sorted runs streamed through an order-
	// preserving merge (hive.sort.parallel). NewContext enables it, the
	// server default.
	SortParallel bool
	// SpoolParallel lets the parallel planner admit spooled subtrees into
	// worker pipelines: clones of one consumer split the published spool
	// content through a shared cursor (hive.spool.parallel). NewContext
	// enables it, the server default.
	SpoolParallel bool
	// PropsPlanning enables property-driven planning
	// (hive.planner.properties): operators consult delivered physical
	// properties (props.go) to elide sorts over already-ordered input,
	// share window partition passes, and run partition-wise aggregation
	// and joins over pre-partitioned scans. NewContext enables it, the
	// server default; false restores the enforcer-everywhere plans the
	// byte-identity suites compare against.
	PropsPlanning bool
	// Slots, when non-nil, is the LLAP executor pool parallel operators
	// borrow additional workers from (paper §5.1). The coordinating
	// fragment always owns one implicit slot, so execution never blocks
	// on an exhausted pool — it just runs narrower.
	Slots SlotPool
	// Mem is the per-query memory governor (hive.query.max.memory). The
	// blocking operators reserve through it and spill to ScratchDir when a
	// reservation is denied. nil means ungoverned (unlimited, no peak
	// accounting).
	Mem *Governor
	// FS and ScratchDir locate the query's DFS scratch directory for
	// operator spills. Both unset means spilling is impossible and denied
	// reservations are force-granted instead.
	FS         *dfs.FS
	ScratchDir string
	spillSeq   atomic.Int64
	// GoCtx carries the query's cancellation signal (client disconnect,
	// session close, hive.query.timeout). Operators with long row loops
	// check it between batches; nil means never canceled.
	GoCtx context.Context
}

// CheckCanceled reports the query's cancellation as an error, nil while
// the query may keep running. Cheap enough to call once per batch.
func (c *Context) CheckCanceled() error {
	if c == nil || c.GoCtx == nil {
		return nil
	}
	if err := c.GoCtx.Err(); err != nil {
		return fmt.Errorf("exec: query canceled: %w", err)
	}
	return nil
}

// NewContext returns an empty execution context.
func NewContext() *Context {
	return &Context{blooms: make(map[int]*RuntimeFilter), SortParallel: true, SpoolParallel: true, PropsPlanning: true}
}

// propsOn reports whether property-driven planning is enabled. A nil
// context — operator trees built outside the HS2 path — keeps the feature
// on, matching the server default (same convention as SortParallel).
func (c *Context) propsOn() bool {
	return c == nil || c.PropsPlanning
}

// AcquireExtra grants up to n additional executor slots beyond the one the
// caller already owns, without blocking: if the pool cannot satisfy n it
// grants what it can (possibly zero). The returned release must be called
// when the parallel phase ends.
func (c *Context) AcquireExtra(n int) (granted int, release func()) {
	if n <= 0 {
		return 0, func() {}
	}
	if c.Slots == nil {
		return n, func() {}
	}
	if max := c.Slots.Executors(); n > max {
		n = max
	}
	for k := n; k > 0; k-- {
		if rel, ok := c.Slots.TryAcquire(k); ok {
			return k, rel
		}
	}
	return 0, func() {}
}

// NewStats registers a named stats counter.
func (c *Context) NewStats(name string) *RuntimeStats {
	s := &RuntimeStats{Name: name}
	c.Stats = append(c.Stats, s)
	return s
}

// RuntimeFilter is the product of a semijoin reducer build: the min/max
// range and Bloom filter of the join keys (paper §4.6), plus the exact
// value set when small enough for dynamic partition pruning.
type RuntimeFilter struct {
	ready  chan struct{}
	Min    types.Datum
	Max    types.Datum
	Bloom  *Bloom
	Values []types.Datum // nil when too many for partition pruning
}

// RegisterFilter creates the placeholder for a reducer id.
func (c *Context) RegisterFilter(id int) *RuntimeFilter {
	f := &RuntimeFilter{ready: make(chan struct{})}
	c.blooms[id] = f
	return f
}

// Filter fetches a reducer, blocking until the build side publishes it.
func (c *Context) Filter(id int) *RuntimeFilter {
	f := c.blooms[id]
	if f == nil {
		return nil
	}
	<-f.ready
	return f
}

// Publish marks the filter complete.
func (f *RuntimeFilter) Publish() { close(f.ready) }

// Bloom is a simple split Bloom filter over datum hashes for index
// semijoins.
type Bloom struct {
	bits []uint64
	k    int
}

// NewBloom sizes a filter for n values at ~10 bits per value.
func NewBloom(n int) *Bloom {
	if n < 1 {
		n = 1
	}
	words := (n*10 + 63) / 64
	return &Bloom{bits: make([]uint64, words), k: 6}
}

// Add records a hash.
func (b *Bloom) Add(h uint64) {
	h1, h2 := uint32(h), uint32(h>>32)
	n := uint32(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint32(i)*h2) % n
		b.bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain tests a hash.
func (b *Bloom) MayContain(h uint64) bool {
	h1, h2 := uint32(h), uint32(h>>32)
	n := uint32(len(b.bits) * 64)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint32(i)*h2) % n
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// ErrMemoryPressure simulates an executor running out of memory; HS2
// catches it and reoptimizes the query (paper §4.2).
type ErrMemoryPressure struct {
	Operator string
	Rows     int64
}

func (e ErrMemoryPressure) Error() string {
	return fmt.Sprintf("exec: %s exceeded memory budget at %d rows", e.Operator, e.Rows)
}

// ValuesOp emits a fixed set of rows.
type ValuesOp struct {
	Rows [][]types.Datum
	Ts   []types.T
	done bool
}

// Types implements Operator.
func (v *ValuesOp) Types() []types.T { return v.Ts }

// Open implements Operator.
func (v *ValuesOp) Open() error { v.done = false; return nil }

// Next implements Operator.
func (v *ValuesOp) Next() (*vector.Batch, error) {
	if v.done {
		return nil, nil
	}
	v.done = true
	b := vector.NewBatch(v.Ts, len(v.Rows))
	for i, row := range v.Rows {
		for c, d := range row {
			b.Cols[c].Set(i, d)
		}
	}
	b.N = len(v.Rows)
	return b, nil
}

// Close implements Operator.
func (v *ValuesOp) Close() error { return nil }

// FilterOp keeps rows matching the predicate.
type FilterOp struct {
	Input Operator
	Pred  *CompiledExpr
	Stats *RuntimeStats
}

// Types implements Operator.
func (f *FilterOp) Types() []types.T { return f.Input.Types() }

// Open implements Operator.
func (f *FilterOp) Open() error { return f.Input.Open() }

// Next implements Operator.
func (f *FilterOp) Next() (*vector.Batch, error) {
	for {
		b, err := f.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		sel, err := EvalPredicate(f.Pred, b)
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			continue
		}
		out := &vector.Batch{Cols: b.Cols, Sel: sel, N: len(sel)}
		if f.Stats != nil {
			f.Stats.Rows.Add(int64(out.N))
		}
		return out, nil
	}
}

// Close implements Operator.
func (f *FilterOp) Close() error { return f.Input.Close() }

// ProjectOp evaluates expressions into a new batch.
type ProjectOp struct {
	Input Operator
	Exprs []*CompiledExpr
	Out   []types.T
	Stats *RuntimeStats
}

// Types implements Operator.
func (p *ProjectOp) Types() []types.T { return p.Out }

// Open implements Operator.
func (p *ProjectOp) Open() error { return p.Input.Open() }

// Next implements Operator.
func (p *ProjectOp) Next() (*vector.Batch, error) {
	b, err := p.Input.Next()
	if err != nil || b == nil {
		return nil, err
	}
	cols := make([]*vector.Vector, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(b)
		if err != nil {
			return nil, err
		}
		cols[i] = v
	}
	out := &vector.Batch{Cols: cols, Sel: b.Sel, N: b.N}
	if p.Stats != nil {
		p.Stats.Rows.Add(int64(out.N))
	}
	return out, nil
}

// Close implements Operator.
func (p *ProjectOp) Close() error { return p.Input.Close() }

// LimitOp skips the first Offset rows, then stops after N more.
type LimitOp struct {
	Input   Operator
	N       int64
	Offset  int64
	seen    int64
	skipped int64
}

// Types implements Operator.
func (l *LimitOp) Types() []types.T { return l.Input.Types() }

// Open implements Operator.
func (l *LimitOp) Open() error { l.seen, l.skipped = 0, 0; return l.Input.Open() }

// Next implements Operator.
func (l *LimitOp) Next() (*vector.Batch, error) {
	for {
		if l.seen >= l.N {
			return nil, nil
		}
		b, err := l.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		// Drop whole batches inside the offset, slice the straddling one.
		if skip := l.Offset - l.skipped; skip > 0 {
			if int64(b.N) <= skip {
				l.skipped += int64(b.N)
				continue
			}
			l.skipped = l.Offset
			if b.Sel == nil {
				sel := make([]int, int64(b.N)-skip)
				for i := range sel {
					sel[i] = int(skip) + i
				}
				b = &vector.Batch{Cols: b.Cols, Sel: sel, N: len(sel)}
			} else {
				b = &vector.Batch{Cols: b.Cols, Sel: b.Sel[skip:], N: b.N - int(skip)}
			}
		}
		remain := l.N - l.seen
		if int64(b.N) > remain {
			if b.Sel == nil {
				sel := make([]int, remain)
				for i := range sel {
					sel[i] = i
				}
				b = &vector.Batch{Cols: b.Cols, Sel: sel, N: int(remain)}
			} else {
				b = &vector.Batch{Cols: b.Cols, Sel: b.Sel[:remain], N: int(remain)}
			}
		}
		l.seen += int64(b.N)
		return b, nil
	}
}

// Close implements Operator.
func (l *LimitOp) Close() error { return l.Input.Close() }

// Drain pulls every batch of an operator tree and returns the rows as
// datum slices (convenience for tests and result fetching).
func Drain(op Operator) ([][]types.Datum, error) {
	return DrainContext(nil, op)
}

// DrainContext is Drain with per-batch cancellation checks against the
// context's GoCtx: a timed-out or disconnected query stops between
// batches, and the deferred Close releases operator state (governor
// reservations, spill files) on the way out.
func DrainContext(c *Context, op Operator) ([][]types.Datum, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out [][]types.Datum
	for {
		if err := c.CheckCanceled(); err != nil {
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		for i := 0; i < b.N; i++ {
			out = append(out, b.Row(i))
		}
	}
}
