// Memory-governed hash aggregation: spillAggTable wraps the in-memory
// groupTable with the budget/spill protocol. When the governor denies
// growth, every accumulated group serializes — keys, grouping id and
// mergeable aggregate states — into hash-partitioned run files on the DFS
// scratch directory; the drain then re-aggregates one partition at a time
// (groups with equal keys always land in the same partition, so each
// partition merges independently within a bounded footprint) before
// emission. Both the serial HashAggOp and the final merge of the two-phase
// ParallelHashAggOp sit on this table, so partial aggregates from workers
// and re-read spill partitions fold in through one code path.
package exec

import (
	"fmt"

	"repro/internal/spill"
	"repro/internal/types"
	"repro/internal/vector"
)

// aggSpillParts is the spill fan-out: groups partition by hash across this
// many run-file sets, and the drain holds one partition's groups at a
// time. Each flush writes one file per non-empty partition, so the drain
// pays one seek per (flush, partition) — 8 keeps partitions small enough
// to re-aggregate in memory while halving the seek count of a 16-way
// split.
const aggSpillParts = 8

// spillAggTable is a group table with a memory reservation and a spill
// path. The zero Context (or nil) degrades to plain in-memory aggregation.
type spillAggTable struct {
	ctx     *Context
	aggs    []CompiledAgg
	nKeys   int
	res     *Reservation
	table   *groupTable
	spilled bool
	ngroups int        // total inserts (over-counts across flushes; zero-vs-nonzero only)
	parts   [][]string // partition -> run files, in flush order

	// drain state (spilled mode): one partition resident at a time.
	partIdx   int
	partTable *groupTable
	partEmit  int
	emitted   int // non-spilled drain position
}

func newSpillAggTable(ctx *Context, aggs []CompiledAgg, nKeys int) *spillAggTable {
	return &spillAggTable{
		ctx:   ctx,
		aggs:  aggs,
		nKeys: nKeys,
		res:   ctx.Governor().Reserve("hashagg"),
		table: newGroupTable(),
	}
}

// groupBytes estimates one group's resident footprint: the struct, its key
// datums and the fixed part of each aggregate state.
func groupBytes(g *aggGroup) int64 {
	n := int64(64) + rowBytes(g.keys)
	n += int64(len(g.states)) * 96
	return n
}

// findOrAdd returns the group for (h, gid, keys at row r), creating it
// under the memory budget: a denied reservation spills the whole table
// first, so the new group always lands in a (possibly fresh) resident
// table.
func (t *spillAggTable) findOrAdd(h uint64, gid int64, keyCols []*vector.Vector, r int, mask []bool) (*aggGroup, error) {
	if g := t.table.lookup(h, gid, keyCols, r, mask); g != nil {
		return g, nil
	}
	g := newAggGroup(h, gid, keyCols, r, mask, len(t.aggs))
	if err := t.grow(groupBytes(g)); err != nil {
		return nil, err
	}
	t.insert(g)
	return g, nil
}

func (t *spillAggTable) insert(g *aggGroup) {
	t.table.insert(g)
	t.ngroups++
}

// grow reserves n bytes for state about to be added to the resident table,
// spilling the table when denied. After a spill the bytes are force-taken:
// they are the new state's minimum working set. Denials while the table is
// still small (ShouldSpill false) overshoot instead of flushing tiny
// files.
func (t *spillAggTable) grow(n int64) error {
	if t.res.Grow(n) {
		return nil
	}
	// The state is resident either way; take the bytes, then flush if the
	// table is now worth a spill file.
	t.res.ForceGrow(n)
	if _, ok := t.ctx.spillTarget(); !ok || !t.res.ShouldSpill() {
		return nil
	}
	if err := t.spill(); err != nil {
		return err
	}
	t.res.ForceGrow(n)
	return nil
}

// noteStateGrowth accounts bytes a resident aggregate state just grew by
// (DISTINCT value sets). The growth already happened, so a denied
// reservation spills the table — the grown state goes to disk with it and
// nothing stays held.
func (t *spillAggTable) noteStateGrowth(n int64) error {
	if n <= 0 || t.res.Grow(n) {
		return nil
	}
	t.res.ForceGrow(n)
	if _, ok := t.ctx.spillTarget(); !ok || !t.res.ShouldSpill() {
		return nil
	}
	return t.spill()
}

// releaseResident hands the resident table's accounting back to the
// governor without touching the groups: the two-phase final merge calls it
// before re-accounting a drained partial's groups one by one, so the same
// group objects are never counted twice while ownership transfers.
func (t *spillAggTable) releaseResident() { t.res.Release() }

// mergeGroup folds one complete group (a worker partial or a re-read spill
// group) into the table: equal keys merge aggregate states, new keys
// insert under the budget.
func (t *spillAggTable) mergeGroup(g *aggGroup) error {
	if dst := t.table.lookupKeys(g.h, g.gid, g.keys); dst != nil {
		for ai := range t.aggs {
			dst.states[ai].merge(t.aggs[ai], &g.states[ai])
		}
		return nil
	}
	// Insert is split from the fold so the reservation (which may spill
	// the table and invalidate the lookup) happens before residency.
	if err := t.grow(groupBytes(g)); err != nil {
		return err
	}
	t.insert(g)
	return nil
}

// appendGroup inserts a group known to be absent from the table — worker
// partials over partition-wise (key-disjoint) input never share a group —
// skipping mergeGroup's hash lookup entirely.
func (t *spillAggTable) appendGroup(g *aggGroup) error {
	if err := t.grow(groupBytes(g)); err != nil {
		return err
	}
	t.insert(g)
	return nil
}

// addEmpty inserts the global aggregate's empty group (zero input rows
// still emit one row).
func (t *spillAggTable) addEmpty() {
	g := newAggGroup(groupSeed(0), 0, nil, 0, nil, len(t.aggs))
	t.res.ForceGrow(groupBytes(g))
	t.insert(g)
}

func (t *spillAggTable) groupCount() int { return t.ngroups }

// spill serializes every resident group into hash-partitioned run files
// and resets the table. Equal keys hash equal, so all flushes of one key
// land in one partition and re-aggregate together at drain.
func (t *spillAggTable) spill() error {
	buckets := make([][][]types.Datum, aggSpillParts)
	for _, g := range t.table.order {
		p := int(g.h % aggSpillParts)
		buckets[p] = append(buckets[p], encodeAggGroup(g, t.aggs))
	}
	if t.parts == nil {
		t.parts = make([][]string, aggSpillParts)
	}
	for p, rows := range buckets {
		if len(rows) == 0 {
			continue
		}
		path, err := writeRunFile(t.ctx, fmt.Sprintf("agg_p%02d", p), rows)
		if err != nil {
			return err
		}
		t.parts[p] = append(t.parts[p], path)
	}
	t.spilled = true
	t.table = newGroupTable()
	t.res.Release()
	return nil
}

// finish seals consumption: once anything spilled, the resident remainder
// spills too, so the drain is purely partition-at-a-time.
func (t *spillAggTable) finish() error {
	if t.spilled && len(t.table.order) > 0 {
		return t.spill()
	}
	return nil
}

// loadPart re-aggregates partition p's run files into a fresh resident
// table (single-level recursion: a partition is assumed to fit once its
// duplicate key flushes merge, the standard Grace assumption).
func (t *spillAggTable) loadPart(p int) error {
	fs, _ := t.ctx.spillTarget()
	t.partTable = newGroupTable()
	t.partEmit = 0
	for _, path := range t.parts[p] {
		r, err := spill.OpenReader(fs, path)
		if err != nil {
			return err
		}
		for {
			if err := t.ctx.CheckCanceled(); err != nil {
				return err
			}
			rows, err := r.Next()
			if err != nil {
				return err
			}
			if rows == nil {
				break
			}
			for _, row := range rows {
				g, err := decodeAggGroup(row, t.nKeys, t.aggs)
				if err != nil {
					return err
				}
				if t.partTable.mergeInto(g, t.aggs) {
					t.res.ForceGrow(groupBytes(g))
				}
			}
		}
	}
	return nil
}

// freePart drops partition p's resident table and removes its run files.
func (t *spillAggTable) freePart(p int) {
	if fs, ok := t.ctx.spillTarget(); ok {
		for _, path := range t.parts[p] {
			fs.Remove(path, false)
		}
	}
	t.parts[p] = nil
	t.partTable = nil
	t.partEmit = 0
	t.res.Release()
}

// nextBatch emits the next batch of result groups: insertion order when
// everything stayed resident, partition-at-a-time after a spill.
func (t *spillAggTable) nextBatch(out []types.T, gsets [][]int) (*vector.Batch, error) {
	if !t.spilled {
		b := t.table.emitBatch(t.emitted, out, t.aggs, gsets)
		if b != nil {
			t.emitted += b.N
		}
		return b, nil
	}
	for {
		if t.partTable != nil {
			if b := t.partTable.emitBatch(t.partEmit, out, t.aggs, gsets); b != nil {
				t.partEmit += b.N
				return b, nil
			}
			t.freePart(t.partIdx)
			t.partIdx++
		}
		if t.partIdx >= aggSpillParts {
			return nil, nil
		}
		if err := t.loadPart(t.partIdx); err != nil {
			return nil, err
		}
	}
}

// partitionGroups streams partition p's groups through fn: spilled tables
// reload the partition's files (freeing them afterwards), resident tables
// filter by hash. Group hashing is identical across the workers of one
// query, so partition p means the same key subset in every sink — the
// partition-aligned final merge of ParallelHashAggOp leans on that.
func (t *spillAggTable) partitionGroups(p int, fn func(*aggGroup) error) error {
	if !t.spilled {
		for _, g := range t.table.order {
			if int(g.h%aggSpillParts) == p {
				if err := fn(g); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := t.loadPart(p); err != nil {
		return err
	}
	for _, g := range t.partTable.order {
		if err := fn(g); err != nil {
			return err
		}
	}
	t.freePart(p)
	return nil
}

// drainGroups streams every final group through fn — the two-phase
// parallel aggregation folds worker partials into the coordinator table
// this way, spilled or not.
func (t *spillAggTable) drainGroups(fn func(*aggGroup) error) error {
	if !t.spilled {
		for _, g := range t.table.order {
			if err := fn(g); err != nil {
				return err
			}
		}
		return nil
	}
	if err := t.finish(); err != nil {
		return err
	}
	for p := 0; p < aggSpillParts; p++ {
		if err := t.loadPart(p); err != nil {
			return err
		}
		for _, g := range t.partTable.order {
			if err := fn(g); err != nil {
				return err
			}
		}
		t.freePart(p)
	}
	return nil
}

// close removes any remaining spill files (mid-query errors leave
// partitions undrained) and returns the reservation.
func (t *spillAggTable) close() {
	if t == nil {
		return
	}
	if fs, ok := t.ctx.spillTarget(); ok {
		for _, files := range t.parts {
			for _, path := range files {
				fs.Remove(path, false)
			}
		}
	}
	t.parts, t.table, t.partTable = nil, nil, nil
	t.res.Release()
}

// encodeAggGroup serializes one group as a datum row: the bucket hash and
// grouping id, the key values, then each aggregate state's mergeable
// fields — count, integer/float sums, decimal scale, extrema and, for
// DISTINCT, the value set (count-prefixed). Everything is a plain datum,
// so the spill row codec handles the whole group.
func encodeAggGroup(g *aggGroup, aggs []CompiledAgg) []types.Datum {
	row := make([]types.Datum, 0, 2+len(g.keys)+len(aggs)*7)
	row = append(row, types.NewBigint(int64(g.h)), types.NewBigint(g.gid))
	row = append(row, g.keys...)
	for ai := range aggs {
		st := &g.states[ai]
		row = append(row,
			types.NewBigint(st.count),
			types.NewBigint(st.sumI),
			types.NewDouble(st.sumF),
			types.NewBigint(int64(st.sumScale)),
			st.min,
			st.max,
		)
		row = append(row, types.NewBigint(int64(len(st.dorder))))
		row = append(row, st.dorder...)
	}
	return row
}

// decodeAggGroup is the inverse of encodeAggGroup. DISTINCT states rebuild
// by replaying their value set through update, which regenerates the
// deduplication map, count and sums exactly as the first pass did.
func decodeAggGroup(row []types.Datum, nKeys int, aggs []CompiledAgg) (*aggGroup, error) {
	if len(row) < 2+nKeys {
		return nil, fmt.Errorf("exec: truncated spilled aggregation group")
	}
	g := &aggGroup{
		h:      uint64(row[0].I),
		gid:    row[1].I,
		keys:   row[2 : 2+nKeys],
		states: make([]aggState, len(aggs)),
	}
	pos := 2 + nKeys
	for ai := range aggs {
		if len(row) < pos+7 {
			return nil, fmt.Errorf("exec: truncated spilled aggregate state")
		}
		st := &g.states[ai]
		count, sumI := row[pos].I, row[pos+1].I
		sumF, sumScale := row[pos+2].F, int(row[pos+3].I)
		min, max := row[pos+4], row[pos+5]
		nd := int(row[pos+6].I)
		pos += 7
		if len(row) < pos+nd {
			return nil, fmt.Errorf("exec: truncated spilled DISTINCT set")
		}
		if aggs[ai].Distinct {
			for _, d := range row[pos : pos+nd] {
				st.update(aggs[ai], d)
			}
		} else {
			st.count, st.sumI, st.sumF, st.sumScale = count, sumI, sumF, sumScale
			st.min, st.max = min, max
		}
		pos += nd
	}
	return g, nil
}
